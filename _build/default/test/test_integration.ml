(* Cross-library integration tests: the Crn facade end to end, protocol
   cross-checks, and scenario-level runs combining jammers, dynamics and
   baselines. *)

module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Assignment = Crn_channel.Assignment
module Dynamic = Crn_channel.Dynamic
module Jammer = Crn_radio.Jammer
module Jamming_reduction = Crn_radio.Jamming_reduction
module Crn = Crn_core.Crn
module Cogcast = Crn_core.Cogcast
module Cogcomp = Crn_core.Cogcomp
module Aggregate = Crn_core.Aggregate
module Complexity = Crn_core.Complexity
module Disttree = Crn_core.Disttree

let check = Alcotest.(check bool)

(* --- facade --------------------------------------------------------------- *)

let test_facade_broadcast () =
  let net = Crn.make_network ~n:40 ~c:10 ~k:3 () in
  let r = Crn.broadcast net in
  check "facade broadcast completes" true (r.Cogcast.completed_at <> None)

let test_facade_aggregate () =
  let net = Crn.make_network ~topology:Topology.Shared_core ~n:25 ~c:8 ~k:2 () in
  let values = Array.init 25 (fun i -> i) in
  let res = Crn.aggregate net ~monoid:Aggregate.sum ~values in
  Alcotest.(check (option int)) "facade sum" (Some 300) res.Cogcomp.root_value

let test_facade_bounds_monotone () =
  let small = Crn.make_network ~n:32 ~c:8 ~k:4 () in
  let large = Crn.make_network ~n:32 ~c:32 ~k:4 () in
  check "larger c larger bound" true
    (Crn.broadcast_bound large > Crn.broadcast_bound small);
  check "aggregation bound includes linear term" true
    (Crn.aggregation_bound small > Crn.broadcast_bound small)

let test_facade_deterministic () =
  let mk () =
    let net = Crn.make_network ~seed:5 ~n:20 ~c:6 ~k:2 () in
    (Crn.broadcast ~seed:7 net).Cogcast.completed_at
  in
  Alcotest.(check (option int)) "same seeds same run" (mk ()) (mk ())

(* --- protocol cross-checks --------------------------------------------------- *)

let test_cogcomp_tree_matches_standalone_cogcast_shape () =
  (* The tree COGCOMP builds must satisfy the same structural invariants as a
     standalone COGCAST tree. *)
  let spec = { Topology.n = 30; c = 8; k = 2 } in
  let assignment = Topology.shared_plus_random (Rng.create 1) spec in
  let res =
    Cogcomp.run ~monoid:Aggregate.sum ~values:(Array.make 30 1) ~source:0 ~assignment
      ~k:2 ~rng:(Rng.create 2) ()
  in
  check "complete" true res.Cogcomp.complete;
  (match Disttree.validate res.Cogcomp.tree with
  | Ok () -> ()
  | Error e -> Alcotest.failf "tree: %s" e);
  check "root is source" true (res.Cogcomp.tree.Disttree.root = 0)

let test_aggregation_agrees_with_baseline () =
  (* COGCOMP and the rendezvous baseline must agree on the value (they share
     nothing but the network). *)
  let spec = { Topology.n = 18; c = 6; k = 3 } in
  let assignment = Topology.shared_core (Rng.create 3) spec in
  let values = Array.init 18 (fun i -> (i * i) + 1 ) in
  let a =
    Cogcomp.run ~monoid:Aggregate.sum ~values ~source:0 ~assignment ~k:3
      ~rng:(Rng.create 4) ()
  in
  let b =
    Crn_rendezvous.Aggregation_baseline.run_static ~monoid:Aggregate.sum ~values
      ~source:0 ~assignment ~k:3 ~rng:(Rng.create 5) ()
  in
  Alcotest.(check (option int)) "same aggregate" a.Cogcomp.root_value
    b.Crn_rendezvous.Aggregation_baseline.root_value

let test_whitespace_scenario () =
  (* A TV-whitespace-flavoured scenario: heterogeneous availability from a
     clustered topology; max-interference reading aggregated to a gateway. *)
  let spec = { Topology.n = 36; c = 12; k = 3 } in
  let assignment = Topology.clustered ~groups:6 (Rng.create 6) spec in
  let readings = Array.init 36 (fun i -> (i * 37) mod 101) in
  let res =
    Cogcomp.run ~monoid:Aggregate.max_int ~values:readings ~source:0 ~assignment
      ~k:3 ~rng:(Rng.create 7) ()
  in
  Alcotest.(check (option int)) "max reading"
    (Some (Array.fold_left max readings.(0) readings))
    res.Cogcomp.root_value

let test_jamming_scenario_end_to_end () =
  (* Theorem 18 route at scenario scale: a sweep jammer and a random jammer,
     both under budget c/2 - 1; broadcast must complete via the reduction. *)
  let n = 20 and big_c = 24 in
  List.iter
    (fun jammer ->
      let budget = Jammer.budget jammer in
      let availability =
        Jamming_reduction.availability_of_jammer ~shuffle_labels:(Rng.create 8)
          ~num_nodes:n ~num_channels:big_c ~jammer ()
      in
      let k = Jamming_reduction.overlap_guarantee ~num_channels:big_c ~budget in
      let c = big_c - budget in
      let max_slots = 4 * Complexity.cogcast_slots ~n ~c ~k () in
      let r = Cogcast.run ~source:0 ~availability ~rng:(Rng.create 9) ~max_slots () in
      if r.Cogcast.completed_at = None then
        Alcotest.failf "broadcast failed under %s jammer" (Jammer.name jammer))
    [
      Jammer.sweep ~budget:8 ~num_channels:big_c;
      Jammer.random_per_node ~seed:77L ~budget:11 ~num_channels:big_c;
      Jammer.targeted_low ~budget:11;
    ]

let test_dynamic_aggregation_not_supported_but_broadcast_is () =
  (* §7: COGCAST tolerates dynamics. Sanity-check the dynamic path at the
     facade level parameters. *)
  let spec = { Topology.n = 30; c = 10; k = 2 } in
  let availability = Dynamic.reshuffled_shared_core ~seed:(Rng.create 10) spec in
  let max_slots = Complexity.cogcast_slots ~n:30 ~c:10 ~k:2 () in
  let r = Cogcast.run ~source:0 ~availability ~rng:(Rng.create 11) ~max_slots () in
  check "dynamic broadcast completes" true (r.Cogcast.completed_at <> None)

let test_budget_vs_rendezvous_bound_ordering () =
  (* The closed forms must reproduce the paper's headline separation for
     n >= c: COGCAST's budget is a factor ~c/lg-free below rendezvous. *)
  let n = 512 and c = 32 and k = 2 in
  let cogcast = Complexity.cogcast ~factor:1.0 ~n ~c ~k () in
  let rendezvous = Complexity.rendezvous_broadcast ~n ~c ~k in
  check "bound separation = factor c" true
    (Float.abs ((rendezvous /. cogcast) -. float_of_int c) < 1e-6)

let test_multiseed_cogcomp_sum_never_wrong () =
  (* Whatever happens, a complete run never reports a wrong aggregate. *)
  for seed = 1 to 25 do
    let n = 5 + (seed mod 20) in
    let c = 3 + (seed mod 7) in
    let k = 1 + (seed mod c) in
    let spec = { Topology.n; c; k } in
    let assignment = Topology.generate
        (List.nth Topology.all_kinds (seed mod 5))
        (Rng.create (seed * 3)) spec
    in
    let values = Array.init n (fun i -> i - 3) in
    let res =
      Cogcomp.run ~monoid:Aggregate.sum ~values ~source:(seed mod n) ~assignment ~k
        ~rng:(Rng.create (seed * 7)) ()
    in
    if res.Cogcomp.complete then
      Alcotest.(check (option int))
        (Printf.sprintf "seed %d" seed)
        (Some (Array.fold_left ( + ) 0 values))
        res.Cogcomp.root_value
  done

(* --- Theorem 17: the dynamic-model adversary ---------------------------------- *)

module Adversary = Crn_channel.Adversary

let test_adversary_invariants () =
  (* Per-slot: min pairwise overlap exactly k; the predicted label is a
     channel only the source owns. *)
  let spec = { Topology.n = 8; c = 6; k = 2 } in
  let predicted = ref [] in
  let predict ~slot =
    let label = (slot * 3) mod 6 in
    predicted := (slot, label) :: !predicted;
    label
  in
  let d = Adversary.isolate_source ~spec ~source:0 ~predict_source_label:predict in
  for slot = 0 to 20 do
    let a = Dynamic.at d slot in
    Alcotest.(check int) "overlap exactly k" 2 (Assignment.min_pairwise_overlap a);
    let label = List.assoc slot !predicted in
    let ch = Assignment.global_of_local a ~node:0 ~label in
    for v = 1 to 7 do
      Alcotest.(check (option int)) "isolated channel" None
        (Assignment.local_of_global a ~node:v ~channel:ch)
    done
  done

let test_adversary_stalls_leaked_seed_cogcast () =
  (* With the seed leaked, COGCAST never informs anyone. *)
  let n = 12 and c = 6 and k = 2 in
  let seed = 77 in
  let oracle = Cogcast.label_oracle ~seed ~n ~c ~node:0 in
  let d =
    Adversary.isolate_source ~spec:{ Topology.n; c; k } ~source:0
      ~predict_source_label:oracle
  in
  let r = Cogcast.run ~source:0 ~availability:d ~rng:(Rng.create seed) ~max_slots:3000 () in
  Alcotest.(check int) "source forever alone" 1 r.Cogcast.informed_count

let test_adversary_stalls_fixed_label_algorithm () =
  (* Label-0 scanning (a deterministic strategy) is equally doomed. *)
  let n = 12 and c = 6 and k = 2 in
  let d =
    Adversary.isolate_source ~spec:{ Topology.n; c; k } ~source:0
      ~predict_source_label:(fun ~slot:_ -> 0)
  in
  (* A minimal deterministic broadcaster: source broadcasts on label 0,
     everyone else listens on label 0. *)
  let informed = Array.make n false in
  informed.(0) <- true;
  let decide v ~slot:_ =
    if v = 0 then Crn_radio.Action.broadcast ~label:0 ()
    else Crn_radio.Action.listen ~label:0
  in
  let feedback v ~slot:_ = function
    | Crn_radio.Action.Heard _ -> informed.(v) <- true
    | _ -> ()
  in
  let nodes =
    Array.init n (fun v ->
        Crn_radio.Engine.node ~id:v ~decide:(decide v) ~feedback:(feedback v))
  in
  ignore
    (Crn_radio.Engine.run ~availability:d ~rng:(Rng.create 3) ~nodes ~max_slots:2000 ());
  Alcotest.(check int) "nobody informed" 1
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 informed)

let test_secret_seed_defeats_adversary () =
  (* The oracle replays seed 77; running COGCAST with a different (secret)
     seed makes the predictions worthless and broadcast completes. *)
  let n = 12 and c = 6 and k = 2 in
  let oracle = Cogcast.label_oracle ~seed:77 ~n ~c ~node:0 in
  let d =
    Adversary.isolate_source ~spec:{ Topology.n; c; k } ~source:0
      ~predict_source_label:oracle
  in
  let r =
    Cogcast.run ~source:0 ~availability:d ~rng:(Rng.create 1234) ~max_slots:3000 ()
  in
  check "secret randomness completes" true (r.Cogcast.completed_at <> None)

let test_label_oracle_matches_run () =
  (* Guard: the oracle must track Cogcast.run's actual per-slot labels. Run
     with recording and compare the source's logged labels. *)
  let spec = { Topology.n = 6; c = 5; k = 2 } in
  let assignment = Topology.identical (Rng.create 9) spec in
  let seed = 4242 in
  let r =
    Cogcast.run ~record:true ~stop_when_complete:false ~source:0
      ~availability:(Dynamic.static assignment) ~rng:(Rng.create seed) ~max_slots:40 ()
  in
  let logs = Option.get r.Cogcast.logs in
  let oracle = Cogcast.label_oracle ~seed ~n:6 ~c:5 ~node:0 in
  for slot = 0 to 39 do
    Alcotest.(check int)
      (Printf.sprintf "slot %d label" slot)
      logs.(0).(slot).Cogcast.label (oracle ~slot)
  done

let () =
  Alcotest.run "integration"
    [
      ( "facade",
        [
          Alcotest.test_case "broadcast" `Quick test_facade_broadcast;
          Alcotest.test_case "aggregate" `Quick test_facade_aggregate;
          Alcotest.test_case "bounds monotone" `Quick test_facade_bounds_monotone;
          Alcotest.test_case "deterministic" `Quick test_facade_deterministic;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "cogcomp tree shape" `Quick
            test_cogcomp_tree_matches_standalone_cogcast_shape;
          Alcotest.test_case "agrees with baseline" `Quick test_aggregation_agrees_with_baseline;
          Alcotest.test_case "whitespace sensing" `Quick test_whitespace_scenario;
          Alcotest.test_case "jamming end to end" `Quick test_jamming_scenario_end_to_end;
          Alcotest.test_case "dynamic broadcast" `Quick
            test_dynamic_aggregation_not_supported_but_broadcast_is;
          Alcotest.test_case "bound separation" `Quick test_budget_vs_rendezvous_bound_ordering;
          Alcotest.test_case "multi-seed never wrong" `Quick test_multiseed_cogcomp_sum_never_wrong;
        ] );
      ( "theorem 17 adversary",
        [
          Alcotest.test_case "invariants" `Quick test_adversary_invariants;
          Alcotest.test_case "stalls leaked-seed COGCAST" `Quick
            test_adversary_stalls_leaked_seed_cogcast;
          Alcotest.test_case "stalls deterministic schedule" `Quick
            test_adversary_stalls_fixed_label_algorithm;
          Alcotest.test_case "secret seed completes" `Quick test_secret_seed_defeats_adversary;
          Alcotest.test_case "oracle matches run" `Quick test_label_oracle_matches_run;
        ] );
    ]
