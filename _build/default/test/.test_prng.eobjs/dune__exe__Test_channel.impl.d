test/test_channel.ml: Alcotest Array Crn_channel Crn_prng List QCheck QCheck_alcotest
