test/test_prng.ml: Alcotest Array Crn_prng Hashtbl List QCheck QCheck_alcotest
