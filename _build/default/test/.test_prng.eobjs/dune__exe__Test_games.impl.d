test/test_games.ml: Alcotest Array Crn_core Crn_games Crn_prng Float Hashtbl List Printf QCheck QCheck_alcotest
