test/test_cogcomp.ml: Alcotest Array Crn_channel Crn_core Crn_prng Crn_radio Crn_stats List Option Printf QCheck QCheck_alcotest
