test/test_rendezvous.ml: Alcotest Array Crn_channel Crn_core Crn_prng Crn_rendezvous Crn_stats List Printf QCheck QCheck_alcotest
