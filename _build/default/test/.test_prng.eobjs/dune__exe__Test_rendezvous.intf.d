test/test_rendezvous.mli:
