test/test_cogcomp.mli:
