test/test_stats.ml: Alcotest Array Crn_stats Filename Float Fun Gen List QCheck QCheck_alcotest String Sys
