test/test_games.mli:
