test/test_cogcast.ml: Alcotest Array Crn_channel Crn_core Crn_prng Crn_radio Crn_stats Hashtbl List Option QCheck QCheck_alcotest
