test/test_integration.ml: Alcotest Array Crn_channel Crn_core Crn_prng Crn_radio Crn_rendezvous Float List Option Printf
