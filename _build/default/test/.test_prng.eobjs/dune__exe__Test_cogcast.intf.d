test/test_cogcast.mli:
