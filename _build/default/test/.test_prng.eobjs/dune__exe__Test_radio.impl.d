test/test_radio.ml: Alcotest Array Crn_channel Crn_prng Crn_radio List QCheck QCheck_alcotest
