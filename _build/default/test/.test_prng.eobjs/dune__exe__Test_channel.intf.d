test/test_channel.mli:
