(* Tests for the §6 lower-bound machinery: matchings, the hitting games,
   players, the Lemma 12 reduction and the Theorem 16 first-hit law. *)

module Rng = Crn_prng.Rng
module Matching = Crn_games.Matching
module Hitting_game = Crn_games.Hitting_game
module Players = Crn_games.Players
module Reduction = Crn_games.Reduction
module First_hit = Crn_games.First_hit
module Complexity = Crn_core.Complexity

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- matchings ---------------------------------------------------------- *)

let test_matching_of_edges () =
  let m = Matching.of_edges ~c:5 [ (0, 3); (2, 1) ] in
  check_int "size" 2 (Matching.size m);
  check "mem" true (Matching.mem m (0, 3));
  check "not mem" false (Matching.mem m (0, 1));
  Alcotest.(check (option int)) "partner" (Some 1) (Matching.b_of_a m 2);
  Alcotest.(check (option int)) "unmatched" None (Matching.b_of_a m 4)

let test_matching_rejects_conflicts () =
  Alcotest.check_raises "repeated A" (Invalid_argument "Matching.of_edges: repeated A vertex")
    (fun () -> ignore (Matching.of_edges ~c:4 [ (1, 2); (1, 3) ]));
  Alcotest.check_raises "repeated B" (Invalid_argument "Matching.of_edges: repeated B vertex")
    (fun () -> ignore (Matching.of_edges ~c:4 [ (1, 2); (3, 2) ]))

let test_random_matching_wellformed () =
  let rng = Rng.create 1 in
  for _ = 1 to 50 do
    let m = Matching.random rng ~c:10 ~k:4 in
    check_int "size k" 4 (Matching.size m);
    let edges = Matching.edges m in
    let as_ = List.map fst edges and bs = List.map snd edges in
    check "distinct A" true (List.sort_uniq compare as_ = List.sort compare as_);
    check "distinct B" true (List.sort_uniq compare bs = List.sort compare bs)
  done

let test_random_perfect () =
  let m = Matching.random_perfect (Rng.create 2) ~c:12 in
  check_int "perfect size" 12 (Matching.size m)

let test_random_matching_marginal_uniform () =
  (* Each A vertex should be matched with probability k/c. *)
  let rng = Rng.create 3 in
  let c = 8 and k = 2 in
  let hits = Array.make c 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    let m = Matching.random rng ~c ~k in
    List.iter (fun (a, _) -> hits.(a) <- hits.(a) + 1) (Matching.edges m)
  done;
  let expect = float_of_int k /. float_of_int c in
  Array.iteri
    (fun a count ->
      let frac = float_of_int count /. float_of_int trials in
      if Float.abs (frac -. expect) > 0.02 then
        Alcotest.failf "vertex %d matched with frequency %.4f (expected %.4f)" a frac expect)
    hits

(* --- game mechanics ------------------------------------------------------ *)

let test_scan_player_wins_planted () =
  let m = Matching.of_edges ~c:4 [ (2, 3) ] in
  let player = Players.row_scan ~c:4 in
  let r = Hitting_game.play ~matching:m ~player ~max_rounds:100 in
  check "won" true r.Hitting_game.won;
  (* Row scan proposes (2,3) as its 2*4+3 = 11th proposal (round index 11,
     1-based rounds = 12). *)
  check_int "rounds" 12 r.Hitting_game.rounds

let test_game_times_out () =
  let m = Matching.of_edges ~c:4 [ (3, 3) ] in
  let player = Players.row_scan ~c:4 in
  let r = Hitting_game.play ~matching:m ~player ~max_rounds:5 in
  check "lost" false r.Hitting_game.won;
  check_int "capped rounds" 5 r.Hitting_game.rounds

let test_players_always_win_eventually () =
  let rng = Rng.create 4 in
  List.iter
    (fun make_player ->
      for _ = 1 to 20 do
        let player = make_player (Rng.split rng) in
        let r =
          Hitting_game.play_bipartite ~rng:(Rng.split rng) ~c:8 ~k:3 ~player
            ~max_rounds:200_000
        in
        check "eventually wins" true r.Hitting_game.won
      done)
    [
      (fun rng -> Players.uniform rng ~c:8);
      (fun rng -> Players.without_replacement rng ~c:8);
      (fun _ -> Players.row_scan ~c:8);
    ]

(* --- Lemma 11 / Lemma 14 empirical bounds --------------------------------- *)

let test_bipartite_bound_holds () =
  (* Median rounds of every player must respect f(c,k) >= c²/(αk) (α = 8 at
     β = 2, valid for k <= c/2). *)
  let rng = Rng.create 5 in
  List.iter
    (fun (c, k) ->
      let bound = Complexity.bipartite_game_lower_bound ~c ~k () in
      List.iter
        (fun (name, make_player) ->
          let median =
            Hitting_game.median_rounds ~rng ~trials:31 ~make_player
              ~game:(fun ~rng ~player ~max_rounds ->
                Hitting_game.play_bipartite ~rng ~c ~k ~player ~max_rounds)
              ~max_rounds:(c * c * 100)
          in
          if median < bound then
            Alcotest.failf "%s beat the Lemma 11 bound at c=%d k=%d: %.1f < %.1f" name c
              k median bound)
        [
          ("uniform", fun rng -> Players.uniform rng ~c);
          ("without-replacement", fun rng -> Players.without_replacement rng ~c);
          ("row-scan", fun _ -> Players.row_scan ~c);
        ])
    [ (8, 1); (8, 4); (16, 2) ]

let test_complete_bound_holds () =
  let rng = Rng.create 6 in
  List.iter
    (fun c ->
      let bound = Complexity.complete_game_lower_bound ~c in
      let median =
        Hitting_game.median_rounds ~rng ~trials:31
          ~make_player:(fun rng -> Players.without_replacement rng ~c)
          ~game:(fun ~rng ~player ~max_rounds ->
            Hitting_game.play_complete ~rng ~c ~player ~max_rounds)
          ~max_rounds:(c * c * 10)
      in
      if median < bound then
        Alcotest.failf "beat the Lemma 14 bound at c=%d: %.1f < %.1f" c median bound)
    [ 6; 12; 24 ]

(* --- Lemma 12 reduction ----------------------------------------------------- *)

let test_reduction_player_wins () =
  let rng = Rng.create 7 in
  for _ = 1 to 10 do
    let alg = Reduction.cogcast_algorithm (Rng.split rng) ~n:10 ~c:6 in
    let player, _slots = Reduction.player_of_algorithm ~c:6 alg in
    let r =
      Hitting_game.play_bipartite ~rng:(Rng.split rng) ~c:6 ~k:2 ~player
        ~max_rounds:100_000
    in
    check "reduction player wins" true r.Hitting_game.won
  done

let test_reduction_round_slot_relation () =
  (* Lemma 12: game rounds <= min{c, n} * simulated slots. *)
  let rng = Rng.create 8 in
  List.iter
    (fun (n, c, k) ->
      for _ = 1 to 10 do
        let alg = Reduction.cogcast_algorithm (Rng.split rng) ~n ~c in
        let player, slots_used = Reduction.player_of_algorithm ~c alg in
        let r =
          Hitting_game.play_bipartite ~rng:(Rng.split rng) ~c ~k ~player
            ~max_rounds:1_000_000
        in
        check "wins" true r.Hitting_game.won;
        let bound = min c n * slots_used () in
        if r.Hitting_game.rounds > bound then
          Alcotest.failf "rounds %d > min{c,n}*slots = %d (n=%d c=%d k=%d)"
            r.Hitting_game.rounds bound n c k
      done)
    [ (10, 6, 2); (4, 12, 3); (20, 5, 1) ]

let test_reduction_no_duplicate_proposals () =
  let alg = Reduction.cogcast_algorithm (Rng.create 9) ~n:8 ~c:5 in
  let player, _ = Reduction.player_of_algorithm ~c:5 alg in
  let seen = Hashtbl.create 64 in
  for round = 0 to 24 do
    let e = player.Hitting_game.propose ~round in
    check "fresh proposal" false (Hashtbl.mem seen e);
    Hashtbl.replace seen e ()
  done

(* --- Lemma 11 numeric machinery --------------------------------------------------- *)

module Bounds = Crn_games.Bounds

let test_bounds_alpha () =
  Alcotest.(check (float 1e-9)) "alpha(2) = 8" 8.0 (Bounds.alpha ~beta:2.0)

let test_losing_bound_at_critical_rounds () =
  (* The lemma's conclusion: at l = c^2/(alpha k) the losing probability is
     at least 1/2 whenever k <= c/2. Check the numeric bound directly. *)
  List.iter
    (fun (c, k) ->
      let l = Bounds.critical_rounds ~c ~k () in
      let p = Bounds.losing_probability_lower_bound ~c ~k ~rounds:l in
      if p < 0.5 then
        Alcotest.failf "P(L) bound %.4f < 1/2 at c=%d k=%d l=%d" p c k l)
    [ (8, 1); (8, 4); (16, 2); (16, 8); (32, 4); (64, 32); (100, 10) ]

let test_losing_bound_monotone_in_rounds () =
  let prev = ref 1.0 in
  for rounds = 0 to 100 do
    let p = Bounds.losing_probability_lower_bound ~c:10 ~k:3 ~rounds in
    Alcotest.(check bool) "non-increasing" true (p <= !prev +. 1e-12);
    prev := p
  done

let test_uniform_win_matches_closed_form () =
  (* Simulated uniform-player win frequency within l rounds vs the exact
     1 - (1 - k/c^2)^l. *)
  let rng = Rng.create 40 in
  let c = 10 and k = 3 in
  List.iter
    (fun rounds ->
      let trials = 3000 in
      let wins = ref 0 in
      for _ = 1 to trials do
        let player = Players.uniform (Rng.split rng) ~c in
        let r =
          Hitting_game.play_bipartite ~rng:(Rng.split rng) ~c ~k ~player
            ~max_rounds:rounds
        in
        if r.Hitting_game.won then incr wins
      done;
      let freq = float_of_int !wins /. float_of_int trials in
      let exact = Bounds.exact_uniform_win_probability ~c ~k ~rounds in
      if Float.abs (freq -. exact) > 0.035 then
        Alcotest.failf "uniform win freq %.4f vs closed form %.4f at l=%d" freq exact
          rounds)
    [ 5; 20; 60 ]

let test_empirical_win_rate_below_upper_bound () =
  (* No player may exceed the analytic winning-probability upper bound at
     the critical round count (up to sampling noise). *)
  let rng = Rng.create 41 in
  List.iter
    (fun (c, k) ->
      let l = Bounds.critical_rounds ~c ~k () in
      let cap = Bounds.winning_probability_upper_bound ~c ~k ~rounds:l in
      List.iter
        (fun make_player ->
          let trials = 600 in
          let wins = ref 0 in
          for _ = 1 to trials do
            let player = make_player (Rng.split rng) in
            let r =
              Hitting_game.play_bipartite ~rng:(Rng.split rng) ~c ~k ~player
                ~max_rounds:l
            in
            if r.Hitting_game.won then incr wins
          done;
          let freq = float_of_int !wins /. float_of_int trials in
          if freq > cap +. 0.06 then
            Alcotest.failf "win rate %.3f exceeds analytic cap %.3f (c=%d k=%d l=%d)"
              freq cap c k l)
        [
          (fun rng -> Players.uniform rng ~c);
          (fun rng -> Players.without_replacement rng ~c);
        ])
    [ (12, 2); (16, 4) ]

let test_complete_game_bound () =
  (* Lemma 14 accounting: P(L) >= 1 - rounds/c; at rounds = c/3 the losing
     probability is at least 2/3 > 1/2 analytically, and empirically the
     win rate within c/3 rounds stays below 1/2. *)
  Alcotest.(check (float 1e-9)) "analytic" (2.0 /. 3.0)
    (Bounds.complete_game_losing_probability ~c:30 ~rounds:10);
  let rng = Rng.create 42 in
  let c = 30 in
  let rounds = c / 3 in
  let trials = 1000 in
  let wins = ref 0 in
  for _ = 1 to trials do
    let player = Players.without_replacement (Rng.split rng) ~c in
    let r = Hitting_game.play_complete ~rng:(Rng.split rng) ~c ~player ~max_rounds:rounds in
    if r.Hitting_game.won then incr wins
  done;
  let freq = float_of_int !wins /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "win rate %.3f below 1/2 within c/3 rounds" freq)
    true (freq < 0.5)

let prop_losing_bound_in_unit_interval =
  QCheck.Test.make ~name:"losing-probability bound stays in [0,1]" ~count:300
    QCheck.(triple (int_range 1 60) (int_range 1 60) (int_range 0 10_000))
    (fun (c, kk, rounds) ->
      let k = 1 + (kk mod c) in
      let p = Bounds.losing_probability_lower_bound ~c ~k ~rounds in
      p >= 0.0 && p <= 1.0)

(* --- Theorem 16 first hit ------------------------------------------------------ *)

let test_first_hit_k_equals_c () =
  (* Every channel overlapping: first hit is always slot 1. *)
  let v =
    First_hit.sample ~rng:(Rng.create 10) ~c:7 ~k:7
      ~strategy:(First_hit.scan_strategy ~c:7)
  in
  check_int "immediate hit" 1 v

let test_first_hit_expectation_matches_theorem () =
  (* Theorem 16: E[first hit] >= (c+1)/(k+1) for every strategy, with
     equality for non-repeating strategies (scan, random permutation). The
     memoryless uniform strategy has mean exactly c/k >= the bound. *)
  let rng = Rng.create 11 in
  List.iter
    (fun (c, k) ->
      let bound = Complexity.global_label_lower_bound ~c ~k in
      (* Non-repeating strategies achieve the bound exactly. *)
      List.iter
        (fun (name, make_strategy) ->
          let mean = First_hit.mean_first_hit ~rng ~trials:20_000 ~c ~k ~make_strategy in
          if Float.abs (mean -. bound) > 0.12 *. bound then
            Alcotest.failf "%s first-hit mean %.3f vs theorem %.3f (c=%d k=%d)" name mean
              bound c k)
        [
          ("scan", fun _ -> First_hit.scan_strategy ~c);
          ("random-permutation", fun rng -> First_hit.fresh_random_strategy rng ~c);
        ];
      (* The memoryless strategy sits above the bound, at c/k. *)
      let mean =
        First_hit.mean_first_hit ~rng ~trials:20_000 ~c ~k
          ~make_strategy:(fun rng -> First_hit.uniform_strategy rng ~c)
      in
      let geo = float_of_int c /. float_of_int k in
      if mean < bound *. 0.95 then
        Alcotest.failf "uniform beat the Theorem 16 bound: %.3f < %.3f" mean bound;
      if Float.abs (mean -. geo) > 0.12 *. geo then
        Alcotest.failf "uniform first-hit mean %.3f should be ~c/k = %.3f" mean geo)
    [ (8, 2); (12, 1); (20, 10) ]

let prop_first_hit_positive_and_bounded_for_scan =
  QCheck.Test.make ~name:"scan strategy first-hit <= c - k + 1" ~count:300
    QCheck.(triple small_int (int_range 1 30) (int_range 0 29))
    (fun (seed, c, kk) ->
      let k = 1 + (kk mod c) in
      let v =
        First_hit.sample ~rng:(Rng.create seed) ~c ~k
          ~strategy:(First_hit.scan_strategy ~c)
      in
      v >= 1 && v <= c - k + 1)

let () =
  Alcotest.run "games"
    [
      ( "matching",
        [
          Alcotest.test_case "of_edges" `Quick test_matching_of_edges;
          Alcotest.test_case "conflicts rejected" `Quick test_matching_rejects_conflicts;
          Alcotest.test_case "random wellformed" `Quick test_random_matching_wellformed;
          Alcotest.test_case "random perfect" `Quick test_random_perfect;
          Alcotest.test_case "marginal uniform" `Slow test_random_matching_marginal_uniform;
        ] );
      ( "game",
        [
          Alcotest.test_case "scan wins planted" `Quick test_scan_player_wins_planted;
          Alcotest.test_case "times out" `Quick test_game_times_out;
          Alcotest.test_case "players eventually win" `Quick test_players_always_win_eventually;
        ] );
      ( "lower bounds",
        [
          Alcotest.test_case "Lemma 11 bound holds" `Slow test_bipartite_bound_holds;
          Alcotest.test_case "Lemma 14 bound holds" `Slow test_complete_bound_holds;
        ] );
      ( "lemma 11 numerics",
        [
          Alcotest.test_case "alpha" `Quick test_bounds_alpha;
          Alcotest.test_case "P(L) >= 1/2 at critical rounds" `Quick
            test_losing_bound_at_critical_rounds;
          Alcotest.test_case "bound monotone" `Quick test_losing_bound_monotone_in_rounds;
          Alcotest.test_case "uniform matches closed form" `Slow
            test_uniform_win_matches_closed_form;
          Alcotest.test_case "win rate below analytic cap" `Slow
            test_empirical_win_rate_below_upper_bound;
          Alcotest.test_case "complete game bound" `Quick test_complete_game_bound;
          QCheck_alcotest.to_alcotest prop_losing_bound_in_unit_interval;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "player wins" `Quick test_reduction_player_wins;
          Alcotest.test_case "round/slot relation" `Quick test_reduction_round_slot_relation;
          Alcotest.test_case "no duplicate proposals" `Quick test_reduction_no_duplicate_proposals;
        ] );
      ( "first hit",
        [
          Alcotest.test_case "k = c immediate" `Quick test_first_hit_k_equals_c;
          Alcotest.test_case "matches (c+1)/(k+1)" `Slow test_first_hit_expectation_matches_theorem;
          QCheck_alcotest.to_alcotest prop_first_hit_positive_and_bounded_for_scan;
        ] );
    ]
