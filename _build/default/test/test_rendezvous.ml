(* Tests for the rendezvous baselines: pairwise random hopping, the
   rendezvous broadcast/aggregation straw-men and the hop-together scan. *)

module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Assignment = Crn_channel.Assignment
module Random_hop = Crn_rendezvous.Random_hop
module Broadcast_baseline = Crn_rendezvous.Broadcast_baseline
module Seq_scan = Crn_rendezvous.Seq_scan
module Aggregation_baseline = Crn_rendezvous.Aggregation_baseline
module Cogcast = Crn_core.Cogcast
module Aggregate = Crn_core.Aggregate

let check = Alcotest.(check bool)

(* --- pairwise rendezvous --------------------------------------------------- *)

let test_pair_meets () =
  let spec = { Topology.n = 2; c = 8; k = 2 } in
  let assignment = Topology.shared_core (Rng.create 1) spec in
  match Random_hop.pair ~rng:(Rng.create 2) ~assignment ~u:0 ~v:1 ~max_slots:100_000 with
  | Some slot -> check "positive slot" true (slot >= 1)
  | None -> Alcotest.fail "pair should rendezvous"

let test_pair_identical_sets_meet_fast () =
  (* k = c: meeting probability per slot is 1/c, expectation c. *)
  let spec = { Topology.n = 2; c = 4; k = 4 } in
  let assignment = Topology.identical (Rng.create 3) spec in
  let rng = Rng.create 4 in
  let trials = 400 in
  let total = ref 0 in
  for _ = 1 to trials do
    match Random_hop.pair ~rng ~assignment ~u:0 ~v:1 ~max_slots:10_000 with
    | Some slot -> total := !total + slot
    | None -> Alcotest.fail "must meet"
  done;
  let mean = float_of_int !total /. float_of_int trials in
  check "mean near c = 4" true (mean > 3.0 && mean < 5.0)

let test_pair_mean_scales_with_c2_over_k () =
  (* Shared-core with c=12, k=3: per-slot hit probability is exactly
     k/c² = 3/144, so the expectation is 48. *)
  let spec = { Topology.n = 2; c = 12; k = 3 } in
  let assignment = Topology.shared_core (Rng.create 5) spec in
  let rng = Rng.create 6 in
  let trials = 600 in
  let total = ref 0 in
  for _ = 1 to trials do
    match Random_hop.pair ~rng ~assignment ~u:0 ~v:1 ~max_slots:100_000 with
    | Some slot -> total := !total + slot
    | None -> Alcotest.fail "must meet"
  done;
  let mean = float_of_int !total /. float_of_int trials in
  check "mean near c^2/k = 48" true (mean > 40.0 && mean < 56.0)

let test_source_meets_all () =
  let spec = { Topology.n = 10; c = 6; k = 2 } in
  let assignment = Topology.shared_plus_random (Rng.create 7) spec in
  match
    Random_hop.source_meets_all ~rng:(Rng.create 8) ~assignment ~source:0
      ~max_slots:1_000_000
  with
  | Some slots -> check "positive" true (slots >= 1)
  | None -> Alcotest.fail "source should meet everyone"

(* --- rendezvous broadcast baseline ------------------------------------------ *)

let test_baseline_broadcast_completes () =
  let spec = { Topology.n = 20; c = 8; k = 2 } in
  let assignment = Topology.shared_core (Rng.create 9) spec in
  let r =
    Broadcast_baseline.run_static ~source:0 ~assignment ~k:2 ~rng:(Rng.create 10) ()
  in
  check "completes" true (r.Broadcast_baseline.completed_at <> None);
  check "everyone informed" true
    (Array.for_all (fun b -> b) r.Broadcast_baseline.informed)

let test_cogcast_beats_baseline () =
  (* With n >= c the epidemic should beat source-only rendezvous clearly;
     compare medians over a few seeds. *)
  let spec = { Topology.n = 64; c = 16; k = 2 } in
  let trials = 7 in
  let cog = Array.make trials 0.0 and base = Array.make trials 0.0 in
  for i = 0 to trials - 1 do
    let assignment = Topology.shared_core (Rng.create (20 + i)) spec in
    let r1 =
      Cogcast.run_static ~source:0 ~assignment ~k:2 ~rng:(Rng.create (40 + i)) ()
    in
    let r2 =
      Broadcast_baseline.run_static ~source:0 ~assignment ~k:2
        ~rng:(Rng.create (60 + i)) ()
    in
    (match (r1.Cogcast.completed_at, r2.Broadcast_baseline.completed_at) with
    | Some a, Some b ->
        cog.(i) <- float_of_int a;
        base.(i) <- float_of_int b
    | _ -> Alcotest.fail "both must complete")
  done;
  let mc = Crn_stats.Summary.median cog and mb = Crn_stats.Summary.median base in
  check
    (Printf.sprintf "epidemic (%.0f) at least 3x faster than baseline (%.0f)" mc mb)
    true
    (mc *. 3.0 <= mb)

(* --- hop-together scan -------------------------------------------------------- *)

let test_seq_scan_completes_shared_core () =
  let spec = { Topology.n = 6; c = 36; k = 35 } in
  let assignment =
    Assignment.permute_channels (Rng.create 11)
      (Topology.shared_core ~global_labels:true (Rng.create 12) spec)
  in
  let big_c = Assignment.num_channels assignment in
  let r =
    Seq_scan.run ~source:0 ~assignment ~rng:(Rng.create 13) ~max_slots:(4 * big_c) ()
  in
  check "scan completes" true (r.Seq_scan.completed_at <> None)

let test_seq_scan_fast_when_k_dense () =
  (* §6's example regime: c ≈ n², k = c - 1. Expected completion ≈ C/k ≈ 1-2
     slots; allow a loose 4·C/k margin, still far below COGCAST's budget. *)
  let n = 6 in
  let c = n * n in
  let k = c - 1 in
  let spec = { Topology.n; c; k } in
  let totals = ref 0 in
  let trials = 10 in
  for i = 0 to trials - 1 do
    let assignment =
      Assignment.permute_channels (Rng.create (30 + i))
        (Topology.shared_core ~global_labels:true (Rng.create (50 + i)) spec)
    in
    let big_c = Assignment.num_channels assignment in
    let r =
      Seq_scan.run ~source:0 ~assignment ~rng:(Rng.create (70 + i))
        ~max_slots:(8 * big_c) ()
    in
    match r.Seq_scan.completed_at with
    | Some s -> totals := !totals + s
    | None -> Alcotest.fail "scan must complete"
  done;
  let mean = float_of_int !totals /. float_of_int trials in
  let big_c = k + (n * (c - k)) in
  check
    (Printf.sprintf "mean %.1f within 4*C/k = %.1f" mean
       (4.0 *. float_of_int big_c /. float_of_int k))
    true
    (mean <= 4.0 *. float_of_int big_c /. float_of_int k)

(* --- rendezvous aggregation baseline ------------------------------------------- *)

let test_baseline_aggregation_correct () =
  let spec = { Topology.n = 16; c = 6; k = 2 } in
  let assignment = Topology.shared_core (Rng.create 14) spec in
  let values = Array.init 16 (fun i -> i * 3) in
  let r =
    Aggregation_baseline.run_static ~monoid:Aggregate.sum ~values ~source:0
      ~assignment ~k:2 ~rng:(Rng.create 15) ()
  in
  check "completes" true (r.Aggregation_baseline.completed_at <> None);
  Alcotest.(check (option int)) "exact sum" (Some (Array.fold_left ( + ) 0 values))
    r.Aggregation_baseline.root_value

let test_baseline_aggregation_incomplete_reports_none () =
  let spec = { Topology.n = 32; c = 12; k = 1 } in
  let assignment = Topology.shared_core (Rng.create 16) spec in
  let values = Array.make 32 1 in
  let r =
    Aggregation_baseline.run ~monoid:Aggregate.sum ~values ~source:0
      ~availability:(Crn_channel.Dynamic.static assignment) ~rng:(Rng.create 17)
      ~max_slots:3 ()
  in
  check "not complete in 3 slots" true (r.Aggregation_baseline.completed_at = None);
  Alcotest.(check (option int)) "no value claimed" None r.Aggregation_baseline.root_value

(* --- deterministic schedules ---------------------------------------------------- *)

module Deterministic = Crn_rendezvous.Deterministic

let identical_net ~n ~c =
  Topology.identical ~global_labels:true (Rng.create 1) { Topology.n; c; k = c }

let test_prime_helper () =
  List.iter
    (fun (n, p) -> Alcotest.(check int) (Printf.sprintf "prime >= %d" n) p
        (Deterministic.smallest_prime_geq n))
    [ (0, 2); (2, 2); (3, 3); (4, 5); (10, 11); (14, 17); (31, 31); (32, 37) ]

let test_schedules_stay_in_set () =
  (* Every schedule must always pick a channel the node owns. *)
  let a =
    Topology.shared_core ~global_labels:true (Rng.create 2)
      { Topology.n = 5; c = 7; k = 3 }
  in
  let p = Deterministic.smallest_prime_geq (Assignment.num_channels a) in
  for node = 0 to 4 do
    List.iter
      (fun schedule ->
        for slot = 0 to (4 * p * p) - 1 do
          ignore (Deterministic.channel_of_schedule a ~node schedule ~slot)
        done)
      [
        Deterministic.jump_stay a ~node;
        Deterministic.generated_orthogonal a ~node;
        Deterministic.modular_clock a ~node ~rate:(1 + (node mod 6));
      ]
  done

let test_gos_meets_under_every_shift () =
  (* The published GOS guarantee: the sequence meets itself within one
     period under any relative shift. Exhaustive over shifts, c = 2..8. *)
  for c = 2 to 8 do
    let a = identical_net ~n:2 ~c in
    let period = c * (c + 1) in
    for d = 0 to period - 1 do
      let u = Deterministic.generated_orthogonal a ~node:0 in
      let v = Deterministic.generated_orthogonal ~phase:d a ~node:1 in
      match Deterministic.pair_rendezvous a ~u ~v ~max_slots:period with
      | Some _ -> ()
      | None -> Alcotest.failf "GOS missed at c=%d shift=%d" c d
    done
  done

let test_modular_clock_distinct_rates () =
  (* Exhaustive over distinct rate pairs: rendezvous within 4p² slots. *)
  for c = 2 to 10 do
    let a = identical_net ~n:2 ~c in
    let p = Deterministic.smallest_prime_geq c in
    for ru = 1 to p - 1 do
      for rv = 1 to p - 1 do
        if ru <> rv then begin
          let u = Deterministic.modular_clock a ~node:0 ~rate:ru in
          let v = Deterministic.modular_clock a ~node:1 ~rate:rv in
          match Deterministic.pair_rendezvous a ~u ~v ~max_slots:(4 * p * p) with
          | Some _ -> ()
          | None -> Alcotest.failf "MC missed at c=%d rates (%d,%d)" c ru rv
        end
      done
    done
  done

let test_modular_clock_equal_rates_never_meet () =
  (* The documented weakness: equal rates with offsets differing mod p
     never rendezvous. *)
  let c = 5 in
  let a = identical_net ~n:2 ~c in
  let u = Deterministic.modular_clock a ~node:0 ~rate:2 in
  let v = Deterministic.modular_clock a ~node:1 ~rate:2 in
  Alcotest.(check (option int)) "parallel clocks never meet" None
    (Deterministic.pair_rendezvous a ~u ~v ~max_slots:10_000)

let test_jump_stay_pairs () =
  (* Identical sets and shared-core sets: all pairs meet within 9P². *)
  for c = 2 to 8 do
    let a = identical_net ~n:4 ~c in
    let p = Deterministic.smallest_prime_geq c in
    for u = 0 to 2 do
      for v = u + 1 to 3 do
        match
          Deterministic.pair_rendezvous a
            ~u:(Deterministic.jump_stay a ~node:u)
            ~v:(Deterministic.jump_stay a ~node:v)
            ~max_slots:(9 * p * p)
        with
        | Some _ -> ()
        | None -> Alcotest.failf "JS missed on identical c=%d pair (%d,%d)" c u v
      done
    done
  done;
  List.iter
    (fun (c, k, seed) ->
      let a =
        Topology.shared_core ~global_labels:true (Rng.create seed)
          { Topology.n = 4; c; k }
      in
      let p = Deterministic.smallest_prime_geq (Assignment.num_channels a) in
      for u = 0 to 2 do
        for v = u + 1 to 3 do
          match
            Deterministic.pair_rendezvous a
              ~u:(Deterministic.jump_stay a ~node:u)
              ~v:(Deterministic.jump_stay a ~node:v)
              ~max_slots:(9 * p * p)
          with
          | Some _ -> ()
          | None -> Alcotest.failf "JS missed on shared-core c=%d k=%d (%d,%d)" c k u v
        done
      done)
    [ (4, 1, 3); (6, 2, 4); (8, 4, 5); (10, 3, 6) ]

let test_deterministic_broadcast_completes () =
  let a =
    Topology.shared_core ~global_labels:true (Rng.create 7)
      { Topology.n = 16; c = 8; k = 3 }
  in
  match
    Deterministic.broadcast ~make_schedule:Deterministic.jump_stay ~source:0
      ~assignment:a ~rng:(Rng.create 8) ~max_slots:100_000 ()
  with
  | Some _ -> ()
  | None -> Alcotest.fail "jump-stay broadcast failed"

let prop_jump_stay_always_meets =
  QCheck.Test.make ~name:"jump-stay always meets on shared-core pairs" ~count:40
    QCheck.(triple small_int (int_range 2 10) (int_range 1 9))
    (fun (seed, c, kk) ->
      let k = 1 + (kk mod c) in
      let a =
        Topology.shared_core ~global_labels:true (Rng.create (seed + 600))
          { Topology.n = 2; c; k }
      in
      let p = Deterministic.smallest_prime_geq (Assignment.num_channels a) in
      Deterministic.pair_rendezvous a
        ~u:(Deterministic.jump_stay a ~node:0)
        ~v:(Deterministic.jump_stay a ~node:1)
        ~max_slots:(9 * p * p)
      <> None)

let prop_baselines_complete =
  QCheck.Test.make ~name:"baselines complete on random shared+random networks" ~count:20
    QCheck.(triple small_int (int_range 2 16) (int_range 2 8))
    (fun (seed, n, c) ->
      let k = max 1 (c / 2) in
      let spec = { Topology.n; c; k } in
      let assignment = Topology.shared_plus_random (Rng.create (seed + 300)) spec in
      let b =
        Broadcast_baseline.run_static ~source:0 ~assignment ~k
          ~rng:(Rng.create (seed + 301)) ()
      in
      let a =
        Aggregation_baseline.run_static ~monoid:Aggregate.sum
          ~values:(Array.make n 2) ~source:0 ~assignment ~k
          ~rng:(Rng.create (seed + 302)) ()
      in
      b.Broadcast_baseline.completed_at <> None
      && a.Aggregation_baseline.root_value = Some (2 * n))

let () =
  Alcotest.run "rendezvous"
    [
      ( "pairwise",
        [
          Alcotest.test_case "pair meets" `Quick test_pair_meets;
          Alcotest.test_case "identical sets mean ~ c" `Quick
            test_pair_identical_sets_meet_fast;
          Alcotest.test_case "shared-core mean ~ c^2/k" `Slow
            test_pair_mean_scales_with_c2_over_k;
          Alcotest.test_case "source meets all" `Quick test_source_meets_all;
        ] );
      ( "broadcast baseline",
        [
          Alcotest.test_case "completes" `Quick test_baseline_broadcast_completes;
          Alcotest.test_case "COGCAST beats it" `Slow test_cogcast_beats_baseline;
        ] );
      ( "hop-together scan",
        [
          Alcotest.test_case "completes" `Quick test_seq_scan_completes_shared_core;
          Alcotest.test_case "O(C/k) when k dense" `Quick test_seq_scan_fast_when_k_dense;
        ] );
      ( "deterministic schedules",
        [
          Alcotest.test_case "prime helper" `Quick test_prime_helper;
          Alcotest.test_case "schedules stay in set" `Quick test_schedules_stay_in_set;
          Alcotest.test_case "GOS meets under every shift" `Quick
            test_gos_meets_under_every_shift;
          Alcotest.test_case "MC distinct rates meet" `Quick test_modular_clock_distinct_rates;
          Alcotest.test_case "MC equal rates never meet" `Quick
            test_modular_clock_equal_rates_never_meet;
          Alcotest.test_case "jump-stay pairs meet" `Quick test_jump_stay_pairs;
          Alcotest.test_case "deterministic broadcast" `Quick
            test_deterministic_broadcast_completes;
          QCheck_alcotest.to_alcotest prop_jump_stay_always_meets;
        ] );
      ( "aggregation baseline",
        [
          Alcotest.test_case "correct sum" `Quick test_baseline_aggregation_correct;
          Alcotest.test_case "incomplete -> None" `Quick
            test_baseline_aggregation_incomplete_reports_none;
          QCheck_alcotest.to_alcotest prop_baselines_complete;
        ] );
    ]
