(* Tests for the deterministic PRNG stack: SplitMix64, Xoshiro256** and the
   Rng distribution layer. *)

module Splitmix = Crn_prng.Splitmix
module Xoshiro = Crn_prng.Xoshiro
module Rng = Crn_prng.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- SplitMix64 ------------------------------------------------------ *)

let test_splitmix_reference () =
  (* Reference outputs for seed 0 from the canonical C implementation
     (Steele/Lea/Flood; also used by Java's SplittableRandom). *)
  let sm = Splitmix.create 0L in
  let expected =
    [ 0xE220A8397B1DCDAFL; 0x6E789E6AA1B965F4L; 0x06C45D188009454FL ]
  in
  List.iter
    (fun e -> Alcotest.(check int64) "splitmix64(seed=0) stream" e (Splitmix.next sm))
    expected

let test_splitmix_determinism () =
  let a = Splitmix.create 12345L and b = Splitmix.create 12345L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Splitmix.next a) (Splitmix.next b)
  done

let test_splitmix_copy () =
  let a = Splitmix.create 7L in
  ignore (Splitmix.next a);
  let b = Splitmix.copy a in
  Alcotest.(check int64) "copy replays" (Splitmix.next a) (Splitmix.next b)

let test_splitmix_split_independent () =
  let a = Splitmix.create 7L in
  let b = Splitmix.split a in
  let xs = Array.init 32 (fun _ -> Splitmix.next a) in
  let ys = Array.init 32 (fun _ -> Splitmix.next b) in
  check "split streams differ" true (xs <> ys)

(* --- Xoshiro256** ----------------------------------------------------- *)

let test_xoshiro_determinism () =
  let a = Xoshiro.create 99L and b = Xoshiro.create 99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed same stream" (Xoshiro.next a) (Xoshiro.next b)
  done

let test_xoshiro_copy () =
  let a = Xoshiro.create 5L in
  for _ = 1 to 10 do ignore (Xoshiro.next a) done;
  let b = Xoshiro.copy a in
  for _ = 1 to 20 do
    Alcotest.(check int64) "copy replays" (Xoshiro.next a) (Xoshiro.next b)
  done

let test_xoshiro_jump_disjoint () =
  (* After a jump the stream should not collide with the original prefix. *)
  let a = Xoshiro.create 3L in
  let prefix = Array.init 1000 (fun _ -> Xoshiro.next a) in
  let b = Xoshiro.create 3L in
  Xoshiro.jump b;
  let jumped = Array.init 1000 (fun _ -> Xoshiro.next b) in
  let seen = Hashtbl.create 2048 in
  Array.iter (fun x -> Hashtbl.replace seen x ()) prefix;
  let collisions =
    Array.fold_left (fun acc x -> if Hashtbl.mem seen x then acc + 1 else acc) 0 jumped
  in
  check_int "no collisions between jumped substreams" 0 collisions

(* --- Rng -------------------------------------------------------------- *)

let test_int_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    check "in range" true (v >= 0 && v < 17)
  done

let test_int_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_uniformity () =
  (* Coarse chi-square-style check: each of 8 buckets should get close to
     12.5% of 80k draws. *)
  let rng = Rng.create 42 in
  let buckets = Array.make 8 0 in
  let draws = 80_000 in
  for _ = 1 to draws do
    let v = Rng.int rng 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i count ->
      let frac = float_of_int count /. float_of_int draws in
      if frac < 0.115 || frac > 0.135 then
        Alcotest.failf "bucket %d has fraction %.4f (expected ~0.125)" i frac)
    buckets

let test_int_in () =
  let rng = Rng.create 3 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in rng (-5) 5 in
    check "in inclusive range" true (v >= -5 && v <= 5)
  done

let test_float_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    check "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_bernoulli_frequency () =
  let rng = Rng.create 5 in
  let hits = ref 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int draws in
  check "p=0.3 frequency" true (frac > 0.28 && frac < 0.32)

let test_geometric_mean () =
  (* E[geometric(p)] = 1/p. *)
  let rng = Rng.create 6 in
  let total = ref 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    total := !total + Rng.geometric rng 0.25
  done;
  let mean = float_of_int !total /. float_of_int draws in
  check "mean close to 4" true (mean > 3.8 && mean < 4.2)

let test_geometric_p1 () =
  let rng = Rng.create 6 in
  for _ = 1 to 100 do
    check_int "p=1 is always 1" 1 (Rng.geometric rng 1.0)
  done

let test_shuffle_is_permutation () =
  let rng = Rng.create 7 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle preserves multiset" (Array.init 100 (fun i -> i)) sorted

let test_permutation_valid () =
  let rng = Rng.create 8 in
  let p = Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation of 0..49" (Array.init 50 (fun i -> i)) sorted

let test_sample_without_replacement () =
  let rng = Rng.create 9 in
  for _ = 1 to 100 do
    let s = Rng.sample_without_replacement rng 20 1000 in
    check_int "20 samples" 20 (Array.length s);
    let tbl = Hashtbl.create 32 in
    Array.iter
      (fun v ->
        check "in range" true (v >= 0 && v < 1000);
        check "distinct" false (Hashtbl.mem tbl v);
        Hashtbl.replace tbl v ())
      s
  done

let test_sample_full () =
  let rng = Rng.create 10 in
  let s = Rng.sample_without_replacement rng 10 10 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "m = n is a permutation" (Array.init 10 (fun i -> i)) sorted

let test_sample_uniform_marginal () =
  (* Each element of [0, 10) should appear in a 3-sample with probability
     3/10. *)
  let rng = Rng.create 11 in
  let counts = Array.make 10 0 in
  let trials = 30_000 in
  for _ = 1 to trials do
    Array.iter (fun v -> counts.(v) <- counts.(v) + 1)
      (Rng.sample_without_replacement rng 3 10)
  done;
  Array.iteri
    (fun i count ->
      let frac = float_of_int count /. float_of_int trials in
      if frac < 0.28 || frac > 0.32 then
        Alcotest.failf "element %d sampled with frequency %.4f (expected 0.30)" i frac)
    counts

let test_split_determinism () =
  let a = Rng.create 33 and b = Rng.create 33 in
  let a1 = Rng.split a and b1 = Rng.split b in
  for _ = 1 to 50 do
    Alcotest.(check int64) "split is deterministic" (Rng.bits64 a1) (Rng.bits64 b1)
  done

let test_split_n () =
  let rng = Rng.create 34 in
  let children = Rng.split_n rng 8 in
  check_int "8 children" 8 (Array.length children);
  (* Children streams should differ pairwise on their first output. *)
  let firsts = Array.map Rng.bits64 children in
  let tbl = Hashtbl.create 8 in
  Array.iter (fun v -> Hashtbl.replace tbl v ()) firsts;
  check_int "distinct first outputs" 8 (Hashtbl.length tbl)

let test_pick () =
  let rng = Rng.create 35 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Rng.pick rng a in
    check "picked element" true (v = 10 || v = 20 || v = 30)
  done;
  Alcotest.check_raises "empty array" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick rng [||]))

(* --- property tests --------------------------------------------------- *)

let prop_int_in_range =
  QCheck.Test.make ~name:"Rng.int always lands in [0, bound)" ~count:500
    QCheck.(pair small_int (int_bound 1_000_000))
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let rng = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let prop_permutation_bijective =
  QCheck.Test.make ~name:"Rng.permutation is a bijection" ~count:200
    QCheck.(pair small_int (int_bound 200))
    (fun (seed, n) ->
      let p = Rng.permutation (Rng.create seed) n in
      let sorted = Array.copy p in
      Array.sort compare sorted;
      sorted = Array.init n (fun i -> i))

let prop_sample_distinct =
  QCheck.Test.make ~name:"sample_without_replacement yields distinct values" ~count:200
    QCheck.(triple small_int (int_bound 50) (int_bound 200))
    (fun (seed, m, extra) ->
      let n = m + extra in
      if n = 0 then true
      else begin
        let s = Rng.sample_without_replacement (Rng.create seed) m n in
        let tbl = Hashtbl.create 16 in
        Array.for_all
          (fun v ->
            let fresh = not (Hashtbl.mem tbl v) in
            Hashtbl.replace tbl v ();
            fresh && v >= 0 && v < n)
          s
      end)

let prop_same_seed_same_stream =
  QCheck.Test.make ~name:"equal seeds give equal streams" ~count:100 QCheck.small_int
    (fun seed ->
      let a = Rng.create seed and b = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 20 do
        if Rng.bits64 a <> Rng.bits64 b then ok := false
      done;
      !ok)

let () =
  Alcotest.run "crn_prng"
    [
      ( "splitmix",
        [
          Alcotest.test_case "reference stream" `Quick test_splitmix_reference;
          Alcotest.test_case "determinism" `Quick test_splitmix_determinism;
          Alcotest.test_case "copy replays" `Quick test_splitmix_copy;
          Alcotest.test_case "split independence" `Quick test_splitmix_split_independent;
        ] );
      ( "xoshiro",
        [
          Alcotest.test_case "determinism" `Quick test_xoshiro_determinism;
          Alcotest.test_case "copy replays" `Quick test_xoshiro_copy;
          Alcotest.test_case "jump gives disjoint stream" `Quick test_xoshiro_jump_disjoint;
        ] );
      ( "rng",
        [
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
          Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
          Alcotest.test_case "int_in range" `Quick test_int_in;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "bernoulli frequency" `Quick test_bernoulli_frequency;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "geometric p=1" `Quick test_geometric_p1;
          Alcotest.test_case "shuffle is permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "permutation valid" `Quick test_permutation_valid;
          Alcotest.test_case "sampling distinct" `Quick test_sample_without_replacement;
          Alcotest.test_case "sampling m=n" `Quick test_sample_full;
          Alcotest.test_case "sampling marginal uniform" `Quick test_sample_uniform_marginal;
          Alcotest.test_case "split determinism" `Quick test_split_determinism;
          Alcotest.test_case "split_n distinct" `Quick test_split_n;
          Alcotest.test_case "pick" `Quick test_pick;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_int_in_range;
            prop_permutation_bijective;
            prop_sample_distinct;
            prop_same_seed_same_stream;
          ] );
    ]
