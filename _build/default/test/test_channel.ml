(* Tests for the channel model: bitsets, assignments, topology generators
   and dynamic availability. *)

module Rng = Crn_prng.Rng
module Bitset = Crn_channel.Bitset
module Assignment = Crn_channel.Assignment
module Topology = Crn_channel.Topology
module Dynamic = Crn_channel.Dynamic

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Bitset ------------------------------------------------------------ *)

let test_bitset_basic () =
  let s = Bitset.create 200 in
  check "fresh empty" true (Bitset.is_empty s);
  Bitset.set s 0;
  Bitset.set s 63;
  Bitset.set s 199;
  check_int "cardinal" 3 (Bitset.cardinal s);
  check "mem 63" true (Bitset.mem s 63);
  check "not mem 64" false (Bitset.mem s 64);
  Bitset.clear s 63;
  check "cleared" false (Bitset.mem s 63);
  check_int "cardinal after clear" 2 (Bitset.cardinal s)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "set out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.set s 10);
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.mem s (-1)))

let test_bitset_algebra () =
  let a = Bitset.of_array 100 [| 1; 2; 3; 70 |] in
  let b = Bitset.of_array 100 [| 2; 3; 4; 99 |] in
  check_int "inter_cardinal" 2 (Bitset.inter_cardinal a b);
  Alcotest.(check (list int)) "inter" [ 2; 3 ] (Bitset.elements (Bitset.inter a b));
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 70; 99 ]
    (Bitset.elements (Bitset.union a b));
  Alcotest.(check (list int)) "diff" [ 1; 70 ] (Bitset.elements (Bitset.diff a b))

let test_bitset_iter_order () =
  let s = Bitset.of_array 300 [| 299; 0; 150; 62; 63 |] in
  Alcotest.(check (list int)) "ascending" [ 0; 62; 63; 150; 299 ] (Bitset.elements s)

let test_bitset_capacity_mismatch () =
  let a = Bitset.create 10 and b = Bitset.create 11 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: capacity mismatch")
    (fun () -> ignore (Bitset.inter_cardinal a b))

let prop_bitset_vs_reference =
  (* Compare bitset algebra against sorted-list sets. *)
  let gen = QCheck.(pair (list (int_bound 120)) (list (int_bound 120))) in
  QCheck.Test.make ~name:"bitset algebra matches reference sets" ~count:300 gen
    (fun (xs, ys) ->
      let dedup l = List.sort_uniq compare l in
      let xs = dedup xs and ys = dedup ys in
      let a = Bitset.of_array 121 (Array.of_list xs) in
      let b = Bitset.of_array 121 (Array.of_list ys) in
      let inter_ref = List.filter (fun v -> List.mem v ys) xs in
      let union_ref = dedup (xs @ ys) in
      let diff_ref = List.filter (fun v -> not (List.mem v ys)) xs in
      Bitset.elements (Bitset.inter a b) = inter_ref
      && Bitset.elements (Bitset.union a b) = union_ref
      && Bitset.elements (Bitset.diff a b) = diff_ref
      && Bitset.inter_cardinal a b = List.length inter_ref
      && Bitset.cardinal a = List.length xs)

(* --- Assignment -------------------------------------------------------- *)

let test_assignment_validation () =
  Alcotest.check_raises "duplicate channel"
    (Invalid_argument "Assignment.create: duplicate channel in a node's set") (fun () ->
      ignore (Assignment.create ~num_channels:4 ~local_to_global:[| [| 1; 1 |] |]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Assignment.create: channel id out of range") (fun () ->
      ignore (Assignment.create ~num_channels:4 ~local_to_global:[| [| 1; 4 |] |]));
  Alcotest.check_raises "ragged"
    (Invalid_argument "Assignment.create: ragged rows (nodes must have equal c)")
    (fun () ->
      ignore
        (Assignment.create ~num_channels:4 ~local_to_global:[| [| 1; 2 |]; [| 3 |] |]))

let test_assignment_accessors () =
  let a =
    Assignment.create ~num_channels:6 ~local_to_global:[| [| 4; 1; 2 |]; [| 2; 5; 0 |] |]
  in
  check_int "num_nodes" 2 (Assignment.num_nodes a);
  check_int "num_channels" 6 (Assignment.num_channels a);
  check_int "c" 3 (Assignment.channels_per_node a);
  check_int "global_of_local" 4 (Assignment.global_of_local a ~node:0 ~label:0);
  Alcotest.(check (option int)) "local_of_global hit" (Some 2)
    (Assignment.local_of_global a ~node:0 ~channel:2);
  Alcotest.(check (option int)) "local_of_global miss" None
    (Assignment.local_of_global a ~node:0 ~channel:5);
  check_int "overlap" 1 (Assignment.overlap a 0 1);
  check_int "min overlap" 1 (Assignment.min_pairwise_overlap a)

let test_relabel_preserves_sets () =
  let rng = Rng.create 1 in
  let a = Topology.shared_core rng { Topology.n = 6; c = 5; k = 2 } in
  let b = Assignment.relabel (Rng.create 99) a in
  for v = 0 to 5 do
    check "same channel set" true
      (Bitset.equal (Assignment.channel_set a ~node:v) (Assignment.channel_set b ~node:v))
  done

let test_permute_channels_preserves_overlap () =
  let rng = Rng.create 2 in
  let a = Topology.shared_plus_random rng { Topology.n = 8; c = 6; k = 2 } in
  let b = Assignment.permute_channels (Rng.create 7) a in
  for u = 0 to 7 do
    for v = u + 1 to 7 do
      check_int "overlap preserved" (Assignment.overlap a u v) (Assignment.overlap b u v)
    done
  done

(* --- Topology generators ----------------------------------------------- *)

let specs =
  [
    { Topology.n = 2; c = 3; k = 1 };
    { Topology.n = 8; c = 6; k = 2 };
    { Topology.n = 20; c = 10; k = 5 };
    { Topology.n = 5; c = 12; k = 12 };
    { Topology.n = 1; c = 4; k = 2 };
  ]

let assert_invariants kind spec a =
  let { Topology.n; c; k } = spec in
  check_int (Topology.kind_name kind ^ " nodes") n (Assignment.num_nodes a);
  check_int (Topology.kind_name kind ^ " c") c (Assignment.channels_per_node a);
  if n >= 2 then
    check (Topology.kind_name kind ^ " overlap >= k") true
      (Assignment.min_pairwise_overlap a >= k)

let test_generators_satisfy_invariants () =
  List.iter
    (fun kind ->
      List.iter
        (fun spec ->
          let a = Topology.generate kind (Rng.create 11) spec in
          assert_invariants kind spec a)
        specs)
    Topology.all_kinds

let test_shared_core_exact_overlap () =
  let spec = { Topology.n = 10; c = 8; k = 3 } in
  let a = Topology.shared_core (Rng.create 3) spec in
  check_int "C = k + n(c-k)" (3 + (10 * 5)) (Assignment.num_channels a);
  for u = 0 to 8 do
    for v = u + 1 to 9 do
      check_int "exactly k overlap" 3 (Assignment.overlap a u v)
    done
  done

let test_identical_full_overlap () =
  let spec = { Topology.n = 4; c = 7; k = 2 } in
  let a = Topology.identical (Rng.create 4) spec in
  check_int "overlap = c" 7 (Assignment.min_pairwise_overlap a)

let test_pairwise_private_structure () =
  let spec = { Topology.n = 4; c = 6; k = 2 } in
  let a = Topology.pairwise_private (Rng.create 5) spec in
  (* Every pair shares exactly its dedicated k-block: overlap exactly k. *)
  for u = 0 to 2 do
    for v = u + 1 to 3 do
      check_int "pair overlap" 2 (Assignment.overlap a u v)
    done
  done

let test_pairwise_private_requires_capacity () =
  Alcotest.check_raises "c too small"
    (Invalid_argument "Topology.pairwise_private: need c >= k*(n-1)") (fun () ->
      ignore (Topology.pairwise_private (Rng.create 1) { Topology.n = 10; c = 4; k = 2 }))

let test_global_labels_sorted () =
  let a =
    Topology.shared_plus_random ~global_labels:true (Rng.create 6)
      { Topology.n = 5; c = 6; k = 2 }
  in
  for v = 0 to 4 do
    let prev = ref (-1) in
    for label = 0 to 5 do
      let ch = Assignment.global_of_local a ~node:v ~label in
      check "labels ascend with channel id" true (ch > !prev);
      prev := ch
    done
  done

let test_spec_validation () =
  Alcotest.check_raises "k > c" (Invalid_argument "Topology: k must not exceed c")
    (fun () -> Topology.validate_spec { Topology.n = 3; c = 2; k = 5 });
  Alcotest.check_raises "k = 0" (Invalid_argument "Topology: k must be at least 1")
    (fun () -> Topology.validate_spec { Topology.n = 3; c = 2; k = 0 })

let prop_generators_overlap =
  let kinds = Array.of_list Topology.all_kinds in
  QCheck.Test.make ~name:"every generator keeps pairwise overlap >= k" ~count:150
    QCheck.(quad small_int (int_range 2 12) (int_range 1 8) (int_range 0 4))
    (fun (seed, n, c, kk) ->
      let c = max c 2 in
      let k = 1 + (kk mod c) in
      let kind = kinds.(seed mod Array.length kinds) in
      let spec = { Topology.n; c; k } in
      let a = Topology.generate kind (Rng.create seed) spec in
      Assignment.min_pairwise_overlap a >= k
      && Assignment.channels_per_node a = c
      && Assignment.num_nodes a = n)

(* --- Dynamic ------------------------------------------------------------ *)

let test_dynamic_static () =
  let a = Topology.identical (Rng.create 1) { Topology.n = 3; c = 4; k = 1 } in
  let d = Dynamic.static a in
  check_int "n" 3 (Dynamic.num_nodes d);
  check_int "c" 4 (Dynamic.channels_per_node d);
  check "same assignment every slot" true (Dynamic.at d 0 == Dynamic.at d 57)

let test_dynamic_memoized () =
  let calls = ref 0 in
  let a = Topology.identical (Rng.create 1) { Topology.n = 2; c = 3; k = 1 } in
  let d =
    Dynamic.of_fun ~num_nodes:2 ~channels_per_node:3 (fun _slot ->
        incr calls;
        a)
  in
  ignore (Dynamic.at d 5);
  ignore (Dynamic.at d 5);
  ignore (Dynamic.at d 6);
  check_int "memoized per slot" 2 !calls

let test_dynamic_dimension_check () =
  let a2 = Topology.identical (Rng.create 1) { Topology.n = 2; c = 3; k = 1 } in
  let d = Dynamic.of_fun ~num_nodes:3 ~channels_per_node:3 (fun _ -> a2) in
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Dynamic.of_fun: assignment dimensions changed") (fun () ->
      ignore (Dynamic.at d 0))

let test_reshuffled_shared_core () =
  let spec = { Topology.n = 6; c = 5; k = 2 } in
  let d = Dynamic.reshuffled_shared_core ~seed:(Rng.create 77) spec in
  (* Invariant holds in every queried slot; per-slot draws are deterministic. *)
  for slot = 0 to 20 do
    let a = Dynamic.at d slot in
    check "overlap >= k in every slot" true (Assignment.min_pairwise_overlap a >= 2)
  done;
  let d2 = Dynamic.reshuffled_shared_core ~seed:(Rng.create 77) spec in
  check "deterministic per seed" true
    (Assignment.global_of_local (Dynamic.at d 9) ~node:3 ~label:1
    = Assignment.global_of_local (Dynamic.at d2 9) ~node:3 ~label:1)

let test_rotating () =
  let a = Topology.identical (Rng.create 1) { Topology.n = 2; c = 4; k = 4 } in
  let d = Dynamic.rotating a in
  (* Channel sets never change, only labels rotate. *)
  for slot = 0 to 7 do
    let snapshot = Dynamic.at d slot in
    check "sets preserved" true
      (Bitset.equal
         (Assignment.channel_set snapshot ~node:0)
         (Assignment.channel_set a ~node:0))
  done;
  let ch0_slot0 = Assignment.global_of_local (Dynamic.at d 0) ~node:0 ~label:0 in
  let ch0_slot1 = Assignment.global_of_local (Dynamic.at d 1) ~node:0 ~label:0 in
  check "labels drift" true (ch0_slot0 <> ch0_slot1)

let () =
  Alcotest.run "crn_channel"
    [
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "algebra" `Quick test_bitset_algebra;
          Alcotest.test_case "iteration order" `Quick test_bitset_iter_order;
          Alcotest.test_case "capacity mismatch" `Quick test_bitset_capacity_mismatch;
          QCheck_alcotest.to_alcotest prop_bitset_vs_reference;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "validation" `Quick test_assignment_validation;
          Alcotest.test_case "accessors" `Quick test_assignment_accessors;
          Alcotest.test_case "relabel preserves sets" `Quick test_relabel_preserves_sets;
          Alcotest.test_case "permute preserves overlap" `Quick
            test_permute_channels_preserves_overlap;
        ] );
      ( "topology",
        [
          Alcotest.test_case "all generators invariants" `Quick
            test_generators_satisfy_invariants;
          Alcotest.test_case "shared_core exact overlap" `Quick test_shared_core_exact_overlap;
          Alcotest.test_case "identical full overlap" `Quick test_identical_full_overlap;
          Alcotest.test_case "pairwise_private structure" `Quick test_pairwise_private_structure;
          Alcotest.test_case "pairwise_private capacity" `Quick
            test_pairwise_private_requires_capacity;
          Alcotest.test_case "global labels sorted" `Quick test_global_labels_sorted;
          Alcotest.test_case "spec validation" `Quick test_spec_validation;
          QCheck_alcotest.to_alcotest prop_generators_overlap;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "static" `Quick test_dynamic_static;
          Alcotest.test_case "memoized" `Quick test_dynamic_memoized;
          Alcotest.test_case "dimension check" `Quick test_dynamic_dimension_check;
          Alcotest.test_case "reshuffled shared core" `Quick test_reshuffled_shared_core;
          Alcotest.test_case "rotating" `Quick test_rotating;
        ] );
    ]
