(* Tests for COGCOMP (Theorem 10): end-to-end aggregation correctness, the
   per-phase guarantees (Lemmas 5, 7, 9) and phase 4's linear drain. *)

module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Aggregate = Crn_core.Aggregate
module Cogcomp = Crn_core.Cogcomp
module Disttree = Crn_core.Disttree

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_sum ?(seed = 1) ?(source = 0) kind spec =
  let rng = Rng.create seed in
  let assignment = Topology.generate kind rng spec in
  let values = Array.init spec.Topology.n (fun i -> (i * 13) + 1) in
  let res =
    Cogcomp.run ~monoid:Aggregate.sum ~values ~source ~assignment
      ~k:spec.Topology.k ~rng ()
  in
  (res, Array.fold_left ( + ) 0 values)

(* --- end-to-end correctness ------------------------------------------------ *)

let test_sum_all_topologies () =
  List.iter
    (fun kind ->
      List.iter
        (fun spec ->
          for seed = 1 to 3 do
            let res, expect = run_sum ~seed kind spec in
            if not res.Cogcomp.complete then
              Alcotest.failf "incomplete on %s (n=%d c=%d k=%d seed=%d)"
                (Topology.kind_name kind) spec.Topology.n spec.Topology.c
                spec.Topology.k seed;
            Alcotest.(check (option int))
              (Printf.sprintf "sum on %s" (Topology.kind_name kind))
              (Some expect) res.Cogcomp.root_value
          done)
        [
          { Topology.n = 2; c = 4; k = 2 };
          { Topology.n = 24; c = 8; k = 2 };
          { Topology.n = 10; c = 20; k = 5 };
          { Topology.n = 50; c = 6; k = 1 };
        ])
    Topology.all_kinds

let test_monoids () =
  let spec = { Topology.n = 30; c = 8; k = 2 } in
  let assignment = Topology.shared_plus_random (Rng.create 5) spec in
  let ints = Array.init 30 (fun i -> (i * 17) mod 23) in
  let run monoid values =
    Cogcomp.run ~monoid ~values ~source:0 ~assignment ~k:2 ~rng:(Rng.create 6) ()
  in
  let max_res = run Aggregate.max_int ints in
  Alcotest.(check (option int)) "max" (Some (Array.fold_left max ints.(0) ints))
    max_res.Cogcomp.root_value;
  let min_res = run Aggregate.min_int ints in
  Alcotest.(check (option int)) "min" (Some (Array.fold_left min ints.(0) ints))
    min_res.Cogcomp.root_value;
  let count_res = run Aggregate.count (Array.make 30 1) in
  Alcotest.(check (option int)) "count" (Some 30) count_res.Cogcomp.root_value

let test_multiset_every_value_arrives () =
  (* The multiset monoid proves each node's value reaches the root exactly
     once, independent of combine order. *)
  let spec = { Topology.n = 25; c = 10; k = 3 } in
  let assignment = Topology.shared_core (Rng.create 7) spec in
  let values = Array.init 25 (fun i -> [ i ]) in
  let res =
    Cogcomp.run ~monoid:Aggregate.multiset ~values ~source:3 ~assignment ~k:3
      ~rng:(Rng.create 8) ()
  in
  check "complete" true res.Cogcomp.complete;
  let collected = Option.get res.Cogcomp.root_value in
  Alcotest.(check (list int)) "exactly 0..24" (List.init 25 (fun i -> i)) collected

let test_nonzero_source () =
  let spec = { Topology.n = 20; c = 8; k = 4 } in
  let res, expect = run_sum ~seed:9 ~source:13 Topology.Clustered spec in
  check "complete" true res.Cogcomp.complete;
  Alcotest.(check (option int)) "sum to non-zero source" (Some expect)
    res.Cogcomp.root_value

let test_single_node () =
  let spec = { Topology.n = 1; c = 3; k = 1 } in
  let res, expect = run_sum Topology.Identical spec in
  check "complete" true res.Cogcomp.complete;
  Alcotest.(check (option int)) "n=1 root value" (Some expect) res.Cogcomp.root_value;
  check_int "phase4 trivial" 0 res.Cogcomp.phase4_slots

let test_values_length_mismatch () =
  let spec = { Topology.n = 4; c = 4; k = 2 } in
  let assignment = Topology.identical (Rng.create 1) spec in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Cogcomp.run: values length mismatch") (fun () ->
      ignore
        (Cogcomp.run ~monoid:Aggregate.sum ~values:[| 1; 2 |] ~source:0 ~assignment
           ~k:2 ~rng:(Rng.create 1) ()))

let test_incomplete_when_budget_tiny () =
  (* With a starved phase-1 budget, the run must report incomplete and no
     root value rather than a wrong one. *)
  let spec = { Topology.n = 64; c = 16; k = 1 } in
  let assignment = Topology.shared_core (Rng.create 2) spec in
  let values = Array.make 64 1 in
  let res =
    Cogcomp.run ~budget_factor:0.05 ~monoid:Aggregate.sum ~values ~source:0
      ~assignment ~k:1 ~rng:(Rng.create 3) ()
  in
  check "incomplete" false res.Cogcomp.complete;
  Alcotest.(check (option int)) "no root value" None res.Cogcomp.root_value

(* --- phase structure --------------------------------------------------------- *)

let test_phase_lengths () =
  let spec = { Topology.n = 32; c = 8; k = 2 } in
  let res, _ = run_sum ~seed:11 Topology.Shared_plus_random spec in
  check_int "phase 2 is exactly n slots" 32 res.Cogcomp.phase2_slots;
  check_int "phase 3 mirrors phase 1" res.Cogcomp.phase1_slots res.Cogcomp.phase3_slots;
  check_int "total adds up"
    (res.Cogcomp.phase1_slots + res.Cogcomp.phase2_slots + res.Cogcomp.phase3_slots
    + res.Cogcomp.phase4_slots)
    res.Cogcomp.total_slots;
  check "phase 4 slots are 3 per step" true (res.Cogcomp.phase4_slots mod 3 = 0)

let test_mediators_unique_nonsource () =
  let spec = { Topology.n = 40; c = 10; k = 3 } in
  let res, _ = run_sum ~seed:12 Topology.Shared_core spec in
  check "complete" true res.Cogcomp.complete;
  (* Mediators are distinct non-source cluster members; at most one per used
     channel, and at least one exists when n > 1. *)
  let ms = res.Cogcomp.mediators in
  check "at least one mediator" true (ms <> []);
  check "source is never a mediator" true (not (List.mem 0 ms));
  check "sorted distinct" true (List.sort_uniq compare ms = ms);
  check "at most one per channel (<= c distinct used channels)" true
    (List.length ms <= spec.Topology.c * spec.Topology.n)

let test_everyone_terminates () =
  let spec = { Topology.n = 48; c = 12; k = 2 } in
  let res, _ = run_sum ~seed:13 Topology.Shared_plus_random spec in
  check "all nodes terminated" true (Array.for_all (fun b -> b) res.Cogcomp.terminated)

let test_phase4_linear_in_n () =
  (* Theorem 10: phase 4 drains in O(n) steps. Allow a generous constant. *)
  List.iter
    (fun n ->
      let spec = { Topology.n; c = 8; k = 2 } in
      let res, _ = run_sum ~seed:14 Topology.Shared_core spec in
      check "complete" true res.Cogcomp.complete;
      check
        (Printf.sprintf "phase4 steps <= 4n at n=%d" n)
        true
        (res.Cogcomp.phase4_steps <= 4 * n))
    [ 16; 32; 64; 128 ]

let test_tree_in_result_valid () =
  let spec = { Topology.n = 36; c = 9; k = 3 } in
  let res, _ = run_sum ~seed:15 Topology.Pairwise_private spec in
  (match Disttree.validate res.Cogcomp.tree with
  | Ok () -> ()
  | Error e -> Alcotest.failf "tree invalid: %s" e);
  check "spanning" true (Disttree.is_spanning res.Cogcomp.tree)

let test_capacity_lower_bound () =
  (* §5 discussion: when all nodes share the same k channels and each
     channel carries one message per slot, aggregation needs Omega(n/k)
     slots. In phase 4 each step delivers at most one value per channel, so
     steps >= (n-1)/k on the identical topology with c = k. *)
  let n = 100 and k = 4 in
  let spec = { Topology.n; c = k; k } in
  let assignment = Topology.identical (Rng.create 20) spec in
  let values = Array.init n (fun i -> i) in
  let res =
    Cogcomp.run ~monoid:Aggregate.sum ~values ~source:0 ~assignment ~k
      ~rng:(Rng.create 21) ()
  in
  check "complete" true res.Cogcomp.complete;
  check
    (Printf.sprintf "phase4 steps (%d) >= (n-1)/k (%d)" res.Cogcomp.phase4_steps
       ((n - 1) / k))
    true
    (res.Cogcomp.phase4_steps >= (n - 1) / k)

(* --- ablation & message-size accounting ------------------------------------------ *)

let test_unmediated_still_correct () =
  (* Ablating the mediators must not change the result, only the time. *)
  List.iter
    (fun seed ->
      let spec = { Topology.n = 30; c = 8; k = 2 } in
      let assignment = Topology.shared_plus_random (Rng.create seed) spec in
      let values = Array.init 30 (fun i -> i * 2) in
      let res =
        Cogcomp.run ~mediated:false ~monoid:Aggregate.sum ~values ~source:0
          ~assignment ~k:2 ~rng:(Rng.create (seed + 50)) ()
      in
      check "unmediated complete" true res.Cogcomp.complete;
      Alcotest.(check (option int)) "unmediated sum" (Some (Array.fold_left ( + ) 0 values))
        res.Cogcomp.root_value)
    [ 1; 2; 3; 4; 5 ]

let test_unmediated_not_faster () =
  (* Without the announcement slot gating senders, contention can only
     increase the number of phase-4 steps (never decrease it by more than
     noise). Compare means over several seeds. *)
  let spec = { Topology.n = 80; c = 8; k = 2 } in
  let steps mediated seed =
    let assignment = Topology.shared_core (Rng.create seed) spec in
    let values = Array.init 80 (fun i -> i) in
    let res =
      Cogcomp.run ~mediated ~monoid:Aggregate.sum ~values ~source:0 ~assignment
        ~k:2 ~rng:(Rng.create (seed + 90)) ()
    in
    check "complete" true res.Cogcomp.complete;
    float_of_int res.Cogcomp.phase4_steps
  in
  let mean f = Array.init 7 (fun i -> f (300 + i)) |> Crn_stats.Summary.mean in
  let with_med = mean (steps true) and without_med = mean (steps false) in
  check
    (Printf.sprintf "unmediated (%.1f) >= 0.9x mediated (%.1f)" without_med with_med)
    true
    (without_med >= 0.9 *. with_med)

let test_payload_digest_constant () =
  (* §5 discussion: with an associative fold, every message carries one
     digest — measure = 1 per payload. *)
  let spec = { Topology.n = 40; c = 10; k = 3 } in
  let assignment = Topology.shared_plus_random (Rng.create 7) spec in
  let values = Array.init 40 (fun i -> i) in
  let res =
    Cogcomp.run ~measure:(fun _ -> 1) ~monoid:Aggregate.sum ~values ~source:0
      ~assignment ~k:3 ~rng:(Rng.create 8) ()
  in
  check "complete" true res.Cogcomp.complete;
  check_int "digest payload is constant" 1 res.Cogcomp.max_payload;
  check "total counts one per send" true (res.Cogcomp.total_payload >= 39)

let test_payload_multiset_linear () =
  (* Forwarding raw value lists makes the biggest message carry a whole
     subtree — Omega(largest subtree) values. *)
  let spec = { Topology.n = 40; c = 10; k = 3 } in
  let assignment = Topology.shared_plus_random (Rng.create 9) spec in
  let values = Array.init 40 (fun i -> [ i ]) in
  let res =
    Cogcomp.run ~measure:List.length ~monoid:Aggregate.multiset ~values ~source:0
      ~assignment ~k:3 ~rng:(Rng.create 10) ()
  in
  check "complete" true res.Cogcomp.complete;
  (* The source's children carry their whole subtrees; with n = 40 the
     largest must exceed any constant digest. *)
  check
    (Printf.sprintf "multiset max payload (%d) grows with subtree size"
       res.Cogcomp.max_payload)
    true
    (res.Cogcomp.max_payload >= 5);
  check_int "no measure -> zero" 0
    (Cogcomp.run ~monoid:Aggregate.sum ~values:(Array.init 40 (fun i -> i))
       ~source:0 ~assignment ~k:3 ~rng:(Rng.create 11) ())
      .Cogcomp.max_payload

let test_fully_emulated_cogcomp () =
  (* The entire four-phase protocol over the raw collision radio: correct
     result, raw-round cost bounded by cap x total abstract slots. *)
  List.iter
    (fun seed ->
      let spec = { Topology.n = 24; c = 8; k = 3 } in
      let assignment = Topology.shared_plus_random (Rng.create seed) spec in
      let values = Array.init 24 (fun i -> i + 2) in
      let res, raw_rounds =
        Cogcomp.run_emulated ~monoid:Aggregate.sum ~values ~source:0 ~assignment
          ~k:3 ~rng:(Rng.create (seed + 60)) ()
      in
      check "emulated complete" true res.Cogcomp.complete;
      Alcotest.(check (option int)) "emulated sum" (Some (Array.fold_left ( + ) 0 values))
        res.Cogcomp.root_value;
      check "raw rounds >= total slots" true (raw_rounds >= res.Cogcomp.total_slots);
      let cap = Crn_radio.Backoff.expected_rounds_bound 24 in
      check "raw rounds bounded" true (raw_rounds <= cap * res.Cogcomp.total_slots))
    [ 1; 2; 3 ]

let test_emulated_matches_abstract_value () =
  (* Abstract and emulated runs on the same network agree on the aggregate
     (they share nothing but the inputs). *)
  let spec = { Topology.n = 20; c = 6; k = 2 } in
  let assignment = Topology.shared_core (Rng.create 70) spec in
  let values = Array.init 20 (fun i -> (i * 11) mod 17) in
  let a =
    Cogcomp.run ~monoid:Aggregate.sum ~values ~source:0 ~assignment ~k:2
      ~rng:(Rng.create 71) ()
  in
  let b, _ =
    Cogcomp.run_emulated ~monoid:Aggregate.sum ~values ~source:0 ~assignment ~k:2
      ~rng:(Rng.create 72) ()
  in
  Alcotest.(check (option int)) "same value" a.Cogcomp.root_value b.Cogcomp.root_value

(* --- properties ---------------------------------------------------------------- *)

let prop_sum_correct =
  let kinds = Array.of_list Topology.all_kinds in
  QCheck.Test.make ~name:"COGCOMP computes the exact sum" ~count:40
    QCheck.(quad small_int (int_range 2 30) (int_range 2 10) (int_range 1 5))
    (fun (seed, n, c, kk) ->
      let k = 1 + (kk mod c) in
      let kind = kinds.(seed mod Array.length kinds) in
      let spec = { Topology.n; c; k } in
      let rng = Rng.create (seed + 500) in
      let assignment = Topology.generate kind rng spec in
      let values = Array.init n (fun i -> i + seed) in
      let res =
        Cogcomp.run ~monoid:Aggregate.sum ~values ~source:(seed mod n) ~assignment
          ~k ~rng ()
      in
      res.Cogcomp.complete
      && res.Cogcomp.root_value = Some (Array.fold_left ( + ) 0 values))

let prop_multiset_complete =
  QCheck.Test.make ~name:"every node's value reaches the root exactly once" ~count:25
    QCheck.(triple small_int (int_range 2 20) (int_range 2 8))
    (fun (seed, n, c) ->
      let k = max 1 (c / 2) in
      let spec = { Topology.n; c; k } in
      let rng = Rng.create (seed + 900) in
      let assignment = Topology.shared_plus_random rng spec in
      let values = Array.init n (fun i -> [ i ]) in
      let res =
        Cogcomp.run ~monoid:Aggregate.multiset ~values ~source:0 ~assignment ~k ~rng ()
      in
      res.Cogcomp.complete
      && res.Cogcomp.root_value = Some (List.init n (fun i -> i)))

let () =
  Alcotest.run "cogcomp"
    [
      ( "correctness",
        [
          Alcotest.test_case "sum on all topologies" `Quick test_sum_all_topologies;
          Alcotest.test_case "max/min/count monoids" `Quick test_monoids;
          Alcotest.test_case "multiset completeness" `Quick test_multiset_every_value_arrives;
          Alcotest.test_case "non-zero source" `Quick test_nonzero_source;
          Alcotest.test_case "single node" `Quick test_single_node;
          Alcotest.test_case "values length mismatch" `Quick test_values_length_mismatch;
          Alcotest.test_case "tiny budget -> incomplete" `Quick test_incomplete_when_budget_tiny;
        ] );
      ( "phases",
        [
          Alcotest.test_case "phase lengths" `Quick test_phase_lengths;
          Alcotest.test_case "mediators" `Quick test_mediators_unique_nonsource;
          Alcotest.test_case "everyone terminates" `Quick test_everyone_terminates;
          Alcotest.test_case "phase 4 linear" `Slow test_phase4_linear_in_n;
          Alcotest.test_case "tree valid" `Quick test_tree_in_result_valid;
          Alcotest.test_case "capacity lower bound" `Quick test_capacity_lower_bound;
        ] );
      ( "raw-radio emulation",
        [
          Alcotest.test_case "fully emulated" `Quick test_fully_emulated_cogcomp;
          Alcotest.test_case "matches abstract value" `Quick
            test_emulated_matches_abstract_value;
        ] );
      ( "ablation & payloads",
        [
          Alcotest.test_case "unmediated correct" `Quick test_unmediated_still_correct;
          Alcotest.test_case "unmediated not faster" `Slow test_unmediated_not_faster;
          Alcotest.test_case "digest payload constant" `Quick test_payload_digest_constant;
          Alcotest.test_case "multiset payload linear" `Quick test_payload_multiset_linear;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_sum_correct; prop_multiset_complete ] );
    ]
