(* Tests for COGCAST (Theorem 4) and the distribution tree it builds. *)

module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Assignment = Crn_channel.Assignment
module Dynamic = Crn_channel.Dynamic
module Jammer = Crn_radio.Jammer
module Jamming_reduction = Crn_radio.Jamming_reduction
module Cogcast = Crn_core.Cogcast
module Disttree = Crn_core.Disttree
module Complexity = Crn_core.Complexity

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_on ?record ?(seed = 1) ?(source = 0) kind spec =
  let rng = Rng.create seed in
  let assignment = Topology.generate kind rng spec in
  Cogcast.run_static ?record ~source ~assignment ~k:spec.Topology.k ~rng ()

(* --- completion ---------------------------------------------------------- *)

let test_completes_all_topologies () =
  List.iter
    (fun kind ->
      List.iter
        (fun spec ->
          for seed = 1 to 3 do
            let r = run_on ~seed kind spec in
            if r.Cogcast.completed_at = None then
              Alcotest.failf "COGCAST failed on %s (n=%d c=%d k=%d seed=%d): %d/%d informed"
                (Topology.kind_name kind) spec.Topology.n spec.Topology.c spec.Topology.k
                seed r.Cogcast.informed_count r.Cogcast.n
          done)
        [
          { Topology.n = 2; c = 4; k = 1 };
          { Topology.n = 32; c = 8; k = 2 };
          { Topology.n = 16; c = 16; k = 8 };
          { Topology.n = 64; c = 4; k = 4 };
        ])
    Topology.all_kinds

let test_c_bigger_than_n () =
  (* The max{1, c/n} regime: c = 64 channels, only 8 nodes. *)
  let spec = { Topology.n = 8; c = 64; k = 8 } in
  let r = run_on ~seed:5 Topology.Shared_core spec in
  check "completes when c >> n" true (r.Cogcast.completed_at <> None)

let test_single_node () =
  let spec = { Topology.n = 1; c = 3; k = 1 } in
  let r = run_on Topology.Identical spec in
  Alcotest.(check (option int)) "n=1 complete at slot 0" (Some 0) r.Cogcast.completed_at

let test_source_out_of_range () =
  let spec = { Topology.n = 4; c = 4; k = 2 } in
  let assignment = Topology.identical (Rng.create 1) spec in
  Alcotest.check_raises "bad source" (Invalid_argument "Cogcast.run: source out of range")
    (fun () ->
      ignore (Cogcast.run_static ~source:7 ~assignment ~k:2 ~rng:(Rng.create 1) ()))

let test_deterministic_given_seed () =
  let spec = { Topology.n = 24; c = 8; k = 2 } in
  let r1 = run_on ~seed:9 Topology.Shared_plus_random spec in
  let r2 = run_on ~seed:9 Topology.Shared_plus_random spec in
  Alcotest.(check (option int)) "same completion slot" r1.Cogcast.completed_at
    r2.Cogcast.completed_at;
  check "same parents" true (r1.Cogcast.parent = r2.Cogcast.parent)

let test_budget_not_exceeded () =
  let spec = { Topology.n = 32; c = 8; k = 2 } in
  let budget = Complexity.cogcast_slots ~n:32 ~c:8 ~k:2 () in
  let r = run_on ~seed:2 Topology.Shared_core spec in
  check "slots within budget" true (r.Cogcast.slots_run <= budget)

let test_informed_fields_consistent () =
  let spec = { Topology.n = 20; c = 6; k = 2 } in
  let r = run_on ~seed:3 Topology.Shared_plus_random spec in
  Array.iteri
    (fun v informed ->
      if v = r.Cogcast.source then begin
        check "source informed" true informed;
        check "source has no parent" true (r.Cogcast.parent.(v) = None)
      end
      else if informed then begin
        check "informed has parent" true (r.Cogcast.parent.(v) <> None);
        check "informed has slot" true (r.Cogcast.informed_at.(v) <> None);
        check "informed has label" true (r.Cogcast.informed_label.(v) <> None);
        (* Parent was informed strictly earlier (source counts as slot -1). *)
        let parent = Option.get r.Cogcast.parent.(v) in
        let v_slot = Option.get r.Cogcast.informed_at.(v) in
        let p_slot =
          if parent = r.Cogcast.source then -1
          else Option.get r.Cogcast.informed_at.(parent)
        in
        check "parent informed earlier" true (p_slot < v_slot)
      end)
    r.Cogcast.informed

(* --- recorded logs -------------------------------------------------------- *)

let test_logs_match_outcome () =
  let spec = { Topology.n = 12; c = 6; k = 3 } in
  let rng = Rng.create 4 in
  let assignment = Topology.shared_plus_random rng spec in
  let r =
    Cogcast.run_static ~record:true ~stop_when_complete:false ~source:0 ~assignment
      ~k:3 ~rng ()
  in
  let logs = Option.get r.Cogcast.logs in
  (* Exactly one Got_informed entry per informed non-source node, at the
     recorded slot and label. *)
  Array.iteri
    (fun v node_log ->
      let informs =
        Array.to_list node_log
        |> List.filteri (fun _ e ->
               match e.Cogcast.event with Cogcast.Got_informed _ -> true | _ -> false)
      in
      if v = r.Cogcast.source then check_int "source never informed" 0 (List.length informs)
      else if r.Cogcast.informed.(v) then begin
        check_int "exactly one inform event" 1 (List.length informs);
        let slot = Option.get r.Cogcast.informed_at.(v) in
        let entry = node_log.(slot) in
        (match entry.Cogcast.event with
        | Cogcast.Got_informed { parent } ->
            Alcotest.(check (option int)) "parent agrees" (Some parent) r.Cogcast.parent.(v)
        | _ -> Alcotest.fail "log slot should be the inform event");
        Alcotest.(check (option int)) "label agrees" (Some entry.Cogcast.label)
          r.Cogcast.informed_label.(v)
      end)
    logs;
  (* Each slot's winners are distinct per channel: for every slot, the set of
     (channel, Sent_won) pairs has no duplicates. *)
  for slot = 0 to r.Cogcast.slots_run - 1 do
    let winners = Hashtbl.create 8 in
    Array.iteri
      (fun v node_log ->
        let e = node_log.(slot) in
        match e.Cogcast.event with
        | Cogcast.Sent_won ->
            let channel =
              Assignment.global_of_local assignment ~node:v ~label:e.Cogcast.label
            in
            check "one winner per channel per slot" false (Hashtbl.mem winners channel);
            Hashtbl.replace winners channel ()
        | _ -> ())
      logs
  done

(* --- distribution tree ----------------------------------------------------- *)

let test_tree_valid_and_spanning () =
  List.iter
    (fun kind ->
      let spec = { Topology.n = 40; c = 10; k = 3 } in
      let r = run_on ~seed:6 kind spec in
      let tree = Disttree.of_result r in
      (match Disttree.validate tree with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid tree on %s: %s" (Topology.kind_name kind) e);
      check "spanning" true (Disttree.is_spanning tree))
    Topology.all_kinds

let test_tree_cluster_accounting () =
  let spec = { Topology.n = 50; c = 12; k = 4 } in
  let r = run_on ~seed:7 Topology.Shared_plus_random spec in
  let tree = Disttree.of_result r in
  let total = Array.fold_left ( + ) 0 (Disttree.cluster_sizes tree) in
  check_int "cluster members = n - 1" (spec.Topology.n - 1) total;
  (* Theorem 10's accounting: sum over slots of the largest cluster is <= n. *)
  check "sum of per-slot max clusters <= n" true
    (Disttree.sum_max_cluster_per_slot tree <= spec.Topology.n)

let test_tree_height_bounded_by_slots () =
  let spec = { Topology.n = 30; c = 8; k = 2 } in
  let r = run_on ~seed:8 Topology.Shared_core spec in
  let tree = Disttree.of_result r in
  check "height <= slots" true (Disttree.height tree <= r.Cogcast.slots_run)

(* --- dynamic availability (§7) --------------------------------------------- *)

let test_dynamic_reshuffled () =
  let spec = { Topology.n = 24; c = 8; k = 2 } in
  let availability = Dynamic.reshuffled_shared_core ~seed:(Rng.create 10) spec in
  let max_slots = Complexity.cogcast_slots ~n:24 ~c:8 ~k:2 () in
  let r =
    Cogcast.run ~source:0 ~availability ~rng:(Rng.create 11) ~max_slots ()
  in
  check "completes under per-slot churn" true (r.Cogcast.completed_at <> None)

let test_dynamic_rotating () =
  let spec = { Topology.n = 24; c = 8; k = 3 } in
  let assignment = Topology.shared_plus_random (Rng.create 12) spec in
  let availability = Dynamic.rotating assignment in
  let max_slots = Complexity.cogcast_slots ~n:24 ~c:8 ~k:3 () in
  let r = Cogcast.run ~source:0 ~availability ~rng:(Rng.create 13) ~max_slots () in
  check "completes under label rotation" true (r.Cogcast.completed_at <> None)

(* --- jamming (Theorem 18 route) --------------------------------------------- *)

let test_completes_under_jamming_via_reduction () =
  (* n nodes, all c channels; adversary jams k' < c/2 channels per node per
     slot. Sensing nodes avoid jammed channels via the reduction
     availability; COGCAST completes with overlap c - 2k'. *)
  let n = 16 and big_c = 16 and budget = 5 in
  let jammer = Jammer.random_per_node ~seed:21L ~budget ~num_channels:big_c in
  let availability =
    Jamming_reduction.availability_of_jammer ~shuffle_labels:(Rng.create 14)
      ~num_nodes:n ~num_channels:big_c ~jammer ()
  in
  let k = Jamming_reduction.overlap_guarantee ~num_channels:big_c ~budget in
  let c = big_c - budget in
  let max_slots = 4 * Complexity.cogcast_slots ~n ~c ~k () in
  let r = Cogcast.run ~source:0 ~availability ~rng:(Rng.create 15) ~max_slots () in
  check "completes despite n-uniform jamming" true (r.Cogcast.completed_at <> None)

(* --- the raw-radio composition (footnote 4) ------------------------------------ *)

let test_emulated_cogcast_completes () =
  (* COGCAST over decay-backoff contention sessions on the raw radio:
     completes in a similar number of abstract slots, paying O(log² n) raw
     rounds per slot. *)
  let spec = { Topology.n = 32; c = 8; k = 2 } in
  let assignment = Topology.shared_plus_random (Rng.create 40) spec in
  let max_slots = 4 * Complexity.cogcast_slots ~n:32 ~c:8 ~k:2 () in
  let r, outcome =
    Cogcast.run_emulated ~source:0 ~availability:(Dynamic.static assignment)
      ~rng:(Rng.create 41) ~max_slots ()
  in
  check "emulated run completes" true (r.Cogcast.completed_at <> None);
  check "raw rounds >= abstract slots" true
    (outcome.Crn_radio.Emulation.raw_rounds >= r.Cogcast.slots_run);
  let cap = Crn_radio.Backoff.expected_rounds_bound 32 in
  check "raw rounds within cap * slots" true
    (outcome.Crn_radio.Emulation.raw_rounds <= cap * r.Cogcast.slots_run)

let test_emulated_tree_still_valid () =
  let spec = { Topology.n = 24; c = 6; k = 3 } in
  let assignment = Topology.shared_core (Rng.create 42) spec in
  let max_slots = 4 * Complexity.cogcast_slots ~n:24 ~c:6 ~k:3 () in
  let r, _ =
    Cogcast.run_emulated ~source:0 ~availability:(Dynamic.static assignment)
      ~rng:(Rng.create 43) ~max_slots ()
  in
  check "complete" true (r.Cogcast.completed_at <> None);
  let tree = Disttree.of_result r in
  (match Disttree.validate tree with
  | Ok () -> ()
  | Error e -> Alcotest.failf "emulated tree invalid: %s" e);
  check "spanning" true (Disttree.is_spanning tree)

(* --- robustness under transient faults (§1 discussion) ----------------------- *)

let test_completes_with_random_naps () =
  (* Each node misses 30% of slots independently; the epidemic slows by a
     constant factor but still completes within an enlarged budget. *)
  let spec = { Topology.n = 32; c = 8; k = 2 } in
  let assignment = Topology.shared_plus_random (Rng.create 30) spec in
  let faults = Crn_radio.Faults.random_naps ~seed:31L ~rate:0.3 in
  let max_slots = 4 * Complexity.cogcast_slots ~n:32 ~c:8 ~k:2 () in
  let r =
    Cogcast.run ~faults ~source:0 ~availability:(Dynamic.static assignment)
      ~rng:(Rng.create 32) ~max_slots ()
  in
  check "completes under 30% naps" true (r.Cogcast.completed_at <> None)

let test_completes_with_duty_cycling () =
  (* Staggered periodic sleep: every node is down 1/4 of the time. *)
  let spec = { Topology.n = 24; c = 6; k = 3 } in
  let assignment = Topology.shared_core (Rng.create 33) spec in
  let faults = Crn_radio.Faults.periodic_nap ~period:8 ~nap:2 ~offset_stride:3 in
  let max_slots = 4 * Complexity.cogcast_slots ~n:24 ~c:6 ~k:3 () in
  let r =
    Cogcast.run ~faults ~source:0 ~availability:(Dynamic.static assignment)
      ~rng:(Rng.create 34) ~max_slots ()
  in
  check "completes under duty cycling" true (r.Cogcast.completed_at <> None)

let test_crashed_node_blocks_only_itself () =
  (* A permanently crashed non-source node is never informed, but everyone
     else still is. *)
  let spec = { Topology.n = 16; c = 6; k = 2 } in
  let assignment = Topology.shared_plus_random (Rng.create 35) spec in
  let faults = Crn_radio.Faults.crash ~node:7 ~from_slot:0 in
  let max_slots = 4 * Complexity.cogcast_slots ~n:16 ~c:6 ~k:2 () in
  let r =
    Cogcast.run ~faults ~source:0 ~availability:(Dynamic.static assignment)
      ~rng:(Rng.create 36) ~max_slots ()
  in
  check "crashed node uninformed" false r.Cogcast.informed.(7);
  check_int "everyone else informed" (spec.Topology.n - 1) r.Cogcast.informed_count

let test_completes_with_staggered_activation () =
  (* Nodes wake up over a window of 50 slots; the epidemic still completes
     (late wakers simply join the audience late). *)
  let spec = { Topology.n = 20; c = 6; k = 2 } in
  let assignment = Topology.shared_plus_random (Rng.create 37) spec in
  let activation = Array.init 20 (fun v -> (v * 13) mod 50) in
  activation.(0) <- 0; (* the source is up from the start *)
  let faults = Crn_radio.Faults.staggered_activation ~activation in
  let max_slots = 50 + (4 * Complexity.cogcast_slots ~n:20 ~c:6 ~k:2 ()) in
  let r =
    Cogcast.run ~faults ~source:0 ~availability:(Dynamic.static assignment)
      ~rng:(Rng.create 38) ~max_slots ()
  in
  check "completes with staggered activation" true (r.Cogcast.completed_at <> None)

(* --- statistical shape (small-scale Theorem 4 sanity) ----------------------- *)

let median_completion ~kind ~spec ~trials =
  let samples =
    Array.init trials (fun seed ->
        let r = run_on ~seed:(100 + seed) kind spec in
        match r.Cogcast.completed_at with
        | Some s -> float_of_int s
        | None -> Alcotest.fail "incomplete run in shape test")
  in
  Crn_stats.Summary.median samples

let test_larger_k_is_faster () =
  let base = { Topology.n = 48; c = 16; k = 1 } in
  let m1 = median_completion ~kind:Topology.Shared_core ~spec:base ~trials:9 in
  let m8 =
    median_completion ~kind:Topology.Shared_core ~spec:{ base with Topology.k = 8 }
      ~trials:9
  in
  check "k=8 at least 2x faster than k=1 (median)" true (m8 *. 2.0 <= m1)

let test_more_channels_is_slower () =
  let small = { Topology.n = 48; c = 8; k = 2 } in
  let large = { Topology.n = 48; c = 32; k = 2 } in
  let ms = median_completion ~kind:Topology.Shared_core ~spec:small ~trials:9 in
  let ml = median_completion ~kind:Topology.Shared_core ~spec:large ~trials:9 in
  check "c=32 at least 2x slower than c=8 (median)" true (ms *. 2.0 <= ml)

let prop_always_completes_within_budget =
  QCheck.Test.make ~name:"COGCAST completes within the Theorem 4 budget" ~count:60
    QCheck.(quad small_int (int_range 2 40) (int_range 2 12) (int_range 1 6))
    (fun (seed, n, c, kk) ->
      let k = 1 + (kk mod c) in
      let spec = { Topology.n; c; k } in
      let rng = Rng.create (seed + 1000) in
      let assignment = Topology.shared_plus_random rng spec in
      let r = Cogcast.run_static ~source:0 ~assignment ~k ~rng () in
      r.Cogcast.completed_at <> None)

let () =
  Alcotest.run "cogcast"
    [
      ( "completion",
        [
          Alcotest.test_case "all topologies" `Quick test_completes_all_topologies;
          Alcotest.test_case "c > n regime" `Quick test_c_bigger_than_n;
          Alcotest.test_case "single node" `Quick test_single_node;
          Alcotest.test_case "source validation" `Quick test_source_out_of_range;
          Alcotest.test_case "deterministic per seed" `Quick test_deterministic_given_seed;
          Alcotest.test_case "budget respected" `Quick test_budget_not_exceeded;
          Alcotest.test_case "result fields consistent" `Quick test_informed_fields_consistent;
        ] );
      ( "logs",
        [ Alcotest.test_case "logs match outcome" `Quick test_logs_match_outcome ] );
      ( "distribution tree",
        [
          Alcotest.test_case "valid and spanning" `Quick test_tree_valid_and_spanning;
          Alcotest.test_case "cluster accounting" `Quick test_tree_cluster_accounting;
          Alcotest.test_case "height bounded" `Quick test_tree_height_bounded_by_slots;
        ] );
      ( "dynamic model",
        [
          Alcotest.test_case "per-slot reshuffle" `Quick test_dynamic_reshuffled;
          Alcotest.test_case "label rotation" `Quick test_dynamic_rotating;
          Alcotest.test_case "jamming via reduction" `Quick
            test_completes_under_jamming_via_reduction;
        ] );
      ( "raw-radio emulation",
        [
          Alcotest.test_case "completes" `Quick test_emulated_cogcast_completes;
          Alcotest.test_case "tree valid" `Quick test_emulated_tree_still_valid;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "random naps" `Quick test_completes_with_random_naps;
          Alcotest.test_case "duty cycling" `Quick test_completes_with_duty_cycling;
          Alcotest.test_case "crash isolates" `Quick test_crashed_node_blocks_only_itself;
          Alcotest.test_case "staggered activation" `Quick
            test_completes_with_staggered_activation;
        ] );
      ( "shape",
        [
          Alcotest.test_case "larger k faster" `Slow test_larger_k_is_faster;
          Alcotest.test_case "more channels slower" `Slow test_more_channels_is_slower;
          QCheck_alcotest.to_alcotest prop_always_completes_within_budget;
        ] );
    ]
