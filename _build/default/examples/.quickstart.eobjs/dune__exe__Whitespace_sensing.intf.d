examples/whitespace_sensing.mli:
