examples/lower_bounds.ml: Crn_channel Crn_core Crn_games Crn_prng List Printf
