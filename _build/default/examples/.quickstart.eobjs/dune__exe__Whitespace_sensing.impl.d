examples/whitespace_sensing.ml: Array Crn_channel Crn_core Crn_prng List Printf
