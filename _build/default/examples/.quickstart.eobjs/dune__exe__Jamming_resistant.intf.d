examples/jamming_resistant.mli:
