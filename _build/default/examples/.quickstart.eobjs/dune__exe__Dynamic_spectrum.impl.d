examples/dynamic_spectrum.ml: Array Crn_channel Crn_core Crn_prng Crn_stats Float List Printf
