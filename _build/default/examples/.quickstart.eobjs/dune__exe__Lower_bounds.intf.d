examples/lower_bounds.mli:
