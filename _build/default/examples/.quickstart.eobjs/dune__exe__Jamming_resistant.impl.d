examples/jamming_resistant.ml: Crn_core Crn_prng Crn_radio List Printf
