examples/dynamic_spectrum.mli:
