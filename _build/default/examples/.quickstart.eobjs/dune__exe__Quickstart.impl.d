examples/quickstart.ml: Array Crn_core List Printf
