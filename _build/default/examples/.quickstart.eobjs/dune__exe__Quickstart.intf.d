examples/quickstart.mli:
