bench/exp_cogcomp.ml: Array Bench_util Crn_channel Crn_core Crn_prng Crn_stats Format List Printf
