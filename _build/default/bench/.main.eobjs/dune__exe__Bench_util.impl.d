bench/bench_util.ml: Array Crn_prng Crn_stats Printf String
