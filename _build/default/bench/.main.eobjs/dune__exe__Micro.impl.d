bench/micro.ml: Analyze Array Bechamel Benchmark Crn_channel Crn_core Crn_games Crn_prng Crn_radio Crn_rendezvous Crn_stats Float Hashtbl Instance List Measure Printf Staged Test Time Toolkit
