bench/main.mli:
