bench/exp_broadcast.ml: Array Bench_util Crn_channel Crn_core Crn_prng Crn_stats List Printf
