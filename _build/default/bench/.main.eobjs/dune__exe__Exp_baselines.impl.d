bench/exp_baselines.ml: Array Bench_util Crn_channel Crn_core Crn_prng Crn_rendezvous Crn_stats Float List Option
