bench/exp_extensions.ml: Array Bench_util Crn_channel Crn_core Crn_prng Crn_radio Crn_rendezvous Crn_stats Float Int64 List Option Printf
