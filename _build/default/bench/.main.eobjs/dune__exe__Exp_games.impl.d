bench/exp_games.ml: Array Bench_util Crn_core Crn_games Crn_prng Crn_stats Float List
