bench/main.ml: Array Bench_util Exp_baselines Exp_broadcast Exp_cogcomp Exp_extensions Exp_games Exp_misc List Micro Printf String Sys Unix
