bench/exp_misc.ml: Array Bench_util Crn_channel Crn_core Crn_prng Crn_radio Crn_stats List Option
