(* Shared helpers for the experiment harness. *)

module Rng = Crn_prng.Rng
module Summary = Crn_stats.Summary
module Table = Crn_stats.Table
module Series = Crn_stats.Series

(* Global quick-mode flag, set by main from the command line: trims trial
   counts and sweep ranges so the full harness finishes in seconds. *)
let quick = ref false

let trials ~full = if !quick then max 3 (full / 3) else full

let header id title =
  let line = Printf.sprintf "[%s] %s" id title in
  print_newline ();
  print_endline (String.make (String.length line) '=');
  print_endline line;
  print_endline (String.make (String.length line) '=')

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n" s) fmt

(* Median over [trials] runs of [f seed]; each run must return a slot
   count. *)
let median_of ~trials ~base_seed f =
  let samples = Array.init trials (fun i -> float_of_int (f (base_seed + i))) in
  Summary.median samples

let mean_of ~trials ~base_seed f =
  let samples = Array.init trials (fun i -> float_of_int (f (base_seed + i))) in
  Summary.mean samples

let fmt_f x = Printf.sprintf "%.1f" x
let fmt_f2 x = Printf.sprintf "%.2f" x
