(* Experiment harness: regenerates every quantitative claim of the paper as
   a table or series (experiments E1-E15 in DESIGN.md / EXPERIMENTS.md),
   plus Bechamel micro-benchmarks of the simulator kernels.

   Usage:
     dune exec bench/main.exe                 (full run, all experiments)
     dune exec bench/main.exe -- --quick      (trimmed sweeps, seconds)
     dune exec bench/main.exe -- E1 E8        (selected experiments)
     dune exec bench/main.exe -- --no-micro   (skip Bechamel section)
*)

let experiments =
  [
    ("E1", Exp_broadcast.e1);
    ("E2", Exp_broadcast.e2);
    ("E3", Exp_broadcast.e3);
    ("E4", Exp_baselines.e4);
    ("E5", Exp_broadcast.e5);
    ("E6", Exp_cogcomp.e6);
    ("E7", Exp_baselines.e7);
    ("E8", Exp_games.e8);
    ("E9", Exp_games.e9);
    ("E10", Exp_baselines.e10);
    ("E11", Exp_broadcast.e11);
    ("E12", Exp_misc.e12);
    ("E13", Exp_misc.e13);
    ("E14", Exp_cogcomp.e14);
    ("E15", Exp_games.e15);
    ("E16", Exp_extensions.e16);
    ("E17", Exp_extensions.e17);
    ("E18", Exp_extensions.e18);
    ("E19", Exp_extensions.e19);
    ("E20", Exp_extensions.e20);
    ("E21", Exp_extensions.e21);
    ("E22", Exp_extensions.e22);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let flags, selected = List.partition (fun a -> String.length a > 0 && a.[0] = '-') args in
  let micro = not (List.mem "--no-micro" flags) in
  if List.mem "--quick" flags then Bench_util.quick := true;
  let selected = List.map String.uppercase_ascii selected in
  let to_run =
    if selected = [] then experiments
    else
      List.filter (fun (id, _) -> List.mem id selected) experiments
  in
  if to_run = [] then begin
    Printf.eprintf "unknown experiment id(s); known: %s\n"
      (String.concat " " (List.map fst experiments));
    exit 1
  end;
  print_endline "Efficient Communication in Cognitive Radio Networks (PODC'15)";
  print_endline "reproduction harness — slot counts are the paper's own unit.";
  if !Bench_util.quick then print_endline "(quick mode: trimmed sweeps and trial counts)";
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (id, run) ->
      let t = Unix.gettimeofday () in
      run ();
      Printf.printf "  [%s done in %.1fs]\n%!" id (Unix.gettimeofday () -. t))
    to_run;
  if micro && selected = [] then Micro.run ();
  Printf.printf "\nall experiments done in %.1fs\n" (Unix.gettimeofday () -. t0)
