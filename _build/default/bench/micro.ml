(* Bechamel micro-benchmarks: wall-clock throughput of the simulator kernels
   that every experiment rests on — one Test.make per experiment family. *)

open Bechamel
open Toolkit
module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Bitset = Crn_channel.Bitset
module Cogcast = Crn_core.Cogcast
module Cogcomp = Crn_core.Cogcomp
module Aggregate = Crn_core.Aggregate
module Backoff = Crn_radio.Backoff
module Hitting_game = Crn_games.Hitting_game
module Players = Crn_games.Players

let spec = { Topology.n = 64; c = 16; k = 4 }

let bench_rng =
  Test.make ~name:"rng/draws-1k"
    (Staged.stage (fun () ->
         let rng = Rng.create 1 in
         let acc = ref 0 in
         for _ = 1 to 1000 do
           acc := !acc + Rng.int rng 16
         done;
         !acc))

let bench_bitset =
  Test.make ~name:"channel/bitset-overlap-1k"
    (Staged.stage (fun () ->
         let a = Bitset.of_array 512 (Array.init 64 (fun i -> i * 3)) in
         let b = Bitset.of_array 512 (Array.init 64 (fun i -> i * 5)) in
         let acc = ref 0 in
         for _ = 1 to 1000 do
           acc := !acc + Bitset.inter_cardinal a b
         done;
         !acc))

let bench_topology =
  Test.make ~name:"channel/shared-core-gen"
    (Staged.stage (fun () -> Topology.shared_core (Rng.create 2) spec))

(* E1-E5 kernel: one COGCAST broadcast on a 64-node network. *)
let bench_cogcast =
  Test.make ~name:"broadcast/cogcast-n64"
    (Staged.stage (fun () ->
         let rng = Rng.create 3 in
         let assignment = Topology.shared_core rng spec in
         Cogcast.run_static ~source:0 ~assignment ~k:4 ~rng ()))

(* E6-E7 kernel: one full COGCOMP aggregation. *)
let bench_cogcomp =
  Test.make ~name:"aggregation/cogcomp-n64"
    (Staged.stage (fun () ->
         let rng = Rng.create 4 in
         let assignment = Topology.shared_core rng spec in
         let values = Array.init 64 (fun i -> i) in
         Cogcomp.run ~monoid:Aggregate.sum ~values ~source:0 ~assignment ~k:4 ~rng ()))

(* E8 kernel: one bipartite hitting game. *)
let bench_game =
  Test.make ~name:"games/bipartite-c16k4"
    (Staged.stage (fun () ->
         let rng = Rng.create 5 in
         Hitting_game.play_bipartite ~rng ~c:16 ~k:4
           ~player:(Players.uniform rng ~c:16) ~max_rounds:100_000))

(* E13 kernel: one decay backoff session. *)
let bench_backoff =
  Test.make ~name:"backoff/session-m64"
    (Staged.stage (fun () ->
         Backoff.session ~rng:(Rng.create 6) ~contenders:64 ~cap:10_000))

(* E4/E7 kernel: the rendezvous baseline broadcast. *)
let bench_baseline =
  Test.make ~name:"baseline/rendezvous-broadcast-n64"
    (Staged.stage (fun () ->
         let rng = Rng.create 7 in
         let assignment = Topology.shared_core rng spec in
         Crn_rendezvous.Broadcast_baseline.run_static ~source:0 ~assignment ~k:4 ~rng ()))

(* E10 kernel: the hop-together scan. *)
let bench_scan =
  Test.make ~name:"baseline/seq-scan-n16"
    (Staged.stage (fun () ->
         let a =
           Topology.shared_core ~global_labels:true (Rng.create 8)
             { Topology.n = 16; c = 32; k = 31 }
         in
         Crn_rendezvous.Seq_scan.run ~source:0 ~assignment:a ~rng:(Rng.create 9)
           ~max_slots:10_000 ()))

(* E12 kernel: one slot's worth of jamming-reduction availability. *)
let bench_jamming_reduction =
  Test.make ~name:"radio/jamming-reduction-slot"
    (Staged.stage (fun () ->
         let jammer =
           Crn_radio.Jammer.random_per_node ~seed:10L ~budget:4 ~num_channels:16
         in
         let d =
           Crn_radio.Jamming_reduction.availability_of_jammer ~num_nodes:16
             ~num_channels:16 ~jammer ()
         in
         Crn_channel.Dynamic.at d 0))

(* E15 kernel: a first-hit sample. *)
let bench_first_hit =
  Test.make ~name:"games/first-hit-c32"
    (Staged.stage (fun () ->
         let rng = Rng.create 11 in
         Crn_games.First_hit.sample ~rng ~c:32 ~k:4
           ~strategy:(Crn_games.First_hit.uniform_strategy rng ~c:32)))

(* E22 kernel: COGCAST over raw-radio emulation. *)
let bench_emulated =
  Test.make ~name:"broadcast/cogcast-emulated-n32"
    (Staged.stage (fun () ->
         let rng = Rng.create 12 in
         let assignment = Topology.shared_core rng { Topology.n = 32; c = 8; k = 4 } in
         Cogcast.run_emulated ~source:0
           ~availability:(Crn_channel.Dynamic.static assignment) ~rng
           ~max_slots:2_000 ()))

let tests =
  [
    bench_rng;
    bench_bitset;
    bench_topology;
    bench_cogcast;
    bench_cogcomp;
    bench_game;
    bench_backoff;
    bench_baseline;
    bench_scan;
    bench_jamming_reduction;
    bench_first_hit;
    bench_emulated;
  ]

let run () =
  print_newline ();
  print_endline "==============================================";
  print_endline "[MICRO] Bechamel kernel throughput (monotonic clock)";
  print_endline "==============================================";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let t = Crn_stats.Table.create [ "kernel"; "time/run"; "r^2" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols (Instance.monotonic_clock) raw in
          ignore raw;
          let time_ns =
            match Analyze.OLS.estimates est with
            | Some [ v ] -> v
            | _ -> Float.nan
          in
          let r2 =
            match Analyze.OLS.r_square est with Some r -> r | None -> Float.nan
          in
          let pretty =
            if time_ns > 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
            else if time_ns > 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
            else Printf.sprintf "%.0f ns" time_ns
          in
          Crn_stats.Table.add_row t [ name; pretty; Printf.sprintf "%.4f" r2 ])
        results)
    tests;
  Crn_stats.Table.print t
