(** High-level random-number interface used throughout the simulator.

    A {!t} wraps a {!Xoshiro} state and provides the derived distributions
    the protocols and referees need. All simulation code takes an explicit
    [Rng.t]; nothing in the repository touches global randomness, so every
    experiment is reproducible from its seed. *)

type t
(** Mutable generator. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. *)

val of_int64 : int64 -> t
(** [of_int64 seed] builds a generator from a 64-bit seed. *)

val split : t -> t
(** [split t] derives a generator statistically independent of [t]'s
    subsequent output. Used to give each simulated node its own stream. *)

val split_n : t -> int -> t array
(** [split_n t n] is [n] independent generators derived from [t]. *)

val copy : t -> t
(** Replayable snapshot. *)

val bits64 : t -> int64
(** 64 uniform bits. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound); requires [bound > 0]. Uses
    rejection sampling, so the distribution is exactly uniform. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [0, bound). *)

val bool : t -> bool
(** A fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of Bernoulli([p]) trials up to and
    including the first success (support 1, 2, ...); requires [0 < p <= 1]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffled_init : t -> int -> (int -> 'a) -> 'a array
(** [shuffled_init t n f] is [Array.init n f] in a uniformly random order. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t m n] draws [m] distinct values uniformly
    from [0..n-1], in random order; requires [m <= n]. Uses a partial
    Fisher–Yates over a hash-sparse domain, O(m) time and space, so it is
    cheap even when [n] is huge (e.g. selecting channels out of [C]). *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly random element of the non-empty array [a]. *)

val pick_list : t -> 'a list -> 'a
(** [pick_list t l] is a uniformly random element of the non-empty list [l]. *)
