lib/prng/xoshiro.ml: Array Int64 Splitmix
