lib/prng/splitmix.ml: Int64
