lib/prng/rng.mli:
