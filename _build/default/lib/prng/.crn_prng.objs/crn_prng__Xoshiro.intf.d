lib/prng/xoshiro.mli: Splitmix
