lib/prng/splitmix.mli:
