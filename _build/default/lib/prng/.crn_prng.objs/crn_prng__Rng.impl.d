lib/prng/rng.ml: Array Hashtbl Int64 List Splitmix Xoshiro
