type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Stafford's Mix13 variant of the MurmurHash3 finalizer. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = seed }

let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let next_int64 = next

let split t =
  let seed = next t in
  create (mix64 seed)
