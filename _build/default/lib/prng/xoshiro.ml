type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let rotl x k = Int64.(logor (shift_left x k) (shift_right_logical x (64 - k)))

let of_splitmix sm =
  let s0 = Splitmix.next sm in
  let s1 = Splitmix.next sm in
  let s2 = Splitmix.next sm in
  let s3 = Splitmix.next sm in
  (* SplitMix64 output is never all-zero across four draws in practice; guard
     anyway because xoshiro's zero state is absorbing. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1; s2; s3 }
  else { s0; s1; s2; s3 }

let create seed = of_splitmix (Splitmix.create seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let next t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let jump_table =
  [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL;
     0x39ABDC4529B1661CL |]

let jump t =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun jump_word ->
      for b = 0 to 63 do
        if Int64.(logand jump_word (shift_left 1L b)) <> 0L then begin
          s0 := Int64.logxor !s0 t.s0;
          s1 := Int64.logxor !s1 t.s1;
          s2 := Int64.logxor !s2 t.s2;
          s3 := Int64.logxor !s3 t.s3
        end;
        ignore (next t)
      done)
    jump_table;
  t.s0 <- !s0;
  t.s1 <- !s1;
  t.s2 <- !s2;
  t.s3 <- !s3
