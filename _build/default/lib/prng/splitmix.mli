(** SplitMix64: a fast, statistically strong 64-bit PRNG with a trivially
    splittable state (Steele, Lea & Flood, OOPSLA 2014).

    Used in two roles: seeding {!Xoshiro} states, and deriving independent
    per-node streams from a single experiment seed so that simulations are
    reproducible regardless of the order in which nodes draw randomness. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a generator from an arbitrary 64-bit seed. Distinct
    seeds yield (with overwhelming probability) non-overlapping streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will replay [t]'s future. *)

val next : t -> int64
(** [next t] advances the state and returns 64 uniformly random bits. *)

val next_int64 : t -> int64
(** Alias for {!next}. *)

val split : t -> t
(** [split t] advances [t] and returns a fresh generator whose stream is
    independent of [t]'s subsequent output. *)

val mix64 : int64 -> int64
(** [mix64 z] is the stateless finalizer used by the generator; exposed for
    hashing-style derivation of seeds from small integers. *)
