(** Xoshiro256** (Blackman & Vigna, 2018): the workhorse generator.

    256 bits of state, period 2^256 - 1, excellent statistical quality, and
    much faster than OCaml's [Random] for the tight per-slot loops of the
    radio simulator. State is seeded from {!Splitmix} as the authors
    recommend. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] expands [seed] through SplitMix64 into a full 256-bit
    state. The all-zero state is unreachable by construction. *)

val of_splitmix : Splitmix.t -> t
(** [of_splitmix sm] draws the 256-bit state from [sm], advancing it. *)

val copy : t -> t
(** Independent replayable copy. *)

val next : t -> int64
(** [next t] returns 64 uniformly random bits. *)

val jump : t -> unit
(** [jump t] advances [t] by 2^128 steps; successive jumps from copies of one
    state give 2^128 non-overlapping parallel substreams. *)
