type t = { gen : Xoshiro.t; sm : Splitmix.t }

let of_int64 seed =
  let sm = Splitmix.create seed in
  { gen = Xoshiro.of_splitmix sm; sm = Splitmix.split sm }

let create seed = of_int64 (Splitmix.mix64 (Int64.of_int seed))

let split t =
  let sm = Splitmix.split t.sm in
  { gen = Xoshiro.of_splitmix sm; sm = Splitmix.split sm }

let split_n t n = Array.init n (fun _ -> split t)

let copy t = { gen = Xoshiro.copy t.gen; sm = Splitmix.copy t.sm }

let bits64 t = Xoshiro.next t.gen

(* Uniform int on [0, bound) by rejection on the top 62 bits, which keeps the
   value in OCaml's positive int range. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let rec loop () =
    let r = Int64.to_int (Int64.logand (bits64 t) mask) in
    (* Avoid modulo bias: reject the tail of the range. *)
    let v = r mod bound in
    if r - v > 0x3FFF_FFFF_FFFF_FFFF - bound + 1 then loop () else v
  in
  loop ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r *. 0x1.0p-53)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p = 1.0 then 1
  else
    (* Inverse-CDF sampling: ceil(ln U / ln (1-p)). *)
    let u = 1.0 -. float t 1.0 in
    let v = ceil (log u /. log (1.0 -. p)) in
    max 1 (int_of_float v)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffled_init t n f =
  let a = Array.init n f in
  shuffle t a;
  a

let permutation t n = shuffled_init t n (fun i -> i)

let sample_without_replacement t m n =
  if m > n then invalid_arg "Rng.sample_without_replacement: m > n";
  if m < 0 then invalid_arg "Rng.sample_without_replacement: m < 0";
  (* Sparse Fisher–Yates: entry i of the virtual array [0..n-1] is stored in
     the table only once displaced. *)
  let displaced = Hashtbl.create (2 * m) in
  let value_at i = match Hashtbl.find_opt displaced i with Some v -> v | None -> i in
  Array.init m (fun i ->
      let j = int_in t i (n - 1) in
      let vi = value_at i and vj = value_at j in
      Hashtbl.replace displaced j vi;
      Hashtbl.replace displaced i vj;
      vj)

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))
