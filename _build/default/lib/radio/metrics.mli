(** Per-node activity counters — the simulator's energy/telemetry surface.

    Radios spend energy per slot awake and (more) per transmission; these
    counters let experiments compare protocols on that axis (e.g. COGCAST's
    epidemic transmits far more than the rendezvous baseline even when it
    finishes sooner). Attach a value to {!Engine.run} via [?metrics]; the
    engine increments it and never reads it. *)

type t = {
  transmissions : int array;  (** Broadcast attempts per node (incl. lost). *)
  receptions : int array;  (** Messages heard per node (listener side). *)
  awake_slots : int array;  (** Slots in which the node participated. *)
  jammed : int array;  (** Actions absorbed by a jammer, per node. *)
}

val create : int -> t
(** [create n] makes zeroed counters for [n] nodes. *)

val reset : t -> unit

val total_transmissions : t -> int

val total_awake : t -> int

val pp : Format.formatter -> t -> unit
(** Aggregate one-line rendering. *)
