lib/radio/action.mli: Format
