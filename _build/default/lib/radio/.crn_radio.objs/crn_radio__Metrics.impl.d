lib/radio/metrics.ml: Array Format
