lib/radio/backoff.mli: Crn_prng
