lib/radio/faults.ml: Array Crn_prng Int64 Printf
