lib/radio/jammer.ml: Crn_channel Crn_prng Hashtbl Int64
