lib/radio/trace.ml: Format
