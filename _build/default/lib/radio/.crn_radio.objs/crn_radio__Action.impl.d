lib/radio/action.ml: Format
