lib/radio/jammer.mli: Crn_channel
