lib/radio/metrics.mli: Format
