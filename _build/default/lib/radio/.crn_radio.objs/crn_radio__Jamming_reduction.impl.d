lib/radio/jamming_reduction.ml: Array Crn_channel Crn_prng Jammer Option Printf
