lib/radio/raw_radio.ml: Action Array Crn_channel Hashtbl
