lib/radio/emulation.mli: Crn_channel Crn_prng Engine
