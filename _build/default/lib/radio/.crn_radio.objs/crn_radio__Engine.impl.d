lib/radio/engine.ml: Action Array Crn_channel Crn_prng Faults Hashtbl Jammer List Metrics Printf Trace
