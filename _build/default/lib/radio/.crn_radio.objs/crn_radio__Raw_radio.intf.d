lib/radio/raw_radio.mli: Action Crn_channel
