lib/radio/trace.mli: Format
