lib/radio/engine.mli: Action Crn_channel Crn_prng Faults Jammer Metrics Trace
