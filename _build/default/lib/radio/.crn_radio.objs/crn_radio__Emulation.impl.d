lib/radio/emulation.ml: Action Array Backoff Crn_channel Crn_prng Engine Hashtbl List
