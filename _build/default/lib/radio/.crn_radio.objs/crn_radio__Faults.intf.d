lib/radio/faults.mli:
