lib/radio/backoff.ml: Action Array Crn_channel Crn_prng Float Raw_radio
