lib/radio/jamming_reduction.mli: Crn_channel Crn_prng Jammer
