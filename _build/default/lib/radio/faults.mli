(** Transient node failures.

    §1 argues that COGCAST's obliviousness — every node does the same thing
    in every slot — makes it robust to "changes to the network conditions,
    temporary faults, and so on". This module supplies fault schedules the
    engine applies: a node that is *down* in a slot neither transmits nor
    receives (it simply misses the slot); its protocol state is untouched.

    Fault schedules must be deterministic functions of [(slot, node)] so
    runs replay; randomized schedules derive decisions from a seed. *)

type t

val name : t -> string

val down : t -> slot:int -> node:int -> bool
(** Whether [node] misses [slot]. *)

val none : t

val of_fun : name:string -> (slot:int -> node:int -> bool) -> t

val crash : node:int -> from_slot:int -> t
(** [node] permanently fails at [from_slot]. *)

val random_naps : seed:int64 -> rate:float -> t
(** Every node independently misses each slot with probability [rate]
    (decided per (slot, node) from the seed) — memoryless transient
    faults. *)

val periodic_nap : period:int -> nap:int -> offset_stride:int -> t
(** Node [v] sleeps during slots [s] with
    [(s + v*offset_stride) mod period < nap] — staggered duty cycling. *)

val spare : t -> node:int -> t
(** [spare t ~node] is [t] with [node] never failing — used to keep the
    source alive, without which broadcast trivially cannot start. *)

val union : t -> t -> t
(** Down if either schedule says down. *)

val staggered_activation : activation:int array -> t
(** [staggered_activation ~activation] keeps node [v] down until slot
    [activation.(v)] — relaxing the paper's all-activated-simultaneously
    assumption (§2). Once awake a node never fails. *)
