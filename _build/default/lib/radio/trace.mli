(** Aggregate execution statistics collected by the engines. Protocol-level
    bookkeeping (who informed whom, cluster structure, …) belongs to the
    protocols themselves; the trace records channel-level facts useful for
    diagnosing contention. *)

type t = {
  mutable slots_run : int;
  mutable broadcasts : int;  (** Broadcast attempts (excluding jammed ones). *)
  mutable wins : int;  (** Slots×channels on which a winner was chosen. *)
  mutable contended : int;
      (** Slots×channels with two or more audible broadcasters. *)
  mutable deliveries : int;  (** Listener receptions. *)
  mutable jammed_actions : int;  (** Node actions absorbed by jamming. *)
}

val create : unit -> t

val reset : t -> unit

val contention_rate : t -> float
(** Fraction of winning channels that had more than one broadcaster. *)

val pp : Format.formatter -> t -> unit
