type t = {
  mutable slots_run : int;
  mutable broadcasts : int;
  mutable wins : int;
  mutable contended : int;
  mutable deliveries : int;
  mutable jammed_actions : int;
}

let create () =
  {
    slots_run = 0;
    broadcasts = 0;
    wins = 0;
    contended = 0;
    deliveries = 0;
    jammed_actions = 0;
  }

let reset t =
  t.slots_run <- 0;
  t.broadcasts <- 0;
  t.wins <- 0;
  t.contended <- 0;
  t.deliveries <- 0;
  t.jammed_actions <- 0

let contention_rate t =
  if t.wins = 0 then 0.0 else float_of_int t.contended /. float_of_int t.wins

let pp fmt t =
  Format.fprintf fmt
    "slots=%d broadcasts=%d wins=%d contended=%d deliveries=%d jammed=%d"
    t.slots_run t.broadcasts t.wins t.contended t.deliveries t.jammed_actions
