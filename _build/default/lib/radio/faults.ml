module Splitmix = Crn_prng.Splitmix

type t = { name : string; down : slot:int -> node:int -> bool }

let name t = t.name
let down t = t.down

let none = { name = "none"; down = (fun ~slot:_ ~node:_ -> false) }

let of_fun ~name down = { name; down }

let crash ~node ~from_slot =
  {
    name = Printf.sprintf "crash(node=%d,slot=%d)" node from_slot;
    down = (fun ~slot ~node:v -> v = node && slot >= from_slot);
  }

let random_naps ~seed ~rate =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Faults.random_naps: rate out of [0,1]";
  {
    name = Printf.sprintf "random-naps(%.2f)" rate;
    down =
      (fun ~slot ~node ->
        let h =
          Splitmix.mix64
            (Int64.logxor seed
               (Int64.of_int ((slot * 0x9E3779B1) lxor (node * 0x85EBCA77))))
        in
        (* Map the top 53 bits to [0, 1). *)
        let u =
          Int64.to_float (Int64.shift_right_logical h 11) *. 0x1.0p-53
        in
        u < rate);
  }

let periodic_nap ~period ~nap ~offset_stride =
  if period < 1 || nap < 0 || nap > period then
    invalid_arg "Faults.periodic_nap: need 0 <= nap <= period, period >= 1";
  {
    name = Printf.sprintf "periodic-nap(%d/%d)" nap period;
    down = (fun ~slot ~node -> (slot + (node * offset_stride)) mod period < nap);
  }

let spare t ~node =
  {
    name = t.name ^ Printf.sprintf "\\{%d}" node;
    down = (fun ~slot ~node:v -> v <> node && t.down ~slot ~node:v);
  }

let union a b =
  {
    name = a.name ^ "+" ^ b.name;
    down = (fun ~slot ~node -> a.down ~slot ~node || b.down ~slot ~node);
  }

let staggered_activation ~activation =
  {
    name = "staggered-activation";
    down =
      (fun ~slot ~node ->
        node >= 0 && node < Array.length activation && slot < activation.(node));
  }
