type t = {
  transmissions : int array;
  receptions : int array;
  awake_slots : int array;
  jammed : int array;
}

let create n =
  {
    transmissions = Array.make n 0;
    receptions = Array.make n 0;
    awake_slots = Array.make n 0;
    jammed = Array.make n 0;
  }

let reset t =
  Array.fill t.transmissions 0 (Array.length t.transmissions) 0;
  Array.fill t.receptions 0 (Array.length t.receptions) 0;
  Array.fill t.awake_slots 0 (Array.length t.awake_slots) 0;
  Array.fill t.jammed 0 (Array.length t.jammed) 0

let total_transmissions t = Array.fold_left ( + ) 0 t.transmissions

let total_awake t = Array.fold_left ( + ) 0 t.awake_slots

let pp fmt t =
  Format.fprintf fmt "tx=%d rx=%d awake=%d jammed=%d" (total_transmissions t)
    (Array.fold_left ( + ) 0 t.receptions)
    (total_awake t)
    (Array.fold_left ( + ) 0 t.jammed)
