module Dynamic = Crn_channel.Dynamic
module Assignment = Crn_channel.Assignment

type 'msg reception =
  | Message of { sender : int; msg : 'msg }
  | Noise
  | Quiet

type 'msg node = {
  id : int;
  decide : round:int -> 'msg Action.decision;
  hear : round:int -> 'msg reception -> unit;
}

type outcome = { rounds_run : int; stopped_early : bool }

let node ~id ~decide ~hear = { id; decide; hear }

type 'msg channel_state = {
  mutable transmitters : (int * 'msg) list;
  mutable listeners : int list;
}

let run ?(collision_detection = false) ?stop ~availability ~nodes ~max_rounds () =
  let n = Array.length nodes in
  if n = 0 then invalid_arg "Raw_radio.run: no nodes";
  if Dynamic.num_nodes availability <> n then
    invalid_arg "Raw_radio.run: node count disagrees with availability";
  Array.iteri
    (fun i node -> if node.id <> i then invalid_arg "Raw_radio.run: node id mismatch")
    nodes;
  let channels : (int, 'msg channel_state) Hashtbl.t = Hashtbl.create (4 * n) in
  let decisions = Array.make n (Action.listen ~label:0) in
  let tuned = Array.make n 0 in
  let round = ref 0 in
  let stopped = ref false in
  while (not !stopped) && !round < max_rounds do
    let r = !round in
    let assignment = Dynamic.at availability r in
    let c = Assignment.channels_per_node assignment in
    Hashtbl.reset channels;
    for i = 0 to n - 1 do
      let decision = nodes.(i).decide ~round:r in
      if decision.Action.label < 0 || decision.Action.label >= c then
        invalid_arg "Raw_radio.run: label out of range";
      decisions.(i) <- decision;
      let channel = Assignment.global_of_local assignment ~node:i ~label:decision.Action.label in
      tuned.(i) <- channel;
      let state =
        match Hashtbl.find_opt channels channel with
        | Some st -> st
        | None ->
            let st = { transmitters = []; listeners = [] } in
            Hashtbl.replace channels channel st;
            st
      in
      match decision.Action.intent with
      | Action.Broadcast msg -> state.transmitters <- (i, msg) :: state.transmitters
      | Action.Listen -> state.listeners <- i :: state.listeners
    done;
    for i = 0 to n - 1 do
      let state = Hashtbl.find channels tuned.(i) in
      let reception =
        match decisions.(i).Action.intent with
        | Action.Broadcast _ -> Quiet  (* cannot hear while transmitting *)
        | Action.Listen -> (
            match state.transmitters with
            | [] -> Quiet
            | [ (sender, msg) ] -> Message { sender; msg }
            | _ :: _ :: _ -> if collision_detection then Noise else Quiet)
      in
      nodes.(i).hear ~round:r reception
    done;
    (match stop with Some f -> if f ~round:r then stopped := true | None -> ());
    incr round
  done;
  { rounds_run = !round; stopped_early = !stopped }
