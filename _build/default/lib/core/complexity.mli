(** Closed-form time bounds from the paper, used to size slot budgets and to
    annotate experiment tables with the predicted curve. All formulas use
    natural parameters [n] (nodes), [c] (channels per node), [k] (minimum
    pairwise overlap) and return slot counts as floats. *)

val cogcast : ?factor:float -> n:int -> c:int -> k:int -> unit -> float
(** Theorem 4: [factor · (c/k) · max{1, c/n} · lg n]. The default [factor]
    (12.0) is the empirical constant under which COGCAST completes w.h.p.
    across every topology in the test suite. *)

val cogcast_slots : ?factor:float -> n:int -> c:int -> k:int -> unit -> int
(** {!cogcast} rounded up to an integer slot budget (at least 1). *)

val cogcomp : ?factor:float -> n:int -> c:int -> k:int -> unit -> float
(** Theorem 10: [cogcast + O(n)] — the additive linear term covers phases
    2–4. *)

val rendezvous_broadcast : n:int -> c:int -> k:int -> float
(** §1's straw-man: randomized rendezvous against a transmitting source,
    [(c²/k) · lg n]. *)

val rendezvous_aggregation : n:int -> c:int -> k:int -> float
(** §1's aggregation straw-man with fair contention, [c²·n / k]. *)

val broadcast_lower_bound : n:int -> c:int -> k:int -> float
(** Theorem 15: [(c/k) · max{1, c/n}] — the local-label lower bound (up to
    constants). *)

val global_label_lower_bound : c:int -> k:int -> float
(** Theorem 16: [(c+1)/(k+1)] expected slots before the source can first
    land on an overlapping channel in the shared-core network. *)

val bipartite_game_lower_bound : ?beta:float -> c:int -> k:int -> unit -> float
(** Lemma 11: [c²/(α·k)] with [α = 2(β/(β−1))²], valid for [k ≤ c/β]. *)

val complete_game_lower_bound : c:int -> float
(** Lemma 14: [c/3]. *)

val hop_together : n:int -> c:int -> k:int -> float
(** §6 discussion: expected [C/k = (k + n(c−k))/k] slots for the
    hop-together sequential scan on the shared-core network. *)

val lg : float -> float
(** Base-2 logarithm, clamped below at 1.0 so budgets never vanish for tiny
    [n]. *)
