type cluster = { slot : int; informer : int; members : int list }

type t = {
  n : int;
  root : int;
  parent : int option array;
  children : int list array;
  depth : int array;
  clusters : cluster list;
}

let of_result (r : Cogcast.result) =
  let n = r.Cogcast.n in
  let parent = Array.copy r.Cogcast.parent in
  let children = Array.make n [] in
  Array.iteri
    (fun v p -> match p with Some u -> children.(u) <- v :: children.(u) | None -> ())
    parent;
  Array.iteri (fun u l -> children.(u) <- List.sort compare l) children;
  (* Depths by BFS from the root. *)
  let depth = Array.make n (-1) in
  depth.(r.Cogcast.source) <- 0;
  let queue = Queue.create () in
  Queue.add r.Cogcast.source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        depth.(v) <- depth.(u) + 1;
        Queue.add v queue)
      children.(u)
  done;
  (* Clusters: nodes grouped by (informed slot, parent). *)
  let table : (int * int, int list) Hashtbl.t = Hashtbl.create 64 in
  for v = 0 to n - 1 do
    match (r.Cogcast.informed_at.(v), parent.(v)) with
    | Some slot, Some p ->
        let key = (slot, p) in
        let cur = Option.value ~default:[] (Hashtbl.find_opt table key) in
        Hashtbl.replace table key (v :: cur)
    | _ -> ()
  done;
  let clusters =
    Hashtbl.fold
      (fun (slot, informer) members acc ->
        { slot; informer; members = List.sort compare members } :: acc)
      table []
    |> List.sort (fun a b -> compare (b.slot, b.informer) (a.slot, a.informer))
  in
  { n; root = r.Cogcast.source; parent; children; depth; clusters }

let is_spanning t = Array.for_all (fun d -> d >= 0) t.depth

let validate t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.parent.(t.root) <> None then fail "root %d has a parent" t.root
  else begin
    let bad = ref None in
    Array.iteri
      (fun v p ->
        if !bad = None then
          match p with
          | None ->
              if v <> t.root && t.depth.(v) >= 0 then
                bad := Some (Printf.sprintf "reached node %d has no parent" v)
          | Some u ->
              if t.depth.(v) < 0 then
                bad := Some (Printf.sprintf "node %d has a parent but was not reached" v)
              else if t.depth.(u) <> t.depth.(v) - 1 then
                bad :=
                  Some
                    (Printf.sprintf "depth inconsistency at edge %d -> %d" u v))
      t.parent;
    match !bad with
    | Some msg -> Error msg
    | None ->
        let in_cluster = Array.make t.n 0 in
        List.iter
          (fun c -> List.iter (fun v -> in_cluster.(v) <- in_cluster.(v) + 1) c.members)
          t.clusters;
        let ok = ref (Ok ()) in
        Array.iteri
          (fun v count ->
            if !ok = Ok () then
              if v = t.root then begin
                if count <> 0 then ok := fail "root %d appears in a cluster" v
              end
              else if t.depth.(v) >= 0 && count <> 1 then
                ok := fail "node %d appears in %d clusters" v count)
          in_cluster;
        !ok
  end

let height t = Array.fold_left max 0 t.depth

let cluster_sizes t = Array.of_list (List.map (fun c -> List.length c.members) t.clusters)

let max_cluster t = Array.fold_left max 0 (cluster_sizes t)

let sum_max_cluster_per_slot t =
  let by_slot : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let size = List.length c.members in
      let cur = Option.value ~default:0 (Hashtbl.find_opt by_slot c.slot) in
      Hashtbl.replace by_slot c.slot (max cur size))
    t.clusters;
  Hashtbl.fold (fun _ size acc -> acc + size) by_slot 0

let pp fmt t =
  Format.fprintf fmt "tree: n=%d root=%d height=%d clusters=%d max_cluster=%d"
    t.n t.root (height t) (List.length t.clusters) (max_cluster t)
