type 'a monoid = { name : string; identity : 'a; combine : 'a -> 'a -> 'a }

let sum = { name = "sum"; identity = 0; combine = ( + ) }
let max_int = { name = "max"; identity = Stdlib.min_int; combine = Stdlib.max }
let min_int = { name = "min"; identity = Stdlib.max_int; combine = Stdlib.min }
let float_sum = { name = "float-sum"; identity = 0.0; combine = ( +. ) }
let count = { name = "count"; identity = 0; combine = ( + ) }

let multiset =
  { name = "multiset"; identity = []; combine = (fun a b -> List.merge compare a b) }

let fold m values = Array.fold_left m.combine m.identity values
