(** The distribution tree implicitly constructed by COGCAST (§5, Lemma 5):
    each informed node's parent is the node it first heard the message from,
    with the source as root. COGCOMP aggregates values leaf-to-root along
    this tree; this module extracts, validates and measures it. *)

type cluster = {
  slot : int;  (** Phase-1 slot [r] at which the members were informed. *)
  informer : int;  (** The cluster's informer — the members' parent. *)
  members : int list;  (** Ascending node ids. *)
}
(** An [(r,c)]-cluster (Definition 6). Channels are physical, so two nodes
    are cluster-mates iff they were informed in the same slot by the same
    winning broadcast; the informer identifies that broadcast uniquely,
    which is why no channel id is needed here. *)

type t = {
  n : int;
  root : int;
  parent : int option array;
  children : int list array;  (** Ascending ids. *)
  depth : int array;  (** [-1] for nodes not reached. *)
  clusters : cluster list;  (** Ordered by descending [slot]. *)
}

val of_result : Cogcast.result -> t
(** Extract the tree from a COGCAST run (uses [parent] and [informed_at];
    does not require recorded logs). *)

val is_spanning : t -> bool
(** All [n] nodes reached. *)

val validate : t -> (unit, string) Stdlib.result
(** Structural soundness: the root has no parent, every reached non-root has
    a reached parent informed strictly earlier, depths are consistent, and
    cluster member lists partition the reached non-root nodes. *)

val height : t -> int

val max_cluster : t -> int
(** Size of the largest cluster (0 when there are none). *)

val cluster_sizes : t -> int array

val sum_max_cluster_per_slot : t -> int
(** [Σ_i k_i] from Theorem 10's accounting: for each phase-1 slot, the size
    of the largest cluster created in that slot, summed over slots — the
    paper proves this is at most [n], which bounds phase 4's step count. *)

val pp : Format.formatter -> t -> unit
