(** High-level entry points: build a cognitive radio network and run the
    paper's protocols with one call each. This is the API the examples and
    the quickstart in the README use; the full control surface lives in
    {!Cogcast}, {!Cogcomp} and the substrate libraries. *)

type network = {
  assignment : Crn_channel.Assignment.t;
  spec : Crn_channel.Topology.spec;
  topology : Crn_channel.Topology.kind;
}

val make_network :
  ?topology:Crn_channel.Topology.kind ->
  ?global_labels:bool ->
  ?seed:int ->
  n:int ->
  c:int ->
  k:int ->
  unit ->
  network
(** [make_network ~n ~c ~k ()] builds an [n]-node network where every node
    has [c] channels and every pair overlaps on at least [k] (default
    topology {!Crn_channel.Topology.Shared_plus_random}, default seed 1). *)

val broadcast : ?seed:int -> ?source:int -> network -> Cogcast.result
(** Run COGCAST from [source] (default 0) with the Theorem 4 slot budget. *)

val aggregate :
  ?seed:int ->
  ?source:int ->
  network ->
  monoid:'a Aggregate.monoid ->
  values:'a array ->
  'a Cogcomp.result
(** Run COGCOMP to fold [values] at [source] (default 0). *)

val broadcast_bound : network -> float
(** Theorem 4's predicted slot count for this network (constant factor 1). *)

val aggregation_bound : network -> float
(** Theorem 10's predicted slot count (constant factor 1). *)
