(** Aggregation functions for COGCOMP.

    §5's discussion notes that for *associative* functions each node can
    fold its subtree locally and forward a constant-size digest. COGCOMP is
    therefore parameterized by a monoid; correctness of the root value for
    commutative monoids, and multiset-correctness in general, is checked in
    the test suite. *)

type 'a monoid = {
  name : string;
  identity : 'a;
  combine : 'a -> 'a -> 'a;  (** Must be associative. *)
}

val sum : int monoid
val max_int : int monoid
val min_int : int monoid
val float_sum : float monoid

val count : int monoid
(** Combine with per-node value [1] to count nodes. *)

val multiset : int list monoid
(** Sorted-merge of value lists — a non-commutative-insensitive "collect
    everything" monoid, used by tests to verify that exactly the right set
    of per-node values reaches the root. *)

val fold : 'a monoid -> 'a array -> 'a
(** Reference (centralized) aggregate of all values, for comparison against
    COGCOMP's distributed result. *)
