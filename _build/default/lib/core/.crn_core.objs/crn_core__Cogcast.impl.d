lib/core/cogcast.ml: Array Complexity Crn_channel Crn_prng Crn_radio
