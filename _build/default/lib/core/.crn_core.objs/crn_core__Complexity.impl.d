lib/core/complexity.ml: Float
