lib/core/disttree.ml: Array Cogcast Format Hashtbl List Option Printf Queue
