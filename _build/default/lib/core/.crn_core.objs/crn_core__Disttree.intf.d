lib/core/disttree.mli: Cogcast Format Stdlib
