lib/core/cogcomp.mli: Aggregate Crn_channel Crn_prng Disttree
