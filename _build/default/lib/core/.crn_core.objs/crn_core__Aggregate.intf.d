lib/core/aggregate.mli:
