lib/core/crn.mli: Aggregate Cogcast Cogcomp Crn_channel
