lib/core/crn.ml: Cogcast Cogcomp Complexity Crn_channel Crn_prng
