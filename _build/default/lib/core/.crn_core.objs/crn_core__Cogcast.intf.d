lib/core/cogcast.mli: Crn_channel Crn_prng Crn_radio
