lib/core/complexity.mli:
