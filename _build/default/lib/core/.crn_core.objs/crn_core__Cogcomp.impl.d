lib/core/cogcomp.ml: Aggregate Array Cogcast Complexity Crn_channel Crn_prng Crn_radio Disttree Hashtbl List Option Seq
