lib/core/aggregate.ml: Array List Stdlib
