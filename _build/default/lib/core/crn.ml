module Topology = Crn_channel.Topology
module Rng = Crn_prng.Rng

type network = {
  assignment : Crn_channel.Assignment.t;
  spec : Topology.spec;
  topology : Topology.kind;
}

let make_network ?(topology = Topology.Shared_plus_random) ?global_labels
    ?(seed = 1) ~n ~c ~k () =
  let spec = { Topology.n; c; k } in
  let rng = Rng.create seed in
  let assignment = Topology.generate ?global_labels topology rng spec in
  { assignment; spec; topology }

let broadcast ?(seed = 2) ?(source = 0) net =
  Cogcast.run_static ~source ~assignment:net.assignment ~k:net.spec.Topology.k
    ~rng:(Rng.create seed) ()

let aggregate ?(seed = 2) ?(source = 0) net ~monoid ~values =
  Cogcomp.run ~monoid ~values ~source ~assignment:net.assignment
    ~k:net.spec.Topology.k ~rng:(Rng.create seed) ()

let broadcast_bound net =
  let { Topology.n; c; k } = net.spec in
  Complexity.cogcast ~factor:1.0 ~n ~c ~k ()

let aggregation_bound net =
  let { Topology.n; c; k } = net.spec in
  Complexity.cogcomp ~factor:1.0 ~n ~c ~k ()
