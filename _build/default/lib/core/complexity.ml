let lg x = Float.max 1.0 (log x /. log 2.0)

let check ~n ~c ~k =
  if n < 1 || c < 1 || k < 1 || k > c then
    invalid_arg "Complexity: need n >= 1 and 1 <= k <= c"

let cogcast ?(factor = 12.0) ~n ~c ~k () =
  check ~n ~c ~k;
  let fc = float_of_int c and fk = float_of_int k and fn = float_of_int n in
  factor *. (fc /. fk) *. Float.max 1.0 (fc /. fn) *. lg fn

let cogcast_slots ?factor ~n ~c ~k () =
  max 1 (int_of_float (Float.ceil (cogcast ?factor ~n ~c ~k ())))

let cogcomp ?(factor = 12.0) ~n ~c ~k () =
  cogcast ~factor ~n ~c ~k () +. (factor *. float_of_int n)

let rendezvous_broadcast ~n ~c ~k =
  check ~n ~c ~k;
  let fc = float_of_int c in
  fc *. fc /. float_of_int k *. lg (float_of_int n)

let rendezvous_aggregation ~n ~c ~k =
  check ~n ~c ~k;
  let fc = float_of_int c in
  fc *. fc *. float_of_int n /. float_of_int k

let broadcast_lower_bound ~n ~c ~k =
  check ~n ~c ~k;
  let fc = float_of_int c and fk = float_of_int k and fn = float_of_int n in
  fc /. fk *. Float.max 1.0 (fc /. fn)

let global_label_lower_bound ~c ~k = float_of_int (c + 1) /. float_of_int (k + 1)

let bipartite_game_lower_bound ?(beta = 2.0) ~c ~k () =
  if beta < 2.0 then invalid_arg "Complexity.bipartite_game_lower_bound: beta < 2";
  let alpha = 2.0 *. ((beta /. (beta -. 1.0)) ** 2.0) in
  float_of_int (c * c) /. (alpha *. float_of_int k)

let complete_game_lower_bound ~c = float_of_int c /. 3.0

let hop_together ~n ~c ~k =
  check ~n ~c ~k;
  float_of_int (k + (n * (c - k))) /. float_of_int k
