(** Dynamic channel availability (§7): the channel sets visible to nodes may
    change every slot, as long as every pair of nodes still overlaps on at
    least [k] channels in every slot. COGCAST's guarantee is unchanged in
    this model, which experiment E11 verifies.

    A value of type {!t} supplies the assignment in force at each slot. The
    radio engine queries it once per slot, so generators may be lazily
    randomized; they must be *deterministic per slot* (querying the same slot
    twice returns the same assignment) so that traces can be replayed. *)

type t

val static : Assignment.t -> t
(** The classic §2 static model. *)

val of_fun :
  num_nodes:int -> channels_per_node:int -> (int -> Assignment.t) -> t
(** [of_fun ~num_nodes ~channels_per_node f] uses [f slot] as the slot's
    assignment; results are memoized per slot to guarantee determinism. All
    produced assignments must agree with the declared dimensions. *)

val reshuffled_shared_core :
  seed:Crn_prng.Rng.t -> Topology.spec -> t
(** Per-slot fresh {!Topology.shared_core} instance: the common core stays,
    private channels and all local labels are re-randomized every slot — an
    adversarially churning spectrum that still satisfies the overlap
    invariant. *)

val rotating : Assignment.t -> t
(** Deterministic churn: at slot [s] every node's labels are cyclically
    rotated by [s] positions. The channel sets are unchanged (so overlap is
    preserved); only the label-to-channel binding drifts, defeating any
    protocol that relies on stable local labels. *)

val num_nodes : t -> int

val channels_per_node : t -> int

val at : t -> int -> Assignment.t
(** [at t slot] is the assignment in force during [slot]. *)
