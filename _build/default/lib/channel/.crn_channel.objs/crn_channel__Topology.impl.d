lib/channel/topology.ml: Array Assignment Crn_prng
