lib/channel/dynamic.ml: Array Assignment Crn_prng Hashtbl Int64 Topology
