lib/channel/adversary.mli: Dynamic Topology
