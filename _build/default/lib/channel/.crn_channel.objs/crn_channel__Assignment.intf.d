lib/channel/assignment.mli: Bitset Crn_prng Format
