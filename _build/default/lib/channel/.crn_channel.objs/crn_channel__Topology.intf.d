lib/channel/topology.mli: Assignment Crn_prng
