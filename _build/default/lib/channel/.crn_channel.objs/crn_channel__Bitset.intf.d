lib/channel/bitset.mli: Format
