lib/channel/adversary.ml: Array Assignment Dynamic Topology
