lib/channel/bitset.ml: Array Format List String
