lib/channel/assignment.ml: Array Bitset Crn_prng Format String
