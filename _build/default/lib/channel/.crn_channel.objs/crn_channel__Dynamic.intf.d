lib/channel/dynamic.mli: Assignment Crn_prng Topology
