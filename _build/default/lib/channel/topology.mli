(** Generators for channel assignments exercising the overlap patterns the
    paper's analysis must cope with (§4: "the unknown underlying channel
    overlapping pattern complicates detailed analysis").

    All generators guarantee a minimum pairwise overlap of [k] by
    construction and shuffle local labels per node (local label model,
    §2) unless [~global_labels:true] is given, in which case every node
    labels its channels in increasing global order. *)

type spec = {
  n : int;  (** Nodes. *)
  c : int;  (** Channels available to each node. *)
  k : int;  (** Guaranteed minimum pairwise overlap. *)
}

val validate_spec : spec -> unit
(** Raises [Invalid_argument] unless [1 <= k <= c] and [n >= 1]. *)

val shared_core :
  ?global_labels:bool -> Crn_prng.Rng.t -> spec -> Assignment.t
(** The paper's §6 (Theorem 16) construction: [C = k + n(c-k)] channels;
    [k] common channels held by everyone plus [c-k] private channels per
    node. Every pair overlaps on *exactly* [k] channels — the congested
    extreme where finding a shared channel is hardest. *)

val identical : ?global_labels:bool -> Crn_prng.Rng.t -> spec -> Assignment.t
(** All nodes share one [c]-channel set ([k] is ignored; realized overlap is
    [c]). The other congested extreme from §4's discussion. *)

val shared_plus_random :
  ?global_labels:bool -> ?big_c:int -> Crn_prng.Rng.t -> spec -> Assignment.t
(** [k] common channels plus [c-k] channels drawn uniformly per node from a
    spectrum of [big_c] channels (default [4*c]); realized overlaps are at
    least [k] but typically larger and irregular — the "generic" topology. *)

val pairwise_private :
  ?global_labels:bool -> Crn_prng.Rng.t -> spec -> Assignment.t
(** The distributed extreme from §4: every unordered pair of nodes shares
    its own dedicated block of [k] channels that no third node has, so each
    overlapping channel hosts few nodes. Requires [c >= k*(n-1)]; leftover
    capacity is filled with per-node private channels. *)

val clustered :
  ?global_labels:bool -> groups:int -> Crn_prng.Rng.t -> spec -> Assignment.t
(** [k] globally common channels; nodes are split into [groups] groups, and
    each group additionally shares a group-private block, the rest being
    per-node private. Models co-located secondary users seeing the same
    primary-user occupancy. Requires [c - k >= 1] when [groups > 1]. *)

type kind = Shared_core | Identical | Shared_plus_random | Pairwise_private | Clustered

val all_kinds : kind list

val kind_name : kind -> string

val generate :
  ?global_labels:bool -> kind -> Crn_prng.Rng.t -> spec -> Assignment.t
(** Dispatch by {!kind} with default parameters; [Pairwise_private] falls
    back to {!shared_core} when [c < k*(n-1)] so sweeps never abort. *)
