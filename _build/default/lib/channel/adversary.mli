(** The Theorem 17 adversary: in the *dynamic* model with [k < c], no
    algorithm can guarantee local broadcast in finite time, because the
    channel availability "can conspire to prevent communication".

    This module builds that conspiracy constructively. Given an oracle that
    predicts the label the source will tune to in each slot — available for
    any deterministic algorithm, and for a randomized one whose seed leaked
    — {!isolate_source} emits a per-slot assignment in which that label maps
    to a channel no other node has, while every pair of nodes still overlaps
    on at least [k] channels. The source then never shares a channel with
    anyone, and broadcast never starts; see experiment E20.

    Against a randomized algorithm with a *secret* seed the construction is
    powerless (the prediction is wrong in most slots), which is exactly the
    paper's case for randomization (§7, footnote 1). The leaked-seed oracle
    for COGCAST lives next to the protocol it mirrors:
    {!Crn_core.Cogcast.label_oracle}. *)

val isolate_source :
  spec:Topology.spec ->
  source:int ->
  predict_source_label:(slot:int -> int) ->
  Dynamic.t
(** [isolate_source ~spec ~source ~predict_source_label] is a dynamic
    availability over [n] nodes with [c] channels each and pairwise overlap
    exactly [k] in every slot, in which the channel behind the source's
    predicted label is private to the source. Requires [k < c] (with
    [k = c] the source's whole set is shared and isolation is impossible —
    which is why Theorem 17 assumes [k < c]) and [n >= 2]. The oracle is
    queried exactly once per slot, in increasing slot order. *)
