(** Fixed-capacity bitsets over channel identifiers [0 .. capacity-1].

    Channel-set algebra (overlap cardinality in particular) is the inner loop
    of assignment validation and of several topology generators, so sets are
    packed 62 bits per word. *)

type t

val create : int -> t
(** [create capacity] is the empty set over [0 .. capacity-1]. *)

val capacity : t -> int

val copy : t -> t

val set : t -> int -> unit
(** [set t i] adds [i]; out-of-range indices raise [Invalid_argument]. *)

val clear : t -> int -> unit

val mem : t -> int -> bool

val cardinal : t -> int

val inter_cardinal : t -> t -> int
(** [inter_cardinal a b] is [|a ∩ b|]; the sets must share a capacity. *)

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val is_empty : t -> bool

val equal : t -> t -> bool

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list
(** Members in increasing order. *)

val of_array : int -> int array -> t
(** [of_array capacity members]. *)

val to_array : t -> int array

val pp : Format.formatter -> t -> unit
