module Rng = Crn_prng.Rng

type spec = { n : int; c : int; k : int }

let validate_spec { n; c; k } =
  if n < 1 then invalid_arg "Topology: need at least one node";
  if k < 1 then invalid_arg "Topology: k must be at least 1";
  if k > c then invalid_arg "Topology: k must not exceed c"

(* Finish a raw table: per-node label shuffle for the local-label model, or
   increasing global order for the global-label model. *)
let finalize ?(global_labels = false) rng ~num_channels rows =
  let rows =
    Array.map
      (fun row ->
        let row = Array.copy row in
        if global_labels then Array.sort compare row else Rng.shuffle rng row;
        row)
      rows
  in
  Assignment.create ~num_channels ~local_to_global:rows

let shared_core ?global_labels rng spec =
  validate_spec spec;
  let { n; c; k } = spec in
  let num_channels = k + (n * (c - k)) in
  (* Channels 0..k-1 are the common core; node u's private block is
     k + u*(c-k) .. k + (u+1)*(c-k) - 1. *)
  let rows =
    Array.init n (fun u ->
        Array.init c (fun i ->
            if i < k then i else k + (u * (c - k)) + (i - k)))
  in
  finalize ?global_labels rng ~num_channels rows

let identical ?global_labels rng spec =
  validate_spec spec;
  let { n; c; _ } = spec in
  let rows = Array.init n (fun _ -> Array.init c (fun i -> i)) in
  finalize ?global_labels rng ~num_channels:c rows

let shared_plus_random ?global_labels ?big_c rng spec =
  validate_spec spec;
  let { n; c; k } = spec in
  let big_c = match big_c with Some v -> v | None -> 4 * c in
  if big_c < c then invalid_arg "Topology.shared_plus_random: big_c < c";
  (* Channels 0..k-1 common; the rest of each node's set is a uniform random
     (c-k)-subset of the remaining spectrum. *)
  let rows =
    Array.init n (fun _ ->
        let extra = Rng.sample_without_replacement rng (c - k) (big_c - k) in
        Array.init c (fun i -> if i < k then i else k + extra.(i - k)))
  in
  finalize ?global_labels rng ~num_channels:big_c rows

let pairwise_private ?global_labels rng spec =
  validate_spec spec;
  let { n; c; k } = spec in
  if n >= 2 && c < k * (n - 1) then
    invalid_arg "Topology.pairwise_private: need c >= k*(n-1)";
  (* Pair (u,v), u < v, owns the dedicated block pair_index(u,v)*k ..+k-1.
     Each node participates in n-1 pairs, consuming k*(n-1) channels;
     remaining capacity is private filler. *)
  let pair_index u v =
    (* Index of (u,v) with u < v in lexicographic pair order. *)
    (u * n) - (u * (u + 1) / 2) + (v - u - 1)
  in
  let num_pairs = n * (n - 1) / 2 in
  let filler_per_node = c - (k * (max 0 (n - 1))) in
  let num_channels = max 1 ((num_pairs * k) + (n * filler_per_node)) in
  let rows =
    Array.init n (fun u ->
        let buf = ref [] in
        for v = 0 to n - 1 do
          if v <> u then begin
            let lo = min u v and hi = max u v in
            let base = pair_index lo hi * k in
            for j = 0 to k - 1 do
              buf := (base + j) :: !buf
            done
          end
        done;
        let filler_base = (num_pairs * k) + (u * filler_per_node) in
        for j = 0 to filler_per_node - 1 do
          buf := (filler_base + j) :: !buf
        done;
        Array.of_list !buf)
  in
  finalize ?global_labels rng ~num_channels rows

let clustered ?global_labels ~groups rng spec =
  validate_spec spec;
  if groups < 1 then invalid_arg "Topology.clustered: groups < 1";
  let { n; c; k } = spec in
  if groups > 1 && c - k < 1 then invalid_arg "Topology.clustered: need c > k";
  (* k common channels; each group shares a block of size g_share; the rest
     is per-node private. *)
  let g_share = (c - k + 1) / 2 in
  let private_per_node = c - k - g_share in
  let group_of u = u mod groups in
  let group_base g = k + (g * g_share) in
  let private_base = k + (groups * g_share) in
  let num_channels = private_base + (n * private_per_node) in
  let rows =
    Array.init n (fun u ->
        Array.init c (fun i ->
            if i < k then i
            else if i < k + g_share then group_base (group_of u) + (i - k)
            else private_base + (u * private_per_node) + (i - k - g_share)))
  in
  finalize ?global_labels rng ~num_channels:(max 1 num_channels) rows

type kind = Shared_core | Identical | Shared_plus_random | Pairwise_private | Clustered

let all_kinds = [ Shared_core; Identical; Shared_plus_random; Pairwise_private; Clustered ]

let kind_name = function
  | Shared_core -> "shared-core"
  | Identical -> "identical"
  | Shared_plus_random -> "shared+random"
  | Pairwise_private -> "pairwise-private"
  | Clustered -> "clustered"

let generate ?global_labels kind rng spec =
  match kind with
  | Shared_core -> shared_core ?global_labels rng spec
  | Identical -> identical ?global_labels rng spec
  | Shared_plus_random -> shared_plus_random ?global_labels rng spec
  | Pairwise_private ->
      if spec.n >= 2 && spec.c < spec.k * (spec.n - 1) then
        shared_core ?global_labels rng spec
      else pairwise_private ?global_labels rng spec
  | Clustered ->
      if spec.c - spec.k < 1 then identical ?global_labels rng spec
      else clustered ?global_labels ~groups:4 rng spec
