(** Static channel assignments: which global channels each node can use, and
    the node's private (local) labeling of them (§2 of the paper).

    A node addresses channels only through local labels [0 .. c-1]; the
    mapping from a node's local label to the global channel identifier is an
    arbitrary injection, different per node. Protocols that assume the
    *global label* model (§6) may call {!global_of_local} /
    {!local_of_global} to translate, which is exactly the extra power that
    model grants. *)

type t

val create : num_channels:int -> local_to_global:int array array -> t
(** [create ~num_channels ~local_to_global] wraps a raw table
    [local_to_global.(node).(label) = global channel]. All rows must have
    equal length [c >= 1], entries must be distinct within a row and in
    [0, num_channels). Raises [Invalid_argument] otherwise. *)

val num_nodes : t -> int

val num_channels : t -> int
(** Total channels [C] in the spectrum. *)

val channels_per_node : t -> int
(** The per-node set size [c]. *)

val global_of_local : t -> node:int -> label:int -> int
(** Translate a node's local label to the global channel id. *)

val local_of_global : t -> node:int -> channel:int -> int option
(** [local_of_global t ~node ~channel] is the node's label for [channel], or
    [None] if the channel is not in the node's set. *)

val channel_set : t -> node:int -> Bitset.t
(** The node's channel set as a bitset over [0 .. num_channels-1]. *)

val overlap : t -> int -> int -> int
(** [overlap t u v] is the number of global channels shared by nodes [u]
    and [v]. *)

val min_pairwise_overlap : t -> int
(** The smallest overlap over all node pairs — the realized [k]. O(n²)
    with bitset intersections; intended for validation and tests. *)

val relabel : Crn_prng.Rng.t -> t -> t
(** [relabel rng t] returns the same channel sets with every node's local
    labeling independently re-shuffled — converts any assignment into an
    adversarially-unaligned local-label instance. *)

val pp : Format.formatter -> t -> unit

val permute_channels : Crn_prng.Rng.t -> t -> t
(** [permute_channels rng t] applies one uniformly random permutation to the
    global channel identifiers (the same permutation for every node), leaving
    local labels pointing at the renamed channels. Overlap structure is
    exactly preserved; only the numeric identities move. Used to de-bias
    constructions that place special channels at low ids. *)
