type t = {
  num_channels : int;
  local_to_global : int array array;
  sets : Bitset.t array; (* cached channel set per node *)
}

let create ~num_channels ~local_to_global =
  let n = Array.length local_to_global in
  if n = 0 then invalid_arg "Assignment.create: no nodes";
  let c = Array.length local_to_global.(0) in
  if c = 0 then invalid_arg "Assignment.create: empty channel sets";
  let sets =
    Array.map
      (fun row ->
        if Array.length row <> c then
          invalid_arg "Assignment.create: ragged rows (nodes must have equal c)";
        let set = Bitset.create num_channels in
        Array.iter
          (fun ch ->
            if ch < 0 || ch >= num_channels then
              invalid_arg "Assignment.create: channel id out of range";
            if Bitset.mem set ch then
              invalid_arg "Assignment.create: duplicate channel in a node's set";
            Bitset.set set ch)
          row;
        set)
      local_to_global
  in
  { num_channels; local_to_global; sets }

let num_nodes t = Array.length t.local_to_global
let num_channels t = t.num_channels
let channels_per_node t = Array.length t.local_to_global.(0)

let global_of_local t ~node ~label = t.local_to_global.(node).(label)

let local_of_global t ~node ~channel =
  let row = t.local_to_global.(node) in
  let rec scan i =
    if i >= Array.length row then None
    else if row.(i) = channel then Some i
    else scan (i + 1)
  in
  scan 0

let channel_set t ~node = Bitset.copy t.sets.(node)

let overlap t u v = Bitset.inter_cardinal t.sets.(u) t.sets.(v)

let min_pairwise_overlap t =
  let n = num_nodes t in
  if n < 2 then channels_per_node t
  else begin
    let best = ref max_int in
    for u = 0 to n - 2 do
      for v = u + 1 to n - 1 do
        best := min !best (overlap t u v)
      done
    done;
    !best
  end

let relabel rng t =
  let local_to_global =
    Array.map
      (fun row ->
        let row = Array.copy row in
        Crn_prng.Rng.shuffle rng row;
        row)
      t.local_to_global
  in
  create ~num_channels:t.num_channels ~local_to_global

let pp fmt t =
  Format.fprintf fmt "@[<v>assignment: n=%d C=%d c=%d@," (num_nodes t)
    t.num_channels (channels_per_node t);
  Array.iteri
    (fun node row ->
      Format.fprintf fmt "  node %d: [%s]@," node
        (String.concat ";" (Array.to_list (Array.map string_of_int row))))
    t.local_to_global;
  Format.fprintf fmt "@]"

let permute_channels rng t =
  let perm = Crn_prng.Rng.permutation rng t.num_channels in
  let local_to_global =
    Array.map (fun row -> Array.map (fun ch -> perm.(ch)) row) t.local_to_global
  in
  create ~num_channels:t.num_channels ~local_to_global
