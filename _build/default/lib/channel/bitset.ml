(* 62 usable bits per word keeps all word values non-negative OCaml ints. *)
let bits_per_word = 62

type t = { capacity : int; words : int array }

let words_for capacity = (capacity + bits_per_word - 1) / bits_per_word

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity; words = Array.make (max 1 (words_for capacity)) 0 }

let capacity t = t.capacity

let copy t = { capacity = t.capacity; words = Array.copy t.words }

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let set t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let clear t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let check_same a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch"

let inter_cardinal a b =
  check_same a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land b.words.(i))
  done;
  !acc

let map2 f a b =
  check_same a b;
  { capacity = a.capacity; words = Array.map2 f a.words b.words }

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let equal a b = a.capacity = b.capacity && a.words = b.words

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_array capacity members =
  let t = create capacity in
  Array.iter (set t) members;
  t

let to_array t = Array.of_list (elements t)

let pp fmt t =
  Format.fprintf fmt "{%s}" (String.concat "," (List.map string_of_int (elements t)))
