let isolate_source ~spec ~source ~predict_source_label =
  Topology.validate_spec spec;
  let { Topology.n; c; k } = spec in
  if k >= c then invalid_arg "Adversary.isolate_source: requires k < c";
  if n < 2 then invalid_arg "Adversary.isolate_source: requires n >= 2";
  if source < 0 || source >= n then
    invalid_arg "Adversary.isolate_source: source out of range";
  (* Channel plan: channels 0..c-1 form the set B shared by every non-source
     node; channels c..c+c-1 are the source's private pool. The source holds
     B's first k channels plus c-k private ones, arranged so that its
     predicted label lands on a private channel. *)
  let num_channels = 2 * c in
  let non_source_row = Array.init c (fun i -> i) in
  let view slot =
    let target = predict_source_label ~slot in
    if target < 0 || target >= c then
      invalid_arg "Adversary.isolate_source: predicted label out of range";
    (* Source row: fill private channels first, then place the k shared
       channels in label positions other than [target]. *)
    let row = Array.make c (-1) in
    row.(target) <- c; (* a private channel *)
    let next_private = ref (c + 1) in
    let next_shared = ref 0 in
    for label = 0 to c - 1 do
      if label <> target then
        if !next_shared < k then begin
          row.(label) <- !next_shared;
          incr next_shared
        end
        else begin
          row.(label) <- !next_private;
          incr next_private
        end
    done;
    let rows =
      Array.init n (fun v -> if v = source then row else Array.copy non_source_row)
    in
    Assignment.create ~num_channels ~local_to_global:rows
  in
  Dynamic.of_fun ~num_nodes:n ~channels_per_node:c view
