(** Aligned plain-text tables — the output format of every experiment in
    [bench/main.exe], mirroring how the reproduced "tables" are reported in
    EXPERIMENTS.md. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row; short rows are padded with empty
    cells, long rows raise [Invalid_argument]. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [add_rowf t fmt ...] formats a single string and splits it on ['|'] into
    cells, a convenience for terse bench code:
    [add_rowf t "%d|%d|%.1f" n c time]. *)

val rows : t -> int

val render : t -> string
(** Render with a header rule and right-aligned numeric-looking columns. *)

val print : ?title:string -> t -> unit
(** [print ~title t] writes the table to stdout, preceded by an underlined
    title. *)

val headers : t -> string list

val to_rows : t -> string list list
(** Body rows in insertion order (padded, as rendered). *)
