(** Least-squares fitting, used to check the *shape* of measured scaling
    curves against the paper's asymptotic claims (e.g. that COGCAST
    completion time grows linearly in [lg n], inversely in [k], and
    quadratically in [c] once [c > n]). *)

type line = {
  slope : float;
  intercept : float;
  r2 : float;  (** Coefficient of determination of the fit. *)
}

val linear : (float * float) array -> line
(** [linear pts] is the ordinary least-squares line through [pts]; requires
    at least two points with distinct x. *)

val log_log : (float * float) array -> line
(** [log_log pts] fits [y = a * x^slope] by regressing [ln y] on [ln x];
    points with non-positive coordinates are rejected with
    [Invalid_argument]. The returned [slope] is the empirical scaling
    exponent — the primary tool for verifying, e.g., that doubling [c]
    quadruples broadcast time when [c >= n]. *)

val semilog_x : (float * float) array -> line
(** [semilog_x pts] fits [y = slope * ln x + intercept]; verifies
    logarithmic growth (e.g. time vs [n] at fixed [c/k]). *)

val pearson : (float * float) array -> float
(** Pearson correlation coefficient. *)

val eval : line -> float -> float
(** [eval l x] is [l.slope *. x +. l.intercept]. *)
