(** Minimal CSV writing (RFC 4180 quoting) for exporting experiment tables
    to external plotting tools. *)

val escape : string -> string
(** Quote a field iff it contains a comma, quote, or newline. *)

val line : string list -> string
(** One CSV record (no trailing newline). *)

val to_string : header:string list -> rows:string list list -> string

val of_table : Table.t -> string

val write_table : path:string -> Table.t -> unit
(** Write the table to [path], creating or truncating it. *)
