(** Fixed-bin histograms, used to inspect distributions such as cluster sizes
    in the COGCOMP distribution tree and completion-time spreads. *)

type t
(** A histogram with equal-width bins over a closed range. *)

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] makes an empty histogram; requires [lo < hi] and
    [bins >= 1]. Values outside the range are clamped into the end bins. *)

val add : t -> float -> unit
(** Record one observation. *)

val add_int : t -> int -> unit

val count : t -> int
(** Total observations recorded. *)

val bin_count : t -> int -> int
(** [bin_count t i] is the number of observations in bin [i]. *)

val bin_bounds : t -> int -> float * float
(** [bin_bounds t i] is the half-open interval covered by bin [i]. *)

val bins : t -> int

val of_ints : ?bins:int -> int array -> t
(** [of_ints xs] builds a histogram spanning the sample's own range. *)

val pp : ?width:int -> Format.formatter -> t -> unit
(** ASCII bar rendering, one line per bin; [width] scales the longest bar
    (default 40 columns). *)
