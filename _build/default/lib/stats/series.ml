type t = { name : string; points : (float * float) array }

let make name pts = { name; points = Array.of_list pts }

let of_ints name pts =
  make name (List.map (fun (x, y) -> (float_of_int x, float_of_int y)) pts)

let scaling_exponent t = (Fit.log_log t.points).Fit.slope

let glyphs = [| '*'; '+'; 'o'; 'x'; '@'; '#'; '%'; '&' |]

let plot ?(width = 60) ?(height = 16) ?(logx = false) ?(logy = false) series =
  let all_pts = List.concat_map (fun s -> Array.to_list s.points) series in
  if all_pts = [] then "(empty plot)\n"
  else begin
    let tx x = if logx then log x else x in
    let ty y = if logy then log y else y in
    let xs = List.map (fun (x, _) -> tx x) all_pts in
    let ys = List.map (fun (_, y) -> ty y) all_pts in
    let fmin = List.fold_left min infinity and fmax = List.fold_left max neg_infinity in
    let x0 = fmin xs and x1 = fmax xs and y0 = fmin ys and y1 = fmax ys in
    let x1 = if x1 <= x0 then x0 +. 1.0 else x1 in
    let y1 = if y1 <= y0 then y0 +. 1.0 else y1 in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si s ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        Array.iter
          (fun (x, y) ->
            let gx =
              int_of_float ((tx x -. x0) /. (x1 -. x0) *. float_of_int (width - 1))
            in
            let gy =
              int_of_float ((ty y -. y0) /. (y1 -. y0) *. float_of_int (height - 1))
            in
            grid.(height - 1 - gy).(gx) <- glyph)
          s.points)
      series;
    let buf = Buffer.create 1024 in
    Array.iter
      (fun row ->
        Buffer.add_string buf "  |";
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf "  +";
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "   x:[%.3g, %.3g]%s  y:[%.3g, %.3g]%s\n"
         (if logx then exp x0 else x0)
         (if logx then exp x1 else x1)
         (if logx then " (log)" else "")
         (if logy then exp y0 else y0)
         (if logy then exp y1 else y1)
         (if logy then " (log)" else ""));
    List.iteri
      (fun si s ->
        Buffer.add_string buf
          (Printf.sprintf "   %c = %s\n" glyphs.(si mod Array.length glyphs) s.name))
      series;
    Buffer.contents buf
  end

let print_plot ?title ?width ?height ?logx ?logy series =
  (match title with
  | Some s ->
      print_newline ();
      print_endline s
  | None -> ());
  print_string (plot ?width ?height ?logx ?logy series)
