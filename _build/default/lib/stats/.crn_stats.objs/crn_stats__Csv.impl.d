lib/stats/csv.ml: Buffer Fun List String Table
