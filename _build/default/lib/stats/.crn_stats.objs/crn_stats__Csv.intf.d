lib/stats/csv.mli: Table
