lib/stats/histogram.ml: Array Format String
