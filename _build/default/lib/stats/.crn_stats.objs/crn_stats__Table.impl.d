lib/stats/table.ml: Array Buffer List Printf String
