lib/stats/fit.ml: Array Float
