lib/stats/series.ml: Array Buffer Fit List Printf String
