lib/stats/series.mli:
