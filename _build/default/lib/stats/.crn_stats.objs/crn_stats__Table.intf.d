lib/stats/table.mli:
