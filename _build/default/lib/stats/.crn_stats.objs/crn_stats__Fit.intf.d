lib/stats/fit.mli:
