type t = { headers : string list; mutable body : string list list (* reversed *) }

let create headers = { headers; body = [] }

let add_row t cells =
  let width = List.length t.headers in
  let given = List.length cells in
  if given > width then invalid_arg "Table.add_row: too many cells";
  let padded = cells @ List.init (width - given) (fun _ -> "") in
  t.body <- padded :: t.body

let add_rowf t fmt = Printf.ksprintf (fun s -> add_row t (String.split_on_char '|' s)) fmt

let rows t = List.length t.body

let looks_numeric s =
  s <> ""
  && String.for_all (fun ch -> (ch >= '0' && ch <= '9') || ch = '.' || ch = '-' || ch = '+' || ch = 'e' || ch = 'x') s

let render t =
  let all = t.headers :: List.rev t.body in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let body = List.rev t.body in
  let numeric =
    Array.init ncols (fun i ->
        body <> []
        && List.for_all (fun row -> let c = List.nth row i in c = "" || looks_numeric c) body)
  in
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        let pad = widths.(i) - String.length cell in
        if i > 0 then Buffer.add_string buf "  ";
        if numeric.(i) then begin
          Buffer.add_string buf (String.make pad ' ');
          Buffer.add_string buf cell
        end
        else begin
          Buffer.add_string buf cell;
          Buffer.add_string buf (String.make pad ' ')
        end)
      row;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit_row body;
  Buffer.contents buf

let print ?title t =
  (match title with
  | Some s ->
      print_newline ();
      print_endline s;
      print_endline (String.make (String.length s) '=')
  | None -> ());
  print_string (render t)

let headers t = t.headers

let to_rows t = List.rev t.body
