type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p10 : float;
  p90 : float;
  p99 : float;
}

let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (Printf.sprintf "Summary.%s: empty sample" name)

let mean xs =
  check_nonempty "mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let percentile xs p =
  check_nonempty "percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.0

let of_floats xs =
  check_nonempty "of_floats" xs;
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pct p =
    if n = 1 then sorted.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end
  in
  {
    count = n;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(n - 1);
    median = pct 50.0;
    p10 = pct 10.0;
    p90 = pct 90.0;
    p99 = pct 99.0;
  }

let of_ints xs = of_floats (Array.map float_of_int xs)

let pp fmt t =
  Format.fprintf fmt "mean=%.2f sd=%.2f min=%.0f med=%.1f p90=%.1f max=%.0f (n=%d)"
    t.mean t.stddev t.min t.median t.p90 t.max t.count

let to_string t = Format.asprintf "%a" pp t
