type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if lo >= hi then invalid_arg "Histogram.create: lo >= hi";
  if bins < 1 then invalid_arg "Histogram.create: bins < 1";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let bins t = Array.length t.counts

let bin_index t x =
  let nbins = bins t in
  let idx = int_of_float (float_of_int nbins *. ((x -. t.lo) /. (t.hi -. t.lo))) in
  if idx < 0 then 0 else if idx >= nbins then nbins - 1 else idx

let add t x =
  t.counts.(bin_index t x) <- t.counts.(bin_index t x) + 1;
  t.total <- t.total + 1

let add_int t x = add t (float_of_int x)

let count t = t.total

let bin_count t i = t.counts.(i)

let bin_bounds t i =
  let w = (t.hi -. t.lo) /. float_of_int (bins t) in
  (t.lo +. (w *. float_of_int i), t.lo +. (w *. float_of_int (i + 1)))

let of_ints ?(bins = 10) xs =
  if Array.length xs = 0 then invalid_arg "Histogram.of_ints: empty sample";
  let lo = float_of_int (Array.fold_left min xs.(0) xs) in
  let hi = float_of_int (Array.fold_left max xs.(0) xs) in
  let hi = if hi <= lo then lo +. 1.0 else hi +. 1e-9 in
  let t = create ~lo ~hi ~bins in
  Array.iter (add_int t) xs;
  t

let pp ?(width = 40) fmt t =
  let peak = Array.fold_left max 1 t.counts in
  Array.iteri
    (fun i c ->
      let lo, hi = bin_bounds t i in
      let bar = String.make (c * width / peak) '#' in
      Format.fprintf fmt "[%8.1f, %8.1f) %6d %s@." lo hi c bar)
    t.counts
