(** Summary statistics over samples of simulation measurements (slot counts,
    round counts). All functions are total over non-empty inputs and raise
    [Invalid_argument] on empty inputs. *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** Sample standard deviation (Bessel-corrected). *)
  min : float;
  max : float;
  median : float;
  p10 : float;
  p90 : float;
  p99 : float;
}
(** A one-pass summary of a sample. *)

val of_floats : float array -> t
(** [of_floats xs] summarizes a non-empty sample. *)

val of_ints : int array -> t
(** [of_ints xs] summarizes a non-empty integer sample. *)

val mean : float array -> float
val variance : float array -> float

val stddev : float array -> float
(** Sample standard deviation; [0.] for singleton samples. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0,100], by linear interpolation between
    order statistics. Does not modify [xs]. *)

val median : float array -> float

val pp : Format.formatter -> t -> unit
(** Renders as ["mean=… sd=… min=… med=… max=…"]. *)

val to_string : t -> string
