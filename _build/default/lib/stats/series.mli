(** Named (x, y) series with ASCII line rendering — the "figures" of the
    reproduction. Each paper figure-equivalent experiment emits one or more
    series; {!plot} draws them side-by-side on a shared log-or-linear grid so
    crossovers (e.g. COGCAST vs hop-together at [c >> n]) are visible in the
    bench output. *)

type t = { name : string; points : (float * float) array }

val make : string -> (float * float) list -> t

val of_ints : string -> (int * int) list -> t

val scaling_exponent : t -> float
(** Log-log slope of the series (requires positive coordinates). *)

val plot :
  ?width:int -> ?height:int -> ?logx:bool -> ?logy:bool -> t list -> string
(** [plot series] renders the series on one character grid; each series is
    drawn with its own glyph and listed in a legend. Useful for eyeballing
    the shape claims; the tables carry the precise numbers. *)

val print_plot :
  ?title:string -> ?width:int -> ?height:int -> ?logx:bool -> ?logy:bool -> t list -> unit
