let needs_quoting s =
  String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n' || ch = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        if ch = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf ch)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let line fields = String.concat "," (List.map escape fields)

let to_string ~header ~rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let of_table t = to_string ~header:(Table.headers t) ~rows:(Table.to_rows t)

let write_table ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_table t))
