type line = { slope : float; intercept : float; r2 : float }

let linear pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Fit.linear: need at least two points";
  let fn = float_of_int n in
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
  let sxx = Array.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
  let sxy = Array.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Fit.linear: degenerate x values";
  let slope = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. fn in
  let mean_y = sy /. fn in
  let ss_tot = Array.fold_left (fun a (_, y) -> a +. ((y -. mean_y) ** 2.0)) 0.0 pts in
  let ss_res =
    Array.fold_left
      (fun a (x, y) ->
        let e = y -. ((slope *. x) +. intercept) in
        a +. (e *. e))
      0.0 pts
  in
  let r2 = if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { slope; intercept; r2 }

let log_log pts =
  let mapped =
    Array.map
      (fun (x, y) ->
        if x <= 0.0 || y <= 0.0 then
          invalid_arg "Fit.log_log: non-positive coordinate"
        else (log x, log y))
      pts
  in
  linear mapped

let semilog_x pts =
  let mapped =
    Array.map
      (fun (x, y) ->
        if x <= 0.0 then invalid_arg "Fit.semilog_x: non-positive x" else (log x, y))
      pts
  in
  linear mapped

let pearson pts =
  let { r2; slope; _ } = linear pts in
  let r = sqrt (Float.max 0.0 r2) in
  if slope < 0.0 then -.r else r

let eval l x = (l.slope *. x) +. l.intercept
