(** Matchings in the complete bipartite graph [K_{c,c}] over parts
    [A = {0..c-1}] and [B = {0..c-1}], as chosen by the lower-bound
    referees of §6. An edge [(a, b)] pairs [a ∈ A] with [b ∈ B]. *)

type t
(** A matching of some size [k ≤ c]. *)

val size : t -> int

val c : t -> int
(** Size of each bipartition part. *)

val mem : t -> int * int -> bool
(** Edge membership. *)

val edges : t -> (int * int) list
(** Ascending by [A]-endpoint. *)

val of_edges : c:int -> (int * int) list -> t
(** Validates that endpoints are in range and no vertex repeats. *)

val random : Crn_prng.Rng.t -> c:int -> k:int -> t
(** The Lemma 11 referee's distribution: [k] edges chosen sequentially,
    each uniform over the edges not conflicting with earlier picks (the
    i-th pick is uniform over [(c-i+1)²] candidates). *)

val random_perfect : Crn_prng.Rng.t -> c:int -> t
(** The Lemma 14 referee: a uniformly random perfect matching (a random
    bijection from [A] to [B]). *)

val b_of_a : t -> int -> int option
(** [b_of_a m a] is the partner of [a], if matched. *)
