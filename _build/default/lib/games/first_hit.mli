(** The Theorem 16 experiment (global channel labels): in the shared-core
    network the [k] overlapping channels are, from the source's perspective,
    a uniformly random subset of its [c] channels, so whatever strategy the
    source uses, the slot at which it first tunes to an overlapping channel
    has expectation at least [(c+1)/(k+1)]. Non-repeating strategies (a
    scan, a random permutation) achieve the bound with equality; the
    memoryless uniform strategy has mean [c/k].

    This module samples that first-hit time for arbitrary source strategies,
    so experiment E15 can verify both the closed form and its strategy
    independence. *)

type strategy = {
  strategy_name : string;
  next : slot:int -> int;  (** Label in [0, c) chosen at [slot]. *)
}

val uniform_strategy : Crn_prng.Rng.t -> c:int -> strategy

val scan_strategy : c:int -> strategy
(** Deterministic [slot mod c] scan. *)

val fresh_random_strategy : Crn_prng.Rng.t -> c:int -> strategy
(** A random *non-repeating* scan: a random permutation of the labels,
    then cycling — the optimal strategy, also [(c+1)/(k+1)] in
    expectation. *)

val sample : rng:Crn_prng.Rng.t -> c:int -> k:int -> strategy:strategy -> int
(** One trial: draws the hidden overlap set uniformly, runs the strategy,
    returns the 1-based first-hit slot. *)

val mean_first_hit :
  rng:Crn_prng.Rng.t ->
  trials:int ->
  c:int ->
  k:int ->
  make_strategy:(Crn_prng.Rng.t -> strategy) ->
  float
(** Monte-Carlo mean over [trials] independent setups and strategies. *)
