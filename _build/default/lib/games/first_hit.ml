module Rng = Crn_prng.Rng

type strategy = { strategy_name : string; next : slot:int -> int }

let uniform_strategy rng ~c =
  { strategy_name = "uniform"; next = (fun ~slot:_ -> Rng.int rng c) }

let scan_strategy ~c = { strategy_name = "scan"; next = (fun ~slot -> slot mod c) }

let fresh_random_strategy rng ~c =
  let order = Rng.permutation rng c in
  { strategy_name = "random-permutation"; next = (fun ~slot -> order.(slot mod c)) }

let sample ~rng ~c ~k ~strategy =
  if k < 1 || k > c then invalid_arg "First_hit.sample: k out of range";
  let members = Rng.sample_without_replacement rng k c in
  let overlapping = Array.make c false in
  Array.iter (fun i -> overlapping.(i) <- true) members;
  let rec loop slot =
    let label = strategy.next ~slot in
    if overlapping.(label) then slot + 1 else loop (slot + 1)
  in
  loop 0

let mean_first_hit ~rng ~trials ~c ~k ~make_strategy =
  if trials < 1 then invalid_arg "First_hit.mean_first_hit: trials < 1";
  let total = ref 0 in
  for _ = 1 to trials do
    let strategy = make_strategy (Rng.split rng) in
    total := !total + sample ~rng:(Rng.split rng) ~c ~k ~strategy
  done;
  float_of_int !total /. float_of_int trials
