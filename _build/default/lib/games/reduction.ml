module Rng = Crn_prng.Rng

type simulated_algorithm = {
  alg_name : string;
  source_choice : slot:int -> int;
  nonsource_choices : slot:int -> int array;
}

let cogcast_algorithm rng ~n ~c =
  if n < 2 then invalid_arg "Reduction.cogcast_algorithm: need n >= 2";
  let source_rng = Rng.split rng in
  let node_rngs = Rng.split_n rng (n - 1) in
  {
    alg_name = "cogcast";
    source_choice = (fun ~slot:_ -> Rng.int source_rng c);
    nonsource_choices =
      (fun ~slot:_ -> Array.map (fun r -> Rng.int r c) node_rngs);
  }

let player_of_algorithm ~c alg =
  let tried = Hashtbl.create 64 in
  let queue = Queue.create () in
  let sim_slots = ref 0 in
  let advance () =
    let slot = !sim_slots in
    incr sim_slots;
    let a = alg.source_choice ~slot in
    let bs = alg.nonsource_choices ~slot in
    (* Distinct fresh proposals only: duplicates within a slot collapse, and
       pairs proposed in earlier slots are skipped. *)
    let seen_this_slot = Hashtbl.create 8 in
    Array.iter
      (fun b ->
        if not (Hashtbl.mem seen_this_slot b) then begin
          Hashtbl.replace seen_this_slot b ();
          if not (Hashtbl.mem tried (a, b)) then begin
            Hashtbl.replace tried (a, b) ();
            Queue.add (a, b) queue
          end
        end)
      bs
  in
  let propose ~round:_ =
    let guard = ref 0 in
    while Queue.is_empty queue && !guard < 1_000_000 do
      (* A slot can yield no fresh proposal once its pairs were already
         tried; keep simulating. If every one of the c² edges has been
         proposed the game must already be over, so the guard is only a
         belt-and-braces bound. *)
      if Hashtbl.length tried >= c * c then begin
        Queue.add (0, 0) queue;
        guard := max_int
      end
      else begin
        advance ();
        incr guard
      end
    done;
    if Queue.is_empty queue then (0, 0) else Queue.pop queue
  in
  let player =
    {
      Hitting_game.player_name = "reduction:" ^ alg.alg_name;
      propose;
      inform = (fun ~round:_ ~hit:_ -> ());
    }
  in
  (player, fun () -> !sim_slots)
