lib/games/players.mli: Crn_prng Hitting_game
