lib/games/bounds.mli:
