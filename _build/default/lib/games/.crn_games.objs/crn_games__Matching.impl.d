lib/games/matching.ml: Array Crn_prng List
