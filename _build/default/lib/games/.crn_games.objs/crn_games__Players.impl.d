lib/games/players.ml: Array Crn_prng Hitting_game
