lib/games/hitting_game.ml: Array Crn_prng Matching
