lib/games/hitting_game.mli: Crn_prng Matching
