lib/games/reduction.ml: Array Crn_prng Hashtbl Hitting_game Queue
