lib/games/first_hit.mli: Crn_prng
