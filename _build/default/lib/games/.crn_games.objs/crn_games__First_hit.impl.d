lib/games/first_hit.ml: Array Crn_prng
