lib/games/matching.mli: Crn_prng
