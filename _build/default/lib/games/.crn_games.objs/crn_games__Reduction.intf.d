lib/games/reduction.mli: Crn_prng Hitting_game
