lib/games/bounds.ml: Float
