let losing_probability_lower_bound ~c ~k ~rounds =
  if k < 1 || k > c then invalid_arg "Bounds: need 1 <= k <= c";
  if rounds < 0 then invalid_arg "Bounds: negative rounds";
  let acc = ref 1.0 in
  for i = 1 to k do
    let ni = float_of_int ((c - i + 1) * (c - i + 1)) in
    let term = 1.0 -. (float_of_int rounds /. ni) in
    acc := !acc *. Float.max 0.0 term
  done;
  !acc

let winning_probability_upper_bound ~c ~k ~rounds =
  1.0 -. losing_probability_lower_bound ~c ~k ~rounds

let alpha ~beta =
  if beta <= 1.0 then invalid_arg "Bounds.alpha: beta must exceed 1";
  2.0 *. ((beta /. (beta -. 1.0)) ** 2.0)

let critical_rounds ?(beta = 2.0) ~c ~k () =
  if k < 1 || k > c then invalid_arg "Bounds: need 1 <= k <= c";
  int_of_float (float_of_int (c * c) /. (alpha ~beta *. float_of_int k))

let exact_uniform_win_probability ~c ~k ~rounds =
  if k < 1 || k > c then invalid_arg "Bounds: need 1 <= k <= c";
  if rounds < 0 then invalid_arg "Bounds: negative rounds";
  let p_hit = float_of_int k /. float_of_int (c * c) in
  1.0 -. ((1.0 -. p_hit) ** float_of_int rounds)

let complete_game_losing_probability ~c ~rounds =
  if c < 1 then invalid_arg "Bounds: c < 1";
  Float.max 0.0 (1.0 -. (float_of_int rounds /. float_of_int c))
