type player = {
  player_name : string;
  propose : round:int -> int * int;
  inform : round:int -> hit:bool -> unit;
}

type result = { won : bool; rounds : int }

let play ~matching ~player ~max_rounds =
  let rec loop round =
    if round >= max_rounds then { won = false; rounds = max_rounds }
    else begin
      let edge = player.propose ~round in
      let hit = Matching.mem matching edge in
      player.inform ~round ~hit;
      if hit then { won = true; rounds = round + 1 } else loop (round + 1)
    end
  in
  loop 0

let play_bipartite ~rng ~c ~k ~player ~max_rounds =
  let matching = Matching.random rng ~c ~k in
  play ~matching ~player ~max_rounds

let play_complete ~rng ~c ~player ~max_rounds =
  let matching = Matching.random_perfect rng ~c in
  play ~matching ~player ~max_rounds

let median_rounds ~rng ~trials ~make_player ~game ~max_rounds =
  if trials < 1 then invalid_arg "Hitting_game.median_rounds: trials < 1";
  let samples =
    Array.init trials (fun _ ->
        let player = make_player (Crn_prng.Rng.split rng) in
        let r = game ~rng:(Crn_prng.Rng.split rng) ~player ~max_rounds in
        float_of_int r.rounds)
  in
  Array.sort compare samples;
  let t = trials in
  if t mod 2 = 1 then samples.(t / 2)
  else (samples.((t / 2) - 1) +. samples.(t / 2)) /. 2.0
