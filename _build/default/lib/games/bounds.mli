(** Numeric machinery from the Lemma 11 / Lemma 14 proofs.

    Lemma 11 lower-bounds the probability [P(L)] that a player's first [l]
    proposals all miss the referee's random [k]-matching:
    [P(L) ≥ Π_{i=1}^{k} (1 − l / (c−i+1)²)], and shows that at
    [l = c²/(αk)] with [α = 2(β/(β−1))²] this is at least [1/2]. This module
    evaluates those quantities exactly so the experiments can compare the
    analytic bound against the simulated games, and so tests can check each
    inequality step of the proof numerically. *)

val losing_probability_lower_bound : c:int -> k:int -> rounds:int -> float
(** [Π_{i=1}^{k} max(0, 1 − rounds/(c−i+1)²)] — the proof's lower bound on
    the probability that [rounds] distinct proposals miss the matching.
    Valid for any player (proposals may as well be distinct; repeats only
    help the referee). Requires [1 ≤ k ≤ c] and [rounds ≥ 0]. *)

val winning_probability_upper_bound : c:int -> k:int -> rounds:int -> float
(** [1 − losing_probability_lower_bound]. *)

val alpha : beta:float -> float
(** [α = 2(β/(β−1))²]; [β = 2] gives [α = 8]. *)

val critical_rounds : ?beta:float -> c:int -> k:int -> unit -> int
(** [⌊c²/(αk)⌋] — the round count at which Lemma 11 pins the winning
    probability below 1/2 (for [k ≤ c/β]). *)

val exact_uniform_win_probability : c:int -> k:int -> rounds:int -> float
(** For the *uniform with-replacement* player specifically: each proposal
    hits independently with probability [k/c²], so the win probability
    within [rounds] proposals is [1 − (1 − k/c²)^rounds]. Used to cross-check
    the simulator against a closed form. *)

val complete_game_losing_probability : c:int -> rounds:int -> float
(** Lemma 14's game: each (distinct) proposal hits the hidden perfect
    matching with probability [1/c], and the proof's accounting gives
    [P(L) ≥ 1 − rounds/c] for [rounds] proposals; this returns
    [max 0 (1 − rounds/c)]. *)
