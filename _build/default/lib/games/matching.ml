module Rng = Crn_prng.Rng

type t = { c : int; partner : int array (* partner.(a) = b or -1 *) }

let size t = Array.fold_left (fun acc b -> if b >= 0 then acc + 1 else acc) 0 t.partner

let c t = t.c

let mem t (a, b) = a >= 0 && a < t.c && t.partner.(a) = b

let edges t =
  let acc = ref [] in
  for a = t.c - 1 downto 0 do
    if t.partner.(a) >= 0 then acc := (a, t.partner.(a)) :: !acc
  done;
  !acc

let of_edges ~c edges =
  let partner = Array.make c (-1) in
  let used_b = Array.make c false in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= c || b < 0 || b >= c then
        invalid_arg "Matching.of_edges: endpoint out of range";
      if partner.(a) >= 0 then invalid_arg "Matching.of_edges: repeated A vertex";
      if used_b.(b) then invalid_arg "Matching.of_edges: repeated B vertex";
      partner.(a) <- b;
      used_b.(b) <- true)
    edges;
  { c; partner }

let random rng ~c ~k =
  if k < 0 || k > c then invalid_arg "Matching.random: k out of range";
  (* Sequential uniform picks over remaining vertices: choosing a uniform
     free A-vertex and a uniform free B-vertex is exactly a uniform choice
     among the (c-i+1)^2 available edges. *)
  let free_a = Array.init c (fun i -> i) in
  let free_b = Array.init c (fun i -> i) in
  let partner = Array.make c (-1) in
  for i = 0 to k - 1 do
    let remaining = c - i in
    let ai = Rng.int rng remaining in
    let bi = Rng.int rng remaining in
    let a = free_a.(ai) and b = free_b.(bi) in
    partner.(a) <- b;
    (* Swap the chosen vertices out of the free prefix. *)
    free_a.(ai) <- free_a.(remaining - 1);
    free_a.(remaining - 1) <- a;
    free_b.(bi) <- free_b.(remaining - 1);
    free_b.(remaining - 1) <- b
  done;
  { c; partner }

let random_perfect rng ~c =
  let partner = Rng.permutation rng c in
  { c; partner }

let b_of_a t a =
  if a < 0 || a >= t.c then invalid_arg "Matching.b_of_a: out of range";
  if t.partner.(a) >= 0 then Some t.partner.(a) else None
