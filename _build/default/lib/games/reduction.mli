(** Lemma 12: any algorithm solving local broadcast with local channel
    labels in [g(c,k,n)] slots yields a player winning the
    [(c,k)]-bipartite hitting game in [min{c,n}·g(c,k,n)] rounds.

    The player simulates the hard network: the source holds channel set [A],
    the other [n-1] nodes all hold channel set [B], and the referee's hidden
    matching [M] defines which [A]-channels coincide with which
    [B]-channels. Until the source lands on a matched channel no information
    can leave it, so the simulation needs no radio at all: it just replays
    the algorithm's channel choices. Each simulated slot [r] yields up to
    [min{c, n}] fresh proposals [(a_r, b_r^u)] — one per distinct channel
    chosen by a non-source node, skipping pairs already proposed. *)

type simulated_algorithm = {
  alg_name : string;
  source_choice : slot:int -> int;
      (** The source's channel label (index into [A]) in a simulated slot. *)
  nonsource_choices : slot:int -> int array;
      (** Labels (indices into [B]) chosen by the [n-1] non-source nodes. *)
}

val cogcast_algorithm : Crn_prng.Rng.t -> n:int -> c:int -> simulated_algorithm
(** COGCAST's choices: every node uniform over its [c] labels each slot. *)

val player_of_algorithm :
  c:int -> simulated_algorithm -> Hitting_game.player * (unit -> int)
(** [player_of_algorithm ~c alg] is the Lemma 12 player plus an accessor for
    the number of simulated slots consumed so far — the quantity related to
    game rounds by [rounds ≤ min{c,n}·slots]. *)
