module Rng = Crn_prng.Rng

let no_inform ~round:_ ~hit:_ = ()

let uniform rng ~c =
  {
    Hitting_game.player_name = "uniform";
    propose = (fun ~round:_ -> (Rng.int rng c, Rng.int rng c));
    inform = no_inform;
  }

let without_replacement rng ~c =
  let total = c * c in
  let order = Rng.permutation rng total in
  {
    Hitting_game.player_name = "without-replacement";
    propose =
      (fun ~round ->
        let e = order.(round mod total) in
        (e / c, e mod c));
    inform = no_inform;
  }

let row_scan ~c =
  {
    Hitting_game.player_name = "row-scan";
    propose =
      (fun ~round ->
        let e = round mod (c * c) in
        (e / c, e mod c));
    inform = no_inform;
  }
