(** The hitting games of §6.

    The [(c,k)]-bipartite hitting game (Lemma 11): a referee privately
    selects a matching [M] of size [k] in [K_{c,c}]; the player proposes one
    edge per round and wins on the first proposal in [M]. Any player needing
    probability ≥ 1/2 needs [Ω(c²/k)] rounds.

    The [c]-complete bipartite hitting game (Lemma 14) is the special case
    where [M] is a perfect matching; it needs [≥ c/3] rounds.

    Players are arbitrary stateful proposal generators; {!Players} provides
    the standard ones and {!Reduction} derives a player from any local
    broadcast algorithm (Lemma 12). *)

type player = {
  player_name : string;
  propose : round:int -> int * int;
      (** The edge proposed in this (0-based) round. *)
  inform : round:int -> hit:bool -> unit;
      (** Outcome notification. NOTE: in the paper's game the player gets no
          feedback beyond "not yet won"; [hit = true] simply ends the game,
          so honest players may only use [hit = false]. *)
}

type result = {
  won : bool;
  rounds : int;  (** Rounds played; the winning proposal counts. *)
}

val play : matching:Matching.t -> player:player -> max_rounds:int -> result

val play_bipartite :
  rng:Crn_prng.Rng.t ->
  c:int ->
  k:int ->
  player:player ->
  max_rounds:int ->
  result
(** One [(c,k)] game against the Lemma 11 referee. *)

val play_complete :
  rng:Crn_prng.Rng.t -> c:int -> player:player -> max_rounds:int -> result
(** One [c]-complete game against the Lemma 14 referee. *)

val median_rounds :
  rng:Crn_prng.Rng.t ->
  trials:int ->
  make_player:(Crn_prng.Rng.t -> player) ->
  game:(rng:Crn_prng.Rng.t -> player:player -> max_rounds:int -> result) ->
  max_rounds:int ->
  float
(** Median rounds-to-win over [trials] independent games (losses count as
    [max_rounds]) — the statistic compared against [f(c,k) ≥ c²/(αk)]:
    if the median is below the bound the player would win within the bound
    with probability ≥ 1/2, contradicting Lemma 11. *)
