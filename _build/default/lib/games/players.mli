(** Standard players for the hitting games.

    Lemma 11 holds for *arbitrary* probabilistic players, so these span the
    natural strategy space: memoryless uniform guessing, sampling without
    replacement (the strongest generic strategy), and a deterministic
    row-major scan. Experiment E8 checks that even the strongest of them
    stays above the [c²/(αk)] bound at the median. *)

val uniform : Crn_prng.Rng.t -> c:int -> Hitting_game.player
(** Proposes a uniformly random edge each round (with replacement). *)

val without_replacement : Crn_prng.Rng.t -> c:int -> Hitting_game.player
(** Proposes the [c²] edges in a uniformly random order — optimal among
    feedback-free strategies by symmetry. *)

val row_scan : c:int -> Hitting_game.player
(** Deterministic lexicographic scan [(0,0), (0,1), …]; the adversarial
    referee distribution makes determinism no better than random. *)
