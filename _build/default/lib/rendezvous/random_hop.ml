module Rng = Crn_prng.Rng
module Assignment = Crn_channel.Assignment

let pair ~rng ~assignment ~u ~v ~max_slots =
  let c = Assignment.channels_per_node assignment in
  let rec loop slot =
    if slot > max_slots then None
    else begin
      let cu = Assignment.global_of_local assignment ~node:u ~label:(Rng.int rng c) in
      let cv = Assignment.global_of_local assignment ~node:v ~label:(Rng.int rng c) in
      if cu = cv then Some slot else loop (slot + 1)
    end
  in
  loop 1

let source_meets_all ~rng ~assignment ~source ~max_slots =
  let n = Assignment.num_nodes assignment in
  let c = Assignment.channels_per_node assignment in
  let met = Array.make n false in
  met.(source) <- true;
  let met_count = ref 1 in
  let rec loop slot =
    if !met_count = n then Some (slot - 1)
    else if slot > max_slots then None
    else begin
      let cs = Assignment.global_of_local assignment ~node:source ~label:(Rng.int rng c) in
      for v = 0 to n - 1 do
        if not met.(v) then begin
          let cv = Assignment.global_of_local assignment ~node:v ~label:(Rng.int rng c) in
          if cv = cs then begin
            met.(v) <- true;
            incr met_count
          end
        end
      done;
      loop (slot + 1)
    end
  in
  loop 1
