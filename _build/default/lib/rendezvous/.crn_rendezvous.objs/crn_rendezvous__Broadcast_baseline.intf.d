lib/rendezvous/broadcast_baseline.mli: Crn_channel Crn_prng Crn_radio
