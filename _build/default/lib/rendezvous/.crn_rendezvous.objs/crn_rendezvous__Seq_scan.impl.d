lib/rendezvous/seq_scan.ml: Array Crn_channel Crn_radio Hashtbl
