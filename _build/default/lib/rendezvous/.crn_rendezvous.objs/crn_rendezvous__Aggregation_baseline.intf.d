lib/rendezvous/aggregation_baseline.mli: Crn_channel Crn_core Crn_prng
