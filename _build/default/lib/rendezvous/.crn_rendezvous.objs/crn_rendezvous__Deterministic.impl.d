lib/rendezvous/deterministic.ml: Array Crn_channel Crn_radio Printf
