lib/rendezvous/random_hop.mli: Crn_channel Crn_prng
