lib/rendezvous/seq_scan.mli: Crn_channel Crn_prng
