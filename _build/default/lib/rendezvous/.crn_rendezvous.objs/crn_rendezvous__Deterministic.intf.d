lib/rendezvous/deterministic.mli: Crn_channel Crn_prng
