lib/rendezvous/random_hop.ml: Array Crn_channel Crn_prng
