lib/rendezvous/aggregation_baseline.ml: Array Crn_channel Crn_core Crn_prng Crn_radio Float
