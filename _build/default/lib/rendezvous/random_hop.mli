(** Uniform random channel hopping — the basic randomized rendezvous
    primitive the paper cites as achieving [O(c²/k)] expected meeting time
    for a pair of nodes (§1).

    In every slot each node tunes to a uniformly random channel of its set;
    two nodes rendezvous in the first slot they land on a common channel.
    Per slot the meeting probability is at least [k/c²], so the expectation
    is at most [c²/k]. *)

val pair :
  rng:Crn_prng.Rng.t ->
  assignment:Crn_channel.Assignment.t ->
  u:int ->
  v:int ->
  max_slots:int ->
  int option
(** [pair ~rng ~assignment ~u ~v ~max_slots] is the 1-based slot at which
    nodes [u] and [v] first choose the same global channel, or [None] if
    that never happens within [max_slots]. *)

val source_meets_all :
  rng:Crn_prng.Rng.t ->
  assignment:Crn_channel.Assignment.t ->
  source:int ->
  max_slots:int ->
  int option
(** The number of slots until the source has shared a channel at least once
    with every other node (each node hopping independently) — the schedule
    skeleton of the rendezvous broadcast baseline. *)
