module Rng = Crn_prng.Rng
module Dynamic = Crn_channel.Dynamic
module Action = Crn_radio.Action
module Engine = Crn_radio.Engine

type msg = Payload

type result = {
  completed_at : int option;
  slots_run : int;
  informed_count : int;
  informed : bool array;
}

let run ?metrics ?(stop_when_complete = true) ~source ~availability ~rng ~max_slots () =
  let n = Dynamic.num_nodes availability in
  let c = Dynamic.channels_per_node availability in
  if source < 0 || source >= n then
    invalid_arg "Broadcast_baseline.run: source out of range";
  let informed = Array.make n false in
  informed.(source) <- true;
  let informed_count = ref 1 in
  let node_rngs = Rng.split_n rng n in
  let decide v ~slot:_ =
    let label = Rng.int node_rngs.(v) c in
    if v = source then Action.broadcast ~label Payload
    else if informed.(v) then Action.listen ~label (* silent; already served *)
    else Action.listen ~label
  in
  let feedback v ~slot:_ = function
    | Action.Heard { sender; msg = Payload } ->
        (* Only the source transmits, so any reception is the real message. *)
        if sender = source && not informed.(v) then begin
          informed.(v) <- true;
          incr informed_count
        end
    | Action.Won | Action.Lost _ | Action.Silence | Action.Jammed -> ()
  in
  let nodes =
    Array.init n (fun v -> Engine.node ~id:v ~decide:(decide v) ~feedback:(feedback v))
  in
  let stop =
    if stop_when_complete then Some (fun ~slot:_ -> !informed_count = n) else None
  in
  let outcome = Engine.run ?metrics ?stop ~availability ~rng ~nodes ~max_slots () in
  let slots_run = outcome.Engine.slots_run in
  {
    completed_at = (if !informed_count = n then Some slots_run else None);
    slots_run;
    informed_count = !informed_count;
    informed;
  }

let run_static ?metrics ?stop_when_complete ?(budget_factor = 8.0) ~source ~assignment ~k
    ~rng () =
  let n = Crn_channel.Assignment.num_nodes assignment in
  let c = Crn_channel.Assignment.channels_per_node assignment in
  let budget = Crn_core.Complexity.rendezvous_broadcast ~n ~c ~k in
  let max_slots = max 1 (int_of_float (Float.ceil (budget_factor *. budget))) in
  run ?metrics ?stop_when_complete ~source
    ~availability:(Dynamic.static assignment) ~rng ~max_slots ()
