(* Tests for the fault-tolerant COGCOMP variant: bit-identical fault-free
   parity with the plain protocol, bounded termination and honest coverage
   accounting under crashes, churn and reactive jamming, and exactly-once
   folding across retries. *)

module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Aggregate = Crn_core.Aggregate
module Cogcomp = Crn_core.Cogcomp
module Cogcomp_robust = Crn_core.Cogcomp_robust
module Faults = Crn_radio.Faults
module Jammer = Crn_radio.Jammer
module Trace = Crn_radio.Trace

let check_int = Alcotest.(check int)

let run_pair ?jammer ?faults ~seed ~source kind spec =
  let values = Array.init spec.Topology.n (fun i -> (i * 13) + 1) in
  let plain =
    let rng = Rng.create seed in
    let assignment = Topology.generate kind rng spec in
    Cogcomp.run ~monoid:Aggregate.sum ~values ~source ~assignment
      ~k:spec.Topology.k ~rng ()
  in
  let robust =
    let rng = Rng.create seed in
    let assignment = Topology.generate kind rng spec in
    Cogcomp_robust.run ?jammer ?faults ~monoid:Aggregate.sum ~values ~source
      ~assignment ~k:spec.Topology.k ~rng ()
  in
  (plain, robust)

(* --- fault-free parity ----------------------------------------------------- *)

let parity_specs =
  [
    { Topology.n = 2; c = 4; k = 2 };
    { Topology.n = 24; c = 8; k = 2 };
    { Topology.n = 10; c = 20; k = 5 };
    { Topology.n = 50; c = 6; k = 1 };
  ]

let test_faultfree_parity () =
  List.iter
    (fun kind ->
      List.iter
        (fun spec ->
          for seed = 1 to 3 do
            let ctx =
              Printf.sprintf "%s n=%d c=%d k=%d seed=%d"
                (Topology.kind_name kind) spec.Topology.n spec.Topology.c
                spec.Topology.k seed
            in
            let plain, robust = run_pair ~seed ~source:0 kind spec in
            Alcotest.(check bool)
              (ctx ^ " complete") plain.Cogcomp.complete
              robust.Cogcomp_robust.complete;
            Alcotest.(check (option int))
              (ctx ^ " root") plain.Cogcomp.root_value
              (Some robust.Cogcomp_robust.root_value);
            check_int (ctx ^ " p1") plain.Cogcomp.phase1_slots
              robust.Cogcomp_robust.phase1_slots;
            check_int (ctx ^ " p2") plain.Cogcomp.phase2_slots
              robust.Cogcomp_robust.phase2_slots;
            check_int (ctx ^ " p3") plain.Cogcomp.phase3_slots
              robust.Cogcomp_robust.phase3_slots;
            check_int (ctx ^ " p4") plain.Cogcomp.phase4_slots
              robust.Cogcomp_robust.phase4_slots;
            check_int (ctx ^ " total") plain.Cogcomp.total_slots
              robust.Cogcomp_robust.total_slots;
            Alcotest.(check (list int))
              (ctx ^ " mediators") plain.Cogcomp.mediators
              robust.Cogcomp_robust.mediators;
            check_int (ctx ^ " coverage") spec.Topology.n
              robust.Cogcomp_robust.coverage;
            Alcotest.(check (list int)) (ctx ^ " lost") []
              robust.Cogcomp_robust.lost;
            check_int (ctx ^ " reelections") 0 robust.Cogcomp_robust.reelections;
            check_int (ctx ^ " retries") 0 robust.Cogcomp_robust.retries
          done)
        parity_specs)
    Topology.all_kinds

(* The strongest form of parity: the slot-level traces — every decide, win,
   delivery and drain event the two runs emit — are byte-identical, so the
   robust machinery provably consumed the same RNG stream and made the same
   decisions. *)
let test_faultfree_trace_identical () =
  List.iter
    (fun (kind, spec, seed) ->
      let values = Array.init spec.Topology.n (fun i -> (i * 7) + 3) in
      let run_traced f =
        let rng = Rng.create seed in
        let assignment = Topology.generate kind rng spec in
        let trace = Trace.create () in
        f ~trace ~assignment ~rng ~values;
        Trace.to_jsonl trace
      in
      let plain =
        run_traced (fun ~trace ~assignment ~rng ~values ->
            ignore
              (Cogcomp.run ~trace ~monoid:Aggregate.sum ~values ~source:0
                 ~assignment ~k:spec.Topology.k ~rng ()))
      in
      let robust =
        run_traced (fun ~trace ~assignment ~rng ~values ->
            ignore
              (Cogcomp_robust.run ~trace ~monoid:Aggregate.sum ~values ~source:0
                 ~assignment ~k:spec.Topology.k ~rng ()))
      in
      Alcotest.(check string)
        (Printf.sprintf "trace %s n=%d seed=%d" (Topology.kind_name kind)
           spec.Topology.n seed)
        plain robust)
    [
      (Topology.Shared_plus_random, { Topology.n = 20; c = 8; k = 2 }, 1);
      (Topology.Shared_plus_random, { Topology.n = 20; c = 8; k = 2 }, 2);
      (Topology.Pairwise_private, { Topology.n = 16; c = 10; k = 3 }, 3);
      (Topology.Clustered, { Topology.n = 30; c = 6; k = 1 }, 4);
    ]

(* --- crash of a single non-source node ------------------------------------- *)

let test_single_crash () =
  let spec = { Topology.n = 24; c = 8; k = 2 } in
  for seed = 1 to 3 do
    let values = Array.init spec.Topology.n (fun i -> (i * 13) + 1) in
    let rng = Rng.create seed in
    let assignment = Topology.generate Topology.Shared_plus_random rng spec in
    let trace = Trace.create () in
    let res =
      Cogcomp_robust.run ~trace
        ~faults:(Faults.crash ~node:5 ~from_slot:0)
        ~monoid:Aggregate.sum ~values ~source:0 ~assignment ~k:spec.Topology.k
        ~rng ()
    in
    let ctx = Printf.sprintf "crash seed=%d" seed in
    check_int (ctx ^ " coverage+lost")
      spec.Topology.n
      (res.Cogcomp_robust.coverage + List.length res.Cogcomp_robust.lost);
    Alcotest.(check bool)
      (ctx ^ " node 5 lost") true
      (List.mem 5 res.Cogcomp_robust.lost);
    (* The fold at the root is exactly the sum over the covered nodes. *)
    let expect =
      Array.to_list values
      |> List.mapi (fun i x -> (i, x))
      |> List.filter (fun (i, _) -> not (List.mem i res.Cogcomp_robust.lost))
      |> List.fold_left (fun acc (_, x) -> acc + x) 0
    in
    check_int (ctx ^ " root = sum of covered") expect
      res.Cogcomp_robust.root_value;
    (match Trace.Check.all trace with
    | [] -> ()
    | v :: _ ->
        Alcotest.failf "%s: %a" ctx Trace.Check.pp_violation v)
  done

(* --- bernoulli churn ------------------------------------------------------- *)

let test_churn () =
  let spec = { Topology.n = 20; c = 8; k = 2 } in
  for seed = 1 to 3 do
    let values = Array.init spec.Topology.n (fun i -> (i * 11) + 2) in
    let rng = Rng.create seed in
    let assignment = Topology.generate Topology.Shared_plus_random rng spec in
    (* ~9% stationary down fraction, source spared so phase 1 can start. *)
    let faults =
      Faults.spare
        (Faults.bernoulli_churn ~seed:(Int64.of_int (seed * 77)) ~mean_up:100.
           ~mean_down:10.)
        ~node:0
    in
    let trace = Trace.create () in
    let res =
      Cogcomp_robust.run ~trace ~faults ~monoid:Aggregate.sum ~values ~source:0
        ~assignment ~k:spec.Topology.k ~rng ()
    in
    let ctx = Printf.sprintf "churn seed=%d" seed in
    check_int (ctx ^ " coverage+lost")
      spec.Topology.n
      (res.Cogcomp_robust.coverage + List.length res.Cogcomp_robust.lost);
    let expect =
      Array.to_list values
      |> List.mapi (fun i x -> (i, x))
      |> List.filter (fun (i, _) -> not (List.mem i res.Cogcomp_robust.lost))
      |> List.fold_left (fun acc (_, x) -> acc + x) 0
    in
    check_int (ctx ^ " root = sum of covered") expect
      res.Cogcomp_robust.root_value;
    (* Never double-counted, even across retries. *)
    (match Trace.Check.exactly_once_drain trace with
    | [] -> ()
    | v :: _ -> Alcotest.failf "%s: %a" ctx Trace.Check.pp_violation v);
    (match Trace.Check.one_winner trace with
    | [] -> ()
    | v :: _ -> Alcotest.failf "%s: %a" ctx Trace.Check.pp_violation v)
  done

(* --- crash/restart --------------------------------------------------------- *)

let test_crash_restart_recovers () =
  let spec = { Topology.n = 16; c = 6; k = 2 } in
  for seed = 1 to 3 do
    let values = Array.init spec.Topology.n (fun i -> i + 1) in
    let rng = Rng.create seed in
    let assignment = Topology.generate Topology.Shared_plus_random rng spec in
    (* Node 3 naps briefly in every phase (slot numbering restarts per
       phase); the gap detector must clear its transient state and the
       drain must still account for every value exactly once. *)
    let faults = Faults.crash_restart ~node:3 ~from_slot:4 ~down_for:6 in
    let trace = Trace.create () in
    let res =
      Cogcomp_robust.run ~trace ~faults ~monoid:Aggregate.sum ~values ~source:0
        ~assignment ~k:spec.Topology.k ~rng ()
    in
    let ctx = Printf.sprintf "crash-restart seed=%d" seed in
    check_int (ctx ^ " coverage+lost")
      spec.Topology.n
      (res.Cogcomp_robust.coverage + List.length res.Cogcomp_robust.lost);
    let expect =
      Array.to_list values
      |> List.mapi (fun i x -> (i, x))
      |> List.filter (fun (i, _) -> not (List.mem i res.Cogcomp_robust.lost))
      |> List.fold_left (fun acc (_, x) -> acc + x) 0
    in
    check_int (ctx ^ " root = sum of covered") expect
      res.Cogcomp_robust.root_value;
    (match Trace.Check.exactly_once_drain trace with
    | [] -> ()
    | v :: _ -> Alcotest.failf "%s: %a" ctx Trace.Check.pp_violation v)
  done

(* --- reactive jammer ------------------------------------------------------- *)

let test_reactive_jammer_terminates () =
  let spec = { Topology.n = 16; c = 8; k = 2 } in
  for seed = 1 to 2 do
    let values = Array.init spec.Topology.n (fun i -> i + 1) in
    let rng = Rng.create seed in
    let assignment = Topology.generate Topology.Shared_plus_random rng spec in
    let trace = Trace.create () in
    let res =
      Cogcomp_robust.run ~trace ~jammer:(Jammer.reactive ()) ~monoid:Aggregate.sum
        ~values ~source:0 ~assignment ~k:spec.Topology.k ~rng ()
    in
    let ctx = Printf.sprintf "reactive seed=%d" seed in
    check_int (ctx ^ " coverage+lost")
      spec.Topology.n
      (res.Cogcomp_robust.coverage + List.length res.Cogcomp_robust.lost);
    (match Trace.Check.exactly_once_drain trace with
    | [] -> ()
    | v :: _ -> Alcotest.failf "%s: %a" ctx Trace.Check.pp_violation v)
  done

(* --- degradation is graceful ----------------------------------------------- *)

let test_coverage_degrades_gracefully () =
  (* More faults should not somehow *increase* what survives by a large
     margin: with no faults coverage is n; with moderate churn it stays
     positive (the source is spared, so at minimum the source's own value
     is covered). *)
  let spec = { Topology.n = 20; c = 8; k = 2 } in
  let values = Array.init spec.Topology.n (fun i -> i + 1) in
  let run faults seed =
    let rng = Rng.create seed in
    let assignment = Topology.generate Topology.Shared_plus_random rng spec in
    Cogcomp_robust.run ?faults ~monoid:Aggregate.sum ~values ~source:0
      ~assignment ~k:spec.Topology.k ~rng ()
  in
  let clean = run None 1 in
  check_int "fault-free coverage" spec.Topology.n clean.Cogcomp_robust.coverage;
  let churned =
    run
      (Some
         (Faults.spare
            (Faults.bernoulli_churn ~seed:9L ~mean_up:50. ~mean_down:10.)
            ~node:0))
      1
  in
  Alcotest.(check bool)
    "churned coverage positive" true
    (churned.Cogcomp_robust.coverage >= 1);
  Alcotest.(check bool)
    "churned coverage bounded" true
    (churned.Cogcomp_robust.coverage <= spec.Topology.n)

let () =
  Alcotest.run "cogcomp_robust"
    [
      ( "parity",
        [
          Alcotest.test_case "fault-free results identical to plain" `Quick
            test_faultfree_parity;
          Alcotest.test_case "fault-free traces byte-identical" `Quick
            test_faultfree_trace_identical;
        ] );
      ( "faults",
        [
          Alcotest.test_case "single non-source crash" `Quick test_single_crash;
          Alcotest.test_case "bernoulli churn" `Quick test_churn;
          Alcotest.test_case "crash/restart recovers" `Quick
            test_crash_restart_recovers;
          Alcotest.test_case "reactive jammer terminates" `Quick
            test_reactive_jammer_terminates;
          Alcotest.test_case "graceful degradation" `Quick
            test_coverage_degrades_gracefully;
        ] );
    ]
