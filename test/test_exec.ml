(* Tests for the parallel trial runner: the determinism contract (same seed
   => identical results at any job count), index coverage, exception
   propagation and edge cases. *)

module Rng = Crn_prng.Rng
module Pool = Crn_exec.Pool
module Trials = Crn_exec.Trials

(* A trial body with enough state to expose stream mixups: a few draws per
   trial, combined asymmetrically. *)
let trial rng =
  let a = Rng.int rng 1_000_000 in
  let b = Rng.int rng 1_000_000 in
  let c = if Rng.bool rng then 1 else 0 in
  (a * 3) + b + c

let int_array = Alcotest.(array int)

(* --- determinism -------------------------------------------------------- *)

let test_seq_vs_parallel () =
  let reference = Trials.run_seq ~trials:101 ~seed:42 trial in
  List.iter
    (fun jobs ->
      let got = Trials.run_jobs ~jobs ~trials:101 ~seed:42 trial in
      Alcotest.check int_array (Printf.sprintf "jobs=%d" jobs) reference got)
    [ 1; 2; 4; 7 ]

let test_repeat_runs_identical () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let a = Trials.run ~pool ~trials:64 ~seed:7 trial in
      let b = Trials.run ~pool ~trials:64 ~seed:7 trial in
      Alcotest.check int_array "same pool, same seed" a b)

let test_seed_changes_results () =
  let a = Trials.run_seq ~trials:32 ~seed:1 trial in
  let b = Trials.run_seq ~trials:32 ~seed:2 trial in
  Alcotest.(check bool) "different seeds differ" true (a <> b)

let test_rngs_match_run_streams () =
  (* The exposed rng array is exactly what run feeds trial i. *)
  let rngs = Trials.rngs ~seed:9 ~trials:16 in
  let direct = Array.map (fun rng -> trial rng) rngs in
  let via_run = Trials.run_jobs ~jobs:3 ~trials:16 ~seed:9 trial in
  Alcotest.check int_array "rngs = run streams" direct via_run

(* --- coverage ----------------------------------------------------------- *)

let test_parallel_for_covers_all_indices () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n = 1000 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Pool.parallel_for pool ~n (fun i -> Atomic.incr hits.(i));
      Array.iteri
        (fun i a ->
          if Atomic.get a <> 1 then
            Alcotest.failf "index %d executed %d times" i (Atomic.get a))
        hits)

let test_parallel_for_chunk_one () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let n = 17 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Pool.parallel_for ~chunk:1 pool ~n (fun i -> Atomic.incr hits.(i));
      Alcotest.(check int) "every index once" n
        (Array.fold_left (fun acc a -> acc + Atomic.get a) 0 hits))

let test_pool_run_preserves_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let thunks = Array.init 25 (fun i () -> i * i) in
      let out = Pool.run pool thunks in
      Alcotest.check int_array "ordered results" (Array.init 25 (fun i -> i * i)) out)

(* --- exceptions --------------------------------------------------------- *)

exception Boom of int

let test_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let raised =
        try
          Pool.parallel_for pool ~n:100 (fun i -> if i = 57 then raise (Boom i));
          false
        with Boom 57 -> true
      in
      Alcotest.(check bool) "Boom reaches the caller" true raised;
      (* The pool survives a failed batch. *)
      let ok = ref 0 in
      Pool.parallel_for ~chunk:64 pool ~n:10 (fun _ -> incr ok);
      Alcotest.(check int) "pool usable after failure" 10 !ok)

let test_exception_propagates_sequential_pool () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.check_raises "raised inline" (Boom 3) (fun () ->
          Pool.parallel_for pool ~n:8 (fun i -> if i = 3 then raise (Boom i))))

let test_trials_exception () =
  let raised =
    try
      ignore
        (Trials.run_jobs ~jobs:4 ~trials:50 ~seed:0 (fun rng ->
             if Rng.int rng 10 >= 0 then raise (Boom 0) else 0));
      false
    with Boom 0 -> true
  in
  Alcotest.(check bool) "trial failure reaches caller" true raised

(* --- edges -------------------------------------------------------------- *)

let test_empty_trials () =
  Alcotest.check int_array "zero trials" [||]
    (Trials.run_jobs ~jobs:4 ~trials:0 ~seed:5 trial);
  Alcotest.check int_array "zero trials, seq" [||] (Trials.run_seq ~trials:0 ~seed:5 trial)

let test_negative_trials_rejected () =
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Trials.rngs: negative trials") (fun () ->
      ignore (Trials.run_jobs ~jobs:2 ~trials:(-1) ~seed:0 trial))

let test_jobs_clamped () =
  Alcotest.(check int) "0 clamps to 1" 1 (Pool.jobs (Pool.with_pool ~jobs:0 (fun t -> t)));
  Pool.with_pool ~jobs:3 (fun t -> Alcotest.(check int) "3 stays 3" 3 (Pool.jobs t))

let test_shutdown_idempotent () =
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* Degrades to sequential, still correct. *)
  let hits = ref 0 in
  Pool.parallel_for pool ~n:5 (fun _ -> incr hits);
  Alcotest.(check int) "post-shutdown sequential" 5 !hits

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least 1" true (Pool.default_jobs () >= 1)

let () =
  Alcotest.run "crn_exec"
    [
      ( "determinism",
        [
          Alcotest.test_case "sequential = parallel at any job count" `Quick
            test_seq_vs_parallel;
          Alcotest.test_case "repeat runs identical" `Quick test_repeat_runs_identical;
          Alcotest.test_case "seed changes results" `Quick test_seed_changes_results;
          Alcotest.test_case "rngs exposes run's streams" `Quick
            test_rngs_match_run_streams;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "parallel_for covers all indices" `Quick
            test_parallel_for_covers_all_indices;
          Alcotest.test_case "chunk=1" `Quick test_parallel_for_chunk_one;
          Alcotest.test_case "run preserves order" `Quick test_pool_run_preserves_order;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "worker exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "sequential pool raises inline" `Quick
            test_exception_propagates_sequential_pool;
          Alcotest.test_case "trial exception propagates" `Quick test_trials_exception;
        ] );
      ( "edges",
        [
          Alcotest.test_case "empty trials" `Quick test_empty_trials;
          Alcotest.test_case "negative trials rejected" `Quick
            test_negative_trials_rejected;
          Alcotest.test_case "jobs clamped" `Quick test_jobs_clamped;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
          Alcotest.test_case "default_jobs positive" `Quick test_default_jobs_positive;
        ] );
    ]
