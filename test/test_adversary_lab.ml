(* The adversary laboratory: the Theorem 18 jam_resist transformer, the
   dynamic-spectrum arming modes, and the uniformly-checked chaos trial.

   The two load-bearing contracts:
   - budget-0 transparency: wrapping a protocol with jam_resist must be
     byte-identical (traces included) to the plain protocol when no jammer
     is armed — property-tested with shrinking across every registry entry;
   - robustness: every registry protocol survives the composed reactive
     jammer + per-slot reshuffle adversary with zero invariant violations —
     adversaries may slow protocols down but never break the simulator. *)

module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Dynamic = Crn_channel.Dynamic
module Assignment = Crn_channel.Assignment
module Adversary = Crn_channel.Adversary
module Trace = Crn_radio.Trace
module Jammer = Crn_radio.Jammer
module Cogcast = Crn_core.Cogcast
module Protocol = Crn_proto.Protocol
module Registry = Crn_proto.Registry
module Jam_resist = Crn_proto.Jam_resist
module Adversary_lab = Crn_proto.Adversary_lab

(* A product generator with coordinate-wise shrinking, for the quad-shaped
   configurations the properties below range over. *)
let quad g1 g2 g3 g4 =
  {
    Prop.sample =
      (fun rng ->
        let a = g1.Prop.sample rng in
        let b = g2.Prop.sample rng in
        let c = g3.Prop.sample rng in
        let d = g4.Prop.sample rng in
        (a, b, c, d));
    shrink =
      (fun (a, b, c, d) ->
        Seq.append
          (Seq.map (fun a' -> (a', b, c, d)) (g1.Prop.shrink a))
          (Seq.append
             (Seq.map (fun b' -> (a, b', c, d)) (g2.Prop.shrink b))
             (Seq.append
                (Seq.map (fun c' -> (a, b, c', d)) (g3.Prop.shrink c))
                (Seq.map (fun d' -> (a, b, c, d')) (g4.Prop.shrink d)))));
    print =
      (fun (a, b, c, d) ->
        Printf.sprintf "(%s, %s, %s, %s)" (g1.Prop.print a) (g2.Prop.print b)
          (g3.Prop.print c) (g4.Prop.print d));
  }

(* ---- budget-0 transparency (Theorem 18, trivial case) ---- *)

let run_traced proto ~n ~c ~k ~seed =
  let spec = { Topology.n; c; k } in
  let rng = Rng.create seed in
  let assignment = Topology.generate Topology.Shared_plus_random rng spec in
  let tr = Trace.create () in
  let s =
    Protocol.run proto
      (Protocol.env ~trace:tr ~k ~availability:(Dynamic.static assignment) ~rng
         ())
  in
  (Trace.to_jsonl tr, s)

let test_budget0_byte_identity () =
  let num_protos = List.length Registry.all in
  Prop.check ~count:60 ~name:"jam_resist budget-0 transparency"
    (quad
       (Prop.int_range 0 (num_protos - 1))
       (Prop.int_range 4 24) (Prop.int_range 2 8) (Prop.int_range 1 1000))
    (fun (idx, n, c, seed) ->
      let k = 1 + ((n + seed) mod c) in
      let proto = List.nth Registry.all idx in
      let plain_trace, plain = run_traced proto ~n ~c ~k ~seed in
      let wrapped_trace, wrapped =
        run_traced (Jam_resist.wrap proto) ~n ~c ~k ~seed
      in
      if plain_trace <> wrapped_trace then
        Some
          (Printf.sprintf "%s: traces differ under budget-0 wrap"
             (Protocol.name proto))
      else if
        { wrapped with Protocol.protocol = plain.Protocol.protocol } <> plain
      then
        Some
          (Printf.sprintf "%s: summaries differ under budget-0 wrap"
             (Protocol.name proto))
      else if
        wrapped.Protocol.protocol
        <> Jam_resist.wrapped_name plain.Protocol.protocol
      then Some "wrapped summary does not carry the jam_resist: name"
      else None)

(* ---- the transform completes for every legal budget ---- *)

let test_jam_resist_completes_under_budget () =
  Prop.check ~count:50 ~name:"jam_resist:cogcast completes for all t < C/2"
    (quad (Prop.int_range 8 32) (Prop.int_range 5 14) (Prop.int_range 1 100)
       (Prop.int_range 1 1000))
    (fun (n, c, t_raw, seed) ->
      (* Everyone owns the whole spectrum (the §7 uniform model); any
         budget with 2t < C is legal. *)
      let t = 1 + (t_raw mod ((c - 1) / 2)) in
      let spec = { Topology.n; c; k = c } in
      let rng = Rng.create seed in
      let assignment = Topology.generate Topology.Identical rng spec in
      let jammer =
        Jammer.random_per_node ~seed:(Int64.of_int (seed * 31)) ~budget:t
          ~num_channels:c
      in
      let s =
        Protocol.run
          (Registry.find_exn "jam_resist:cogcast")
          (Protocol.env ~jammer ~k:c
             ~availability:(Dynamic.static assignment) ~rng ())
      in
      if not s.Protocol.completed then
        Some
          (Printf.sprintf "did not complete with n=%d c=%d t=%d (2t=%d < %d)"
             n c t (2 * t) c)
      else None)

let test_jam_resist_rejects_overbudget () =
  let n = 8 and c = 6 in
  let spec = { Topology.n; c; k = c } in
  let rng = Rng.create 7 in
  let assignment = Topology.generate Topology.Identical rng spec in
  let jammer =
    Jammer.random_per_node ~seed:3L ~budget:3 ~num_channels:c
  in
  match
    Protocol.run
      (Registry.find_exn "jam_resist:cogcast")
      (Protocol.env ~jammer ~k:c ~availability:(Dynamic.static assignment)
         ~rng ())
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted a jammer with 2t >= C (Theorem 18 precondition)"

(* ---- monotone degradation of the plain protocol (fixed seeds) ---- *)

let median_slots ~budget =
  let n = 32 and c = 12 in
  let spec = { Topology.n; c; k = c } in
  let samples =
    Array.init 31 (fun i ->
        let rng = Rng.create (1000 + i) in
        let assignment = Topology.generate Topology.Identical rng spec in
        let jammer =
          if budget = 0 then None
          else
            Some
              (Jammer.random_per_node
                 ~seed:(Int64.of_int (7 * i))
                 ~budget ~num_channels:c)
        in
        let s =
          Protocol.run (Registry.find_exn "cogcast")
            (Protocol.env ?jammer ~k:c
               ~availability:(Dynamic.static assignment) ~rng ())
        in
        float_of_int
          (match s.Protocol.completed_at with
          | Some v -> v
          | None -> s.Protocol.slots_run))
  in
  Crn_stats.Summary.median samples

let test_plain_degradation_monotone () =
  let m0 = median_slots ~budget:0 in
  let m2 = median_slots ~budget:2 in
  let m5 = median_slots ~budget:5 in
  if not (m0 <= m2 +. 0.5 && m2 <= m5 +. 0.5) then
    Alcotest.failf
      "plain cogcast medians not monotone in jammer budget: t=0 -> %.1f, t=2 \
       -> %.1f, t=5 -> %.1f"
      m0 m2 m5

(* ---- dynamic arming: per-slot overlap stays >= k ---- *)

let test_dynamic_overlap_invariant () =
  List.iter
    (fun topology ->
      List.iter
        (fun mode ->
          let spec = { Topology.n = 20; c = 8; k = 3 } in
          let armed =
            Adversary_lab.arm ~mode ~topology ~spec ~source:0
              ~rng:(Rng.create 42)
          in
          for slot = 0 to 40 do
            let a = Dynamic.at armed.Adversary_lab.availability slot in
            let overlap = Assignment.min_pairwise_overlap a in
            if overlap < spec.Topology.k then
              Alcotest.failf "%s/%s: slot %d overlap %d < k=%d"
                (Topology.kind_name topology)
                (Adversary_lab.mode_name mode)
                slot overlap spec.Topology.k
          done)
        [ Adversary_lab.Rotating; Adversary_lab.Reshuffle ])
    [ Topology.Shared_core; Topology.Shared_plus_random; Topology.Clustered ]

(* Reshuffle must actually reshuffle: some early slot differs from slot 0. *)
let test_reshuffle_changes_assignment () =
  let spec = { Topology.n = 16; c = 6; k = 2 } in
  let armed =
    Adversary_lab.arm ~mode:Adversary_lab.Reshuffle
      ~topology:Topology.Shared_core ~spec ~source:0 ~rng:(Rng.create 9)
  in
  let row slot node =
    let a = Dynamic.at armed.Adversary_lab.availability slot in
    List.init 6 (fun label -> Assignment.global_of_local a ~node ~label)
  in
  let changed = ref false in
  for slot = 1 to 10 do
    for node = 0 to 15 do
      if row slot node <> row 0 node then changed := true
    done
  done;
  if not !changed then
    Alcotest.fail "reshuffle mode never changed any node's channel row"

(* ---- Theorem 17 / §7 footnote 1: the oracle must be right ---- *)

let test_isolation_needs_the_right_oracle () =
  let n = 16 and c = 8 and k = 3 in
  let spec = { Topology.n; c; k } in
  let horizon = 2_000 in
  let leaked = 2025 and secret = 31337 in
  let adversary victim_seed =
    let availability =
      Adversary.isolate_source ~spec ~source:0
        ~predict_source_label:(Cogcast.label_oracle ~seed:leaked ~n ~c ~node:0)
    in
    Cogcast.run ~source:0 ~availability ~rng:(Rng.create victim_seed)
      ~max_slots:horizon ()
  in
  (* Right oracle: the victim replays the leaked stream and stays isolated. *)
  let isolated = adversary leaked in
  if isolated.Cogcast.completed_at <> None then
    Alcotest.fail "leaked-seed COGCAST escaped the Theorem 17 adversary";
  if isolated.Cogcast.informed_count <> 1 then
    Alcotest.failf "leaked-seed run informed %d nodes; the source must stay alone"
      isolated.Cogcast.informed_count;
  (* Wrong oracle (footnote 1): a secret seed makes the predictor useless. *)
  let escaped = adversary secret in
  if escaped.Cogcast.completed_at = None then
    Alcotest.fail
      "secret-seed COGCAST failed to escape an adversary with the wrong oracle"

(* The CLI-facing arming path leaks the trial's own seed by construction. *)
let test_arm_isolate_isolates () =
  let spec = { Topology.n = 16; c = 8; k = 3 } in
  let armed =
    Adversary_lab.arm ~mode:Adversary_lab.Isolate
      ~topology:Topology.Shared_core ~spec ~source:0 ~rng:(Rng.create 123)
  in
  let r =
    Cogcast.run ~source:0 ~availability:armed.Adversary_lab.availability
      ~rng:armed.Adversary_lab.rng ~max_slots:500 ()
  in
  if r.Cogcast.informed_count <> 1 then
    Alcotest.failf "isolate arming informed %d nodes; expected source only"
      r.Cogcast.informed_count

(* ---- the whole registry under the composed adversary ---- *)

let test_all_protocols_survive_composed_adversary () =
  let spec = { Topology.n = 16; c = 6; k = 2 } in
  List.iter
    (fun proto ->
      let t =
        Adversary_lab.run_trial proto (fun ~trace ->
            let rng = Rng.create 77 in
            let armed =
              Adversary_lab.arm ~mode:Adversary_lab.Reshuffle
                ~topology:Topology.Shared_core ~spec ~source:0 ~rng
            in
            let jammer = Jammer.reactive () in
            Trace.record trace
              (Trace.Adversary
                 { name = Jammer.name jammer; budget = Jammer.budget jammer });
            Protocol.env ~jammer ~trace ~k:spec.Topology.k
              ~availability:
                (Adversary_lab.instrument ~trace
                   armed.Adversary_lab.availability)
              ~rng:armed.Adversary_lab.rng ())
      in
      if t.Adversary_lab.violations <> [] then
        Alcotest.failf "%s: %d invariant violation(s) under reactive+reshuffle"
          (Protocol.name proto)
          (List.length t.Adversary_lab.violations);
      if t.Adversary_lab.summary.Protocol.slots_run <= 0 then
        Alcotest.failf "%s: ran no slots under reactive+reshuffle"
          (Protocol.name proto))
    Registry.all

(* run_trial must surface what its checker reports, and dump the trace. *)
let test_run_trial_surfaces_violations () =
  let spec = { Topology.n = 8; c = 4; k = 2 } in
  let fake _trace =
    [ { Trace.Check.invariant = "fake"; detail = "injected" } ]
  in
  let t =
    Adversary_lab.run_trial ~checker:fake (Registry.find_exn "cogcast")
      (fun ~trace ->
        let rng = Rng.create 5 in
        let assignment = Topology.generate Topology.Shared_core rng spec in
        Protocol.env ~trace ~k:spec.Topology.k
          ~availability:(Dynamic.static assignment) ~rng ())
  in
  (match t.Adversary_lab.violations with
  | [ { Trace.Check.invariant = "fake"; _ } ] -> ()
  | v -> Alcotest.failf "expected the injected violation, got %d" (List.length v));
  match t.Adversary_lab.trace_jsonl with
  | Some jsonl when String.length jsonl > 0 -> ()
  | _ -> Alcotest.fail "violating trial did not dump its trace"

(* ---- the chaos CLI's --check exit code, end to end ---- *)

(* Healthy sweeps exit 0; any violating trial must flip --check to a
   nonzero exit. Violations cannot occur in a healthy build, so the
   binary's CRN_CHAOS_INJECT_VIOLATION selftest hook injects one. *)
let test_chaos_check_exit_code () =
  (* cwd is _build/default/test under `dune runtest` (the declared dep
     guarantees the binary), the workspace root under `dune exec`. *)
  let exe =
    List.map
      (fun rel -> Filename.concat (Sys.getcwd ()) rel)
      [ "../bin/crn_sim.exe"; "_build/default/bin/crn_sim.exe" ]
    |> List.find_opt Sys.file_exists
  in
  match exe with
  | None -> Alcotest.fail "crn_sim.exe not found next to the test run"
  | Some exe -> begin
    let tmp = Filename.temp_file "crn_chaos" "" in
    Sys.remove tmp;
    Sys.mkdir tmp 0o755;
    let run env =
      Sys.command
        (Printf.sprintf
           "cd %s && %s %s chaos -n 12 -c 6 -k 2 --fault-kind jam --dynamic \
            reshuffle --rates 0,0.5 --trials 3 --protocols cogcast --check \
            >/dev/null 2>&1"
           (Filename.quote tmp) env (Filename.quote exe))
    in
    let clean = run "" in
    let injected = run "CRN_CHAOS_INJECT_VIOLATION=1" in
    let dumped = Sys.readdir tmp in
    Array.iter (fun f -> Sys.remove (Filename.concat tmp f)) dumped;
    Sys.rmdir tmp;
    Alcotest.(check int) "clean chaos --check exits 0" 0 clean;
    if injected = 0 then
      Alcotest.fail "chaos --check exited 0 despite per-trial violations";
    if
      not
        (Array.exists
           (fun f -> String.length f >= 13 && String.sub f 0 13 = "trace_failure")
           dumped)
    then Alcotest.fail "violating trials did not dump trace_failure_*.jsonl"
  end

(* ---- registry resolution of the jam_resist: prefix ---- *)

let test_registry_resolves_prefix () =
  (match Registry.find "jam_resist:cogcast" with
  | Some p ->
      Alcotest.(check string)
        "wrapped name" "jam_resist:cogcast" (Protocol.name p)
  | None -> Alcotest.fail "jam_resist:cogcast not found");
  (match Registry.find "JAM-RESIST:COGCAST" with
  | Some _ -> ()
  | None -> Alcotest.fail "prefix lookup is not case/sep-insensitive");
  (match Registry.find "jam_resist:nonexistent" with
  | Some _ -> Alcotest.fail "wrapped a protocol that does not exist"
  | None -> ());
  match Registry.find "jam_resist:jam_resist:cogcast" with
  | Some _ -> Alcotest.fail "double wrapping must not resolve"
  | None -> ()

let () =
  Alcotest.run "adversary_lab"
    [
      ( "jam_resist",
        [
          Alcotest.test_case "budget-0 byte identity" `Quick
            test_budget0_byte_identity;
          Alcotest.test_case "completes for all legal budgets" `Quick
            test_jam_resist_completes_under_budget;
          Alcotest.test_case "rejects 2t >= C" `Quick
            test_jam_resist_rejects_overbudget;
          Alcotest.test_case "plain degradation monotone" `Quick
            test_plain_degradation_monotone;
          Alcotest.test_case "registry resolves prefix" `Quick
            test_registry_resolves_prefix;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "per-slot overlap >= k" `Quick
            test_dynamic_overlap_invariant;
          Alcotest.test_case "reshuffle reshuffles" `Quick
            test_reshuffle_changes_assignment;
          Alcotest.test_case "isolation needs the right oracle" `Quick
            test_isolation_needs_the_right_oracle;
          Alcotest.test_case "arm isolate isolates" `Quick
            test_arm_isolate_isolates;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "registry survives reactive+reshuffle" `Quick
            test_all_protocols_survive_composed_adversary;
          Alcotest.test_case "run_trial surfaces violations" `Quick
            test_run_trial_surfaces_violations;
          Alcotest.test_case "chaos --check exit code" `Quick
            test_chaos_check_exit_code;
        ] );
    ]
