(* Trace-driven regression tests: run COGCAST and COGCOMP (engine-backed and
   raw-radio-emulated) at several (n, c, k) points with tracing on, and
   require every Trace.Check invariant to hold on the recorded stream. A
   mutation test corrupts a healthy trace and requires the checker to fire,
   so the invariants are known to be non-vacuous.

   When an invariant check fails, the offending trace is written to
   trace_failure_<name>.jsonl next to the test binary so CI can upload it
   as an artifact. *)

module Rng = Crn_prng.Rng
module Trace = Crn_radio.Trace
module Topology = Crn_channel.Topology
module Cogcast = Crn_core.Cogcast
module Cogcomp = Crn_core.Cogcomp
module Aggregate = Crn_core.Aggregate

let seed = Prop.env_seed ()

let sanitize name =
  String.map (fun ch -> match ch with 'a' .. 'z' | '0' .. '9' -> ch | _ -> '_')
    (String.lowercase_ascii name)

(* Require a clean bill from every checker; dump the trace for post-mortem
   (and CI artifact upload) before failing. *)
let assert_clean ~name tr =
  match Trace.Check.all tr with
  | [] -> ()
  | violations ->
      let path = Printf.sprintf "trace_failure_%s.jsonl" (sanitize name) in
      Trace.write_jsonl ~path tr;
      Alcotest.failf "%s: %d invariant violation(s), trace dumped to %s; first: %s"
        name (List.length violations) path
        (Format.asprintf "%a" Trace.Check.pp_violation (List.hd violations))

let points = [ (5, 3, 1); (16, 8, 2); (24, 10, 3); (64, 16, 4) ]

(* --- COGCAST ------------------------------------------------------------ *)

let test_cogcast_invariants () =
  List.iteri
    (fun i (n, c, k) ->
      List.iter
        (fun kind ->
          let rng = Rng.create (seed + i) in
          let assignment = Topology.generate kind rng { Topology.n; c; k } in
          let tr = Trace.create () in
          let r = Cogcast.run_static ~trace:tr ~source:0 ~assignment ~k ~rng () in
          let name =
            Printf.sprintf "cogcast %s n=%d c=%d k=%d" (Topology.kind_name kind) n c k
          in
          assert_clean ~name tr;
          (* The trace's tree edges must agree with the result. *)
          let informs =
            Trace.fold
              (fun acc ev -> match ev with Trace.Informed _ -> acc + 1 | _ -> acc)
              0 tr
          in
          Alcotest.(check int)
            (name ^ ": informed events")
            (r.Cogcast.informed_count - 1)
            informs)
        [ Topology.Shared_core; Topology.Shared_plus_random ])
    points

let test_cogcast_emulated_invariants () =
  List.iteri
    (fun i (n, c, k) ->
      let rng = Rng.create (seed + 100 + i) in
      let assignment =
        Topology.generate Topology.Shared_plus_random rng { Topology.n; c; k }
      in
      let availability = Crn_channel.Dynamic.static assignment in
      let tr = Trace.create () in
      let max_slots = Crn_core.Complexity.cogcast_slots ~n ~c ~k () in
      let _r, _outcome =
        Cogcast.run_emulated ~trace:tr ~source:0 ~availability ~rng ~max_slots ()
      in
      let name = Printf.sprintf "cogcast emulated n=%d c=%d k=%d" n c k in
      assert_clean ~name tr;
      (* The emulation must have recorded contention sessions. *)
      let sessions =
        Trace.fold
          (fun acc ev -> match ev with Trace.Session _ -> acc + 1 | _ -> acc)
          0 tr
      in
      if sessions = 0 then Alcotest.failf "%s: no Session events recorded" name)
    points

(* --- COGCOMP ------------------------------------------------------------ *)

let run_cogcomp ~emulated ~n ~c ~k ~rng tr =
  let assignment =
    Topology.generate Topology.Shared_plus_random rng { Topology.n; c; k }
  in
  let values = Array.init n (fun v -> v + 1) in
  if emulated then
    fst
      (Cogcomp.run_emulated ~trace:tr ~monoid:Aggregate.sum ~values ~source:0
         ~assignment ~k ~rng ())
  else
    Cogcomp.run ~trace:tr ~monoid:Aggregate.sum ~values ~source:0 ~assignment ~k ~rng
      ()

let test_cogcomp_invariants () =
  List.iteri
    (fun i (n, c, k) ->
      let rng = Rng.create (seed + 200 + i) in
      let tr = Trace.create () in
      let r = run_cogcomp ~emulated:false ~n ~c ~k ~rng tr in
      let name = Printf.sprintf "cogcomp n=%d c=%d k=%d" n c k in
      Alcotest.(check bool) (name ^ ": complete") true r.Cogcomp.complete;
      Alcotest.(check (option int))
        (name ^ ": sum")
        (Some (n * (n + 1) / 2))
        r.Cogcomp.root_value;
      assert_clean ~name tr;
      (* Phase markers present and in protocol order. *)
      let phases =
        List.rev
          (Trace.fold
             (fun acc ev ->
               match ev with Trace.Phase { name } -> name :: acc | _ -> acc)
             [] tr)
      in
      Alcotest.(check (list string))
        (name ^ ": phase markers")
        [ "cogcast"; "cogcomp-phase2"; "cogcomp-phase3"; "cogcomp-phase4"; "cogcomp-done" ]
        phases;
      (* Mediators recorded in the trace match the result. *)
      let meds =
        List.rev
          (Trace.fold
             (fun acc ev -> match ev with Trace.Mediator { node } -> node :: acc | _ -> acc)
             [] tr)
      in
      Alcotest.(check (list int)) (name ^ ": mediators") r.Cogcomp.mediators meds)
    points

let test_cogcomp_emulated_invariants () =
  (* Emulated COGCOMP is expensive; one moderate point suffices — every
     phase still crosses the raw-radio path. *)
  let n, c, k = (16, 8, 2) in
  let rng = Rng.create (seed + 300) in
  let tr = Trace.create () in
  let r = run_cogcomp ~emulated:true ~n ~c ~k ~rng tr in
  let name = Printf.sprintf "cogcomp emulated n=%d c=%d k=%d" n c k in
  Alcotest.(check bool) (name ^ ": complete") true r.Cogcomp.complete;
  assert_clean ~name tr

(* --- mutation: the checkers must fire on corrupted traces --------------- *)

let healthy_trace () =
  let rng = Rng.create (seed + 400) in
  let assignment =
    Topology.generate Topology.Shared_plus_random rng { Topology.n = 16; c = 8; k = 2 }
  in
  let tr = Trace.create () in
  ignore (Cogcast.run_static ~trace:tr ~source:0 ~assignment ~k:2 ~rng ());
  tr

let test_mutation_one_winner () =
  let tr = healthy_trace () in
  assert_clean ~name:"mutation baseline" tr;
  (* Duplicate the first Win with a different winner: two winners on one
     channel in one slot must trip the one-winner checker. *)
  let events = Trace.to_list tr in
  let mutated =
    List.concat_map
      (fun ev ->
        match ev with
        | Trace.Win { slot; channel; winner; contenders } ->
            [ ev; Trace.Win { slot; channel; winner = winner + 1; contenders } ]
        | _ -> [ ev ])
      events
  in
  if List.length mutated = List.length events then
    Alcotest.fail "healthy trace had no Win event to corrupt";
  let violations = Trace.Check.one_winner (Trace.of_list mutated) in
  if violations = [] then
    Alcotest.fail "one-winner checker accepted a trace with duplicated winners"

let test_mutation_informed_tree () =
  let tr = healthy_trace () in
  (* Point one tree edge at a node that was never informed before it: the
     informer-precedes-informee checker must fire. *)
  let events = Trace.to_list tr in
  let nodes_informed =
    List.filter_map
      (function Trace.Informed { node; _ } -> Some node | _ -> None)
      events
  in
  let never_parent =
    (* A node informed last cannot legitimately be anyone's parent earlier. *)
    List.nth nodes_informed (List.length nodes_informed - 1)
  in
  let corrupted = ref false in
  let mutated =
    List.map
      (fun ev ->
        match ev with
        | Trace.Informed { slot; node; label; _ }
          when (not !corrupted) && node <> never_parent ->
            corrupted := true;
            Trace.Informed { slot; node; parent = never_parent; label }
        | _ -> ev)
      events
  in
  if not !corrupted then Alcotest.fail "no Informed event to corrupt";
  let violations = Trace.Check.informed_tree (Trace.of_list mutated) in
  if violations = [] then
    Alcotest.fail "informed-tree checker accepted a forward-in-time parent edge"

let test_mutation_phase4 () =
  let rng = Rng.create (seed + 500) in
  let tr = Trace.create () in
  ignore (run_cogcomp ~emulated:false ~n:16 ~c:8 ~k:2 ~rng tr);
  assert_clean ~name:"mutation phase4 baseline" tr;
  (* Drop one Value_delivered: a complete run missing a delivery violates
     payload conservation. *)
  let dropped = ref false in
  let mutated =
    List.filter
      (fun ev ->
        match ev with
        | Trace.Value_delivered _ when not !dropped ->
            dropped := true;
            false
        | _ -> true)
      (Trace.to_list tr)
  in
  if not !dropped then Alcotest.fail "no Value_delivered event to drop";
  let violations = Trace.Check.phase4_drain (Trace.of_list mutated) in
  if violations = [] then
    Alcotest.fail "phase4-drain checker accepted a lost value on a complete run"

let healthy_cogcomp_trace () =
  let rng = Rng.create (seed + 900) in
  let tr = Trace.create () in
  ignore (run_cogcomp ~emulated:false ~n:16 ~c:8 ~k:2 ~rng tr);
  tr

let test_mutation_exactly_once () =
  let tr = healthy_cogcomp_trace () in
  assert_clean ~name:"mutation exactly-once baseline" tr;
  (* Replay one Value_delivered three slots later — what a receiver without
     sender-id dedup would record when folding a retry twice. The
     exactly-once checker must fire even though both events are backed by
     an earlier matching send. *)
  let dup = ref false in
  let events =
    List.concat_map
      (fun ev ->
        match ev with
        | Trace.Value_delivered { slot; sender; receiver; r } when not !dup ->
            dup := true;
            [ ev; Trace.Value_delivered { slot = slot + 3; sender; receiver; r } ]
        | _ -> [ ev ])
      (Trace.to_list tr)
  in
  if not !dup then Alcotest.fail "no Value_delivered event to duplicate";
  if Trace.Check.exactly_once_drain (Trace.of_list events) = [] then
    Alcotest.fail "exactly-once checker accepted a double-counted value"

let test_phase4_down_relaxation () =
  let tr = healthy_cogcomp_trace () in
  (* Defer one delivery by a slot — a late ack. On a fault-free trace the
     strict same-step send/delivery matching must reject it... *)
  let shifted = ref false in
  let events =
    List.map
      (fun ev ->
        match ev with
        | Trace.Value_delivered { slot; sender; receiver; r } when not !shifted ->
            shifted := true;
            Trace.Value_delivered { slot = slot + 1; sender; receiver; r }
        | _ -> ev)
      (Trace.to_list tr)
  in
  if not !shifted then Alcotest.fail "no Value_delivered event to defer";
  if Trace.Check.phase4_drain (Trace.of_list events) = [] then
    Alcotest.fail "strict phase4-drain accepted a late ack on a fault-free trace";
  (* ...but a single Down event marks the trace faulty, and the same late
     ack becomes legitimate: a node that missed its echo slot acks late. *)
  let faulty = Trace.Down { slot = 0; node = 1 } :: events in
  (match Trace.Check.phase4_drain (Trace.of_list faulty) with
  | [] -> ()
  | viol :: _ ->
      Alcotest.failf "down-aware phase4-drain rejected a legitimate late ack: %s"
        (Format.asprintf "%a" Trace.Check.pp_violation viol));
  (* The relaxed matcher is not vacuous: a delivery naming a cluster its
     sender never sent still fires on the faulty trace. *)
  let bogus = ref false in
  let corrupt =
    List.map
      (fun ev ->
        match ev with
        | Trace.Value_delivered { slot; sender; receiver; r } when not !bogus ->
            bogus := true;
            Trace.Value_delivered { slot; sender; receiver; r = r + 1000 }
        | _ -> ev)
      faulty
  in
  if Trace.Check.phase4_drain (Trace.of_list corrupt) = [] then
    Alcotest.fail
      "down-aware phase4-drain accepted a delivery with no matching send"

(* --- JSONL round-trip --------------------------------------------------- *)

let test_jsonl_roundtrip () =
  let rng = Rng.create (seed + 600) in
  let tr = Trace.create () in
  ignore (run_cogcomp ~emulated:false ~n:16 ~c:8 ~k:2 ~rng tr);
  match Trace.of_jsonl (Trace.to_jsonl tr) with
  | Error msg -> Alcotest.failf "of_jsonl rejected its own output: %s" msg
  | Ok tr' ->
      Alcotest.(check int) "length" (Trace.length tr) (Trace.length tr');
      if Trace.to_list tr <> Trace.to_list tr' then
        Alcotest.fail "round-tripped events differ";
      (* And the invariants hold on the decoded side too. *)
      assert_clean ~name:"jsonl roundtrip" tr'

(* The adversary-laboratory provenance events (recorded by the arming
   layer, never by engines) must survive the wire format too. *)
let test_jsonl_roundtrip_adversary_events () =
  let tr = Trace.create () in
  Trace.record tr (Trace.Adversary { name = "reactive"; budget = 1 });
  Trace.record tr (Trace.Reassigned { slot = 3; nodes_changed = 7 });
  Trace.record tr (Trace.Adversary { name = "dynamic:reshuffle"; budget = 0 });
  match Trace.of_jsonl (Trace.to_jsonl tr) with
  | Error msg -> Alcotest.failf "of_jsonl rejected adversary events: %s" msg
  | Ok tr' ->
      if Trace.to_list tr <> Trace.to_list tr' then
        Alcotest.fail "round-tripped adversary events differ";
      (* Checkers must treat the new events as inert provenance. *)
      assert_clean ~name:"adversary events" tr'

let test_jsonl_rejects_garbage () =
  (match Trace.of_jsonl "{\"ev\":\"win\",\"slot\":0}\n" with
  | Ok _ -> Alcotest.fail "accepted a win event with missing fields"
  | Error _ -> ());
  match Trace.of_jsonl "not json\n" with
  | Ok _ -> Alcotest.fail "accepted a non-JSON line"
  | Error _ -> ()

(* --- zero-cost-when-disabled -------------------------------------------- *)

let test_counters_unchanged_by_tracing () =
  (* The same seeded run with and without a trace attached must produce
     identical results and counters (tracing observes, never perturbs). *)
  let go trace =
    let rng = Rng.create (seed + 700) in
    let assignment =
      Topology.generate Topology.Shared_plus_random rng
        { Topology.n = 32; c = 12; k = 3 }
    in
    Cogcast.run_static ?trace ~source:0 ~assignment ~k:3 ~rng ()
  in
  let plain = go None in
  let traced = go (Some (Trace.create ())) in
  Alcotest.(check int) "slots_run" plain.Cogcast.slots_run traced.Cogcast.slots_run;
  Alcotest.(check int)
    "wins"
    plain.Cogcast.counters.Trace.Counters.wins
    traced.Cogcast.counters.Trace.Counters.wins;
  Alcotest.(check int)
    "deliveries"
    plain.Cogcast.counters.Trace.Counters.deliveries
    traced.Cogcast.counters.Trace.Counters.deliveries

(* --- metrics registry ---------------------------------------------------- *)

let test_metrics_from_trace () =
  let rng = Rng.create (seed + 800) in
  let tr = Trace.create () in
  let r = run_cogcomp ~emulated:false ~n:16 ~c:8 ~k:2 ~rng tr in
  let module Reg = Crn_radio.Metrics.Registry in
  let reg = Reg.create () in
  Reg.observe_trace reg tr;
  Alcotest.(check int)
    "slots counter = protocol total"
    r.Cogcomp.total_slots
    (Reg.value (Reg.counter reg "slots"));
  Alcotest.(check int)
    "informs = n-1"
    15
    (Reg.value (Reg.counter reg "informs"));
  let wins = Reg.value (Reg.counter reg "wins") in
  if wins <= 0 then Alcotest.fail "no wins counted";
  if Reg.samples (Reg.histogram reg "win_contenders") <> wins then
    Alcotest.fail "win_contenders histogram disagrees with wins counter";
  (* Export shape: counters and histograms objects are present. *)
  let json = Reg.to_json reg in
  (match Crn_stats.Json.member "counters" json with
  | Some (Crn_stats.Json.Obj _) -> ()
  | _ -> Alcotest.fail "metrics JSON lacks counters object");
  match Crn_stats.Json.member "histograms" json with
  | Some (Crn_stats.Json.Obj _) -> ()
  | _ -> Alcotest.fail "metrics JSON lacks histograms object"

let () =
  Alcotest.run "trace"
    [
      ( "cogcast",
        [
          Alcotest.test_case "invariants hold" `Quick test_cogcast_invariants;
          Alcotest.test_case "emulated invariants hold" `Quick
            test_cogcast_emulated_invariants;
        ] );
      ( "cogcomp",
        [
          Alcotest.test_case "invariants hold" `Quick test_cogcomp_invariants;
          Alcotest.test_case "emulated invariants hold" `Slow
            test_cogcomp_emulated_invariants;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "one-winner fires" `Quick test_mutation_one_winner;
          Alcotest.test_case "informed-tree fires" `Quick test_mutation_informed_tree;
          Alcotest.test_case "phase4-drain fires" `Quick test_mutation_phase4;
          Alcotest.test_case "exactly-once fires" `Quick test_mutation_exactly_once;
          Alcotest.test_case "down-aware relaxation" `Quick test_phase4_down_relaxation;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "adversary events round-trip" `Quick
            test_jsonl_roundtrip_adversary_events;
          Alcotest.test_case "rejects garbage" `Quick test_jsonl_rejects_garbage;
        ] );
      ( "observability",
        [
          Alcotest.test_case "tracing does not perturb" `Quick
            test_counters_unchanged_by_tracing;
          Alcotest.test_case "metrics derived from trace" `Quick
            test_metrics_from_trace;
        ] );
    ]
