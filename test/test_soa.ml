(* Differential tests for the struct-of-arrays engine.

   Three claims, property-tested over randomized scenarios (topology
   shape, dynamic availability, jammers, faults, early stops — all
   derived from one seed, n up to 256):

   1. Traced equivalence: a traced {!Soa.run} is observationally
      identical to a traced {!Engine.run} driving the same adversarial
      digest protocol — same outcome, counters, metrics, per-node
      feedback digests, and byte-equal JSONL traces.

   2. Shard invariance: the untraced fast path produces identical
      digests/counters/metrics at shards 1, 2 and 8, with the dense and
      the forced-sparse (dense_channel_limit = 0) counting strategies,
      all matching the classic engine.

   3. Protocol equivalence: {!Cogcast_soa.run} is byte-equal to
      {!Cogcast.run} — traces, distribution tree, completion slot — and
      shard-invariant. *)

module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Dynamic = Crn_channel.Dynamic
module Engine = Crn_radio.Engine
module Soa = Crn_radio.Soa
module Action = Crn_radio.Action
module Trace = Crn_radio.Trace
module Metrics = Crn_radio.Metrics
module Jammer = Crn_radio.Jammer
module Faults = Crn_radio.Faults
module Cogcast = Crn_core.Cogcast
module Cogcast_soa = Crn_core.Cogcast_soa

(* ------------------------------------------------------------------ *)
(* The adversarial digest protocol of test_determinism.ml, in both node
   shapes: every node draws a label and a broadcast/listen coin from its
   own stream each slot and folds every feedback into an order-sensitive
   digest. The two shapes must consume randomness identically and
   classify outcomes identically for the digests to agree. *)

let mix d x = (d * 1000003) lxor x

let engine_nodes ~seed ~n ~c ~digests =
  let node_rngs = Rng.split_n (Rng.create seed) n in
  Array.init n (fun i ->
      Engine.node ~id:i
        ~decide:(fun ~slot:_ ->
          let label = Rng.int node_rngs.(i) c in
          if Rng.bool node_rngs.(i) then Action.broadcast ~label ((i * 7919) + label)
          else Action.listen ~label)
        ~feedback:(fun ~slot fb ->
          let d = mix digests.(i) slot in
          digests.(i) <-
            (match fb with
            | Action.Heard { sender; msg } -> mix (mix (mix d 1) sender) msg
            | Action.Silence -> mix d 2
            | Action.Won -> mix d 3
            | Action.Lost { winner; msg } -> mix (mix (mix d 4) winner) msg
            | Action.Jammed -> mix d 5
            | Action.No_winner -> mix d 6)))

let soa_protocol ~seed ~n ~c ~digests =
  let node_rngs = Rng.split_n (Rng.create seed) n in
  let decide t ~slot:_ ~lo ~hi =
    for i = lo to hi - 1 do
      if not (Soa.is_down t i) then begin
        let label = Rng.int node_rngs.(i) c in
        if Rng.bool node_rngs.(i) then
          Soa.set_broadcast t i ~label ~msg:((i * 7919) + label)
        else Soa.set_listen t i ~label
      end
    done
  in
  let feedback t ~slot ~lo ~hi =
    for i = lo to hi - 1 do
      let d = mix digests.(i) slot in
      if Soa.heard t i then
        digests.(i) <- mix (mix (mix d 1) (Soa.sender t i)) (Soa.message t i)
      else if Soa.silent t i then digests.(i) <- mix d 2
      else if Soa.won t i then digests.(i) <- mix d 3
      else if Soa.lost t i then
        digests.(i) <- mix (mix (mix d 4) (Soa.sender t i)) (Soa.message t i)
      else if Soa.was_jammed t i then digests.(i) <- mix d 5
    done
  in
  { Soa.parallel = true; decide; feedback }

(* ------------------------------------------------------------------ *)
(* Randomized scenarios, the test_determinism recipe widened to n <= 256.
   Reactive jammers are stateful, so each run builds a fresh one. *)

type scenario = {
  n : int;
  c : int;
  availability : Dynamic.t;
  jammer : unit -> Jammer.t;
  faults : Faults.t;
  stop_at : int option;
  max_slots : int;
}

let scenario seed =
  let rng = Rng.create (77_000 + seed) in
  let n = 2 + Rng.int rng 255 in
  let c = 2 + Rng.int rng 8 in
  let k = 1 + Rng.int rng (min 3 c) in
  let spec = { Topology.n; c; k } in
  let kind =
    match seed mod 3 with
    | 0 -> Topology.Shared_core
    | 1 -> Topology.Shared_plus_random
    | _ -> Topology.Clustered
  in
  let assignment = Topology.generate kind rng spec in
  let availability =
    if seed mod 5 = 0 then Dynamic.rotating assignment else Dynamic.static assignment
  in
  let num_channels = Crn_channel.Assignment.num_channels assignment in
  let jammer () =
    match seed mod 4 with
    | 0 ->
        Jammer.random_per_node
          ~seed:(Int64.of_int (seed * 77))
          ~budget:1 ~num_channels
    | 1 -> Jammer.reactive ()
    | _ -> Jammer.none
  in
  let faults =
    if seed mod 2 = 0 then
      Faults.random_naps ~seed:(Int64.of_int (seed * 131)) ~rate:0.15
    else Faults.none
  in
  let stop_at = if seed mod 6 = 0 then Some (5 + (seed mod 7)) else None in
  { n; c; availability; jammer; faults; stop_at; max_slots = 30 }

type output = {
  out_slots : int;
  out_stopped : bool;
  out_counters : int list;
  out_trace : string;
  out_metrics : int list;
  out_digests : int array;
}

let counters_fields (c : Trace.Counters.t) =
  [
    c.Trace.Counters.slots_run;
    c.Trace.Counters.broadcasts;
    c.Trace.Counters.wins;
    c.Trace.Counters.contended;
    c.Trace.Counters.deliveries;
    c.Trace.Counters.jammed_actions;
  ]

let metrics_fields (m : Metrics.t) =
  Array.to_list m.Metrics.transmissions
  @ Array.to_list m.Metrics.receptions
  @ Array.to_list m.Metrics.awake_slots
  @ Array.to_list m.Metrics.jammed

let run_engine sc ~seed ~traced =
  let digests = Array.make sc.n 0 in
  let nodes = engine_nodes ~seed ~n:sc.n ~c:sc.c ~digests in
  let tr = if traced then Some (Trace.create ()) else None in
  let m = Metrics.create sc.n in
  let stop = Option.map (fun at -> fun ~slot -> slot >= at) sc.stop_at in
  let outcome =
    Engine.run ?stop ?trace:tr ~jammer:(sc.jammer ()) ~faults:sc.faults
      ~metrics:m ~availability:sc.availability
      ~rng:(Rng.create (seed * 17))
      ~nodes ~max_slots:sc.max_slots ()
  in
  {
    out_slots = outcome.Engine.slots_run;
    out_stopped = outcome.Engine.stopped_early;
    out_counters = counters_fields outcome.Engine.counters;
    out_trace = (match tr with Some tr -> Trace.to_jsonl tr | None -> "");
    out_metrics = metrics_fields m;
    out_digests = digests;
  }

let run_soa sc ~seed ~traced ~shards ~dense_channel_limit =
  let digests = Array.make sc.n 0 in
  let protocol = soa_protocol ~seed ~n:sc.n ~c:sc.c ~digests in
  let tr = if traced then Some (Trace.create ()) else None in
  let m = Metrics.create sc.n in
  let stop = Option.map (fun at -> fun ~slot -> slot >= at) sc.stop_at in
  let outcome =
    Soa.run ?stop ?trace:tr ~shards ~dense_channel_limit ~jammer:(sc.jammer ())
      ~faults:sc.faults ~metrics:m ~availability:sc.availability
      ~rng:(Rng.create (seed * 17))
      ~protocol ~max_slots:sc.max_slots ()
  in
  {
    out_slots = outcome.Soa.slots_run;
    out_stopped = outcome.Soa.stopped_early;
    out_counters = counters_fields outcome.Soa.counters;
    out_trace = (match tr with Some tr -> Trace.to_jsonl tr | None -> "");
    out_metrics = metrics_fields m;
    out_digests = digests;
  }

let diff label a b =
  if a.out_slots <> b.out_slots then
    Some (Printf.sprintf "%s: slots_run %d <> %d" label a.out_slots b.out_slots)
  else if a.out_stopped <> b.out_stopped then
    Some (label ^ ": stopped_early differs")
  else if a.out_counters <> b.out_counters then Some (label ^ ": counters differ")
  else if a.out_metrics <> b.out_metrics then Some (label ^ ": metrics differ")
  else if a.out_digests <> b.out_digests then
    Some (label ^ ": feedback digests differ")
  else if a.out_trace <> b.out_trace then Some (label ^ ": trace bytes differ")
  else None

(* Claim 1: traced SoA = traced engine, byte for byte. *)
let prop_traced_equivalence seed =
  let sc = scenario seed in
  let engine = run_engine sc ~seed ~traced:true in
  let soa = run_soa sc ~seed ~traced:true ~shards:1 ~dense_channel_limit:4096 in
  diff "traced" engine soa

(* Claim 2: the fast path matches the engine at every shard count and
   with both counting strategies. *)
let prop_shard_invariance seed =
  let sc = scenario seed in
  let engine = run_engine sc ~seed ~traced:false in
  let variants =
    [
      ("shards=1 dense", 1, 4096);
      ("shards=2 dense", 2, 4096);
      ("shards=8 dense", 8, 4096);
      ("shards=1 sparse", 1, 0);
      ("shards=8 sparse", 8, 0);
    ]
  in
  List.fold_left
    (fun acc (label, shards, dense_channel_limit) ->
      match acc with
      | Some _ -> acc
      | None ->
          diff label engine (run_soa sc ~seed ~traced:false ~shards ~dense_channel_limit))
    None variants

(* Claim 3: Cogcast_soa = Cogcast — traces, tree, completion — and the
   untraced fast path reproduces the same tree at shards 1/2/8. *)

let cogcast_classic ~seed ~n ~c ~k =
  let rng = Rng.create seed in
  let assignment = Topology.shared_core rng { Topology.n; c; k } in
  let tr = Trace.create () in
  let r =
    Cogcast.run ~trace:tr ~source:0
      ~availability:(Dynamic.static assignment)
      ~rng ~max_slots:400 ()
  in
  (r, Trace.to_jsonl tr)

let cogcast_soa ~seed ~n ~c ~k ~traced ~shards =
  let rng = Rng.create seed in
  let assignment = Topology.shared_core rng { Topology.n; c; k } in
  let tr = if traced then Some (Trace.create ()) else None in
  let r =
    Cogcast_soa.run ?trace:tr ~shards ~source:0
      ~availability:(Dynamic.static assignment)
      ~rng ~max_slots:400 ()
  in
  (r, match tr with Some tr -> Trace.to_jsonl tr | None -> "")

let tree_fields (r : Cogcast.result) =
  ( r.Cogcast.completed_at,
    r.Cogcast.slots_run,
    r.Cogcast.informed_count,
    Array.to_list r.Cogcast.parent,
    Array.to_list r.Cogcast.informed_at,
    Array.to_list r.Cogcast.informed_label,
    counters_fields r.Cogcast.counters )

let prop_cogcast_equivalence seed =
  let n = 2 + (seed mod 120) and c = 6 and k = 2 in
  let classic, classic_trace = cogcast_classic ~seed ~n ~c ~k in
  let soa, soa_trace = cogcast_soa ~seed ~n ~c ~k ~traced:true ~shards:1 in
  if classic_trace <> soa_trace then Some "cogcast traces differ"
  else if tree_fields classic <> tree_fields soa then
    Some "cogcast results differ"
  else
    List.fold_left
      (fun acc shards ->
        match acc with
        | Some _ -> acc
        | None ->
            let fast, _ = cogcast_soa ~seed ~n ~c ~k ~traced:false ~shards in
            if tree_fields classic <> tree_fields fast then
              Some (Printf.sprintf "cogcast diverges at shards=%d" shards)
            else None)
      None [ 1; 2; 8 ]

(* Claim 4 — the universal-backend audit: every of_machine registry entry
   produces a byte-equal summary on the soa backend at shards {1, 2, 8},
   with both occupancy strategies (dense and forced-sparse), and a
   byte-equal trace through the sequential twin — all against the same
   entry on the classic engine backend. Scenarios randomize dims,
   topology and a nap schedule; each run gets a fresh rng from the same
   seed, so any divergence is the backend's. *)

module Runner = Crn_radio.Runner

let prop_registry_machines seed =
  let scenario_rng = Rng.create (311_000 + seed) in
  let n = 2 + Rng.int scenario_rng 62 in
  let c = 2 + Rng.int scenario_rng 7 in
  let k = 1 + Rng.int scenario_rng (min 3 c) in
  let kind =
    match seed mod 3 with
    | 0 -> Topology.Shared_core
    | 1 -> Topology.Shared_plus_random
    | _ -> Topology.Clustered
  in
  let assignment = Topology.generate kind scenario_rng { Topology.n; c; k } in
  let faults =
    if seed mod 2 = 0 then
      Some (Faults.random_naps ~seed:(Int64.of_int (seed * 131)) ~rate:0.1)
    else None
  in
  let run name ~backend ~shards ~traced =
    let proto = Option.get (Crn_proto.Registry.find name) in
    let tr = if traced then Some (Trace.create ()) else None in
    let env =
      Crn_proto.Protocol.env ?faults ?trace:tr ~backend ~shards ~k
        ~availability:(Dynamic.static assignment)
        ~rng:(Rng.create (seed * 17))
        ()
    in
    let s = Crn_proto.Protocol.run proto env in
    ( Crn_stats.Json.to_string (Crn_proto.Protocol.summary_json s),
      match tr with Some tr -> Trace.to_jsonl tr | None -> "" )
  in
  let soa dense_channel_limit = Runner.Soa { shards = 1; dense_channel_limit } in
  let variants =
    [
      ("shards=1 dense", 1, soa None);
      ("shards=2 dense", 2, soa None);
      ("shards=8 dense", 8, soa None);
      ("shards=2 sparse", 2, soa (Some 0));
      ("shards=8 sparse", 8, soa (Some 0));
    ]
  in
  List.fold_left
    (fun acc name ->
      match acc with
      | Some _ -> acc
      | None -> (
          let engine_summary, _ =
            run name ~backend:Runner.Engine ~shards:1 ~traced:false
          in
          let fast_mismatch =
            List.fold_left
              (fun acc (label, shards, backend) ->
                match acc with
                | Some _ -> acc
                | None ->
                    let s, _ = run name ~backend ~shards ~traced:false in
                    if s <> engine_summary then
                      Some (Printf.sprintf "%s: soa %s summary differs" name label)
                    else None)
              None variants
          in
          match fast_mismatch with
          | Some _ as m -> m
          | None ->
              let es, et =
                run name ~backend:Runner.Engine ~shards:1 ~traced:true
              in
              let ss, st = run name ~backend:(soa None) ~shards:2 ~traced:true in
              if et <> st then Some (name ^ ": traced soa trace differs")
              else if es <> ss then Some (name ^ ": traced soa summary differs")
              else None))
    None
    (Crn_proto.Registry.machine_names ())

(* Rejection contract: shards > 1 on a backend that cannot shard must
   raise, never be silently ignored. *)
let test_shards_rejected () =
  let rng = Rng.create 7 in
  let assignment = Topology.shared_core rng { Topology.n = 16; c = 4; k = 2 } in
  let availability = Dynamic.static assignment in
  let raises name backend =
    let env =
      Crn_proto.Protocol.env ~backend ~shards:2 ~availability
        ~rng:(Rng.create 7) ()
    in
    match Crn_proto.Protocol.run (Crn_proto.Registry.find_exn name) env with
    | exception Invalid_argument _ -> ()
    | _ ->
        Alcotest.failf "%s accepted shards=2 on the %s backend" name
          (Runner.backend_name backend)
  in
  List.iter
    (fun name -> raises name Runner.Engine)
    (Crn_proto.Registry.machine_names ());
  raises "cogcast" Runner.Engine;
  raises "cogcomp" Runner.Engine;
  raises "cogcast_soa"
    (Runner.Soa { shards = 3; dense_channel_limit = None });
  (* ...while the soa backend honors the same request. *)
  let env =
    Crn_proto.Protocol.env
      ~backend:(Runner.Soa { shards = 1; dense_channel_limit = None })
      ~shards:2 ~availability ~rng:(Rng.create 7) ()
  in
  let s =
    Crn_proto.Protocol.run (Crn_proto.Registry.find_exn "seq_scan") env
  in
  Alcotest.(check bool) "seq_scan completes on soa shards=2" true
    (s.Crn_proto.Protocol.completed)

let seed_gen = Prop.int_range 1 100_000

let test_traced () =
  Prop.check ~count:40 ~name:"soa traced = engine traced" seed_gen
    prop_traced_equivalence

let test_shards () =
  Prop.check ~count:30 ~name:"soa fast path shard/strategy invariant" seed_gen
    prop_shard_invariance

let test_registry_machines () =
  Prop.check ~count:12 ~name:"registry machines: soa = engine" seed_gen
    prop_registry_machines

let test_cogcast () =
  Prop.check ~count:25 ~name:"cogcast_soa = cogcast" seed_gen
    prop_cogcast_equivalence

(* The registry entry behind --shards: same summary as classic cogcast. *)
let test_registry_entry () =
  let module Protocol = Crn_proto.Protocol in
  let module Registry = Crn_proto.Registry in
  let summary name shards =
    let rng = Rng.create 99 in
    let assignment = Topology.shared_core rng { Topology.n = 64; c = 8; k = 2 } in
    let env =
      Protocol.env ~shards ~availability:(Dynamic.static assignment) ~rng ()
    in
    let s = Protocol.run (Option.get (Registry.find name)) env in
    (s.Protocol.slots_run, s.Protocol.completed_at, s.Protocol.coverage)
  in
  let classic = summary "cogcast" 1 in
  List.iter
    (fun shards ->
      Alcotest.(check bool)
        (Printf.sprintf "registry cogcast_soa shards=%d = cogcast" shards)
        true
        (summary "cogcast_soa" shards = classic))
    [ 1; 2; 8 ]

let () =
  Alcotest.run "soa"
    [
      ( "differential",
        [
          Alcotest.test_case "traced twin byte-equal to engine" `Quick test_traced;
          Alcotest.test_case "fast path shard & strategy invariant" `Quick
            test_shards;
        ] );
      ( "registry audit",
        [
          Alcotest.test_case "every of_machine entry: soa = engine" `Quick
            test_registry_machines;
          Alcotest.test_case "shards > 1 rejected off the soa backend" `Quick
            test_shards_rejected;
        ] );
      ( "cogcast",
        [
          Alcotest.test_case "cogcast_soa equals cogcast" `Quick test_cogcast;
          Alcotest.test_case "registry entry honors env.shards" `Quick
            test_registry_entry;
        ] );
    ]
