(* Tests for the radio simulators: the one-winner contention engine, jammers,
   the raw collision radio and the decay backoff sublayer. *)

module Rng = Crn_prng.Rng
module Assignment = Crn_channel.Assignment
module Dynamic = Crn_channel.Dynamic
module Action = Crn_radio.Action
module Engine = Crn_radio.Engine
module Jammer = Crn_radio.Jammer
module Raw_radio = Crn_radio.Raw_radio
module Backoff = Crn_radio.Backoff
module Csma = Crn_radio.Csma
module Jamming_reduction = Crn_radio.Jamming_reduction

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Everyone shares a single channel: the simplest contention arena. *)
let one_channel n =
  Dynamic.static
    (Assignment.create ~num_channels:1 ~local_to_global:(Array.make n [| 0 |]))

(* Scripted node: fixed decision every slot; collects feedback. *)
let scripted ~id ~decision log =
  Engine.node ~id
    ~decide:(fun ~slot:_ -> decision)
    ~feedback:(fun ~slot:_ fb -> log := fb :: !log)

let test_single_broadcaster_delivers () =
  let log0 = ref [] and log1 = ref [] and log2 = ref [] in
  let nodes =
    [|
      scripted ~id:0 ~decision:(Action.broadcast ~label:0 "hello") log0;
      scripted ~id:1 ~decision:(Action.listen ~label:0) log1;
      scripted ~id:2 ~decision:(Action.listen ~label:0) log2;
    |]
  in
  let outcome =
    Engine.run ~availability:(one_channel 3) ~rng:(Rng.create 1) ~nodes ~max_slots:1 ()
  in
  check_int "one slot" 1 outcome.Engine.slots_run;
  (match !log0 with
  | [ Action.Won ] -> ()
  | _ -> Alcotest.fail "broadcaster should have Won");
  List.iter
    (fun log ->
      match !log with
      | [ Action.Heard { sender = 0; msg = "hello" } ] -> ()
      | _ -> Alcotest.fail "listener should hear the message")
    [ log1; log2 ]

let test_contention_one_winner () =
  (* Two broadcasters: exactly one Won, the other Lost and received the
     winner's message; the listener heard the winner. *)
  let log0 = ref [] and log1 = ref [] and log2 = ref [] in
  let nodes =
    [|
      scripted ~id:0 ~decision:(Action.broadcast ~label:0 "a") log0;
      scripted ~id:1 ~decision:(Action.broadcast ~label:0 "b") log1;
      scripted ~id:2 ~decision:(Action.listen ~label:0) log2;
    |]
  in
  let outcome =
    Engine.run ~availability:(one_channel 3) ~rng:(Rng.create 2) ~nodes ~max_slots:1 ()
  in
  let winner, loser_msg =
    match (!log0, !log1) with
    | [ Action.Won ], [ Action.Lost { winner; msg } ] ->
        check_int "loser learns winner id" 0 winner;
        (0, msg)
    | [ Action.Lost { winner; msg } ], [ Action.Won ] ->
        check_int "loser learns winner id" 1 winner;
        (1, msg)
    | _ -> Alcotest.fail "expected exactly one winner"
  in
  let expected_msg = if winner = 0 then "a" else "b" in
  Alcotest.(check string) "loser receives winner's message" expected_msg loser_msg;
  (match !log2 with
  | [ Action.Heard { sender; msg } ] ->
      check_int "listener heard winner" winner sender;
      Alcotest.(check string) "right message" expected_msg msg
  | _ -> Alcotest.fail "listener should hear");
  check_int "trace contended" 1 outcome.Engine.counters.Crn_radio.Trace.Counters.contended

let test_winner_uniform () =
  (* Over many slots, each of two contenders should win about half. *)
  let wins = Array.make 2 0 in
  let decide _v ~slot:_ = Action.broadcast ~label:0 () in
  let feedback v ~slot:_ = function
    | Action.Won -> wins.(v) <- wins.(v) + 1
    | Action.Lost _ | Action.Heard _ | Action.Silence | Action.Jammed
    | Action.No_winner ->
        ()
  in
  let nodes =
    Array.init 2 (fun v -> Engine.node ~id:v ~decide:(decide v) ~feedback:(feedback v))
  in
  let slots = 4000 in
  ignore
    (Engine.run ~availability:(one_channel 2) ~rng:(Rng.create 3) ~nodes
       ~max_slots:slots ());
  let frac = float_of_int wins.(0) /. float_of_int slots in
  check "wins split evenly" true (frac > 0.45 && frac < 0.55)

let test_silence () =
  let log = ref [] in
  let nodes = [| scripted ~id:0 ~decision:(Action.listen ~label:0) log |] in
  ignore
    (Engine.run ~availability:(one_channel 1) ~rng:(Rng.create 4) ~nodes ~max_slots:3 ());
  check_int "three feedbacks" 3 (List.length !log);
  check "all Silence" true (List.for_all (fun fb -> fb = Action.Silence) !log)

let test_different_channels_isolated () =
  (* Broadcaster on channel 0, listener on channel 1: hears nothing. *)
  let a =
    Assignment.create ~num_channels:2 ~local_to_global:[| [| 0; 1 |]; [| 0; 1 |] |]
  in
  let log = ref [] in
  let nodes =
    [|
      scripted ~id:0 ~decision:(Action.broadcast ~label:0 ()) (ref []);
      scripted ~id:1 ~decision:(Action.listen ~label:1) log;
    |]
  in
  ignore
    (Engine.run ~availability:(Dynamic.static a) ~rng:(Rng.create 5) ~nodes ~max_slots:1 ());
  check "silence on other channel" true (!log = [ Action.Silence ])

let test_label_validation () =
  let nodes = [| scripted ~id:0 ~decision:(Action.listen ~label:7) (ref []) |] in
  check "out-of-range label rejected" true
    (try
       ignore
         (Engine.run ~availability:(one_channel 1) ~rng:(Rng.create 6) ~nodes
            ~max_slots:1 ());
       false
     with Invalid_argument _ -> true)

let test_id_validation () =
  let nodes = [| scripted ~id:5 ~decision:(Action.listen ~label:0) (ref []) |] in
  Alcotest.check_raises "id mismatch" (Invalid_argument "Engine.run: node id mismatch")
    (fun () ->
      ignore
        (Engine.run ~availability:(one_channel 1) ~rng:(Rng.create 6) ~nodes
           ~max_slots:1 ()))

let test_stop_callback () =
  let nodes = [| scripted ~id:0 ~decision:(Action.listen ~label:0) (ref []) |] in
  let outcome =
    Engine.run
      ~stop:(fun ~slot -> slot = 4)
      ~availability:(one_channel 1) ~rng:(Rng.create 7) ~nodes ~max_slots:100 ()
  in
  check_int "stopped after slot index 4" 5 outcome.Engine.slots_run;
  check "flagged early" true outcome.Engine.stopped_early

(* --- Jammer ------------------------------------------------------------- *)

let test_jammer_none () =
  check "none jams nothing" false (Jammer.jams Jammer.none ~slot:0 ~node:0 ~channel:0)

let test_jammer_budget_respected () =
  let j = Jammer.random_per_node ~seed:9L ~budget:3 ~num_channels:10 in
  for slot = 0 to 20 do
    for node = 0 to 4 do
      let jammed =
        Crn_channel.Bitset.cardinal (Jammer.jammed_set j ~slot ~node ~num_channels:10)
      in
      check_int "exactly budget channels jammed" 3 jammed
    done
  done

let test_jammer_deterministic () =
  let j1 = Jammer.random_per_node ~seed:9L ~budget:3 ~num_channels:10 in
  let j2 = Jammer.random_per_node ~seed:9L ~budget:3 ~num_channels:10 in
  for slot = 0 to 10 do
    for node = 0 to 3 do
      for channel = 0 to 9 do
        check "same seed same decisions" true
          (Jammer.jams j1 ~slot ~node ~channel = Jammer.jams j2 ~slot ~node ~channel)
      done
    done
  done

let test_jammer_global_uniform_across_nodes () =
  let j = Jammer.random_global ~seed:5L ~budget:2 ~num_channels:8 in
  for slot = 0 to 10 do
    for channel = 0 to 7 do
      check "same decision for all nodes" true
        (Jammer.jams j ~slot ~node:0 ~channel = Jammer.jams j ~slot ~node:3 ~channel)
    done
  done

let test_sweep_jammer () =
  let j = Jammer.sweep ~budget:2 ~num_channels:6 in
  (* Slot 0 jams channels 0,1; slot 1 jams 2,3; slot 2 jams 4,5; slot 3 wraps. *)
  check "slot0 ch0" true (Jammer.jams j ~slot:0 ~node:0 ~channel:0);
  check "slot0 ch2" false (Jammer.jams j ~slot:0 ~node:0 ~channel:2);
  check "slot1 ch2" true (Jammer.jams j ~slot:1 ~node:0 ~channel:2);
  check "slot3 wraps to ch0" true (Jammer.jams j ~slot:3 ~node:0 ~channel:0)

let test_engine_jamming_absorbs () =
  (* Everything jammed: all actions absorbed; everyone gets Jammed. *)
  let j = Jammer.targeted_low ~budget:1 in
  let log0 = ref [] and log1 = ref [] in
  let nodes =
    [|
      scripted ~id:0 ~decision:(Action.broadcast ~label:0 ()) log0;
      scripted ~id:1 ~decision:(Action.listen ~label:0) log1;
    |]
  in
  let outcome =
    Engine.run ~jammer:j ~availability:(one_channel 2) ~rng:(Rng.create 8) ~nodes
      ~max_slots:2 ()
  in
  check "broadcaster jammed" true (List.for_all (( = ) Action.Jammed) !log0);
  check "listener jammed" true (List.for_all (( = ) Action.Jammed) !log1);
  check_int "trace jammed actions" 4 outcome.Engine.counters.Crn_radio.Trace.Counters.jammed_actions

(* --- Raw radio ----------------------------------------------------------- *)

let raw_scripted ~id ~decision log =
  Raw_radio.node ~id
    ~decide:(fun ~round:_ -> decision)
    ~hear:(fun ~round:_ r -> log := r :: !log)

let test_raw_single_tx () =
  let log = ref [] in
  let nodes =
    [|
      raw_scripted ~id:0 ~decision:(Action.broadcast ~label:0 "m") (ref []);
      raw_scripted ~id:1 ~decision:(Action.listen ~label:0) log;
    |]
  in
  ignore (Raw_radio.run ~availability:(one_channel 2) ~nodes ~max_rounds:1 ());
  match !log with
  | [ Raw_radio.Message { sender = 0; msg = "m" } ] -> ()
  | _ -> Alcotest.fail "expected delivery"

let test_raw_collision_destroys () =
  let log = ref [] in
  let nodes =
    [|
      raw_scripted ~id:0 ~decision:(Action.broadcast ~label:0 "a") (ref []);
      raw_scripted ~id:1 ~decision:(Action.broadcast ~label:0 "b") (ref []);
      raw_scripted ~id:2 ~decision:(Action.listen ~label:0) log;
    |]
  in
  ignore (Raw_radio.run ~availability:(one_channel 3) ~nodes ~max_rounds:1 ());
  check "collision heard as Quiet without CD" true (!log = [ Raw_radio.Quiet ])

let test_raw_collision_detection () =
  let log = ref [] in
  let nodes =
    [|
      raw_scripted ~id:0 ~decision:(Action.broadcast ~label:0 "a") (ref []);
      raw_scripted ~id:1 ~decision:(Action.broadcast ~label:0 "b") (ref []);
      raw_scripted ~id:2 ~decision:(Action.listen ~label:0) log;
    |]
  in
  ignore
    (Raw_radio.run ~collision_detection:true ~availability:(one_channel 3) ~nodes
       ~max_rounds:1 ());
  check "collision heard as Noise with CD" true (!log = [ Raw_radio.Noise ])

let test_raw_transmitter_hears_quiet () =
  let log = ref [] in
  let nodes = [| raw_scripted ~id:0 ~decision:(Action.broadcast ~label:0 "x") log |] in
  ignore (Raw_radio.run ~availability:(one_channel 1) ~nodes ~max_rounds:1 ());
  check "tx cannot hear own message" true (!log = [ Raw_radio.Quiet ])

(* --- Backoff -------------------------------------------------------------- *)

let test_backoff_single () =
  match Backoff.session ~rng:(Rng.create 1) ~contenders:1 ~cap:10 with
  | Some { Backoff.winner = 0; rounds = 1 } -> ()
  | _ -> Alcotest.fail "single contender wins immediately"

let test_backoff_succeeds () =
  let rng = Rng.create 2 in
  for m = 2 to 64 do
    let cap = Backoff.expected_rounds_bound m * 4 in
    match Backoff.session ~rng ~contenders:m ~cap with
    | Some { Backoff.winner; rounds } ->
        check "winner in range" true (winner >= 0 && winner < m);
        check "rounds positive" true (rounds >= 1 && rounds <= cap)
    | None -> Alcotest.failf "session with %d contenders failed within %d rounds" m cap
  done

let test_backoff_mean_within_bound () =
  (* Mean session length should sit well within the O(log² n) budget. *)
  let rng = Rng.create 3 in
  let m = 100 in
  let trials = 200 in
  let total = ref 0 in
  for _ = 1 to trials do
    match Backoff.session ~rng ~contenders:m ~cap:10_000 with
    | Some { Backoff.rounds; _ } -> total := !total + rounds
    | None -> Alcotest.fail "session failed with generous cap"
  done;
  let mean = float_of_int !total /. float_of_int trials in
  check "mean within bound" true
    (mean <= float_of_int (Backoff.expected_rounds_bound m))

let test_backoff_on_raw_radio_agrees () =
  (* The end-to-end raw-radio variant must also succeed and name a valid
     winner. *)
  let rng = Rng.create 4 in
  for m = 2 to 20 do
    let cap = Backoff.expected_rounds_bound m * 8 in
    match Backoff.session_on_raw_radio ~rng ~contenders:m ~cap with
    | Some { Backoff.winner; rounds } ->
        check "winner in range" true (winner >= 0 && winner < m);
        check "positive rounds" true (rounds >= 1)
    | None -> Alcotest.failf "raw-radio session with %d contenders failed" m
  done

(* The 4·(⌈lg n⌉+1)² budget, pinned. The epoch length clamps to >= 2 exactly
   once, so n = 1 and n = 2 share the same 16-round budget and the values
   below cannot regress without the bound itself changing. *)
let test_expected_rounds_bound_pinned () =
  check_int "n=1" 16 (Backoff.expected_rounds_bound 1);
  check_int "n=2" 16 (Backoff.expected_rounds_bound 2);
  check_int "n=3" 36 (Backoff.expected_rounds_bound 3);
  check_int "n=1024" 484 (Backoff.expected_rounds_bound 1024)

(* --- Direct-vs-raw-radio differential property ---------------------------- *)

(* Each contention realization ships two implementations: a direct
   single-channel simulation and the end-to-end run through Raw_radio. They
   must agree exactly — same outcome, same winner, same rounds — and consume
   the shared RNG identically, which we probe by comparing one extra draw
   from each stream after the sessions end. *)

type session_case = { contenders : int; case_seed : int }

let session_case_gen =
  let m_gen = Prop.int_range 1 64 and seed_gen = Prop.int_range 0 9_999 in
  {
    Prop.sample =
      (fun rng ->
        let contenders = m_gen.Prop.sample rng in
        let case_seed = seed_gen.Prop.sample rng in
        { contenders; case_seed });
    shrink =
      (fun t ->
        Seq.append
          (Seq.map
             (fun contenders -> { t with contenders })
             (m_gen.Prop.shrink t.contenders))
          (Seq.map
             (fun case_seed -> { t with case_seed })
             (seed_gen.Prop.shrink t.case_seed)));
    print =
      (fun t ->
        Printf.sprintf "{ contenders = %d; seed = %d }" t.contenders t.case_seed);
  }

let sessions_agree ~direct ~raw ~cap t =
  let seed = (t.case_seed * 2) + 1 in
  let rng_d = Rng.create seed and rng_r = Rng.create seed in
  let a = direct ~rng:rng_d ~contenders:t.contenders ~cap in
  let b = raw ~rng:rng_r ~contenders:t.contenders ~cap in
  let streams_aligned () = Rng.int rng_d 1_000_000 = Rng.int rng_r 1_000_000 in
  match (a, b) with
  | None, None ->
      if streams_aligned () then None
      else Some "rng streams diverged after capped sessions"
  | Some ra, Some rb ->
      if ra.Backoff.winner <> rb.Backoff.winner then
        Some
          (Printf.sprintf "winners differ: direct %d, raw %d" ra.Backoff.winner
             rb.Backoff.winner)
      else if ra.Backoff.rounds <> rb.Backoff.rounds then
        Some
          (Printf.sprintf "rounds differ: direct %d, raw %d" ra.Backoff.rounds
             rb.Backoff.rounds)
      else if not (streams_aligned ()) then
        Some "rng streams diverged after agreeing sessions"
      else None
  | Some _, None -> Some "direct session succeeded, raw-radio twin failed"
  | None, Some _ -> Some "raw-radio twin succeeded, direct session failed"

let test_backoff_direct_vs_raw_property () =
  let direct ~rng ~contenders ~cap = Backoff.session ~rng ~contenders ~cap in
  let raw ~rng ~contenders ~cap =
    Backoff.session_on_raw_radio ~rng ~contenders ~cap
  in
  Prop.check ~count:300 ~name:"backoff: direct = raw radio" session_case_gen
    (fun t ->
      sessions_agree ~direct ~raw
        ~cap:(Backoff.expected_rounds_bound t.contenders * 4)
        t);
  (* Cap exhaustion: with a starvation cap the two paths must fail (or
     scrape through) together and leave the streams aligned either way. *)
  Prop.check ~count:300 ~name:"backoff: direct = raw radio (cap 3)"
    session_case_gen
    (fun t -> sessions_agree ~direct ~raw ~cap:3 t)

let test_csma_direct_vs_raw_property () =
  let direct ~rng ~contenders ~cap = Csma.session ~rng ~contenders ~cap () in
  let raw ~rng ~contenders ~cap =
    Csma.session_on_raw_radio ~rng ~contenders ~cap ()
  in
  Prop.check ~count:300 ~name:"csma: direct = raw radio" session_case_gen
    (fun t ->
      sessions_agree ~direct ~raw
        ~cap:(Backoff.expected_rounds_bound t.contenders * 8)
        t);
  Prop.check ~count:300 ~name:"csma: direct = raw radio (cap 3)"
    session_case_gen
    (fun t -> sessions_agree ~direct ~raw ~cap:3 t)

(* --- CSMA/CA units --------------------------------------------------------- *)

let test_csma_single () =
  match Csma.session ~rng:(Rng.create 1) ~contenders:1 ~cap:10 () with
  | Some { Csma.winner = 0; rounds = 1 } -> ()
  | _ -> Alcotest.fail "single contender wins immediately"

let test_csma_succeeds () =
  let rng = Rng.create 2 in
  for m = 2 to 32 do
    let cap = 5_000 in
    match Csma.session ~rng ~contenders:m ~cap () with
    | Some { Csma.winner; rounds } ->
        check "winner in range" true (winner >= 0 && winner < m);
        (* The ACK round is counted, so a multi-contender win takes >= 2. *)
        check "rounds include the ACK round" true (rounds >= 2 && rounds <= cap)
    | None -> Alcotest.failf "CSMA session with %d contenders failed" m
  done

let test_csma_all_drop_out () =
  (* cw_cap 1 pins every backoff draw to the same window, so the contenders
     collide in lockstep forever; after attempt_limit failures they all drop
     out and the session must fail cleanly rather than loop. *)
  match
    Csma.session ~attempt_limit:2 ~cw_cap:1 ~rng:(Rng.create 3) ~contenders:4
      ~cap:50 ()
  with
  | None -> ()
  | Some _ -> Alcotest.fail "lockstep colliders cannot elect a winner"

let test_csma_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "contenders < 1 rejected" true
    (raises (fun () -> Csma.session ~rng:(Rng.create 1) ~contenders:0 ~cap:10 ()));
  check "cap < 1 rejected" true
    (raises (fun () -> Csma.session ~rng:(Rng.create 1) ~contenders:2 ~cap:0 ()));
  check "attempt_limit < 1 rejected" true
    (raises (fun () ->
         Csma.session ~attempt_limit:0 ~rng:(Rng.create 1) ~contenders:2 ~cap:10 ()));
  check "cw_cap < 1 rejected" true
    (raises (fun () ->
         Csma.session ~cw_cap:0 ~rng:(Rng.create 1) ~contenders:2 ~cap:10 ()));
  check "raw variant validates too" true
    (raises (fun () ->
         Csma.session_on_raw_radio ~rng:(Rng.create 1) ~contenders:0 ~cap:10 ()))

(* --- Faults ----------------------------------------------------------------- *)

module Faults = Crn_radio.Faults

let test_faults_none () =
  check "none never down" false (Faults.down Faults.none ~slot:3 ~node:1)

let test_faults_crash () =
  let f = Faults.crash ~node:2 ~from_slot:5 in
  check "up before" false (Faults.down f ~slot:4 ~node:2);
  check "down at" true (Faults.down f ~slot:5 ~node:2);
  check "down after" true (Faults.down f ~slot:99 ~node:2);
  check "others unaffected" false (Faults.down f ~slot:99 ~node:1)

let test_faults_random_rate () =
  let f = Faults.random_naps ~seed:7L ~rate:0.25 in
  let downs = ref 0 in
  let total = 40_000 in
  for slot = 0 to 199 do
    for node = 0 to 199 do
      if Faults.down f ~slot ~node then incr downs
    done
  done;
  let frac = float_of_int !downs /. float_of_int total in
  check "empirical rate near 0.25" true (frac > 0.23 && frac < 0.27);
  (* Deterministic given the seed. *)
  let f2 = Faults.random_naps ~seed:7L ~rate:0.25 in
  check "deterministic" true
    (Faults.down f ~slot:17 ~node:3 = Faults.down f2 ~slot:17 ~node:3)

let test_faults_periodic () =
  let f = Faults.periodic_nap ~period:10 ~nap:3 ~offset_stride:1 in
  (* Node 0 sleeps slots 0,1,2 of each period. *)
  check "asleep" true (Faults.down f ~slot:0 ~node:0);
  check "asleep" true (Faults.down f ~slot:12 ~node:0);
  check "awake" false (Faults.down f ~slot:5 ~node:0);
  (* Node 1 is shifted by one. *)
  check "staggered" true (Faults.down f ~slot:9 ~node:1)

let test_faults_spare_and_union () =
  let f =
    Faults.spare (Faults.union (Faults.crash ~node:0 ~from_slot:0)
                    (Faults.crash ~node:1 ~from_slot:0))
      ~node:0
  in
  check "spared" false (Faults.down f ~slot:3 ~node:0);
  check "still down" true (Faults.down f ~slot:3 ~node:1)

let test_engine_down_node_absent () =
  (* A broadcaster that is down transmits nothing; the listener hears
     silence; the down node gets no feedback at all. *)
  let f = Faults.crash ~node:0 ~from_slot:0 in
  let log0 = ref [] and log1 = ref [] in
  let nodes =
    [|
      scripted ~id:0 ~decision:(Action.broadcast ~label:0 "x") log0;
      scripted ~id:1 ~decision:(Action.listen ~label:0) log1;
    |]
  in
  ignore
    (Engine.run ~faults:f ~availability:(one_channel 2) ~rng:(Rng.create 9) ~nodes
       ~max_slots:2 ());
  check_int "down node got no feedback" 0 (List.length !log0);
  check "listener heard silence" true (List.for_all (( = ) Action.Silence) !log1)

(* --- Raw radio under adversaries ------------------------------------------- *)

let test_raw_down_node_absent () =
  (* A down node neither transmits nor hears: its callbacks never fire, and
     the listener hears a quiet channel. *)
  let touched = ref false in
  let log1 = ref [] in
  let nodes =
    [|
      Raw_radio.node ~id:0
        ~decide:(fun ~round:_ ->
          touched := true;
          Action.broadcast ~label:0 "x")
        ~hear:(fun ~round:_ _ -> touched := true);
      raw_scripted ~id:1 ~decision:(Action.listen ~label:0) log1;
    |]
  in
  ignore
    (Raw_radio.run
       ~faults:(Faults.crash ~node:0 ~from_slot:0)
       ~availability:(one_channel 2) ~nodes ~max_rounds:1 ());
  check "down node's callbacks never ran" false !touched;
  check "listener hears quiet" true (!log1 = [ Raw_radio.Quiet ])

let jam_node target =
  Jammer.of_fun ~name:"jam-node" ~budget:1 (fun ~slot:_ ~node ~channel:_ ->
      node = target)

let test_raw_jammed_transmitter_absorbed () =
  (* The jammer camps on the transmitter: its frame never reaches the
     channel, so an unjammed listener hears Quiet, not the message. *)
  let log1 = ref [] in
  let nodes =
    [|
      raw_scripted ~id:0 ~decision:(Action.broadcast ~label:0 "x") (ref []);
      raw_scripted ~id:1 ~decision:(Action.listen ~label:0) log1;
    |]
  in
  ignore
    (Raw_radio.run ~jammer:(jam_node 0) ~availability:(one_channel 2) ~nodes
       ~max_rounds:1 ());
  check "frame absorbed" true (!log1 = [ Raw_radio.Quiet ])

let test_raw_jammed_listener_hears_noise () =
  (* The jammer camps on the listener instead: jamming energy is audible, so
     the listener hears Noise even without collision detection, and even
     though a clean frame was on the air. *)
  let log1 = ref [] in
  let nodes =
    [|
      raw_scripted ~id:0 ~decision:(Action.broadcast ~label:0 "x") (ref []);
      raw_scripted ~id:1 ~decision:(Action.listen ~label:0) log1;
    |]
  in
  ignore
    (Raw_radio.run ~jammer:(jam_node 1) ~availability:(one_channel 2) ~nodes
       ~max_rounds:1 ());
  check "jammed listener hears noise" true (!log1 = [ Raw_radio.Noise ])

let test_staggered_activation () =
  let f = Faults.staggered_activation ~activation:[| 0; 3; 10 |] in
  check "node 0 awake from start" false (Faults.down f ~slot:0 ~node:0);
  check "node 1 down at 2" true (Faults.down f ~slot:2 ~node:1);
  check "node 1 up at 3" false (Faults.down f ~slot:3 ~node:1);
  check "node 2 down at 9" true (Faults.down f ~slot:9 ~node:2)

module Metrics = Crn_radio.Metrics

let test_metrics_counts () =
  let m = Metrics.create 2 in
  let nodes =
    [|
      scripted ~id:0 ~decision:(Action.broadcast ~label:0 ()) (ref []);
      scripted ~id:1 ~decision:(Action.listen ~label:0) (ref []);
    |]
  in
  ignore
    (Engine.run ~metrics:m ~availability:(one_channel 2) ~rng:(Rng.create 10) ~nodes
       ~max_slots:5 ());
  check_int "tx counted" 5 m.Metrics.transmissions.(0);
  check_int "no tx for listener" 0 m.Metrics.transmissions.(1);
  check_int "rx counted" 5 m.Metrics.receptions.(1);
  check_int "awake both" 5 m.Metrics.awake_slots.(0);
  check_int "awake both" 5 m.Metrics.awake_slots.(1);
  check_int "totals" 5 (Metrics.total_transmissions m);
  Metrics.reset m;
  check_int "reset" 0 (Metrics.total_transmissions m)

let test_metrics_faulted_not_awake () =
  let m = Metrics.create 1 in
  let f = Faults.crash ~node:0 ~from_slot:2 in
  let nodes = [| scripted ~id:0 ~decision:(Action.listen ~label:0) (ref []) |] in
  ignore
    (Engine.run ~metrics:m ~faults:f ~availability:(one_channel 1)
       ~rng:(Rng.create 11) ~nodes ~max_slots:6 ());
  check_int "only pre-crash slots counted" 2 m.Metrics.awake_slots.(0)

let test_metrics_size_mismatch () =
  let m = Metrics.create 3 in
  let nodes = [| scripted ~id:0 ~decision:(Action.listen ~label:0) (ref []) |] in
  Alcotest.check_raises "sized check"
    (Invalid_argument "Engine.run: metrics sized for a different node count")
    (fun () ->
      ignore
        (Engine.run ~metrics:m ~availability:(one_channel 1) ~rng:(Rng.create 12)
           ~nodes ~max_slots:1 ()))

(* --- Emulation (footnote 4 end-to-end) ---------------------------------------- *)

module Emulation = Crn_radio.Emulation

let test_emulation_single_broadcaster () =
  let log0 = ref [] and log1 = ref [] in
  let nodes =
    [|
      scripted ~id:0 ~decision:(Action.broadcast ~label:0 "m") log0;
      scripted ~id:1 ~decision:(Action.listen ~label:0) log1;
    |]
  in
  let outcome =
    Emulation.run ~availability:(one_channel 2) ~rng:(Rng.create 1) ~nodes
      ~max_slots:1 ()
  in
  check "winner won" true (!log0 = [ Action.Won ]);
  (match !log1 with
  | [ Action.Heard { sender = 0; msg = "m" } ] -> ()
  | _ -> Alcotest.fail "listener should hear");
  check_int "no failed sessions" 0 outcome.Emulation.failed_sessions;
  check "raw rounds at least one" true (outcome.Emulation.raw_rounds >= 1)

let test_emulation_contention_unique_winner () =
  let wins = ref 0 and losses = ref 0 in
  let feedback _v ~slot:_ = function
    | Action.Won -> incr wins
    | Action.Lost _ -> incr losses
    | Action.Heard _ | Action.Silence | Action.Jammed | Action.No_winner -> ()
  in
  let nodes =
    Array.init 6 (fun v ->
        Engine.node ~id:v
          ~decide:(fun ~slot:_ -> Action.broadcast ~label:0 v)
          ~feedback:(feedback v))
  in
  let outcome =
    Emulation.run ~availability:(one_channel 6) ~rng:(Rng.create 2) ~nodes
      ~max_slots:10 ()
  in
  check_int "one winner per successful slot" (10 - outcome.Emulation.failed_sessions) !wins;
  check_int "losers per slot" (5 * (10 - outcome.Emulation.failed_sessions)) !losses;
  check "raw rounds exceed slots (contention costs)" true
    (outcome.Emulation.raw_rounds >= outcome.Emulation.slots_run)

let test_emulation_raw_round_bound () =
  (* Raw rounds per slot stay within the session cap. *)
  let n = 16 in
  let nodes =
    Array.init n (fun v ->
        Engine.node ~id:v
          ~decide:(fun ~slot:_ -> Action.broadcast ~label:0 v)
          ~feedback:(fun ~slot:_ _ -> ()))
  in
  let cap = Crn_radio.Backoff.expected_rounds_bound n in
  let outcome =
    Emulation.run ~availability:(one_channel n) ~rng:(Rng.create 3) ~nodes
      ~max_slots:50 ()
  in
  check "bounded by cap per slot" true (outcome.Emulation.raw_rounds <= 50 * cap)

(* --- Jamming reduction ----------------------------------------------------- *)

let test_reduction_availability_dims () =
  let jammer = Jammer.random_per_node ~seed:4L ~budget:3 ~num_channels:12 in
  let d =
    Jamming_reduction.availability_of_jammer ~num_nodes:5 ~num_channels:12 ~jammer ()
  in
  check_int "c = C - budget" 9 (Dynamic.channels_per_node d);
  for slot = 0 to 5 do
    let a = Dynamic.at d slot in
    (* No channel in any node's set is jammed at that node. *)
    for node = 0 to 4 do
      for label = 0 to 8 do
        let ch = Assignment.global_of_local a ~node ~label in
        check "open channel" false (Jammer.jams jammer ~slot ~node ~channel:ch)
      done
    done;
    check "overlap >= C - 2k'" true
      (Assignment.min_pairwise_overlap a
      >= Jamming_reduction.overlap_guarantee ~num_channels:12 ~budget:3)
  done

let test_reduction_rejects_big_budget () =
  let jammer = Jammer.targeted_low ~budget:12 in
  Alcotest.check_raises "budget too large"
    (Invalid_argument "Jamming_reduction: jammer budget must be below num_channels")
    (fun () ->
      ignore
        (Jamming_reduction.availability_of_jammer ~num_nodes:2 ~num_channels:12 ~jammer ()))

let prop_trace_matches_observed =
  (* The trace's delivery counter must equal the number of Heard feedbacks
     nodes actually observed, and wins must equal Won feedbacks. *)
  QCheck.Test.make ~name:"trace counters match node observations" ~count:100
    QCheck.(triple small_int (int_range 2 10) (int_range 1 12))
    (fun (seed, n, slots) ->
      let heard = ref 0 and won = ref 0 in
      let rng = Rng.create (seed + 77) in
      let node_rngs = Rng.split_n rng n in
      let decide v ~slot:_ =
        if Rng.bernoulli node_rngs.(v) 0.4 then Action.broadcast ~label:0 ()
        else Action.listen ~label:0
      in
      let feedback _v ~slot:_ = function
        | Action.Heard _ -> incr heard
        | Action.Won -> incr won
        | Action.Lost _ | Action.Silence | Action.Jammed
        | Action.No_winner ->
            ()
      in
      let nodes =
        Array.init n (fun v -> Engine.node ~id:v ~decide:(decide v) ~feedback:(feedback v))
      in
      let outcome =
        Engine.run ~availability:(one_channel n) ~rng ~nodes ~max_slots:slots ()
      in
      outcome.Engine.counters.Crn_radio.Trace.Counters.deliveries = !heard
      && outcome.Engine.counters.Crn_radio.Trace.Counters.wins = !won)

let prop_emulation_one_feedback_per_slot =
  QCheck.Test.make ~name:"emulation: one feedback per node per slot" ~count:60
    QCheck.(triple small_int (int_range 1 8) (int_range 1 8))
    (fun (seed, n, slots) ->
      let counts = Array.make n 0 in
      let rng = Rng.create (seed + 55) in
      let node_rngs = Rng.split_n rng n in
      let decide v ~slot:_ =
        if Rng.bool node_rngs.(v) then Action.broadcast ~label:0 ()
        else Action.listen ~label:0
      in
      let feedback v ~slot:_ _ = counts.(v) <- counts.(v) + 1 in
      let nodes =
        Array.init n (fun v -> Engine.node ~id:v ~decide:(decide v) ~feedback:(feedback v))
      in
      ignore (Emulation.run ~availability:(one_channel n) ~rng ~nodes ~max_slots:slots ());
      Array.for_all (fun c -> c = slots) counts)

let prop_engine_conserves_feedback =
  (* Every node gets exactly one feedback per slot, whatever the decisions. *)
  QCheck.Test.make ~name:"one feedback per node per slot" ~count:100
    QCheck.(triple small_int (int_range 1 8) (int_range 1 10))
    (fun (seed, n, slots) ->
      let counts = Array.make n 0 in
      let rng = Rng.create seed in
      let node_rngs = Rng.split_n rng n in
      let decide v ~slot:_ =
        if Rng.bool node_rngs.(v) then Action.broadcast ~label:0 ()
        else Action.listen ~label:0
      in
      let feedback v ~slot:_ _ = counts.(v) <- counts.(v) + 1 in
      let nodes =
        Array.init n (fun v -> Engine.node ~id:v ~decide:(decide v) ~feedback:(feedback v))
      in
      ignore (Engine.run ~availability:(one_channel n) ~rng ~nodes ~max_slots:slots ());
      Array.for_all (fun c -> c = slots) counts)

(* --- Fault provenance and the robust-drain building blocks ----------------- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_faults_to_string_provenance () =
  let a = Faults.crash ~node:3 ~from_slot:7 in
  let b = Faults.random_naps ~seed:11L ~rate:0.1 in
  let u = Faults.union a b in
  let s = Faults.to_string u in
  check "union keeps left operand" true (contains ~needle:(Faults.to_string a) s);
  check "union keeps right operand" true (contains ~needle:(Faults.to_string b) s);
  let sp = Faults.to_string (Faults.spare u ~node:0) in
  check "spare keeps inner schedule" true (contains ~needle:s sp);
  check "none renders" true (String.length (Faults.to_string Faults.none) > 0)

let test_faults_crash_restart () =
  let f = Faults.crash_restart ~node:4 ~from_slot:10 ~down_for:5 in
  check "up before window" false (Faults.down f ~slot:9 ~node:4);
  check "down at start" true (Faults.down f ~slot:10 ~node:4);
  check "down inside window" true (Faults.down f ~slot:14 ~node:4);
  check "back up at end" false (Faults.down f ~slot:15 ~node:4);
  check "up long after" false (Faults.down f ~slot:100 ~node:4);
  check "others unaffected" false (Faults.down f ~slot:12 ~node:3)

let test_faults_bernoulli_churn () =
  let mean_up = 40. and mean_down = 10. in
  let f = Faults.bernoulli_churn ~seed:21L ~mean_up ~mean_down in
  let g = Faults.bernoulli_churn ~seed:21L ~mean_up ~mean_down in
  let nodes = 8 and slots = 4000 in
  (* All nodes start up. *)
  for v = 0 to nodes - 1 do
    check "up at slot 0" false (Faults.down f ~slot:0 ~node:v)
  done;
  (* Two instances with the same seed replay the same schedule, even when
     queried in different orders (the chain is memoized internally). *)
  let downs = ref 0 in
  for slot = 0 to slots - 1 do
    for v = 0 to nodes - 1 do
      let d = Faults.down f ~slot ~node:v in
      if d then incr downs;
      check "deterministic across instances" d (Faults.down g ~slot ~node:v)
    done
  done;
  (* Stationary down fraction is mean_down / (mean_up + mean_down) = 0.2. *)
  let frac = float_of_int !downs /. float_of_int (nodes * slots) in
  let expected = mean_down /. (mean_up +. mean_down) in
  check "stationary down fraction"
    true
    (Float.abs (frac -. expected) < 0.08)

let test_backoff_retry_delay () =
  check_int "attempt 0" 1 (Backoff.retry_delay ~attempt:0 ~cap:64);
  check_int "attempt 3" 8 (Backoff.retry_delay ~attempt:3 ~cap:64);
  check_int "caps" 64 (Backoff.retry_delay ~attempt:10 ~cap:64);
  check_int "huge attempt saturates" 4 (Backoff.retry_delay ~attempt:200 ~cap:4);
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "negative attempt rejected" true
    (raises (fun () -> Backoff.retry_delay ~attempt:(-1) ~cap:4));
  check "cap < 1 rejected" true
    (raises (fun () -> Backoff.retry_delay ~attempt:0 ~cap:0))

let test_jammer_reactive () =
  let j = Jammer.reactive () in
  check "reactive observes" true (Jammer.observes j);
  check "oblivious does not" false (Jammer.observes Jammer.none);
  check_int "budget 1" 1 (Jammer.budget j);
  (* Before any observation nothing is jammed. *)
  for ch = 0 to 3 do
    check "quiet before first observe" false (Jammer.jams j ~slot:0 ~node:0 ~channel:ch)
  done;
  (* After observing, the busiest channel is jammed at every node. *)
  Jammer.observe j ~slot:0 [ (1, 2); (3, 5) ];
  check "jams busiest" true (Jammer.jams j ~slot:1 ~node:0 ~channel:3);
  check "same at every node" true (Jammer.jams j ~slot:1 ~node:7 ~channel:3);
  check "spares the rest" false (Jammer.jams j ~slot:1 ~node:0 ~channel:1);
  (* Ties break toward the smallest channel id. *)
  Jammer.observe j ~slot:1 [ (2, 4); (0, 4) ];
  check "tie -> low channel" true (Jammer.jams j ~slot:2 ~node:0 ~channel:0);
  check "tie loser spared" false (Jammer.jams j ~slot:2 ~node:0 ~channel:2)

let test_jammer_reactive_in_engine () =
  (* End to end: a reactive jammer fed by the engine's occupancy scan jams
     the broadcaster's channel one slot after hearing it. A jammed
     broadcaster is inaudible, so the jammer loses its target and the
     pattern alternates Heard / Jammed. *)
  let j = Jammer.reactive () in
  let log = ref [] in
  let nodes =
    [|
      scripted ~id:0 ~decision:(Action.broadcast ~label:0 "x") (ref []);
      scripted ~id:1 ~decision:(Action.listen ~label:0) log;
    |]
  in
  ignore
    (Engine.run ~jammer:j ~availability:(one_channel 2) ~rng:(Rng.create 12) ~nodes
       ~max_slots:4 ());
  match List.rev !log with
  | [ s0; s1; s2; s3 ] ->
      let heard = function Action.Heard _ -> true | _ -> false in
      check "slot 0 delivered" true (heard s0);
      check "slot 1 jammed" true (s1 = Action.Jammed);
      check "slot 2 delivered again" true (heard s2);
      check "slot 3 jammed again" true (s3 = Action.Jammed)
  | fb -> Alcotest.failf "expected 4 feedbacks, got %d" (List.length fb)

let () =
  Alcotest.run "crn_radio"
    [
      ( "engine",
        [
          Alcotest.test_case "single broadcaster delivers" `Quick
            test_single_broadcaster_delivers;
          Alcotest.test_case "contention: one winner" `Quick test_contention_one_winner;
          Alcotest.test_case "winner uniform" `Quick test_winner_uniform;
          Alcotest.test_case "silence" `Quick test_silence;
          Alcotest.test_case "channel isolation" `Quick test_different_channels_isolated;
          Alcotest.test_case "label validation" `Quick test_label_validation;
          Alcotest.test_case "id validation" `Quick test_id_validation;
          Alcotest.test_case "stop callback" `Quick test_stop_callback;
          QCheck_alcotest.to_alcotest prop_engine_conserves_feedback;
          QCheck_alcotest.to_alcotest prop_trace_matches_observed;
        ] );
      ( "jammer",
        [
          Alcotest.test_case "none" `Quick test_jammer_none;
          Alcotest.test_case "budget respected" `Quick test_jammer_budget_respected;
          Alcotest.test_case "deterministic" `Quick test_jammer_deterministic;
          Alcotest.test_case "global uniform" `Quick test_jammer_global_uniform_across_nodes;
          Alcotest.test_case "sweep pattern" `Quick test_sweep_jammer;
          Alcotest.test_case "engine absorbs jammed actions" `Quick test_engine_jamming_absorbs;
          Alcotest.test_case "reactive" `Quick test_jammer_reactive;
          Alcotest.test_case "reactive in engine" `Quick test_jammer_reactive_in_engine;
        ] );
      ( "faults",
        [
          Alcotest.test_case "none" `Quick test_faults_none;
          Alcotest.test_case "crash" `Quick test_faults_crash;
          Alcotest.test_case "random rate" `Quick test_faults_random_rate;
          Alcotest.test_case "periodic nap" `Quick test_faults_periodic;
          Alcotest.test_case "spare/union" `Quick test_faults_spare_and_union;
          Alcotest.test_case "engine: down node absent" `Quick test_engine_down_node_absent;
          Alcotest.test_case "staggered activation" `Quick test_staggered_activation;
          Alcotest.test_case "to_string provenance" `Quick test_faults_to_string_provenance;
          Alcotest.test_case "crash/restart window" `Quick test_faults_crash_restart;
          Alcotest.test_case "bernoulli churn" `Quick test_faults_bernoulli_churn;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counts;
          Alcotest.test_case "faulted slots not awake" `Quick test_metrics_faulted_not_awake;
          Alcotest.test_case "size mismatch" `Quick test_metrics_size_mismatch;
        ] );
      ( "raw radio",
        [
          Alcotest.test_case "single tx delivers" `Quick test_raw_single_tx;
          Alcotest.test_case "collision destroys" `Quick test_raw_collision_destroys;
          Alcotest.test_case "collision detection" `Quick test_raw_collision_detection;
          Alcotest.test_case "tx hears quiet" `Quick test_raw_transmitter_hears_quiet;
          Alcotest.test_case "down node absent" `Quick test_raw_down_node_absent;
          Alcotest.test_case "jammed tx absorbed" `Quick
            test_raw_jammed_transmitter_absorbed;
          Alcotest.test_case "jammed listener hears noise" `Quick
            test_raw_jammed_listener_hears_noise;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "single contender" `Quick test_backoff_single;
          Alcotest.test_case "sessions succeed" `Quick test_backoff_succeeds;
          Alcotest.test_case "mean within O(log^2 n)" `Quick test_backoff_mean_within_bound;
          Alcotest.test_case "raw-radio variant agrees" `Quick test_backoff_on_raw_radio_agrees;
          Alcotest.test_case "retry delay" `Quick test_backoff_retry_delay;
          Alcotest.test_case "expected_rounds_bound pinned" `Quick
            test_expected_rounds_bound_pinned;
          Alcotest.test_case "direct = raw radio (property)" `Quick
            test_backoff_direct_vs_raw_property;
        ] );
      ( "csma",
        [
          Alcotest.test_case "single contender" `Quick test_csma_single;
          Alcotest.test_case "sessions succeed" `Quick test_csma_succeeds;
          Alcotest.test_case "lockstep colliders all drop" `Quick test_csma_all_drop_out;
          Alcotest.test_case "argument validation" `Quick test_csma_validation;
          Alcotest.test_case "direct = raw radio (property)" `Quick
            test_csma_direct_vs_raw_property;
        ] );
      ( "emulation",
        [
          Alcotest.test_case "single broadcaster" `Quick test_emulation_single_broadcaster;
          Alcotest.test_case "contention unique winner" `Quick
            test_emulation_contention_unique_winner;
          Alcotest.test_case "raw round bound" `Quick test_emulation_raw_round_bound;
          QCheck_alcotest.to_alcotest prop_emulation_one_feedback_per_slot;
        ] );
      ( "jamming reduction",
        [
          Alcotest.test_case "availability dimensions" `Quick test_reduction_availability_dims;
          Alcotest.test_case "rejects oversized budget" `Quick test_reduction_rejects_big_budget;
        ] );
    ]
