(* Tests for the statistics library: summaries, percentiles, histograms,
   least-squares fitting, tables and series. *)

module Summary = Crn_stats.Summary
module Histogram = Crn_stats.Histogram
module Fit = Crn_stats.Fit
module Table = Crn_stats.Table
module Series = Crn_stats.Series

let checkf = Alcotest.(check (float 1e-9))
let checkf_loose = Alcotest.(check (float 1e-6))

(* --- Summary ----------------------------------------------------------- *)

let test_mean () = checkf "mean" 2.5 (Summary.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_mean_singleton () = checkf "singleton" 42.0 (Summary.mean [| 42.0 |])

let test_variance () =
  (* Sample variance of 2,4,4,4,5,5,7,9 is 32/7. *)
  checkf_loose "variance" (32.0 /. 7.0)
    (Summary.variance [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_stddev_singleton () = checkf "sd of singleton" 0.0 (Summary.stddev [| 3.0 |])

let test_percentile_interpolation () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  checkf "p0" 10.0 (Summary.percentile xs 0.0);
  checkf "p100" 40.0 (Summary.percentile xs 100.0);
  checkf "p50 interpolates" 25.0 (Summary.percentile xs 50.0);
  checkf "p25" 17.5 (Summary.percentile xs 25.0)

let test_percentile_unsorted_input () =
  let xs = [| 40.0; 10.0; 30.0; 20.0 |] in
  checkf "sorts internally" 25.0 (Summary.percentile xs 50.0);
  (* And does not mutate the input. *)
  Alcotest.(check (array (float 0.0))) "input unchanged" [| 40.0; 10.0; 30.0; 20.0 |] xs

let test_median_odd () = checkf "odd median" 3.0 (Summary.median [| 5.0; 1.0; 3.0 |])

let test_percentile_edges () =
  (* Empty input is rejected like every other Summary entry point, and p
     outside [0, 100] is a caller error, not a clamp. *)
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Summary.percentile: empty sample") (fun () ->
      ignore (Summary.percentile [||] 50.0));
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Summary.percentile: p out of range") (fun () ->
      ignore (Summary.percentile [| 1.0 |] 100.5));
  (* A single element answers every percentile. *)
  List.iter
    (fun p -> checkf "singleton" 7.0 (Summary.percentile [| 7.0 |] p))
    [ 0.0; 1.0; 50.0; 99.0; 100.0 ];
  (* Duplicate-heavy sample: the extremes hit the first/last sorted element
     with no off-by-one, runs of equal neighbours interpolate exactly, and
     a percentile landing in the last gap blends the run with the outlier:
     rank = 0.99 * 5 = 4.95, so p99 = 0.05*5 + 0.95*9 = 8.8. *)
  let xs = [| 5.0; 5.0; 5.0; 5.0; 5.0; 9.0 |] in
  checkf "p0 duplicate-heavy" 5.0 (Summary.percentile xs 0.0);
  checkf "p50 duplicate-heavy" 5.0 (Summary.percentile xs 50.0);
  checkf "p99 duplicate-heavy" 8.8 (Summary.percentile xs 99.0);
  checkf "p100 duplicate-heavy" 9.0 (Summary.percentile xs 100.0);
  (* All-equal sample is constant at every percentile. *)
  let eq = Array.make 17 3.0 in
  List.iter
    (fun p -> checkf "all-equal" 3.0 (Summary.percentile eq p))
    [ 0.0; 10.0; 50.0; 90.0; 100.0 ]

let test_summary_singleton_record () =
  let s = Summary.of_floats [| 4.25 |] in
  Alcotest.(check int) "count" 1 s.Summary.count;
  List.iter
    (fun (name, v) -> checkf name 4.25 v)
    [
      ("mean", s.Summary.mean);
      ("min", s.Summary.min);
      ("max", s.Summary.max);
      ("median", s.Summary.median);
      ("p10", s.Summary.p10);
      ("p90", s.Summary.p90);
      ("p99", s.Summary.p99);
    ];
  checkf "stddev" 0.0 s.Summary.stddev

let test_summary_record () =
  let s = Summary.of_ints [| 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 |] in
  Alcotest.(check int) "count" 10 s.Summary.count;
  checkf "mean" 5.5 s.Summary.mean;
  checkf "min" 1.0 s.Summary.min;
  checkf "max" 10.0 s.Summary.max;
  checkf "median" 5.5 s.Summary.median

let test_empty_rejected () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Summary.mean: empty sample")
    (fun () -> ignore (Summary.mean [||]))

(* --- Histogram --------------------------------------------------------- *)

let test_histogram_basic () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 2.5; 9.5; 9.9 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check int) "bin 0" 2 (Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 1 (Histogram.bin_count h 1);
  Alcotest.(check int) "bin 4" 2 (Histogram.bin_count h 4)

let test_histogram_clamps () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2 in
  Histogram.add h (-5.0);
  Histogram.add h 99.0;
  Alcotest.(check int) "low clamped" 1 (Histogram.bin_count h 0);
  Alcotest.(check int) "high clamped" 1 (Histogram.bin_count h 1)

let test_histogram_of_ints () =
  let h = Histogram.of_ints ~bins:4 [| 1; 2; 3; 4; 5; 6; 7; 8 |] in
  Alcotest.(check int) "total preserved" 8 (Histogram.count h);
  Alcotest.(check int) "bins" 4 (Histogram.bins h)

let test_histogram_bounds () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  let lo, hi = Histogram.bin_bounds h 2 in
  checkf "bin 2 lo" 4.0 lo;
  checkf "bin 2 hi" 6.0 hi

let test_histogram_edges () =
  (* Degenerate constructions are rejected outright. *)
  Alcotest.check_raises "empty of_ints"
    (Invalid_argument "Histogram.of_ints: empty sample") (fun () ->
      ignore (Histogram.of_ints [||]));
  Alcotest.check_raises "lo >= hi" (Invalid_argument "Histogram.create: lo >= hi")
    (fun () -> ignore (Histogram.create ~lo:1.0 ~hi:1.0 ~bins:4));
  Alcotest.check_raises "bins < 1" (Invalid_argument "Histogram.create: bins < 1")
    (fun () -> ignore (Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0));
  (* One bin swallows everything, including out-of-range values. *)
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:1 in
  List.iter (Histogram.add h) [ -3.0; 0.0; 0.5; 0.999; 42.0 ];
  Alcotest.(check int) "single bin holds all" 5 (Histogram.bin_count h 0);
  (* The upper edge is exclusive, but x = hi clamps into the last bin
     rather than falling off the end — no off-by-one at the boundary. *)
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  Histogram.add h 10.0;
  Alcotest.(check int) "x = hi lands in last bin" 1 (Histogram.bin_count h 4)

let test_histogram_all_equal () =
  (* of_ints on a constant sample widens hi to lo + 1 so bin 0 exists and
     takes the whole sample. *)
  let h = Histogram.of_ints ~bins:10 [| 5; 5; 5; 5 |] in
  Alcotest.(check int) "total" 4 (Histogram.count h);
  Alcotest.(check int) "all in bin 0" 4 (Histogram.bin_count h 0);
  let lo, hi = Histogram.bin_bounds h 0 in
  checkf "bin 0 starts at the value" 5.0 lo;
  checkf "widened span" 5.1 hi

(* --- Fit --------------------------------------------------------------- *)

let test_linear_exact () =
  let pts = Array.init 10 (fun i -> (float_of_int i, (3.0 *. float_of_int i) +. 2.0)) in
  let line = Fit.linear pts in
  checkf_loose "slope" 3.0 line.Fit.slope;
  checkf_loose "intercept" 2.0 line.Fit.intercept;
  checkf_loose "r2" 1.0 line.Fit.r2

let test_linear_flat () =
  let pts = [| (1.0, 5.0); (2.0, 5.0); (3.0, 5.0) |] in
  let line = Fit.linear pts in
  checkf_loose "slope 0" 0.0 line.Fit.slope;
  checkf_loose "flat data has r2 = 1 by convention" 1.0 line.Fit.r2

let test_log_log_exponent () =
  (* y = 7 x^2.5 has log-log slope 2.5. *)
  let pts = Array.init 20 (fun i ->
      let x = float_of_int (i + 1) in
      (x, 7.0 *. (x ** 2.5)))
  in
  let line = Fit.log_log pts in
  checkf_loose "exponent" 2.5 line.Fit.slope

let test_log_log_rejects_nonpositive () =
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Fit.log_log: non-positive coordinate") (fun () ->
      ignore (Fit.log_log [| (0.0, 1.0); (1.0, 2.0) |]))

let test_semilog () =
  (* y = 4 ln x + 1. *)
  let pts = Array.init 20 (fun i ->
      let x = float_of_int (i + 1) in
      (x, (4.0 *. log x) +. 1.0))
  in
  let line = Fit.semilog_x pts in
  checkf_loose "slope" 4.0 line.Fit.slope;
  checkf_loose "intercept" 1.0 line.Fit.intercept

let test_pearson_sign () =
  let up = Array.init 10 (fun i -> (float_of_int i, float_of_int (2 * i))) in
  let down = Array.init 10 (fun i -> (float_of_int i, float_of_int (-3 * i))) in
  checkf_loose "perfect positive" 1.0 (Fit.pearson up);
  checkf_loose "perfect negative" (-1.0) (Fit.pearson down)

let test_fit_degenerate () =
  Alcotest.check_raises "needs two points"
    (Invalid_argument "Fit.linear: need at least two points") (fun () ->
      ignore (Fit.linear [| (1.0, 1.0) |]));
  Alcotest.check_raises "same x rejected"
    (Invalid_argument "Fit.linear: degenerate x values") (fun () ->
      ignore (Fit.linear [| (1.0, 1.0); (1.0, 2.0) |]))

(* --- Table ------------------------------------------------------------- *)

let test_table_render () =
  let t = Table.create [ "n"; "slots" ] in
  Table.add_row t [ "8"; "120" ];
  Table.add_row t [ "16"; "300" ];
  let s = Table.render t in
  Alcotest.(check bool) "mentions header" true
    (String.length s > 0
    && String.trim (List.hd (String.split_on_char '\n' s)) <> "");
  Alcotest.(check int) "two rows" 2 (Table.rows t)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

let test_table_rowf () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_rowf t "%d|%s|%.1f" 5 "hi" 2.5;
  Alcotest.(check int) "one row" 1 (Table.rows t);
  let s = Table.render t in
  Alcotest.(check bool) "contains formatted cell" true (contains_substring s "2.5")

let test_table_pads_short_rows () =
  let t = Table.create [ "a"; "b" ] in
  Table.add_row t [ "only" ];
  Alcotest.(check int) "row accepted" 1 (Table.rows t)

let test_table_rejects_long_rows () =
  let t = Table.create [ "a" ] in
  Alcotest.check_raises "too many cells" (Invalid_argument "Table.add_row: too many cells")
    (fun () -> Table.add_row t [ "x"; "y" ])

(* --- Csv ----------------------------------------------------------------- *)

module Csv = Crn_stats.Csv

let test_csv_escape () =
  Alcotest.(check string) "plain untouched" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote doubled" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "newline quoted" "\"a\nb\"" (Csv.escape "a\nb")

let test_csv_of_table () =
  let t = Table.create [ "n"; "label" ] in
  Table.add_row t [ "1"; "plain" ];
  Table.add_row t [ "2"; "with,comma" ];
  Alcotest.(check string) "csv output" "n,label\n1,plain\n2,\"with,comma\"\n"
    (Csv.of_table t)

let test_csv_write_roundtrip () =
  let t = Table.create [ "a"; "b" ] in
  Table.add_row t [ "x"; "y" ];
  let path = Filename.temp_file "crn_csv" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write_table ~path t;
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "file content" "a,b\nx,y\n" content)

(* --- Json --------------------------------------------------------------- *)

module Json = Crn_stats.Json

let test_json_escape () =
  Alcotest.(check string) "plain" "\"abc\"" (Json.escape "abc");
  Alcotest.(check string) "quote" "\"a\\\"b\"" (Json.escape "a\"b");
  Alcotest.(check string) "backslash" "\"a\\\\b\"" (Json.escape "a\\b");
  Alcotest.(check string) "newline" "\"a\\nb\"" (Json.escape "a\nb");
  Alcotest.(check string) "control" "\"\\u0001\"" (Json.escape "\x01")

let test_json_compact () =
  let v =
    Json.Obj
      [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true; Json.Null ]) ]
  in
  Alcotest.(check string) "compact form" {|{"a":1,"b":[true,null]}|}
    (Json.to_string ~compact:true v)

let test_json_nonfinite_floats () =
  Alcotest.(check string) "nan is null" "null" (Json.to_string ~compact:true (Json.Float nan));
  Alcotest.(check string) "inf is null" "null"
    (Json.to_string ~compact:true (Json.Float infinity));
  Alcotest.(check string) "finite kept" "1.5" (Json.to_string ~compact:true (Json.Float 1.5))

let test_json_of_table () =
  let t = Table.create [ "n"; "median"; "label" ] in
  Table.add_row t [ "8"; "120.5"; "ok" ];
  let v = Json.of_table ~title:"demo" t in
  Alcotest.(check string) "title" {|"demo"|}
    (Json.to_string ~compact:true (Option.get (Json.member "title" v)));
  (match Json.member "rows" v with
  | Some (Json.List [ Json.List [ a; b; c ] ]) ->
      Alcotest.(check bool) "int cell" true (a = Json.Int 8);
      Alcotest.(check bool) "float cell" true (b = Json.Float 120.5);
      Alcotest.(check bool) "string cell" true (c = Json.String "ok")
  | _ -> Alcotest.fail "rows shape");
  Alcotest.(check bool) "missing member" true (Json.member "nope" v = None)

let test_json_of_summary () =
  let v = Json.of_summary (Summary.of_ints [| 1; 2; 3; 4 |]) in
  Alcotest.(check bool) "count member" true (Json.member "count" v = Some (Json.Int 4));
  Alcotest.(check bool) "mean member" true (Json.member "mean" v = Some (Json.Float 2.5))

(* A deliberately tiny JSON parser — just enough to round-trip what
   Json.to_string emits, so the writer is checked against independent
   logic rather than against itself. *)
let parse_json (s : string) : Json.t =
  let pos = ref 0 in
  let peek () = s.[!pos] in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < String.length s && (peek () = ' ' || peek () = '\n') then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c =
    if peek () <> c then Alcotest.failf "parse: expected %c at %d" c !pos;
    advance ()
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              pos := !pos + 4;
              Buffer.add_char b (Char.chr code)
          | c -> Buffer.add_char b c);
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < String.length s
      && (match peek () with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Json.Int i
    | None -> Json.Float (float_of_string lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | 't' -> literal "true" (Json.Bool true)
    | 'f' -> literal "false" (Json.Bool false)
    | 'n' -> literal "null" Json.Null
    | '"' -> Json.String (parse_string ())
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Json.List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Json.List (List.rev !items)
        end
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Json.Obj []
        end
        else begin
          let parse_member () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            (key, parse_value ())
          in
          let members = ref [ parse_member () ] in
          skip_ws ();
          while peek () = ',' do
            advance ();
            members := parse_member () :: !members;
            skip_ws ()
          done;
          expect '}';
          Json.Obj (List.rev !members)
        end
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> String.length s then Alcotest.failf "parse: trailing input at %d" !pos;
  v

let roundtrip_value =
  Json.Obj
    [
      ("title", Json.String "sweep over n \"quoted\"\nsecond line");
      ("count", Json.Int 42);
      ("negative", Json.Int (-7));
      ("median", Json.Float 120.5);
      ("tiny", Json.Float 1e-9);
      ("nan_becomes_null", Json.Float nan);
      ("flags", Json.List [ Json.Bool true; Json.Bool false; Json.Null ]);
      ("empty_list", Json.List []);
      ("empty_obj", Json.Obj []);
      ( "nested",
        Json.List
          [ Json.Obj [ ("rows", Json.List [ Json.Int 1; Json.Int 2 ]) ] ] );
    ]

(* Printing then parsing recovers the value (with nan mapped to Null, which
   is the documented serialization). *)
let expected_after_roundtrip =
  Json.Obj
    (List.map
       (fun (k, v) -> if k = "nan_becomes_null" then (k, Json.Null) else (k, v))
       (match roundtrip_value with Json.Obj ms -> ms | _ -> assert false))

let test_json_roundtrip_compact () =
  let got = parse_json (Json.to_string ~compact:true roundtrip_value) in
  Alcotest.(check bool) "compact roundtrip" true (got = expected_after_roundtrip)

let test_json_roundtrip_pretty () =
  let got = parse_json (Json.to_string roundtrip_value) in
  Alcotest.(check bool) "pretty roundtrip" true (got = expected_after_roundtrip)

let test_json_write_is_parseable () =
  let path = Filename.temp_file "crn_json" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Json.write ~path roundtrip_value;
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check bool) "ends with newline" true
        (String.length content > 0 && content.[String.length content - 1] = '\n');
      let got = parse_json (String.trim content) in
      Alcotest.(check bool) "file roundtrip" true (got = expected_after_roundtrip))

(* --- Json.of_string ----------------------------------------------------- *)

let ok_of_string s =
  match Json.of_string s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "of_string %S: %s" s msg

let test_of_string_roundtrip () =
  List.iter
    (fun form ->
      let got = ok_of_string (form roundtrip_value) in
      Alcotest.(check bool) "of_string roundtrip" true (got = expected_after_roundtrip))
    [ Json.to_string ~compact:true; Json.to_string ~compact:false ]

let test_of_string_adversarial_strings () =
  (* Every control character, the JSON specials, DEL and multi-byte UTF-8
     must survive escape + parse byte-exactly. *)
  let adversarial =
    List.init 0x20 (fun i -> Printf.sprintf "a%cb" (Char.chr i))
    @ [
        "";
        "\"";
        "\\";
        "\\\"";
        "a\"b\\c\nd\te";
        "\x7f";
        "\xc3\xa9";  (* é *)
        "\xe2\x82\xac";  (* € *)
        "\xf0\x9f\x93\xa1";  (* a 4-byte emoji: needs a surrogate pair as \u *)
        String.init 64 Char.chr;
      ]
  in
  List.iter
    (fun s ->
      match ok_of_string (Json.escape s) with
      | Json.String s' -> Alcotest.(check string) "string survives" s s'
      | _ -> Alcotest.failf "escape %S did not parse back to a string" s)
    adversarial

let test_of_string_escapes () =
  (* Decoding of explicit escape sequences, including surrogate pairs. *)
  let cases =
    [
      ({|"A"|}, "A");
      ({|"é"|}, "\xc3\xa9");
      ({|"€"|}, "\xe2\x82\xac");
      ({|"😀"|}, "\xf0\x9f\x98\x80");
      ({|"\n\r\t\b\f\/\\\""|}, "\n\r\t\b\012/\\\"");
      ({|"\u0000"|}, "\x00");
    ]
  in
  List.iter
    (fun (input, want) ->
      match ok_of_string input with
      | Json.String got -> Alcotest.(check string) input want got
      | _ -> Alcotest.failf "%s did not parse to a string" input)
    cases

let test_of_string_numbers () =
  Alcotest.(check bool) "int" true (ok_of_string "42" = Json.Int 42);
  Alcotest.(check bool) "negative int" true (ok_of_string "-7" = Json.Int (-7));
  Alcotest.(check bool) "float" true (ok_of_string "1.5" = Json.Float 1.5);
  Alcotest.(check bool) "exponent is float" true (ok_of_string "1e3" = Json.Float 1000.0);
  Alcotest.(check bool)
    "negative exponent" true
    (ok_of_string "2.5e-1" = Json.Float 0.25)

let test_of_string_rejects () =
  let rejected =
    [
      "";
      "{";
      "[1,]";
      "{\"a\":}";
      "\"unterminated";
      "\"\x01\"";  (* raw control char inside a string *)
      {|"\ud83d"|};  (* lone high surrogate *)
      {|"\ude00"|};  (* lone low surrogate *)
      {|"\ud83dx"|};  (* high surrogate not followed by an escape *)
      "01";  (* leading zero *)
      "1 2";  (* trailing garbage *)
      "nul";
      "+1";
      "'single'";
    ]
  in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok v ->
          Alcotest.failf "of_string %S unexpectedly parsed: %s" s
            (Json.to_string ~compact:true v)
      | Error _ -> ())
    rejected

let test_of_string_nested () =
  (* Duplicate keys kept in order; deep nesting; insignificant whitespace. *)
  match ok_of_string " { \"a\" : [ 1 , { \"a\" : null } ] , \"a\" : true } " with
  | Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Obj [ ("a", Json.Null) ] ]);
               ("a", Json.Bool true) ] ->
      ()
  | v -> Alcotest.failf "unexpected parse: %s" (Json.to_string ~compact:true v)

(* --- Series ------------------------------------------------------------ *)

let test_series_exponent () =
  let s = Series.make "quad" (List.init 10 (fun i ->
      let x = float_of_int (i + 1) in
      (x, x *. x)))
  in
  checkf_loose "exponent 2" 2.0 (Series.scaling_exponent s)

let test_series_plot_nonempty () =
  let s = Series.of_ints "line" [ (1, 1); (2, 2); (3, 3) ] in
  let out = Series.plot [ s ] in
  Alcotest.(check bool) "plot renders" true (String.length out > 50)

let test_series_plot_empty () =
  Alcotest.(check string) "empty plot" "(empty plot)\n" (Series.plot [])

(* --- properties -------------------------------------------------------- *)

let prop_percentile_between_min_max =
  QCheck.Test.make ~name:"percentile stays within [min,max]" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 40) (float_bound_exclusive 1000.0)) (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let a = Array.of_list xs in
      let v = Summary.percentile a p in
      let lo = Array.fold_left min a.(0) a and hi = Array.fold_left max a.(0) a in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:300
    QCheck.(list_of_size Gen.(2 -- 40) (float_bound_exclusive 1000.0))
    (fun xs ->
      let a = Array.of_list xs in
      let prev = ref (Summary.percentile a 0.0) in
      let ok = ref true in
      List.iter
        (fun p ->
          let v = Summary.percentile a p in
          if v < !prev -. 1e-9 then ok := false;
          prev := v)
        [ 10.0; 25.0; 50.0; 75.0; 90.0; 100.0 ];
      !ok)

let prop_linear_recovers_line =
  QCheck.Test.make ~name:"linear fit recovers exact lines" ~count:200
    QCheck.(pair (float_range (-50.0) 50.0) (float_range (-50.0) 50.0))
    (fun (slope, intercept) ->
      let pts = Array.init 8 (fun i ->
          let x = float_of_int i in
          (x, (slope *. x) +. intercept))
      in
      let l = Fit.linear pts in
      Float.abs (l.Fit.slope -. slope) < 1e-6
      && Float.abs (l.Fit.intercept -. intercept) < 1e-6)

let prop_histogram_conserves_count =
  QCheck.Test.make ~name:"histogram conserves observation count" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (int_bound 1000))
    (fun xs ->
      let h = Histogram.of_ints ~bins:7 (Array.of_list xs) in
      Histogram.count h = List.length xs)

let () =
  Alcotest.run "crn_stats"
    [
      ( "summary",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "mean singleton" `Quick test_mean_singleton;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "stddev singleton" `Quick test_stddev_singleton;
          Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolation;
          Alcotest.test_case "percentile input untouched" `Quick test_percentile_unsorted_input;
          Alcotest.test_case "median odd" `Quick test_median_odd;
          Alcotest.test_case "percentile edge cases" `Quick test_percentile_edges;
          Alcotest.test_case "summary record" `Quick test_summary_record;
          Alcotest.test_case "summary singleton record" `Quick
            test_summary_singleton_record;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basic binning" `Quick test_histogram_basic;
          Alcotest.test_case "clamping" `Quick test_histogram_clamps;
          Alcotest.test_case "of_ints" `Quick test_histogram_of_ints;
          Alcotest.test_case "bin bounds" `Quick test_histogram_bounds;
          Alcotest.test_case "edge cases" `Quick test_histogram_edges;
          Alcotest.test_case "all-equal sample" `Quick test_histogram_all_equal;
        ] );
      ( "fit",
        [
          Alcotest.test_case "linear exact" `Quick test_linear_exact;
          Alcotest.test_case "linear flat" `Quick test_linear_flat;
          Alcotest.test_case "log-log exponent" `Quick test_log_log_exponent;
          Alcotest.test_case "log-log rejects nonpositive" `Quick test_log_log_rejects_nonpositive;
          Alcotest.test_case "semilog" `Quick test_semilog;
          Alcotest.test_case "pearson sign" `Quick test_pearson_sign;
          Alcotest.test_case "degenerate inputs" `Quick test_fit_degenerate;
        ] );
      ( "table+series",
        [
          Alcotest.test_case "table render" `Quick test_table_render;
          Alcotest.test_case "table add_rowf" `Quick test_table_rowf;
          Alcotest.test_case "table pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "table rejects long rows" `Quick test_table_rejects_long_rows;
          Alcotest.test_case "series exponent" `Quick test_series_exponent;
          Alcotest.test_case "series plot" `Quick test_series_plot_nonempty;
          Alcotest.test_case "series empty plot" `Quick test_series_plot_empty;
          Alcotest.test_case "csv escaping" `Quick test_csv_escape;
          Alcotest.test_case "csv of table" `Quick test_csv_of_table;
          Alcotest.test_case "csv write roundtrip" `Quick test_csv_write_roundtrip;
        ] );
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escape;
          Alcotest.test_case "compact form" `Quick test_json_compact;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite_floats;
          Alcotest.test_case "of_table" `Quick test_json_of_table;
          Alcotest.test_case "of_summary" `Quick test_json_of_summary;
          Alcotest.test_case "roundtrip compact" `Quick test_json_roundtrip_compact;
          Alcotest.test_case "roundtrip pretty" `Quick test_json_roundtrip_pretty;
          Alcotest.test_case "write is parseable" `Quick test_json_write_is_parseable;
          Alcotest.test_case "of_string roundtrip" `Quick test_of_string_roundtrip;
          Alcotest.test_case "of_string adversarial strings" `Quick
            test_of_string_adversarial_strings;
          Alcotest.test_case "of_string escapes" `Quick test_of_string_escapes;
          Alcotest.test_case "of_string numbers" `Quick test_of_string_numbers;
          Alcotest.test_case "of_string rejects" `Quick test_of_string_rejects;
          Alcotest.test_case "of_string nested" `Quick test_of_string_nested;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_percentile_between_min_max;
            prop_percentile_monotone;
            prop_linear_recovers_line;
            prop_histogram_conserves_count;
          ] );
    ]
