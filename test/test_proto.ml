(* Differential tests for the protocol layer (lib/proto): a registry-
   dispatched run must be byte-identical — traces, counters, results — to
   the direct API it wraps, and the machine-ported baselines must reproduce
   the slot counts of the private loops they replaced. *)

module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Dynamic = Crn_channel.Dynamic
module Assignment = Crn_channel.Assignment
module Trace = Crn_radio.Trace
module Faults = Crn_radio.Faults
module Cogcast = Crn_core.Cogcast
module Cogcomp = Crn_core.Cogcomp
module Cogcomp_robust = Crn_core.Cogcomp_robust
module Aggregate = Crn_core.Aggregate
module Complexity = Crn_core.Complexity
module Broadcast_baseline = Crn_rendezvous.Broadcast_baseline
module Aggregation_baseline = Crn_rendezvous.Aggregation_baseline
module Random_hop = Crn_rendezvous.Random_hop
module Seq_scan = Crn_rendezvous.Seq_scan
module Deterministic = Crn_rendezvous.Deterministic
module Protocol = Crn_proto.Protocol
module Registry = Crn_proto.Registry
module Trials = Crn_exec.Trials

let seeds = [ 1; 2; 5 ]

let detail_int summary key =
  match summary.Protocol.detail with
  | Crn_stats.Json.Obj fields -> (
      match List.assoc_opt key fields with
      | Some (Crn_stats.Json.Int v) -> v
      | _ -> Alcotest.failf "summary detail lacks int field %S" key)
  | _ -> Alcotest.fail "summary detail is not an object"

let run_registry ?budget_factor ?max_slots ?faults ?trace ~name ~k ~assignment ~rng () =
  Protocol.run (Registry.find_exn name)
    (Protocol.env ?budget_factor ?max_slots ?faults ?trace ~k
       ~availability:(Dynamic.static assignment) ~rng ())

(* ---- registry vs direct API: byte-identical traces and results ---- *)

let test_cogcast_differential () =
  List.iter
    (fun seed ->
      let n = 24 and c = 8 and k = 3 in
      let spec = { Topology.n; c; k } in
      let direct =
        let rng = Rng.create seed in
        let assignment = Topology.generate Topology.Shared_plus_random rng spec in
        let tr = Trace.create () in
        let r = Cogcast.run_static ~trace:tr ~source:0 ~assignment ~k ~rng () in
        (Trace.to_jsonl tr, r.Cogcast.completed_at, r.Cogcast.informed_count,
         r.Cogcast.slots_run)
      in
      let registry =
        let rng = Rng.create seed in
        let assignment = Topology.generate Topology.Shared_plus_random rng spec in
        let tr = Trace.create () in
        let s = run_registry ~trace:tr ~name:"cogcast" ~k ~assignment ~rng () in
        (Trace.to_jsonl tr, s.Protocol.completed_at, detail_int s "informed_count",
         s.Protocol.slots_run)
      in
      let dt, dc, di, ds = direct and rt, rc, ri, rs = registry in
      Alcotest.(check string) (Printf.sprintf "trace seed %d" seed) dt rt;
      Alcotest.(check (option int)) "completed_at" dc rc;
      Alcotest.(check int) "informed_count" di ri;
      Alcotest.(check int) "slots_run" ds rs)
    seeds

let test_cogcomp_differential () =
  List.iter
    (fun seed ->
      let n = 20 and c = 6 and k = 2 in
      let spec = { Topology.n; c; k } in
      let direct =
        let rng = Rng.create seed in
        let assignment = Topology.generate Topology.Shared_core rng spec in
        let tr = Trace.create () in
        let values = Array.init n (fun v -> v) in
        let r =
          Cogcomp.run ~trace:tr ~monoid:Aggregate.sum ~values ~source:0
            ~assignment ~k ~rng ()
        in
        (Trace.to_jsonl tr, r.Cogcomp.complete, r.Cogcomp.root_value,
         r.Cogcomp.total_slots)
      in
      let registry =
        let rng = Rng.create seed in
        let assignment = Topology.generate Topology.Shared_core rng spec in
        let tr = Trace.create () in
        let s = run_registry ~trace:tr ~name:"cogcomp" ~k ~assignment ~rng () in
        let root =
          match s.Protocol.detail with
          | Crn_stats.Json.Obj fields -> (
              match List.assoc_opt "root_value" fields with
              | Some (Crn_stats.Json.Int v) -> Some v
              | _ -> None)
          | _ -> None
        in
        (Trace.to_jsonl tr, s.Protocol.completed, root, s.Protocol.slots_run)
      in
      let dt, dc, dv, ds = direct and rt, rc, rv, rs = registry in
      Alcotest.(check string) (Printf.sprintf "trace seed %d" seed) dt rt;
      Alcotest.(check bool) "complete" dc rc;
      Alcotest.(check (option int)) "root_value" dv rv;
      Alcotest.(check int) "total_slots" ds rs)
    seeds

let naps_faults () = Faults.spare (Faults.random_naps ~seed:7L ~rate:0.05) ~node:0

let test_cogcomp_robust_differential () =
  List.iter
    (fun seed ->
      let n = 16 and c = 6 and k = 2 in
      let spec = { Topology.n; c; k } in
      let direct =
        let rng = Rng.create seed in
        let assignment = Topology.generate Topology.Shared_core rng spec in
        let tr = Trace.create () in
        let values = Array.init n (fun v -> v) in
        let r =
          Cogcomp_robust.run ~faults:(naps_faults ()) ~trace:tr
            ~monoid:Aggregate.sum ~values ~source:0 ~assignment ~k ~rng ()
        in
        (Trace.to_jsonl tr, r.Cogcomp_robust.coverage, r.Cogcomp_robust.total_slots)
      in
      let registry =
        let rng = Rng.create seed in
        let assignment = Topology.generate Topology.Shared_core rng spec in
        let tr = Trace.create () in
        let s =
          run_registry ~faults:(naps_faults ()) ~trace:tr ~name:"cogcomp_robust"
            ~k ~assignment ~rng ()
        in
        let coverage = int_of_float (s.Protocol.coverage *. float_of_int n +. 0.5) in
        (Trace.to_jsonl tr, coverage, s.Protocol.slots_run)
      in
      let dt, dcov, ds = direct and rt, rcov, rs = registry in
      Alcotest.(check string) (Printf.sprintf "trace seed %d" seed) dt rt;
      Alcotest.(check int) "coverage" dcov rcov;
      Alcotest.(check int) "total_slots" ds rs)
    seeds

(* ---- machine ports vs the legacy entry points ---- *)

let topologies = [ Topology.Shared_core; Topology.Shared_plus_random ]

let test_broadcast_baseline_parity () =
  List.iter
    (fun topology ->
      List.iter
        (fun seed ->
          let n = 20 and c = 6 and k = 2 in
          let spec = { Topology.n; c; k } in
          let legacy =
            let rng = Rng.create seed in
            let assignment = Topology.generate topology rng spec in
            let r = Broadcast_baseline.run_static ~source:0 ~assignment ~k ~rng () in
            (r.Broadcast_baseline.completed_at, r.Broadcast_baseline.slots_run,
             r.Broadcast_baseline.informed_count)
          in
          let registry =
            let rng = Rng.create seed in
            let assignment = Topology.generate topology rng spec in
            let s = run_registry ~name:"broadcast_baseline" ~k ~assignment ~rng () in
            (s.Protocol.completed_at, s.Protocol.slots_run,
             detail_int s "informed_count")
          in
          let lc, ls, li = legacy and rc, rs, ri = registry in
          Alcotest.(check (option int)) "completed_at" lc rc;
          Alcotest.(check int) "slots_run" ls rs;
          Alcotest.(check int) "informed_count" li ri)
        seeds)
    topologies

let test_aggregation_baseline_parity () =
  List.iter
    (fun ack ->
      List.iter
        (fun seed ->
          let n = 14 and c = 5 and k = 2 in
          let spec = { Topology.n; c; k } in
          let name =
            if ack then "aggregation_baseline" else "aggregation_baseline_honest"
          in
          let legacy =
            let rng = Rng.create seed in
            let assignment = Topology.generate Topology.Shared_core rng spec in
            let values = Array.init n (fun v -> v) in
            let r =
              Aggregation_baseline.run_static ~ack ~monoid:Aggregate.sum ~values
                ~source:0 ~assignment ~k ~rng ()
            in
            (r.Aggregation_baseline.completed_at,
             r.Aggregation_baseline.slots_run,
             r.Aggregation_baseline.received_count,
             r.Aggregation_baseline.root_value)
          in
          let registry =
            let rng = Rng.create seed in
            let assignment = Topology.generate Topology.Shared_core rng spec in
            let s = run_registry ~name ~k ~assignment ~rng () in
            let root =
              match s.Protocol.detail with
              | Crn_stats.Json.Obj fields -> (
                  match List.assoc_opt "root_value" fields with
                  | Some (Crn_stats.Json.Int v) -> Some v
                  | _ -> None)
              | _ -> None
            in
            (s.Protocol.completed_at, s.Protocol.slots_run,
             detail_int s "received_count", root)
          in
          let lc, ls, lr, lv = legacy and rc, rs, rr, rv = registry in
          Alcotest.(check (option int)) "completed_at" lc rc;
          Alcotest.(check int) "slots_run" ls rs;
          Alcotest.(check int) "received_count" lr rr;
          Alcotest.(check (option int)) "root_value" lv rv)
        seeds)
    [ true; false ]

let test_random_hop_matches_pure_loop () =
  List.iter
    (fun seed ->
      let n = 16 and c = 6 and k = 2 in
      let spec = { Topology.n; c; k } in
      let max_slots =
        max 1
          (int_of_float (Float.ceil (8.0 *. Complexity.rendezvous_broadcast ~n ~c ~k)))
      in
      let pure =
        let rng = Rng.create seed in
        let assignment = Topology.generate Topology.Shared_core rng spec in
        Random_hop.source_meets_all ~rng ~assignment ~source:0 ~max_slots
      in
      let registry =
        let rng = Rng.create seed in
        let assignment = Topology.generate Topology.Shared_core rng spec in
        let s = run_registry ~name:"random_hop" ~k ~assignment ~rng () in
        s.Protocol.completed_at
      in
      Alcotest.(check (option int))
        (Printf.sprintf "slot count seed %d" seed)
        pure registry)
    seeds

let test_seq_scan_parity () =
  List.iter
    (fun seed ->
      let n = 6 and k = 3 in
      let c = 4 in
      let spec = { Topology.n; c; k } in
      let legacy =
        let rng = Rng.create seed in
        let assignment = Topology.generate Topology.Shared_core ~global_labels:true rng spec in
        let big_c = Assignment.num_channels assignment in
        let r = Seq_scan.run ~source:0 ~assignment ~rng ~max_slots:(8 * big_c) () in
        (r.Seq_scan.completed_at, r.Seq_scan.slots_run, r.Seq_scan.informed_count)
      in
      let registry =
        let rng = Rng.create seed in
        let assignment = Topology.generate Topology.Shared_core ~global_labels:true rng spec in
        let s = run_registry ~name:"seq_scan" ~k ~assignment ~rng () in
        (s.Protocol.completed_at, s.Protocol.slots_run, detail_int s "informed_count")
      in
      let lc, ls, li = legacy and rc, rs, ri = registry in
      Alcotest.(check (option int)) "completed_at" lc rc;
      Alcotest.(check int) "slots_run" ls rs;
      Alcotest.(check int) "informed_count" li ri)
    seeds

let test_deterministic_parity () =
  List.iter
    (fun seed ->
      let n = 8 and c = 4 and k = 2 in
      let spec = { Topology.n; c; k } in
      let budget ~assignment =
        let big_c = Assignment.num_channels assignment in
        let p = Deterministic.smallest_prime_geq big_c in
        max 1
          (int_of_float
             (Float.ceil (8.0 *. float_of_int (3 * p) *. Complexity.lg (float_of_int n))))
      in
      let legacy =
        let rng = Rng.create seed in
        let assignment = Topology.generate Topology.Shared_core rng spec in
        Deterministic.broadcast ~make_schedule:Deterministic.jump_stay ~source:0
          ~assignment ~rng ~max_slots:(budget ~assignment) ()
      in
      let registry =
        let rng = Rng.create seed in
        let assignment = Topology.generate Topology.Shared_core rng spec in
        let s = run_registry ~name:"deterministic" ~k ~assignment ~rng () in
        s.Protocol.completed_at
      in
      Alcotest.(check (option int)) (Printf.sprintf "seed %d" seed) legacy registry)
    seeds

(* ---- every registry entry: faults + trace + check, and byte-identical
   traces at any job count ---- *)

let trial_trace ~name ~with_faults rng =
  let n = 12 and c = 6 and k = 2 in
  let spec = { Topology.n; c; k } in
  let assignment = Topology.generate Topology.Shared_plus_random rng spec in
  let tr = Trace.create () in
  let faults =
    if with_faults then Some (Faults.spare (Faults.random_naps ~seed:11L ~rate:0.03) ~node:0)
    else None
  in
  ignore (run_registry ?faults ~trace:tr ~name ~k ~assignment ~rng ());
  tr

let test_jobs_determinism () =
  List.iter
    (fun name ->
      let run_at jobs =
        Trials.run_jobs ~jobs ~trials:2 ~seed:3 (fun rng ->
            Trace.to_jsonl (trial_trace ~name ~with_faults:true rng))
      in
      let j1 = run_at 1 and j2 = run_at 2 and j8 = run_at 8 in
      Alcotest.(check (array string)) (name ^ ": jobs 1 = jobs 2") j1 j2;
      Alcotest.(check (array string)) (name ^ ": jobs 1 = jobs 8") j1 j8)
    (Registry.names ())

let test_traces_check_clean () =
  List.iter
    (fun name ->
      let rng = Rng.create 4 in
      let tr = trial_trace ~name ~with_faults:false rng in
      match Trace.Check.all tr with
      | [] -> ()
      | violations ->
          Alcotest.failf "%s: %d trace invariant violation(s), first: %s" name
            (List.length violations)
            (Format.asprintf "%a" Trace.Check.pp_violation (List.hd violations)))
    (Registry.names ())

let test_faulty_run_all_protocols () =
  (* Under faults every protocol must still run to a bounded summary (no
     exception, sane coverage); completion is not required. *)
  List.iter
    (fun name ->
      let rng = Rng.create 9 in
      let n = 12 and c = 6 and k = 2 in
      let spec = { Topology.n; c; k } in
      let assignment = Topology.generate Topology.Shared_plus_random rng spec in
      let faults = Faults.spare (Faults.random_naps ~seed:13L ~rate:0.05) ~node:0 in
      let s = run_registry ~faults ~name ~k ~assignment ~rng () in
      Alcotest.(check bool)
        (name ^ ": coverage in [0,1]")
        true
        (s.Protocol.coverage >= 0.0 && s.Protocol.coverage <= 1.0))
    (Registry.names ())

let test_soa_backend_sweep () =
  (* The registry audit on the soa backend: every entry that supports it
     (the eight machines and cogcast) runs sharded under faults and
     matches its engine summary byte-for-byte; the of_run multi-phase
     entries reject it by name. The deeper shard/strategy/trace matrix —
     cogcast_soa included — lives in test/test_soa.ml. *)
  let module Runner = Crn_radio.Runner in
  let module Json = Crn_stats.Json in
  let n = 24 and c = 6 and k = 2 in
  let summary name backend shards =
    let rng = Rng.create 11 in
    let assignment =
      Topology.generate Topology.Shared_plus_random rng { Topology.n; c; k }
    in
    let faults = Faults.random_naps ~seed:17L ~rate:0.05 in
    let s =
      Protocol.run (Registry.find_exn name)
        (Protocol.env ~faults ~backend ~shards ~k
           ~availability:(Dynamic.static assignment)
           ~rng:(Rng.create 12) ())
    in
    Json.to_string (Protocol.summary_json s)
  in
  let soa = Runner.Soa { shards = 1; dense_channel_limit = None } in
  List.iter
    (fun name ->
      let engine = summary name Runner.Engine 1 in
      Alcotest.(check string) (name ^ ": soa shards=2 = engine") engine
        (summary name soa 2))
    ("cogcast" :: Registry.machine_names ());
  List.iter
    (fun name ->
      match summary name soa 2 with
      | exception Invalid_argument msg ->
          Alcotest.(check bool)
            (name ^ ": rejection names the protocol")
            true
            (String.length msg >= String.length name
            && String.sub msg 0 (String.length name) = name)
      | _ -> Alcotest.failf "%s accepted the soa backend" name)
    [ "cogcomp"; "cogcomp_robust" ]

(* ---- registry lookup ---- *)

let test_registry_lookup () =
  Alcotest.(check int) "twelve entries" 12 (List.length Registry.all);
  let names = Registry.names () in
  Alcotest.(check int)
    "names unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  (match Registry.find "COGCAST" with
  | Some p -> Alcotest.(check string) "case-insensitive" "cogcast" (Protocol.name p)
  | None -> Alcotest.fail "COGCAST not found");
  (match Registry.find "cogcomp-robust" with
  | Some p ->
      Alcotest.(check string) "hyphen normalization" "cogcomp_robust" (Protocol.name p)
  | None -> Alcotest.fail "cogcomp-robust not found");
  Alcotest.(check bool) "unknown name" true (Registry.find "no_such_protocol" = None)

let () =
  Alcotest.run "proto"
    [
      ( "differential",
        [
          Alcotest.test_case "cogcast registry = direct" `Quick test_cogcast_differential;
          Alcotest.test_case "cogcomp registry = direct" `Quick test_cogcomp_differential;
          Alcotest.test_case "cogcomp_robust registry = direct (faulty)" `Quick
            test_cogcomp_robust_differential;
        ] );
      ( "baseline ports",
        [
          Alcotest.test_case "broadcast_baseline parity" `Quick
            test_broadcast_baseline_parity;
          Alcotest.test_case "aggregation_baseline parity" `Quick
            test_aggregation_baseline_parity;
          Alcotest.test_case "random_hop = pure loop" `Quick
            test_random_hop_matches_pure_loop;
          Alcotest.test_case "seq_scan parity" `Quick test_seq_scan_parity;
          Alcotest.test_case "deterministic parity" `Quick test_deterministic_parity;
        ] );
      ( "uniform harness",
        [
          Alcotest.test_case "byte-identical traces at jobs 1/2/8" `Quick
            test_jobs_determinism;
          Alcotest.test_case "fault-free traces pass Check.all" `Quick
            test_traces_check_clean;
          Alcotest.test_case "every protocol survives faults" `Quick
            test_faulty_run_all_protocols;
          Alcotest.test_case "registry audit on the soa backend" `Quick
            test_soa_backend_sweep;
        ] );
      ("registry", [ Alcotest.test_case "lookup" `Quick test_registry_lookup ]);
    ]
