(* A minimal property-based testing harness with greedy shrinking, shared by
   the test executables.

   A property returns [None] on success and [Some reason] on failure. When a
   random sample fails, the harness walks the generator's shrink candidates
   greedily — the first candidate that still fails becomes the new
   counterexample — until no candidate fails or the step budget runs out,
   then reports the minimal counterexample through Alcotest.

   The base seed honours CRN_TEST_SEED so CI can re-run the whole suite
   under a different randomness schedule without a rebuild. *)

module Rng = Crn_prng.Rng

type 'a gen = {
  sample : Rng.t -> 'a;
  shrink : 'a -> 'a Seq.t;
  print : 'a -> string;
}

let env_seed () =
  match Option.bind (Sys.getenv_opt "CRN_TEST_SEED") int_of_string_opt with
  | Some v -> v
  | None -> 1

(* Integers in [lo, hi], shrinking toward [lo] by binary chop. *)
let int_range lo hi =
  if lo > hi then invalid_arg "Prop.int_range: empty range";
  {
    sample = (fun rng -> lo + Rng.int rng (hi - lo + 1));
    shrink =
      (fun x ->
        let rec steps d () =
          if d <= 0 then Seq.Nil else Seq.Cons (x - d, steps (d / 2))
        in
        if x <= lo then Seq.empty else steps (x - lo));
    print = string_of_int;
  }

(* Sublists of [xs] obtained by removing one element — the standard list
   shrinker for "fewer elements still fail" arguments. *)
let shrink_list_drop1 xs =
  let n = List.length xs in
  Seq.init n (fun i -> List.filteri (fun j _ -> j <> i) xs)

let max_shrink_steps = 1_000

(* Greedy minimization: from a failing [x], repeatedly move to the first
   shrink candidate that still fails. Returns the minimal counterexample,
   its failure reason, and the number of shrink steps taken. *)
let minimize gen prop x reason =
  let shrunk = ref x and why = ref reason in
  let steps = ref 0 and improving = ref true in
  while !improving && !steps < max_shrink_steps do
    match
      Seq.find_map
        (fun y -> match prop y with Some m -> Some (y, m) | None -> None)
        (gen.shrink !shrunk)
    with
    | Some (y, m) ->
        shrunk := y;
        why := m;
        incr steps
    | None -> improving := false
  done;
  (!shrunk, !why, !steps)

let check ?(count = 200) ?seed ~name gen prop =
  let seed = match seed with Some s -> s | None -> env_seed () in
  let rng = Rng.create seed in
  for i = 1 to count do
    let x = gen.sample rng in
    match prop x with
    | None -> ()
    | Some reason ->
        let shrunk, why, steps = minimize gen prop x reason in
        Alcotest.failf
          "%s: falsified on sample %d/%d (seed %d)\noriginal: %s\nshrunk (%d steps): %s\nreason: %s"
          name i count seed (gen.print x) steps (gen.print shrunk) why
  done
