(* Sustained-traffic workload tests: the open-loop arrival generator, the
   multi-rumor gossip and push-sum machines, the new rumor-causality trace
   checker, and the two workload invariants as properties with shrinking —
   push-sum mass conservation (crash faults included) and rumor latency
   dominating hop distance. *)

module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Dynamic = Crn_channel.Dynamic
module Trace = Crn_radio.Trace
module Faults = Crn_radio.Faults
module Json = Crn_stats.Json
module Protocol = Crn_proto.Protocol
module Registry = Crn_proto.Registry
module Arrivals = Crn_workload.Arrivals
module Gossip = Crn_workload.Gossip

let seed = Prop.env_seed ()
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- the load generator ------------------------------------------------ *)

let test_arrivals_deterministic () =
  let gen s =
    Arrivals.generate ~rng:(Rng.create s) ~law:Arrivals.Poisson ~rate:0.3 ~n:16
      ~rumors:20
  in
  check "same seed, same schedule" true (gen seed = gen seed);
  let a = gen seed in
  check_int "rumor count" 20 (Array.length a);
  Array.iteri
    (fun i arr ->
      check_int "rumor ids consecutive" i arr.Arrivals.rumor;
      check "origin in range" true (arr.Arrivals.origin >= 0 && arr.Arrivals.origin < 16);
      check "slot nonnegative" true (arr.Arrivals.slot >= 0);
      if i > 0 then
        check "slots non-decreasing" true (arr.Arrivals.slot >= a.(i - 1).Arrivals.slot))
    a

let test_arrivals_uniform_spacing () =
  let a =
    Arrivals.generate ~rng:(Rng.create seed) ~law:Arrivals.Uniform ~rate:0.25 ~n:4
      ~rumors:8
  in
  (* Rate 1/4: arrival i lands exactly at slot 4 * (i + 1). *)
  Array.iteri
    (fun i arr -> check_int "uniform slot" (4 * (i + 1)) arr.Arrivals.slot)
    a;
  check_int "span" 32 (Arrivals.span a);
  let queues = Arrivals.by_origin ~n:4 a in
  check_int "by_origin partitions everything" 8
    (Array.fold_left (fun acc q -> acc + List.length q) 0 queues)

(* ---- environments ------------------------------------------------------ *)

let mk_env ?faults ?trace ?load ~n ~c ~k rng =
  let assignment = Topology.generate Topology.Shared_plus_random rng { Topology.n; c; k } in
  Protocol.env ?faults ?trace ?load ~k ~availability:(Dynamic.static assignment) ~rng ()

let detail_float key (s : Protocol.summary) =
  match Json.member key s.Protocol.detail with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> Alcotest.failf "summary detail has no numeric %S" key

let detail_int key (s : Protocol.summary) =
  match Json.member key s.Protocol.detail with
  | Some (Json.Int i) -> i
  | _ -> Alcotest.failf "summary detail has no int %S" key

(* ---- per-rumor termination counters ------------------------------------ *)

let run_gossip_machine ~hear_limit ~trial =
  let rng = Rng.create (seed + trial) in
  let n = 12 and c = 6 and k = 2 in
  let assignment = Topology.generate Topology.Shared_plus_random rng { Topology.n; c; k } in
  let availability = Dynamic.static assignment in
  let arrivals =
    Arrivals.generate ~rng:(Rng.split rng) ~law:Arrivals.Poisson ~rate:0.3 ~n
      ~rumors:3
  in
  let m = Gossip.machine ~hear_limit ~arrivals ~availability ~rng () in
  let nodes =
    Array.init n (fun v ->
        Crn_radio.Engine.node ~id:v
          ~decide:(fun ~slot -> m.Gossip.decide ~node:v ~slot)
          ~feedback:(fun ~slot fb -> m.Gossip.feedback ~node:v ~slot fb))
  in
  let outcome =
    Crn_radio.Engine.run
      ~stop:(fun ~slot:_ -> m.Gossip.finished ())
      ~availability ~rng ~nodes ~max_slots:4_000 ()
  in
  m.Gossip.snapshot ~slots_run:outcome.Crn_radio.Engine.slots_run

let test_hear_limit_retires () =
  (* At the tightest counter every node retires each rumor after one
     further hearing; with an effectively infinite counter nothing ever
     retires. Completion must survive both settings — retirement throttles
     chatter, the simulator's completion detection does not depend on it. *)
  let tight = run_gossip_machine ~hear_limit:1 ~trial:0 in
  check "tight counter retires pairs" true (tight.Gossip.retired > 0);
  check_int "tight counter still completes" tight.Gossip.total_rumors
    tight.Gossip.completed;
  let loose = run_gossip_machine ~hear_limit:1_000_000 ~trial:0 in
  check_int "loose counter retires nothing" 0 loose.Gossip.retired;
  check_int "loose counter completes" loose.Gossip.total_rumors loose.Gossip.completed

let test_default_hear_limit () =
  check_int "n=2" 12 (Gossip.default_hear_limit ~n:2);
  check_int "n=16" 24 (Gossip.default_hear_limit ~n:16);
  check "monotone in n" true
    (Gossip.default_hear_limit ~n:1024 >= Gossip.default_hear_limit ~n:16)

(* ---- gossip end-to-end through the registry ---------------------------- *)

let test_gossip_registry_run () =
  let proto = Registry.find_exn "gossip" in
  let load = { Protocol.rate = 0.3; arrivals = Protocol.Poisson; rumors = 5 } in
  let tr = Trace.create () in
  let s = Protocol.run proto (mk_env ~trace:tr ~load ~n:16 ~c:6 ~k:2 (Rng.create seed)) in
  check "completed" true s.Protocol.completed;
  check_int "all rumors injected" 5 (detail_int "injected" s);
  check_int "all rumors completed" 5 (detail_int "completed_rumors" s);
  check_int "every non-origin node learned every rumor" (5 * 15)
    (detail_int "deliveries" s);
  check "throughput positive" true (detail_float "throughput" s > 0.0);
  check "latency percentiles ordered" true
    (detail_float "latency_p50" s <= detail_float "latency_p95" s
    && detail_float "latency_p95" s <= detail_float "latency_p99" s);
  (match Trace.Check.all tr with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "gossip trace not clean: %s"
        (Format.asprintf "%a" Trace.Check.pp_violation v));
  (* The trace carries the full rumor story. *)
  let count f = Trace.fold (fun acc ev -> if f ev then acc + 1 else acc) 0 tr in
  check_int "Injected events" 5 (count (function Trace.Injected _ -> true | _ -> false));
  check_int "Rumor_done events" 5
    (count (function Trace.Rumor_done _ -> true | _ -> false));
  check_int "Rumor_delivered events" (5 * 15)
    (count (function Trace.Rumor_delivered _ -> true | _ -> false))

(* ---- push-sum end-to-end ----------------------------------------------- *)

let test_push_sum_registry_run () =
  let proto = Registry.find_exn "push_sum" in
  let load = { Protocol.rate = 0.1; arrivals = Protocol.Poisson; rumors = 3 } in
  let s = Protocol.run proto (mk_env ~load ~n:16 ~c:6 ~k:2 (Rng.create (seed + 1))) in
  check "completed" true s.Protocol.completed;
  check_int "arrivals injected" 3 (detail_int "injected" s);
  check "no mass lost fault-free" true (detail_float "lost_mass" s = 0.0);
  check "conservation drift tiny" true (detail_float "max_drift" s <= 1e-6);
  check "estimates within tolerance" true (detail_float "estimate_error" s <= 0.02)

(* ---- property: push-sum mass conservation, crash faults included ------- *)

type ps_case = { ps_n : int; ps_c : int; ps_seed : int; crashes : (int * int) list }

let ps_gen =
  {
    Prop.sample =
      (fun rng ->
        let ps_n = 4 + Rng.int rng 16 in
        let ps_c = 3 + Rng.int rng 6 in
        let ps_seed = Rng.int rng 10_000 in
        let crashes =
          List.init (Rng.int rng 4) (fun _ ->
              (Rng.int rng ps_n, Rng.int rng 60))
        in
        { ps_n; ps_c; ps_seed; crashes });
    shrink =
      (fun cs ->
        let fewer_crashes =
          Seq.map (fun crashes -> { cs with crashes })
            (Prop.shrink_list_drop1 cs.crashes)
        in
        let smaller_n =
          if cs.ps_n > 4 then Seq.return { cs with ps_n = cs.ps_n - 1 }
          else Seq.empty
        in
        Seq.append fewer_crashes smaller_n);
    print =
      (fun cs ->
        Printf.sprintf "{n=%d c=%d seed=%d crashes=[%s]}" cs.ps_n cs.ps_c cs.ps_seed
          (String.concat "; "
             (List.map (fun (v, s) -> Printf.sprintf "%d@%d" v s) cs.crashes)));
  }

let test_prop_push_sum_conservation () =
  let proto = Registry.find_exn "push_sum" in
  Prop.check ~count:40 ~name:"push-sum conserves mass" ps_gen (fun cs ->
      let faults =
        match cs.crashes with
        | [] -> None
        | l ->
            Some
              (List.fold_left
                 (fun acc (node, from_slot) ->
                   Faults.union acc (Faults.crash ~node ~from_slot))
                 Faults.none l)
      in
      let load = { Protocol.rate = 0.15; arrivals = Protocol.Poisson; rumors = 2 } in
      let s =
        Protocol.run proto
          (mk_env ?faults ~load ~n:cs.ps_n ~c:cs.ps_c ~k:2 (Rng.create cs.ps_seed))
      in
      let drift = detail_float "max_drift" s in
      let lost = detail_float "lost_mass" s in
      if drift > 1e-6 then
        Some (Printf.sprintf "conservation drift %.3e exceeds 1e-6" drift)
      else if cs.crashes = [] && lost <> 0.0 then
        Some (Printf.sprintf "lost %.3e mass without any fault" lost)
      else if lost < 0.0 then Some (Printf.sprintf "negative lost mass %.3e" lost)
      else None)

(* ---- property: rumor latency dominates hop distance -------------------- *)

type g_case = { g_n : int; g_c : int; g_seed : int }

let g_gen =
  {
    Prop.sample =
      (fun rng ->
        {
          g_n = 3 + Rng.int rng 20;
          g_c = 3 + Rng.int rng 6;
          g_seed = Rng.int rng 10_000;
        });
    shrink =
      (fun cs ->
        if cs.g_n > 3 then Seq.return { cs with g_n = cs.g_n - 1 } else Seq.empty);
    print =
      (fun cs -> Printf.sprintf "{n=%d c=%d seed=%d}" cs.g_n cs.g_c cs.g_seed);
  }

let test_prop_gossip_latency_vs_hops () =
  let proto = Registry.find_exn "gossip" in
  Prop.check ~count:40 ~name:"rumor latency >= hop distance" g_gen (fun cs ->
      let load = { Protocol.rate = 0.25; arrivals = Protocol.Poisson; rumors = 3 } in
      let tr = Trace.create () in
      ignore
        (Protocol.run proto
           (mk_env ~trace:tr ~load ~n:cs.g_n ~c:cs.g_c ~k:2 (Rng.create cs.g_seed)));
      (* Depth of each (rumor, node) in the delivery forest; origins are at
         depth 0. The trace is causally ordered, so parents appear first. *)
      let injected : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
      let depth : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
      let bad = ref None in
      Trace.iter
        (fun ev ->
          match ev with
          | Trace.Injected { slot; rumor; node } ->
              Hashtbl.replace injected rumor (slot, node);
              Hashtbl.replace depth (rumor, node) 0
          | Trace.Rumor_delivered { slot; rumor; node; parent } when !bad = None -> (
              match
                (Hashtbl.find_opt injected rumor, Hashtbl.find_opt depth (rumor, parent))
              with
              | Some (inj_slot, _), Some pd ->
                  let d = pd + 1 in
                  Hashtbl.replace depth (rumor, node) d;
                  let latency = slot - inj_slot + 1 in
                  if latency < d then
                    bad :=
                      Some
                        (Printf.sprintf
                           "rumor %d at node %d: latency %d < hop depth %d" rumor
                           node latency d)
              | _ ->
                  bad :=
                    Some
                      (Printf.sprintf "rumor %d delivered out of causal order" rumor))
          | _ -> ())
        tr;
      !bad)

(* ---- mutation: the rumor-causality checker must fire ------------------- *)

let healthy_gossip_trace () =
  let proto = Registry.find_exn "gossip" in
  let load = { Protocol.rate = 0.3; arrivals = Protocol.Poisson; rumors = 3 } in
  let tr = Trace.create () in
  ignore (Protocol.run proto (mk_env ~trace:tr ~load ~n:12 ~c:6 ~k:2 (Rng.create (seed + 7))));
  (match Trace.Check.all tr with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "mutation baseline not clean: %s"
        (Format.asprintf "%a" Trace.Check.pp_violation v));
  tr

let expect_fires ~what mutated =
  match Trace.Check.rumor_causality (Trace.of_list mutated) with
  | [] -> Alcotest.failf "rumor-causality checker accepted %s" what
  | _ -> ()

let test_mutation_delivery_before_injection () =
  let events = Trace.to_list (healthy_gossip_trace ()) in
  let done_ = ref false in
  let mutated =
    List.map
      (fun ev ->
        match ev with
        | Trace.Rumor_delivered r when not !done_ ->
            done_ := true;
            Trace.Rumor_delivered { r with slot = -1 }
        | _ -> ev)
      events
  in
  if not !done_ then Alcotest.fail "no Rumor_delivered to corrupt";
  expect_fires ~what:"a delivery predating its injection" mutated

let test_mutation_duplicate_delivery () =
  let events = Trace.to_list (healthy_gossip_trace ()) in
  let done_ = ref false in
  let mutated =
    List.concat_map
      (fun ev ->
        match ev with
        | Trace.Rumor_delivered r when not !done_ ->
            done_ := true;
            [ ev; Trace.Rumor_delivered { r with slot = r.slot + 2 } ]
        | _ -> [ ev ])
      events
  in
  if not !done_ then Alcotest.fail "no Rumor_delivered to duplicate";
  expect_fires ~what:"a node learning the same rumor twice" mutated

let test_mutation_self_parent () =
  let events = Trace.to_list (healthy_gossip_trace ()) in
  let done_ = ref false in
  let mutated =
    List.map
      (fun ev ->
        match ev with
        | Trace.Rumor_delivered r when not !done_ ->
            done_ := true;
            Trace.Rumor_delivered { r with parent = r.node }
        | _ -> ev)
      events
  in
  expect_fires ~what:"a self-parented delivery" mutated

let test_mutation_done_without_coverage () =
  (* Dropping one delivery must invalidate that rumor's Rumor_done. *)
  let events = Trace.to_list (healthy_gossip_trace ()) in
  let dropped = ref None in
  let mutated =
    List.filter
      (fun ev ->
        match ev with
        | Trace.Rumor_delivered { rumor; _ } when !dropped = None ->
            dropped := Some rumor;
            false
        | _ -> true)
      events
  in
  if !dropped = None then Alcotest.fail "no Rumor_delivered to drop";
  expect_fires ~what:"a Rumor_done with a missing delivery" mutated

let test_mutation_done_uninjected () =
  let events = Trace.to_list (healthy_gossip_trace ()) in
  let mutated = events @ [ Trace.Rumor_done { slot = 10_000; rumor = 9_999 } ] in
  expect_fires ~what:"a Rumor_done for a rumor never injected" mutated

let test_rumor_events_roundtrip () =
  let events =
    [
      Trace.Injected { slot = 3; rumor = 1; node = 4 };
      Trace.Rumor_delivered { slot = 5; rumor = 1; node = 2; parent = 4 };
      Trace.Rumor_done { slot = 9; rumor = 1 };
    ]
  in
  List.iter
    (fun ev ->
      match Trace.event_of_json (Trace.json_of_event ev) with
      | Some ev' -> check "roundtrip" true (ev = ev')
      | None -> Alcotest.fail "rumor event did not survive JSON roundtrip")
    events

let () =
  Alcotest.run "workload"
    [
      ( "arrivals",
        [
          Alcotest.test_case "deterministic per seed" `Quick test_arrivals_deterministic;
          Alcotest.test_case "uniform spacing exact" `Quick test_arrivals_uniform_spacing;
        ] );
      ( "gossip",
        [
          Alcotest.test_case "termination counters retire" `Quick test_hear_limit_retires;
          Alcotest.test_case "default hear limit" `Quick test_default_hear_limit;
          Alcotest.test_case "registry run end-to-end" `Quick test_gossip_registry_run;
        ] );
      ( "push-sum",
        [
          Alcotest.test_case "registry run end-to-end" `Quick test_push_sum_registry_run;
        ] );
      ( "properties",
        [
          Alcotest.test_case "mass conservation under crashes" `Slow
            test_prop_push_sum_conservation;
          Alcotest.test_case "latency dominates hop distance" `Slow
            test_prop_gossip_latency_vs_hops;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "delivery before injection" `Quick
            test_mutation_delivery_before_injection;
          Alcotest.test_case "duplicate delivery" `Quick test_mutation_duplicate_delivery;
          Alcotest.test_case "self parent" `Quick test_mutation_self_parent;
          Alcotest.test_case "done without coverage" `Quick
            test_mutation_done_without_coverage;
          Alcotest.test_case "done without injection" `Quick test_mutation_done_uninjected;
          Alcotest.test_case "rumor events JSON roundtrip" `Quick
            test_rumor_events_roundtrip;
        ] );
    ]
