(* Property-based tests (with shrinking, via the Prop harness) for the two
   combinatorial foundations everything else leans on:

   - Topology generators must deliver their advertised minimum pairwise
     overlap k and a well-formed local-to-global labeling, for every
     topology kind over random (n, c, k) instances.
   - Bitset must satisfy the set-algebra laws its users (assignment
     validation, overlap counting) assume. *)

module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Assignment = Crn_channel.Assignment
module Bitset = Crn_channel.Bitset

(* --- topology instances ------------------------------------------------ *)

type topo_case = { kind : Topology.kind; n : int; c : int; k : int; tseed : int }

let topo_gen =
  let n_gen = Prop.int_range 1 40 in
  let c_gen = Prop.int_range 1 12 in
  let seed_gen = Prop.int_range 0 1_000_000 in
  {
    Prop.sample =
      (fun rng ->
        let kind = Rng.pick_list rng Topology.all_kinds in
        let c = c_gen.Prop.sample rng in
        {
          kind;
          n = n_gen.Prop.sample rng;
          c;
          k = 1 + Rng.int rng c;
          tseed = seed_gen.Prop.sample rng;
        });
    Prop.shrink =
      (fun t ->
        (* Shrink each numeric field independently; keep k <= c by clamping
           and the kind and seed fixed (they are part of the reproduction
           recipe, not of the size). *)
        Seq.append
          (Seq.map (fun n -> { t with n }) (n_gen.Prop.shrink t.n))
          (Seq.append
             (Seq.map
                (fun c -> { t with c; k = min t.k c })
                (c_gen.Prop.shrink t.c))
             (Seq.map (fun k -> { t with k })
                ((Prop.int_range 1 t.c).Prop.shrink t.k))));
    Prop.print =
      (fun t ->
        Printf.sprintf "{kind=%s; n=%d; c=%d; k=%d; seed=%d}"
          (Topology.kind_name t.kind) t.n t.c t.k t.tseed);
  }

let prop_topology_overlap t =
  let rng = Rng.create t.tseed in
  let a = Topology.generate t.kind rng { Topology.n = t.n; c = t.c; k = t.k } in
  if Assignment.num_nodes a <> t.n then
    Some (Printf.sprintf "num_nodes = %d" (Assignment.num_nodes a))
  else if Assignment.channels_per_node a <> t.c then
    Some (Printf.sprintf "channels_per_node = %d" (Assignment.channels_per_node a))
  else if t.n >= 2 && Assignment.min_pairwise_overlap a < t.k then
    Some
      (Printf.sprintf "min pairwise overlap %d < k" (Assignment.min_pairwise_overlap a))
  else None

let prop_topology_labels t =
  let rng = Rng.create t.tseed in
  let a = Topology.generate t.kind rng { Topology.n = t.n; c = t.c; k = t.k } in
  let bad = ref None in
  let cap = Assignment.num_channels a in
  for v = 0 to t.n - 1 do
    let seen = Hashtbl.create t.c in
    for label = 0 to t.c - 1 do
      let g = Assignment.global_of_local a ~node:v ~label in
      if g < 0 || g >= cap then
        bad := Some (Printf.sprintf "node %d label %d -> channel %d out of range" v label g)
      else if Hashtbl.mem seen g then
        bad := Some (Printf.sprintf "node %d maps two labels to channel %d" v g)
      else begin
        Hashtbl.add seen g ();
        match Assignment.local_of_global a ~node:v ~channel:g with
        | Some l when l = label -> ()
        | Some l ->
            bad :=
              Some
                (Printf.sprintf "node %d: local_of_global inverts label %d to %d" v
                   label l)
        | None ->
            bad :=
              Some (Printf.sprintf "node %d: channel %d not found by local_of_global" v g)
      end
    done
  done;
  !bad

(* --- bitset instances --------------------------------------------------- *)

type bitset_case = { cap : int; xs : int list; ys : int list }

let bitset_gen =
  let cap_gen = Prop.int_range 1 200 in
  let subset rng cap =
    (* Expected density 1/4, covering empty through dense sets across the
       word boundary at 62 bits. *)
    List.filter (fun _ -> Rng.int rng 4 = 0) (List.init cap Fun.id)
  in
  {
    Prop.sample =
      (fun rng ->
        let cap = cap_gen.Prop.sample rng in
        { cap; xs = subset rng cap; ys = subset rng cap });
    Prop.shrink =
      (fun t ->
        Seq.append
          (Seq.map (fun xs -> { t with xs }) (Prop.shrink_list_drop1 t.xs))
          (Seq.map (fun ys -> { t with ys }) (Prop.shrink_list_drop1 t.ys)));
    Prop.print =
      (fun t ->
        Printf.sprintf "{cap=%d; xs=[%s]; ys=[%s]}" t.cap
          (String.concat ";" (List.map string_of_int t.xs))
          (String.concat ";" (List.map string_of_int t.ys)));
  }

let prop_bitset_laws t =
  let a = Bitset.of_array t.cap (Array.of_list t.xs) in
  let b = Bitset.of_array t.cap (Array.of_list t.ys) in
  let module S = Set.Make (Int) in
  let sa = S.of_list t.xs and sb = S.of_list t.ys in
  let expect name got want =
    if got <> want then Some (Printf.sprintf "%s: got %d, want %d" name got want)
    else None
  in
  let checks =
    [
      (fun () -> expect "cardinal a" (Bitset.cardinal a) (S.cardinal sa));
      (fun () ->
        expect "inter_cardinal" (Bitset.inter_cardinal a b)
          (S.cardinal (S.inter sa sb)));
      (fun () ->
        expect "cardinal (inter)" (Bitset.cardinal (Bitset.inter a b))
          (S.cardinal (S.inter sa sb)));
      (fun () ->
        expect "cardinal (union)" (Bitset.cardinal (Bitset.union a b))
          (S.cardinal (S.union sa sb)));
      (fun () ->
        expect "cardinal (diff)" (Bitset.cardinal (Bitset.diff a b))
          (S.cardinal (S.diff sa sb)));
      (fun () ->
        if Bitset.elements (Bitset.union a b) <> S.elements (S.union sa sb) then
          Some "union elements mismatch"
        else None);
      (fun () ->
        if Bitset.elements (Bitset.diff a b) <> S.elements (S.diff sa sb) then
          Some "diff elements mismatch"
        else None);
      (fun () ->
        if not (Bitset.equal (Bitset.inter a b) (Bitset.inter b a)) then
          Some "inter not commutative"
        else None);
      (fun () ->
        (* De Morgan on the carried sets: a \ (a \ b) = a ∩ b. *)
        if not (Bitset.equal (Bitset.diff a (Bitset.diff a b)) (Bitset.inter a b))
        then Some "a \\ (a \\ b) <> a ∩ b"
        else None);
      (fun () ->
        if Bitset.is_empty a <> S.is_empty sa then Some "is_empty mismatch" else None);
      (fun () ->
        if Array.to_list (Bitset.to_array a) <> S.elements sa then
          Some "to_array not sorted members"
        else None);
      (fun () ->
        (* mem agrees pointwise over the whole capacity. *)
        let bad = ref None in
        for i = 0 to t.cap - 1 do
          if Bitset.mem a i <> S.mem i sa then
            bad := Some (Printf.sprintf "mem %d mismatch" i)
        done;
        !bad);
    ]
  in
  List.fold_left
    (fun acc check -> match acc with Some _ -> acc | None -> check ())
    None checks

let prop_bitset_mutation t =
  (* set/clear round-trip on a copy; the original must be unaffected. *)
  let a = Bitset.of_array t.cap (Array.of_list t.xs) in
  let before = Bitset.elements a in
  let c = Bitset.copy a in
  List.iter (fun i -> Bitset.clear c i) t.xs;
  if not (Bitset.is_empty c) then Some "clearing every member left residue"
  else if Bitset.elements a <> before then Some "copy shares state with original"
  else None

(* --- fault tolerance ----------------------------------------------------- *)

module Faults = Crn_radio.Faults
module Cogcast = Crn_core.Cogcast
module Cogcomp_robust = Crn_core.Cogcomp_robust
module Aggregate = Crn_core.Aggregate

type fault_case = { fkind : Topology.kind; fn : int; fc : int; fk : int; fseed : int; rate : float }

let fault_case_gen =
  let n_gen = Prop.int_range 4 24 in
  let c_gen = Prop.int_range 2 8 in
  let seed_gen = Prop.int_range 0 1_000_000 in
  let pct_gen = Prop.int_range 0 20 in
  {
    Prop.sample =
      (fun rng ->
        let fc = c_gen.Prop.sample rng in
        {
          fkind = Rng.pick_list rng Topology.all_kinds;
          fn = n_gen.Prop.sample rng;
          fc;
          fk = 1 + Rng.int rng fc;
          fseed = seed_gen.Prop.sample rng;
          rate = float_of_int (pct_gen.Prop.sample rng) /. 100.;
        });
    Prop.shrink =
      (fun t ->
        Seq.append
          (Seq.map (fun fn -> { t with fn }) (n_gen.Prop.shrink t.fn))
          (Seq.map
             (fun pct -> { t with rate = float_of_int pct /. 100. })
             (pct_gen.Prop.shrink (int_of_float (t.rate *. 100.)))));
    Prop.print =
      (fun t ->
        Printf.sprintf "{kind=%s; n=%d; c=%d; k=%d; seed=%d; rate=%.2f}"
          (Topology.kind_name t.fkind) t.fn t.fc t.fk t.fseed t.rate);
  }

let naps_for t ~salt =
  Faults.spare
    (Faults.random_naps ~seed:(Int64.of_int ((t.fseed * 31) + salt)) ~rate:t.rate)
    ~node:0

(* COGCAST's obliviousness claim (§1), quantified: with every node napping
   independently at rate <= 0.2 (the source spared so the broadcast can
   start), the static protocol still informs everyone within 4x the
   fault-free slot budget. *)
let prop_cogcast_completes_under_naps t =
  let rng = Rng.create t.fseed in
  let assignment =
    Topology.generate t.fkind rng { Topology.n = t.fn; c = t.fc; k = t.fk }
  in
  let r =
    Cogcast.run_static ~faults:(naps_for t ~salt:0) ~budget_factor:4.0 ~source:0
      ~assignment ~k:t.fk ~rng ()
  in
  if r.Cogcast.informed_count <> t.fn then
    Some
      (Printf.sprintf "informed %d of %d within 4x budget" r.Cogcast.informed_count
         t.fn)
  else None

let robust_mean_coverage t ~rate =
  let trials = 5 in
  let total = ref 0 in
  for i = 1 to trials do
    let rng = Rng.create (t.fseed + (31 * i)) in
    let assignment =
      Topology.generate t.fkind rng { Topology.n = t.fn; c = t.fc; k = t.fk }
    in
    let values = Array.init t.fn (fun v -> v + 1) in
    let faults = if rate = 0. then None else Some (naps_for { t with rate } ~salt:i) in
    let r =
      Cogcomp_robust.run ?faults ~monoid:Aggregate.sum ~values ~source:0 ~assignment
        ~k:t.fk ~rng ()
    in
    if rate = 0. && not r.Cogcomp_robust.complete then
      failwith (Printf.sprintf "fault-free robust run incomplete at n=%d" t.fn);
    total := !total + r.Cogcomp_robust.coverage
  done;
  float_of_int !total /. float_of_int trials

(* More faults never help: mean robust coverage over a fixed trial-seed
   ladder is non-increasing in the nap rate, up to sampling slack. At rate 0
   coverage is exactly n (the fault-free run is plain COGCOMP and completes). *)
let prop_robust_coverage_monotone t =
  let rates = [ 0.0; 0.05; 0.1; 0.2 ] in
  let covs = List.map (fun rate -> (rate, robust_mean_coverage t ~rate)) rates in
  let slack = (0.15 *. float_of_int t.fn) +. 1.0 in
  match covs with
  | (_, c0) :: rest ->
      if c0 <> float_of_int t.fn then
        Some (Printf.sprintf "rate 0: mean coverage %.2f <> n" c0)
      else
        let rec walk prev = function
          | [] -> None
          | (rate, c) :: tl ->
              if c > prev +. slack then
                Some
                  (Printf.sprintf
                     "coverage rose from %.2f to %.2f at rate %.2f (slack %.2f)" prev c
                     rate slack)
              else walk (Float.min prev c) tl
        in
        walk c0 rest
  | [] -> None

(* --- alcotest wiring ---------------------------------------------------- *)

let test_topology_overlap () =
  Prop.check ~count:300 ~name:"topology overlap >= k" topo_gen prop_topology_overlap

let test_topology_labels () =
  Prop.check ~count:150 ~name:"assignment labeling is injective and invertible"
    topo_gen prop_topology_labels

let test_bitset_laws () =
  Prop.check ~count:400 ~name:"bitset set-algebra laws" bitset_gen prop_bitset_laws

let test_bitset_mutation () =
  Prop.check ~count:200 ~name:"bitset copy/clear isolation" bitset_gen
    prop_bitset_mutation

(* Fixed literal seeds: these two sweep entire protocol runs per sample, so
   they assert a reproducible statement rather than a per-CI gamble under
   CRN_TEST_SEED reseeding. *)
let test_cogcast_under_naps () =
  Prop.check ~count:60 ~seed:7 ~name:"cogcast completes under naps <= 0.2"
    fault_case_gen prop_cogcast_completes_under_naps

let test_robust_coverage_monotone () =
  Prop.check ~count:10 ~seed:4407 ~name:"robust coverage monotone in fault rate"
    fault_case_gen prop_robust_coverage_monotone

let test_shrinker_minimizes () =
  (* The harness itself: a property failing for all n >= 7 must shrink any
     failing sample down to exactly the boundary 7. *)
  let gen = Prop.int_range 0 1000 in
  let prop n = if n >= 7 then Some "n >= 7" else None in
  List.iter
    (fun start ->
      let shrunk, _, _ = Prop.minimize gen prop start "n >= 7" in
      Alcotest.(check int) (Printf.sprintf "minimized from %d" start) 7 shrunk)
    [ 7; 8; 100; 873; 1000 ]

let () =
  Alcotest.run "prop"
    [
      ( "topology",
        [
          Alcotest.test_case "overlap >= k" `Quick test_topology_overlap;
          Alcotest.test_case "labels invertible" `Quick test_topology_labels;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "set-algebra laws" `Quick test_bitset_laws;
          Alcotest.test_case "copy/clear isolation" `Quick test_bitset_mutation;
        ] );
      ( "faults",
        [
          Alcotest.test_case "cogcast completes under naps" `Quick
            test_cogcast_under_naps;
          Alcotest.test_case "robust coverage monotone" `Quick
            test_robust_coverage_monotone;
        ] );
      ( "harness",
        [ Alcotest.test_case "shrinker minimizes" `Quick test_shrinker_minimizes ] );
    ]
