(* Determinism and differential-equivalence tests for the rewritten slot
   engines.

   Two claims are enforced here:

   1. Equivalence: the allocation-free {!Engine.run} / {!Emulation.run} are
      observationally identical to the list-based executable specifications
      in {!Reference} — same outcome structs and counters, same per-node
      feedback sequences, same metrics, byte-equal JSONL traces — over
      randomized topologies, jammers, faults, dynamic availabilities and
      early stops.

   2. Determinism: identical-seed runs produce byte-equal traces no matter
      how many domains the trial runner uses (--jobs 1/2/8) and no matter
      how often they are repeated, and channels are resolved in the
      documented canonical order (ascending global channel id). *)

module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Dynamic = Crn_channel.Dynamic
module Action = Crn_radio.Action
module Engine = Crn_radio.Engine
module Emulation = Crn_radio.Emulation
module Reference = Crn_radio.Reference
module Trace = Crn_radio.Trace
module Metrics = Crn_radio.Metrics
module Jammer = Crn_radio.Jammer
module Faults = Crn_radio.Faults
module Cogcast = Crn_core.Cogcast

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* A generic adversarial protocol: every node draws a label and a
   broadcast/listen coin from its own stream each slot, and folds every
   feedback it receives into an order-sensitive digest. Two engine runs
   behave identically iff the digests match (and the traces are
   byte-equal, which is also checked). *)

let mix d x = (d * 1000003) lxor x

let digest_feedback d = function
  | Action.Heard { sender; msg } -> mix (mix (mix d 1) sender) msg
  | Action.Silence -> mix d 2
  | Action.Won -> mix d 3
  | Action.Lost { winner; msg } -> mix (mix (mix d 4) winner) msg
  | Action.Jammed -> mix d 5
  | Action.No_winner -> mix d 6

let make_nodes ~seed ~n ~c ~digests =
  let node_rngs = Rng.split_n (Rng.create seed) n in
  Array.init n (fun i ->
      Engine.node ~id:i
        ~decide:(fun ~slot:_ ->
          let label = Rng.int node_rngs.(i) c in
          if Rng.bool node_rngs.(i) then Action.broadcast ~label ((i * 7919) + label)
          else Action.listen ~label)
        ~feedback:(fun ~slot fb ->
          digests.(i) <- digest_feedback (mix digests.(i) slot) fb))

type run_output = {
  out_slots : int;
  out_stopped : bool;
  out_counters : Trace.Counters.t;
  out_trace : string;
  out_metrics : int list;
  out_digests : int array;
}

let counters_fields (c : Trace.Counters.t) =
  [
    c.Trace.Counters.slots_run;
    c.Trace.Counters.broadcasts;
    c.Trace.Counters.wins;
    c.Trace.Counters.contended;
    c.Trace.Counters.deliveries;
    c.Trace.Counters.jammed_actions;
  ]

let check_counters label a b =
  Alcotest.(check (list int)) label (counters_fields a) (counters_fields b)

(* One randomized scenario, fully determined by [seed]: topology shape,
   dynamic availability, jammer and fault schedule all derived from it. *)
type scenario = {
  n : int;
  c : int;
  availability : Dynamic.t;
  jammer : unit -> Jammer.t; (* fresh per run: reactive jammers are stateful *)
  faults : Faults.t;
  stop_at : int option;
  max_slots : int;
}

let scenario seed =
  let rng = Rng.create (10_000 + seed) in
  let n = 2 + Rng.int rng 30 in
  let c = 2 + Rng.int rng 8 in
  let k = 1 + Rng.int rng (min 3 c) in
  let spec = { Topology.n; c; k } in
  let kind =
    match seed mod 3 with
    | 0 -> Topology.Shared_core
    | 1 -> Topology.Shared_plus_random
    | _ -> Topology.Clustered
  in
  let assignment = Topology.generate kind rng spec in
  let availability =
    if seed mod 5 = 0 then Dynamic.rotating assignment else Dynamic.static assignment
  in
  let num_channels = Crn_channel.Assignment.num_channels assignment in
  let jammer () =
    match seed mod 4 with
    | 0 ->
        Jammer.random_per_node
          ~seed:(Int64.of_int (seed * 77))
          ~budget:1 ~num_channels
    | 1 -> Jammer.reactive ()
    | _ -> Jammer.none
  in
  let faults =
    if seed mod 2 = 0 then
      Faults.random_naps ~seed:(Int64.of_int (seed * 131)) ~rate:0.15
    else Faults.none
  in
  let stop_at = if seed mod 6 = 0 then Some (5 + (seed mod 7)) else None in
  { n; c; availability; jammer; faults; stop_at; max_slots = 40 }

let run_engine_impl sc ~seed impl =
  let digests = Array.make sc.n 0 in
  let nodes = make_nodes ~seed ~n:sc.n ~c:sc.c ~digests in
  let tr = Trace.create () in
  let m = Metrics.create sc.n in
  let stop = Option.map (fun at -> fun ~slot -> slot >= at) sc.stop_at in
  let outcome =
    impl ?stop ~jammer:(sc.jammer ()) ~faults:sc.faults ~metrics:m ~trace:tr
      ~availability:sc.availability
      ~rng:(Rng.create (seed * 17))
      ~nodes ~max_slots:sc.max_slots ()
  in
  {
    out_slots = outcome.Engine.slots_run;
    out_stopped = outcome.Engine.stopped_early;
    out_counters = outcome.Engine.counters;
    out_trace = Trace.to_jsonl tr;
    out_metrics =
      Array.to_list m.Metrics.transmissions
      @ Array.to_list m.Metrics.receptions
      @ Array.to_list m.Metrics.awake_slots
      @ Array.to_list m.Metrics.jammed;
    out_digests = digests;
  }

let compare_outputs label a b =
  check_int (label ^ ": slots_run") a.out_slots b.out_slots;
  check (label ^ ": stopped_early") a.out_stopped b.out_stopped;
  check_counters (label ^ ": counters") a.out_counters b.out_counters;
  Alcotest.(check (list int)) (label ^ ": metrics") a.out_metrics b.out_metrics;
  Alcotest.(check (array int)) (label ^ ": feedback digests") a.out_digests b.out_digests;
  check_str (label ^ ": trace bytes") a.out_trace b.out_trace

(* Differential: optimized engine vs executable specification, across many
   randomized scenarios (jammers, faults, dynamic availability, stops). *)
let test_engine_matches_reference () =
  for seed = 1 to 24 do
    let sc = scenario seed in
    let fast =
      run_engine_impl sc ~seed (fun ?stop ~jammer ~faults ~metrics ~trace ->
          Engine.run ?stop ?on_slot_end:None ~jammer ~faults ~metrics ~trace)
    in
    let spec =
      run_engine_impl sc ~seed (fun ?stop ~jammer ~faults ~metrics ~trace ->
          Reference.engine_run ?stop ?on_slot_end:None ~jammer ~faults ~metrics ~trace)
    in
    compare_outputs (Printf.sprintf "engine seed %d" seed) fast spec
  done

(* The emulation differential exercises the full capability matrix the
   backend now shares with the engine: both contention strategies, jammers
   (including reactive), fault schedules, metrics, and — on seeds with a
   tight session cap — failed sessions (No_winner feedback). *)
let run_emulation_impl sc ~seed impl =
  let digests = Array.make sc.n 0 in
  let nodes = make_nodes ~seed ~n:sc.n ~c:sc.c ~digests in
  let tr = Trace.create () in
  let m = Metrics.create sc.n in
  let stop = Option.map (fun at -> fun ~slot -> slot >= at) sc.stop_at in
  let outcome =
    impl ?stop ~jammer:(sc.jammer ()) ~faults:sc.faults ~metrics:m ~trace:tr
      ~availability:sc.availability
      ~rng:(Rng.create (seed * 17))
      ~nodes ~max_slots:sc.max_slots ()
  in
  ( {
      out_slots = outcome.Emulation.slots_run;
      out_stopped = outcome.Emulation.stopped_early;
      out_counters = outcome.Emulation.counters;
      out_trace = Trace.to_jsonl tr;
      out_metrics =
        Array.to_list m.Metrics.transmissions
        @ Array.to_list m.Metrics.receptions
        @ Array.to_list m.Metrics.awake_slots
        @ Array.to_list m.Metrics.jammed;
      out_digests = digests;
    },
    outcome )

let test_emulation_matches_reference () =
  List.iter
    (fun (strategy, sname) ->
      for seed = 1 to 24 do
        let sc = scenario seed in
        (* A tight cap on some seeds forces failed sessions through both
           implementations. *)
        let session_cap = if seed mod 3 = 0 then Some 3 else None in
        let fast, fast_out =
          run_emulation_impl sc ~seed
            (fun ?stop ~jammer ~faults ~metrics ~trace ->
              Emulation.run ~strategy ?session_cap ?stop ~jammer ~faults
                ~metrics ~trace)
        in
        let spec, spec_out =
          run_emulation_impl sc ~seed
            (fun ?stop ~jammer ~faults ~metrics ~trace ->
              Reference.emulation_run ~strategy ?session_cap ?stop ~jammer
                ~faults ~metrics ~trace)
        in
        let label = Printf.sprintf "emulation(%s) seed %d" sname seed in
        compare_outputs label fast spec;
        check_int (label ^ ": raw_rounds") fast_out.Emulation.raw_rounds
          spec_out.Emulation.raw_rounds;
        check_int (label ^ ": failed_sessions")
          fast_out.Emulation.failed_sessions
          spec_out.Emulation.failed_sessions
      done)
    [ (Emulation.Decay, "decay"); (Emulation.Csma, "csma") ]

(* ------------------------------------------------------------------ *)
(* Canonical order: within every slot of a traced run, Win events appear
   in strictly ascending global channel id. *)
let test_wins_in_canonical_order () =
  let sc = scenario 3 in
  let digests = Array.make sc.n 0 in
  let nodes = make_nodes ~seed:3 ~n:sc.n ~c:sc.c ~digests in
  let tr = Trace.create () in
  ignore
    (Engine.run ~trace:tr ~availability:sc.availability ~rng:(Rng.create 51)
       ~nodes ~max_slots:sc.max_slots ());
  let last_slot = ref (-1) and last_channel = ref (-1) and wins = ref 0 in
  Trace.iter
    (function
      | Trace.Win { slot; channel; _ } ->
          incr wins;
          if slot = !last_slot then
            check
              (Printf.sprintf "slot %d: channel %d after %d" slot channel
                 !last_channel)
              true (channel > !last_channel);
          last_slot := slot;
          last_channel := channel
      | _ -> ())
    tr;
  check "saw wins" true (!wins > 0)

(* ------------------------------------------------------------------ *)
(* Identical-seed runs are byte-identical, repeated in-process and at any
   trial parallelism. Each trial records a full COGCAST trace; the arrays
   of JSONL dumps must agree byte-for-byte across --jobs 1/2/8. *)

let traced_cogcast rng =
  let spec = { Topology.n = 24; c = 8; k = 2 } in
  let assignment = Topology.shared_core rng spec in
  let tr = Trace.create () in
  ignore
    (Cogcast.run ~trace:tr ~source:0
       ~availability:(Dynamic.static assignment)
       ~rng ~max_slots:500 ());
  Trace.to_jsonl tr

let test_traces_identical_across_jobs () =
  let trials = 6 and seed = 4242 in
  let sequential = Crn_exec.Trials.run_seq ~trials ~seed traced_cogcast in
  List.iter
    (fun jobs ->
      let parallel =
        Crn_exec.Trials.run_jobs ~jobs ~trials ~seed traced_cogcast
      in
      for i = 0 to trials - 1 do
        check_str
          (Printf.sprintf "trial %d at --jobs %d" i jobs)
          sequential.(i) parallel.(i)
      done)
    [ 1; 2; 8 ]

let test_repeat_runs_byte_equal () =
  let one () =
    let sc = scenario 7 in
    let out =
      run_engine_impl sc ~seed:7 (fun ?stop ~jammer ~faults ~metrics ~trace ->
          Engine.run ?stop ?on_slot_end:None ~jammer ~faults ~metrics ~trace)
    in
    out.out_trace
  in
  check_str "same seed, same bytes" (one ()) (one ())

(* ------------------------------------------------------------------ *)
(* Sustained-traffic workloads obey the same two claims: registry runs of
   the gossip and push-sum machines are byte-identical at any --jobs, and
   driving the machines over {!Reference.engine_run} instead of
   {!Engine.run} yields the same trace bytes and the same result struct. *)

module Arrivals = Crn_workload.Arrivals
module Gossip = Crn_workload.Gossip
module Push_sum = Crn_workload.Push_sum
module Protocol = Crn_proto.Protocol
module Registry = Crn_proto.Registry

let traced_workload name rng =
  let spec = { Topology.n = 16; c = 6; k = 2 } in
  let assignment = Topology.generate Topology.Shared_plus_random rng spec in
  let tr = Trace.create () in
  let load = { Protocol.rate = 0.25; arrivals = Protocol.Poisson; rumors = 4 } in
  let s =
    Protocol.run (Registry.find_exn name)
      (Protocol.env ~trace:tr ~k:2 ~load
         ~availability:(Dynamic.static assignment)
         ~rng ())
  in
  Trace.to_jsonl tr ^ "\n" ^ Crn_stats.Json.to_string (Protocol.summary_json s)

let test_workload_traces_across_jobs () =
  List.iter
    (fun name ->
      let trials = 4 and seed = 7171 in
      let f = traced_workload name in
      let sequential = Crn_exec.Trials.run_seq ~trials ~seed f in
      List.iter
        (fun jobs ->
          let parallel = Crn_exec.Trials.run_jobs ~jobs ~trials ~seed f in
          for i = 0 to trials - 1 do
            check_str
              (Printf.sprintf "%s trial %d at --jobs %d" name i jobs)
              sequential.(i) parallel.(i)
          done)
        [ 1; 2; 8 ])
    [ "gossip"; "push_sum" ]

(* Each backend run rebuilds topology, arrivals and machine from the same
   seed, so the two engines see byte-identical inputs; the machine writes
   its rumor events into the same trace the engine writes its slot events
   into, so the byte comparison covers their interleaving too. *)
let workload_setup ~seed =
  let rng = Rng.create seed in
  let spec = { Topology.n = 16; c = 6; k = 2 } in
  let assignment = Topology.generate Topology.Shared_plus_random rng spec in
  let availability = Dynamic.static assignment in
  let arrivals =
    Arrivals.generate ~rng:(Rng.split rng) ~law:Arrivals.Poisson ~rate:0.25
      ~n:16 ~rumors:4
  in
  (rng, availability, arrivals, Trace.create ())

let run_gossip_backend ~seed which =
  let rng, availability, arrivals, tr = workload_setup ~seed in
  let m = Gossip.machine ~trace:tr ~arrivals ~availability ~rng () in
  let nodes =
    Array.init 16 (fun v ->
        Engine.node ~id:v
          ~decide:(fun ~slot -> m.Gossip.decide ~node:v ~slot)
          ~feedback:(fun ~slot fb -> m.Gossip.feedback ~node:v ~slot fb))
  in
  let stop ~slot:_ = m.Gossip.finished () in
  let outcome =
    match which with
    | `Fast ->
        Engine.run ~stop ~trace:tr ~availability ~rng ~nodes ~max_slots:2_000 ()
    | `Spec ->
        Reference.engine_run ~stop ~trace:tr ~availability ~rng ~nodes
          ~max_slots:2_000 ()
  in
  (Trace.to_jsonl tr, m.Gossip.snapshot ~slots_run:outcome.Engine.slots_run)

let run_push_sum_backend ~seed which =
  let rng, availability, arrivals, tr = workload_setup ~seed in
  let m = Push_sum.machine ~trace:tr ~arrivals ~availability ~rng () in
  let nodes =
    Array.init 16 (fun v ->
        Engine.node ~id:v
          ~decide:(fun ~slot -> m.Push_sum.decide ~node:v ~slot)
          ~feedback:(fun ~slot fb -> m.Push_sum.feedback ~node:v ~slot fb))
  in
  let stop ~slot:_ = m.Push_sum.finished () in
  let outcome =
    match which with
    | `Fast ->
        Engine.run ~stop ~trace:tr ~availability ~rng ~nodes ~max_slots:2_000 ()
    | `Spec ->
        Reference.engine_run ~stop ~trace:tr ~availability ~rng ~nodes
          ~max_slots:2_000 ()
  in
  (Trace.to_jsonl tr, m.Push_sum.snapshot ~slots_run:outcome.Engine.slots_run)

let test_workload_engine_matches_reference () =
  for seed = 1 to 6 do
    let tr_f, r_f = run_gossip_backend ~seed:(9_000 + seed) `Fast in
    let tr_s, r_s = run_gossip_backend ~seed:(9_000 + seed) `Spec in
    check_str (Printf.sprintf "gossip seed %d: trace bytes" seed) tr_f tr_s;
    check (Printf.sprintf "gossip seed %d: results" seed) true (r_f = r_s);
    let tr_f, r_f = run_push_sum_backend ~seed:(9_100 + seed) `Fast in
    let tr_s, r_s = run_push_sum_backend ~seed:(9_100 + seed) `Spec in
    check_str (Printf.sprintf "push_sum seed %d: trace bytes" seed) tr_f tr_s;
    check (Printf.sprintf "push_sum seed %d: results" seed) true (r_f = r_s)
  done

(* ------------------------------------------------------------------ *)
(* Satellite regression: Cogcast.run_emulated used to report all-zero
   counters. They must now match the emulation outcome's accounting, and
   that accounting must agree with the recorded trace event by event. *)
let test_emulated_counters_real () =
  let rng = Rng.create 5 in
  let spec = { Topology.n = 24; c = 8; k = 2 } in
  let assignment = Topology.shared_core rng spec in
  let tr = Trace.create () in
  let r, outcome =
    Cogcast.run_emulated ~trace:tr ~source:0
      ~availability:(Dynamic.static assignment)
      ~rng ~max_slots:2_000 ()
  in
  check "run completes" true (r.Cogcast.completed_at <> None);
  check_counters "result counters = outcome counters" r.Cogcast.counters
    outcome.Emulation.counters;
  let c = r.Cogcast.counters in
  check "counters not all zero" true (c.Trace.Counters.deliveries > 0);
  (* Replay the trace and re-derive every counter. *)
  let wins = ref 0
  and deliveries = ref 0
  and broadcasts = ref 0
  and contended = ref 0 in
  Trace.iter
    (function
      | Trace.Win _ -> incr wins
      | Trace.Deliver _ -> incr deliveries
      | Trace.Decide { tx = true; _ } -> incr broadcasts
      | Trace.Session { contenders; _ } when contenders > 1 -> incr contended
      | _ -> ())
    tr;
  check_int "wins from trace" !wins c.Trace.Counters.wins;
  check_int "deliveries from trace" !deliveries c.Trace.Counters.deliveries;
  check_int "broadcasts from trace" !broadcasts c.Trace.Counters.broadcasts;
  check_int "contended from trace" !contended c.Trace.Counters.contended;
  check_int "jammed is zero at this layer" 0 c.Trace.Counters.jammed_actions;
  check_int "slots_run" r.Cogcast.slots_run c.Trace.Counters.slots_run;
  (* Every informed node except the source heard the message at least once. *)
  check "deliveries cover the tree" true
    (c.Trace.Counters.deliveries >= r.Cogcast.informed_count - 1)

(* ------------------------------------------------------------------ *)
(* Satellite: counters parity across backends. A scripted protocol (fixed
   decisions, no randomness) must produce identical Trace.Counters on the
   engine and on the emulation — broadcasts/wins/contended/deliveries/
   slots_run count abstract-slot events on both sides, and deliveries
   count listener receptions only (a losing broadcaster's reception is
   Lost, not a delivery). The winner may differ (the engine draws it, the
   session races it), so only the accounting is compared. *)
let test_counters_parity_engine_vs_emulation () =
  let n = 8 and c = 2 in
  let spec = { Topology.n; c; k = 2 } in
  let assignment = Topology.shared_core (Rng.create 99) spec in
  let availability = Dynamic.static assignment in
  (* Slot s: nodes with (v + s) mod 3 = 0 broadcast on label (s mod c),
     everyone else listens on label (v mod c). *)
  let scripted () =
    Array.init n (fun v ->
        Engine.node ~id:v
          ~decide:(fun ~slot ->
            if (v + slot) mod 3 = 0 then Action.broadcast ~label:(slot mod c) v
            else Action.listen ~label:(v mod c))
          ~feedback:(fun ~slot:_ _ -> ()))
  in
  let engine =
    (Engine.run ~availability ~rng:(Rng.create 7) ~nodes:(scripted ())
       ~max_slots:30 ())
      .Engine.counters
  in
  List.iter
    (fun (strategy, sname) ->
      let emu =
        (Emulation.run ~strategy ~availability ~rng:(Rng.create 7)
           ~nodes:(scripted ()) ~max_slots:30 ())
          .Emulation.counters
      in
      check_counters
        (Printf.sprintf "scripted counters: engine = emulation(%s)" sname)
        engine emu)
    [ (Emulation.Decay, "decay"); (Emulation.Csma, "csma") ]

let () =
  Alcotest.run "determinism"
    [
      ( "differential",
        [
          Alcotest.test_case "engine = reference (randomized)" `Quick
            test_engine_matches_reference;
          Alcotest.test_case "emulation = reference (randomized)" `Quick
            test_emulation_matches_reference;
          Alcotest.test_case "workload machines: engine = reference" `Quick
            test_workload_engine_matches_reference;
        ] );
      ( "canonical-order",
        [
          Alcotest.test_case "wins ascend within a slot" `Quick
            test_wins_in_canonical_order;
        ] );
      ( "seed-stability",
        [
          Alcotest.test_case "traces byte-equal across --jobs 1/2/8" `Quick
            test_traces_identical_across_jobs;
          Alcotest.test_case "repeat runs byte-equal" `Quick
            test_repeat_runs_byte_equal;
          Alcotest.test_case "workload traces byte-equal across --jobs 1/2/8"
            `Quick test_workload_traces_across_jobs;
        ] );
      ( "emulated-counters",
        [
          Alcotest.test_case "run_emulated counters are real" `Quick
            test_emulated_counters_real;
          Alcotest.test_case "scripted counters: engine = emulation" `Quick
            test_counters_parity_engine_vs_emulation;
        ] );
    ]
