(* Experiments E6 and E14: COGCOMP's total time and phase breakdown
   (Theorem 10), and the distribution-tree accounting behind its O(n)
   phase 4. *)

open Bench_util
module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Cogcast = Crn_core.Cogcast
module Cogcomp = Crn_core.Cogcomp
module Aggregate = Crn_core.Aggregate
module Disttree = Crn_core.Disttree
module Table = Crn_stats.Table
module Fit = Crn_stats.Fit

(* E6: total slots vs n with the per-phase split; phase 4 must be linear in
   n, phases 1/3 logarithmic, phase 2 exactly n. *)
let e6 () =
  header "E6" "COGCOMP phase breakdown vs n (c = 16, k = 4; Theorem 10)";
  let c = 16 and k = 4 in
  let ns = if !quick then [ 32; 128; 512 ] else [ 32; 64; 128; 256; 512; 1024; 2048 ] in
  let t = Table.create [ "n"; "phase1"; "phase2"; "phase3"; "phase4"; "total"; "p4 steps/n" ] in
  let p4_pts = ref [] in
  List.iter
    (fun n ->
      let spec = { Topology.n; c; k } in
      let trials = trials ~full:(if n >= 1024 then 3 else 5) in
      let runs =
        run_trials ~trials ~base_seed:(12_000 + n) (fun rng ->
            let assignment = Topology.shared_plus_random rng spec in
            let values = Array.init n (fun v -> v) in
            let r = Cogcomp.run ~monoid:Aggregate.sum ~values ~source:0 ~assignment ~k ~rng () in
            [|
              float_of_int r.Cogcomp.phase1_slots;
              float_of_int r.Cogcomp.phase2_slots;
              float_of_int r.Cogcomp.phase3_slots;
              float_of_int r.Cogcomp.phase4_slots;
              float_of_int r.Cogcomp.total_slots;
              float_of_int r.Cogcomp.phase4_steps /. float_of_int n;
            |])
      in
      let ft = float_of_int trials in
      let avg j = Array.fold_left (fun acc row -> acc +. row.(j)) 0.0 runs /. ft in
      p4_pts := (float_of_int n, avg 3) :: !p4_pts;
      Table.add_row t
        [
          string_of_int n;
          fmt_f (avg 0);
          fmt_f (avg 1);
          fmt_f (avg 2);
          fmt_f (avg 3);
          fmt_f (avg 4);
          fmt_f2 (avg 5);
        ])
    ns;
  print_table t;
  let fit = Fit.log_log (Array.of_list !p4_pts) in
  note "phase 4 log-log slope vs n: %.2f (Theorem 10 proves O(n), an upper bound;" fit.Fit.slope;
  note "sub-linear growth is expected — clusters on different channels drain in parallel)";
  note "claim: phase 2 = n exactly, phase 3 = phase 1, phase 4 steps <= n always"

(* E14: distribution tree shape statistics underpinning the phase-4
   accounting (sum of per-slot max cluster sizes <= n). *)
let e14 () =
  header "E14" "Distribution tree shape (c = 16, k = 4; Theorem 10 accounting)";
  let c = 16 and k = 4 in
  let ns = if !quick then [ 64; 256 ] else [ 64; 256; 1024 ] in
  let t =
    Table.create
      [ "n"; "height"; "clusters"; "max cluster"; "sum max/slot"; "bound (n)" ]
  in
  List.iter
    (fun n ->
      let spec = { Topology.n; c; k } in
      let trials = trials ~full:9 in
      let runs =
        run_trials ~trials ~base_seed:(13_000 + n) (fun rng ->
            let assignment = Topology.shared_plus_random rng spec in
            let r = Cogcast.run_static ~source:0 ~assignment ~k ~rng () in
            let tree = Disttree.of_result r in
            ( Disttree.height tree,
              List.length tree.Disttree.clusters,
              Disttree.max_cluster tree,
              Disttree.sum_max_cluster_per_slot tree ))
      in
      let ft = float_of_int trials in
      let avg f = Array.fold_left (fun acc run -> acc +. float_of_int (f run)) 0.0 runs /. ft in
      Table.add_row t
        [
          string_of_int n;
          fmt_f (avg (fun (h, _, _, _) -> h));
          fmt_f (avg (fun (_, cl, _, _) -> cl));
          fmt_f (avg (fun (_, _, m, _) -> m));
          fmt_f (avg (fun (_, _, _, s) -> s));
          string_of_int n;
        ])
    ns;
  print_table t;
  note "claim: sum of per-slot max cluster sizes <= n always (drives phase 4's O(n))";
  (* Cluster-size distribution at the largest n: most clusters are tiny, a
     few (early slots, crowded channels) are large — the skew phase 4's
     mediators are built to serialize. *)
  let n = List.nth ns (List.length ns - 1) in
  let rng = Rng.create 13_999 in
  let assignment = Topology.shared_plus_random rng { Topology.n; c; k } in
  let r = Cogcast.run_static ~source:0 ~assignment ~k ~rng () in
  let sizes = Disttree.cluster_sizes (Disttree.of_result r) in
  if Array.length sizes > 0 then begin
    Printf.printf "\n  cluster-size distribution at n=%d (one run):\n" n;
    Crn_stats.Histogram.pp ~width:30 Format.std_formatter
      (Crn_stats.Histogram.of_ints ~bins:8 sizes)
  end
