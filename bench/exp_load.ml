(* E23: sustained-traffic workloads (lib/workload) under the open-loop load
   generator — offered rate vs achieved goodput, delivery latency
   percentiles, and the saturation point where the network stops keeping up
   with the arrival process. Gossip carries the headline sweep; push-sum is
   profiled at two rates with its mass accounting surfaced. *)

open Bench_util
module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Dynamic = Crn_channel.Dynamic
module Protocol = Crn_proto.Protocol
module Registry = Crn_proto.Registry

let detail_f key (s : Protocol.summary) =
  match Json.member key s.Protocol.detail with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> 0.0

let latencies (s : Protocol.summary) =
  match Json.member "latencies" s.Protocol.detail with
  | Some (Json.List l) ->
      List.filter_map
        (function
          | Json.Float f -> Some f
          | Json.Int i -> Some (float_of_int i)
          | _ -> None)
        l
  | _ -> []

(* One loaded run: fresh topology and env per trial, rumor arrivals drawn
   inside the registry's init from the same seeded stream — identical
   tables at any --jobs. *)
let run_loaded ~name ~spec ~load rng =
  let assignment = Topology.generate Topology.Shared_plus_random rng spec in
  Protocol.run (Registry.find_exn name)
    (Protocol.env ~k:spec.Topology.k ~load
       ~availability:(Dynamic.static assignment)
       ~rng ())

let e23 () =
  header "E23" "Sustained traffic: open-loop load on gossip and push-sum";
  let spec =
    if !quick then { Topology.n = 16; c = 6; k = 2 }
    else { Topology.n = 32; c = 8; k = 3 }
  in
  let rumors = if !quick then 8 else 24 in
  (* Full coverage of one rumor costs O(n) wins, so capacity at these
     topologies sits near a few hundredths of a rumor per slot — the sweep
     brackets it from well below to well above. *)
  let rates =
    if !quick then [ 0.02; 0.05 ] else [ 0.01; 0.02; 0.03; 0.05; 0.1; 0.2 ]
  in
  let trials = trials ~full:5 in
  let t =
    Table.create
      [
        "offered (rumors/slot)";
        "completion";
        "goodput (rumors/slot)";
        "lat p50";
        "lat p95";
        "lat p99";
      ]
  in
  (* Saturation: the last offered rate the network still clears — every
     rumor finishes and goodput tracks the arrival rate. *)
  let saturation = ref None in
  List.iter
    (fun rate ->
      let load = { Protocol.rate; arrivals = Protocol.Poisson; rumors } in
      let runs =
        run_trials ~trials ~base_seed:(23_000 + int_of_float (rate *. 1_000.))
          (fun rng ->
            let s = run_loaded ~name:"gossip" ~spec ~load rng in
            let goodput =
              detail_f "completed_rumors" s /. float_of_int s.Protocol.slots_run
            in
            ((if s.Protocol.completed then 1.0 else 0.0), goodput, latencies s))
      in
      let mean_of f =
        Array.fold_left (fun acc r -> acc +. f r) 0.0 runs
        /. float_of_int (Array.length runs)
      in
      let completion = mean_of (fun (c, _, _) -> c) in
      let goodput = mean_of (fun (_, g, _) -> g) in
      let lat =
        Array.to_list runs |> List.concat_map (fun (_, _, l) -> l) |> Array.of_list
      in
      let pct p =
        if Array.length lat = 0 then Float.nan else Summary.percentile lat p
      in
      (* Goodput includes the drain tail after the last arrival, so even a
         network that keeps up perfectly reads a little under the offered
         rate; 70% separates "bounded drain" from "serialized backlog". *)
      if completion >= 0.999 && goodput >= 0.7 *. rate then saturation := Some rate;
      Table.add_row t
        [
          fmt_f2 rate;
          fmt_f2 completion;
          Printf.sprintf "%.3f" goodput;
          fmt_f (pct 50.0);
          fmt_f (pct 95.0);
          fmt_f (pct 99.0);
        ])
    rates;
  print_table ~title:(Printf.sprintf "gossip, n=%d c=%d k=%d, %d rumors (Poisson)"
                        spec.Topology.n spec.Topology.c spec.Topology.k rumors) t;
  (match !saturation with
  | Some r ->
      note "saturation point: %.2f rumors/slot — the highest offered rate with" r;
      note "full completion and goodput >= 70%% of offered; beyond it the epidemic";
      note "serializes on the one-winner channel and latency tails blow up."
  | None ->
      note "saturation point below the lowest swept rate: the channel cannot";
      note "clear even the lightest offered load at this topology.");
  (* Push-sum under the same generator: conservation accounting plus the
     settling latency of the running estimate. *)
  let t2 =
    Table.create
      [ "offered"; "completion"; "transfers/slot"; "lost mass"; "max drift"; "lat p95" ]
  in
  let ps_rates = if !quick then [ 0.1 ] else [ 0.05; 0.15 ] in
  List.iter
    (fun rate ->
      let load =
        { Protocol.rate; arrivals = Protocol.Poisson; rumors = max 2 (rumors / 4) }
      in
      let runs =
        run_trials ~trials ~base_seed:(23_500 + int_of_float (rate *. 1_000.))
          (fun rng ->
            let s = run_loaded ~name:"push_sum" ~spec ~load rng in
            ( (if s.Protocol.completed then 1.0 else 0.0),
              detail_f "transfer_rate" s,
              detail_f "lost_mass" s,
              detail_f "max_drift" s,
              latencies s ))
      in
      let mean_of f =
        Array.fold_left (fun acc r -> acc +. f r) 0.0 runs
        /. float_of_int (Array.length runs)
      in
      let lat =
        Array.to_list runs
        |> List.concat_map (fun (_, _, _, _, l) -> l)
        |> Array.of_list
      in
      Table.add_row t2
        [
          fmt_f2 rate;
          fmt_f2 (mean_of (fun (c, _, _, _, _) -> c));
          Printf.sprintf "%.3f" (mean_of (fun (_, tr, _, _, _) -> tr));
          Printf.sprintf "%.2e" (mean_of (fun (_, _, lm, _, _) -> lm));
          Printf.sprintf "%.2e" (mean_of (fun (_, _, _, d, _) -> d));
          fmt_f (if Array.length lat = 0 then Float.nan else Summary.percentile lat 95.0);
        ])
    ps_rates;
  print_table ~title:"push-sum under load (fault-free)" t2;
  note "lost mass is exactly 0 fault-free and max drift is float noise: every";
  note "debit (Won) pairs with a fold (Heard) inside one engine slot."
