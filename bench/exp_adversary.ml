(* E24: the adversary laboratory — degradation curves for protocols under
   dynamic spectrum reassignment (§7) and n-uniform jamming (Theorem 18).

   Part A verifies that the per-slot reassignment policies remain *legal*
   dynamic CRN instances (sampled pairwise overlap >= k every slot) and
   that COGCAST still completes within Theorem 4's slot budget under them
   — the §7 claim that the epidemic needs no knowledge of the assignment's
   history. The Theorem 17 conspiracy rides along as the contrast row: a
   legal-looking adversary that predicts the source's choices defeats any
   budget.

   Part B sweeps the jammer budget t on the uniform spectrum and puts the
   plain protocol (receiver-side jamming) and its jam_resist: transform
   (Theorem 18 reduction) on the same curve: the transform trades a
   constant-factor slowdown for immunity to the budget, and degradation is
   monotone in t for both.

   Part C composes the adversaries: the reactive jammer on top of each
   reassignment policy, every trial replayed through the trace invariant
   checkers — the CI contract that adversaries may slow protocols down but
   never break the simulator. *)

open Bench_util
module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Assignment = Crn_channel.Assignment
module Dynamic = Crn_channel.Dynamic
module Jammer = Crn_radio.Jammer
module Cogcast = Crn_core.Cogcast
module Complexity = Crn_core.Complexity
module Protocol = Crn_proto.Protocol
module Registry = Crn_proto.Registry
module Adversary_lab = Crn_proto.Adversary_lab
module Table = Crn_stats.Table

let e24 () =
  header "E24"
    "Adversary laboratory: dynamic spectrum + jamming degradation (Thm 4, 17, 18)";

  (* ---- Part A: reassignment policies vs Theorem 4's budget ---- *)
  let n = if !quick then 32 else 64 in
  let c = if !quick then 8 else 16 in
  let k = if !quick then 3 else 4 in
  let spec = { Topology.n; c; k } in
  let budget = Complexity.cogcast_slots ~n ~c ~k () in
  let trials_a = trials ~full:60 in
  let ta =
    Table.create
      [ "dynamic mode"; "min overlap (64 slots)"; "median slots"; "complete"; "budget ratio" ]
  in
  List.iter
    (fun mode ->
      let armed_probe =
        Adversary_lab.arm ~mode ~topology:Topology.Shared_core ~spec ~source:0
          ~rng:(Rng.create 2401)
      in
      let min_overlap = ref max_int in
      for slot = 0 to 63 do
        let a = Dynamic.at armed_probe.Adversary_lab.availability slot in
        min_overlap := min !min_overlap (Assignment.min_pairwise_overlap a)
      done;
      let runs =
        run_trials ~trials:trials_a ~base_seed:24_100 (fun rng ->
            let armed =
              Adversary_lab.arm ~mode ~topology:Topology.Shared_core ~spec
                ~source:0 ~rng
            in
            let r =
              Cogcast.run ~source:0
                ~availability:armed.Adversary_lab.availability
                ~rng:armed.Adversary_lab.rng ~max_slots:budget ()
            in
            ( (match r.Cogcast.completed_at with Some s -> s | None -> budget),
              if r.Cogcast.informed_count = n then 1 else 0 ))
      in
      let median =
        Crn_stats.Summary.median
          (Array.map (fun (s, _) -> float_of_int s) runs)
      in
      let complete = Array.fold_left (fun acc (_, c) -> acc + c) 0 runs in
      Table.add_row ta
        [
          Adversary_lab.mode_name mode;
          string_of_int !min_overlap;
          fmt_f median;
          Printf.sprintf "%d/%d" complete trials_a;
          (if complete = 0 then "inf" else fmt_f2 (median /. float_of_int budget));
        ])
    Adversary_lab.all_modes;
  print_table ~title:"COGCAST on shared-core, per-slot reassignment" ta;
  note "claim (Thm 4 under §7 dynamics): rotating/reshuffle keep pairwise overlap";
  note ">= k in every slot and COGCAST completes within the same O((c/k) lg n)";
  note "budget; the Thm 17 isolate conspiracy defeats any budget (contrast row)";

  (* ---- Part B: Theorem 18 — jammer budget sweep on the uniform spectrum ---- *)
  let n = if !quick then 24 else 48 in
  let c = 12 in
  (* Everyone owns the whole spectrum: the §7 n-uniform jamming model. *)
  let spec = { Topology.n; c; k = c } in
  let trials_b = trials ~full:60 in
  let plain = Registry.find_exn "cogcast" in
  let resist = Registry.find_exn "jam_resist:cogcast" in
  let budgets = if !quick then [ 0; 2; 4; 5 ] else [ 0; 1; 2; 3; 4; 5 ] in
  let tb =
    Table.create
      [ "t (jammed/node/slot)"; "protocol"; "median slots"; "complete"; "slot inflation" ]
  in
  let monotone = ref true in
  let resist_inflation = ref 0.0 in
  List.iter
    (fun proto ->
      let is_resist = proto != plain in
      let base = ref None in
      let prev = ref 0.0 in
      List.iter
        (fun t ->
          let runs =
            run_trials ~trials:trials_b ~base_seed:(24_200 + t) (fun rng ->
                let assignment =
                  Topology.generate Topology.Identical rng spec
                in
                let jammer =
                  if t = 0 then None
                  else
                    Some
                      (Jammer.random_per_node ~seed:(Rng.bits64 rng) ~budget:t
                         ~num_channels:c)
                in
                let s =
                  Protocol.run proto
                    (Protocol.env ?jammer ~k:c
                       ~availability:(Dynamic.static assignment) ~rng ())
                in
                ( (match s.Protocol.completed_at with
                  | Some v -> v
                  | None -> s.Protocol.slots_run),
                  if s.Protocol.completed then 1 else 0 ))
          in
          let median =
            Crn_stats.Summary.median
              (Array.map (fun (s, _) -> float_of_int s) runs)
          in
          let complete = Array.fold_left (fun acc (_, c) -> acc + c) 0 runs in
          if !base = None then base := Some median;
          (* The plain protocol's degradation must be monotone in the
             adversary's budget, up to median jitter on small samples; the
             transform's curve is flat by design, so it is held to a
             bounded-inflation claim instead. *)
          if (not is_resist) && median < !prev *. 0.85 then monotone := false;
          prev := max !prev median;
          let ratio =
            match !base with
            | Some b when b > 0.0 -> median /. b
            | _ -> Float.nan
          in
          if is_resist then resist_inflation := max !resist_inflation ratio;
          let inflation = fmt_f2 ratio in
          Table.add_row tb
            [
              string_of_int t;
              Protocol.name proto;
              fmt_f median;
              Printf.sprintf "%d/%d" complete trials_b;
              inflation;
            ])
        budgets)
    [ plain; resist ];
  print_table ~title:"n-uniform jammer sweep, identical spectrum (C = 12, t < C/2)" tb;
  note "claim (Thm 18): the jam_resist: transform runs the protocol unmodified on";
  note "the sensed unjammed spectrum (>= C-t channels, overlap >= C-2t) and keeps";
  note "completing for every legal t at a constant-factor cost, while the plain";
  note "protocol's curve degrades monotonically with the budget";
  note "%s"
    (if !monotone then
       "plain-protocol monotonicity: PASS (medians non-decreasing in t, 15% \
        tolerance)"
     else
       "plain-protocol monotonicity: FAIL — a higher budget ran faster than \
        a lower one");
  note
    "jam_resist worst-case slot inflation over all t: %.2fx the unjammed \
     run (Thm 18: a constant factor)"
    !resist_inflation;

  (* ---- Part C: composed adversaries, invariant-checked ---- *)
  let n = if !quick then 24 else 48 in
  let c = 8 and k = 3 in
  let spec = { Topology.n; c; k } in
  let trials_c = trials ~full:30 in
  let tc =
    Table.create [ "dynamic mode"; "protocol"; "median slots"; "complete"; "violations" ]
  in
  let total_violations = ref 0 in
  List.iter
    (fun mode ->
      List.iter
        (fun name ->
          let proto = Registry.find_exn name in
          let runs =
            run_trials ~trials:trials_c ~base_seed:24_300 (fun rng ->
                let jammer = Jammer.reactive () in
                let t =
                  Adversary_lab.run_trial proto (fun ~trace ->
                      let armed =
                        Adversary_lab.arm ~mode ~topology:Topology.Shared_core
                          ~spec ~source:0 ~rng
                      in
                      Protocol.env ~jammer ~trace ~k
                        ~availability:
                          (Adversary_lab.instrument ~trace
                             armed.Adversary_lab.availability)
                        ~rng:armed.Adversary_lab.rng ())
                in
                let s = t.Adversary_lab.summary in
                ( (match s.Protocol.completed_at with
                  | Some v -> v
                  | None -> s.Protocol.slots_run),
                  (if s.Protocol.completed then 1 else 0),
                  List.length t.Adversary_lab.violations ))
          in
          let median =
            Crn_stats.Summary.median
              (Array.map (fun (s, _, _) -> float_of_int s) runs)
          in
          let complete =
            Array.fold_left (fun acc (_, c, _) -> acc + c) 0 runs
          in
          let violations =
            Array.fold_left (fun acc (_, _, v) -> acc + v) 0 runs
          in
          total_violations := !total_violations + violations;
          Table.add_row tc
            [
              Adversary_lab.mode_name mode;
              name;
              fmt_f median;
              Printf.sprintf "%d/%d" complete trials_c;
              string_of_int violations;
            ])
        [ "cogcast"; "gossip" ])
    [ Adversary_lab.Static; Adversary_lab.Rotating; Adversary_lab.Reshuffle ];
  print_table ~title:"reactive jammer composed with per-slot reassignment" tc;
  note "claim (robustness contract): composed adversaries may slow protocols but";
  note "every trial's trace passes the invariant checkers — %d violation(s) total"
    !total_violations
