(* Experiments E8, E9, E15: the §6 lower bounds exercised empirically. *)

open Bench_util
module Rng = Crn_prng.Rng
module Hitting_game = Crn_games.Hitting_game
module Players = Crn_games.Players
module Reduction = Crn_games.Reduction
module First_hit = Crn_games.First_hit
module Complexity = Crn_core.Complexity
module Table = Crn_stats.Table

(* Parallel counterpart of Hitting_game.median_rounds: one pre-split stream
   per game, losses counted as max_rounds. *)
let median_rounds_par ~trials ~base_seed ~make_player ~game ~max_rounds =
  median_of ~trials ~base_seed (fun rng ->
      let player = make_player (Rng.split rng) in
      let r = game ~rng ~player ~max_rounds in
      if r.Hitting_game.won then r.Hitting_game.rounds else max_rounds)

(* E8: median rounds-to-win of standard players vs the Lemma 11 / Lemma 14
   closed-form bounds. *)
let e8 () =
  header "E8" "Hitting games: player medians vs lower bounds (Lemmas 11 & 14)";
  let t =
    Table.create
      [ "game"; "c"; "k"; "uniform"; "w/o-replacement"; "row-scan"; "bound" ]
  in
  let cfgs = if !quick then [ (8, 1); (16, 4) ] else [ (8, 1); (8, 4); (16, 2); (16, 8); (32, 4) ] in
  List.iter
    (fun (c, k) ->
      let trials = trials ~full:31 in
      let median i make_player =
        median_rounds_par ~trials ~base_seed:(30_000 + (100 * c) + (10 * k) + i)
          ~make_player
          ~game:(fun ~rng ~player ~max_rounds ->
            Hitting_game.play_bipartite ~rng ~c ~k ~player ~max_rounds)
          ~max_rounds:(c * c * 200)
      in
      let u = median 0 (fun rng -> Players.uniform rng ~c) in
      let w = median 1 (fun rng -> Players.without_replacement rng ~c) in
      let s = median 2 (fun _ -> Players.row_scan ~c) in
      Table.add_row t
        [
          "(c,k)-bipartite";
          string_of_int c;
          string_of_int k;
          fmt_f u;
          fmt_f w;
          fmt_f s;
          fmt_f (Complexity.bipartite_game_lower_bound ~c ~k ());
        ])
    cfgs;
  List.iter
    (fun c ->
      let trials = trials ~full:31 in
      let median i make_player =
        median_rounds_par ~trials ~base_seed:(34_000 + (100 * c) + i) ~make_player
          ~game:(fun ~rng ~player ~max_rounds ->
            Hitting_game.play_complete ~rng ~c ~player ~max_rounds)
          ~max_rounds:(c * c * 20)
      in
      let u = median 0 (fun rng -> Players.uniform rng ~c) in
      let w = median 1 (fun rng -> Players.without_replacement rng ~c) in
      let s = median 2 (fun _ -> Players.row_scan ~c) in
      Table.add_row t
        [
          "c-complete";
          string_of_int c;
          string_of_int c;
          fmt_f u;
          fmt_f w;
          fmt_f s;
          fmt_f (Complexity.complete_game_lower_bound ~c);
        ])
    (if !quick then [ 16 ] else [ 8; 16; 32 ]);
  print_table t;
  note "claim: no player's median dips below the bound column (c²/(8k), resp. c/3)";
  (* Cross-check the Lemma 11 probability accounting: empirical win rates at
     the critical round count l = c²/(8k) vs the analytic cap 1 - P(L). *)
  let t2 =
    Table.create
      [ "c"; "k"; "l=c²/(8k)"; "analytic cap"; "uniform (exact)"; "uniform"; "w/o-repl" ]
  in
  List.iter
    (fun (c, k) ->
      let l = Crn_games.Bounds.critical_rounds ~c ~k () in
      let cap = Crn_games.Bounds.winning_probability_upper_bound ~c ~k ~rounds:l in
      let win_rate i make_player =
        let trials = if !quick then 200 else 1000 in
        let wins =
          run_trials ~trials ~base_seed:(37_000 + (100 * c) + (10 * k) + i) (fun rng ->
              let player = make_player (Rng.split rng) in
              let r = Hitting_game.play_bipartite ~rng ~c ~k ~player ~max_rounds:l in
              if r.Hitting_game.won then 1 else 0)
        in
        float_of_int (Array.fold_left ( + ) 0 wins) /. float_of_int trials
      in
      Table.add_row t2
        [
          string_of_int c;
          string_of_int k;
          string_of_int l;
          fmt_f2 cap;
          fmt_f2 (Crn_games.Bounds.exact_uniform_win_probability ~c ~k ~rounds:l);
          fmt_f2 (win_rate 0 (fun rng -> Players.uniform rng ~c));
          fmt_f2 (win_rate 1 (fun rng -> Players.without_replacement rng ~c));
        ])
    (if !quick then [ (16, 2) ] else [ (8, 1); (16, 2); (16, 8); (32, 4) ]);
  print_table ~title:"  win probability at the Lemma 11 critical round count" t2;
  note "claim: every empirical rate is below the analytic cap (and far below 1/2)"

(* E9: the Lemma 12 reduction — COGCAST-as-player wins within
   min{c,n} * simulated-slots rounds. *)
let e9 () =
  header "E9" "Lemma 12 reduction: COGCAST as a hitting-game player";
  let t =
    Table.create
      [ "n"; "c"; "k"; "median rounds"; "median slots"; "rounds/slots"; "min{c,n}" ]
  in
  let cfgs =
    if !quick then [ (10, 6, 2); (4, 16, 4) ]
    else [ (10, 6, 2); (4, 16, 4); (32, 8, 1); (8, 8, 4); (64, 12, 3) ]
  in
  List.iter
    (fun (n, c, k) ->
      let trials = trials ~full:15 in
      let runs =
        run_trials ~trials ~base_seed:(40_000 + (1000 * n) + (10 * c) + k) (fun rng ->
            let alg = Reduction.cogcast_algorithm (Rng.split rng) ~n ~c in
            let player, slots_used = Reduction.player_of_algorithm ~c alg in
            let r =
              Hitting_game.play_bipartite ~rng ~c ~k ~player ~max_rounds:10_000_000
            in
            (float_of_int r.Hitting_game.rounds, float_of_int (slots_used ())))
      in
      let mr = Crn_stats.Summary.median (Array.map fst runs) in
      let ms = Crn_stats.Summary.median (Array.map snd runs) in
      Table.add_row t
        [
          string_of_int n;
          string_of_int c;
          string_of_int k;
          fmt_f mr;
          fmt_f ms;
          fmt_f2 (mr /. Float.max 1.0 ms);
          string_of_int (min c n);
        ])
    cfgs;
  print_table t;
  note "claim: rounds <= min{c,n} x slots on every run (the reduction's accounting)"

(* E15: Theorem 16's first-hit expectation. *)
let e15 () =
  header "E15" "Theorem 16 first-hit expectation: (c+1)/(k+1) for non-repeating strategies";
  let t =
    Table.create
      [ "c"; "k"; "scan"; "random-perm"; "uniform"; "(c+1)/(k+1)"; "c/k" ]
  in
  let cfgs = if !quick then [ (8, 2); (20, 10) ] else [ (8, 2); (12, 1); (16, 4); (20, 10); (32, 2) ] in
  List.iter
    (fun (c, k) ->
      let trials = if !quick then 5_000 else 40_000 in
      let mean i make_strategy =
        mean_of ~trials ~base_seed:(44_000 + (100 * c) + (10 * k) + i) (fun rng ->
            let strategy = make_strategy (Rng.split rng) in
            First_hit.sample ~rng ~c ~k ~strategy)
      in
      let scan = mean 0 (fun _ -> First_hit.scan_strategy ~c) in
      let perm = mean 1 (fun rng -> First_hit.fresh_random_strategy rng ~c) in
      let unif = mean 2 (fun rng -> First_hit.uniform_strategy rng ~c) in
      Table.add_row t
        [
          string_of_int c;
          string_of_int k;
          fmt_f2 scan;
          fmt_f2 perm;
          fmt_f2 unif;
          fmt_f2 (Complexity.global_label_lower_bound ~c ~k);
          fmt_f2 (float_of_int c /. float_of_int k);
        ])
    cfgs;
  print_table t;
  note "claim: scan and random-permutation match (c+1)/(k+1) exactly; uniform sits at c/k;";
  note "       nothing falls below the bound — the Omega(c/k) of Theorem 16"
