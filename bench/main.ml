(* Experiment harness: regenerates every quantitative claim of the paper as
   a table or series (experiments E1-E25 in DESIGN.md / EXPERIMENTS.md),
   plus Bechamel micro-benchmarks of the simulator kernels.

   Usage:
     dune exec bench/main.exe                   (full run, all experiments)
     dune exec bench/main.exe -- --quick        (trimmed sweeps, seconds)
     dune exec bench/main.exe -- E1 E8          (selected experiments)
     dune exec bench/main.exe -- --no-micro     (skip Bechamel section)
     dune exec bench/main.exe -- --jobs 4       (trial parallelism; same
                                                 tables at any job count)
     dune exec bench/main.exe -- --json out.json  (machine-readable results;
                                                 bare --json writes
                                                 BENCH_<date>.json)

   Unknown flags and unknown experiment ids are rejected with a usage
   message and a nonzero exit. *)

module Json = Crn_stats.Json

let experiments =
  [
    ("E1", Exp_broadcast.e1);
    ("E2", Exp_broadcast.e2);
    ("E3", Exp_broadcast.e3);
    ("E4", Exp_baselines.e4);
    ("E5", Exp_broadcast.e5);
    ("E6", Exp_cogcomp.e6);
    ("E7", Exp_baselines.e7);
    ("E8", Exp_games.e8);
    ("E9", Exp_games.e9);
    ("E10", Exp_baselines.e10);
    ("E11", Exp_broadcast.e11);
    ("E12", Exp_misc.e12);
    ("E13", Exp_misc.e13);
    ("E14", Exp_cogcomp.e14);
    ("E15", Exp_games.e15);
    ("E16", Exp_extensions.e16);
    ("E17", Exp_extensions.e17);
    ("E18", Exp_extensions.e18);
    ("E19", Exp_extensions.e19);
    ("E20", Exp_extensions.e20);
    ("E21", Exp_extensions.e21);
    ("E22", Exp_extensions.e22);
    ("E23", Exp_load.e23);
    ("E24", Exp_adversary.e24);
    ("E25", Exp_extensions.e25);
    ("E26", Exp_extensions.e26);
    (* Not a paper experiment: the engine hot-path micro-benchmark
       (allocations/slot and ns/slot, rewritten engines vs their reference
       specifications). `bench/main.exe -- micro --quick --json` is the CI
       smoke invocation that accumulates per-PR perf data points. *)
    ("MICRO", Micro.bench_engine);
  ]

let known_ids = List.map fst experiments

let usage oc =
  Printf.fprintf oc
    "usage: bench/main.exe [OPTIONS] [EXPERIMENT-ID...]\n\
     \n\
     options:\n\
     \  --quick         trimmed sweeps and trial counts (seconds, not minutes)\n\
     \  --no-micro      skip the Bechamel micro-benchmark section\n\
     \                  (the MICRO engine bench is an experiment id instead:\n\
     \                  `main.exe -- micro --quick --json` for the CI smoke)\n\
     \  --jobs N        run trials on N domains (default: %d, the recommended\n\
     \                  domain count; results are identical at any N)\n\
     \  --json [PATH]   also write results as JSON to PATH (default\n\
     \                  BENCH_<yyyy-mm-dd>.json)\n\
     \  --trace [PATH]  record one instrumented COGCOMP run (n=64 c=16 k=4)\n\
     \                  and write its slot-level event trace as JSON Lines\n\
     \                  (default TRACE_<yyyy-mm-dd>.jsonl)\n\
     \  --metrics [PATH] derive the metrics registry from the same\n\
     \                  instrumented run and write it as JSON (default\n\
     \                  METRICS_<yyyy-mm-dd>.json)\n\
     \  --help          this message\n\
     \n\
     experiment ids: %s\n"
    (Crn_exec.Pool.default_jobs ())
    (String.concat " " known_ids)

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "bench/main.exe: %s\n\n" msg;
      usage stderr;
      exit 2)
    fmt

let dated fmt =
  let tm = Unix.localtime (Unix.gettimeofday ()) in
  Printf.sprintf fmt (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday

let default_json_path () = dated "BENCH_%04d-%02d-%02d.json"
let default_trace_path () = dated "TRACE_%04d-%02d-%02d.jsonl"
let default_metrics_path () = dated "METRICS_%04d-%02d-%02d.json"

type config = {
  mutable micro : bool;
  mutable json : string option;
  mutable trace : string option;
  mutable metrics : string option;
  mutable selected : string list; (* reversed *)
}

let parse_args argv =
  let cfg = { micro = true; json = None; trace = None; metrics = None; selected = [] } in
  let is_flag a = String.length a > 0 && a.[0] = '-' in
  let is_known_id a = List.mem (String.uppercase_ascii a) known_ids in
  let parse_jobs v =
    match int_of_string_opt v with
    | Some n when n >= 1 -> Bench_util.jobs := n
    | _ -> die "--jobs needs a positive integer, got %S" v
  in
  let rec go = function
    | [] -> ()
    | "--help" :: _ | "-h" :: _ ->
        usage stdout;
        exit 0
    | "--quick" :: rest ->
        Bench_util.quick := true;
        go rest
    | "--no-micro" :: rest ->
        cfg.micro <- false;
        go rest
    | "--jobs" :: v :: rest ->
        parse_jobs v;
        go rest
    | [ "--jobs" ] -> die "--jobs needs a value"
    | "--json" :: rest -> (
        (* --json takes an optional PATH: the next token is consumed unless
           it is a flag or an experiment id. *)
        match rest with
        | v :: rest' when (not (is_flag v)) && not (is_known_id v) ->
            cfg.json <- Some v;
            go rest'
        | _ ->
            cfg.json <- Some (default_json_path ());
            go rest)
    | "--trace" :: rest -> (
        match rest with
        | v :: rest' when (not (is_flag v)) && not (is_known_id v) ->
            cfg.trace <- Some v;
            go rest'
        | _ ->
            cfg.trace <- Some (default_trace_path ());
            go rest)
    | "--metrics" :: rest -> (
        match rest with
        | v :: rest' when (not (is_flag v)) && not (is_known_id v) ->
            cfg.metrics <- Some v;
            go rest'
        | _ ->
            cfg.metrics <- Some (default_metrics_path ());
            go rest)
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
        parse_jobs (String.sub a 7 (String.length a - 7));
        go rest
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--json=" ->
        cfg.json <- Some (String.sub a 7 (String.length a - 7));
        go rest
    | a :: rest when String.length a > 8 && String.sub a 0 8 = "--trace=" ->
        cfg.trace <- Some (String.sub a 8 (String.length a - 8));
        go rest
    | a :: rest when String.length a > 10 && String.sub a 0 10 = "--metrics=" ->
        cfg.metrics <- Some (String.sub a 10 (String.length a - 10));
        go rest
    | a :: _ when is_flag a -> die "unknown flag %S" a
    | a :: rest ->
        let id = String.uppercase_ascii a in
        if not (List.mem id known_ids) then
          die "unknown experiment id %S; known: %s" a (String.concat " " known_ids);
        cfg.selected <- id :: cfg.selected;
        go rest
  in
  go argv;
  cfg

let () =
  let cfg = parse_args (List.tl (Array.to_list Sys.argv)) in
  let selected = List.rev cfg.selected in
  let to_run =
    if selected = [] then experiments
    else List.filter (fun (id, _) -> List.mem id selected) experiments
  in
  print_endline "Efficient Communication in Cognitive Radio Networks (PODC'15)";
  print_endline "reproduction harness — slot counts are the paper's own unit.";
  if !Bench_util.quick then print_endline "(quick mode: trimmed sweeps and trial counts)";
  Printf.printf "(trial parallelism: --jobs %d; tables are seed-deterministic at any job count)\n"
    !Bench_util.jobs;
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (id, run) ->
      let t = Unix.gettimeofday () in
      run ();
      Printf.printf "  [%s done in %.1fs]\n%!" id (Unix.gettimeofday () -. t))
    to_run;
  if cfg.micro && selected = [] then Micro.run ();
  let total = Unix.gettimeofday () -. t0 in
  (match cfg.json with
  | None -> ()
  | Some path ->
      let report =
        Json.Obj
          [
            ("schema", Json.String "crn-bench/1");
            ( "generated_at",
              let tm = Unix.localtime (Unix.gettimeofday ()) in
              Json.String
                (Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d"
                   (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
                   tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec) );
            ("ocaml_version", Json.String Sys.ocaml_version);
            ("quick", Json.Bool !Bench_util.quick);
            ("jobs", Json.Int !Bench_util.jobs);
            ( "selected",
              Json.List (List.map (fun (id, _) -> Json.String id) to_run) );
            ("total_wall_s", Json.Float total);
            ("experiments", Bench_util.records_json ());
          ]
      in
      Json.write ~path report;
      Printf.printf "\nwrote %s\n" path);
  (if cfg.trace <> None || cfg.metrics <> None then begin
     (* One instrumented COGCOMP run at the representative point used across
        the experiment suite (n=64 c=16 k=4, seed 1). The measured
        experiments above always run untraced, so their wall-clock numbers
        are unaffected by these flags. *)
     let tr = Crn_radio.Trace.create () in
     let rng = Crn_prng.Rng.create 1 in
     let spec = { Crn_channel.Topology.n = 64; c = 16; k = 4 } in
     let assignment =
       Crn_channel.Topology.generate Crn_channel.Topology.Shared_plus_random rng spec
     in
     let values = Array.init spec.Crn_channel.Topology.n (fun v -> v) in
     ignore
       (Crn_core.Cogcomp.run ~trace:tr ~monoid:Crn_core.Aggregate.sum ~values
          ~source:0 ~assignment ~k:spec.Crn_channel.Topology.k ~rng ());
     (match cfg.trace with
     | Some path ->
         Crn_radio.Trace.write_jsonl ~path tr;
         Printf.printf "wrote %s (%d events)\n" path (Crn_radio.Trace.length tr)
     | None -> ());
     match cfg.metrics with
     | Some path ->
         let reg = Crn_radio.Metrics.Registry.create () in
         Crn_radio.Metrics.Registry.observe_trace reg tr;
         Json.write ~path (Crn_radio.Metrics.Registry.to_json reg);
         Printf.printf "wrote %s\n" path
     | None -> ()
   end);
  Printf.printf "\nall experiments done in %.1fs\n" total
