(* Experiments E12 and E13: jamming resistance (Theorem 18) and the decay
   backoff realization of the contention model (footnote 4). *)

open Bench_util
module Rng = Crn_prng.Rng
module Jammer = Crn_radio.Jammer
module Jamming_reduction = Crn_radio.Jamming_reduction
module Backoff = Crn_radio.Backoff
module Cogcast = Crn_core.Cogcast
module Complexity = Crn_core.Complexity
module Table = Crn_stats.Table
module Fit = Crn_stats.Fit

(* E12: COGCAST under an n-uniform jammer via the Theorem 18 availability
   reduction, sweeping the jamming budget towards the c/2 limit. *)
let e12 () =
  header "E12" "Jamming resistance via the Theorem 18 reduction (n = 64, C = 64)";
  let n = 64 and big_c = 64 in
  let budgets = if !quick then [ 8; 24 ] else [ 1; 4; 8; 16; 24; 28; 31 ] in
  let t =
    Table.create
      [ "jam budget k'"; "overlap c-2k'"; "jammer"; "median slots"; "unjammed ref" ]
  in
  let reference =
    median_of ~trials:(trials ~full:5) ~base_seed:14_000 (fun rng ->
        let spec = { Crn_channel.Topology.n; c = big_c; k = big_c } in
        let assignment = Crn_channel.Topology.identical rng spec in
        let r = Cogcast.run_static ~source:0 ~assignment ~k:big_c ~rng () in
        Option.value ~default:r.Cogcast.slots_run r.Cogcast.completed_at)
  in
  List.iter
    (fun budget ->
      List.iter
        (fun (jname, make_jammer) ->
          let k = Jamming_reduction.overlap_guarantee ~num_channels:big_c ~budget in
          let c = big_c - budget in
          (* The jammer is rebuilt per trial: its jam sets are a pure
             function of its seed, so this costs nothing in determinism and
             keeps trials free of shared state. *)
          let m =
            median_of ~trials:(trials ~full:5) ~base_seed:(15_000 + budget) (fun rng ->
                let availability =
                  Jamming_reduction.availability_of_jammer
                    ~shuffle_labels:(Rng.split rng) ~num_nodes:n ~num_channels:big_c
                    ~jammer:(make_jammer ()) ()
                in
                let max_slots = 8 * Complexity.cogcast_slots ~n ~c ~k () in
                let r = Cogcast.run ~source:0 ~availability ~rng ~max_slots () in
                Option.value ~default:r.Cogcast.slots_run r.Cogcast.completed_at)
          in
          Table.add_row t
            [
              string_of_int budget;
              string_of_int k;
              jname;
              fmt_f m;
              fmt_f reference;
            ])
        [
          ( "random-per-node",
            fun () -> Jammer.random_per_node ~seed:3L ~budget ~num_channels:big_c );
          ("sweep", fun () -> Jammer.sweep ~budget ~num_channels:big_c);
        ])
    budgets;
  print_table t;
  note "claim: broadcast completes for every budget k' < C/2 (Theorem 18's regime).";
  note "Times stay near the unjammed reference because these jammers leave the";
  note "*typical* pairwise overlap far above the worst-case guarantee c-2k';";
  note "Theorem 4 with k := c-2k' is the guarantee, not the typical cost."

(* E13: decay backoff cost per abstract slot on the raw collision radio. *)
let e13 () =
  header "E13" "Decay backoff: raw rounds per one-winner slot (footnote 4: O(log^2 n))";
  let ms = if !quick then [ 2; 16; 256 ] else [ 2; 4; 16; 64; 256; 1024 ] in
  let t =
    Table.create [ "contenders m"; "mean rounds"; "p99 rounds"; "bound 4(lg m + 1)^2"; "failures" ]
  in
  let pts = ref [] in
  List.iter
    (fun m ->
      let trials = if !quick then 100 else 400 in
      let sessions =
        run_trials ~trials ~base_seed:(45_000 + m) (fun rng ->
            match Backoff.session ~rng ~contenders:m ~cap:100_000 with
            | Some { Backoff.rounds; _ } -> Some rounds
            | None -> None)
      in
      let samples =
        Array.map (function Some r -> float_of_int r | None -> 0.0) sessions
      in
      let failures =
        Array.fold_left (fun acc s -> if s = None then acc + 1 else acc) 0 sessions
      in
      let s = Crn_stats.Summary.of_floats samples in
      pts := (float_of_int m, s.Crn_stats.Summary.mean) :: !pts;
      Table.add_row t
        [
          string_of_int m;
          fmt_f2 s.Crn_stats.Summary.mean;
          fmt_f s.Crn_stats.Summary.p99;
          string_of_int (Backoff.expected_rounds_bound m);
          string_of_int failures;
        ])
    ms;
  print_table t;
  (* Growth vs lg m should be at most quadratic: fit mean rounds against
     (lg m)^2 and report. *)
  let quad_pts =
    List.map (fun (m, y) -> (Complexity.lg m ** 2.0, y)) !pts |> Array.of_list
  in
  let fit = Fit.linear quad_pts in
  note "mean rounds ~ %.2f * (lg m)^2 + %.1f (r2=%.3f); footnote 4 claims O(log^2 n)"
    fit.Fit.slope fit.Fit.intercept fit.Fit.r2
