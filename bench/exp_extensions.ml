(* Experiments E16-E22 and E25: extensions beyond the paper's headline
   results.

   E16 contextualizes COGCAST against the deterministic rendezvous family
   the paper cites as prior art (§1, §3): pairwise meeting times and
   schedule-driven broadcast vs the epidemic.

   E17 exercises the §1 robustness claim: COGCAST under transient node
   faults (random naps and duty cycling). *)

open Bench_util
module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Assignment = Crn_channel.Assignment
module Dynamic = Crn_channel.Dynamic
module Faults = Crn_radio.Faults
module Cogcast = Crn_core.Cogcast
module Complexity = Crn_core.Complexity
module Deterministic = Crn_rendezvous.Deterministic
module Random_hop = Crn_rendezvous.Random_hop
module Table = Crn_stats.Table

(* E16: pairwise rendezvous — deterministic schedules vs random hopping on
   shared-core instances, and broadcast built from each. *)
let e16 () =
  header "E16"
    "Deterministic rendezvous (prior art, §1/§3) vs random hopping and COGCAST";
  let t =
    Table.create
      [ "c"; "k"; "random-hop mean"; "jump-stay worst"; "c^2/k"; "9P^2 cap" ]
  in
  let cfgs = if !quick then [ (6, 2); (10, 3) ] else [ (4, 1); (6, 2); (8, 4); (10, 3); (12, 2) ] in
  List.iter
    (fun (c, k) ->
      let spec = { Topology.n = 2; c; k } in
      let trials = trials ~full:40 in
      (* Random hopping: mean over fresh instances. *)
      let rh =
        mean_of ~trials ~base_seed:(16_000 + c) (fun rng ->
            let a = Topology.shared_core rng spec in
            match
              Random_hop.pair ~rng ~assignment:a ~u:0 ~v:1 ~max_slots:1_000_000
            with
            | Some s -> s
            | None -> 1_000_000)
      in
      (* Jump-stay: worst case over instances (deterministic given the
         instance). *)
      let runs =
        run_trials ~trials ~base_seed:(17_000 + c) (fun rng ->
            let a = Topology.shared_core ~global_labels:true rng spec in
            let p = Deterministic.smallest_prime_geq (Assignment.num_channels a) in
            let cap = 9 * p * p in
            let s =
              match
                Deterministic.pair_rendezvous a
                  ~u:(Deterministic.jump_stay a ~node:0)
                  ~v:(Deterministic.jump_stay a ~node:1)
                  ~max_slots:cap
              with
              | Some s -> s
              | None -> cap
            in
            (s, cap))
      in
      let js_worst = Array.fold_left (fun acc (s, _) -> max acc s) 0 runs in
      let cap = Array.fold_left (fun acc (_, c) -> max acc c) 0 runs in
      Table.add_row t
        [
          string_of_int c;
          string_of_int k;
          fmt_f rh;
          string_of_int js_worst;
          fmt_f (float_of_int (c * c) /. float_of_int k);
          string_of_int cap;
        ])
    cfgs;
  print_table t;
  note "random hopping meets in ~c^2/k expected slots (the §1 bound); jump-stay is";
  note "deterministic and worst-case bounded, but needs global labels — under the";
  note "paper's local-label model no deterministic schedule can coordinate (§6).";
  (* Broadcast comparison at one config. *)
  let spec = { Topology.n = 32; c = 8; k = 3 } in
  let trials = trials ~full:5 in
  let epidemic =
    median_of ~trials ~base_seed:18_000 (fun rng ->
        let a = Topology.shared_core ~global_labels:true rng spec in
        let r = Cogcast.run_static ~source:0 ~assignment:a ~k:3 ~rng () in
        Option.value ~default:r.Cogcast.slots_run r.Cogcast.completed_at)
  in
  let js =
    median_of ~trials ~base_seed:19_000 (fun rng ->
        let a = Topology.shared_core ~global_labels:true rng spec in
        match
          Deterministic.broadcast ~make_schedule:Deterministic.jump_stay ~source:0
            ~assignment:a ~rng ~max_slots:1_000_000 ()
        with
        | Some s -> s
        | None -> 1_000_000)
  in
  note "broadcast n=32 c=8 k=3: COGCAST median %.0f vs jump-stay-epidemic median %.0f"
    epidemic js

(* E17: robustness to transient faults (§1 discussion). *)
let e17 () =
  header "E17" "COGCAST under transient faults (n = 64, c = 16, k = 4; §1 robustness)";
  let spec = { Topology.n = 64; c = 16; k = 4 } in
  let { Topology.n; c; k } = spec in
  let budget = 8 * Complexity.cogcast_slots ~n ~c ~k () in
  let t = Table.create [ "fault model"; "down fraction"; "median slots"; "vs fault-free" ] in
  let run_with faults rng =
    let run_rng = Rng.split rng in
    let a = Topology.shared_plus_random rng spec in
    let r =
      Cogcast.run ~faults ~source:0 ~availability:(Dynamic.static a) ~rng:run_rng
        ~max_slots:budget ()
    in
    Option.value ~default:r.Cogcast.slots_run r.Cogcast.completed_at
  in
  let trials = trials ~full:9 in
  let base = median_of ~trials ~base_seed:20_000 (run_with Faults.none) in
  Table.add_row t [ "none"; "0.00"; fmt_f base; "1.00" ];
  List.iter
    (fun rate ->
      let faults = Faults.random_naps ~seed:(Int64.of_float (rate *. 100.0)) ~rate in
      let m = median_of ~trials ~base_seed:(21_000 + int_of_float (rate *. 100.)) (run_with faults) in
      Table.add_row t
        [ "random naps"; fmt_f2 rate; fmt_f m; fmt_f2 (m /. base) ])
    [ 0.1; 0.3; 0.5; 0.7 ];
  List.iter
    (fun (period, nap) ->
      let faults = Faults.periodic_nap ~period ~nap ~offset_stride:7 in
      let m = median_of ~trials ~base_seed:(22_000 + nap) (run_with faults) in
      Table.add_row t
        [
          Printf.sprintf "duty cycle %d/%d" nap period;
          fmt_f2 (float_of_int nap /. float_of_int period);
          fmt_f m;
          fmt_f2 (m /. base);
        ])
    [ (8, 2); (8, 4) ];
  print_table t;
  note "claim (§1): obliviousness makes COGCAST robust — a node that misses a";
  note "fraction q of slots slows completion by roughly 1/(1-q)^2 (both endpoints";
  note "must be awake), never breaking correctness"

module Cogcomp = Crn_core.Cogcomp
module Aggregate = Crn_core.Aggregate

(* E18: mediator ablation — phase-4 steps with and without the per-channel
   coordination (the design choice §5 motivates). *)
let e18 () =
  header "E18" "Ablation: COGCOMP phase 4 with vs without mediators (c = 8, k = 2)";
  let c = 8 and k = 2 in
  let ns = if !quick then [ 32; 128 ] else [ 32; 64; 128; 256; 512 ] in
  let t =
    Table.create
      [ "n"; "mediated steps"; "unmediated steps"; "penalty"; "both correct" ]
  in
  List.iter
    (fun n ->
      let spec = { Topology.n; c; k } in
      let trials = trials ~full:5 in
      (* Each trial reports (steps, correct); correctness is then folded
         over all runs rather than accumulated through a shared ref. *)
      let steps mediated base_seed =
        let runs =
          run_trials ~trials ~base_seed (fun rng ->
              let run_rng = Rng.split rng in
              let assignment = Topology.shared_core rng spec in
              let values = Array.init n (fun i -> i) in
              let res =
                Cogcomp.run ~mediated ~monoid:Aggregate.sum ~values ~source:0
                  ~assignment ~k ~rng:run_rng ()
              in
              ( float_of_int res.Cogcomp.phase4_steps,
                res.Cogcomp.root_value = Some (n * (n - 1) / 2) ))
        in
        let med = Crn_stats.Summary.median (Array.map fst runs) in
        let ok = Array.for_all snd runs in
        (med, ok)
      in
      let med, ok1 = steps true (23_000 + n) in
      let unmed, ok2 = steps false (24_000 + n) in
      Table.add_row t
        [
          string_of_int n;
          fmt_f med;
          fmt_f unmed;
          fmt_f2 (unmed /. Float.max 1.0 med);
          string_of_bool (ok1 && ok2);
        ])
    ns;
  print_table t;
  note "claim (§5): without the mediator serializing each channel, ready senders";
  note "from different clusters contend; correctness is preserved (the receiver";
  note "filters by cluster) but the drain pays a contention penalty that grows";
  note "with the number of co-channel clusters"

(* E19: message size — §5 discussion: associative aggregation needs only a
   constant-size digest per message, vs forwarding whole value lists. *)
let e19 () =
  header "E19" "Message size: digest vs raw-forwarding payloads (c = 10, k = 3; §5)";
  let c = 10 and k = 3 in
  let ns = if !quick then [ 32; 128 ] else [ 32; 64; 128; 256; 512 ] in
  let t =
    Table.create
      [ "n"; "digest max"; "digest total"; "multiset max"; "multiset total" ]
  in
  List.iter
    (fun n ->
      let spec = { Topology.n; c; k } in
      let assignment = Topology.shared_plus_random (Rng.create (25_000 + n)) spec in
      let digest =
        Cogcomp.run ~measure:(fun _ -> 1) ~monoid:Aggregate.sum
          ~values:(Array.init n (fun i -> i))
          ~source:0 ~assignment ~k ~rng:(Rng.create (26_000 + n)) ()
      in
      let raw =
        Cogcomp.run ~measure:List.length ~monoid:Aggregate.multiset
          ~values:(Array.init n (fun i -> [ i ]))
          ~source:0 ~assignment ~k ~rng:(Rng.create (27_000 + n)) ()
      in
      Table.add_row t
        [
          string_of_int n;
          string_of_int digest.Cogcomp.max_payload;
          string_of_int digest.Cogcomp.total_payload;
          string_of_int raw.Cogcomp.max_payload;
          string_of_int raw.Cogcomp.total_payload;
        ])
    ns;
  print_table t;
  note "claim (§5): with an associative function each message carries O(1) digests";
  note "(polylog bits), while raw forwarding makes the root's children carry whole";
  note "subtrees — Theta(n) values in the worst case, Theta(n log n)-ish in total"

module Adversary = Crn_channel.Adversary

(* E20: Theorem 17 — the dynamic adversary stalls predictable algorithms
   forever; secret randomness escapes. *)
let e20 () =
  header "E20" "Theorem 17: dynamic adversary vs predictable algorithms (n = 16, c = 8, k = 3)";
  let n = 16 and c = 8 and k = 3 in
  let spec = { Topology.n; c; k } in
  let horizon = if !quick then 2_000 else 20_000 in
  let t = Table.create [ "victim"; "slots run"; "informed"; "completed" ] in
  let report name (r : Cogcast.result) =
    Table.add_row t
      [
        name;
        string_of_int r.Cogcast.slots_run;
        Printf.sprintf "%d/%d" r.Cogcast.informed_count n;
        (match r.Cogcast.completed_at with Some s -> string_of_int s | None -> "never");
      ]
  in
  (* Leaked-seed COGCAST: the adversary replays the victim's own stream. *)
  let seed = 2025 in
  let d_leak =
    Adversary.isolate_source ~spec ~source:0
      ~predict_source_label:(Cogcast.label_oracle ~seed ~n ~c ~node:0)
  in
  report "COGCAST, leaked seed"
    (Cogcast.run ~source:0 ~availability:d_leak ~rng:(Rng.create seed)
       ~max_slots:horizon ());
  (* A deterministic label-0 schedule. *)
  let d_det =
    Adversary.isolate_source ~spec ~source:0 ~predict_source_label:(fun ~slot:_ -> 0)
  in
  let informed = Array.make n false in
  informed.(0) <- true;
  let count = ref 1 in
  let nodes =
    Array.init n (fun v ->
        Crn_radio.Engine.node ~id:v
          ~decide:(fun ~slot:_ ->
            if v = 0 then Crn_radio.Action.broadcast ~label:0 ()
            else Crn_radio.Action.listen ~label:0)
          ~feedback:(fun ~slot:_ -> function
            | Crn_radio.Action.Heard _ ->
                if not informed.(v) then begin
                  informed.(v) <- true;
                  incr count
                end
            | _ -> ()))
  in
  ignore
    (Crn_radio.Engine.run ~availability:d_det ~rng:(Rng.create 5) ~nodes
       ~max_slots:horizon ());
  Table.add_row t
    [
      "fixed-label schedule";
      string_of_int horizon;
      Printf.sprintf "%d/%d" !count n;
      "never";
    ];
  (* Secret-seed COGCAST against the same adversary (its oracle replays the
     wrong stream). *)
  let d_secret =
    Adversary.isolate_source ~spec ~source:0
      ~predict_source_label:(Cogcast.label_oracle ~seed ~n ~c ~node:0)
  in
  report "COGCAST, secret seed"
    (Cogcast.run ~source:0 ~availability:d_secret ~rng:(Rng.create 31337)
       ~max_slots:horizon ());
  print_table t;
  note "claim (Thm 17): with k < c the availability can conspire against any";
  note "algorithm whose choices it can predict — determinism or leaked seeds mean";
  note "the source stays isolated forever; fresh secret randomness completes fast"

module Metrics = Crn_radio.Metrics
module Protocol = Crn_proto.Protocol
module Registry = Crn_proto.Registry

(* E21 (library extension, not a paper claim): the energy side of the
   time/energy trade — the epidemic finishes much sooner but transmits far
   more per slot than the source-only baseline. *)
let e21 () =
  header "E21" "Telemetry: transmissions & awake-slots, COGCAST vs rendezvous baseline";
  let k = 2 in
  let ns = if !quick then [ 64 ] else [ 64; 256; 1024 ] in
  let c = 16 in
  let t =
    Table.create
      [ "n"; "protocol"; "slots"; "total tx"; "tx/node"; "awake/node" ]
  in
  List.iter
    (fun n ->
      let spec = { Topology.n; c; k } in
      let assignment = Topology.shared_core (Rng.create (28_000 + n)) spec in
      let m = Metrics.create n in
      let r =
        Cogcast.run_static ~metrics:m ~source:0 ~assignment ~k
          ~rng:(Rng.create (28_100 + n)) ()
      in
      let slots = Option.value ~default:r.Cogcast.slots_run r.Cogcast.completed_at in
      Table.add_row t
        [
          string_of_int n;
          "COGCAST";
          string_of_int slots;
          string_of_int (Metrics.total_transmissions m);
          fmt_f2 (float_of_int (Metrics.total_transmissions m) /. float_of_int n);
          fmt_f2 (float_of_int (Metrics.total_awake m) /. float_of_int n);
        ];
      let m2 = Metrics.create n in
      (* Baseline via the registry: per-node metrics flow through the
         protocol layer's engine driver just as for a direct call. *)
      let r2 =
        Protocol.run
          (Registry.find_exn "broadcast_baseline")
          (Protocol.env ~k ~metrics:m2
             ~availability:(Crn_channel.Dynamic.static assignment)
             ~rng:(Rng.create (28_200 + n)) ())
      in
      let slots2 =
        Option.value ~default:r2.Protocol.slots_run r2.Protocol.completed_at
      in
      Table.add_row t
        [
          string_of_int n;
          "rendezvous";
          string_of_int slots2;
          string_of_int (Metrics.total_transmissions m2);
          fmt_f2 (float_of_int (Metrics.total_transmissions m2) /. float_of_int n);
          fmt_f2 (float_of_int (Metrics.total_awake m2) /. float_of_int n);
        ])
    ns;
  print_table t;
  note "not a paper claim — telemetry exposed by the library: the epidemic's speed";
  note "is bought with many concurrent transmitters (every informed node talks each";
  note "slot), while the baseline transmits from the source only but stays on the";
  note "air ~c/speedup times longer. awake slots (listening cost) favor COGCAST."

(* E22: footnote 4 end-to-end — COGCAST executed over decay-backoff
   contention sessions on the raw collision radio; overhead in raw rounds
   per abstract slot should be O(log² n) with a small constant. *)
let e22 () =
  header "E22" "COGCAST on the raw radio via decay sessions (footnote 4, end-to-end)";
  let c = 8 and k = 2 in
  let ns = if !quick then [ 16; 64 ] else [ 16; 32; 64; 128; 256 ] in
  let t =
    Table.create
      [ "n"; "abstract slots"; "raw rounds"; "rounds/slot"; "4(lg n + 1)^2"; "failed sessions" ]
  in
  List.iter
    (fun n ->
      let spec = { Topology.n; c; k } in
      let trials = trials ~full:5 in
      let runs =
        run_trials ~trials ~base_seed:(29_000 + n) (fun rng ->
            let run_rng = Rng.split rng in
            let assignment = Topology.shared_plus_random rng spec in
            let max_slots = 8 * Complexity.cogcast_slots ~n ~c ~k () in
            let r, outcome =
              Cogcast.run_emulated ~source:0
                ~availability:(Dynamic.static assignment)
                ~rng:run_rng ~max_slots ()
            in
            ( r.Cogcast.slots_run,
              outcome.Crn_radio.Emulation.raw_rounds,
              outcome.Crn_radio.Emulation.failed_sessions ))
      in
      let slots = Array.fold_left (fun acc (s, _, _) -> acc + s) 0 runs in
      let rounds = Array.fold_left (fun acc (_, r, _) -> acc + r) 0 runs in
      let failed = Array.fold_left (fun acc (_, _, f) -> acc + f) 0 runs in
      let ft = float_of_int trials in
      Table.add_row t
        [
          string_of_int n;
          fmt_f (float_of_int slots /. ft);
          fmt_f (float_of_int rounds /. ft);
          fmt_f2 (float_of_int rounds /. float_of_int (max 1 slots));
          string_of_int (Crn_radio.Backoff.expected_rounds_bound n);
          string_of_int failed;
        ])
    ns;
  print_table t;
  note "claim (footnote 4): the one-winner model costs O(log^2 n) raw rounds per";
  note "abstract slot; measured per-slot overhead grows logarithmically and stays";
  note "far below the worst-case budget, with no failed contention sessions";
  (* And the full aggregation stack, all four phases on the raw radio. *)
  let n = 32 in
  let assignment =
    Topology.shared_plus_random (Rng.create 29_500) { Topology.n; c; k }
  in
  let values = Array.init n (fun i -> i) in
  let res, raw_rounds =
    Cogcomp.run_emulated ~monoid:Aggregate.sum ~values ~source:0 ~assignment ~k
      ~rng:(Rng.create 29_501) ()
  in
  note "COGCOMP end-to-end on the raw radio (n=32): complete=%b, sum %s, %d abstract"
    res.Crn_core.Cogcomp.complete
    (match res.Crn_core.Cogcomp.root_value with
    | Some v -> string_of_int v
    | None -> "-")
    res.Crn_core.Cogcomp.total_slots;
  note "slots realized in %d raw rounds (%.2f rounds/slot)" raw_rounds
    (float_of_int raw_rounds /. float_of_int (max 1 res.Crn_core.Cogcomp.total_slots))

(* E25: the footnote-4 loop closed for the whole registry — every
   emulation-capable protocol executed on the raw collision radio under
   both contention realizations. The decay overhead factor (raw rounds per
   abstract slot) must stay within the 4(⌈lg n⌉+1)² budget; the CSMA/CA
   curve is reported alongside (no budget is claimed for it: its window
   adapts from collisions rather than from a population estimate). *)
let e25 () =
  header "E25"
    "Registry on the raw radio: rounds/slot, decay vs CSMA/CA (footnote 4)";
  let module Protocol = Crn_proto.Protocol in
  let module Registry = Crn_proto.Registry in
  let module Runner = Crn_radio.Runner in
  let module Emulation = Crn_radio.Emulation in
  let c = 8 and k = 2 in
  let ns = if !quick then [ 16; 64 ] else [ 16; 64; 256 ] in
  (* Every registry entry that accepts the emulation backend: all but the
     struct-of-arrays twin and robust COGCOMP, which are engine-only. *)
  let protos =
    [
      "cogcast";
      "cogcomp";
      "broadcast_baseline";
      "aggregation_baseline";
      "aggregation_baseline_honest";
      "random_hop";
      "seq_scan";
      "deterministic";
      "gossip";
      "push_sum";
    ]
  in
  let t =
    Table.create
      [
        "protocol"; "n"; "slots"; "decay r/slot"; "csma r/slot";
        "4(lg n+1)^2"; "decay failed"; "csma failed";
      ]
  in
  let violations = ref [] in
  List.iteri
    (fun pi name ->
      let proto = Registry.find_exn name in
      List.iter
        (fun n ->
          let spec = { Topology.n; c; k } in
          let trials = trials ~full:5 in
          let measure strategy =
            (* Same base seed for both strategies: trial i sees the same
               assignment and protocol stream under decay and CSMA, so the
               two columns differ only in the contention realization. *)
            let runs =
              run_trials ~trials ~base_seed:(31_000 + (1_000 * pi) + n)
                (fun rng ->
                  let run_rng = Rng.split rng in
                  let assignment = Topology.shared_plus_random rng spec in
                  let s =
                    Protocol.run proto
                      (Protocol.env
                         ~backend:(Runner.Emulation { strategy; session_cap = None })
                         ~k
                         ~availability:(Dynamic.static assignment)
                         ~rng:run_rng ())
                  in
                  ( s.Protocol.slots_run,
                    s.Protocol.raw_rounds,
                    s.Protocol.failed_sessions ))
            in
            let slots = Array.fold_left (fun acc (s, _, _) -> acc + s) 0 runs in
            let rounds = Array.fold_left (fun acc (_, r, _) -> acc + r) 0 runs in
            let failed = Array.fold_left (fun acc (_, _, f) -> acc + f) 0 runs in
            (slots, float_of_int rounds /. float_of_int (max 1 slots), failed)
          in
          let slots, decay_factor, decay_failed = measure Emulation.Decay in
          let _, csma_factor, csma_failed = measure Emulation.Csma in
          let budget = Crn_radio.Backoff.expected_rounds_bound n in
          if decay_factor > float_of_int budget then
            violations :=
              Printf.sprintf "%s n=%d: decay %.2f rounds/slot > budget %d" name
                n decay_factor budget
              :: !violations;
          Table.add_row t
            [
              name;
              string_of_int n;
              fmt_f (float_of_int slots /. float_of_int (trials));
              fmt_f2 decay_factor;
              fmt_f2 csma_factor;
              string_of_int budget;
              string_of_int decay_failed;
              string_of_int csma_failed;
            ])
        ns)
    protos;
  print_table t;
  (match !violations with
  | [] ->
      note "claim (footnote 4): every protocol's decay overhead factor stays within";
      note "the 4(lg n + 1)^2 budget — it holds for the entire registry at every n"
  | vs -> List.iter (fun v -> note "VIOLATION: %s" v) (List.rev vs));
  note "CSMA/CA is reported, not budgeted: its contention window adapts from";
  note "observed collisions, so heavy contention can push sessions past tight caps"

(* E26: the machine registry on the struct-of-arrays backend — the
   universal-backend seam, measured. Every of_machine entry runs under
   [--backend soa] at n = 10^4 and 10^5 (shards 1 and 8), with the classic
   engine alongside at the n where it is feasible; summaries at the common
   n are compared byte-for-byte, so the table doubles as a parity audit of
   the generic adapter. The of_run entries are excluded by construction —
   cogcomp and cogcomp_robust orchestrate several engine runs across
   phases, which is not a single machine the driver can re-place, and
   cogcast's own SoA twin (cogcast_soa) is audited trace-for-trace in
   test/test_soa.ml — see EXPERIMENTS.md. *)
let e26 () =
  header "E26" "Machine registry on the SoA backend: scale and parity";
  let module Protocol = Crn_proto.Protocol in
  let module Registry = Crn_proto.Registry in
  let module Runner = Crn_radio.Runner in
  let module Json = Crn_stats.Json in
  let c = 8 and k = 2 in
  let engine_n, big_ns =
    if !quick then (1_000, [ 1_000; 10_000 ]) else (10_000, [ 10_000; 100_000 ])
  in
  let scale_n = List.nth big_ns 1 in
  let max_slots = 2_000 in
  let t =
    Table.create [ "protocol"; "n"; "backend"; "slots"; "done"; "wall s"; "parity" ]
  in
  let mismatches = ref [] in
  let completed_at_scale = ref [] in
  List.iteri
    (fun pi name ->
      let proto = Registry.find_exn name in
      (* Both backends must see the same instance and the same protocol
         stream: the assignment rng and the env rng are re-created from the
         same seeds for every (backend, shards) cell. *)
      let run ~n ~backend ~shards =
        let rng = Rng.create (33_000 + (1_000 * pi) + n) in
        let assignment = Topology.shared_plus_random rng { Topology.n; c; k } in
        let env =
          Protocol.env ~backend ~shards ~k ~max_slots
            ~availability:(Dynamic.static assignment)
            ~rng:(Rng.create (33_500 + (1_000 * pi) + n))
            ()
        in
        let t0 = Unix.gettimeofday () in
        let s = Protocol.run proto env in
        (s, Unix.gettimeofday () -. t0)
      in
      let row ~n ~backend_label ~parity (s : Protocol.summary) wall =
        Table.add_row t
          [
            name;
            string_of_int n;
            backend_label;
            string_of_int s.Protocol.slots_run;
            (if s.Protocol.completed then "yes" else "no");
            fmt_f2 wall;
            parity;
          ]
      in
      let soa = Runner.Soa { shards = 1; dense_channel_limit = None } in
      List.iter
        (fun n ->
          let reference =
            if n <= engine_n then begin
              let s, wall = run ~n ~backend:Runner.Engine ~shards:1 in
              row ~n ~backend_label:"engine" ~parity:"-" s wall;
              Some (Json.to_string (Protocol.summary_json s))
            end
            else None
          in
          List.iter
            (fun shards ->
              let s, wall = run ~n ~backend:soa ~shards in
              let parity =
                match reference with
                | None -> "-"
                | Some r ->
                    if Json.to_string (Protocol.summary_json s) = r then "ok"
                    else begin
                      mismatches :=
                        Printf.sprintf "%s n=%d shards=%d" name n shards
                        :: !mismatches;
                      "MISMATCH"
                    end
              in
              if s.Protocol.completed && n = scale_n then
                completed_at_scale :=
                  Printf.sprintf "%s (shards=%d)" name shards
                  :: !completed_at_scale;
              row ~n ~backend_label:(Printf.sprintf "soa s=%d" shards) ~parity s
                wall)
            [ 1; 8 ])
        big_ns)
    (Registry.machine_names ());
  print_table t;
  (match !mismatches with
  | [] ->
      note
        "parity: at n=%d every soa summary (shards 1 and 8) is byte-identical"
        engine_n;
      note "to the engine's — the adapter is observationally invisible"
  | ms -> List.iter (fun m -> note "PARITY MISMATCH: %s" m) (List.rev ms));
  (match !completed_at_scale with
  | [] ->
      note "no machine protocol completed at n=%d before max_slots=%d" scale_n
        max_slots
  | cs ->
      note "completed at n=%d on soa: %s" scale_n
        (String.concat ", " (List.rev cs)));
  note "excluded: cogcomp and cogcomp_robust enter the registry via of_run —";
  note "multi-phase orchestrations of several engine runs, not one machine the";
  note "generic driver can re-place; cogcast's soa twin (cogcast_soa) is held";
  note "to the stronger trace-for-trace standard in test/test_soa.ml"
