(* Micro-benchmarks.

   [bench_engine] (the MICRO experiment id) measures the engine hot path
   head-to-head against its executable specification: minor-heap words and
   wall-clock per slot for {!Crn_radio.Engine.run} / {!Crn_radio.Emulation.run}
   versus {!Crn_radio.Reference} (the pre-rewrite list-and-hashtable slot
   loop in canonical order). Results land in the --json report, so the
   perf trajectory of the engine itself accumulates across PRs.

   [run] holds the original Bechamel kernel-throughput suite: wall-clock of
   the simulator kernels every experiment rests on — one Test.make per
   experiment family. *)

open Bechamel
open Toolkit
module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Bitset = Crn_channel.Bitset
module Cogcast = Crn_core.Cogcast
module Cogcomp = Crn_core.Cogcomp
module Aggregate = Crn_core.Aggregate
module Backoff = Crn_radio.Backoff
module Hitting_game = Crn_games.Hitting_game
module Players = Crn_games.Players

let spec = { Topology.n = 64; c = 16; k = 4 }

(* ------------------------------------------------------------------ *)
(* MICRO: engine hot path, rewritten vs reference.                     *)
(* ------------------------------------------------------------------ *)

module Engine = Crn_radio.Engine
module Emulation = Crn_radio.Emulation
module Reference = Crn_radio.Reference
module Soa = Crn_radio.Soa
module Action = Crn_radio.Action
module Dynamic = Crn_channel.Dynamic
module Cogcast_soa = Crn_core.Cogcast_soa
module Pool = Crn_exec.Pool

(* A contention-heavy synthetic protocol with a precomputed cyclic decision
   schedule: node i replays a random-looking but fully pre-allocated pattern
   of broadcast/listen choices and labels (period [schedule_period]), so the
   protocol itself allocates nothing and draws no randomness during the
   measured run. The minor-heap words measured are therefore the engine
   layer's own (including its winner draws on contended channels), not the
   workload's. The message payload is the node id. *)
let schedule_period = 64

let make_bench_nodes ~n ~c ~seed =
  let rng = Rng.create seed in
  let schedule =
    Array.init n (fun i ->
        Array.init schedule_period (fun _ ->
            let label = Rng.int rng c in
            if Rng.bool rng then Action.broadcast ~label i
            else Action.listen ~label))
  in
  Array.init n (fun i ->
      Engine.node ~id:i
        ~decide:(fun ~slot -> schedule.(i).(slot mod schedule_period))
        ~feedback:(fun ~slot:_ _ -> ()))

(* The same cyclic schedule as a {!Soa.protocol}, so the struct-of-arrays
   engine rows measure an identical contention workload to the node-record
   rows: same schedules, same seed, same winner-draw stream. *)
let make_soa_schedule_protocol ~n ~c ~seed =
  let rng = Rng.create seed in
  let schedule =
    Array.init n (fun i ->
        Array.init schedule_period (fun _ ->
            let label = Rng.int rng c in
            if Rng.bool rng then Action.broadcast ~label i
            else Action.listen ~label))
  in
  let decide t ~slot ~lo ~hi =
    for i = lo to hi - 1 do
      if not (Soa.is_down t i) then begin
        let d = schedule.(i).(slot mod schedule_period) in
        match d.Action.intent with
        | Action.Broadcast msg -> Soa.set_broadcast t i ~label:d.Action.label ~msg
        | Action.Listen -> Soa.set_listen t i ~label:d.Action.label
      end
    done
  in
  let feedback _ ~slot:_ ~lo:_ ~hi:_ = () in
  { Soa.parallel = true; decide; feedback }

(* Run [run_slots ~nodes ~max_slots] once for warmup (steady-state scratch
   sizing), then measure minor words and wall-clock per slot over a fresh
   node set with identical streams. *)
let measure_engine ~n ~c ~seed ~slots run_slots =
  let warm_nodes = make_bench_nodes ~n ~c ~seed in
  ignore (run_slots ~nodes:warm_nodes ~max_slots:(min 16 slots));
  let nodes = make_bench_nodes ~n ~c ~seed in
  Gc.minor ();
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  ignore (run_slots ~nodes ~max_slots:slots);
  let wall = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. w0 in
  ( words /. float_of_int slots,
    wall /. float_of_int slots *. 1e9 (* ns/slot *) )

(* SoA scaling: COGCAST at n up to 10^6 on a shared+random spectrum
   (C = 4c = 64, so the dense per-shard counting strategy applies), at
   1/2/8 intra-trial shards.

   Two measurements per n. The completion run (shards=1, default stop)
   answers "does a million-node broadcast complete, and in how long" —
   wall-clock includes every setup cost (per-node RNG split, topology
   caches). The per-slot rows isolate steady-state slot cost by
   differencing a long and a short fixed-slot run (stop disabled), which
   cancels the O(n) setup out of both ms/slot and words/slot; words/slot
   is shards=1 only because GC counters are per-domain and the workers'
   minor heaps are invisible from here.

   Shard rows are honest measurements on whatever cores the host has — on
   a single-core container they show the barrier overhead, not a speedup
   (see the recommended-domains note and EXPERIMENTS.md). *)
let bench_soa_scaling () =
  let configs =
    if !Bench_util.quick then [ 20_000 ] else [ 100_000; 1_000_000 ]
  in
  let shard_counts = [ 1; 2; 8 ] in
  let c = 16 and k = 4 in
  let long_slots = if !Bench_util.quick then 8 else 30 in
  let short_slots = long_slots / 2 in
  let t =
    Crn_stats.Table.create
      [ "n"; "C"; "shards"; "ms/slot"; "words/slot"; "speedup" ]
  in
  List.iter
    (fun n ->
      let topo_spec = { Topology.n; c; k } in
      let assignment =
        Topology.shared_plus_random (Rng.create (7 * n)) topo_spec
      in
      let availability = Dynamic.static assignment in
      let big_c = Crn_channel.Assignment.num_channels assignment in
      let budget = Crn_core.Complexity.cogcast_slots ~n ~c ~k () in
      let run_fixed ~shards ~pool ~max_slots =
        Gc.minor ();
        let w0 = Gc.minor_words () in
        let t0 = Unix.gettimeofday () in
        ignore
          (Cogcast_soa.run ?pool ~shards ~stop_when_complete:false ~source:0
             ~availability ~rng:(Rng.create 4242) ~max_slots ());
        (Unix.gettimeofday () -. t0, Gc.minor_words () -. w0)
      in
      (* The headline: a full broadcast to completion, all costs included. *)
      let t0 = Unix.gettimeofday () in
      let r =
        Cogcast_soa.run ~source:0 ~availability ~rng:(Rng.create 4242)
          ~max_slots:budget ()
      in
      let complete_wall = Unix.gettimeofday () -. t0 in
      Bench_util.note
        "cogcast_soa n=%-7d C=%d: informed %d/%d in %d slots, %.2f s wall (setup included)"
        n big_c r.Crn_core.Cogcast.informed_count n
        r.Crn_core.Cogcast.slots_run complete_wall;
      let base_ms = ref 1.0 in
      List.iter
        (fun shards ->
          let pool =
            if shards > 1 then Some (Pool.create ~jobs:shards) else None
          in
          (* Unmeasured warmup: domain spawn and first-touch costs land
             here, not in the long run of the long-short difference. *)
          ignore (run_fixed ~shards ~pool ~max_slots:2);
          let long_wall, long_words =
            run_fixed ~shards ~pool ~max_slots:long_slots
          in
          let short_wall, short_words =
            run_fixed ~shards ~pool ~max_slots:short_slots
          in
          (match pool with Some p -> Pool.shutdown p | None -> ());
          let per_slot = float_of_int (long_slots - short_slots) in
          let ms_per_slot = (long_wall -. short_wall) /. per_slot *. 1e3 in
          let words_per_slot = (long_words -. short_words) /. per_slot in
          if shards = 1 then base_ms := ms_per_slot;
          Crn_stats.Table.add_row t
            [
              string_of_int n;
              string_of_int big_c;
              string_of_int shards;
              Printf.sprintf "%.2f" ms_per_slot;
              (if shards = 1 then Printf.sprintf "%.0f" words_per_slot else "-");
              Printf.sprintf "%.2f" (!base_ms /. ms_per_slot);
            ];
          Bench_util.note
            "cogcast_soa n=%-7d shards=%d: %.2f ms/slot steady-state, speedup %.2fx vs 1 shard"
            n shards ms_per_slot (!base_ms /. ms_per_slot))
        shard_counts)
    configs;
  Bench_util.note
    "host has %d recommended domains; shard speedups are only meaningful when shards <= that"
    (Pool.default_jobs ());
  Bench_util.print_table ~title:"COGCAST scaling on the SoA engine" t

let bench_engine () =
  Bench_util.header "MICRO"
    "Engine hot path: minor-heap words/slot and ns/slot, rewritten vs reference spec";
  let slots = if !Bench_util.quick then 400 else 2_000 in
  let configs =
    if !Bench_util.quick then [ (256, 32, 4) ]
    else [ (256, 32, 4); (1024, 32, 4); (4096, 32, 4) ]
  in
  let t =
    Crn_stats.Table.create
      [ "n"; "C"; "impl"; "words/slot"; "ns/slot"; "alloc x"; "wall x" ]
  in
  List.iter
    (fun (n, c, k) ->
      let topo_spec = { Topology.n; c; k } in
      let assignment = Topology.shared_core (Rng.create 42) topo_spec in
      let availability = Dynamic.static assignment in
      let big_c = Crn_channel.Assignment.num_channels assignment in
      let engine ~nodes ~max_slots =
        Engine.run ~availability ~rng:(Rng.create 99) ~nodes ~max_slots ()
      in
      let reference ~nodes ~max_slots =
        Reference.engine_run ~availability ~rng:(Rng.create 99) ~nodes
          ~max_slots ()
      in
      let soa ~nodes:_ ~max_slots =
        let protocol = make_soa_schedule_protocol ~n ~c ~seed:(7 * n) in
        ignore
          (Soa.run ~availability ~rng:(Rng.create 99) ~protocol ~max_slots ())
      in
      let new_words, new_ns = measure_engine ~n ~c ~seed:(7 * n) ~slots engine in
      let ref_words, ref_ns =
        measure_engine ~n ~c ~seed:(7 * n) ~slots reference
      in
      let soa_words, soa_ns = measure_engine ~n ~c ~seed:(7 * n) ~slots soa in
      let alloc_ratio = ref_words /. Float.max 1.0 new_words in
      let wall_ratio = ref_ns /. new_ns in
      let row impl words ns ar wr =
        Crn_stats.Table.add_row t
          [
            string_of_int n;
            string_of_int big_c;
            impl;
            Printf.sprintf "%.1f" words;
            Printf.sprintf "%.0f" ns;
            ar;
            wr;
          ]
      in
      row "reference" ref_words ref_ns "" "";
      row "engine" new_words new_ns
        (Printf.sprintf "%.1f" alloc_ratio)
        (Printf.sprintf "%.2f" wall_ratio);
      row "soa" soa_words soa_ns
        (Printf.sprintf "%.1f" (ref_words /. Float.max 1.0 soa_words))
        (Printf.sprintf "%.2f" (ref_ns /. soa_ns));
      Bench_util.note
        "n=%-5d engine %.1f words/slot vs reference %.1f (%.1fx fewer); %.0f ns/slot vs %.0f (%.2fx faster)"
        n new_words ref_words alloc_ratio new_ns ref_ns wall_ratio;
      Bench_util.note
        "n=%-5d soa    %.1f words/slot, %.0f ns/slot (%.2fx vs engine; shared_core C=%d runs the sparse O(n)-scan strategy)"
        n soa_words soa_ns (new_ns /. soa_ns) big_c)
    configs;
  (* The emulation layer at one representative point. *)
  let n, c, k = (256, 32, 4) in
  let topo_spec = { Topology.n; c; k } in
  let assignment = Topology.shared_core (Rng.create 43) topo_spec in
  let availability = Dynamic.static assignment in
  let big_c = Crn_channel.Assignment.num_channels assignment in
  let emu_slots = max 100 (slots / 4) in
  let emulation ~nodes ~max_slots =
    ignore
      (Emulation.run ~availability ~rng:(Rng.create 99) ~nodes ~max_slots ());
    ()
  in
  let emu_reference ~nodes ~max_slots =
    ignore
      (Reference.emulation_run ~availability ~rng:(Rng.create 99) ~nodes
         ~max_slots ());
    ()
  in
  let new_words, new_ns =
    measure_engine ~n ~c ~seed:(7 * n) ~slots:emu_slots emulation
  in
  let ref_words, ref_ns =
    measure_engine ~n ~c ~seed:(7 * n) ~slots:emu_slots emu_reference
  in
  let alloc_ratio = ref_words /. Float.max 1.0 new_words in
  Crn_stats.Table.add_row t
    [
      string_of_int n;
      string_of_int big_c;
      "emulation-ref";
      Printf.sprintf "%.1f" ref_words;
      Printf.sprintf "%.0f" ref_ns;
      "";
      "";
    ];
  Crn_stats.Table.add_row t
    [
      string_of_int n;
      string_of_int big_c;
      "emulation";
      Printf.sprintf "%.1f" new_words;
      Printf.sprintf "%.0f" new_ns;
      Printf.sprintf "%.1f" alloc_ratio;
      Printf.sprintf "%.2f" (ref_ns /. new_ns);
    ];
  Bench_util.print_table t;
  bench_soa_scaling ()

let bench_rng =
  Test.make ~name:"rng/draws-1k"
    (Staged.stage (fun () ->
         let rng = Rng.create 1 in
         let acc = ref 0 in
         for _ = 1 to 1000 do
           acc := !acc + Rng.int rng 16
         done;
         !acc))

let bench_bitset =
  Test.make ~name:"channel/bitset-overlap-1k"
    (Staged.stage (fun () ->
         let a = Bitset.of_array 512 (Array.init 64 (fun i -> i * 3)) in
         let b = Bitset.of_array 512 (Array.init 64 (fun i -> i * 5)) in
         let acc = ref 0 in
         for _ = 1 to 1000 do
           acc := !acc + Bitset.inter_cardinal a b
         done;
         !acc))

let bench_topology =
  Test.make ~name:"channel/shared-core-gen"
    (Staged.stage (fun () -> Topology.shared_core (Rng.create 2) spec))

(* E1-E5 kernel: one COGCAST broadcast on a 64-node network. *)
let bench_cogcast =
  Test.make ~name:"broadcast/cogcast-n64"
    (Staged.stage (fun () ->
         let rng = Rng.create 3 in
         let assignment = Topology.shared_core rng spec in
         Cogcast.run_static ~source:0 ~assignment ~k:4 ~rng ()))

(* E6-E7 kernel: one full COGCOMP aggregation. *)
let bench_cogcomp =
  Test.make ~name:"aggregation/cogcomp-n64"
    (Staged.stage (fun () ->
         let rng = Rng.create 4 in
         let assignment = Topology.shared_core rng spec in
         let values = Array.init 64 (fun i -> i) in
         Cogcomp.run ~monoid:Aggregate.sum ~values ~source:0 ~assignment ~k:4 ~rng ()))

(* E8 kernel: one bipartite hitting game. *)
let bench_game =
  Test.make ~name:"games/bipartite-c16k4"
    (Staged.stage (fun () ->
         let rng = Rng.create 5 in
         Hitting_game.play_bipartite ~rng ~c:16 ~k:4
           ~player:(Players.uniform rng ~c:16) ~max_rounds:100_000))

(* E13 kernel: one decay backoff session. *)
let bench_backoff =
  Test.make ~name:"backoff/session-m64"
    (Staged.stage (fun () ->
         Backoff.session ~rng:(Rng.create 6) ~contenders:64 ~cap:10_000))

(* E4/E7 kernel: the rendezvous baseline broadcast. *)
let bench_baseline =
  Test.make ~name:"baseline/rendezvous-broadcast-n64"
    (Staged.stage (fun () ->
         let rng = Rng.create 7 in
         let assignment = Topology.shared_core rng spec in
         Crn_rendezvous.Broadcast_baseline.run_static ~source:0 ~assignment ~k:4 ~rng ()))

(* E10 kernel: the hop-together scan. *)
let bench_scan =
  Test.make ~name:"baseline/seq-scan-n16"
    (Staged.stage (fun () ->
         let a =
           Topology.shared_core ~global_labels:true (Rng.create 8)
             { Topology.n = 16; c = 32; k = 31 }
         in
         Crn_rendezvous.Seq_scan.run ~source:0 ~assignment:a ~rng:(Rng.create 9)
           ~max_slots:10_000 ()))

(* E12 kernel: one slot's worth of jamming-reduction availability. *)
let bench_jamming_reduction =
  Test.make ~name:"radio/jamming-reduction-slot"
    (Staged.stage (fun () ->
         let jammer =
           Crn_radio.Jammer.random_per_node ~seed:10L ~budget:4 ~num_channels:16
         in
         let d =
           Crn_radio.Jamming_reduction.availability_of_jammer ~num_nodes:16
             ~num_channels:16 ~jammer ()
         in
         Crn_channel.Dynamic.at d 0))

(* E15 kernel: a first-hit sample. *)
let bench_first_hit =
  Test.make ~name:"games/first-hit-c32"
    (Staged.stage (fun () ->
         let rng = Rng.create 11 in
         Crn_games.First_hit.sample ~rng ~c:32 ~k:4
           ~strategy:(Crn_games.First_hit.uniform_strategy rng ~c:32)))

(* E22 kernel: COGCAST over raw-radio emulation. *)
let bench_emulated =
  Test.make ~name:"broadcast/cogcast-emulated-n32"
    (Staged.stage (fun () ->
         let rng = Rng.create 12 in
         let assignment = Topology.shared_core rng { Topology.n = 32; c = 8; k = 4 } in
         Cogcast.run_emulated ~source:0
           ~availability:(Crn_channel.Dynamic.static assignment) ~rng
           ~max_slots:2_000 ()))

let tests =
  [
    bench_rng;
    bench_bitset;
    bench_topology;
    bench_cogcast;
    bench_cogcomp;
    bench_game;
    bench_backoff;
    bench_baseline;
    bench_scan;
    bench_jamming_reduction;
    bench_first_hit;
    bench_emulated;
  ]

let run () =
  print_newline ();
  print_endline "==============================================";
  print_endline "[MICRO] Bechamel kernel throughput (monotonic clock)";
  print_endline "==============================================";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let t = Crn_stats.Table.create [ "kernel"; "time/run"; "r^2" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols (Instance.monotonic_clock) raw in
          ignore raw;
          let time_ns =
            match Analyze.OLS.estimates est with
            | Some [ v ] -> v
            | _ -> Float.nan
          in
          let r2 =
            match Analyze.OLS.r_square est with Some r -> r | None -> Float.nan
          in
          let pretty =
            if time_ns > 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
            else if time_ns > 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
            else Printf.sprintf "%.0f ns" time_ns
          in
          Crn_stats.Table.add_row t [ name; pretty; Printf.sprintf "%.4f" r2 ])
        results)
    tests;
  Crn_stats.Table.print t
