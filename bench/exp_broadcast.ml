(* Experiments E1-E3, E5, E11: COGCAST scaling (Theorem 4), overlap-pattern
   robustness (Claims 1-3) and the dynamic model (§7).

   Every trial takes an explicit Rng.t (a pre-split stream handed out by
   Bench_util.run_trials), so the tables are identical at any --jobs. *)

open Bench_util
module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Dynamic = Crn_channel.Dynamic
module Cogcast = Crn_core.Cogcast
module Complexity = Crn_core.Complexity
module Table = Crn_stats.Table
module Series = Crn_stats.Series
module Fit = Crn_stats.Fit

let completion ~rng ~kind spec =
  let assignment = Topology.generate kind rng spec in
  let r = Cogcast.run_static ~source:0 ~assignment ~k:spec.Topology.k ~rng () in
  match r.Cogcast.completed_at with
  | Some s -> s
  | None -> r.Cogcast.slots_run (* budget exhausted: report the cap *)

let dynamic_completion ~rng spec =
  let availability = Dynamic.reshuffled_shared_core ~seed:(Rng.split rng) spec in
  let { Topology.n; c; k } = spec in
  let max_slots = Complexity.cogcast_slots ~n ~c ~k () in
  let r = Cogcast.run ~source:0 ~availability ~rng ~max_slots () in
  match r.Cogcast.completed_at with Some s -> s | None -> r.Cogcast.slots_run

(* E1: time vs n at fixed c, for several k. Claim: slope vs lg n is linear
   (Theorem 4's lg n factor) and inversely proportional to k. *)
let e1 () =
  header "E1" "COGCAST completion vs n (c = 32; Theorem 4: ~ (c/k) lg n for n >= c)";
  let c = 32 in
  let ns = if !quick then [ 32; 128; 512 ] else [ 32; 64; 128; 256; 512; 1024; 2048; 4096 ] in
  let ks = [ 1; 4; 16 ] in
  let t = Table.create ("n" :: List.map (fun k -> Printf.sprintf "k=%d" k) ks) in
  let series =
    List.map
      (fun k ->
        let pts =
          List.map
            (fun n ->
              let trials = trials ~full:(if n >= 2048 then 3 else 5) in
              let m =
                median_of ~trials ~base_seed:(1000 + n + k) (fun rng ->
                    completion ~rng ~kind:Topology.Shared_core { Topology.n; c; k })
              in
              (float_of_int n, m))
            ns
        in
        (k, pts))
      ks
  in
  List.iteri
    (fun i n ->
      Table.add_row t
        (string_of_int n
        :: List.map (fun (_, pts) -> fmt_f (snd (List.nth pts i))) series))
    ns;
  print_table t;
  (* The lg n growth is a tail phenomenon: near n ~ c the boundary constants
     of the max{1, c/n} regime dominate (times first *fall* as n grows past
     c because channels fill with listeners). Fit the n >= 8c tail only. *)
  List.iter
    (fun (k, pts) ->
      let tail = List.filter (fun (n, _) -> n >= float_of_int (8 * c)) pts in
      if List.length tail >= 3 then begin
        let fit = Fit.semilog_x (Array.of_list tail) in
        note "k=%-2d  tail (n >= 8c): slots ~ %.1f * ln n + %.1f  (r2=%.3f; Theorem 4: slope proportional to c/k = %.1f)"
          k fit.Fit.slope fit.Fit.intercept fit.Fit.r2
          (float_of_int c /. float_of_int k)
      end)
    series;
  note "left of n ~ 8c the curve falls with n: the max{1, c/n} boundary regime of Theorem 4";
  Series.print_plot ~title:"  completion slots vs n (log-log)" ~logx:true ~logy:true
    (List.map (fun (k, pts) -> Series.make (Printf.sprintf "k=%d" k) pts) series)

(* E2: time vs c at fixed n: the max{1, c/n} crossover. Claim: slope
   (log-log) ~1 while c <= n, ~2 once c > n. *)
let e2 () =
  header "E2" "COGCAST completion vs c (n = 128, k = 4; crossover at c = n)";
  let n = 128 and k = 4 in
  let cs = if !quick then [ 8; 64; 256 ] else [ 8; 16; 32; 64; 128; 256; 512 ] in
  let t = Table.create [ "c"; "median slots"; "theorem shape (c/k)max{1,c/n}lg n" ] in
  let pts =
    List.map
      (fun c ->
        let m =
          median_of ~trials:(trials ~full:5) ~base_seed:(2000 + c) (fun rng ->
              completion ~rng ~kind:Topology.Shared_core { Topology.n; c; k })
        in
        Table.add_row t
          [ string_of_int c; fmt_f m; fmt_f (Complexity.cogcast ~factor:1.0 ~n ~c ~k ()) ];
        (float_of_int c, m))
      cs
  in
  print_table t;
  let below = List.filter (fun (c, _) -> c <= float_of_int n) pts in
  let above = List.filter (fun (c, _) -> c >= float_of_int n) pts in
  if List.length below >= 2 then
    note "log-log slope for c <= n: %.2f (theorem: ~1)"
      (Fit.log_log (Array.of_list below)).Fit.slope;
  if List.length above >= 2 then
    note "log-log slope for c >= n: %.2f (theorem: ~2)"
      (Fit.log_log (Array.of_list above)).Fit.slope

(* E3: time vs k at fixed n, c. Claim: inverse proportionality (log-log
   slope ~ -1). *)
let e3 () =
  header "E3" "COGCAST completion vs k (n = 256, c = 64; Theorem 4: ~ 1/k)";
  let n = 256 and c = 64 in
  let ks = if !quick then [ 1; 8; 64 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
  let t = Table.create [ "k"; "median slots"; "(c/k) lg n" ] in
  let pts =
    List.map
      (fun k ->
        let m =
          median_of ~trials:(trials ~full:5) ~base_seed:(3000 + k) (fun rng ->
              completion ~rng ~kind:Topology.Shared_core { Topology.n; c; k })
        in
        Table.add_row t
          [ string_of_int k; fmt_f m; fmt_f (Complexity.cogcast ~factor:1.0 ~n ~c ~k ()) ];
        (float_of_int k, m))
      ks
  in
  print_table t;
  note "log-log slope vs k: %.2f (theorem: -1)" (Fit.log_log (Array.of_list pts)).Fit.slope

(* E5: Claims 1-3 robustness — the bound holds whatever the overlap
   pattern. *)
let e5 () =
  header "E5" "COGCAST vs overlap pattern (n = 128, c = 16, k = 4; Claims 1-3)";
  let spec = { Topology.n = 128; c = 16; k = 4 } in
  let budget = Complexity.cogcast ~n:128 ~c:16 ~k:4 () in
  let t = Table.create [ "topology"; "median slots"; "p90 slots"; "budget (factor 12)" ] in
  List.iter
    (fun kind ->
      let trials = trials ~full:9 in
      let samples =
        samples_of ~trials ~base_seed:4000 (fun rng -> completion ~rng ~kind spec)
      in
      let s = Crn_stats.Summary.of_floats samples in
      Table.add_row t
        [
          Topology.kind_name kind;
          fmt_f s.Crn_stats.Summary.median;
          fmt_f s.Crn_stats.Summary.p90;
          fmt_f budget;
        ])
    Topology.all_kinds;
  print_table t;
  note "claim: every pattern completes within the same Theta((c/k) lg n) budget"

(* E11: dynamic channel assignments (§7) — same completion scaling as the
   static model. *)
let e11 () =
  header "E11" "COGCAST static vs dynamic per-slot reshuffle (c = 16, k = 4; §7)";
  let c = 16 and k = 4 in
  let ns = if !quick then [ 32; 256 ] else [ 32; 64; 128; 256; 512; 1024 ] in
  let t = Table.create [ "n"; "static median"; "dynamic median"; "ratio" ] in
  List.iter
    (fun n ->
      let spec = { Topology.n; c; k } in
      let trials = trials ~full:5 in
      let st =
        median_of ~trials ~base_seed:(5000 + n) (fun rng ->
            completion ~rng ~kind:Topology.Shared_core spec)
      in
      let dy = median_of ~trials ~base_seed:(6000 + n) (fun rng -> dynamic_completion ~rng spec) in
      Table.add_row t [ string_of_int n; fmt_f st; fmt_f dy; fmt_f2 (dy /. st) ])
    ns;
  print_table t;
  note "claim: the ratio stays ~1; Theorem 4's proof never uses staticness"
