(* Experiments E4, E7, E10: COGCAST/COGCOMP against the paper's baselines and
   the §6 global-label counterexample. *)

open Bench_util
module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Assignment = Crn_channel.Assignment
module Cogcast = Crn_core.Cogcast
module Cogcomp = Crn_core.Cogcomp
module Aggregate = Crn_core.Aggregate
module Complexity = Crn_core.Complexity
module Table = Crn_stats.Table
module Dynamic = Crn_channel.Dynamic
module Protocol = Crn_proto.Protocol
module Registry = Crn_proto.Registry

(* Every baseline below is dispatched through the protocol registry — the
   same path as `crn_sim run` — so the bench doubles as a regression check
   on the protocol layer. The registry's default budgets reproduce the
   original experiments' sizing (8x the rendezvous bound; 8x C for the
   scan), so the numbers are unchanged. *)
let registry_summary name ~k ~assignment ~rng =
  Protocol.run (Registry.find_exn name)
    (Protocol.env ~k ~availability:(Dynamic.static assignment) ~rng ())

let registry_slots name ~k ~assignment ~rng =
  let s = registry_summary name ~k ~assignment ~rng in
  Option.value ~default:s.Protocol.slots_run s.Protocol.completed_at

(* E4: local broadcast, epidemic vs rendezvous (§1: factor Theta(c) for
   n >= c). *)
let e4 () =
  header "E4" "Broadcast: COGCAST vs rendezvous baseline (n = 512, k = 2; §1 claims factor ~c)";
  let n = 512 and k = 2 in
  let cs = if !quick then [ 8; 32 ] else [ 8; 16; 32; 64 ] in
  let t =
    Table.create [ "c"; "COGCAST median"; "rendezvous median"; "speedup"; "claimed ~c" ]
  in
  List.iter
    (fun c ->
      let spec = { Topology.n; c; k } in
      let trials = trials ~full:5 in
      let cog =
        median_of ~trials ~base_seed:(7000 + c) (fun rng ->
            let assignment = Topology.shared_core rng spec in
            let r = Cogcast.run_static ~source:0 ~assignment ~k ~rng () in
            Option.value ~default:r.Cogcast.slots_run r.Cogcast.completed_at)
      in
      let base =
        median_of ~trials ~base_seed:(8000 + c) (fun rng ->
            let assignment = Topology.shared_core rng spec in
            registry_slots "broadcast_baseline" ~k ~assignment ~rng)
      in
      Table.add_row t
        [ string_of_int c; fmt_f cog; fmt_f base; fmt_f2 (base /. cog); string_of_int c ])
    cs;
  print_table t;
  note "claim: the measured speedup grows linearly with c (who wins: COGCAST, everywhere)"

(* E7: aggregation, COGCOMP vs rendezvous baseline (§1: O((c/k)lg n + n) vs
   O(c^2 n / k)). *)
let e7 () =
  header "E7" "Aggregation: COGCOMP vs rendezvous baselines (c = 8, k = 2; §1)";
  let c = 8 and k = 2 in
  let ns = if !quick then [ 32; 256 ] else [ 32; 64; 128; 256; 512; 1024 ] in
  let t =
    Table.create
      [
        "n";
        "COGCOMP total";
        "  (phase4)";
        "baseline+ACK";
        "baseline honest";
        "speedup vs honest";
      ]
  in
  List.iter
    (fun n ->
      let spec = { Topology.n; c; k } in
      let trials = trials ~full:5 in
      let run_baseline ~ack rng =
        let assignment = Topology.shared_core rng spec in
        let name =
          if ack then "aggregation_baseline" else "aggregation_baseline_honest"
        in
        (registry_summary name ~k ~assignment ~rng).Protocol.slots_run
      in
      (* Keep total slots and the phase-4 share of the same runs together,
         then take the medians of each — the old sequential code relied on
         stateful update order, which a parallel runner cannot. *)
      let runs =
        run_trials ~trials ~base_seed:(9000 + n) (fun rng ->
            let assignment = Topology.shared_core rng spec in
            let values = Array.init n (fun i -> i) in
            let r = Cogcomp.run ~monoid:Aggregate.sum ~values ~source:0 ~assignment ~k ~rng () in
            (r.Cogcomp.total_slots, r.Cogcomp.phase4_slots))
      in
      let cog = Crn_stats.Summary.median (Array.map (fun (tot, _) -> float_of_int tot) runs) in
      let p4 = Crn_stats.Summary.median (Array.map (fun (_, p) -> float_of_int p) runs) in
      let base_ack = median_of ~trials ~base_seed:(9500 + n) (run_baseline ~ack:true) in
      let base_honest = median_of ~trials ~base_seed:(9700 + n) (run_baseline ~ack:false) in
      Table.add_row t
        [
          string_of_int n;
          fmt_f cog;
          fmt_f p4;
          fmt_f base_ack;
          fmt_f base_honest;
          fmt_f2 (base_honest /. cog);
        ])
    ns;
  print_table t;
  note "honest baseline (no ACK): the source coupon-collects n-1 distinct values ~ n ln n;";
  note "the +ACK variant is a gift to the baseline (free acknowledgements). COGCOMP's";
  note "total is Theta((c/k) lg n) + Theta(n) and overtakes both as n grows; its crossover";
  note "vs +ACK sits where the factor-12 phase-1 budget is amortized (n in the hundreds).";
  note "paper's coarse bound for the baseline: c^2 n / k = %s at the largest n here"
    (fmt_f (Complexity.rendezvous_aggregation ~n:(List.nth ns (List.length ns - 1)) ~c ~k))

(* E10: the §6 discussion counterexample — with global labels and c >> n the
   hop-together scan beats COGCAST by an unbounded factor. *)
let e10 () =
  header "E10"
    "Global labels, c = n^2, k = c-1: hop-together scan vs COGCAST (§6 discussion)";
  let ns = if !quick then [ 4; 8 ] else [ 4; 6; 8; 12; 16; 24; 32 ] in
  let t =
    Table.create
      [ "n"; "c=n^2"; "scan median"; "COGCAST median"; "scan wins by"; "E[scan] = C/k" ]
  in
  List.iter
    (fun n ->
      let c = n * n in
      let k = c - 1 in
      let spec = { Topology.n; c; k } in
      let big_c = k + (n * (c - k)) in
      let trials = trials ~full:5 in
      let scan =
        median_of ~trials ~base_seed:(10_000 + n) (fun rng ->
            let topo_rng = Rng.split rng in
            let perm_rng = Rng.split rng in
            let assignment =
              Assignment.permute_channels perm_rng
                (Topology.shared_core ~global_labels:true topo_rng spec)
            in
            (* The registry's default seq_scan budget is 8 x C = [8 * big_c],
               the same horizon the direct call used here. *)
            registry_slots "seq_scan" ~k ~assignment ~rng)
      in
      let cog =
        median_of ~trials ~base_seed:(11_000 + n) (fun rng ->
            let assignment = Topology.shared_core rng spec in
            let r = Cogcast.run_static ~source:0 ~assignment ~k ~rng () in
            Option.value ~default:r.Cogcast.slots_run r.Cogcast.completed_at)
      in
      Table.add_row t
        [
          string_of_int n;
          string_of_int c;
          fmt_f scan;
          fmt_f cog;
          fmt_f2 (cog /. Float.max 1.0 scan);
          fmt_f2 (float_of_int big_c /. float_of_int k);
        ])
    ns;
  print_table t;
  note "claim: scan is O(1) expected here while COGCAST needs Theta((c/(nk)) c lg n) ~ n lg n;";
  note "       the gap grows with n — and the scan is impossible under local labels (Theorem 15)"
