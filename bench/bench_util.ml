(* Shared helpers for the experiment harness: quick-mode trimming, the
   parallel trial runner, and the per-experiment recorder behind --json. *)

module Rng = Crn_prng.Rng
module Summary = Crn_stats.Summary
module Table = Crn_stats.Table
module Series = Crn_stats.Series
module Json = Crn_stats.Json
module Pool = Crn_exec.Pool
module Trials = Crn_exec.Trials

(* Global flags, set by main from the command line before any experiment
   runs: quick trims trial counts and sweep ranges; jobs sizes the domain
   pool shared by every experiment. *)
let quick = ref false
let jobs = ref (Pool.default_jobs ())

(* The pool is created on first use, i.e. after main has parsed --jobs. *)
let pool = lazy (Pool.create ~jobs:!jobs)

let trials ~full = if !quick then max 3 (full / 3) else full

(* ---- per-experiment record (the --json layer) ---- *)

type record = {
  id : string;
  title : string;
  mutable tables : Json.t list; (* reversed *)
  mutable notes : string list; (* reversed *)
  mutable trials_run : int;
  mutable wall_s : float;
  started : float;
}

let records : record list ref = ref [] (* reversed *)
let current : record option ref = ref None

let finish_current () =
  match !current with
  | None -> ()
  | Some r ->
      r.wall_s <- Unix.gettimeofday () -. r.started;
      records := r :: !records;
      current := None

let header id title =
  finish_current ();
  current :=
    Some
      {
        id;
        title;
        tables = [];
        notes = [];
        trials_run = 0;
        wall_s = 0.0;
        started = Unix.gettimeofday ();
      };
  let line = Printf.sprintf "[%s] %s" id title in
  print_newline ();
  print_endline (String.make (String.length line) '=');
  print_endline line;
  print_endline (String.make (String.length line) '=')

let note fmt =
  Printf.ksprintf
    (fun s ->
      (match !current with Some r -> r.notes <- s :: r.notes | None -> ());
      Printf.printf "  %s\n" s)
    fmt

let print_table ?title t =
  Table.print ?title t;
  match !current with
  | Some r -> r.tables <- Json.of_table ?title t :: r.tables
  | None -> ()

(* [records_json ()] finalizes the experiment in progress and returns every
   recorded experiment, in run order, as JSON objects. *)
let records_json () =
  finish_current ();
  Json.List
    (List.rev_map
       (fun r ->
         Json.Obj
           [
             ("id", Json.String r.id);
             ("title", Json.String r.title);
             ("wall_s", Json.Float r.wall_s);
             ("trials", Json.Int r.trials_run);
             ("tables", Json.List (List.rev r.tables));
             ("notes", Json.List (List.rev_map (fun n -> Json.String n) r.notes));
           ])
       !records)

(* ---- parallel trials ---- *)

(* [run_trials ~trials ~base_seed f] runs [f] once per trial on the shared
   pool, one pre-split RNG stream per trial, so the result array is
   identical at any --jobs value (see Crn_exec.Trials). *)
let run_trials ~trials ~base_seed f =
  (match !current with
  | Some r -> r.trials_run <- r.trials_run + trials
  | None -> ());
  Trials.run ~pool:(Lazy.force pool) ~trials ~seed:base_seed f

(* Median / mean over [trials] parallel runs of [f rng]; each run must
   return a slot or round count. *)
let median_of ~trials ~base_seed f =
  Summary.median (Array.map float_of_int (run_trials ~trials ~base_seed f))

let mean_of ~trials ~base_seed f =
  Summary.mean (Array.map float_of_int (run_trials ~trials ~base_seed f))

let samples_of ~trials ~base_seed f =
  Array.map float_of_int (run_trials ~trials ~base_seed f)

let fmt_f x = Printf.sprintf "%.1f" x
let fmt_f2 x = Printf.sprintf "%.2f" x
