(* TV-whitespace spectrum sensing: the motivating scenario from the paper's
   introduction. Secondary users (sensors) opportunistically use channels
   left free by licensed primary users (TV broadcasters). Different sensors
   see different free-channel sets depending on which transmitters are in
   range; a regulator-mandated gateway must aggregate the worst interference
   reading before the network may keep transmitting.

   This example builds the availability sets from a primary-user occupancy
   model, verifies the pairwise-overlap assumption, and runs COGCOMP with
   the max monoid to pull the worst reading to the gateway.

   Run with:  dune exec examples/whitespace_sensing.exe *)

module Rng = Crn_prng.Rng
module Assignment = Crn_channel.Assignment
module Cogcomp = Crn_core.Cogcomp
module Aggregate = Crn_core.Aggregate

(* Spectrum model: [big_c] TV channels; each of [towers] primary
   transmitters occupies one channel in a geographic cell. A sensor in cells
   (x, y) loses the channels of all towers within range. Sensors near each
   other lose similar channels, which produces the clustered, correlated
   availability the paper's model abstracts. *)

let big_c = 40
let grid = 8 (* sensors on an 8x4 grid *)
let n = 32
let num_towers = 24

type tower = { channel : int; tx : float; ty : float; range : float }

let build_towers rng =
  Array.init num_towers (fun _ ->
      {
        channel = Rng.int rng big_c;
        tx = Rng.float rng 8.0;
        ty = Rng.float rng 4.0;
        range = 1.0 +. Rng.float rng 1.5;
      })

let sensor_position i = (float_of_int (i mod grid), float_of_int (i / grid))

let free_channels towers i =
  let x, y = sensor_position i in
  let blocked = Array.make big_c false in
  Array.iter
    (fun t ->
      let d = sqrt (((t.tx -. x) ** 2.0) +. ((t.ty -. y) ** 2.0)) in
      if d <= t.range then blocked.(t.channel) <- true)
    towers;
  List.filter (fun ch -> not blocked.(ch)) (List.init big_c (fun ch -> ch))

let () =
  let rng = Rng.create 99 in
  let towers = build_towers rng in
  (* Every sensor keeps its c cheapest free channels, c = the minimum free
     count so that all rows have equal width (the model's uniform c). *)
  let free = Array.init n (free_channels towers) in
  let c = Array.fold_left (fun acc l -> min acc (List.length l)) big_c free in
  let rows =
    Array.map
      (fun l ->
        let row = Array.of_list (List.filteri (fun i _ -> i < c) l) in
        Rng.shuffle rng row;  (* local labels are arbitrary *)
        row)
      free
  in
  let assignment = Assignment.create ~num_channels:big_c ~local_to_global:rows in
  let k = Assignment.min_pairwise_overlap assignment in
  Printf.printf "whitespace spectrum: C=%d channels, %d towers, %d sensors\n" big_c
    num_towers n;
  Printf.printf "availability: c=%d free channels per sensor, min pairwise overlap k=%d\n"
    c k;
  if k = 0 then begin
    Printf.printf "no guaranteed overlap — the model's k >= 1 assumption fails; \
                   re-plan the deployment\n";
    exit 1
  end;
  (* Interference readings in dB (synthetic): distance-weighted noise. *)
  let readings =
    Array.init n (fun i ->
        let x, y = sensor_position i in
        int_of_float (30.0 +. (10.0 *. sin (x +. y)) +. Rng.float rng 25.0))
  in
  let res =
    Cogcomp.run ~monoid:Aggregate.max_int ~values:readings ~source:0 ~assignment ~k
      ~rng ()
  in
  let true_max = Array.fold_left max readings.(0) readings in
  match res.Cogcomp.root_value with
  | Some worst when worst = true_max ->
      Printf.printf
        "gateway aggregated worst interference = %d dB (true max %d) in %d slots\n"
        worst true_max res.Cogcomp.total_slots;
      Printf.printf "  (%d mediators coordinated the per-channel drain)\n"
        (List.length res.Cogcomp.mediators)
  | Some worst ->
      Printf.eprintf "gateway got %d dB but the true max is %d dB\n" worst true_max;
      exit 1
  | None ->
      Printf.eprintf "aggregation incomplete — increase the phase-1 budget\n";
      exit 1
