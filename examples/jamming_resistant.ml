(* Jamming-resistant broadcast (Theorem 18): a multi-channel network facing
   an n-uniform adversary that can jam a different set of channels at every
   node, every slot. Nodes sense jamming and treat the unjammed channels as
   their per-slot availability — turning the jammed network into a legal
   *dynamic* cognitive radio network, on which COGCAST runs unmodified.

   The example pits COGCAST against three adversaries of increasing budget
   and reports completion times next to the Theorem 4 guarantee computed at
   the worst-case overlap c - 2k'.

   Run with:  dune exec examples/jamming_resistant.exe *)

module Rng = Crn_prng.Rng
module Jammer = Crn_radio.Jammer
module Jamming_reduction = Crn_radio.Jamming_reduction
module Cogcast = Crn_core.Cogcast
module Complexity = Crn_core.Complexity

let n = 48
let big_c = 32

let run_under jammer =
  let budget = Jammer.budget jammer in
  let availability =
    Jamming_reduction.availability_of_jammer ~shuffle_labels:(Rng.create 5)
      ~num_nodes:n ~num_channels:big_c ~jammer ()
  in
  let k = Jamming_reduction.overlap_guarantee ~num_channels:big_c ~budget in
  let c = big_c - budget in
  let guarantee = Complexity.cogcast_slots ~n ~c ~k () in
  let r =
    Cogcast.run ~source:0 ~availability ~rng:(Rng.create 6)
      ~max_slots:(8 * guarantee) ()
  in
  (r, k, guarantee)

let () =
  Printf.printf "jamming-resistant broadcast: n=%d nodes, C=%d channels\n\n" n big_c;
  Printf.printf "%-18s %8s %14s %12s %16s\n" "adversary" "budget" "worst overlap"
    "slots used" "Thm 4 guarantee";
  List.iter
    (fun jammer ->
      let r, k, guarantee = run_under jammer in
      let slots =
        match r.Cogcast.completed_at with
        | Some s -> string_of_int s
        | None ->
            Printf.eprintf "broadcast failed under %s\n" (Jammer.name jammer);
            exit 1
      in
      Printf.printf "%-18s %8d %14d %12s %16d\n" (Jammer.name jammer)
        (Jammer.budget jammer) k slots guarantee)
    [
      Jammer.random_per_node ~seed:11L ~budget:4 ~num_channels:big_c;
      Jammer.random_per_node ~seed:12L ~budget:10 ~num_channels:big_c;
      Jammer.sweep ~budget:15 ~num_channels:big_c;
      Jammer.targeted_low ~budget:15;
    ];
  Printf.printf
    "\nTheorem 18: any budget below C/2 = %d leaves pairwise overlap >= C - 2k' >= 2,\n"
    (big_c / 2);
  Printf.printf "so the dynamic-model COGCAST guarantee applies and broadcast completes.\n"
