(* Quickstart: build a cognitive radio network, broadcast a message with
   COGCAST, aggregate sensor values with COGCOMP, and compare against the
   Theorem 4 / Theorem 10 predictions.

   Run with:  dune exec examples/quickstart.exe *)

module Crn = Crn_core.Crn
module Cogcast = Crn_core.Cogcast
module Cogcomp = Crn_core.Cogcomp
module Aggregate = Crn_core.Aggregate
module Disttree = Crn_core.Disttree

let () =
  (* 60 devices; each sees 12 usable channels out of a wider spectrum; any
     two devices share at least 3 channels. *)
  let net = Crn.make_network ~seed:2024 ~n:60 ~c:12 ~k:3 () in
  Printf.printf "network: n=60 c=12 k=3 (topology: shared + random extras)\n";
  Printf.printf "Theorem 4 predicts broadcast in ~%.0f slots (unit constants)\n\n"
    (Crn.broadcast_bound net);

  (* Local broadcast from node 0. *)
  let r = Crn.broadcast ~seed:7 net in
  (match r.Cogcast.completed_at with
  | Some slots ->
      Printf.printf "COGCAST: all %d nodes informed after %d slots\n" r.Cogcast.n slots
  | None ->
      Printf.eprintf "COGCAST: incomplete (%d informed)\n" r.Cogcast.informed_count;
      exit 1);
  let tree = Disttree.of_result r in
  Printf.printf "distribution tree: height %d, %d clusters, largest cluster %d\n\n"
    (Disttree.height tree)
    (List.length tree.Disttree.clusters)
    (Disttree.max_cluster tree);

  (* Aggregate: every node holds a reading; node 0 wants the sum. *)
  let readings = Array.init 60 (fun i -> (i * 31) mod 97) in
  let res = Crn.aggregate ~seed:8 net ~monoid:Aggregate.sum ~values:readings in
  let expected = Array.fold_left ( + ) 0 readings in
  (match res.Cogcomp.root_value with
  | Some total when total = expected ->
      Printf.printf "COGCOMP: root learned sum = %d (expected %d) in %d slots\n" total
        expected res.Cogcomp.total_slots
  | Some total ->
      Printf.eprintf "COGCOMP: wrong sum %d (expected %d)\n" total expected;
      exit 1
  | None ->
      Printf.eprintf "COGCOMP: incomplete\n";
      exit 1);
  Printf.printf "  phases: broadcast %d + roster %d + rewind %d + drain %d slots\n"
    res.Cogcomp.phase1_slots res.Cogcomp.phase2_slots res.Cogcomp.phase3_slots
    res.Cogcomp.phase4_slots
