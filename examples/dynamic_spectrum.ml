(* Dynamic spectrum (§7): primary users come and go, so the channels a
   secondary device may use change from slot to slot. As long as every pair
   of devices still overlaps on at least k channels in every slot, COGCAST's
   Theorem 4 guarantee is unchanged — the algorithm never relies on a static
   assignment. The same is *impossible* to guarantee deterministically
   (Theorem 17), which is the paper's argument for randomization.

   The example compares three regimes on the same spec:
     static      — the classic model,
     rotating    — channel meanings drift every slot (labels rotate),
     reshuffled  — a fresh adversarial assignment every slot.

   Run with:  dune exec examples/dynamic_spectrum.exe *)

module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Dynamic = Crn_channel.Dynamic
module Cogcast = Crn_core.Cogcast
module Complexity = Crn_core.Complexity
module Summary = Crn_stats.Summary

let spec = { Topology.n = 48; c = 12; k = 3 }

let completion availability seed =
  let { Topology.n; c; k } = spec in
  let max_slots = Complexity.cogcast_slots ~n ~c ~k () in
  let r = Cogcast.run ~source:0 ~availability ~rng:(Rng.create seed) ~max_slots () in
  match r.Cogcast.completed_at with
  | Some s -> float_of_int s
  | None ->
      Printf.eprintf "broadcast incomplete within the Theorem 4 budget (seed %d)\n"
        seed;
      exit 1

let () =
  let { Topology.n; c; k } = spec in
  Printf.printf "dynamic spectrum: n=%d c=%d k=%d, budget %d slots (Theorem 4)\n\n" n c
    k
    (Complexity.cogcast_slots ~n ~c ~k ());
  let trials = 15 in
  let regimes =
    [
      ( "static",
        fun i -> Dynamic.static (Topology.shared_core (Rng.create (100 + i)) spec) );
      ( "rotating labels",
        fun i ->
          Dynamic.rotating (Topology.shared_core (Rng.create (200 + i)) spec) );
      ( "reshuffled/slot",
        fun i -> Dynamic.reshuffled_shared_core ~seed:(Rng.create (300 + i)) spec );
    ]
  in
  Printf.printf "%-16s %10s %10s %10s\n" "regime" "median" "p90" "max";
  List.iter
    (fun (name, make) ->
      let samples = Array.init trials (fun i -> completion (make i) (400 + i)) in
      let s = Summary.of_floats samples in
      Printf.printf "%-16s %10.1f %10.1f %10.1f\n" name s.Summary.median s.Summary.p90
        s.Summary.max)
    regimes;
  Printf.printf
    "\nall three regimes complete within the same budget: COGCAST is oblivious to\n";
  Printf.printf "the assignment's history, exactly as §7 argues.\n"
