(* A guided tour of the paper's §6 lower bounds, runnable end to end.

   1. The (c,k)-bipartite hitting game (Lemma 11): play it with different
      strategies and compare against the c²/(8k) bound and the exact
      probability accounting from the proof.
   2. The Lemma 12 reduction: use COGCAST itself as a game player.
   3. Theorem 16: the (c+1)/(k+1) first-hit law under global labels.
   4. Theorem 17: the dynamic adversary that stalls any predictable
      algorithm forever — and loses to secret randomness.

   Run with:  dune exec examples/lower_bounds.exe *)

module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Adversary = Crn_channel.Adversary
module Games = Crn_games
module Cogcast = Crn_core.Cogcast
module Complexity = Crn_core.Complexity

let () =
  let rng = Rng.create 7 in
  let c = 12 and k = 3 in

  (* 1. The hitting game. *)
  Printf.printf "== (c,k)-bipartite hitting game, c=%d k=%d ==\n" c k;
  let bound = Complexity.bipartite_game_lower_bound ~c ~k () in
  List.iter
    (fun (name, make_player) ->
      let median =
        Games.Hitting_game.median_rounds ~rng ~trials:51 ~make_player
          ~game:(fun ~rng ~player ~max_rounds ->
            Games.Hitting_game.play_bipartite ~rng ~c ~k ~player ~max_rounds)
          ~max_rounds:(c * c * 100)
      in
      Printf.printf "  %-22s median rounds to win: %5.1f   (bound: %.1f)\n" name
        median bound)
    [
      ("uniform", fun rng -> Games.Players.uniform rng ~c);
      ("without replacement", fun rng -> Games.Players.without_replacement rng ~c);
      ("row scan", fun _ -> Games.Players.row_scan ~c);
    ];
  let l = Games.Bounds.critical_rounds ~c ~k () in
  Printf.printf "  at l = c²/(8k) = %d rounds, the proof caps win probability at %.2f\n\n"
    l
    (Games.Bounds.winning_probability_upper_bound ~c ~k ~rounds:l);

  (* 2. COGCAST as a player (Lemma 12). *)
  Printf.printf "== Lemma 12: COGCAST as a hitting-game player (n = 10) ==\n";
  let alg = Games.Reduction.cogcast_algorithm (Rng.split rng) ~n:10 ~c in
  let player, slots_used = Games.Reduction.player_of_algorithm ~c alg in
  let r =
    Games.Hitting_game.play_bipartite ~rng:(Rng.split rng) ~c ~k ~player
      ~max_rounds:1_000_000
  in
  Printf.printf "  won after %d game rounds = %d simulated slots x <= min{c,n} = %d\n\n"
    r.Games.Hitting_game.rounds (slots_used ()) (min c 10);

  (* 3. Theorem 16. *)
  Printf.printf "== Theorem 16: first-hit expectation, global labels ==\n";
  let mean =
    Games.First_hit.mean_first_hit ~rng ~trials:50_000 ~c ~k
      ~make_strategy:(fun rng -> Games.First_hit.fresh_random_strategy rng ~c)
  in
  Printf.printf "  measured %.3f vs (c+1)/(k+1) = %.3f\n\n" mean
    (Complexity.global_label_lower_bound ~c ~k);

  (* 4. Theorem 17. *)
  Printf.printf "== Theorem 17: the dynamic adversary ==\n";
  let n = 16 in
  let spec = { Topology.n; c; k } in
  let seed = 99 in
  let adversarial =
    Adversary.isolate_source ~spec ~source:0
      ~predict_source_label:(Cogcast.label_oracle ~seed ~n ~c ~node:0)
  in
  let stalled =
    Cogcast.run ~source:0 ~availability:adversarial ~rng:(Rng.create seed)
      ~max_slots:5_000 ()
  in
  Printf.printf "  leaked-seed COGCAST: %d/%d informed after %d slots\n"
    stalled.Cogcast.informed_count n stalled.Cogcast.slots_run;
  if stalled.Cogcast.completed_at <> None then begin
    Printf.eprintf "  leaked-seed COGCAST completed — the adversary should stall it\n";
    exit 1
  end;
  let adversarial2 =
    Adversary.isolate_source ~spec ~source:0
      ~predict_source_label:(Cogcast.label_oracle ~seed ~n ~c ~node:0)
  in
  let free =
    Cogcast.run ~source:0 ~availability:adversarial2 ~rng:(Rng.create 424242)
      ~max_slots:5_000 ()
  in
  (match free.Cogcast.completed_at with
  | Some s -> Printf.printf "  secret-seed COGCAST: complete in %d slots\n" s
  | None ->
      Printf.eprintf "  secret-seed COGCAST: incomplete (unexpected)\n";
      exit 1);
  Printf.printf "  moral: with k < c, predictability is fatal; randomness is the defense\n"
