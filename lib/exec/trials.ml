module Rng = Crn_prng.Rng

let rngs ~seed ~trials =
  if trials < 0 then invalid_arg "Trials.rngs: negative trials";
  Rng.split_n (Rng.create seed) trials

let collect ~trials ~seed f each =
  if trials = 0 then [||]
  else begin
    let streams = rngs ~seed ~trials in
    let out = Array.make trials None in
    each trials (fun i -> out.(i) <- Some (f streams.(i)));
    Array.map Option.get out
  end

let run ~pool ~trials ~seed f =
  collect ~trials ~seed f (fun n body -> Pool.parallel_for pool ~n body)

let run_seq ~trials ~seed f =
  collect ~trials ~seed f (fun n body ->
      for i = 0 to n - 1 do
        body i
      done)

let run_jobs ~jobs ~trials ~seed f =
  Pool.with_pool ~jobs (fun pool -> run ~pool ~trials ~seed f)
