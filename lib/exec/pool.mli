(** A fixed-size pool of worker [Domain]s with chunked work distribution.

    The pool exists to run many independent, CPU-bound tasks — simulation
    trials, sweep points — across cores. It is deliberately minimal: a pool
    of [jobs - 1] worker domains (the calling domain is the remaining
    worker), a single {!parallel_for} entry point with dynamic chunked
    scheduling, and first-exception propagation back to the caller.

    Determinism is the caller's contract: {!parallel_for} guarantees each
    index in [0, n) is executed exactly once, but in an unspecified order
    and on an unspecified domain. Work whose result depends only on its
    index (as every {!Trials} callback does, via a pre-split RNG per trial)
    therefore produces identical results at any pool size, including a
    sequential pool of size 1. *)

type t
(** A pool of worker domains. Values of type [t] are safe to share: all
    internal state is protected by a mutex, but only one [parallel_for]
    may be in flight at a time per pool. *)

val create : jobs:int -> t
(** [create ~jobs] spawns a pool of total parallelism [jobs]: [jobs - 1]
    worker domains plus the caller, which participates in every
    {!parallel_for}. [jobs] is clamped to [[1, 128]]; [jobs = 1] spawns no
    domains and makes {!parallel_for} run inline, sequentially. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], clamped to [[1, 128]] — the
    default worker count used by [bench/main.exe] and [bin/crn_sim]. *)

val jobs : t -> int
(** Total parallelism of the pool (worker domains + the caller). *)

val parallel_for : ?chunk:int -> t -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~n f] runs [f 0 .. f (n - 1)], each exactly once,
    distributing indices over the pool in contiguous chunks claimed from a
    shared atomic counter (dynamic load balancing: fast workers take more
    chunks). Returns when every index has completed.

    [chunk] sets the indices-per-claim granularity; the default targets a
    few chunks per worker and [1] gives the finest balancing. If any [f i]
    raises, the first exception (with its backtrace) is re-raised in the
    caller after all workers have stopped claiming work; remaining
    unclaimed chunks are abandoned. [n <= 0] is a no-op. *)

val run : t -> (unit -> 'a) array -> 'a array
(** [run t thunks] evaluates each thunk exactly once in parallel and
    returns their results in order. Convenience wrapper over
    {!parallel_for} with [chunk = 1]. *)

val shutdown : t -> unit
(** Joins and releases the worker domains. Idempotent; using the pool
    after [shutdown] degrades to sequential execution in the caller. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] creates a pool, applies [f], and shuts the pool
    down whether [f] returns or raises. *)
