(* Fixed-size domain pool with chunked dynamic scheduling.

   The worker domains are parked on a condition variable between batches.
   Submitting a batch bumps a generation counter and hands every worker the
   same "miner" closure; each miner claims chunk indices from an atomic
   counter until the batch is exhausted (or a sibling failed), so load
   balances dynamically without any per-task queueing. The caller runs the
   miner too, then blocks until the last worker checks out. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t; (* signalled when a new batch (or shutdown) is posted *)
  done_ : Condition.t; (* signalled when the last worker finishes a batch *)
  mutable batch : (unit -> unit) option; (* miner of the current generation *)
  mutable generation : int;
  mutable busy : int; (* workers still mining the current batch *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let clamp_jobs j = if j < 1 then 1 else if j > 128 then 128 else j

let default_jobs () = clamp_jobs (Domain.recommended_domain_count ())

let worker t =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.stop) && t.generation = !seen do
      Condition.wait t.work t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      seen := t.generation;
      let miner = Option.get t.batch in
      Mutex.unlock t.mutex;
      miner ();
      Mutex.lock t.mutex;
      t.busy <- t.busy - 1;
      if t.busy = 0 then Condition.broadcast t.done_;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ~jobs =
  let jobs = clamp_jobs jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      batch = None;
      generation = 0;
      busy = 0;
      stop = false;
      domains = [];
    }
  in
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.jobs

(* Post [miner] to every worker, mine in the calling domain too, and wait
   for all workers to finish the batch. *)
let submit t miner =
  Mutex.lock t.mutex;
  t.batch <- Some miner;
  t.generation <- t.generation + 1;
  t.busy <- List.length t.domains;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  miner ();
  Mutex.lock t.mutex;
  while t.busy > 0 do
    Condition.wait t.done_ t.mutex
  done;
  t.batch <- None;
  Mutex.unlock t.mutex

let parallel_for ?chunk t ~n f =
  if n > 0 then
    if t.domains = [] || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let chunk =
        match chunk with
        | Some c when c >= 1 -> c
        | Some _ -> invalid_arg "Pool.parallel_for: chunk must be >= 1"
        | None -> max 1 (n / (t.jobs * 8))
      in
      let nchunks = (n + chunk - 1) / chunk in
      let next = Atomic.make 0 in
      let failure = Atomic.make None in
      let rec mine () =
        if Atomic.get failure = None then begin
          let c = Atomic.fetch_and_add next 1 in
          if c < nchunks then begin
            (try
               for i = c * chunk to min n ((c + 1) * chunk) - 1 do
                 f i
               done
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set failure None (Some (e, bt))));
            mine ()
          end
        end
      in
      submit t mine;
      match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

let run t thunks =
  let n = Array.length thunks in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ~chunk:1 t ~n (fun i -> out.(i) <- Some (thunks.(i) ()));
    Array.map Option.get out
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  let domains = t.domains in
  t.domains <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join domains

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
