(** Deterministic parallel execution of independent simulation trials.

    Every experiment in this repository has the same shape: run [trials]
    independent simulations, each consuming its own random stream, and
    summarize the results. This module is that shape as an API, built on
    {!Pool}: the trial RNGs are derived {e up front} from a single seed via
    [Rng.split_n], so trial [i] sees the same stream no matter which domain
    runs it, in what order, or how many workers exist.

    The resulting guarantee, relied on throughout [bench/] and
    [bin/crn_sim]: {b same seed ⇒ bit-identical results at any job count},
    including [--jobs 1]. *)

val rngs : seed:int -> trials:int -> Crn_prng.Rng.t array
(** [rngs ~seed ~trials] is the deterministic per-trial generator array
    [Rng.split_n (Rng.create seed) trials] — exposed so callers that cannot
    use {!run} directly (stateful accumulation, library callbacks) can
    still derive the same streams. *)

val run :
  pool:Pool.t -> trials:int -> seed:int -> (Crn_prng.Rng.t -> 'a) -> 'a array
(** [run ~pool ~trials ~seed f] evaluates [f] once per trial, each call on
    its own pre-split generator, distributing trials over [pool]. Element
    [i] of the result is the value of trial [i]; the array is identical for
    every pool size. Exceptions from trials propagate to the caller (first
    failure wins; see {!Pool.parallel_for}). [trials = 0] yields [[||]];
    negative [trials] raises [Invalid_argument]. *)

val run_seq : trials:int -> seed:int -> (Crn_prng.Rng.t -> 'a) -> 'a array
(** [run_seq ~trials ~seed f] is {!run} on the calling domain only — the
    reference implementation the parallel path must agree with. *)

val run_jobs :
  jobs:int -> trials:int -> seed:int -> (Crn_prng.Rng.t -> 'a) -> 'a array
(** [run_jobs ~jobs] is {!run} on an ephemeral pool of [jobs] workers,
    created and shut down around the call. Convenient for one-shot use;
    prefer a shared {!Pool.t} in a harness that runs many batches. *)
