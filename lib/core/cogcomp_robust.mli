(** Fault-tolerant COGCOMP: the four-phase aggregation of {!Cogcomp}
    hardened against crash/restart faults, churn and jamming.

    The plain protocol's phase arguments assume every node acts in every
    slot; a single missed slot can corrupt rosters, strand the drain behind
    a dead mediator, or stall a sender forever. This variant keeps the same
    phase structure and adds three recovery mechanisms, each bounded so a
    faulty run always terminates:

    {ul
    {- {b Phase-2 watchdog.} The roster phase keeps running (in extra rounds
       of [n] slots, up to [watchdog_retries] of them) while some
       participant has not yet won its roster slot. A participant that
       exhausts the budget is {e written off}: absent from every roster, it
       takes no part in phase 4 and its subtree is recorded as lost.}
    {- {b Mediator re-election.} Every phase-2 participant learns the full
       succession order for its channel — the elected mediator first, then
       the remaining roster ids ascending. A sender that hears [timeout]
       consecutive silent announce slots (after the channel first went
       live) advances to the next candidate; the new mediator takes over
       announcing. When the candidate list is exhausted the channel
       degenerates to an unmediated free-for-all drain.}
    {- {b Bounded-retry drain with acks.} Phase-4 value sends treat the
       receiver's echo as an acknowledgement. A send that observes a silent
       echo slot is retried with exponential backoff
       ({!Crn_radio.Backoff.retry_delay}, capped); after [max_retries]
       unacked attempts the sender abandons and retires, recording its
       subtree as lost. Receivers deduplicate by sender id, so a retry of a
       value that was already folded is re-acked without being counted
       again ({!Crn_radio.Trace.Check.exactly_once_drain}).}}

    {b Fault-free parity.} With neither [?faults] nor [?jammer] supplied,
    every robust mechanism is disarmed (its trigger counters never advance)
    and the run is {e bit-identical} to {!Cogcomp.run}: same root value,
    same per-phase slot counts, same RNG stream. The robust machinery costs
    nothing until an adversary is actually installed. *)

type 'a result = {
  complete : bool;
      (** Phase 1 informed everyone, every node terminated, and every
          value reached the source ([coverage = n]). *)
  root_value : 'a;
      (** The source's accumulator — the fold of every value whose delivery
          chain reached the source. Equals the full aggregate iff
          [lost = []]; on faulty runs it is the partial fold over the
          covered nodes. *)
  coverage : int;
      (** Number of nodes whose value reached the source (the source
          included). [coverage + List.length lost = n]. *)
  lost : int list;
      (** Ids (ascending) whose values did not reach the source: nodes
          written off in phase 2, senders that exhausted their retries, and
          every node whose delivery chain passes through one of those. *)
  reelections : int;
      (** Mediator accessions after the initial election — candidates that
          actually took over a channel. *)
  retries : int;  (** Phase-4 value sends that were re-sends. *)
  phase1_slots : int;
  phase2_slots : int;
  phase3_slots : int;
  phase4_steps : int;
  phase4_slots : int;
  total_slots : int;
  tree : Disttree.t;
  mediators : int list;  (** Initially elected mediators, ascending id. *)
  terminated : bool array;  (** Per-node phase-4 termination. *)
}

val run :
  ?jammer:Crn_radio.Jammer.t ->
  ?faults:Crn_radio.Faults.t ->
  ?budget_factor:float ->
  ?max_phase4_steps:int ->
  ?watchdog_retries:int ->
  ?timeout:int ->
  ?max_retries:int ->
  ?trace:Crn_radio.Trace.t ->
  monoid:'a Aggregate.monoid ->
  values:'a array ->
  source:int ->
  assignment:Crn_channel.Assignment.t ->
  k:int ->
  rng:Crn_prng.Rng.t ->
  unit ->
  'a result
(** [run ~monoid ~values ~source ~assignment ~k ~rng ()] aggregates
    [values.(v)] over all [v] to [source], tolerating whatever [?faults] /
    [?jammer] throw at it.

    [watchdog_retries] (default [2]) bounds the extra phase-2 rounds;
    [timeout] (default [6]) is the silent-step streak that triggers mediator
    re-election and head-cluster skipping; [max_retries] (default [8])
    bounds unacked phase-4 sends per node. [max_phase4_steps] defaults to
    [48·n + 256] on faulty runs ([12·n + 64] fault-free, matching plain
    COGCOMP). [budget_factor] scales the phase-1 COGCAST budget as in
    {!Cogcomp.run}.

    The run always terminates: every watchdog is bounded, and the phase-4
    stop also fires when every non-terminated node has been absent for a
    grace period (crashed or churned out for good).

    With [?trace] supplied the run emits the same stream as {!Cogcomp.run}
    (phase markers, [Mediator] elections — re-elections included —
    [Sent_value] for every attempt, [Value_delivered] only for fresh
    deliveries, [Retired], and [Phase "cogcomp-done"] iff complete), which
    {!Crn_radio.Trace.Check.all} validates including
    {!Crn_radio.Trace.Check.exactly_once_drain}.

    Raises [Invalid_argument] on a [values] length mismatch, [timeout < 1],
    or [max_retries < 0]. *)
