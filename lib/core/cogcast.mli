(** COGCAST (§4): epidemic local broadcast.

    In every slot, every node picks a channel uniformly at random from its
    own channel set; nodes that already know the message broadcast it, the
    rest listen. Theorem 4: after [Θ((c/k)·max{1, c/n}·lg n)] slots all
    nodes are informed w.h.p.

    The implementation runs on {!Crn_radio.Engine}, so it works unchanged
    under dynamic channel assignments (§7) and under jamming (through the
    Theorem 18 availability reduction or the engine's receiver-side jammer).

    Because a node broadcasts in every slot after being informed, it is
    informed exactly once; designating the first informer as the parent
    yields the *distribution tree* that COGCOMP builds on. With
    [~record:true] the per-slot action log needed by COGCOMP's phases 2–4 is
    retained. *)

type msg = Init

type event =
  | Sent_won  (** Broadcast this slot and was the channel's winner. *)
  | Sent_lost  (** Broadcast and lost the channel to another broadcaster. *)
  | Got_informed of { parent : int }  (** Heard the message for the first time. *)
  | Heard_silence  (** Listened and heard nothing. *)
  | Was_jammed  (** The action was absorbed by a jammer. *)
  | Session_failed
      (** Broadcast on a channel whose contention session hit its round cap
          without isolating a winner ({!Crn_radio.Action.No_winner}); only
          on the emulation backends. *)

type slot_log = { label : int; event : event }
(** What one node did in one slot ([label] is the local channel label it
    tuned to). *)

type result = {
  n : int;
  source : int;
  completed_at : int option;
      (** Slot count after which all nodes were informed; [None] if the run
          hit [max_slots] first. *)
  slots_run : int;
  informed : bool array;
  informed_count : int;
  parent : int option array;
      (** [parent.(v)] is the node that first informed [v]; [None] for the
          source and for uninformed nodes. *)
  informed_at : int option array;  (** Slot at which each node was informed. *)
  informed_label : int option array;
      (** Local label of the channel on which each node was informed. *)
  logs : slot_log array array option;
      (** [logs.(v)] is node [v]'s per-slot log (present iff [~record:true]).
          Entries beyond a stopped run keep their defaults. *)
  counters : Crn_radio.Trace.Counters.t;
      (** Aggregate channel accounting from the engine run. *)
  raw_rounds : int;
      (** Raw radio rounds consumed; [0] on the abstract backends. *)
  failed_sessions : int;
      (** Emulation contention sessions that hit their round cap; [0] on
          the abstract backends. *)
}

val run :
  ?pool:Crn_exec.Pool.t ->
  ?jammer:Crn_radio.Jammer.t ->
  ?faults:Crn_radio.Faults.t ->
  ?metrics:Crn_radio.Metrics.t ->
  ?trace:Crn_radio.Trace.t ->
  ?backend:Crn_radio.Runner.backend ->
  ?record:bool ->
  ?stop_when_complete:bool ->
  source:int ->
  availability:Crn_channel.Dynamic.t ->
  rng:Crn_prng.Rng.t ->
  max_slots:int ->
  unit ->
  result
(** [run ~source ~availability ~rng ~max_slots ()] executes COGCAST from
    [source]. By default the run stops as soon as every node is informed
    ([stop_when_complete], default [true]); with [record:true] it keeps full
    logs (memory [n · slots_run]). With [?trace] supplied, a
    {!Crn_radio.Trace.Meta} and a [Phase "cogcast"] marker are recorded up
    front, the engine streams its slot events into it, and every first
    reception adds a {!Crn_radio.Trace.Informed} tree edge. [?backend]
    selects the slot-loop implementation through {!Crn_radio.Runner}
    (default {!Crn_radio.Runner.Engine}); use {!run_emulated} instead when
    the raw-round cost of the footnote-4 composition is wanted. The
    protocol state honors the SoA sharding contract (per-node RNG streams,
    atomic informed counter), so on a {!Crn_radio.Runner.Soa} backend one
    trial shards across domains — [?pool] (Soa only) reuses an existing
    domain pool instead of spinning one up per run. See {!Cogcast_soa.run}
    for the pre-wired SoA entry point. *)

val run_emulated :
  ?strategy:Crn_radio.Emulation.strategy ->
  ?session_cap:int ->
  ?jammer:Crn_radio.Jammer.t ->
  ?faults:Crn_radio.Faults.t ->
  ?metrics:Crn_radio.Metrics.t ->
  ?trace:Crn_radio.Trace.t ->
  ?record:bool ->
  ?stop_when_complete:bool ->
  source:int ->
  availability:Crn_channel.Dynamic.t ->
  rng:Crn_prng.Rng.t ->
  max_slots:int ->
  unit ->
  result * Crn_radio.Emulation.outcome
(** The footnote-4 composition: the same protocol executed on the *raw
    collision radio*, each abstract slot realized by per-channel contention
    sessions ({!Crn_radio.Emulation}; [strategy] picks decay backoff — the
    default — or CSMA/CA). Returns the usual result — its [counters] are
    the emulation's real channel accounting (shared with the paired
    outcome), not zeros — together with the emulation outcome carrying the
    raw-round cost. Experiments E22/E25 measure the overhead ratio. With
    [?trace] supplied, the emulation additionally streams per-channel
    {!Crn_radio.Trace.Session} events recording each contention session's
    raw-round cost. Jamming, faults and metrics compose at the
    abstract-slot level, exactly as with {!run} on the engine. *)

val run_static :
  ?pool:Crn_exec.Pool.t ->
  ?jammer:Crn_radio.Jammer.t ->
  ?faults:Crn_radio.Faults.t ->
  ?metrics:Crn_radio.Metrics.t ->
  ?trace:Crn_radio.Trace.t ->
  ?backend:Crn_radio.Runner.backend ->
  ?record:bool ->
  ?stop_when_complete:bool ->
  ?budget_factor:float ->
  source:int ->
  assignment:Crn_channel.Assignment.t ->
  k:int ->
  rng:Crn_prng.Rng.t ->
  unit ->
  result
(** Convenience wrapper for the static model: derives [max_slots] from
    {!Complexity.cogcast_slots} using the assignment's dimensions and the
    caller-declared overlap [k]. *)

val label_oracle :
  seed:int -> n:int -> c:int -> node:int -> (slot:int -> int)
(** The "leaked seed" oracle for the Theorem 17 adversary
    ({!Crn_channel.Adversary}): replays the label stream that a COGCAST run
    driven by [Rng.create seed] on an [n]-node, [c]-channel network will
    draw for [node]. The returned closure is stateful and must be queried
    exactly once per slot in increasing slot order — the same pattern in
    which the engine queries the availability. Kept in this module so that
    any change to COGCAST's internal randomness consumption updates the
    oracle with it (guarded by a test). *)
