module Rng = Crn_prng.Rng
module Assignment = Crn_channel.Assignment
module Dynamic = Crn_channel.Dynamic
module Action = Crn_radio.Action
module Engine = Crn_radio.Engine
module Trace = Crn_radio.Trace

type 'a result = {
  complete : bool;
  root_value : 'a option;
  phase1_slots : int;
  phase2_slots : int;
  phase3_slots : int;
  phase4_steps : int;
  phase4_slots : int;
  total_slots : int;
  tree : Disttree.t;
  mediators : int list;
  terminated : bool array;
  max_payload : int;
  total_payload : int;
}

(* ------------------------------------------------------------------ *)
(* Phases 2-4 run either on the abstract one-winner engine or on the
   raw-radio emulation (footnote 4), behind the shared backend-selecting
   {!Crn_radio.Runner}. [accumulating] wraps a runner so the raw-round
   cost of every phase lands in one counter.                            *)
(* ------------------------------------------------------------------ *)

module Runner = Crn_radio.Runner

let accumulating runner ~raw_rounds =
  {
    Runner.run =
      (fun ?stop ~nodes ~max_slots () ->
        let outcome = runner.Runner.run ?stop ~nodes ~max_slots () in
        raw_rounds := !raw_rounds + outcome.Runner.raw_rounds;
        outcome);
  }

let run_slots runner ?stop ~nodes ~max_slots () =
  (runner.Runner.run ?stop ~nodes ~max_slots ()).Runner.slots_run

(* ------------------------------------------------------------------ *)
(* Phase 2: cluster sizes and mediator election.                       *)
(* ------------------------------------------------------------------ *)

type phase2_msg = { p2_id : int; p2_r : int }

type phase2_info = {
  cluster_size : int;  (* size of the node's own (r,c)-cluster *)
  roster : (int * int) list;  (* (id, r) of every node on this channel *)
  is_mediator : bool;
  (* For the mediator: every cluster on its channel as (r, member ids),
     sorted by descending r. Empty for non-mediators. *)
  med_clusters : (int * int list) list;
}

let run_phase2 ~(cast : Cogcast.result) ~runner =
  let n = cast.Cogcast.n in
  (* participant.(v) = Some (r, label) for informed non-source nodes. *)
  let participant =
    Array.init n (fun v ->
        if v = cast.Cogcast.source then None
        else
          match (cast.Cogcast.informed_at.(v), cast.Cogcast.informed_label.(v)) with
          | Some r, Some label -> Some (r, label)
          | _ -> None)
  in
  let sent_ok = Array.make n false in
  let rosters = Array.make n [] in
  Array.iteri
    (fun v p -> match p with Some (r, _) -> rosters.(v) <- [ (v, r) ] | None -> ())
    participant;
  let decide v ~slot:_ =
    match participant.(v) with
    | None -> Action.listen ~label:0
    | Some (r, label) ->
        if sent_ok.(v) then Action.listen ~label
        else Action.broadcast ~label { p2_id = v; p2_r = r }
  in
  let note v msg = rosters.(v) <- (msg.p2_id, msg.p2_r) :: rosters.(v) in
  let feedback v ~slot:_ = function
    | Action.Won -> sent_ok.(v) <- true
    | Action.Lost { msg; _ } -> note v msg
    | Action.Heard { msg; _ } -> if participant.(v) <> None then note v msg
    | Action.Silence | Action.Jammed | Action.No_winner -> ()
  in
  let nodes =
    Array.init n (fun v -> Engine.node ~id:v ~decide:(decide v) ~feedback:(feedback v))
  in
  let slots_run = run_slots runner ~nodes ~max_slots:n () in
  let info =
    Array.init n (fun v ->
        match participant.(v) with
        | None ->
            { cluster_size = 0; roster = []; is_mediator = false; med_clusters = [] }
        | Some (r, _) ->
            let roster = rosters.(v) in
            let cluster_size =
              List.length (List.filter (fun (_, r') -> r' = r) roster)
            in
            let r_max = List.fold_left (fun acc (_, r') -> max acc r') (-1) roster in
            let latest_ids =
              List.filter_map (fun (id, r') -> if r' = r_max then Some id else None) roster
            in
            let mediator_id = List.fold_left min max_int latest_ids in
            let is_mediator = mediator_id = v in
            let med_clusters =
              if not is_mediator then []
              else begin
                let by_r : (int, int list) Hashtbl.t = Hashtbl.create 8 in
                List.iter
                  (fun (id, r') ->
                    let cur = Option.value ~default:[] (Hashtbl.find_opt by_r r') in
                    Hashtbl.replace by_r r' (id :: cur))
                  roster;
                Hashtbl.fold (fun r' ids acc -> (r', List.sort compare ids) :: acc) by_r []
                |> List.sort (fun (a, _) (b, _) -> compare b a)
              end
            in
            { cluster_size; roster; is_mediator; med_clusters })
  in
  (info, slots_run)

(* ------------------------------------------------------------------ *)
(* Phase 3: the rewind — informers learn their clusters' sizes.        *)
(* ------------------------------------------------------------------ *)

let run_phase3 ~(cast : Cogcast.result) ~(info : phase2_info array) ~runner =
  let n = cast.Cogcast.n in
  let logs =
    match cast.Cogcast.logs with
    | Some logs -> logs
    | None -> invalid_arg "Cogcomp: phase 1 must be run with recording on"
  in
  let l = cast.Cogcast.slots_run in
  (* clusters_collected.(v) = (r, label, size) list for clusters v informed. *)
  let clusters_collected = Array.make n [] in
  (* The phase-1 slot mirrored by the current phase-3 slot, per node, so the
     feedback handler knows which cluster a heard size belongs to. *)
  let decide v ~slot =
    let mirrored = l - 1 - slot in
    let entry = logs.(v).(mirrored) in
    match entry.Cogcast.event with
    | Cogcast.Got_informed _ ->
        Action.broadcast ~label:entry.Cogcast.label info.(v).cluster_size
    | Cogcast.Sent_won | Cogcast.Sent_lost | Cogcast.Heard_silence | Cogcast.Was_jammed
    | Cogcast.Session_failed ->
        Action.listen ~label:entry.Cogcast.label
  in
  let feedback v ~slot = function
    | Action.Heard { msg = size; _ } ->
        let mirrored = l - 1 - slot in
        let entry = logs.(v).(mirrored) in
        (* Only the slot's winner interprets the size broadcast: it created
           the cluster being reported. *)
        (match entry.Cogcast.event with
        | Cogcast.Sent_won ->
            clusters_collected.(v) <-
              (mirrored, entry.Cogcast.label, size) :: clusters_collected.(v)
        | Cogcast.Sent_lost | Cogcast.Got_informed _ | Cogcast.Heard_silence
        | Cogcast.Was_jammed | Cogcast.Session_failed ->
            ())
    | Action.Won | Action.Lost _ | Action.Silence | Action.Jammed
    | Action.No_winner ->
        ()
  in
  let nodes =
    Array.init n (fun v -> Engine.node ~id:v ~decide:(decide v) ~feedback:(feedback v))
  in
  let slots_run = run_slots runner ~nodes ~max_slots:l () in
  (* Descending r, as phase 4 consumes them. *)
  let clusters =
    Array.map (fun cs -> List.sort (fun (a, _, _) (b, _, _) -> compare b a) cs)
      clusters_collected
  in
  (clusters, slots_run)

(* ------------------------------------------------------------------ *)
(* Phase 4: mediated leaf-to-root drain.                               *)
(* ------------------------------------------------------------------ *)

type 'a phase4_msg =
  | Announce of int  (* cluster slot r' whose members may send now *)
  | Values of { val_r : int; val_id : int; payload : 'a }
  | Echo of int  (* identity of the sender whose values were received *)

type role = Collecting | Sending | Mediating | Done

type 'a node_state = {
  mutable role : role;
  mutable acc : 'a;
  (* Receiver side: clusters still to collect, descending r. *)
  mutable to_collect : (int * int * int) list;  (* (r, label, size) *)
  mutable remaining : int;  (* members of the current cluster still unheard *)
  mutable pending_echo : int option;
  (* Sender side. *)
  own_r : int;
  own_label : int;
  mutable announce_matches : bool;
  mutable sent_done : bool;
  (* Mediator side. *)
  is_mediator : bool;
  med_label : int;
  mutable med_clusters : (int * int) list;  (* (r, undelivered count), desc r *)
}

let run_phase4 (type a) ?measure ?trace ~mediated ~(monoid : a Aggregate.monoid)
    ~(values : a array) ~(cast : Cogcast.result) ~(info : phase2_info array)
    ~(clusters : (int * int * int) list array) ~runner ~max_steps () =
  let n = cast.Cogcast.n in
  let source = cast.Cogcast.source in
  let emit ev = match trace with Some tr -> Trace.record tr ev | None -> () in
  let traced = trace <> None in
  let states =
    Array.init n (fun v ->
        let informed = cast.Cogcast.informed.(v) in
        let own_r = Option.value ~default:(-1) cast.Cogcast.informed_at.(v) in
        let own_label = Option.value ~default:0 cast.Cogcast.informed_label.(v) in
        let to_collect = clusters.(v) in
        let is_mediator = info.(v).is_mediator in
        let med_clusters =
          List.map (fun (r, ids) -> (r, List.length ids)) info.(v).med_clusters
        in
        let role =
          if not informed && v <> source then Done
          else if to_collect <> [] then Collecting
          else if v = source then Done
          else Sending
        in
        let remaining =
          match to_collect with (_, _, size) :: _ -> size | [] -> 0
        in
        {
          role;
          acc = values.(v);
          to_collect;
          remaining;
          pending_echo = None;
          own_r;
          own_label;
          announce_matches = false;
          sent_done = false;
          is_mediator;
          med_label = own_label;
          med_clusters;
        })
  in
  let done_count = ref (Array.fold_left (fun acc s -> if s.role = Done then acc + 1 else acc) 0 states) in
  let retire ~slot v st =
    st.role <- Done;
    incr done_count;
    if traced then emit (Trace.Retired { slot; node = v })
  in
  (* Mediator duties are live once the node has left the Collecting role;
     with mediation ablated there are no mediator duties at all. *)
  let mediator_live st =
    mediated && st.is_mediator && st.role <> Collecting && st.role <> Done
  in
  let finish_sending ~slot v st =
    st.sent_done <- true;
    if mediated && st.is_mediator && st.med_clusters <> [] then st.role <- Mediating
    else retire ~slot v st
  in
  (* Payload accounting for the §5 message-size discussion. *)
  let max_payload = ref 0 and total_payload = ref 0 in
  let account payload =
    match measure with
    | None -> ()
    | Some f ->
        let size = f payload in
        max_payload := max !max_payload size;
        total_payload := !total_payload + size
  in
  let advance_collecting ~slot v st =
    match st.to_collect with
    | [] -> assert false
    | _ :: rest ->
        st.to_collect <- rest;
        (match rest with
        | (_, _, size) :: _ -> st.remaining <- size
        | [] -> if v = source then retire ~slot v st else st.role <- Sending)
  in
  let mediator_note_echo ~slot v st =
    match st.med_clusters with
    | [] -> ()
    | (r, count) :: rest ->
        let count = count - 1 in
        if count <= 0 then begin
          st.med_clusters <- rest;
          if rest = [] && st.role = Mediating then retire ~slot v st
        end
        else st.med_clusters <- (r, count) :: rest
  in
  let decide v ~slot =
    let st = states.(v) in
    let pos = slot mod 3 in
    match pos with
    | 0 -> (
        st.announce_matches <- (not mediated) && st.role = Sending;
        if mediator_live st then
          match st.med_clusters with
          | (r, _) :: _ ->
              if st.role = Sending then st.announce_matches <- r = st.own_r;
              Action.broadcast ~label:st.med_label (Announce r)
          | [] -> Action.listen ~label:st.med_label
        else
          match st.role with
          | Collecting -> (
              match st.to_collect with
              | (_, label, _) :: _ -> Action.listen ~label
              | [] -> Action.listen ~label:0)
          | Sending -> Action.listen ~label:st.own_label
          | Mediating | Done -> Action.listen ~label:0)
    | 1 -> (
        match st.role with
        | Sending when st.announce_matches ->
            account st.acc;
            if traced then emit (Trace.Sent_value { slot; node = v; r = st.own_r });
            Action.broadcast ~label:st.own_label
              (Values { val_r = st.own_r; val_id = v; payload = st.acc })
        | Sending -> Action.listen ~label:st.own_label
        | Collecting -> (
            match st.to_collect with
            | (_, label, _) :: _ -> Action.listen ~label
            | [] -> Action.listen ~label:0)
        | Mediating -> Action.listen ~label:st.med_label
        | Done -> Action.listen ~label:0)
    | _ -> (
        match st.pending_echo with
        | Some id ->
            (* Receiver: acknowledge the delivered sender. *)
            (match st.to_collect with
            | (_, label, _) :: _ -> Action.broadcast ~label (Echo id)
            | [] -> assert false)
        | None -> (
            match st.role with
            | Sending -> Action.listen ~label:st.own_label
            | Mediating -> Action.listen ~label:st.med_label
            | Collecting -> (
                match st.to_collect with
                | (_, label, _) :: _ -> Action.listen ~label
                | [] -> Action.listen ~label:0)
            | Done -> Action.listen ~label:0))
  in
  let feedback v ~slot fb =
    let st = states.(v) in
    let pos = slot mod 3 in
    match (pos, fb) with
    | 0, Action.Heard { msg = Announce r; _ } ->
        if st.role = Sending then st.announce_matches <- r = st.own_r
    | 1, Action.Heard { msg = Values { val_r; val_id; payload }; _ } ->
        if st.role = Collecting then begin
          match st.to_collect with
          | (r, _, _) :: _ when r = val_r ->
              st.acc <- monoid.Aggregate.combine st.acc payload;
              st.pending_echo <- Some val_id
          | _ -> ()
        end
    | 2, (Action.Won | Action.Lost _) when st.pending_echo <> None ->
        (* Our echo went out (Won is guaranteed: the receiver is the only
           broadcaster on its channel in slot 3). *)
        (if traced then
           match (st.pending_echo, st.to_collect) with
           | Some id, (r, _, _) :: _ ->
               emit (Trace.Value_delivered { slot; sender = id; receiver = v; r })
           | _ -> ());
        st.pending_echo <- None;
        st.remaining <- st.remaining - 1;
        if st.remaining <= 0 then advance_collecting ~slot v st
    | 2, Action.Heard { msg = Echo id; _ } -> (
        (* Senders learn their delivery; mediators account for the drain.
           A mediator that is still sending must do both: its own delivery
           also drains one member of the current cluster. *)
        match st.role with
        | Sending ->
            if mediated && st.is_mediator then mediator_note_echo ~slot v st;
            if id = v then finish_sending ~slot v st
        | Mediating -> mediator_note_echo ~slot v st
        | Collecting | Done -> ())
    | _ -> ()
  in
  let nodes =
    Array.init n (fun v -> Engine.node ~id:v ~decide:(decide v) ~feedback:(feedback v))
  in
  let stop ~slot = slot mod 3 = 2 && !done_count = n in
  (* Nothing to drain (e.g. a one-node network): phase 4 is empty. *)
  let max_slots = if !done_count = n then 0 else 3 * max_steps in
  let slots_run = run_slots runner ~stop ~nodes ~max_slots () in
  let root_acc = states.(source).acc in
  let terminated = Array.map (fun st -> st.role = Done) states in
  (root_acc, terminated, slots_run, !max_payload, !total_payload)

(* ------------------------------------------------------------------ *)
(* The full protocol.                                                  *)
(* ------------------------------------------------------------------ *)

let run_with ~emulated ?(strategy = Crn_radio.Emulation.Decay) ?session_cap
    ~raw_rounds ?jammer ?faults ?budget_factor ?max_phase4_steps
    ?(mediated = true) ?measure ?trace ~monoid ~values ~source ~assignment ~k ~rng ()
    =
  let n = Assignment.num_nodes assignment in
  if Array.length values <> n then invalid_arg "Cogcomp.run: values length mismatch";
  let availability = Dynamic.static assignment in
  let mark name =
    match trace with
    | Some tr -> Trace.record tr (Trace.Phase { name })
    | None -> ()
  in
  let make_runner rng =
    let backend =
      if emulated then Runner.Emulation { strategy; session_cap }
      else Runner.Engine
    in
    accumulating ~raw_rounds
      (Runner.make ?jammer ?faults ?trace ~backend ~availability ~rng ())
  in
  (* Phase 1: COGCAST with recording; fixed length so that all nodes agree on
     phase boundaries. *)
  let cast =
    if emulated then begin
      let c = Assignment.channels_per_node assignment in
      let max_slots = Complexity.cogcast_slots ?factor:budget_factor ~n ~c ~k () in
      let cast, outcome =
        Cogcast.run_emulated ~strategy ?session_cap ?jammer ?faults ?trace
          ~record:true ~stop_when_complete:false ~source ~availability
          ~rng:(Rng.split rng) ~max_slots ()
      in
      raw_rounds := !raw_rounds + outcome.Crn_radio.Emulation.raw_rounds;
      cast
    end
    else
      Cogcast.run_static ?jammer ?faults ?budget_factor ?trace ~record:true
        ~stop_when_complete:false ~source ~assignment ~k ~rng:(Rng.split rng) ()
  in
  let tree = Disttree.of_result cast in
  mark "cogcomp-phase2";
  let info, phase2_slots = run_phase2 ~cast ~runner:(make_runner (Rng.split rng)) in
  (match trace with
  | Some tr ->
      Array.iteri
        (fun v (inf : phase2_info) ->
          if inf.is_mediator then Trace.record tr (Trace.Mediator { node = v }))
        info
  | None -> ());
  mark "cogcomp-phase3";
  let clusters, phase3_slots =
    run_phase3 ~cast ~info ~runner:(make_runner (Rng.split rng))
  in
  mark "cogcomp-phase4";
  let max_steps =
    match max_phase4_steps with Some s -> s | None -> (12 * n) + 64
  in
  let root_acc, terminated, phase4_slots, max_payload, total_payload =
    run_phase4 ?measure ?trace ~mediated ~monoid ~values ~cast ~info ~clusters
      ~runner:(make_runner (Rng.split rng)) ~max_steps ()
  in
  let mediators =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun v -> if info.(v).is_mediator then Some v else None)
            (Seq.init n (fun v -> v))))
  in
  let complete =
    cast.Cogcast.informed_count = n && Array.for_all (fun b -> b) terminated
  in
  if complete then mark "cogcomp-done";
  {
    complete;
    root_value = (if complete then Some root_acc else None);
    phase1_slots = cast.Cogcast.slots_run;
    phase2_slots;
    phase3_slots;
    phase4_steps = (phase4_slots + 2) / 3;
    phase4_slots;
    total_slots = cast.Cogcast.slots_run + phase2_slots + phase3_slots + phase4_slots;
    tree;
    mediators;
    terminated;
    max_payload;
    total_payload;
  }

let run ?jammer ?faults ?budget_factor ?max_phase4_steps ?mediated ?measure ?trace
    ~monoid ~values ~source ~assignment ~k ~rng () =
  run_with ~emulated:false ~raw_rounds:(ref 0) ?jammer ?faults ?budget_factor
    ?max_phase4_steps ?mediated ?measure ?trace ~monoid ~values ~source ~assignment
    ~k ~rng ()

let run_emulated ?strategy ?session_cap ?jammer ?faults ?budget_factor
    ?max_phase4_steps ?mediated ?measure ?trace ~monoid ~values ~source
    ~assignment ~k ~rng () =
  let raw_rounds = ref 0 in
  let result =
    run_with ~emulated:true ?strategy ?session_cap ~raw_rounds ?jammer ?faults
      ?budget_factor ?max_phase4_steps ?mediated ?measure ?trace ~monoid ~values
      ~source ~assignment ~k ~rng ()
  in
  (result, !raw_rounds)
