module Rng = Crn_prng.Rng
module Dynamic = Crn_channel.Dynamic
module Action = Crn_radio.Action
module Engine = Crn_radio.Engine
module Runner = Crn_radio.Runner
module Trace = Crn_radio.Trace

type msg = Init

type event =
  | Sent_won
  | Sent_lost
  | Got_informed of { parent : int }
  | Heard_silence
  | Was_jammed
  | Session_failed

type slot_log = { label : int; event : event }

type result = {
  n : int;
  source : int;
  completed_at : int option;
  slots_run : int;
  informed : bool array;
  informed_count : int;
  parent : int option array;
  informed_at : int option array;
  informed_label : int option array;
  logs : slot_log array array option;
  counters : Trace.Counters.t;
  raw_rounds : int;
  failed_sessions : int;
}

(* Mutable protocol state shared by the engine-backed and emulation-backed
   runners. *)
(* Shard safety (for the {!Crn_radio.Runner.Soa} backend): [informed],
   [parent], [informed_at], [informed_label] and [current_label] are
   node-indexed and only ever written at the node's own index from the
   callback that owns it; [informed_count] is an [Atomic] bumped by
   fetch-and-add, whose total is shard-count independent because a node
   is informed at most once; each node draws labels from its own
   pre-split stream. Hence [run] passes [machine_parallel:true]. *)
type runtime = {
  rt_n : int;
  rt_source : int;
  informed : bool array;
  informed_count : int Atomic.t;
  parent : int option array;
  informed_at : int option array;
  informed_label : int option array;
  rt_logs : slot_log array array option;
  nodes : msg Engine.node array;
}

let build_protocol ?trace ~record ~source ~availability ~rng ~max_slots () =
  let n = Dynamic.num_nodes availability in
  let c = Dynamic.channels_per_node availability in
  if source < 0 || source >= n then invalid_arg "Cogcast.run: source out of range";
  (match trace with
  | Some tr ->
      let channels = Crn_channel.Assignment.num_channels (Dynamic.at availability 0) in
      Trace.record tr (Trace.Meta { n; channels; c; source });
      Trace.record tr (Trace.Phase { name = "cogcast" })
  | None -> ());
  let informed = Array.make n false in
  informed.(source) <- true;
  let informed_count = Atomic.make 1 in
  let parent = Array.make n None in
  let informed_at = Array.make n None in
  let informed_label = Array.make n None in
  let logs =
    if record then
      Some (Array.init n (fun _ -> Array.make max_slots { label = 0; event = Heard_silence }))
    else None
  in
  let node_rngs = Rng.split_n rng n in
  (* The label each node chose this slot, so feedback can be logged against
     it. *)
  let current_label = Array.make n 0 in
  let log v ~slot event =
    match logs with
    | Some table -> table.(v).(slot) <- { label = current_label.(v); event }
    | None -> ()
  in
  let decide v ~slot:_ =
    let label = Rng.int node_rngs.(v) c in
    current_label.(v) <- label;
    if informed.(v) then Action.broadcast ~label Init
    else Action.listen ~label
  in
  let feedback v ~slot fb =
    match fb with
    | Action.Won -> log v ~slot Sent_won
    | Action.Lost _ -> log v ~slot Sent_lost
    | Action.Heard { sender; msg = Init } ->
        (* A listener is uninformed by construction, so this is the first
           reception: record the tree edge. *)
        informed.(v) <- true;
        ignore (Atomic.fetch_and_add informed_count 1);
        parent.(v) <- Some sender;
        informed_at.(v) <- Some slot;
        informed_label.(v) <- Some current_label.(v);
        (match trace with
        | Some tr ->
            Trace.record tr
              (Trace.Informed
                 { slot; node = v; parent = sender; label = current_label.(v) })
        | None -> ());
        log v ~slot (Got_informed { parent = sender })
    | Action.Silence -> log v ~slot Heard_silence
    | Action.Jammed -> log v ~slot Was_jammed
    | Action.No_winner -> log v ~slot Session_failed
  in
  let nodes = Array.init n (fun v -> Engine.node ~id:v ~decide:(decide v) ~feedback:(feedback v)) in
  {
    rt_n = n;
    rt_source = source;
    informed;
    informed_count;
    parent;
    informed_at;
    informed_label;
    rt_logs = logs;
    nodes;
  }

let result_of_runtime rt (outcome : Runner.outcome) =
  {
    n = rt.rt_n;
    source = rt.rt_source;
    completed_at =
      (if Atomic.get rt.informed_count = rt.rt_n then
         Some outcome.Runner.slots_run
       else None);
    slots_run = outcome.Runner.slots_run;
    informed = rt.informed;
    informed_count = Atomic.get rt.informed_count;
    parent = rt.parent;
    informed_at = rt.informed_at;
    informed_label = rt.informed_label;
    logs = rt.rt_logs;
    counters = outcome.Runner.counters;
    raw_rounds = outcome.Runner.raw_rounds;
    failed_sessions = outcome.Runner.failed_sessions;
  }

let run ?pool ?jammer ?faults ?metrics ?trace ?backend ?(record = false)
    ?(stop_when_complete = true) ~source ~availability ~rng ~max_slots () =
  let rt = build_protocol ?trace ~record ~source ~availability ~rng ~max_slots () in
  let n = rt.rt_n in
  let stop =
    if stop_when_complete then
      Some (fun ~slot:_ -> Atomic.get rt.informed_count = n)
    else None
  in
  (* A one-node network is complete before the first slot. *)
  let max_slots =
    if stop_when_complete && Atomic.get rt.informed_count = n then 0
    else max_slots
  in
  let runner =
    Runner.make ?pool ~machine_parallel:true ?jammer ?faults ?metrics ?trace
      ?backend ~availability ~rng ()
  in
  let outcome = runner.Runner.run ?stop ~nodes:rt.nodes ~max_slots () in
  result_of_runtime rt outcome

let run_emulated ?(strategy = Crn_radio.Emulation.Decay) ?session_cap ?jammer
    ?faults ?metrics ?trace ?(record = false) ?(stop_when_complete = true)
    ~source ~availability ~rng ~max_slots () =
  let rt = build_protocol ?trace ~record ~source ~availability ~rng ~max_slots () in
  let n = rt.rt_n in
  let stop =
    if stop_when_complete then
      Some (fun ~slot:_ -> Atomic.get rt.informed_count = n)
    else None
  in
  let max_slots =
    if stop_when_complete && Atomic.get rt.informed_count = n then 0
    else max_slots
  in
  let runner =
    Runner.make ?jammer ?faults ?metrics ?trace
      ~backend:(Runner.Emulation { strategy; session_cap })
      ~availability ~rng ()
  in
  let outcome = runner.Runner.run ?stop ~nodes:rt.nodes ~max_slots () in
  (result_of_runtime rt outcome, Runner.emulation_outcome outcome)

let run_static ?pool ?jammer ?faults ?metrics ?trace ?backend ?record
    ?stop_when_complete ?budget_factor ~source ~assignment ~k ~rng () =
  let n = Crn_channel.Assignment.num_nodes assignment in
  let c = Crn_channel.Assignment.channels_per_node assignment in
  let max_slots = Complexity.cogcast_slots ?factor:budget_factor ~n ~c ~k () in
  run ?pool ?jammer ?faults ?metrics ?trace ?backend ?record
    ?stop_when_complete ~source
    ~availability:(Dynamic.static assignment) ~rng ~max_slots ()

let label_oracle ~seed ~n ~c ~node =
  (* Mirrors [run]: the run splits one child generator per node from the
     top-level rng before the engine consumes it, and each node draws one
     label per slot. *)
  let node_rngs = Rng.split_n (Rng.create seed) n in
  let stream = node_rngs.(node) in
  fun ~slot:_ -> Rng.int stream c
