(** COGCAST (§4) on the struct-of-arrays engine {!Crn_radio.Soa}.

    Drop-in alternative to {!Cogcast.run} for large [n]: the same protocol
    code, executed through the {!Crn_radio.Runner.Soa} backend so that one
    trial shards across OCaml domains. This module is a thin delegation —
    it owns no slot logic of its own — so behaviour (byte-equal traces,
    identical {!Cogcast.result} fields) matches {!Cogcast.run} by
    construction. Per-slot logs ([~record] in {!Cogcast.run}) are not
    exposed here — the [logs] field of the result is always [None]; use
    {!Cogcast.run} when COGCOMP needs the action history.

    Determinism: the per-node label streams are split off [rng] before the
    engine consumes it, exactly as {!Cogcast.run} does, and the engine's
    winner draws stay sequential on the shared stream, so the same seed
    yields the same distribution tree at any [shards] and as the classic
    engine. *)

val run :
  ?pool:Crn_exec.Pool.t ->
  ?shards:int ->
  ?dense_channel_limit:int ->
  ?jammer:Crn_radio.Jammer.t ->
  ?faults:Crn_radio.Faults.t ->
  ?metrics:Crn_radio.Metrics.t ->
  ?trace:Crn_radio.Trace.t ->
  ?stop_when_complete:bool ->
  source:int ->
  availability:Crn_channel.Dynamic.t ->
  rng:Crn_prng.Rng.t ->
  max_slots:int ->
  unit ->
  Cogcast.result
(** [run ~source ~availability ~rng ~max_slots ()] executes COGCAST from
    [source] on {!Crn_radio.Soa.run}. [shards] (default 1) splits each
    slot's per-node work across that many domain-parallel ranges — see
    {!Crn_radio.Soa.run} for the pool/shards/limit semantics. Stops as
    soon as every node is informed unless [stop_when_complete:false]. *)

val run_static :
  ?pool:Crn_exec.Pool.t ->
  ?shards:int ->
  ?dense_channel_limit:int ->
  ?jammer:Crn_radio.Jammer.t ->
  ?faults:Crn_radio.Faults.t ->
  ?metrics:Crn_radio.Metrics.t ->
  ?trace:Crn_radio.Trace.t ->
  ?stop_when_complete:bool ->
  ?budget_factor:float ->
  source:int ->
  assignment:Crn_channel.Assignment.t ->
  k:int ->
  rng:Crn_prng.Rng.t ->
  unit ->
  Cogcast.result
(** Static-assignment convenience mirroring {!Cogcast.run_static}: the
    slot budget is {!Complexity.cogcast_slots} for the instance. *)
