(* COGCAST on the struct-of-arrays engine.

   Historically this module carried its own flat-state copy of the COGCAST
   slot logic (an informed byte per node, hand-written range callbacks).
   Since {!Crn_radio.Soa_adapter} bridges any machine onto the SoA engine
   and {!Cogcast.run} declares its state shard-safe, the module is now a
   thin instantiation: the same protocol code as {!Cogcast.run}, executed
   through the {!Crn_radio.Runner.Soa} backend. Byte-equal traces and
   identical results follow by construction — there is no second slot loop
   to keep in sync — and the differential tests in [test/test_soa.ml]
   still pin SoA-vs-Engine equality end to end. *)

module Runner = Crn_radio.Runner

let run ?pool ?(shards = 1) ?dense_channel_limit ?jammer ?faults ?metrics
    ?trace ?stop_when_complete ~source ~availability ~rng ~max_slots () =
  Cogcast.run ?pool ?jammer ?faults ?metrics ?trace ?stop_when_complete
    ~backend:(Runner.Soa { shards; dense_channel_limit })
    ~source ~availability ~rng ~max_slots ()

let run_static ?pool ?(shards = 1) ?dense_channel_limit ?jammer ?faults
    ?metrics ?trace ?stop_when_complete ?budget_factor ~source ~assignment ~k
    ~rng () =
  Cogcast.run_static ?pool ?jammer ?faults ?metrics ?trace ?stop_when_complete
    ?budget_factor
    ~backend:(Runner.Soa { shards; dense_channel_limit })
    ~source ~assignment ~k ~rng ()
