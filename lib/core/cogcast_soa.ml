(* COGCAST on the struct-of-arrays engine.

   Behaviourally identical to {!Cogcast.run} — same per-node RNG
   discipline ([Rng.split_n] before the engine touches the shared stream,
   one label draw per awake node per slot), same trace preamble and
   [Informed] edges — but the protocol state is flat (an informed byte per
   node, an atomic informed counter) and decide/feedback are range
   callbacks, so one trial scales across domains via {!Crn_radio.Soa}.
   The differential tests hold the two implementations to byte-equal
   traces and identical results.

   Shard safety: [informed]/[parent]/[informed_at]/[informed_label] are
   node-indexed and only ever written at the node's own index from the
   feedback range that owns it; [informed_count] is an [Atomic] bumped by
   fetch-and-add, whose total is shard-count independent because a node is
   informed at most once. *)

module Rng = Crn_prng.Rng
module Dynamic = Crn_channel.Dynamic
module Soa = Crn_radio.Soa
module Trace = Crn_radio.Trace

let run ?pool ?shards ?dense_channel_limit ?jammer ?faults ?metrics ?trace
    ?(stop_when_complete = true) ~source ~availability ~rng ~max_slots () =
  let n = Dynamic.num_nodes availability in
  let c = Dynamic.channels_per_node availability in
  if source < 0 || source >= n then
    invalid_arg "Cogcast_soa.run: source out of range";
  (match trace with
  | Some tr ->
      let channels =
        Crn_channel.Assignment.num_channels (Dynamic.at availability 0)
      in
      Trace.record tr (Trace.Meta { n; channels; c; source });
      Trace.record tr (Trace.Phase { name = "cogcast" })
  | None -> ());
  let informed = Bytes.make n '\000' in
  Bytes.set informed source '\001';
  let informed_count = Atomic.make 1 in
  let parent = Array.make n None in
  let informed_at = Array.make n None in
  let informed_label = Array.make n None in
  (* Split per-node streams off [rng] before the engine consumes it for
     winner draws — the same order as {!Cogcast.build_protocol}, which is
     what makes the two implementations byte-equal. *)
  let node_rngs = Rng.split_n rng n in
  let decide t ~slot:_ ~lo ~hi =
    for v = lo to hi - 1 do
      if not (Soa.is_down t v) then begin
        let label = Rng.int node_rngs.(v) c in
        if Bytes.unsafe_get informed v = '\001' then
          Soa.set_broadcast t v ~label ~msg:0
        else Soa.set_listen t v ~label
      end
    done
  in
  let feedback t ~slot ~lo ~hi =
    for v = lo to hi - 1 do
      (* Only listeners hear, and only uninformed nodes listen, so a heard
         node is informed for the first time — record the tree edge. *)
      if Soa.heard t v then begin
        Bytes.unsafe_set informed v '\001';
        ignore (Atomic.fetch_and_add informed_count 1);
        let sender = Soa.sender t v in
        parent.(v) <- Some sender;
        informed_at.(v) <- Some slot;
        informed_label.(v) <- Some t.Soa.label.(v);
        match trace with
        | Some tr ->
            Trace.record tr
              (Trace.Informed
                 { slot; node = v; parent = sender; label = t.Soa.label.(v) })
        | None -> ()
      end
    done
  in
  let protocol = { Soa.decide; feedback } in
  let stop =
    if stop_when_complete then
      Some (fun ~slot:_ -> Atomic.get informed_count = n)
    else None
  in
  (* A one-node network is complete before the first slot. *)
  let max_slots = if stop_when_complete && n = 1 then 0 else max_slots in
  let outcome =
    Soa.run ?pool ?shards ?dense_channel_limit ?jammer ?faults ?metrics ?trace
      ?stop ~availability ~rng ~protocol ~max_slots ()
  in
  let informed_count = Atomic.get informed_count in
  {
    Cogcast.n;
    source;
    completed_at =
      (if informed_count = n then Some outcome.Soa.slots_run else None);
    slots_run = outcome.Soa.slots_run;
    informed = Array.init n (fun v -> Bytes.get informed v = '\001');
    informed_count;
    parent;
    informed_at;
    informed_label;
    logs = None;
    counters = outcome.Soa.counters;
    raw_rounds = 0;
    failed_sessions = 0;
  }

let run_static ?pool ?shards ?dense_channel_limit ?jammer ?faults ?metrics
    ?trace ?stop_when_complete ?budget_factor ~source ~assignment ~k ~rng () =
  let n = Crn_channel.Assignment.num_nodes assignment in
  let c = Crn_channel.Assignment.channels_per_node assignment in
  let max_slots = Complexity.cogcast_slots ?factor:budget_factor ~n ~c ~k () in
  run ?pool ?shards ?dense_channel_limit ?jammer ?faults ?metrics ?trace
    ?stop_when_complete ~source
    ~availability:(Dynamic.static assignment)
    ~rng ~max_slots ()
