module Rng = Crn_prng.Rng
module Assignment = Crn_channel.Assignment
module Dynamic = Crn_channel.Dynamic
module Action = Crn_radio.Action
module Engine = Crn_radio.Engine
module Trace = Crn_radio.Trace
module Backoff = Crn_radio.Backoff

type 'a result = {
  complete : bool;
  root_value : 'a;
  coverage : int;
  lost : int list;
  reelections : int;
  retries : int;
  phase1_slots : int;
  phase2_slots : int;
  phase3_slots : int;
  phase4_steps : int;
  phase4_slots : int;
  total_slots : int;
  tree : Disttree.t;
  mediators : int list;
  terminated : bool array;
}

(* The robust protocol must behave *bit-identically* to plain COGCOMP on
   fault-free inputs (same root value, same per-phase slot counts, same RNG
   stream). The design rule that makes this hold by construction: every
   robust deviation — watchdog write-offs, mediator re-election, send
   backoff, retry abandonment — is gated behind a counter that (a) only
   advances on observations, and (b) is only armed when a fault schedule or
   jammer is actually installed. With neither installed, every decision the
   state machine makes is the plain protocol's decision. *)

(* The retry backoff cap is deliberately small: contention is resolved by
   the one-winner engine, so backoff here only spaces out retries against a
   dead receiver. It must stay below [timeout], or a backed-off but live
   sender looks dead to the mediator's head-skip watchdog. *)
let backoff_cap = 4
let grace_slots = 96

(* Phases 2-4 execute on the shared backend-selecting runner; the robust
   variant only ever uses the abstract engine backend (the raw radio has no
   fault model to be robust against). *)
module Runner = Crn_radio.Runner

let run_slots runner ?stop ~nodes ~max_slots () =
  (runner.Runner.run ?stop ~nodes ~max_slots ()).Runner.slots_run

(* ------------------------------------------------------------------ *)
(* Phase 2 with a watchdog: the phase keeps running past the plain n
   slots (up to a bounded budget) while some participant has not yet won
   its roster slot; a participant that exhausts the budget is written
   off — absent from every roster, it is excluded from phase 4.         *)
(* ------------------------------------------------------------------ *)

type phase2_msg = { p2_id : int; p2_r : int }

type phase2_info = {
  p2_r : int;  (* own cluster slot; -1 for non-participants *)
  cluster_size : int;
  wrote_off : bool;
  (* Succession order for the channel's mediatorship: the elected mediator
     (smallest id in the channel's latest cluster) first, then the
     remaining roster ids ascending — "the next-smallest live id". *)
  candidates : int array;
  my_rank : int;  (* index of this node in its own [candidates]; -1 if none *)
  (* Every participant's copy of the channel's clusters as
     (r, undelivered count), descending r — any candidate may have to
     mediate, so everyone tracks what the plain protocol computes only for
     the mediator. *)
  clusters_all : (int * int) list;
}

let run_phase2 ~(cast : Cogcast.result) ~watchdog_retries ~runner =
  let n = cast.Cogcast.n in
  let participant =
    Array.init n (fun v ->
        if v = cast.Cogcast.source then None
        else
          match (cast.Cogcast.informed_at.(v), cast.Cogcast.informed_label.(v)) with
          | Some r, Some label -> Some (r, label)
          | _ -> None)
  in
  let sent_ok = Array.make n false in
  let rosters = Array.make n [] in
  let pending = ref 0 in
  Array.iteri
    (fun v p ->
      match p with
      | Some (r, _) ->
          rosters.(v) <- [ (v, r) ];
          incr pending
      | None -> ())
    participant;
  let decide v ~slot:_ =
    match participant.(v) with
    | None -> Action.listen ~label:0
    | Some (r, label) ->
        if sent_ok.(v) then Action.listen ~label
        else Action.broadcast ~label { p2_id = v; p2_r = r }
  in
  let note v msg = rosters.(v) <- (msg.p2_id, msg.p2_r) :: rosters.(v) in
  let feedback v ~slot:_ = function
    | Action.Won ->
        sent_ok.(v) <- true;
        decr pending
    | Action.Lost { msg; _ } -> note v msg
    | Action.Heard { msg; _ } -> if participant.(v) <> None then note v msg
    | Action.Silence | Action.Jammed | Action.No_winner -> ()
  in
  let nodes =
    Array.init n (fun v -> Engine.node ~id:v ~decide:(decide v) ~feedback:(feedback v))
  in
  (* Fault-free every participant wins within the first n slots (one winner
     per channel per slot), so the stop fires at exactly slot n-1 and the
     phase is plain COGCOMP's fixed n slots. Under faults the phase extends,
     one retry round of n slots at a time, until everyone won or the budget
     is gone. *)
  let stop ~slot = slot >= n - 1 && !pending = 0 in
  let max_slots = n * (1 + max 0 watchdog_retries) in
  let slots_run = run_slots runner ~stop ~nodes ~max_slots () in
  let info =
    Array.init n (fun v ->
        match participant.(v) with
        | None ->
            {
              p2_r = -1;
              cluster_size = 0;
              wrote_off = false;
              candidates = [||];
              my_rank = -1;
              clusters_all = [];
            }
        | Some (r, _) ->
            let roster = rosters.(v) in
            let cluster_size =
              List.length (List.filter (fun (_, r') -> r' = r) roster)
            in
            let r_max = List.fold_left (fun acc (_, r') -> max acc r') (-1) roster in
            let latest_ids =
              List.filter_map
                (fun (id, r') -> if r' = r_max then Some id else None)
                roster
            in
            let mediator_id = List.fold_left min max_int latest_ids in
            let rest =
              List.sort compare
                (List.filter_map
                   (fun (id, _) -> if id <> mediator_id then Some id else None)
                   roster)
            in
            let candidates = Array.of_list (mediator_id :: rest) in
            let my_rank =
              let rank = ref (-1) in
              Array.iteri (fun i id -> if id = v then rank := i) candidates;
              !rank
            in
            let by_r : (int, int) Hashtbl.t = Hashtbl.create 8 in
            List.iter
              (fun (_, r') ->
                Hashtbl.replace by_r r'
                  (1 + Option.value ~default:0 (Hashtbl.find_opt by_r r')))
              roster;
            let clusters_all =
              Hashtbl.fold (fun r' count acc -> (r', count) :: acc) by_r []
              |> List.sort (fun (a, _) (b, _) -> compare b a)
            in
            {
              p2_r = r;
              cluster_size;
              wrote_off = not sent_ok.(v);
              candidates;
              my_rank;
              clusters_all;
            })
  in
  (info, slots_run)

(* ------------------------------------------------------------------ *)
(* Phase 3: identical to the plain rewind — robustness needs no change
   here. A node that was down in a mirrored slot simply misses a cluster
   size; the phase-4 watchdogs absorb the resulting disagreement.       *)
(* ------------------------------------------------------------------ *)

let run_phase3 ~(cast : Cogcast.result) ~(info : phase2_info array) ~runner =
  let n = cast.Cogcast.n in
  let logs =
    match cast.Cogcast.logs with
    | Some logs -> logs
    | None -> invalid_arg "Cogcomp_robust: phase 1 must be run with recording on"
  in
  let l = cast.Cogcast.slots_run in
  let clusters_collected = Array.make n [] in
  let decide v ~slot =
    let mirrored = l - 1 - slot in
    let entry = logs.(v).(mirrored) in
    match entry.Cogcast.event with
    | Cogcast.Got_informed _ ->
        Action.broadcast ~label:entry.Cogcast.label info.(v).cluster_size
    | Cogcast.Sent_won | Cogcast.Sent_lost | Cogcast.Heard_silence | Cogcast.Was_jammed
    | Cogcast.Session_failed ->
        Action.listen ~label:entry.Cogcast.label
  in
  let feedback v ~slot = function
    | Action.Heard { msg = size; _ } ->
        let mirrored = l - 1 - slot in
        let entry = logs.(v).(mirrored) in
        (match entry.Cogcast.event with
        | Cogcast.Sent_won ->
            clusters_collected.(v) <-
              (mirrored, entry.Cogcast.label, size) :: clusters_collected.(v)
        | Cogcast.Sent_lost | Cogcast.Got_informed _ | Cogcast.Heard_silence
        | Cogcast.Was_jammed | Cogcast.Session_failed ->
            ())
    | Action.Won | Action.Lost _ | Action.Silence | Action.Jammed
    | Action.No_winner ->
        ()
  in
  let nodes =
    Array.init n (fun v -> Engine.node ~id:v ~decide:(decide v) ~feedback:(feedback v))
  in
  let slots_run = run_slots runner ~nodes ~max_slots:l () in
  let clusters =
    Array.map
      (fun cs -> List.sort (fun (a, _, _) (b, _, _) -> compare b a) cs)
      clusters_collected
  in
  (clusters, slots_run)

(* ------------------------------------------------------------------ *)
(* Phase 4: mediated drain with acks, bounded retries, re-election.     *)
(* ------------------------------------------------------------------ *)

type 'a phase4_msg =
  | Announce of int
  | Values of { val_r : int; val_id : int; payload : 'a }
  | Echo of int

type role = Collecting | Sending | Mediating | Done

type 'a node_state = {
  mutable role : role;
  mutable acc : 'a;
  mutable to_collect : (int * int * int) list;  (* (r, label, size) desc r *)
  mutable remaining : int;
  (* (sender id, fresh, echo label, cluster slot): fresh deliveries fold and
     count; stale ones are re-acks of a value already folded — the sender
     missed its first echo. The label is captured at fold time so a re-ack
     goes out on the cluster's own channel even if the receiver has since
     moved on. *)
  mutable pending_echo : (int * bool * int * int) option;
  seen : (int, unit) Hashtbl.t;  (* sender ids already folded, the dedup *)
  own_r : int;
  own_label : int;
  mutable announce_matches : bool;
  mutable sent_done : bool;
  (* Mediation: [candidates.(med_idx)] is whom this node currently believes
     mediates its channel; the node itself mediates when that is its own
     rank. *)
  candidates : int array;
  my_rank : int;
  mutable med_idx : int;
  mutable was_active_med : bool;
  med_label : int;
  mutable chan_clusters : (int * int) list;  (* (r, undelivered), desc r *)
  (* Watchdog counters — armed only on faulty runs. *)
  mutable attempts : int;  (* sends that observed a silent echo slot *)
  mutable next_send_step : int;  (* backoff gate *)
  mutable sent_this_step : bool;
  mutable heard_announce_ever : bool;
  mutable announce_silence : int;  (* steps, after the channel went live *)
  mutable waiting_steps : int;  (* steps with no announce at all *)
  mutable unmediated : bool;  (* candidate list exhausted: free-for-all *)
  mutable recv_active : bool;  (* any activity heard this step *)
  mutable recv_silence : int;
  mutable med_announced : bool;
  mutable med_echo_seen : bool;
  mutable med_silence : int;  (* announced steps that drew no echo *)
  mutable last_seen_slot : int;  (* wake-up gap detection *)
}

let run_phase4 (type a) ?trace ~faulty ~timeout ~max_retries ~patience
    ~(monoid : a Aggregate.monoid) ~(values : a array) ~(cast : Cogcast.result)
    ~(info : phase2_info array) ~(clusters : (int * int * int) list array) ~runner
    ~max_steps () =
  let n = cast.Cogcast.n in
  let source = cast.Cogcast.source in
  let emit ev = match trace with Some tr -> Trace.record tr ev | None -> () in
  let traced = trace <> None in
  let reelections = ref 0 and retries = ref 0 in
  (* delivered_to.(v) = the receiver that freshly folded v's value; the
     ground truth for coverage accounting. *)
  let delivered_to = Array.make n (-1) in
  let last_awake = Array.make n (-1) in
  let states =
    Array.init n (fun v ->
        let informed = cast.Cogcast.informed.(v) in
        let inf = info.(v) in
        let own_r = Option.value ~default:(-1) cast.Cogcast.informed_at.(v) in
        let own_label = Option.value ~default:0 cast.Cogcast.informed_label.(v) in
        let to_collect = if inf.wrote_off then [] else clusters.(v) in
        let role =
          if inf.wrote_off then Done
          else if (not informed) && v <> source then Done
          else if to_collect <> [] then Collecting
          else if v = source then Done
          else Sending
        in
        let remaining =
          match to_collect with (_, _, size) :: _ -> size | [] -> 0
        in
        {
          role;
          acc = values.(v);
          to_collect;
          remaining;
          pending_echo = None;
          seen = Hashtbl.create 8;
          own_r;
          own_label;
          announce_matches = false;
          sent_done = false;
          candidates = inf.candidates;
          my_rank = inf.my_rank;
          med_idx = 0;
          was_active_med = inf.my_rank = 0;
          med_label = own_label;
          chan_clusters = inf.clusters_all;
          attempts = 0;
          next_send_step = 0;
          sent_this_step = false;
          heard_announce_ever = false;
          announce_silence = 0;
          waiting_steps = 0;
          unmediated = false;
          recv_active = false;
          recv_silence = 0;
          med_announced = false;
          med_echo_seen = false;
          med_silence = 0;
          last_seen_slot = -1;
        })
  in
  let done_count =
    ref (Array.fold_left (fun acc s -> if s.role = Done then acc + 1 else acc) 0 states)
  in
  let retire ~slot v st =
    if st.role <> Done then begin
      st.role <- Done;
      incr done_count;
      if traced then emit (Trace.Retired { slot; node = v })
    end
  in
  (* Whether v currently believes it mediates its channel and may act on it.
     Rank 0 with idx 0 is exactly the plain protocol's elected mediator. *)
  let active_mediator st =
    st.my_rank >= 0
    && st.med_idx < Array.length st.candidates
    && st.med_idx = st.my_rank
    && st.role <> Collecting && st.role <> Done
  in
  let finish_sending ~slot v st =
    st.sent_done <- true;
    if active_mediator st && st.chan_clusters <> [] then st.role <- Mediating
    else retire ~slot v st
  in
  let advance_collecting ~slot v st =
    match st.to_collect with
    | [] -> ()
    | _ :: rest ->
        st.to_collect <- rest;
        st.recv_silence <- 0;
        st.pending_echo <- None;
        (match rest with
        | (_, _, size) :: _ -> st.remaining <- size
        | [] -> if v = source then retire ~slot v st else st.role <- Sending)
  in
  let mediator_note_echo ~slot v st =
    match st.chan_clusters with
    | [] -> ()
    | (r, count) :: rest ->
        let count = count - 1 in
        if count <= 0 then begin
          st.chan_clusters <- rest;
          if rest = [] && st.role = Mediating then retire ~slot v st
        end
        else st.chan_clusters <- (r, count) :: rest
  in
  (* Re-election: the channel went live, then the mediator fell silent for
     [timeout] consecutive steps — point at the next candidate. A dead or
     retired successor just provokes the next timeout; past the end of the
     list the drain degenerates to unmediated free-for-all (the
     [mediated:false] ablation), which retries can still drive home. *)
  let advance_mediator st =
    st.announce_silence <- 0;
    if st.med_idx < Array.length st.candidates then st.med_idx <- st.med_idx + 1;
    if st.med_idx >= Array.length st.candidates then st.unmediated <- true
  in
  (* Start-of-step bookkeeping, run at the announce-slot decide. All of it
     is gated on [faulty]: on a fault-free run none of these counters can
     change any decision. *)
  let step_begin ~slot ~step v st =
    if faulty then begin
      (* Crash/restart: a node that detects it missed slots rejoins with its
         transient per-step state reset (durable state — accumulator, dedup
         set, cluster lists — survives; the dedup makes that safe). *)
      if st.last_seen_slot >= 0 && slot > st.last_seen_slot + 1 then begin
        st.announce_matches <- false;
        st.sent_this_step <- false;
        st.pending_echo <- None;
        st.recv_active <- false;
        st.med_announced <- false;
        st.med_echo_seen <- false;
        st.heard_announce_ever <- false;
        st.waiting_steps <- 0;
        st.announce_silence <- 0
      end;
      (match st.role with
      | Collecting ->
          (* Receiver watchdog: a head cluster whose channel shows no
             activity at all for a patience window is written off — its
             members crashed or were written off in phase 2. The window is
             a little longer than the senders' bootstrap patience, so
             stranded senders go unmediated before their receiver gives up
             on them. *)
          if st.recv_active then st.recv_silence <- 0
          else begin
            st.recv_silence <- st.recv_silence + 1;
            if st.recv_silence >= patience + 8 then advance_collecting ~slot v st
          end;
          st.recv_active <- false
      | Sending ->
          (* Bounded retry: past the retry budget the sender abandons — its
             subtree is recorded as lost instead of stalling the run. *)
          if st.attempts > max_retries then retire ~slot v st
      | Mediating ->
          (* A mediator whose last cluster was dropped by the head-skip
             below (rather than drained by an echo) has nothing left to
             announce and no echo will ever retire it. *)
          if st.chan_clusters = [] then retire ~slot v st
      | Done -> ());
      (* Mediator head-skip: an announced cluster that draws no echo for
         [timeout] consecutive steps has no live members left — drop it. *)
      if st.med_announced then begin
        if st.med_echo_seen then st.med_silence <- 0
        else begin
          st.med_silence <- st.med_silence + 1;
          if st.med_silence >= timeout then begin
            (match st.chan_clusters with
            | _ :: rest -> st.chan_clusters <- rest
            | [] -> ());
            st.med_silence <- 0
          end
        end
      end;
      st.med_announced <- false;
      st.med_echo_seen <- false;
      st.sent_this_step <- false;
      (* Accession: this node just became its channel's acting mediator. *)
      if active_mediator st && not st.was_active_med then begin
        st.was_active_med <- true;
        incr reelections;
        if traced then emit (Trace.Mediator { node = v })
      end
    end;
    ignore step
  in
  let decide v ~slot =
    let st = states.(v) in
    last_awake.(v) <- slot;
    let pos = slot mod 3 in
    let step = slot / 3 in
    if pos = 0 then step_begin ~slot ~step v st;
    st.last_seen_slot <- slot;
    match pos with
    | 0 -> (
        st.announce_matches <- st.unmediated && st.role = Sending;
        if active_mediator st then
          match st.chan_clusters with
          | (r, _) :: _ ->
              if st.role = Sending then st.announce_matches <- r = st.own_r;
              if faulty then st.med_announced <- true;
              Action.broadcast ~label:st.med_label (Announce r)
          | [] -> Action.listen ~label:st.med_label
        else
          match st.role with
          | Collecting -> (
              match st.to_collect with
              | (_, label, _) :: _ -> Action.listen ~label
              | [] -> Action.listen ~label:0)
          | Sending -> Action.listen ~label:st.own_label
          | Mediating | Done -> Action.listen ~label:0)
    | 1 -> (
        match st.role with
        | Sending when st.announce_matches ->
            if traced then emit (Trace.Sent_value { slot; node = v; r = st.own_r });
            if faulty then begin
              st.sent_this_step <- true;
              if st.attempts > 0 then incr retries
            end;
            Action.broadcast ~label:st.own_label
              (Values { val_r = st.own_r; val_id = v; payload = st.acc })
        | Sending -> Action.listen ~label:st.own_label
        | Collecting -> (
            match st.to_collect with
            | (_, label, _) :: _ -> Action.listen ~label
            | [] -> Action.listen ~label:0)
        | Mediating -> Action.listen ~label:st.med_label
        | Done -> Action.listen ~label:0)
    | _ -> (
        match st.pending_echo with
        | Some (id, _, label, _) -> Action.broadcast ~label (Echo id)
        | None -> (
            match st.role with
            | Sending -> Action.listen ~label:st.own_label
            | Mediating -> Action.listen ~label:st.med_label
            | Collecting -> (
                match st.to_collect with
                | (_, label, _) :: _ -> Action.listen ~label
                | [] -> Action.listen ~label:0)
            | Done -> Action.listen ~label:0))
  in
  let feedback v ~slot fb =
    let st = states.(v) in
    let pos = slot mod 3 in
    let step = slot / 3 in
    match (pos, fb) with
    | 0, Action.Heard { msg = Announce r; _ } ->
        if faulty then begin
          st.heard_announce_ever <- true;
          st.announce_silence <- 0;
          st.waiting_steps <- 0;
          if st.role = Collecting then st.recv_active <- true
        end;
        if st.role = Sending then begin
          (* Clusters drain in descending r, so an announce for a smaller r
             means this sender's turn was skipped over (its ack was lost, or
             the mediator head-skipped its cluster while it was backing
             off). Self-serve: send anyway, paced by the backoff; the
             receiver either still wants the value, re-acks a value it
             already folded, or the retry budget runs out and the sender
             retires. *)
          let passed_over = faulty && r < st.own_r in
          st.announce_matches <- r = st.own_r || passed_over;
          (* Backoff: a retrying sender sits out until its scheduled step. *)
          if faulty && st.attempts > 0 && step < st.next_send_step then
            st.announce_matches <- false
        end
    | 0, Action.Silence when faulty && st.role = Sending ->
        if st.heard_announce_ever then begin
          st.announce_silence <- st.announce_silence + 1;
          if st.announce_silence >= timeout then advance_mediator st
        end
        else begin
          st.waiting_steps <- st.waiting_steps + 1;
          if st.waiting_steps >= patience then st.unmediated <- true
        end
    | 1, Action.Heard { msg = Values { val_r; val_id; payload }; _ } ->
        if faulty && st.role = Collecting then st.recv_active <- true;
        if st.role = Collecting then begin
          match st.to_collect with
          | (r, label, _) :: _ when r = val_r ->
              if Hashtbl.mem st.seen val_id then
                (* Already folded: the sender missed our first echo and
                   retried. Re-ack without counting it again. *)
                st.pending_echo <- Some (val_id, false, label, r)
              else begin
                Hashtbl.replace st.seen val_id ();
                st.acc <- monoid.Aggregate.combine st.acc payload;
                (* The fold is the semantic delivery: record it now, so
                   coverage agrees with the accumulator even if the ack is
                   lost and the commit below never happens. *)
                if delivered_to.(val_id) < 0 then delivered_to.(val_id) <- v;
                st.pending_echo <- Some (val_id, true, label, r)
              end
          | _ -> ()
        end
    | 2, (Action.Won | Action.Lost _ | Action.Jammed) when st.pending_echo <> None
      ->
        (* The echo went out (Won is guaranteed fault-free), or was absorbed
           by a jammer — either way the fold already happened, so commit the
           delivery; a sender that missed the ack retries and gets a stale
           re-ack. *)
        (match st.pending_echo with
        | Some (id, fresh, _, r) ->
            st.pending_echo <- None;
            if faulty then st.recv_active <- true;
            if fresh then begin
              if traced then
                emit (Trace.Value_delivered { slot; sender = id; receiver = v; r });
              st.remaining <- st.remaining - 1;
              if st.remaining <= 0 then advance_collecting ~slot v st
            end
        | None -> ())
    | 2, Action.Heard { msg = Echo id; _ } -> (
        if faulty then begin
          st.med_echo_seen <- true;
          st.sent_this_step <- false;
          if st.role = Collecting then st.recv_active <- true
        end;
        match st.role with
        | Sending ->
            mediator_note_echo ~slot v st;
            if id = v then finish_sending ~slot v st
        | Mediating -> mediator_note_echo ~slot v st
        | Collecting | Done -> ())
    | 2, (Action.Silence | Action.Jammed) when faulty && st.sent_this_step ->
        (* Sent, and nobody acked anything this step: schedule the next
           attempt with exponential backoff. *)
        st.sent_this_step <- false;
        st.attempts <- st.attempts + 1;
        st.next_send_step <-
          step + 1 + Backoff.retry_delay ~attempt:st.attempts ~cap:backoff_cap
    | _ -> ()
  in
  let nodes =
    Array.init n (fun v -> Engine.node ~id:v ~decide:(decide v) ~feedback:(feedback v))
  in
  (* Stop when everyone is done — or, on faulty runs, when every node that
     is not done has been absent for [grace_slots] straight slots (it is
     crashed or churned out; nothing further can drain). *)
  let stop ~slot =
    slot mod 3 = 2
    && (!done_count = n
       || faulty
          && Array.for_all
               (fun v ->
                 states.(v).role = Done || slot - last_awake.(v) > grace_slots)
               (Array.init n (fun v -> v)))
  in
  let max_slots = if !done_count = n then 0 else 3 * max_steps in
  let slots_run = run_slots runner ~stop ~nodes ~max_slots () in
  (* Coverage: v's value reached the source iff its chain of fresh
     deliveries does. Values folded into a node that was then lost are lost
     with it. *)
  let covered = Array.make n false in
  covered.(source) <- true;
  for v = 0 to n - 1 do
    let rec walk u steps =
      if u = source then true
      else if steps > n || u < 0 then false
      else walk delivered_to.(u) (steps + 1)
    in
    if walk v 0 then covered.(v) <- true
  done;
  let root_acc = states.(source).acc in
  let terminated = Array.map (fun st -> st.role = Done) states in
  (root_acc, terminated, covered, slots_run, !reelections, !retries)

(* ------------------------------------------------------------------ *)
(* The full protocol.                                                  *)
(* ------------------------------------------------------------------ *)

let run ?jammer ?faults ?budget_factor ?max_phase4_steps ?(watchdog_retries = 2)
    ?(timeout = 6) ?(max_retries = 8) ?trace ~monoid ~values ~source ~assignment ~k
    ~rng () =
  let n = Assignment.num_nodes assignment in
  if Array.length values <> n then
    invalid_arg "Cogcomp_robust.run: values length mismatch";
  if timeout < 1 then invalid_arg "Cogcomp_robust.run: timeout must be >= 1";
  if max_retries < 0 then invalid_arg "Cogcomp_robust.run: max_retries must be >= 0";
  let faulty = jammer <> None || faults <> None in
  let availability = Dynamic.static assignment in
  let mark name =
    match trace with
    | Some tr -> Trace.record tr (Trace.Phase { name })
    | None -> ()
  in
  let make_runner rng = Runner.make ?jammer ?faults ?trace ~availability ~rng () in
  let cast =
    Cogcast.run_static ?jammer ?faults ?budget_factor ?trace ~record:true
      ~stop_when_complete:false ~source ~assignment ~k ~rng:(Rng.split rng) ()
  in
  let tree = Disttree.of_result cast in
  mark "cogcomp-phase2";
  let info, phase2_slots =
    run_phase2 ~cast
      ~watchdog_retries:(if faulty then watchdog_retries else 0)
      ~runner:(make_runner (Rng.split rng))
  in
  (match trace with
  | Some tr ->
      Array.iteri
        (fun v (inf : phase2_info) ->
          if inf.my_rank = 0 then Trace.record tr (Trace.Mediator { node = v }))
        info
  | None -> ());
  mark "cogcomp-phase3";
  let clusters, phase3_slots =
    run_phase3 ~cast ~info ~runner:(make_runner (Rng.split rng))
  in
  mark "cogcomp-phase4";
  let max_steps =
    match max_phase4_steps with
    | Some s -> s
    | None -> if faulty then (48 * n) + 256 else (12 * n) + 64
  in
  let patience = n + 16 in
  let root_acc, terminated, covered, phase4_slots, reelections, retries =
    run_phase4 ?trace ~faulty ~timeout ~max_retries ~patience ~monoid ~values ~cast
      ~info ~clusters
      ~runner:(make_runner (Rng.split rng))
      ~max_steps ()
  in
  let mediators =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun v -> if info.(v).my_rank = 0 then Some v else None)
            (Seq.init n (fun v -> v))))
  in
  let coverage = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 covered in
  let lost =
    List.filter (fun v -> not covered.(v)) (List.init n (fun v -> v))
  in
  let complete =
    cast.Cogcast.informed_count = n
    && Array.for_all (fun b -> b) terminated
    && coverage = n
  in
  if complete then mark "cogcomp-done";
  {
    complete;
    root_value = root_acc;
    coverage;
    lost;
    reelections;
    retries;
    phase1_slots = cast.Cogcast.slots_run;
    phase2_slots;
    phase3_slots;
    phase4_steps = (phase4_slots + 2) / 3;
    phase4_slots;
    total_slots = cast.Cogcast.slots_run + phase2_slots + phase3_slots + phase4_slots;
    tree;
    mediators;
    terminated;
  }
