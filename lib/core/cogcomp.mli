(** COGCOMP (§5): data aggregation in
    [O((c/k)·max{1, c/n}·lg n + n)] slots w.h.p. (Theorem 10).

    Every node holds a value; the source must learn the monoid fold of all
    values. The protocol runs four globally synchronized phases:

    {ol
    {- {b Phase 1} — COGCAST from the source with full action logging. The
       first informer of each node becomes its parent, building the
       distribution tree (Lemma 5).}
    {- {b Phase 2} — exactly [n] slots. Every informed node camps on the
       channel it was informed on and broadcasts [⟨id, r⟩] until it wins,
       then listens. Under the one-winner model each node on a channel wins
       exactly once, so everyone learns the full roster of its channel:
       cluster sizes (Lemma 7a) and the channel's unique mediator — the
       smallest id in the channel's latest cluster (Lemma 7b).}
    {- {b Phase 3} — a slot-by-slot time reversal of phase 1. Where a node's
       phase-1 broadcast won, it now listens; where it was first informed, it
       now broadcasts its cluster's size. Each informer thereby learns which
       clusters it created and their sizes (Lemma 9).}
    {- {b Phase 4} — steps of three slots. Receivers collect from their
       clusters in descending phase-1-slot order; per channel, the mediator
       announces which cluster may send (slot 1), one cluster member wins the
       send (slot 2), and the receiver echoes the delivered id (slot 3),
       retiring that sender. Aggregation drains in [O(n)] steps.}}

    The phases assume the static channel assignment of §2 (channels must
    keep their meaning across phases), hence the [Assignment.t] parameter
    rather than a dynamic availability — and, like the paper's protocol,
    fault-free execution: the phase-2 roster and phase-3 rewind arguments
    rely on every node acting in every slot. COGCAST alone carries the §7
    dynamic/fault tolerance. *)

type 'a result = {
  complete : bool;
      (** Phase 1 informed everyone and phase 4 drained every node. *)
  root_value : 'a option;
      (** The source's aggregate — [Some] iff [complete]. *)
  phase1_slots : int;
  phase2_slots : int;
  phase3_slots : int;
  phase4_steps : int;
  phase4_slots : int;
  total_slots : int;
  tree : Disttree.t;
  mediators : int list;  (** Elected mediators, ascending id. *)
  terminated : bool array;  (** Per-node phase-4 termination. *)
  max_payload : int;
      (** Largest payload (per [?measure]) carried by any phase-4 value
          message; [0] when no measure was supplied. *)
  total_payload : int;  (** Sum of measured payloads over all value sends. *)
}

val run_emulated :
  ?strategy:Crn_radio.Emulation.strategy ->
  ?session_cap:int ->
  ?jammer:Crn_radio.Jammer.t ->
  ?faults:Crn_radio.Faults.t ->
  ?budget_factor:float ->
  ?max_phase4_steps:int ->
  ?mediated:bool ->
  ?measure:('a -> int) ->
  ?trace:Crn_radio.Trace.t ->
  monoid:'a Aggregate.monoid ->
  values:'a array ->
  source:int ->
  assignment:Crn_channel.Assignment.t ->
  k:int ->
  rng:Crn_prng.Rng.t ->
  unit ->
  'a result * int
(** All four phases executed over the raw collision radio
    ({!Crn_radio.Emulation}): every abstract slot of every phase is realized
    by contention sessions — decay backoff by default, CSMA/CA with
    [~strategy:Csma] — so the complete aggregation stack runs without the
    §2 one-winner abstraction. Returns the result paired with the total raw
    rounds consumed across all phases. Correct for the same reason the
    abstract version is — the emulation preserves the one-winner semantics
    per slot w.h.p. (a session that does fail its cap surfaces as
    {!Crn_radio.Action.No_winner} to its broadcasters, and the phases
    degrade exactly as they would under a lost slot). [?jammer]/[?faults]
    compose at the abstract-slot level with the same caveats as {!run}. *)

val run :
  ?jammer:Crn_radio.Jammer.t ->
  ?faults:Crn_radio.Faults.t ->
  ?budget_factor:float ->
  ?max_phase4_steps:int ->
  ?mediated:bool ->
  ?measure:('a -> int) ->
  ?trace:Crn_radio.Trace.t ->
  monoid:'a Aggregate.monoid ->
  values:'a array ->
  source:int ->
  assignment:Crn_channel.Assignment.t ->
  k:int ->
  rng:Crn_prng.Rng.t ->
  unit ->
  'a result
(** [run ~monoid ~values ~source ~assignment ~k ~rng ()] aggregates
    [values.(v)] over all [v] to [source]. [values] must have one entry per
    node. [budget_factor] scales the phase-1 COGCAST budget
    ({!Complexity.cogcast_slots}); [max_phase4_steps] caps phase 4 (default
    [12·n + 64] steps, far above the [O(n)] the paper proves, so hitting it
    indicates a genuine failure and yields [complete = false]).

    [?jammer]/[?faults] thread adversaries through every phase's engine run
    — but the plain protocol makes {e no} attempt to survive them: a missed
    slot can corrupt rosters, mediator election or the drain, typically
    yielding [complete = false] (or, for aggressive schedules, a genuinely
    wrong partial fold). They exist so the chaos harness can measure that
    degradation; use {!Cogcomp_robust} for runs that should tolerate faults.

    With [?trace] supplied, the run streams a slot-level event log: the
    phase-1 COGCAST header and [Informed] tree edges, a
    {!Crn_radio.Trace.Phase} marker at each phase boundary (slot numbering
    restarts per phase), {!Crn_radio.Trace.Mediator} elections after phase
    2, the engine's per-slot events throughout, phase 4's
    [Sent_value]/[Value_delivered]/[Retired] drain events, and a final
    [Phase "cogcomp-done"] marker iff the run completed — the stream
    {!Crn_radio.Trace.Check} validates. *)
