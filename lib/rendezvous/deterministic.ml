module Assignment = Crn_channel.Assignment
module Dynamic = Crn_channel.Dynamic
module Action = Crn_radio.Action
module Engine = Crn_radio.Engine

type schedule = { schedule_name : string; channel_at : slot:int -> int }

let channel_of_schedule assignment ~node schedule ~slot =
  let channel = schedule.channel_at ~slot in
  match Assignment.local_of_global assignment ~node ~channel with
  | Some _ -> channel
  | None ->
      invalid_arg
        (Printf.sprintf "%s: node %d left its channel set at slot %d (channel %d)"
           schedule.schedule_name node slot channel)

let is_prime n =
  if n < 2 then false
  else begin
    let rec loop d = d * d > n || (n mod d <> 0 && loop (d + 1)) in
    loop 2
  end

let smallest_prime_geq n =
  let rec loop v = if is_prime v then v else loop (v + 1) in
  loop (max 2 n)

(* Own-channel lookup table for a node, in increasing global id. *)
let own_channels assignment ~node =
  let set = Assignment.channel_set assignment ~node in
  Crn_channel.Bitset.to_array set

let modular_clock assignment ~node ~rate =
  let own = own_channels assignment ~node in
  let c = Array.length own in
  let p = smallest_prime_geq c in
  if rate < 1 || rate >= p then invalid_arg "Deterministic.modular_clock: rate out of [1, p)";
  {
    schedule_name = Printf.sprintf "modular-clock(r=%d)" rate;
    channel_at =
      (fun ~slot ->
        let idx = ((slot * rate) + node) mod p in
        own.(if idx < c then idx else idx mod c));
  }

let jump_stay assignment ~node =
  let own = own_channels assignment ~node in
  let c = Array.length own in
  let big_c = Assignment.num_channels assignment in
  let p = smallest_prime_geq big_c in
  (* Fold a virtual channel in [0, P) into the node's own set: use it
     directly if owned, otherwise map through the node's set. *)
  let fold x =
    if x < big_c then
      match Assignment.local_of_global assignment ~node ~channel:x with
      | Some _ -> x
      | None -> own.(x mod c)
    else own.(x mod c)
  in
  let round_len = 3 * p in
  {
    schedule_name = "jump-stay";
    channel_at =
      (fun ~slot ->
        let m = slot / round_len in
        let t = slot mod round_len in
        (* Per-round start and step; the step cycles over [1, p-1] with the
           node id as phase so distinct nodes use distinct steps most of the
           time, and the start drifts every round to break symmetry. *)
        let r = 1 + ((node + m) mod (p - 1)) in
        let i = (node + (m * m)) mod p in
        if t < 2 * p then fold ((i + (t * r)) mod p) else fold (r mod p));
  }

let generated_orthogonal ?(phase = 0) assignment ~node =
  let own = own_channels assignment ~node in
  let c = Array.length own in
  (* One canonical sequence per channel set (identity permutation over the
     sorted set): the GOS guarantee is that the sequence meets *itself*
     under any relative time shift within one period, which models the
     asynchronous-start setting of DaSilva & Guerreiro. [phase] emulates
     that shift. *)
  let period = c * (c + 1) in
  {
    schedule_name = "generated-orthogonal";
    channel_at =
      (fun ~slot ->
        let t = (slot + phase) mod period in
        let block = t / (c + 1) in
        let pos = t mod (c + 1) in
        if pos = 0 then own.(block) else own.(pos - 1));
  }

let pair_rendezvous assignment ~u ~v ~max_slots =
  ignore assignment;
  let rec loop slot =
    if slot > max_slots then None
    else if u.channel_at ~slot:(slot - 1) = v.channel_at ~slot:(slot - 1) then Some slot
    else loop (slot + 1)
  in
  loop 1

type msg = Payload

type broadcast_result = {
  completed_at : int option;
  slots_run : int;
  informed_count : int;
}

type machine = {
  decide : node:int -> slot:int -> msg Action.decision;
  feedback : node:int -> slot:int -> msg Action.feedback -> unit;
  finished : unit -> bool;
  snapshot : slots_run:int -> broadcast_result;
}

let machine ~make_schedule ~source ~assignment =
  let n = Assignment.num_nodes assignment in
  if source < 0 || source >= n then
    invalid_arg "Deterministic.machine: source out of range";
  let schedules = Array.init n (fun node -> make_schedule assignment ~node) in
  let informed = Array.make n false in
  informed.(source) <- true;
  (* [Atomic] so the machine is shard-safe on the SoA backend: the
     counter is bumped at most once per node, so the total is
     shard-count independent. *)
  let informed_count = Atomic.make 1 in
  let decide ~node:v ~slot =
    let channel = schedules.(v).channel_at ~slot in
    let label =
      match Assignment.local_of_global assignment ~node:v ~channel with
      | Some label -> label
      | None ->
          invalid_arg
            (Printf.sprintf "Deterministic.broadcast: schedule %s left node %d's set"
               schedules.(v).schedule_name v)
    in
    if informed.(v) then Action.broadcast ~label Payload else Action.listen ~label
  in
  let feedback ~node:v ~slot:_ = function
    | Action.Heard { msg = Payload; _ } ->
        if not informed.(v) then begin
          informed.(v) <- true;
          ignore (Atomic.fetch_and_add informed_count 1)
        end
    | Action.Won | Action.Lost _ | Action.Silence | Action.Jammed
    | Action.No_winner ->
        ()
  in
  let finished () = Atomic.get informed_count = n in
  let snapshot ~slots_run =
    {
      completed_at = (if Atomic.get informed_count = n then Some slots_run else None);
      slots_run;
      informed_count = Atomic.get informed_count;
    }
  in
  { decide; feedback; finished; snapshot }

let broadcast ~make_schedule ~source ~assignment ~rng ~max_slots () =
  let m = machine ~make_schedule ~source ~assignment in
  let n = Assignment.num_nodes assignment in
  let nodes =
    Array.init n (fun v ->
        Engine.node ~id:v
          ~decide:(fun ~slot -> m.decide ~node:v ~slot)
          ~feedback:(fun ~slot fb -> m.feedback ~node:v ~slot fb))
  in
  let stop ~slot:_ = m.finished () in
  let outcome =
    Engine.run ~stop ~availability:(Dynamic.static assignment) ~rng ~nodes ~max_slots ()
  in
  (m.snapshot ~slots_run:outcome.Engine.slots_run).completed_at
