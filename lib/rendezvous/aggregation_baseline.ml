module Rng = Crn_prng.Rng
module Dynamic = Crn_channel.Dynamic
module Action = Crn_radio.Action
module Engine = Crn_radio.Engine

type 'a msg = { from : int; value : 'a }

type 'a result = {
  completed_at : int option;
  slots_run : int;
  received_count : int;
  root_value : 'a option;
}

type 'a machine = {
  decide : node:int -> slot:int -> 'a msg Action.decision;
  feedback : node:int -> slot:int -> 'a msg Action.feedback -> unit;
  finished : unit -> bool;
  snapshot : slots_run:int -> 'a result;
}

let machine (type a) ?(ack = true) ~(monoid : a Crn_core.Aggregate.monoid)
    ~(values : a array) ~source ~availability ~rng () =
  let n = Dynamic.num_nodes availability in
  let c = Dynamic.channels_per_node availability in
  if Array.length values <> n then
    invalid_arg "Aggregation_baseline.machine: values length mismatch";
  if source < 0 || source >= n then
    invalid_arg "Aggregation_baseline.machine: source out of range";
  let received = Array.make n false in
  received.(source) <- true;
  let received_count = ref 1 in
  let acc = ref values.(source) in
  let node_rngs = Rng.split_n rng n in
  let decide ~node:v ~slot:_ =
    let label = Rng.int node_rngs.(v) c in
    if v = source then Action.listen ~label
    else if ack && received.(v) then Action.listen ~label (* idealized ACK *)
    else Action.broadcast ~label { from = v; value = values.(v) }
  in
  let feedback ~node:v ~slot:_ fb =
    if v = source then
      match fb with
      | Action.Heard { msg = { from; value }; _ } ->
          if not received.(from) then begin
            received.(from) <- true;
            incr received_count;
            acc := monoid.Crn_core.Aggregate.combine !acc value
          end
      | Action.Won | Action.Lost _ | Action.Silence | Action.Jammed
    | Action.No_winner ->
        ()
  in
  let finished () = !received_count = n in
  let snapshot ~slots_run =
    let complete = !received_count = n in
    {
      completed_at = (if complete then Some slots_run else None);
      slots_run;
      received_count = !received_count;
      root_value = (if complete then Some !acc else None);
    }
  in
  { decide; feedback; finished; snapshot }

let run ?(stop_when_complete = true) ?ack ~monoid ~values ~source ~availability
    ~rng ~max_slots () =
  let m = machine ?ack ~monoid ~values ~source ~availability ~rng () in
  let n = Dynamic.num_nodes availability in
  let nodes =
    Array.init n (fun v ->
        Engine.node ~id:v
          ~decide:(fun ~slot -> m.decide ~node:v ~slot)
          ~feedback:(fun ~slot fb -> m.feedback ~node:v ~slot fb))
  in
  let stop = if stop_when_complete then Some (fun ~slot:_ -> m.finished ()) else None in
  let outcome = Engine.run ?stop ~availability ~rng ~nodes ~max_slots () in
  m.snapshot ~slots_run:outcome.Engine.slots_run

let run_static ?stop_when_complete ?ack ?(budget_factor = 8.0) ~monoid ~values
    ~source ~assignment ~k ~rng () =
  let n = Crn_channel.Assignment.num_nodes assignment in
  let c = Crn_channel.Assignment.channels_per_node assignment in
  let budget = Crn_core.Complexity.rendezvous_aggregation ~n ~c ~k in
  let max_slots = max 1 (int_of_float (Float.ceil (budget_factor *. budget))) in
  run ?stop_when_complete ?ack ~monoid ~values ~source
    ~availability:(Dynamic.static assignment) ~rng ~max_slots ()
