(** The straw-man data aggregation from §1: every non-source node runs
    randomized rendezvous, transmitting its value; the source hops and
    listens. With fair contention resolution the paper bounds this at
    [O(c²·n/k)] — the comparator COGCOMP beats in experiment E7.

    Two variants, selected by [?ack] (default [true]):
    {ul
    {- [ack = true] — a node stops transmitting the moment the source has
       received its value (a free, instantaneous ACK the real protocol would
       have to engineer). This keeps contention "fair" as §1 assumes and is
       a *lower* bound on the baseline's true cost, so the COGCOMP gap
       reported against it is conservative.}
    {- [ack = false] — nodes transmit forever; the source then hears a
       uniformly random contender per met slot and must coupon-collect all
       [n-1] distinct values, the behavior an unmodified rendezvous layer
       actually exhibits.}} *)

type 'a msg = { from : int; value : 'a }

type 'a result = {
  completed_at : int option;
      (** Slots until the source held every node's value. *)
  slots_run : int;
  received_count : int;  (** Distinct non-source values received. *)
  root_value : 'a option;
}

type 'a machine = {
  decide : node:int -> slot:int -> 'a msg Crn_radio.Action.decision;
  feedback : node:int -> slot:int -> 'a msg Crn_radio.Action.feedback -> unit;
  finished : unit -> bool;
  snapshot : slots_run:int -> 'a result;
}
(** The per-node state machine behind {!run}, exposed so the
    {!Crn_proto.Protocol} layer can drive the identical logic through its
    own runner. *)

val machine :
  ?ack:bool ->
  monoid:'a Crn_core.Aggregate.monoid ->
  values:'a array ->
  source:int ->
  availability:Crn_channel.Dynamic.t ->
  rng:Crn_prng.Rng.t ->
  unit ->
  'a machine
(** Builds the state machine: splits one label stream per node off [rng]
    (the same split {!run} performs) and seeds the accumulator with the
    source's own value. *)

val run :
  ?stop_when_complete:bool ->
  ?ack:bool ->
  monoid:'a Crn_core.Aggregate.monoid ->
  values:'a array ->
  source:int ->
  availability:Crn_channel.Dynamic.t ->
  rng:Crn_prng.Rng.t ->
  max_slots:int ->
  unit ->
  'a result

val run_static :
  ?stop_when_complete:bool ->
  ?ack:bool ->
  ?budget_factor:float ->
  monoid:'a Crn_core.Aggregate.monoid ->
  values:'a array ->
  source:int ->
  assignment:Crn_channel.Assignment.t ->
  k:int ->
  rng:Crn_prng.Rng.t ->
  unit ->
  'a result
(** Budget derived from {!Crn_core.Complexity.rendezvous_aggregation} scaled
    by [budget_factor] (default 8.0). *)
