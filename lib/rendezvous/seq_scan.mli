(** The "hop-together" sequential scan from the §6 discussion — a
    global-channel-label algorithm that beats COGCAST when [c ≫ n].

    All nodes scan the global spectrum in lockstep: in slot [s] every node
    that has channel [s mod C] in its set tunes to it (source broadcasts,
    others listen); nodes lacking that channel park on a private label and
    idle. On the shared-core network the first slot whose scan channel is
    one of the [k] common channels completes the broadcast in one shot, so
    the expected time is [O(C/k)] — [O(1)] in the paper's [c = n², k = c−1]
    example, versus COGCAST's [Θ(n lg n)].

    The algorithm requires the *global label* model: each node must
    recognize the scan channel's global identity in its own set. It is
    impossible under local labels, which is the content of Theorem 15's
    separation. *)

type msg = Payload

type result = {
  completed_at : int option;
  slots_run : int;
  informed_count : int;
}

type machine = {
  decide : node:int -> slot:int -> msg Crn_radio.Action.decision;
  feedback : node:int -> slot:int -> msg Crn_radio.Action.feedback -> unit;
  finished : unit -> bool;
  snapshot : slots_run:int -> result;
}
(** The per-node state machine behind {!run}, exposed so the
    {!Crn_proto.Protocol} layer can drive the identical logic through its
    own runner. The scan is deterministic — no randomness is consumed by
    [decide]; an engine [rng] is only ever touched when informed relays
    contend. *)

val machine : source:int -> assignment:Crn_channel.Assignment.t -> machine

val run :
  ?stop_when_complete:bool ->
  source:int ->
  assignment:Crn_channel.Assignment.t ->
  rng:Crn_prng.Rng.t ->
  max_slots:int ->
  unit ->
  result
(** Informed non-source nodes also broadcast on the scan channel (relay),
    matching the discussion's "all nodes will hop to one of the k
    overlapping channels and hence complete the broadcast". *)
