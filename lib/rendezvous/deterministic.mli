(** Deterministic channel-hopping rendezvous schedules — the prior-art
    family the paper positions itself against (§1, §3: Shin et al. [19],
    Lin et al.'s jump-stay [15], Theis et al.'s modular clock, DaSilva &
    Guerreiro's generated orthogonal sequences; best known bounds
    [O(c²)]-ish).

    These are faithful-in-spirit implementations of the three classic
    constructions, adapted to this repository's model (synchronous start,
    per-node channel sets, global labels — deterministic schedules are
    meaningless under adversarial local labels, which is exactly the §6
    separation). Their rendezvous guarantees are *verified empirically* in
    the test suite over exhaustive small parameter grids rather than claimed
    as theorems: the originals differ in model details (asynchrony,
    index-vs-identity channels) that make bound statements non-portable.

    A schedule maps a slot to the *global channel* the node tunes to; it is
    always one of the node's own channels. *)

type schedule = {
  schedule_name : string;
  channel_at : slot:int -> int;  (** Global channel id used in [slot]. *)
}

val channel_of_schedule :
  Crn_channel.Assignment.t -> node:int -> schedule -> slot:int -> int
(** Defensive accessor used by tests: evaluates and checks membership of the
    schedule's choice in the node's set. Raises [Invalid_argument] when a
    schedule leaves the node's channel set. *)

val smallest_prime_geq : int -> int
(** Number theory helper: the smallest prime [>= max 2 n]. *)

val modular_clock :
  Crn_channel.Assignment.t -> node:int -> rate:int -> schedule
(** Theis/Thomas/DaSilva-style modular clock over the node's own channel
    indices: with [p] the smallest prime [>= c], slot [j] visits own-set
    index [(j*rate + node) mod p], folded back into [0, c) when it
    overflows. Rates are in [1, p-1].

    Guarantee (verified in the tests): two nodes with identical channel
    sets and *distinct* rates modulo [p] meet within [O(p²)] slots. Equal
    rates with different offsets never meet — the original paper's known
    weakness, which its authors fix by re-randomizing the rate per round;
    use {!Crn_rendezvous.Random_hop} when no rate coordination exists. *)

val jump_stay : Crn_channel.Assignment.t -> node:int -> schedule
(** Jump-stay-style schedule (after Lin et al. [15]) over the global
    spectrum: with [P] the smallest prime [>= C], time is split into rounds
    of [3P] slots; the first [2P] slots of round [m] jump through
    [(i_m + t*r_m) mod P] and the last [P] slots stay on [r_m], where the
    per-round start [i_m] and step [r_m] are derived from the node id and
    the round index. Channels outside the node's set fold into it
    deterministically. *)

val generated_orthogonal :
  ?phase:int -> Crn_channel.Assignment.t -> node:int -> schedule
(** Generated-orthogonal-sequence schedule (after DaSilva & Guerreiro) over
    the node's own [c] channels: the length-[c(c+1)] sequence
    [σ(0), σ(0..c-1), σ(1), σ(0..c-1), …] with [σ] the identity over the
    sorted set, cycled forever. The GOS guarantee targets asynchronous
    starts: the sequence meets *itself* within one period under any relative
    shift, which [?phase] (default 0) emulates; the tests verify it for all
    shifts exhaustively at small [c]. *)

val pair_rendezvous :
  Crn_channel.Assignment.t -> u:schedule -> v:schedule -> max_slots:int -> int option
(** First 1-based slot at which the two schedules select the same global
    channel. *)

type msg = Payload

type broadcast_result = {
  completed_at : int option;
  slots_run : int;
  informed_count : int;
}

type machine = {
  decide : node:int -> slot:int -> msg Crn_radio.Action.decision;
  feedback : node:int -> slot:int -> msg Crn_radio.Action.feedback -> unit;
  finished : unit -> bool;
  snapshot : slots_run:int -> broadcast_result;
}
(** The per-node state machine behind {!broadcast}, exposed so the
    {!Crn_proto.Protocol} layer can drive the identical logic through its
    own runner. *)

val machine :
  make_schedule:(Crn_channel.Assignment.t -> node:int -> schedule) ->
  source:int ->
  assignment:Crn_channel.Assignment.t ->
  machine

val broadcast :
  make_schedule:(Crn_channel.Assignment.t -> node:int -> schedule) ->
  source:int ->
  assignment:Crn_channel.Assignment.t ->
  rng:Crn_prng.Rng.t ->
  max_slots:int ->
  unit ->
  int option
(** Local broadcast driven by a deterministic schedule: every node follows
    its schedule; the source (and, epidemic-style, every informed node)
    broadcasts, the rest listen. Returns the completion slot. The [rng] only
    feeds the engine's contention winner choice — the schedules themselves
    are deterministic. *)
