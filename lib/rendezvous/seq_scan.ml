module Dynamic = Crn_channel.Dynamic
module Assignment = Crn_channel.Assignment
module Action = Crn_radio.Action
module Engine = Crn_radio.Engine

type msg = Payload

type result = { completed_at : int option; slots_run : int; informed_count : int }

type machine = {
  decide : node:int -> slot:int -> msg Action.decision;
  feedback : node:int -> slot:int -> msg Action.feedback -> unit;
  finished : unit -> bool;
  snapshot : slots_run:int -> result;
}

let machine ~source ~assignment =
  let n = Assignment.num_nodes assignment in
  let c = Assignment.channels_per_node assignment in
  let big_c = Assignment.num_channels assignment in
  if source < 0 || source >= n then invalid_arg "Seq_scan.machine: source out of range";
  let informed = Array.make n false in
  informed.(source) <- true;
  (* [Atomic] so the machine is shard-safe on the SoA backend: the
     counter is bumped at most once per node, so the total is
     shard-count independent. *)
  let informed_count = Atomic.make 1 in
  (* Precompute each node's label for every global channel it owns. *)
  let label_of =
    Array.init n (fun v ->
        let table = Hashtbl.create c in
        for label = 0 to c - 1 do
          Hashtbl.replace table (Assignment.global_of_local assignment ~node:v ~label) label
        done;
        table)
  in
  (* A private parking label per node: a channel of its set that the scan is
     not visiting this slot is guaranteed to exist whenever c >= 2; nodes
     park to avoid accidental receptions off-protocol. *)
  let decide ~node:v ~slot =
    let scan_channel = slot mod big_c in
    match Hashtbl.find_opt label_of.(v) scan_channel with
    | Some label ->
        if informed.(v) then Action.broadcast ~label Payload else Action.listen ~label
    | None ->
        (* Park on label 0: broadcasts only ever happen on the scan channel,
           and this node's label 0 is not the scan channel (that case was
           caught above), so parking cannot cause stray receptions. *)
        Action.listen ~label:0
  in
  let feedback ~node:v ~slot:_ = function
    | Action.Heard { msg = Payload; _ } ->
        if not informed.(v) then begin
          informed.(v) <- true;
          ignore (Atomic.fetch_and_add informed_count 1)
        end
    | Action.Won | Action.Lost _ | Action.Silence | Action.Jammed
    | Action.No_winner ->
        ()
  in
  let finished () = Atomic.get informed_count = n in
  let snapshot ~slots_run =
    {
      completed_at = (if Atomic.get informed_count = n then Some slots_run else None);
      slots_run;
      informed_count = Atomic.get informed_count;
    }
  in
  { decide; feedback; finished; snapshot }

let run ?(stop_when_complete = true) ~source ~assignment ~rng ~max_slots () =
  let m = machine ~source ~assignment in
  let n = Assignment.num_nodes assignment in
  let nodes =
    Array.init n (fun v ->
        Engine.node ~id:v
          ~decide:(fun ~slot -> m.decide ~node:v ~slot)
          ~feedback:(fun ~slot fb -> m.feedback ~node:v ~slot fb))
  in
  let stop = if stop_when_complete then Some (fun ~slot:_ -> m.finished ()) else None in
  let availability = Dynamic.static assignment in
  let outcome = Engine.run ?stop ~availability ~rng ~nodes ~max_slots () in
  m.snapshot ~slots_run:outcome.Engine.slots_run
