(** The straw-man local broadcast from §1: every node runs randomized
    rendezvous against the source, which transmits its message in every
    slot. Informed non-source nodes keep hopping and listening — there is no
    epidemic relay, which is precisely what COGCAST adds and what this
    baseline is measured against in experiment E4.

    Expected completion is [O((c²/k)·lg n)]: each uninformed node meets the
    source with probability at least [k/c²] per slot.

    Runs on the same {!Crn_radio.Engine} as COGCAST so that contention and
    label semantics are identical. *)

type msg = Payload

type result = {
  completed_at : int option;
  slots_run : int;
  informed_count : int;
  informed : bool array;
}

type machine = {
  decide : node:int -> slot:int -> msg Crn_radio.Action.decision;
  feedback : node:int -> slot:int -> msg Crn_radio.Action.feedback -> unit;
  finished : unit -> bool;
  snapshot : slots_run:int -> result;
}
(** The per-node state machine behind {!run}, exposed so the
    {!Crn_proto.Protocol} layer can drive the identical logic through its
    own runner: [decide]/[feedback] are queried by the engine per node and
    slot, [finished] is the completion predicate, and [snapshot] projects
    the final {!result}. *)

val machine :
  source:int ->
  availability:Crn_channel.Dynamic.t ->
  rng:Crn_prng.Rng.t ->
  machine
(** Builds the state machine: splits one label stream per node off [rng]
    (the same split {!run} performs) and starts with only [source]
    informed. *)

val run :
  ?metrics:Crn_radio.Metrics.t ->
  ?stop_when_complete:bool ->
  source:int ->
  availability:Crn_channel.Dynamic.t ->
  rng:Crn_prng.Rng.t ->
  max_slots:int ->
  unit ->
  result

val run_static :
  ?metrics:Crn_radio.Metrics.t ->
  ?stop_when_complete:bool ->
  ?budget_factor:float ->
  source:int ->
  assignment:Crn_channel.Assignment.t ->
  k:int ->
  rng:Crn_prng.Rng.t ->
  unit ->
  result
(** Budget derived from {!Crn_core.Complexity.rendezvous_broadcast} scaled by
    [budget_factor] (default 8.0). *)
