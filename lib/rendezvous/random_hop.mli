(** Uniform random channel hopping — the basic randomized rendezvous
    primitive the paper cites as achieving [O(c²/k)] expected meeting time
    for a pair of nodes (§1).

    In every slot each node tunes to a uniformly random channel of its set;
    two nodes rendezvous in the first slot they land on a common channel.
    Per slot the meeting probability is at least [k/c²], so the expectation
    is at most [c²/k].

    {!pair} and {!source_meets_all} are closed-form loops over the channel
    assignment alone; {!machine} is the same source-meets-all process as an
    engine-driven state machine (the source beacons on its draw, unmet nodes
    draw and listen, met nodes park), for the {!Crn_proto.Protocol} layer. *)

val pair :
  rng:Crn_prng.Rng.t ->
  assignment:Crn_channel.Assignment.t ->
  u:int ->
  v:int ->
  max_slots:int ->
  int option
(** [pair ~rng ~assignment ~u ~v ~max_slots] is the 1-based slot at which
    nodes [u] and [v] first choose the same global channel, or [None] if
    that never happens within [max_slots]. *)

val source_meets_all :
  rng:Crn_prng.Rng.t ->
  assignment:Crn_channel.Assignment.t ->
  source:int ->
  max_slots:int ->
  int option
(** The number of slots until the source has shared a channel at least once
    with every other node (each node hopping independently) — the schedule
    skeleton of the rendezvous broadcast baseline. *)

type msg = Beacon

type result = { completed_at : int option; slots_run : int; met_count : int }

type machine = {
  decide : node:int -> slot:int -> msg Crn_radio.Action.decision;
  feedback : node:int -> slot:int -> msg Crn_radio.Action.feedback -> unit;
  finished : unit -> bool;
  snapshot : slots_run:int -> result;
}

val machine :
  source:int ->
  availability:Crn_channel.Dynamic.t ->
  rng:Crn_prng.Rng.t ->
  machine
(** Engine port of {!source_meets_all}: the source broadcasts a beacon on a
    fresh uniform draw each slot, every still-unmet node draws and listens,
    and nodes that have met the source park on label 0 without consuming
    randomness. All draws come from the single shared [rng] — not per-node
    streams — mirroring the pure loop. For [source = 0] on fault-free runs
    the slot count is {e identical} to {!source_meets_all} on the same
    stream, because the engine polls [decide] in ascending node id, exactly
    the pure loop's draw order (and, with a single broadcaster, the engine
    never draws for contention). For a nonzero source the interleaving of
    draws differs but the process is the same. *)
