module Rng = Crn_prng.Rng
module Assignment = Crn_channel.Assignment
module Dynamic = Crn_channel.Dynamic
module Action = Crn_radio.Action

let pair ~rng ~assignment ~u ~v ~max_slots =
  let c = Assignment.channels_per_node assignment in
  let rec loop slot =
    if slot > max_slots then None
    else begin
      let cu = Assignment.global_of_local assignment ~node:u ~label:(Rng.int rng c) in
      let cv = Assignment.global_of_local assignment ~node:v ~label:(Rng.int rng c) in
      if cu = cv then Some slot else loop (slot + 1)
    end
  in
  loop 1

let source_meets_all ~rng ~assignment ~source ~max_slots =
  let n = Assignment.num_nodes assignment in
  let c = Assignment.channels_per_node assignment in
  let met = Array.make n false in
  met.(source) <- true;
  let met_count = ref 1 in
  let rec loop slot =
    if !met_count = n then Some (slot - 1)
    else if slot > max_slots then None
    else begin
      let cs = Assignment.global_of_local assignment ~node:source ~label:(Rng.int rng c) in
      for v = 0 to n - 1 do
        if not met.(v) then begin
          let cv = Assignment.global_of_local assignment ~node:v ~label:(Rng.int rng c) in
          if cv = cs then begin
            met.(v) <- true;
            incr met_count
          end
        end
      done;
      loop (slot + 1)
    end
  in
  loop 1

type msg = Beacon

type result = { completed_at : int option; slots_run : int; met_count : int }

type machine = {
  decide : node:int -> slot:int -> msg Action.decision;
  feedback : node:int -> slot:int -> msg Action.feedback -> unit;
  finished : unit -> bool;
  snapshot : slots_run:int -> result;
}

let machine ~source ~availability ~rng =
  let n = Dynamic.num_nodes availability in
  let c = Dynamic.channels_per_node availability in
  if source < 0 || source >= n then
    invalid_arg "Random_hop.machine: source out of range";
  let met = Array.make n false in
  met.(source) <- true;
  let met_count = ref 1 in
  let decide ~node:v ~slot:_ =
    if v = source then Action.broadcast ~label:(Rng.int rng c) Beacon
    else if met.(v) then
      (* Already met: park on label 0 *without* drawing, so the shared [rng]
         sees exactly the draws of the pure loop — the source first, then
         each still-unmet node in ascending id (for [source = 0], the
         engine's decide order). Parking cannot create a spurious meeting
         because [met.(v)] is already true, and only the source broadcasts,
         so the engine never draws for contention either. *)
      Action.listen ~label:0
    else Action.listen ~label:(Rng.int rng c)
  in
  let feedback ~node:v ~slot:_ = function
    | Action.Heard { msg = Beacon; _ } ->
        if not met.(v) then begin
          met.(v) <- true;
          incr met_count
        end
    | Action.Won | Action.Lost _ | Action.Silence | Action.Jammed
    | Action.No_winner ->
        ()
  in
  let finished () = !met_count = n in
  let snapshot ~slots_run =
    {
      completed_at = (if !met_count = n then Some slots_run else None);
      slots_run;
      met_count = !met_count;
    }
  in
  { decide; feedback; finished; snapshot }
