module Rng = Crn_prng.Rng
module Dynamic = Crn_channel.Dynamic
module Action = Crn_radio.Action
module Engine = Crn_radio.Engine

type msg = Payload

type result = {
  completed_at : int option;
  slots_run : int;
  informed_count : int;
  informed : bool array;
}

type machine = {
  decide : node:int -> slot:int -> msg Action.decision;
  feedback : node:int -> slot:int -> msg Action.feedback -> unit;
  finished : unit -> bool;
  snapshot : slots_run:int -> result;
}

let machine ~source ~availability ~rng =
  let n = Dynamic.num_nodes availability in
  let c = Dynamic.channels_per_node availability in
  if source < 0 || source >= n then
    invalid_arg "Broadcast_baseline.machine: source out of range";
  let informed = Array.make n false in
  informed.(source) <- true;
  (* [Atomic] so the machine is shard-safe on the SoA backend: the
     counter is bumped at most once per node, so the total is
     shard-count independent. *)
  let informed_count = Atomic.make 1 in
  let node_rngs = Rng.split_n rng n in
  let decide ~node:v ~slot:_ =
    let label = Rng.int node_rngs.(v) c in
    (* Only the source ever transmits. An informed non-source node behaves
       exactly like an uninformed one — it keeps hopping and listening —
       because the straw man has no epidemic relay to serve; keeping served
       nodes on the common draw-then-listen path also keeps every node's rng
       stream independent of when it was informed. *)
    if v = source then Action.broadcast ~label Payload else Action.listen ~label
  in
  let feedback ~node:v ~slot:_ = function
    | Action.Heard { sender; msg = Payload } ->
        (* Only the source transmits, so any reception is the real message. *)
        if sender = source && not informed.(v) then begin
          informed.(v) <- true;
          ignore (Atomic.fetch_and_add informed_count 1)
        end
    | Action.Won | Action.Lost _ | Action.Silence | Action.Jammed
    | Action.No_winner ->
        ()
  in
  let finished () = Atomic.get informed_count = n in
  let snapshot ~slots_run =
    {
      completed_at = (if Atomic.get informed_count = n then Some slots_run else None);
      slots_run;
      informed_count = Atomic.get informed_count;
      informed;
    }
  in
  { decide; feedback; finished; snapshot }

let run ?metrics ?(stop_when_complete = true) ~source ~availability ~rng ~max_slots () =
  let m = machine ~source ~availability ~rng in
  let n = Dynamic.num_nodes availability in
  let nodes =
    Array.init n (fun v ->
        Engine.node ~id:v
          ~decide:(fun ~slot -> m.decide ~node:v ~slot)
          ~feedback:(fun ~slot fb -> m.feedback ~node:v ~slot fb))
  in
  let stop = if stop_when_complete then Some (fun ~slot:_ -> m.finished ()) else None in
  let outcome = Engine.run ?metrics ?stop ~availability ~rng ~nodes ~max_slots () in
  m.snapshot ~slots_run:outcome.Engine.slots_run

let run_static ?metrics ?stop_when_complete ?(budget_factor = 8.0) ~source ~assignment ~k
    ~rng () =
  let n = Crn_channel.Assignment.num_nodes assignment in
  let c = Crn_channel.Assignment.channels_per_node assignment in
  let budget = Crn_core.Complexity.rendezvous_broadcast ~n ~c ~k in
  let max_slots = max 1 (int_of_float (Float.ceil (budget_factor *. budget))) in
  run ?metrics ?stop_when_complete ~source
    ~availability:(Dynamic.static assignment) ~rng ~max_slots ()
