type t = {
  num_nodes : int;
  channels_per_node : int;
  view : int -> Assignment.t;
}

let static a =
  {
    num_nodes = Assignment.num_nodes a;
    channels_per_node = Assignment.channels_per_node a;
    view = (fun _ -> a);
  }

(* The cache is mutex-protected so one availability value can be shared by
   parallel trials (Crn_exec); [f] must be a deterministic function of the
   slot, which every constructor here guarantees. *)
let memoize f =
  let cache = Hashtbl.create 64 in
  let lock = Mutex.create () in
  fun slot ->
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        match Hashtbl.find_opt cache slot with
        | Some a -> a
        | None ->
            let a = f slot in
            Hashtbl.replace cache slot a;
            a)

let of_fun ~num_nodes ~channels_per_node f =
  let view =
    memoize (fun slot ->
        let a = f slot in
        if Assignment.num_nodes a <> num_nodes
           || Assignment.channels_per_node a <> channels_per_node
        then invalid_arg "Dynamic.of_fun: assignment dimensions changed";
        a)
  in
  { num_nodes; channels_per_node; view }

let reshuffled_shared_core ~seed spec =
  Topology.validate_spec spec;
  (* A fixed base seed hashed with the slot index gives an independent,
     deterministic RNG per slot even if slots are queried out of order. *)
  let base_seed = Crn_prng.Rng.bits64 seed in
  let view =
    memoize (fun slot ->
        let slot_seed =
          Crn_prng.Splitmix.mix64 (Int64.logxor base_seed (Int64.of_int slot))
        in
        Topology.shared_core (Crn_prng.Rng.of_int64 slot_seed) spec)
  in
  { num_nodes = spec.Topology.n; channels_per_node = spec.Topology.c; view }

let rotating a =
  let n = Assignment.num_nodes a in
  let c = Assignment.channels_per_node a in
  let num_channels = Assignment.num_channels a in
  let view =
    memoize (fun slot ->
        let shift = slot mod c in
        let rows =
          Array.init n (fun node ->
              Array.init c (fun label ->
                  Assignment.global_of_local a ~node ~label:((label + shift) mod c)))
        in
        Assignment.create ~num_channels ~local_to_global:rows)
  in
  { num_nodes = n; channels_per_node = c; view }

let num_nodes t = t.num_nodes
let channels_per_node t = t.channels_per_node
let at t slot = t.view slot
