module Rng = Crn_prng.Rng
module Dynamic = Crn_channel.Dynamic
module Action = Crn_radio.Action
module Trace = Crn_radio.Trace

type msg = { rumor : int }

type result = {
  slots_run : int;
  total_rumors : int;
  injected : int;
  completed : int;
  deliveries : int;
  retired : int;
  completed_at : int option;
  latencies : float array;
}

type machine = {
  decide : node:int -> slot:int -> msg Action.decision;
  feedback : node:int -> slot:int -> msg Action.feedback -> unit;
  finished : unit -> bool;
  snapshot : slots_run:int -> result;
}

let default_hear_limit ~n =
  let rec lg2 acc v = if v <= 1 then acc else lg2 (acc + 1) ((v + 1) / 2) in
  8 + (4 * lg2 0 (max 2 n))

let machine ?hear_limit ?trace ~arrivals ~availability ~rng () =
  let n = Dynamic.num_nodes availability in
  let c = Dynamic.channels_per_node availability in
  let hear_limit = match hear_limit with Some h -> h | None -> default_hear_limit ~n in
  if hear_limit < 1 then invalid_arg "Gossip.machine: hear_limit must be >= 1";
  let total = Array.length arrivals in
  let queues = Arrivals.by_origin ~n arrivals in
  let node_rngs = Rng.split_n rng n in
  let record ev = match trace with Some tr -> Trace.record tr ev | None -> () in
  (* Whole-network bookkeeping: who knows what, since when, and how loudly
     they have heard it since. *)
  let known_at = Array.make_matrix total n (-1) in
  let heard = Array.make_matrix total n 0 in
  let known_count = Array.make total 0 in
  let injected_at = Array.make total (-1) in
  let done_at = Array.make total (-1) in
  let active : int list array = Array.make n [] in
  let injected = ref 0 in
  let completed = ref 0 in
  let deliveries = ref 0 in
  let retired = ref 0 in
  let learn ~slot ~rumor ~node =
    known_at.(rumor).(node) <- slot;
    active.(node) <- rumor :: active.(node);
    known_count.(rumor) <- known_count.(rumor) + 1;
    if known_count.(rumor) = n then begin
      done_at.(rumor) <- slot;
      incr completed;
      record (Trace.Rumor_done { slot; rumor })
    end
  in
  let inject ~slot ~rumor ~node =
    injected_at.(rumor) <- slot;
    incr injected;
    record (Trace.Injected { slot; rumor; node });
    learn ~slot ~rumor ~node
  in
  let receive ~slot ~rumor ~node ~parent =
    if known_at.(rumor).(node) >= 0 then begin
      (* Already carrying it: bump the exemplar's hear counter and retire
         the rumor locally once the neighbourhood is clearly saturated. *)
      let h = heard.(rumor).(node) + 1 in
      heard.(rumor).(node) <- h;
      if h = hear_limit && List.mem rumor active.(node) then begin
        active.(node) <- List.filter (fun r -> r <> rumor) active.(node);
        incr retired
      end
    end
    else begin
      incr deliveries;
      record (Trace.Rumor_delivered { slot; rumor; node; parent });
      learn ~slot ~rumor ~node
    end
  in
  let decide ~node:v ~slot:t =
    (* Open-loop injection: hand over every arrival that has come due while
       this node was participating. A down origin injects late, at the
       actual slot it returns — the trace records the truth. *)
    let rec drain () =
      match queues.(v) with
      | a :: rest when a.Arrivals.slot <= t ->
          queues.(v) <- rest;
          inject ~slot:t ~rumor:a.Arrivals.rumor ~node:v;
          drain ()
      | _ -> ()
    in
    drain ();
    let label = Rng.int node_rngs.(v) c in
    match active.(v) with
    | [] -> Action.listen ~label
    | rs ->
        if Rng.bool node_rngs.(v) then begin
          let len = List.length rs in
          let rumor = List.nth rs (Rng.int node_rngs.(v) len) in
          Action.broadcast ~label { rumor }
        end
        else Action.listen ~label
  in
  let feedback ~node:v ~slot:t fb =
    match fb with
    | Action.Heard { sender; msg = { rumor } } ->
        receive ~slot:t ~rumor ~node:v ~parent:sender
    | Action.Lost { winner; msg = { rumor } } ->
        (* §2: the losing broadcaster receives the winner's message. *)
        receive ~slot:t ~rumor ~node:v ~parent:winner
    | Action.Won | Action.Silence | Action.Jammed | Action.No_winner -> ()
  in
  let finished () = !injected = total && !completed = total in
  let snapshot ~slots_run =
    let latencies =
      Array.to_list (Array.init total (fun r -> r))
      |> List.filter (fun r -> done_at.(r) >= 0)
      |> List.map (fun r -> float_of_int (done_at.(r) - injected_at.(r) + 1))
      |> Array.of_list
    in
    {
      slots_run;
      total_rumors = total;
      injected = !injected;
      completed = !completed;
      deliveries = !deliveries;
      retired = !retired;
      completed_at = (if !completed = total then Some slots_run else None);
      latencies;
    }
  in
  { decide; feedback; finished; snapshot }
