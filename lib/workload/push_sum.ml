module Rng = Crn_prng.Rng
module Dynamic = Crn_channel.Dynamic
module Action = Crn_radio.Action
module Trace = Crn_radio.Trace

type msg =
  | Beacon
  | Transfer of { target : int; ds : float; dw : float }

type result = {
  slots_run : int;
  total_arrivals : int;
  injected : int;
  transfers : int;
  lost_mass : float;
  lost_weight : float;
  max_drift : float;
  estimate_error : float;
  converged : int;
  completed_at : int option;
  latencies : float array;
}

type machine = {
  decide : node:int -> slot:int -> msg Action.decision;
  feedback : node:int -> slot:int -> msg Action.feedback -> unit;
  finished : unit -> bool;
  snapshot : slots_run:int -> result;
}

let machine ?(tolerance = 0.02) ?values ?trace ~arrivals ~availability ~rng () =
  let n = Dynamic.num_nodes availability in
  let c = Dynamic.channels_per_node availability in
  if not (tolerance > 0.0) then
    invalid_arg "Push_sum.machine: tolerance must be > 0";
  let values =
    match values with
    | None -> Array.init n float_of_int
    | Some vs ->
        if Array.length vs <> n then
          invalid_arg "Push_sum.machine: values length must equal n";
        vs
  in
  let total = Array.length arrivals in
  let queues = Arrivals.by_origin ~n arrivals in
  let node_rngs = Rng.split_n rng n in
  let record ev = match trace with Some tr -> Trace.record tr ev | None -> () in
  let s = Array.copy values in
  let w = Array.make n 1.0 in
  let expected = ref (Array.fold_left ( +. ) 0.0 values) in
  (* Per-slot transfer accounting. A debit (the engine's [Won] at a
     sender) and the matching fold (the [Heard]/[Lost] at the target) are
     two views of the same delivery, carrying bitwise-identical [ds]/[dw];
     a debit whose fold never arrives (target down, jammed, or absent this
     slot) is real lost mass, swept into the ledger at slot end rather
     than silently vanishing. Debits are matched to folds pairwise — never
     by comparing per-slot float totals, whose rounding would depend on
     feedback iteration order. The ledger is therefore exact and identical
     on every backend, whatever order feedback arrives in. *)
  let debit_ds = Array.make n 0.0 in
  let debit_dw = Array.make n 0.0 in
  let debit_live = Array.make n false in
  let folded_from = Array.make n false in
  let lost_s = ref 0.0 and lost_w = ref 0.0 in
  let max_drift = ref 0.0 in
  let transfers = ref 0 in
  let injected = ref 0 in
  let last_inject = ref 0 in
  let cur_slot = ref (-1) in
  (* [settled_at.(v)] is the slot node [v]'s estimate last entered the
     tolerance band around the circulating mean; [-1] while outside it. *)
  let settled_at = Array.make n (-1) in
  let heard_beacon : (int * int) option array = Array.make n None in
  let beaconed_label : int option array = Array.make n None in
  let last_label = Array.make n 0 in
  let pending : (int * float * float) option array = Array.make n None in
  let circulating_mean () =
    let mass = !expected -. !lost_s in
    let weight = float_of_int n -. !lost_w in
    if weight <= 0.0 then nan else mass /. weight
  in
  let rel_dev v mean =
    if w.(v) <= 0.0 then infinity
    else
      let est = s.(v) /. w.(v) in
      Float.abs (est -. mean) /. Float.max (Float.abs mean) 1e-9
  in
  (* [from] is the winning sender whose debit this fold matches; the fold
     can arrive before or after the sender's own [Won], so matching is a
     flag resolved at slot end, not an eager cancellation. *)
  let fold_transfer ~node ~from ~ds ~dw =
    s.(node) <- s.(node) +. ds;
    w.(node) <- w.(node) +. dw;
    folded_from.(from) <- true
  in
  let decide ~node:v ~slot:t =
    cur_slot := max !cur_slot t;
    let rec drain () =
      match queues.(v) with
      | a :: rest when a.Arrivals.slot <= t ->
          queues.(v) <- rest;
          s.(v) <- s.(v) +. 1.0;
          expected := !expected +. 1.0;
          incr injected;
          last_inject := t;
          record (Trace.Injected { slot = t; rumor = a.Arrivals.rumor; node = v });
          drain ()
      | _ -> ()
    in
    drain ();
    pending.(v) <- None;
    if t land 1 = 0 then begin
      (* Beacon slot: advertise or scan. *)
      heard_beacon.(v) <- None;
      beaconed_label.(v) <- None;
      let label = Rng.int node_rngs.(v) c in
      last_label.(v) <- label;
      if Rng.bool node_rngs.(v) then begin
        beaconed_label.(v) <- Some label;
        Action.broadcast ~label Beacon
      end
      else Action.listen ~label
    end
    else begin
      (* Transfer slot: answer the beacon heard last slot, or wait for an
         answer where we beaconed. *)
      match heard_beacon.(v) with
      | Some (target, label) when target <> v ->
          heard_beacon.(v) <- None;
          let ds = s.(v) /. 2.0 and dw = w.(v) /. 2.0 in
          pending.(v) <- Some (target, ds, dw);
          last_label.(v) <- label;
          Action.broadcast ~label (Transfer { target; ds; dw })
      | _ -> (
          heard_beacon.(v) <- None;
          match beaconed_label.(v) with
          | Some label ->
              last_label.(v) <- label;
              Action.listen ~label
          | None ->
              let label = Rng.int node_rngs.(v) c in
              last_label.(v) <- label;
              Action.listen ~label)
    end
  in
  let feedback ~node:v ~slot:_ fb =
    match fb with
    | Action.Heard { sender; msg = Beacon } ->
        heard_beacon.(v) <- Some (sender, last_label.(v))
    | Action.Heard { sender; msg = Transfer { target; ds; dw } } ->
        if target = v then fold_transfer ~node:v ~from:sender ~ds ~dw
    | Action.Lost { winner; msg = Beacon } ->
        (* A losing beaconer still receives the winner's beacon (§2) and
           can court it next slot. *)
        heard_beacon.(v) <- Some (winner, last_label.(v))
    | Action.Lost { winner; msg = Transfer { target; ds; dw } } ->
        pending.(v) <- None;
        if target = v then fold_transfer ~node:v ~from:winner ~ds ~dw
    | Action.Won -> (
        match pending.(v) with
        | Some (_, ds, dw) ->
            (* Our transfer is the one the engine delivered: commit the
               debit. The target's fold is driven by the same delivery. *)
            s.(v) <- s.(v) -. ds;
            w.(v) <- w.(v) -. dw;
            debit_ds.(v) <- ds;
            debit_dw.(v) <- dw;
            debit_live.(v) <- true;
            incr transfers;
            pending.(v) <- None
        | None -> ())
    | Action.Silence -> ()
    | Action.Jammed | Action.No_winner ->
        (* The transfer never left this node (absorbed by the jammer, or
           the contention session burned its whole window): nothing was
           delivered, so nothing is debited. *)
        pending.(v) <- None
  in
  (* Runs once after every slot's feedback (the driver's stop hook): sweep
     unfolded in-flight mass into the ledger, sample the conservation
     drift, and re-evaluate the convergence band. *)
  let finished () =
    for v = 0 to n - 1 do
      if debit_live.(v) then begin
        if not folded_from.(v) then begin
          lost_s := !lost_s +. debit_ds.(v);
          lost_w := !lost_w +. debit_dw.(v)
        end;
        debit_live.(v) <- false
      end;
      folded_from.(v) <- false
    done;
    let mass = ref !lost_s in
    Array.iter (fun x -> mass := !mass +. x) s;
    max_drift := Float.max !max_drift (Float.abs (!mass -. !expected));
    let mean = circulating_mean () in
    let all_settled = ref true in
    for v = 0 to n - 1 do
      if rel_dev v mean <= tolerance then begin
        if settled_at.(v) < 0 then settled_at.(v) <- max 0 !cur_slot
      end
      else begin
        settled_at.(v) <- -1;
        all_settled := false
      end
    done;
    !injected = total && !all_settled
  in
  let snapshot ~slots_run =
    let mean = circulating_mean () in
    let estimate_error =
      Array.to_list (Array.init n (fun v -> rel_dev v mean))
      |> List.fold_left Float.max 0.0
    in
    let settled = List.filter (fun v -> settled_at.(v) >= 0) (List.init n Fun.id) in
    let latencies =
      settled
      |> List.map (fun v -> float_of_int (max 1 (settled_at.(v) - !last_inject + 1)))
      |> Array.of_list
    in
    let converged = List.length settled in
    {
      slots_run;
      total_arrivals = total;
      injected = !injected;
      transfers = !transfers;
      lost_mass = !lost_s;
      lost_weight = !lost_w;
      max_drift = !max_drift;
      estimate_error;
      converged;
      completed_at =
        (if !injected = total && converged = n then Some slots_run else None);
      latencies;
    }
  in
  { decide; feedback; finished; snapshot }
