(** Multi-rumor epidemic broadcast under sustained load.

    Each rumor from the {!Arrivals} schedule is injected at its origin and
    spreads epidemically: every node carrying at least one {e active}
    rumor flips a coin each slot between broadcasting a uniformly random
    active rumor on a uniformly random channel and listening; nodes with
    nothing to spread listen on a random channel. A node learns a rumor
    either by hearing the slot's winner or by losing a contention slot to
    it (per §2 a losing broadcaster receives the winner's message).

    Per-rumor termination follows the Gossip-Algorithm exemplar: a node
    retires a rumor — stops offering it for broadcast — once it has heard
    it [hear_limit] further times after learning it, bounding the chatter
    each rumor generates without a global stop signal. A rumor {e
    completes} when all [n] nodes know it; the machine finishes when every
    scheduled rumor has been injected and completed.

    With a trace supplied the machine records {!Crn_radio.Trace.Injected},
    {!Crn_radio.Trace.Rumor_delivered} (with the parent it learned from)
    and {!Crn_radio.Trace.Rumor_done} events, which
    {!Crn_radio.Trace.Check.rumor_causality} replays. *)

type msg = { rumor : int }

type result = {
  slots_run : int;
  total_rumors : int;
  injected : int;  (** Rumors handed to their origins so far. *)
  completed : int;  (** Rumors known by all [n] nodes. *)
  deliveries : int;  (** Non-origin nodes that learned some rumor. *)
  retired : int;  (** (node, rumor) pairs retired by the hear counter. *)
  completed_at : int option;
      (** Slots consumed when the last rumor completed, if all did. *)
  latencies : float array;
      (** Per completed rumor: [done_slot - injected_slot + 1]. *)
}

type machine = {
  decide : node:int -> slot:int -> msg Crn_radio.Action.decision;
  feedback : node:int -> slot:int -> msg Crn_radio.Action.feedback -> unit;
  finished : unit -> bool;
  snapshot : slots_run:int -> result;
}

val default_hear_limit : n:int -> int
(** The retirement threshold used when [hear_limit] is omitted:
    [8 + 4 * ceil(log2 n)] — the exemplar's constant counter scaled so
    that retirement cannot plausibly outrun full coverage. *)

val machine :
  ?hear_limit:int ->
  ?trace:Crn_radio.Trace.t ->
  arrivals:Arrivals.arrival array ->
  availability:Crn_channel.Dynamic.t ->
  rng:Crn_prng.Rng.t ->
  unit ->
  machine
(** Builds the whole-network machine. Splits one generator per node off
    [rng] (after the arrival schedule's own stream), so runs are
    deterministic per seed on any backend. *)
