(** The open-loop load generator: a deterministic schedule of rumor
    arrivals, fixed before the first slot runs.

    An arrival process is sampled once, up front, from a dedicated
    {!Crn_prng.Rng.t} stream — not lazily during the run — so a workload's
    offered load is a pure function of the seed: identical at any [--jobs],
    any [--shards], and across engine backends. The process is {e open
    loop}: arrival times ignore how the protocol is keeping up, which is
    what makes saturation measurable (offered rate keeps climbing while
    goodput flattens). *)

type law = Poisson | Uniform
(** [Poisson] draws exponential inter-arrival gaps of mean [1/rate] slots
    (a Poisson process discretized to slots); [Uniform] spaces arrivals
    exactly [1/rate] slots apart. *)

type arrival = {
  slot : int;  (** Earliest slot the rumor may be injected (>= 0). *)
  rumor : int;  (** Rumor id, consecutive from 0 in arrival order. *)
  origin : int;  (** Uniformly random origin node in [0, n). *)
}

val generate :
  rng:Crn_prng.Rng.t -> law:law -> rate:float -> n:int -> rumors:int -> arrival array
(** [generate ~rng ~law ~rate ~n ~rumors] is the full schedule: [rumors]
    arrivals with non-decreasing slots at [rate] rumors per slot
    network-wide. Raises [Invalid_argument] unless [rate > 0], [n > 0] and
    [rumors >= 1]. *)

val span : arrival array -> int
(** Slot of the last arrival; [0] on an empty schedule. *)

val by_origin : n:int -> arrival array -> arrival list array
(** The schedule partitioned into per-origin queues, each in arrival
    order — the shape the protocols consume at decide time. *)
