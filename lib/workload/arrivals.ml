module Rng = Crn_prng.Rng

type law = Poisson | Uniform

type arrival = { slot : int; rumor : int; origin : int }

let generate ~rng ~law ~rate ~n ~rumors =
  if not (rate > 0.0) then invalid_arg "Arrivals.generate: rate must be > 0";
  if n <= 0 then invalid_arg "Arrivals.generate: n must be > 0";
  if rumors < 1 then invalid_arg "Arrivals.generate: rumors must be >= 1";
  let time = ref 0.0 in
  Array.init rumors (fun rumor ->
      let gap =
        match law with
        | Uniform -> 1.0 /. rate
        | Poisson ->
            (* Exponential(rate) via inversion; [1 - u] is in (0, 1], so the
               log is finite. *)
            let u = Rng.float rng 1.0 in
            -.log (1.0 -. u) /. rate
      in
      time := !time +. gap;
      let origin = Rng.int rng n in
      { slot = int_of_float !time; rumor; origin })

let span schedule =
  Array.fold_left (fun acc a -> max acc a.slot) 0 schedule

let by_origin ~n schedule =
  let queues = Array.make n [] in
  Array.iter (fun a -> queues.(a.origin) <- a :: queues.(a.origin)) schedule;
  Array.map List.rev queues
