(** Streaming push-sum aggregation (Kempe–Dobra–Gehrke) on the one-winner
    radio, with exact mass accounting.

    Every node holds a pair [(s, w)], initialized to [(value, 1)]; the
    network average is estimated by [s/w]. Slots alternate in pairs:
    {ul
    {- {e beacon slot} (even): each node flips a coin between broadcasting
       a [Beacon] on a random channel and listening on one. Whoever hears
       the slot's winning beacon — listeners, and losing beaconers, who per
       §2 receive the winner's message — remembers the beaconer and the
       channel.}
    {- {e transfer slot} (odd): each node that heard a beacon answers on
       the same channel with [Transfer {target; ds = s/2; dw = w/2}];
       the beaconer listens where it beaconed. The {e winning} responder
       debits its halves exactly when the engine reports [Won]; the target
       folds them in when it hears the transfer. Losing responders keep
       their mass untouched.}}

    Because the debit ([Won] at the sender) and the credit ([Heard] at the
    target) are two views of the same engine delivery, the transfer is
    atomic in every slot where the target is up and unjammed. When it is
    not, the debited halves would leak — so the machine keeps an in-flight
    ledger: each [Won] debit enters it, each matching fold clears it, and
    whatever remains at the end of the slot is swept into [lost_mass]
    rather than vanishing. The conservation invariant — the property test's
    subject — is that folded mass + in-flight mass + lost mass equals the
    injected total {e exactly} (to float tolerance) after every slot, crash
    faults included.

    Sustained load: each {!Arrivals} rumor injects [+1.0] of mass at its
    origin (recorded as {!Crn_radio.Trace.Injected}), shifting the true
    mean mid-run. The machine finishes when all arrivals are injected and
    every node's estimate is within [tolerance] (relative) of the true
    mean. *)

type msg =
  | Beacon
  | Transfer of { target : int; ds : float; dw : float }

type result = {
  slots_run : int;
  total_arrivals : int;
  injected : int;
  transfers : int;  (** Committed (won) transfers. *)
  lost_mass : float;  (** Mass swept from the in-flight ledger. *)
  lost_weight : float;
  max_drift : float;
      (** Max over slot ends of [|Σs + lost_mass - expected|]. *)
  estimate_error : float;
      (** Max relative deviation of any node's [s/w] from the true mean at
          the end of the run. *)
  converged : int;  (** Nodes within [tolerance] at the end. *)
  completed_at : int option;
  latencies : float array;
      (** Per converged node: slots from the last injection to the slot
          its estimate (re-)entered the tolerance band, >= 1. *)
}

type machine = {
  decide : node:int -> slot:int -> msg Crn_radio.Action.decision;
  feedback : node:int -> slot:int -> msg Crn_radio.Action.feedback -> unit;
  finished : unit -> bool;
  snapshot : slots_run:int -> result;
}

val machine :
  ?tolerance:float ->
  ?values:float array ->
  ?trace:Crn_radio.Trace.t ->
  arrivals:Arrivals.arrival array ->
  availability:Crn_channel.Dynamic.t ->
  rng:Crn_prng.Rng.t ->
  unit ->
  machine
(** Builds the whole-network machine. [tolerance] defaults to [0.02];
    [values] (the initial [s] vector) defaults to the node ids, matching
    the registry's aggregation payload convention. Raises
    [Invalid_argument] if [values] has the wrong length or [tolerance] is
    not positive. *)
