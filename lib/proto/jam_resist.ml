module Dynamic = Crn_channel.Dynamic
module Assignment = Crn_channel.Assignment
module Jammer = Crn_radio.Jammer
module Jamming_reduction = Crn_radio.Jamming_reduction
module Trace = Crn_radio.Trace

let prefix = "jam_resist:"

let wrapped_name inner = prefix ^ inner

let wrap proto =
  let inner = Protocol.name proto in
  let name = wrapped_name inner in
  let exec (env : Protocol.env) =
    let budget =
      match env.Protocol.jammer with Some j -> Jammer.budget j | None -> 0
    in
    if budget = 0 then
      (* Nothing to resist: run the inner protocol in the very same
         environment (a budget-0 jammer absorbs nothing), so the wrapped
         run is byte-identical to the plain one — the transformer is the
         identity off the adversarial path. *)
      let s = Protocol.run proto env in
      { s with Protocol.protocol = name }
    else begin
      let jammer = Option.get env.Protocol.jammer in
      let n = Dynamic.num_nodes env.Protocol.availability in
      let num_channels =
        Assignment.num_channels (Dynamic.at env.Protocol.availability 0)
      in
      if 2 * budget >= num_channels then
        invalid_arg
          (Printf.sprintf
             "%s: jammer budget %d must be below C/2 = %d/2 (Theorem 18)" name
             budget num_channels);
      (match env.Protocol.trace with
      | Some tr ->
          Trace.record tr
            (Trace.Adversary { name = Jammer.name jammer; budget })
      | None -> ());
      (* The Theorem 18 reduction: the node's sensed, per-slot unjammed
         channel set becomes its availability — a legal dynamic CRN with
         >= C - t channels per node and pairwise overlap >= C - 2t — and
         the protocol runs unmodified on it. The jammer stays in the
         environment: whatever it jams is, by construction, a channel the
         wrapped protocol never tunes to, so keeping it is an honest
         no-op rather than an assumption. *)
      let availability =
        Jamming_reduction.sensed_availability ~num_nodes:n ~num_channels
          ~jammer ()
      in
      let k = Jamming_reduction.overlap_guarantee ~num_channels ~budget in
      let s =
        Protocol.run proto { env with Protocol.availability; k }
      in
      { s with Protocol.protocol = name }
    end
  in
  Protocol.of_run ~name
    ~synopsis:
      (Printf.sprintf "Theorem 18 wrapper: %s on the sensed unjammed spectrum"
         inner)
    exec
