(** The adversary laboratory (§7): dynamic-spectrum adversaries, the
    fault/jammer families the chaos harness sweeps, per-slot reassignment
    instrumentation, and the uniformly-checked trial every chaos cell
    runs.

    This module is the library behind [crn_sim chaos --dynamic] and the
    E24 degradation bench: it composes {!Crn_channel.Dynamic}'s per-slot
    channel reassignment with the reactive jammer and the crash/churn
    fault schedules, so the chaos harness acts as a real adversary
    laboratory rather than a passive fault injector. *)

(** {1 Dynamic-spectrum modes} *)

type dynamic_mode =
  | Static  (** The classic §2 model: one assignment for the whole run. *)
  | Rotating
      (** {!Crn_channel.Dynamic.rotating}: labels cyclically drift every
          slot; channel sets (and hence overlaps) are unchanged. *)
  | Reshuffle
      (** Per-slot re-randomization: a fresh assignment drawn from the
          selected topology each slot via a slot-seeded generator
          ({!Crn_channel.Dynamic.reshuffled_shared_core} for the
          shared-core topology) — adversarial churn that still guarantees
          pairwise overlap [>= k] in every slot. *)
  | Isolate
      (** The Theorem 17 conspiracy ({!Crn_channel.Adversary}): a
          leaked-seed label oracle steers the source's predicted channel
          onto a private channel every slot, so a COGCAST source never
          shares a channel with anyone. *)

val all_modes : dynamic_mode list
val mode_name : dynamic_mode -> string
val mode_of_string : string -> (dynamic_mode, string) result

val compatible_protocol : mode:dynamic_mode -> string -> (unit, string) result
(** [compatible_protocol ~mode name] is [Error] (with a user-facing
    message) when the named protocol cannot honor a non-static mode:
    [cogcomp]/[cogcomp_robust] run their phases on the slot-0 snapshot,
    and [jam_resist:*] derives its availability from the jammer. *)

val validate : mode:dynamic_mode -> spec:Crn_channel.Topology.spec -> (unit, string) result
(** Parameter preconditions per mode ([Isolate] needs [k < c] and
    [n >= 2]), as user-facing errors. *)

type armed = {
  availability : Crn_channel.Dynamic.t;
  rng : Crn_prng.Rng.t;
      (** The stream the run must consume. Equal to the input [rng] for
          every mode except [Isolate], where it is [Rng.create leak] for
          the leaked seed the adversary's oracle replays. *)
}

val arm :
  mode:dynamic_mode ->
  topology:Crn_channel.Topology.kind ->
  spec:Crn_channel.Topology.spec ->
  source:int ->
  rng:Crn_prng.Rng.t ->
  armed
(** Build one trial's availability under the given mode, consuming
    whatever randomness the mode needs from [rng]. Deterministic per
    trial stream, so sweeps are identical at any job count. Raises
    [Invalid_argument] with {!validate}'s message on bad parameters. *)

(** {1 Reassignment instrumentation} *)

val instrument :
  trace:Crn_radio.Trace.t -> Crn_channel.Dynamic.t -> Crn_channel.Dynamic.t
(** [instrument ~trace d] is [d] with provenance: the first query of each
    slot [s > 0] compares the slot's rows against slot [s - 1]'s and
    records a {!Crn_radio.Trace.Reassigned} event when any node's row
    changed. Memoization keeps the event stream deterministic (one event
    per reassigned slot, in query order); intended for single-sharded
    instrumented runs, where slots are queried in increasing order. *)

(** {1 Fault/jammer adversaries} *)

type fault_kind = Naps | Churn | Crash | Jam

val all_fault_kinds : fault_kind list
val fault_kind_name : fault_kind -> string
val fault_kind_of_string : string -> (fault_kind, string) result

val adversary_for :
  kind:fault_kind ->
  rate:float ->
  n:int ->
  fault_seed:int64 ->
  Crn_radio.Faults.t option * Crn_radio.Jammer.t option
(** One trial's fault schedule and/or jammer for a chaos cell. [rate] is
    the stationary per-slot down probability ([Naps], [Churn]), the
    crashed-node fraction ([Crash]), or an on/off switch for the reactive
    jammer ([Jam]); [rate <= 0.0] arms nothing. The source (node 0) is
    always spared. Returned reactive jammers are stateful and fresh per
    call — never share one across trials. *)

(** {1 Checked trials} *)

type trial = {
  summary : Protocol.summary;
  violations : Crn_radio.Trace.Check.violation list;
  trace_jsonl : string option;
      (** The full trace as JSONL when there were violations (for
          dump-to-file forensics); [None] on a clean trial. *)
}

val run_trial :
  ?checker:(Crn_radio.Trace.t -> Crn_radio.Trace.Check.violation list) ->
  Protocol.t ->
  (trace:Crn_radio.Trace.t -> Protocol.env) ->
  trial
(** [run_trial proto make_env] runs one fully-instrumented trial: it
    creates a trace, runs [proto] in [make_env ~trace] (the builder must
    thread the trace into the environment), and replays the trace through
    [checker] (default {!Crn_radio.Trace.Check.all}). Every trial is
    checked the same way — there are no "expected to decay" exemptions.
    A violation means the run broke its protocol's trace contract;
    adversaries may slow a protocol down arbitrarily without tripping the
    checkers, but arming a fault family outside a protocol's contract
    (e.g. plain COGCOMP under naps, whose exactly-once accounting is only
    promised fault-free) is {e reported}, never silenced. *)
