(** The uniform protocol layer: one environment record describing a run, one
    summary record every protocol reports in, one module interface for
    protocols expressed as per-node state machines, and one existential
    wrapper the {!Registry} stores.

    Two ways into the layer:
    {ul
    {- {!of_machine} packs a {!module-type-S} — a per-node
       [init]/[decide]/[feedback]/[finished] state machine over
       ['msg Crn_radio.Engine.node] semantics — and drives it through
       {!Crn_radio.Runner} (so any backend, jammer, fault schedule, metrics
       sink or trace applies uniformly). The five rendezvous modules enter
       this way, through the machine builders they export.}
    {- {!of_run} packs an opaque [env -> summary] function for protocols
       whose structure does not fit a single engine run — COGCOMP's four
       phases, for example — delegating to their direct APIs so that a
       registry-dispatched run is byte-identical to a direct call.}} *)

type arrivals = Poisson | Uniform
(** Inter-arrival law for sustained-traffic runs: [Poisson] spaces rumor
    arrivals geometrically (a Bernoulli coin per slot in expectation),
    [Uniform] spaces them evenly at [1/rate] slots. *)

type load = { rate : float; arrivals : arrivals; rumors : int }
(** An open-loop offered load: a batch of [rumors] rumors (at least one)
    arriving at [rate] rumors per slot network-wide (must be positive),
    injected at uniformly random origin nodes regardless of how the
    protocol keeps up; the run then drains until every rumor finishes or
    the budget runs out. *)

type env = {
  availability : Crn_channel.Dynamic.t;
  rng : Crn_prng.Rng.t;  (** The run's randomness; one stream per run. *)
  source : int;
  k : int;  (** Caller-declared pairwise overlap, used to size budgets. *)
  budget_factor : float option;
      (** Scales the protocol's default slot budget; [None] uses each
          protocol's own default constant. *)
  max_slots : int option;
      (** Explicit slot budget, overriding the protocol's default. Rejected
          by multi-phase protocols whose budget is not one number. *)
  jammer : Crn_radio.Jammer.t option;
  faults : Crn_radio.Faults.t option;
  metrics : Crn_radio.Metrics.t option;
  trace : Crn_radio.Trace.t option;
  backend : Crn_radio.Runner.backend;
  shards : int;
      (** Intra-trial shard count. Only the {!Crn_radio.Runner.Soa} backend
          can honor it: with that backend a value [> 1] is folded into the
          backend payload (see {!resolve_backend}), and results are
          shard-count invariant by the SoA determinism contract, so this is
          purely a performance knob. On any other backend a value [> 1]
          raises [Invalid_argument] naming the backend — it is never
          silently ignored. *)
  load : load option;
      (** Offered load for the sustained-traffic workload protocols
          ([gossip], [push_sum]); [None] leaves each workload's default
          rate in force. One-shot protocols ignore it. *)
}

val env :
  ?source:int ->
  ?k:int ->
  ?budget_factor:float ->
  ?max_slots:int ->
  ?jammer:Crn_radio.Jammer.t ->
  ?faults:Crn_radio.Faults.t ->
  ?metrics:Crn_radio.Metrics.t ->
  ?trace:Crn_radio.Trace.t ->
  ?backend:Crn_radio.Runner.backend ->
  ?shards:int ->
  ?load:load ->
  availability:Crn_channel.Dynamic.t ->
  rng:Crn_prng.Rng.t ->
  unit ->
  env
(** Environment constructor; defaults: [source = 0], [k = 1], backend
    {!Crn_radio.Runner.Engine}, [shards = 1], everything else off. Raises
    [Invalid_argument] when [shards < 1] or a supplied load rate is not
    positive. [shards > 1] is validated against the backend at run time
    ({!resolve_backend}), not here, because [cogcast_soa] resolves it
    against its own default backend. *)

val resolve_backend :
  protocol:string ->
  Crn_radio.Runner.backend ->
  shards:int ->
  Crn_radio.Runner.backend
(** [resolve_backend ~protocol backend ~shards] reconciles [env.shards]
    with the backend: [shards = 1] leaves the backend untouched; with a
    {!Crn_radio.Runner.Soa} backend whose own shard count is [1] the
    requested count is folded into the payload, and an equal explicit
    count passes through. Raises [Invalid_argument] (prefixed with
    [protocol]) when [shards > 1] meets a backend that cannot shard a
    trial — any non-SoA backend — or conflicts with an explicit SoA shard
    count. The machine driver behind {!of_machine} applies this to every
    run; [of_run] protocols apply it themselves. *)

type summary = {
  protocol : string;
  slots_run : int;  (** Abstract slots consumed (all phases). *)
  completed : bool;  (** The protocol's own notion of full success. *)
  completed_at : int option;  (** Slot count at completion, when complete. *)
  coverage : float;
      (** Fraction of nodes the run served (informed / met / value
          delivered, per protocol); [1.0] iff [completed] for most. *)
  raw_rounds : int;
      (** Raw radio rounds, when the run used the emulation backend. *)
  failed_sessions : int;
      (** Emulation contention sessions that exhausted their round cap
          (surfaced to broadcasters as {!Crn_radio.Action.No_winner}); [0]
          on the abstract backends. *)
  counters : Crn_radio.Trace.Counters.t;
      (** Engine channel accounting where the protocol surfaces it; a zero
          record for multi-phase protocols that do not. *)
  detail : Crn_stats.Json.t;  (** Protocol-specific result fields. *)
}

val summary_json : summary -> Crn_stats.Json.t
(** The uniform JSON view: every {!summary} field, with [counters]
    flattened into an object. *)

(** A protocol as a per-node state machine. [init] builds the whole-network
    state from the environment (splitting whatever randomness it needs off
    [env.rng] before the runner consumes it); the driver then polls
    [decide]/[feedback] per node and slot exactly as {!Crn_radio.Engine}
    specifies, stops as soon as [finished] holds (a machine finished before
    the first slot runs zero slots), and projects the typed [result] which
    [summarize] renders into the uniform view. *)
module type S = sig
  val name : string
  val synopsis : string

  val shardable : bool
  (** [true] iff the machine's state honors the SoA sharding contract —
      per-node RNG streams, writes confined to the node's own indices,
      commutative aggregates behind [Atomic] — so that on a
      {!Crn_radio.Runner.Soa} backend its decide/feedback callbacks may run
      domain-parallel per shard. Machines drawing decide-time randomness
      from a shared stream or mutating shared non-atomic state must say
      [false]; they still run on the SoA backend (and still benefit from
      its sharded channel phases), just with sequential callbacks. Either
      way results are byte-identical to the {!Crn_radio.Runner.Engine}
      backend at any shard count. *)

  type msg
  type state
  type result

  val budget : env -> int
  (** Default [max_slots] for the environment's dimensions, honoring
      [env.budget_factor]. *)

  val init : env -> state
  val decide : state -> node:int -> slot:int -> msg Crn_radio.Action.decision
  val feedback : state -> node:int -> slot:int -> msg Crn_radio.Action.feedback -> unit
  val finished : state -> bool
  val project : state -> outcome:Crn_radio.Runner.outcome -> result
  val summarize : env -> result -> summary
end

type t
(** A packed protocol: what the {!Registry} stores and the CLI/bench
    dispatch on. *)

val of_machine : (module S) -> t
(** Packs a state machine behind the engine-backed driver. With [env.trace]
    supplied the driver records a {!Crn_radio.Trace.Meta} header and a
    [Phase name] marker before the run, mirroring what COGCAST's direct API
    does, so every registry trace starts with the same preamble. *)

val of_run : name:string -> synopsis:string -> (env -> summary) -> t
(** Packs an opaque runner for protocols that orchestrate their own engine
    runs. *)

val name : t -> string
val synopsis : t -> string

val run : t -> env -> summary
(** Executes the protocol in the environment. Raises [Invalid_argument] for
    environment features the protocol cannot honor (e.g. a [Reference]
    backend on a multi-phase protocol, or [max_slots] on one whose budget is
    not a single number). *)
