(** The central protocol registry: every protocol in the repository —
    COGCAST, COGCOMP, fault-tolerant COGCOMP and all five rendezvous
    baselines — packed behind the {!Protocol} interface under a stable
    name, in one list the CLI and the bench harness dispatch on.

    Names are matched case-insensitively with ['-'] and ['_']
    interchangeable, so [crn_sim run --protocol cogcomp-robust] and
    [--protocol cogcomp_robust] find the same entry.

    A name of the form [jam_resist:<protocol>] resolves to
    [Jam_resist.wrap] applied to the named entry — the Theorem 18
    jamming-resistant variant of every protocol, derivable on demand and
    therefore not listed in {!all}. *)

val all : Protocol.t list
(** Every registered protocol, in presentation order: the paper's own
    protocols first, then the baselines they are measured against. *)

val names : unit -> string list
(** Canonical names of {!all}, in the same order. *)

val find : string -> Protocol.t option
(** Lookup by (normalized) name; [jam_resist:<name>] yields the wrapped
    variant of [<name>]. *)

val find_exn : string -> Protocol.t
(** Like {!find} but raises [Invalid_argument] listing the valid names. *)
