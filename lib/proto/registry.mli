(** The central protocol registry: every protocol in the repository —
    COGCAST, COGCOMP, fault-tolerant COGCOMP and all five rendezvous
    baselines — packed behind the {!Protocol} interface under a stable
    name, in one list the CLI and the bench harness dispatch on.

    Names are matched case-insensitively with ['-'] and ['_']
    interchangeable, so [crn_sim run --protocol cogcomp-robust] and
    [--protocol cogcomp_robust] find the same entry.

    A name of the form [jam_resist:<protocol>] resolves to
    [Jam_resist.wrap] applied to the named entry — the Theorem 18
    jamming-resistant variant of every protocol, derivable on demand and
    therefore not listed in {!all}. *)

val all : Protocol.t list
(** Every registered protocol, in presentation order: the paper's own
    protocols first, then the baselines they are measured against. *)

val names : unit -> string list
(** Canonical names of {!all}, in the same order. *)

val machine_names : unit -> string list
(** Names of the entries that enter through {!Protocol.of_machine} — the
    single-engine-run state machines the generic driver can place on any
    {!Crn_radio.Runner} backend, the struct-of-arrays one included. The
    [of_run] entries (cogcast, cogcast_soa, cogcomp, cogcomp_robust) are
    excluded: they orchestrate their own engine runs and police their own
    backend support. The SoA differential suite and bench E26 sweep this
    list. *)

val find : string -> Protocol.t option
(** Lookup by (normalized) name; [jam_resist:<name>] yields the wrapped
    variant of [<name>]. *)

val find_exn : string -> Protocol.t
(** Like {!find} but raises [Invalid_argument] listing the valid names. *)
