(** The Theorem 18 protocol transformer: any local-broadcast protocol,
    unmodified, becomes an n-uniform jamming-resistant multi-channel
    broadcast.

    The reduction (§7): [n] nodes all own the same [C] channels; an
    adversary jams at most [t < C/2] channels per node per slot. A node
    that senses jamming treats its unjammed channels as that slot's
    availability set — at least [C - t] channels each, pairwise overlap at
    least [C - 2t > 0] — which is a legal {e dynamic} CRN instance, so the
    protocol runs with its usual guarantee under the adjusted parameters.

    {!wrap} implements exactly that: given a jammer of budget [t] in
    [env.jammer], the wrapped protocol executes on
    {!Crn_radio.Jamming_reduction.sensed_availability} (the per-slot
    unjammed sets, padded to uniform size for under-budget adaptive
    jammers) with the declared overlap [k = C - 2t], and an
    {!Crn_radio.Trace.Adversary} provenance event opens any supplied
    trace. With no jammer — or a budget-0 one — the environment is passed
    through untouched, so a fault-free wrapped run is byte-identical to
    the plain protocol (a property test enforces this).

    The registry resolves names of the form [jam_resist:<protocol>] to
    [wrap (find <protocol>)], so every registered protocol has its
    jamming-resistant variant available from the CLI and bench without
    registration. *)

val prefix : string
(** ["jam_resist:"], the registry name prefix. *)

val wrapped_name : string -> string
(** [wrapped_name p] is [prefix ^ p]. *)

val wrap : Protocol.t -> Protocol.t
(** [wrap p] is the jamming-resistant transform of [p], named
    [wrapped_name (Protocol.name p)]. Raises [Invalid_argument] at run
    time when the environment's jammer budget [t] violates [2t < C]
    (Theorem 18's precondition). Note the transform sets the inner run's
    overlap to [C - 2t]; protocols that snapshot the slot-0 assignment
    (e.g. [cogcomp]) see the slot-0 sensed spectrum. *)
