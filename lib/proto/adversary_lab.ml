module Rng = Crn_prng.Rng
module Topology = Crn_channel.Topology
module Dynamic = Crn_channel.Dynamic
module Assignment = Crn_channel.Assignment
module Adversary = Crn_channel.Adversary
module Jammer = Crn_radio.Jammer
module Faults = Crn_radio.Faults
module Trace = Crn_radio.Trace
module Cogcast = Crn_core.Cogcast

(* ------------------------------------------------------------------ *)
(* Dynamic-spectrum adversaries.                                       *)
(* ------------------------------------------------------------------ *)

type dynamic_mode = Static | Rotating | Reshuffle | Isolate

let all_modes = [ Static; Rotating; Reshuffle; Isolate ]

let mode_name = function
  | Static -> "static"
  | Rotating -> "rotating"
  | Reshuffle -> "reshuffle"
  | Isolate -> "isolate"

let mode_of_string s =
  match String.lowercase_ascii s with
  | "static" -> Ok Static
  | "rotating" -> Ok Rotating
  | "reshuffle" -> Ok Reshuffle
  | "isolate" -> Ok Isolate
  | _ ->
      Error
        (Printf.sprintf "unknown dynamic mode %S (try: %s)" s
           (String.concat ", " (List.map mode_name all_modes)))

(* Protocols that delegate to a static direct API snapshot slot 0 of the
   availability, so a non-static mode would be silently ignored — reject
   the combination instead. The jam_resist transformer replaces the
   availability wholesale with the jammer-sensed spectrum, so composing
   it with a CLI-selected dynamic mode would likewise discard the
   request. *)
let compatible_protocol ~mode name =
  if mode = Static then Ok ()
  else
    let pl = String.length Jam_resist.prefix in
    if name = "cogcomp" || name = "cogcomp_robust" then
      Error
        (Printf.sprintf
           "--dynamic %s: %s runs its phases on the slot-0 assignment and \
            cannot honor per-slot reassignment; use cogcast or another \
            engine-driven protocol"
           (mode_name mode) name)
    else if String.length name > pl && String.sub name 0 pl = Jam_resist.prefix
    then
      Error
        (Printf.sprintf
           "--dynamic %s: %s derives its availability from the jammer's \
            sensed spectrum (Theorem 18) and cannot compose with a \
            CLI-selected reassignment policy"
           (mode_name mode) name)
    else Ok ()

let validate ~mode ~spec =
  let { Topology.n; c; k } = spec in
  match mode with
  | Isolate when k >= c ->
      Error
        (Printf.sprintf
           "--dynamic isolate: the Theorem 17 adversary needs k < c (got \
            k=%d, c=%d); with k = c the source's whole set is shared and \
            isolation is impossible"
           k c)
  | Isolate when n < 2 -> Error "--dynamic isolate: needs at least 2 nodes"
  | _ -> Ok ()

type armed = { availability : Dynamic.t; rng : Rng.t }

let arm ~mode ~topology ~spec ~source ~rng =
  (match validate ~mode ~spec with Ok () -> () | Error m -> invalid_arg m);
  match mode with
  | Static -> { availability = Dynamic.static (Topology.generate topology rng spec); rng }
  | Rotating ->
      { availability = Dynamic.rotating (Topology.generate topology rng spec); rng }
  | Reshuffle ->
      (* The shared-core churner is the library's own construction; every
         other topology kind gets the same per-slot re-randomization via a
         slot-seeded generator, which preserves the >= k overlap invariant
         because each slot's assignment guarantees it by construction. *)
      let seed = Rng.split rng in
      let availability =
        match topology with
        | Topology.Shared_core -> Dynamic.reshuffled_shared_core ~seed spec
        | _ ->
            let base_seed = Rng.bits64 seed in
            Dynamic.of_fun ~num_nodes:spec.Topology.n
              ~channels_per_node:spec.Topology.c (fun slot ->
                let slot_seed =
                  Crn_prng.Splitmix.mix64
                    (Int64.logxor base_seed (Int64.of_int slot))
                in
                Topology.generate topology (Rng.of_int64 slot_seed) spec)
      in
      { availability; rng }
  | Isolate ->
      (* The Theorem 17 conspiracy with a genuinely leaked seed: the trial
         runs on [Rng.create leak] and the adversary's oracle replays that
         very stream, so a COGCAST source is isolated forever (E20). The
         leak is derived from the trial's own stream, keeping sweeps
         deterministic at any job count. *)
      let leak =
        Int64.to_int (Int64.logand (Rng.bits64 rng) 0x3FFF_FFFF_FFFF_FFFFL)
      in
      let { Topology.n; c; _ } = spec in
      let availability =
        Adversary.isolate_source ~spec ~source
          ~predict_source_label:(Cogcast.label_oracle ~seed:leak ~n ~c ~node:source)
      in
      { availability; rng = Rng.create leak }

(* ------------------------------------------------------------------ *)
(* Reassignment instrumentation.                                       *)
(* ------------------------------------------------------------------ *)

let instrument ~trace inner =
  let n = Dynamic.num_nodes inner in
  let c = Dynamic.channels_per_node inner in
  Dynamic.of_fun ~num_nodes:n ~channels_per_node:c (fun slot ->
      let a = Dynamic.at inner slot in
      if slot > 0 then begin
        let prev = Dynamic.at inner (slot - 1) in
        let changed = ref 0 in
        for node = 0 to n - 1 do
          let differs = ref false in
          for label = 0 to c - 1 do
            if
              Assignment.global_of_local a ~node ~label
              <> Assignment.global_of_local prev ~node ~label
            then differs := true
          done;
          if !differs then incr changed
        done;
        if !changed > 0 then
          Trace.record trace (Trace.Reassigned { slot; nodes_changed = !changed })
      end;
      a)

(* ------------------------------------------------------------------ *)
(* Fault/jammer adversaries (the chaos families).                      *)
(* ------------------------------------------------------------------ *)

type fault_kind = Naps | Churn | Crash | Jam

let all_fault_kinds = [ Naps; Churn; Crash; Jam ]

let fault_kind_name = function
  | Naps -> "naps"
  | Churn -> "churn"
  | Crash -> "crash"
  | Jam -> "jam"

let fault_kind_of_string s =
  match String.lowercase_ascii s with
  | "naps" -> Ok Naps
  | "churn" -> Ok Churn
  | "crash" -> Ok Crash
  | "jam" -> Ok Jam
  | _ ->
      Error
        (Printf.sprintf "fault kind must be one of %s (got %S)"
           (String.concat ", " (List.map fault_kind_name all_fault_kinds))
           s)

(* [rate] is the stationary per-slot down probability (naps, churn), the
   fraction of crashed nodes (crash), or just on/off for the reactive
   jammer (jam). The source is always spared — a dead source measures
   nothing. Reactive jammers are stateful: one fresh instance per call,
   never shared across trials. *)
let adversary_for ~kind ~rate ~n ~fault_seed =
  if rate <= 0.0 then (None, None)
  else
    match kind with
    | Naps ->
        ( Some (Faults.spare (Faults.random_naps ~seed:fault_seed ~rate) ~node:0),
          None )
    | Churn ->
        let mean_down = 8.0 in
        let mean_up = mean_down *. (1.0 -. rate) /. rate in
        ( Some
            (Faults.spare
               (Faults.bernoulli_churn ~seed:fault_seed ~mean_up ~mean_down)
               ~node:0),
          None )
    | Crash ->
        let crashed = max 1 (int_of_float (Float.round (rate *. float_of_int n))) in
        let rec build i acc =
          if i > crashed then acc
          else
            build (i + 1)
              (Faults.union acc (Faults.crash ~node:(i mod n) ~from_slot:(2 * i)))
        in
        if n < 2 then (None, None)
        else (Some (Faults.spare (build 1 Faults.none) ~node:0), None)
    | Jam -> (None, Some (Jammer.reactive ()))

(* ------------------------------------------------------------------ *)
(* One checked trial.                                                  *)
(* ------------------------------------------------------------------ *)

type trial = {
  summary : Protocol.summary;
  violations : Trace.Check.violation list;
  trace_jsonl : string option;
}

let run_trial ?(checker = Trace.Check.all) proto make_env =
  let trace = Trace.create () in
  let summary = Protocol.run proto (make_env ~trace) in
  let violations = checker trace in
  let trace_jsonl =
    if violations = [] then None else Some (Trace.to_jsonl trace)
  in
  { summary; violations; trace_jsonl }
