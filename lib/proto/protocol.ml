module Dynamic = Crn_channel.Dynamic
module Assignment = Crn_channel.Assignment
module Engine = Crn_radio.Engine
module Runner = Crn_radio.Runner
module Trace = Crn_radio.Trace
module Json = Crn_stats.Json

type arrivals = Poisson | Uniform

type load = { rate : float; arrivals : arrivals; rumors : int }

type env = {
  availability : Dynamic.t;
  rng : Crn_prng.Rng.t;
  source : int;
  k : int;
  budget_factor : float option;
  max_slots : int option;
  jammer : Crn_radio.Jammer.t option;
  faults : Crn_radio.Faults.t option;
  metrics : Crn_radio.Metrics.t option;
  trace : Trace.t option;
  backend : Runner.backend;
  shards : int;
  load : load option;
}

let env ?(source = 0) ?(k = 1) ?budget_factor ?max_slots ?jammer ?faults ?metrics
    ?trace ?(backend = Runner.Engine) ?(shards = 1) ?load ~availability ~rng () =
  if shards < 1 then invalid_arg "Protocol.env: shards must be >= 1";
  (match load with
  | Some { rate; _ } when not (rate > 0.0) ->
      invalid_arg "Protocol.env: load rate must be > 0"
  | Some { rumors; _ } when rumors < 1 ->
      invalid_arg "Protocol.env: load rumors must be >= 1"
  | _ -> ());
  {
    availability;
    rng;
    source;
    k;
    budget_factor;
    max_slots;
    jammer;
    faults;
    metrics;
    trace;
    backend;
    shards;
    load;
  }

type summary = {
  protocol : string;
  slots_run : int;
  completed : bool;
  completed_at : int option;
  coverage : float;
  raw_rounds : int;
  failed_sessions : int;
  counters : Trace.Counters.t;
  detail : Json.t;
}

let summary_json s =
  let c = s.counters in
  Json.Obj
    [
      ("protocol", Json.String s.protocol);
      ("slots_run", Json.Int s.slots_run);
      ("completed", Json.Bool s.completed);
      ( "completed_at",
        match s.completed_at with Some v -> Json.Int v | None -> Json.Null );
      ("coverage", Json.Float s.coverage);
      ("raw_rounds", Json.Int s.raw_rounds);
      ("failed_sessions", Json.Int s.failed_sessions);
      ( "counters",
        Json.Obj
          [
            ("slots_run", Json.Int c.Trace.Counters.slots_run);
            ("broadcasts", Json.Int c.Trace.Counters.broadcasts);
            ("wins", Json.Int c.Trace.Counters.wins);
            ("contended", Json.Int c.Trace.Counters.contended);
            ("deliveries", Json.Int c.Trace.Counters.deliveries);
            ("jammed_actions", Json.Int c.Trace.Counters.jammed_actions);
          ] );
      ("detail", s.detail);
    ]

module type S = sig
  val name : string
  val synopsis : string
  val shardable : bool

  type msg
  type state
  type result

  val budget : env -> int
  val init : env -> state
  val decide : state -> node:int -> slot:int -> msg Crn_radio.Action.decision
  val feedback : state -> node:int -> slot:int -> msg Crn_radio.Action.feedback -> unit
  val finished : state -> bool
  val project : state -> outcome:Runner.outcome -> result
  val summarize : env -> result -> summary
end

(* Reconcile the two places a shard count can enter a run: [env.shards]
   (the CLI's [--shards], historically only meaningful to cogcast_soa) and
   the shard count carried inside a [Runner.Soa] backend payload. Only the
   SoA backend can honor intra-trial sharding, so any other backend with
   [shards > 1] is a user error we must surface, not silently ignore. *)
let resolve_backend ~protocol (backend : Runner.backend) ~shards =
  if shards < 1 then invalid_arg (protocol ^ ": shards must be >= 1");
  if shards = 1 then backend
  else
    match backend with
    | Runner.Soa { shards = 1; dense_channel_limit } ->
        Runner.Soa { shards; dense_channel_limit }
    | Runner.Soa { shards = s; _ } when s = shards -> backend
    | Runner.Soa { shards = s; _ } ->
        invalid_arg
          (Printf.sprintf
             "%s: shards %d conflicts with the soa backend's shard count %d"
             protocol shards s)
    | (Runner.Engine | Runner.Emulation _ | Runner.Reference) as b ->
        invalid_arg
          (Printf.sprintf
             "%s: shards %d requested but the %s backend cannot shard a \
              trial; use the soa backend"
             protocol shards (Runner.backend_name b))

type t = { p_name : string; p_synopsis : string; p_exec : env -> summary }

let name t = t.p_name
let synopsis t = t.p_synopsis
let run t env = t.p_exec env

let of_run ~name ~synopsis exec = { p_name = name; p_synopsis = synopsis; p_exec = exec }

(* The generic driver: machine -> engine nodes -> Runner -> projection. The
   trace preamble (Meta header, then a phase marker named after the
   protocol) matches what Cogcast.run emits, so registry traces are
   uniform regardless of how the protocol entered the layer. *)
let exec_machine (module P : S) env =
  let n = Dynamic.num_nodes env.availability in
  let c = Dynamic.channels_per_node env.availability in
  (match env.trace with
  | Some tr ->
      let channels = Assignment.num_channels (Dynamic.at env.availability 0) in
      Trace.record tr (Trace.Meta { n; channels; c; source = env.source });
      Trace.record tr (Trace.Phase { name = P.name })
  | None -> ());
  let st = P.init env in
  let nodes =
    Array.init n (fun v ->
        Engine.node ~id:v
          ~decide:(fun ~slot -> P.decide st ~node:v ~slot)
          ~feedback:(fun ~slot fb -> P.feedback st ~node:v ~slot fb))
  in
  let max_slots =
    match env.max_slots with Some m -> m | None -> P.budget env
  in
  (* A machine that is complete before the first slot runs zero slots. *)
  let max_slots = if P.finished st then 0 else max_slots in
  let stop ~slot:_ = P.finished st in
  let backend = resolve_backend ~protocol:P.name env.backend ~shards:env.shards in
  let runner =
    Runner.make ~machine_parallel:P.shardable ?jammer:env.jammer
      ?faults:env.faults ?metrics:env.metrics ?trace:env.trace ~backend
      ~availability:env.availability ~rng:env.rng ()
  in
  let outcome = runner.Runner.run ~stop ~nodes ~max_slots () in
  let s = P.summarize env (P.project st ~outcome) in
  (* The driver owns the channel accounting: whatever the machine reported,
     the engine's own counters and the emulation's raw-round/failed-session
     cost are authoritative for the run that actually happened. *)
  {
    s with
    raw_rounds = outcome.Runner.raw_rounds;
    failed_sessions = outcome.Runner.failed_sessions;
    counters = outcome.Runner.counters;
  }

let of_machine (module P : S) =
  { p_name = P.name; p_synopsis = P.synopsis; p_exec = exec_machine (module P) }
