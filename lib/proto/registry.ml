module Dynamic = Crn_channel.Dynamic
module Assignment = Crn_channel.Assignment
module Runner = Crn_radio.Runner
module Trace = Crn_radio.Trace
module Json = Crn_stats.Json
module Cogcast = Crn_core.Cogcast
module Cogcomp = Crn_core.Cogcomp
module Cogcomp_robust = Crn_core.Cogcomp_robust
module Aggregate = Crn_core.Aggregate
module Complexity = Crn_core.Complexity

let dims (env : Protocol.env) =
  (Dynamic.num_nodes env.availability, Dynamic.channels_per_node env.availability)

(* Identical to the rendezvous modules' [run_static] sizing, so a registry
   run and a direct [run_static] call agree on the budget. *)
let scaled_budget (env : Protocol.env) base =
  let factor = Option.value env.budget_factor ~default:8.0 in
  max 1 (int_of_float (Float.ceil (factor *. base)))

let frac num den = float_of_int num /. float_of_int den

(* The CLI/bench aggregation payload: every aggregation protocol folds the
   integer sum of the node ids 0..n-1, so completeness is checkable against
   the closed form n(n-1)/2. *)
let id_values n = Array.init n (fun v -> v)

(* Environment features the multi-phase delegating entries cannot honor are
   rejected loudly rather than silently dropped. *)
let reject_metrics_and_max_slots ~name (env : Protocol.env) =
  if env.metrics <> None then
    invalid_arg
      (name
     ^ ": per-node metrics are not plumbed through this protocol; derive \
        metrics from the trace instead");
  if env.max_slots <> None then
    invalid_arg
      (name ^ ": max_slots does not apply to a multi-phase protocol; use \
              budget_factor")

let require_plain ~name (env : Protocol.env) =
  (match env.backend with
  | Runner.Engine -> ()
  | (Runner.Emulation _ | Runner.Reference | Runner.Soa _) as b ->
      invalid_arg
        (Printf.sprintf "%s: the %s backend is not supported; only engine"
           name (Runner.backend_name b)));
  ignore
    (Protocol.resolve_backend ~protocol:name env.backend ~shards:env.shards);
  reject_metrics_and_max_slots ~name env

(* ---- the paper's protocols: delegate to the direct APIs so that a
   registry-dispatched run is byte-identical to a direct call ---- *)

let cogcast =
  Protocol.of_run ~name:"cogcast"
    ~synopsis:"Epidemic local broadcast in O((c/k) max{1,c/n} lg n) slots (S4, Thm 4)"
    (fun env ->
      let n, c = dims env in
      let max_slots =
        match env.max_slots with
        | Some m -> m
        | None ->
            Complexity.cogcast_slots ?factor:env.budget_factor ~n ~c ~k:env.k ()
      in
      let backend =
        Protocol.resolve_backend ~protocol:"cogcast" env.backend
          ~shards:env.shards
      in
      let r =
        Cogcast.run ?jammer:env.jammer ?faults:env.faults ?metrics:env.metrics
          ?trace:env.trace ~backend ~source:env.source
          ~availability:env.availability ~rng:env.rng ~max_slots ()
      in
      {
        Protocol.protocol = "cogcast";
        slots_run = r.Cogcast.slots_run;
        completed = r.Cogcast.completed_at <> None;
        completed_at = r.Cogcast.completed_at;
        coverage = frac r.Cogcast.informed_count n;
        raw_rounds = r.Cogcast.raw_rounds;
        failed_sessions = r.Cogcast.failed_sessions;
        counters = r.Cogcast.counters;
        detail = Json.Obj [ ("informed_count", Json.Int r.Cogcast.informed_count) ];
      })

(* Same protocol, struct-of-arrays engine: the scaling path. The default
   [Runner.Engine] backend is reinterpreted as "the SoA default" so the
   historic UX ([--protocol cogcast_soa --shards 8], no backend flag)
   keeps working; an explicit [Soa] backend (carrying a
   [dense_channel_limit]) passes through, reconciled against [env.shards]
   by {!Protocol.resolve_backend}. Everything observable (result fields,
   counters, traces) is byte-identical to the [cogcast] entry by Soa's
   determinism contract, which test/test_soa.ml enforces differentially. *)
let cogcast_soa =
  Protocol.of_run ~name:"cogcast_soa"
    ~synopsis:
      "COGCAST on the struct-of-arrays engine: dense node state, intra-trial sharding"
    (fun env ->
      let backend =
        match env.backend with
        | Runner.Engine -> Runner.Soa { shards = 1; dense_channel_limit = None }
        | Runner.Soa _ as b -> b
        | (Runner.Emulation _ | Runner.Reference) as b ->
            invalid_arg
              (Printf.sprintf
                 "cogcast_soa: the %s backend is not supported; only engine \
                  (meaning the SoA default) or soa"
                 (Runner.backend_name b))
      in
      let shards, dense_channel_limit =
        match
          Protocol.resolve_backend ~protocol:"cogcast_soa" backend
            ~shards:env.shards
        with
        | Runner.Soa { shards; dense_channel_limit } ->
            (shards, dense_channel_limit)
        | _ -> assert false
      in
      let n, c = dims env in
      let max_slots =
        match env.max_slots with
        | Some m -> m
        | None ->
            Complexity.cogcast_slots ?factor:env.budget_factor ~n ~c ~k:env.k ()
      in
      let r =
        Crn_core.Cogcast_soa.run ~shards ?dense_channel_limit ?jammer:env.jammer
          ?faults:env.faults ?metrics:env.metrics ?trace:env.trace
          ~source:env.source ~availability:env.availability ~rng:env.rng
          ~max_slots ()
      in
      {
        Protocol.protocol = "cogcast_soa";
        slots_run = r.Cogcast.slots_run;
        completed = r.Cogcast.completed_at <> None;
        completed_at = r.Cogcast.completed_at;
        coverage = frac r.Cogcast.informed_count n;
        raw_rounds = 0;
        failed_sessions = 0;
        counters = r.Cogcast.counters;
        detail = Json.Obj [ ("informed_count", Json.Int r.Cogcast.informed_count) ];
      })

let cogcomp =
  Protocol.of_run ~name:"cogcomp"
    ~synopsis:"Four-phase data aggregation in O((c/k) max{1,c/n} lg n + n) slots (S5, Thm 10)"
    (fun env ->
      reject_metrics_and_max_slots ~name:"cogcomp" env;
      ignore
        (Protocol.resolve_backend ~protocol:"cogcomp" env.backend
           ~shards:env.shards);
      let n, _ = dims env in
      let assignment = Dynamic.at env.availability 0 in
      let r, raw_rounds =
        match env.backend with
        | Runner.Reference ->
            invalid_arg "cogcomp: the reference backend is not supported"
        | Runner.Soa _ ->
            invalid_arg
              "cogcomp: the soa backend is not supported (multi-phase \
               protocol; each phase orchestrates its own engine runs)"
        | Runner.Engine ->
            let r =
              Cogcomp.run ?jammer:env.jammer ?faults:env.faults
                ?budget_factor:env.budget_factor ?trace:env.trace
                ~monoid:Aggregate.sum ~values:(id_values n) ~source:env.source
                ~assignment ~k:env.k ~rng:env.rng ()
            in
            (r, 0)
        | Runner.Emulation { strategy; session_cap } ->
            Cogcomp.run_emulated ~strategy ?session_cap ?jammer:env.jammer
              ?faults:env.faults ?budget_factor:env.budget_factor
              ?trace:env.trace ~monoid:Aggregate.sum ~values:(id_values n)
              ~source:env.source ~assignment ~k:env.k ~rng:env.rng ()
      in
      let terminated =
        Array.fold_left (fun acc t -> if t then acc + 1 else acc) 0 r.Cogcomp.terminated
      in
      {
        Protocol.protocol = "cogcomp";
        slots_run = r.Cogcomp.total_slots;
        completed = r.Cogcomp.complete;
        completed_at =
          (if r.Cogcomp.complete then Some r.Cogcomp.total_slots else None);
        coverage = frac terminated n;
        raw_rounds;
        (* The four-phase driver does not count per-session failures; a
           failed session still surfaces to the phase as a lost slot. *)
        failed_sessions = 0;
        counters = Trace.Counters.create ();
        detail =
          Json.Obj
            [
              ( "root_value",
                match r.Cogcomp.root_value with
                | Some v -> Json.Int v
                | None -> Json.Null );
              ("phase1_slots", Json.Int r.Cogcomp.phase1_slots);
              ("phase2_slots", Json.Int r.Cogcomp.phase2_slots);
              ("phase3_slots", Json.Int r.Cogcomp.phase3_slots);
              ("phase4_slots", Json.Int r.Cogcomp.phase4_slots);
              ("mediators", Json.Int (List.length r.Cogcomp.mediators));
            ];
      })

let cogcomp_robust =
  Protocol.of_run ~name:"cogcomp_robust"
    ~synopsis:"Fault-tolerant COGCOMP: watchdogs, mediator re-election, acked drain"
    (fun env ->
      require_plain ~name:"cogcomp_robust" env;
      let n, _ = dims env in
      let assignment = Dynamic.at env.availability 0 in
      let r =
        Cogcomp_robust.run ?jammer:env.jammer ?faults:env.faults
          ?budget_factor:env.budget_factor ?trace:env.trace
          ~monoid:Aggregate.sum ~values:(id_values n) ~source:env.source
          ~assignment ~k:env.k ~rng:env.rng ()
      in
      {
        Protocol.protocol = "cogcomp_robust";
        slots_run = r.Cogcomp_robust.total_slots;
        completed = r.Cogcomp_robust.complete;
        completed_at =
          (if r.Cogcomp_robust.complete then Some r.Cogcomp_robust.total_slots
           else None);
        coverage = frac r.Cogcomp_robust.coverage n;
        raw_rounds = 0;
        failed_sessions = 0;
        counters = Trace.Counters.create ();
        detail =
          Json.Obj
            [
              ("root_value", Json.Int r.Cogcomp_robust.root_value);
              ("lost", Json.Int (List.length r.Cogcomp_robust.lost));
              ("reelections", Json.Int r.Cogcomp_robust.reelections);
              ("retries", Json.Int r.Cogcomp_robust.retries);
              ("phase1_slots", Json.Int r.Cogcomp_robust.phase1_slots);
              ("phase4_slots", Json.Int r.Cogcomp_robust.phase4_slots);
            ];
      })

(* ---- the rendezvous baselines: state machines behind the generic
   driver ---- *)

module Broadcast_baseline_p = struct
  module B = Crn_rendezvous.Broadcast_baseline

  let name = "broadcast_baseline"
  let synopsis = "Straw-man broadcast: rendezvous against a transmitting source (S1)"

  (* Per-node RNG streams, own-index writes, atomic informed counter. *)
  let shardable = true

  type msg = B.msg
  type state = B.machine
  type result = B.result

  let budget env =
    let n, c = dims env in
    scaled_budget env (Complexity.rendezvous_broadcast ~n ~c ~k:env.Protocol.k)

  let init (env : Protocol.env) =
    B.machine ~source:env.source ~availability:env.availability ~rng:env.rng

  let decide (st : state) = st.B.decide
  let feedback (st : state) = st.B.feedback
  let finished (st : state) = st.B.finished ()

  let project (st : state) ~(outcome : Runner.outcome) =
    st.B.snapshot ~slots_run:outcome.Runner.slots_run

  let summarize env (r : result) =
    let n, _ = dims env in
    {
      Protocol.protocol = name;
      slots_run = r.B.slots_run;
      completed = r.B.completed_at <> None;
      completed_at = r.B.completed_at;
      coverage = frac r.B.informed_count n;
      raw_rounds = 0;
      failed_sessions = 0;
      counters = Trace.Counters.create ();
      detail = Json.Obj [ ("informed_count", Json.Int r.B.informed_count) ];
    }
end

module Aggregation_baseline_p (Variant : sig
  val name : string
  val synopsis : string
  val ack : bool
end) =
struct
  module A = Crn_rendezvous.Aggregation_baseline

  let name = Variant.name
  let synopsis = Variant.synopsis

  (* Only the source's feedback mutates the shared accumulator, and each
     non-source node writes its own indices: single-writer, shard-safe. *)
  let shardable = true

  type msg = int A.msg
  type state = int A.machine
  type result = int A.result

  let budget env =
    let n, c = dims env in
    scaled_budget env (Complexity.rendezvous_aggregation ~n ~c ~k:env.Protocol.k)

  let init (env : Protocol.env) =
    let n, _ = dims env in
    A.machine ~ack:Variant.ack ~monoid:Aggregate.sum ~values:(id_values n)
      ~source:env.source ~availability:env.availability ~rng:env.rng ()

  let decide (st : state) = st.A.decide
  let feedback (st : state) = st.A.feedback
  let finished (st : state) = st.A.finished ()

  let project (st : state) ~(outcome : Runner.outcome) =
    st.A.snapshot ~slots_run:outcome.Runner.slots_run

  let summarize env (r : result) =
    let n, _ = dims env in
    {
      Protocol.protocol = name;
      slots_run = r.A.slots_run;
      completed = r.A.completed_at <> None;
      completed_at = r.A.completed_at;
      coverage = frac r.A.received_count n;
      raw_rounds = 0;
      failed_sessions = 0;
      counters = Trace.Counters.create ();
      detail =
        Json.Obj
          [
            ("received_count", Json.Int r.A.received_count);
            ( "root_value",
              match r.A.root_value with Some v -> Json.Int v | None -> Json.Null );
          ];
    }
end

module Aggregation_ack_p = Aggregation_baseline_p (struct
  let name = "aggregation_baseline"
  let synopsis = "Straw-man aggregation with free ACKs: fair-contention lower bound (S1)"
  let ack = true
end)

module Aggregation_honest_p = Aggregation_baseline_p (struct
  let name = "aggregation_baseline_honest"
  let synopsis = "Straw-man aggregation, no ACKs: source coupon-collects all values (S1)"
  let ack = false
end)

module Random_hop_p = struct
  module R = Crn_rendezvous.Random_hop

  let name = "random_hop"
  let synopsis = "Uniform random hopping: the source beacons until it has met every node (S1)"

  (* Decide-time draws come from one shared stream whose consumption
     order is node order — not shardable without changing the law. *)
  let shardable = false

  type msg = R.msg
  type state = R.machine
  type result = R.result

  let budget env =
    let n, c = dims env in
    scaled_budget env (Complexity.rendezvous_broadcast ~n ~c ~k:env.Protocol.k)

  let init (env : Protocol.env) =
    R.machine ~source:env.source ~availability:env.availability ~rng:env.rng

  let decide (st : state) = st.R.decide
  let feedback (st : state) = st.R.feedback
  let finished (st : state) = st.R.finished ()

  let project (st : state) ~(outcome : Runner.outcome) =
    st.R.snapshot ~slots_run:outcome.Runner.slots_run

  let summarize env (r : result) =
    let n, _ = dims env in
    {
      Protocol.protocol = name;
      slots_run = r.R.slots_run;
      completed = r.R.completed_at <> None;
      completed_at = r.R.completed_at;
      coverage = frac r.R.met_count n;
      raw_rounds = 0;
      failed_sessions = 0;
      counters = Trace.Counters.create ();
      detail = Json.Obj [ ("met_count", Json.Int r.R.met_count) ];
    }
end

module Seq_scan_p = struct
  module S = Crn_rendezvous.Seq_scan

  let name = "seq_scan"
  let synopsis = "Hop-together sequential scan over the global spectrum, O(C/k) (S6)"

  (* Deterministic schedule; own-index writes, atomic informed counter. *)
  let shardable = true

  type msg = S.msg
  type state = S.machine
  type result = S.result

  (* E10's budget: 8 x C (the spectrum size), i.e. budget_factor x C. *)
  let budget (env : Protocol.env) =
    let big_c = Assignment.num_channels (Dynamic.at env.availability 0) in
    scaled_budget env (float_of_int big_c)

  let init (env : Protocol.env) =
    S.machine ~source:env.source ~assignment:(Dynamic.at env.availability 0)

  let decide (st : state) = st.S.decide
  let feedback (st : state) = st.S.feedback
  let finished (st : state) = st.S.finished ()

  let project (st : state) ~(outcome : Runner.outcome) =
    st.S.snapshot ~slots_run:outcome.Runner.slots_run

  let summarize env (r : result) =
    let n, _ = dims env in
    {
      Protocol.protocol = name;
      slots_run = r.S.slots_run;
      completed = r.S.completed_at <> None;
      completed_at = r.S.completed_at;
      coverage = frac r.S.informed_count n;
      raw_rounds = 0;
      failed_sessions = 0;
      counters = Trace.Counters.create ();
      detail = Json.Obj [ ("informed_count", Json.Int r.S.informed_count) ];
    }
end

module Deterministic_p = struct
  module D = Crn_rendezvous.Deterministic

  let name = "deterministic"
  let synopsis = "Jump-stay deterministic hopping schedule driving an epidemic broadcast (S3)"

  (* Deterministic schedule; own-index writes, atomic informed counter. *)
  let shardable = true

  type msg = D.msg
  type state = D.machine
  type result = D.broadcast_result

  (* Pair rendezvous under jump-stay needs O(P) slots within a round of 3P
     (P the smallest prime >= C); the epidemic chain multiplies by the
     spread depth, bounded by lg n in expectation. *)
  let budget (env : Protocol.env) =
    let n, _ = dims env in
    let big_c = Assignment.num_channels (Dynamic.at env.availability 0) in
    let p = D.smallest_prime_geq big_c in
    scaled_budget env (float_of_int (3 * p) *. Complexity.lg (float_of_int n))

  let init (env : Protocol.env) =
    D.machine ~make_schedule:D.jump_stay ~source:env.source
      ~assignment:(Dynamic.at env.availability 0)

  let decide (st : state) = st.D.decide
  let feedback (st : state) = st.D.feedback
  let finished (st : state) = st.D.finished ()

  let project (st : state) ~(outcome : Runner.outcome) =
    st.D.snapshot ~slots_run:outcome.Runner.slots_run

  let summarize env (r : result) =
    let n, _ = dims env in
    {
      Protocol.protocol = name;
      slots_run = r.D.slots_run;
      completed = r.D.completed_at <> None;
      completed_at = r.D.completed_at;
      coverage = frac r.D.informed_count n;
      raw_rounds = 0;
      failed_sessions = 0;
      counters = Trace.Counters.create ();
      detail = Json.Obj [ ("informed_count", Json.Int r.D.informed_count) ];
    }
end

(* ---- the sustained-traffic workloads: open-loop arrivals feeding
   machines from lib/workload ---- *)

module Workload = struct
  module Arrivals = Crn_workload.Arrivals

  (* Per-protocol offered load when the environment leaves [env.load]
     unset: a small batch at a modest rate, sized so the registry-wide
     suites (default dims, fault schedules) terminate quickly. *)
  let resolve (env : Protocol.env) ~default = Option.value env.load ~default

  (* The arrival schedule is drawn from a stream split off [env.rng]
     before anything else touches it, so offered load is a function of the
     seed alone — identical across backends, [--jobs] and [--shards]. *)
  let arrivals (env : Protocol.env) ~default =
    let { Protocol.rate; arrivals; rumors } = resolve env ~default in
    let law =
      match arrivals with
      | Protocol.Poisson -> Arrivals.Poisson
      | Protocol.Uniform -> Arrivals.Uniform
    in
    let n, _ = dims env in
    Arrivals.generate ~rng:(Crn_prng.Rng.split env.rng) ~law ~rate ~n ~rumors

  (* Arrival span with 4x slack (Poisson tails), since budgets must not
     consume randomness. *)
  let span_bound { Protocol.rate; rumors; _ } =
    4 * max 1 (int_of_float (Float.ceil (float_of_int rumors /. rate)))

  let percentile_json latencies p =
    if Array.length latencies = 0 then Json.Null
    else Json.Float (Crn_stats.Summary.percentile latencies p)

  let latency_fields latencies =
    [
      ("latency_p50", percentile_json latencies 50.0);
      ("latency_p95", percentile_json latencies 95.0);
      ("latency_p99", percentile_json latencies 99.0);
      ( "latencies",
        Json.List (Array.to_list (Array.map (fun l -> Json.Float l) latencies)) );
    ]
end

module Gossip_p = struct
  module G = Crn_workload.Gossip

  let name = "gossip"
  let synopsis = "Multi-rumor epidemic broadcast under open-loop rumor arrivals"

  (* Shared non-atomic rumor ledgers mutated from feedback. *)
  let shardable = false

  type msg = G.msg
  type state = G.machine
  type result = G.result

  let default_load = { Protocol.rate = 0.2; arrivals = Protocol.Poisson; rumors = 4 }

  let budget (env : Protocol.env) =
    let n, c = dims env in
    let load = Workload.resolve env ~default:default_load in
    let per =
      Complexity.cogcast_slots ?factor:env.budget_factor ~n ~c ~k:env.k ()
    in
    Workload.span_bound load + (load.Protocol.rumors * per)

  let init (env : Protocol.env) =
    let arrivals = Workload.arrivals env ~default:default_load in
    G.machine ?trace:env.trace ~arrivals ~availability:env.availability
      ~rng:env.rng ()

  let decide (st : state) = st.G.decide
  let feedback (st : state) = st.G.feedback
  let finished (st : state) = st.G.finished ()

  let project (st : state) ~(outcome : Runner.outcome) =
    st.G.snapshot ~slots_run:outcome.Runner.slots_run

  let summarize _env (r : result) =
    let throughput =
      if r.G.slots_run > 0 then frac r.G.completed r.G.slots_run else 0.0
    in
    {
      Protocol.protocol = name;
      slots_run = r.G.slots_run;
      completed = r.G.completed = r.G.total_rumors;
      completed_at = r.G.completed_at;
      coverage = (if r.G.total_rumors = 0 then 1.0 else frac r.G.completed r.G.total_rumors);
      raw_rounds = 0;
      failed_sessions = 0;
      counters = Trace.Counters.create ();
      detail =
        Json.Obj
          ([
             ("total_rumors", Json.Int r.G.total_rumors);
             ("injected", Json.Int r.G.injected);
             ("completed_rumors", Json.Int r.G.completed);
             ("deliveries", Json.Int r.G.deliveries);
             ("retired", Json.Int r.G.retired);
             ("throughput", Json.Float throughput);
           ]
          @ Workload.latency_fields r.G.latencies);
    }
end

module Push_sum_p = struct
  module P = Crn_workload.Push_sum

  let name = "push_sum"
  let synopsis = "Streaming push-sum aggregation with exact mass accounting under load"

  (* Shared non-atomic mass/convergence accounting mutated from feedback. *)
  let shardable = false

  type msg = P.msg
  type state = P.machine
  type result = P.result

  let default_load = { Protocol.rate = 0.1; arrivals = Protocol.Poisson; rumors = 2 }

  let budget (env : Protocol.env) =
    let n, _ = dims env in
    let load = Workload.resolve env ~default:default_load in
    Workload.span_bound load + scaled_budget env (float_of_int (n * 40))

  let init (env : Protocol.env) =
    let arrivals = Workload.arrivals env ~default:default_load in
    P.machine ?trace:env.trace ~arrivals ~availability:env.availability
      ~rng:env.rng ()

  let decide (st : state) = st.P.decide
  let feedback (st : state) = st.P.feedback
  let finished (st : state) = st.P.finished ()

  let project (st : state) ~(outcome : Runner.outcome) =
    st.P.snapshot ~slots_run:outcome.Runner.slots_run

  let summarize env (r : result) =
    let n, _ = dims env in
    let throughput =
      if r.P.slots_run > 0 then frac r.P.transfers r.P.slots_run else 0.0
    in
    {
      Protocol.protocol = name;
      slots_run = r.P.slots_run;
      completed = r.P.completed_at <> None;
      completed_at = r.P.completed_at;
      coverage = frac r.P.converged n;
      raw_rounds = 0;
      failed_sessions = 0;
      counters = Trace.Counters.create ();
      detail =
        Json.Obj
          ([
             ("arrivals", Json.Int r.P.total_arrivals);
             ("injected", Json.Int r.P.injected);
             ("transfers", Json.Int r.P.transfers);
             ("transfer_rate", Json.Float throughput);
             ("lost_mass", Json.Float r.P.lost_mass);
             ("max_drift", Json.Float r.P.max_drift);
             ("estimate_error", Json.Float r.P.estimate_error);
             ("converged", Json.Int r.P.converged);
           ]
          @ Workload.latency_fields r.P.latencies);
    }
end

let machines =
  [
    Protocol.of_machine (module Broadcast_baseline_p);
    Protocol.of_machine (module Aggregation_ack_p);
    Protocol.of_machine (module Aggregation_honest_p);
    Protocol.of_machine (module Random_hop_p);
    Protocol.of_machine (module Seq_scan_p);
    Protocol.of_machine (module Deterministic_p);
    Protocol.of_machine (module Gossip_p);
    Protocol.of_machine (module Push_sum_p);
  ]

let all = [ cogcast; cogcast_soa; cogcomp; cogcomp_robust ] @ machines

let names () = List.map Protocol.name all
let machine_names () = List.map Protocol.name machines

let normalize s =
  String.map (fun ch -> if ch = '-' then '_' else ch) (String.lowercase_ascii s)

(* [jam_resist:<name>] resolves to the Theorem 18 wrap of <name> — every
   entry has its jamming-resistant variant without being registered
   twice. The inner name must be a direct entry, so a (meaningless)
   double prefix fails the lookup. *)
let find s =
  let s = normalize s in
  let direct s = List.find_opt (fun p -> Protocol.name p = s) all in
  let pl = String.length Jam_resist.prefix in
  if String.length s > pl && String.sub s 0 pl = Jam_resist.prefix then
    Option.map Jam_resist.wrap (direct (String.sub s pl (String.length s - pl)))
  else direct s

let find_exn s =
  match find s with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "unknown protocol %S (try: %s, or jam_resist:<name>)" s
           (String.concat ", " (names ())))
