type 'msg intent =
  | Broadcast of 'msg
  | Listen

type 'msg decision = { label : int; intent : 'msg intent }

type 'msg feedback =
  | Heard of { sender : int; msg : 'msg }
  | Silence
  | Won
  | Lost of { winner : int; msg : 'msg }
  | Jammed
  | No_winner

let listen ~label = { label; intent = Listen }
let broadcast ~label msg = { label; intent = Broadcast msg }

let is_broadcast d = match d.intent with Broadcast _ -> true | Listen -> false

let pp_feedback pp_msg fmt = function
  | Heard { sender; msg } -> Format.fprintf fmt "Heard(%d, %a)" sender pp_msg msg
  | Silence -> Format.fprintf fmt "Silence"
  | Won -> Format.fprintf fmt "Won"
  | Lost { winner; msg } -> Format.fprintf fmt "Lost(%d, %a)" winner pp_msg msg
  | Jammed -> Format.fprintf fmt "Jammed"
  | No_winner -> Format.fprintf fmt "No_winner"
