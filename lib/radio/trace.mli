(** Slot-level execution tracing — the simulator's observability substrate.

    The paper's guarantees are statements about per-slot behaviour: one
    uniformly random winner per contended channel (§2), parent-before-child
    informing in the COGCAST distribution tree (§4), monotone drain of
    cluster values in COGCOMP phase 4 (§5). A {!t} records those facts as a
    stream of {!event}s that {!Engine.run}, {!Emulation.run} and the
    protocol layers append to when (and only when) a trace is supplied —
    with tracing disabled the engines pay a single [match] per would-be
    event and allocate nothing.

    The stream serializes to JSONL (one compact JSON object per line,
    schema [crn-trace/1]) via {!write_jsonl}, and {!Check} replays a
    recorded stream against the paper's invariants, turning any traced run
    into a self-auditing execution. *)

(** {1 Aggregate counters}

    The always-on channel-level accounting the engines have carried since
    the beginning; cheap enough to maintain unconditionally. *)

module Counters : sig
  type t = {
    mutable slots_run : int;
    mutable broadcasts : int;  (** Broadcast attempts (excluding jammed ones). *)
    mutable wins : int;  (** Slots×channels on which a winner was chosen. *)
    mutable contended : int;
        (** Slots×channels with two or more audible broadcasters. *)
    mutable deliveries : int;  (** Listener receptions. *)
    mutable jammed_actions : int;  (** Node actions absorbed by jamming. *)
  }

  val create : unit -> t
  val reset : t -> unit

  val contention_rate : t -> float
  (** Fraction of winning channels that had more than one broadcaster. *)

  val pp : Format.formatter -> t -> unit
end

(** {1 Events} *)

type event =
  | Meta of { n : int; channels : int; c : int; source : int }
      (** Run header emitted by the protocol layer: node count, spectrum
          size [C], per-node channel count [c], and the broadcast source. *)
  | Phase of { name : string }
      (** Phase transition marker. Slot numbering restarts at 0 after each
          marker (each protocol phase is its own engine run); {!Check}
          segments the stream accordingly. Names in use: ["cogcast"],
          ["cogcomp-phase2"], ["cogcomp-phase3"], ["cogcomp-phase4"],
          ["cogcomp-done"]. *)
  | Decide of { slot : int; node : int; channel : int; label : int; tx : bool }
      (** An audible node tuned to [channel] (its local [label]) and either
          broadcast ([tx]) or listened. Jammed and down nodes emit {!Jam} /
          {!Down} instead. *)
  | Win of { slot : int; channel : int; winner : int; contenders : int }
      (** Contention resolution: [winner] beat [contenders - 1] others. *)
  | Deliver of { slot : int; channel : int; sender : int; receiver : int }
      (** A listener heard the slot's winning broadcast. *)
  | Silent of { slot : int; node : int; channel : int }
      (** A listener heard nothing (no audible broadcaster / failed
          session). *)
  | Jam of { slot : int; node : int; channel : int }
      (** The node's action was absorbed by a jammer. *)
  | Down of { slot : int; node : int }  (** The node was faulted out. *)
  | Session of {
      slot : int;
      channel : int;
      contenders : int;
      rounds : int;
      ok : bool;
    }
      (** One contention session (decay backoff or CSMA/CA) of the
          raw-radio emulation:
          raw rounds consumed and whether a winner was isolated. *)
  | Informed of { slot : int; node : int; parent : int; label : int }
      (** COGCAST: [node] first heard the message, from [parent], on its
          local channel [label] — a distribution-tree edge. *)
  | Mediator of { node : int }  (** COGCOMP phase 2 elected [node]. *)
  | Sent_value of { slot : int; node : int; r : int }
      (** COGCOMP phase 4: a sender broadcast its accumulated value ([r] is
          its cluster slot). *)
  | Value_delivered of { slot : int; sender : int; receiver : int; r : int }
      (** COGCOMP phase 4: [receiver] accepted [sender]'s value and its
          echo went out — the payload moved one edge up the tree. *)
  | Retired of { slot : int; node : int }
      (** COGCOMP phase 4: the node finished all its duties. *)
  | Injected of { slot : int; rumor : int; node : int }
      (** Workload: the load generator handed rumor [rumor] to [node] at
          the start of [slot] — the node is the rumor's origin. *)
  | Rumor_delivered of { slot : int; rumor : int; node : int; parent : int }
      (** Workload: [node] first learned [rumor] in [slot], from [parent]
          (either by hearing its broadcast or by losing a contention slot to
          it — per §2 a losing broadcaster receives the winner's message). *)
  | Rumor_done of { slot : int; rumor : int }
      (** Workload: by the end of [slot] every node knew [rumor]. *)
  | Adversary of { name : string; budget : int }
      (** Adversary provenance, recorded by the layer that armed the run
          (the chaos harness, {!Crn_proto.Jam_resist}): which adversary —
          jammer or dynamic-reassignment policy — acted on this run, and
          its per-node per-slot budget (0 for reassignment-only
          adversaries). Never emitted by the engines themselves, so
          backend-differential traces stay byte-identical. *)
  | Reassigned of { slot : int; nodes_changed : int }
      (** Dynamic availability (§7): entering [slot], [nodes_changed] nodes
          saw their channel row change relative to [slot - 1]. Emitted by
          the instrumented availability wrapper
          ({!Crn_proto.Adversary_lab.instrument}), not by the engines. *)

(** {1 The trace buffer} *)

type t

val create : ?capacity:int -> unit -> t
(** An empty trace; [capacity] presizes the buffer (default 256). *)

val record : t -> event -> unit
(** Append one event (amortized O(1)). *)

val length : t -> int
val get : t -> int -> event
val iter : (event -> unit) -> t -> unit
val fold : ('a -> event -> 'a) -> 'a -> t -> 'a
val to_list : t -> event list
val of_list : event list -> t
(** Rebuild a trace from events — the replay path used by tests to check
    that {!Check} rejects corrupted histories. *)

val clear : t -> unit

(** {1 JSONL serialization} *)

val json_of_event : event -> Crn_stats.Json.t
(** One compact object per event; the ["ev"] member names the
    constructor. *)

val event_of_json : Crn_stats.Json.t -> event option
(** Inverse of {!json_of_event}; [None] on schema mismatch. *)

val to_jsonl : t -> string
(** All events, one compact JSON object per line, each line terminated by
    a newline. *)

val write_jsonl : path:string -> t -> unit

val of_jsonl : string -> (t, string) result
(** Parse a JSONL dump back into a trace; fails on the first line that is
    not valid JSON or not a known event. *)

(** {1 Invariant checking} *)

module Check : sig
  type violation = { invariant : string; detail : string }

  val pp_violation : Format.formatter -> violation -> unit

  val one_winner : t -> violation list
  (** §2 contention semantics, per phase segment: at most one {!Win} per
      (slot, channel); the winner is one of that slot's broadcasters on the
      channel; the recorded contender count matches the broadcaster count;
      every channel with a broadcaster resolves to a win unless a failed
      emulation {!Session} explains the loss; every {!Deliver} names the
      winning sender and a node that was listening there. *)

  val informed_tree : t -> violation list
  (** §4 distribution tree, from {!Informed} events: nodes are informed at
      most once and never the source; every parent is the source or was
      itself informed in a strictly earlier slot (informer precedes
      informee); parent pointers are in range and acyclic. Requires a
      {!Meta} header when any {!Informed} event is present. *)

  val phase4_drain : t -> violation list
  (** §5 phase 4, over the segment after [Phase "cogcomp-phase4"]: each
      delivered value was sent in the same slot by its sender with the same
      cluster slot [r]; each node's value is delivered at most once and
      each node retires at most once (payload conservation); per receiver,
      delivered cluster slots are non-increasing (monotone drain); and when
      the run declared completion ([Phase "cogcomp-done"]), every informed
      node's value was delivered exactly once.

      On a faulty trace (one containing any {!Down} event) the same-step
      send/delivery matching is automatically relaxed to "some strictly
      earlier send of the same cluster" — a node that misses its echo slot
      acks late, which is legitimate, not a conservation violation. The
      strict same-step variant still applies to fault-free traces. *)

  val exactly_once_drain : t -> violation list
  (** No double counting across retries: at most one {!Value_delivered} per
      sender in the phase-4 segment, each backed by a strictly earlier
      {!Sent_value} of the same cluster. Holds for plain and robust COGCOMP,
      fault-free or faulty — a retried send that was already folded must be
      re-acked without a second delivery event. *)

  val rumor_causality : t -> violation list
  (** Multi-rumor causality over the workload events: each rumor is
      {!Injected} at most once; every {!Rumor_delivered} names an injected
      rumor, a node other than its origin that learns it at most once, and
      a parent that already carried the rumor (the origin no earlier than
      the injection slot, any other node in a strictly earlier slot — a
      node can only relay from the slot after it learned). {!Rumor_done}
      fires at most once per rumor, only for injected rumors, and — given a
      {!Meta} header — only once all [n - 1] non-origin nodes hold
      deliveries no later than the done slot. *)

  val all : t -> violation list
  (** The concatenation of every checker, in the order above. *)
end
