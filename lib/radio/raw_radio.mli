(** The *raw* radio model underneath the paper's one-winner abstraction
    (§2, footnote 3–4): if two or more nodes transmit concurrently on a
    channel, the transmissions collide and nothing is received. Listeners
    can optionally distinguish collision noise from silence (collision
    detection).

    This engine exists to demonstrate that the one-winner contention model
    used by COGCAST/COGCOMP is implementable: {!Backoff} runs a decay
    protocol on top of it and realizes one successful delivery in
    [O(log² n)] raw rounds w.h.p. (experiment E13). *)

type 'msg reception =
  | Message of { sender : int; msg : 'msg }  (** Exactly one transmitter. *)
  | Noise  (** Collision heard (only with [~collision_detection:true]). *)
  | Quiet  (** Nothing transmitted (or collision without detection). *)

type 'msg node = {
  id : int;
  decide : round:int -> 'msg Action.decision;
  hear : round:int -> 'msg reception -> unit;
      (** Called on every node each round — transmitters also "hear" [Quiet]
          (they get no feedback about their own transmission, unlike the
          abstract model). *)
}

type outcome = { rounds_run : int; stopped_early : bool }

val run :
  ?collision_detection:bool ->
  ?jammer:Jammer.t ->
  ?faults:Faults.t ->
  ?stop:(round:int -> bool) ->
  availability:Crn_channel.Dynamic.t ->
  nodes:'msg node array ->
  max_rounds:int ->
  unit ->
  outcome
(** Same conventions as {!Engine.run}; no randomness is needed because there
    is no winner selection — collisions destroy all messages.

    Adversaries address raw rounds through the same [~slot] schedule as the
    abstract engine's slots. A downed node ([Faults.down ~slot:round]) is
    absent for the round: its [decide]/[hear] callbacks are not invoked and
    it neither transmits nor occupies a channel. A jammed node
    ([Jammer.jams] at its tuned channel) has any transmission destroyed
    before it reaches the channel, and if listening hears {!Noise} even
    without collision detection — jamming energy is audible. Reactive
    jammers are fed the per-round occupancy of surviving transmissions,
    exactly as in {!Engine.run}. *)

val node :
  id:int ->
  decide:(round:int -> 'msg Action.decision) ->
  hear:(round:int -> 'msg reception -> unit) ->
  'msg node
