type backend =
  | Engine
  | Emulation of { strategy : Emulation.strategy; session_cap : int option }
  | Reference
  | Soa of { shards : int; dense_channel_limit : int option }

let backend_name = function
  | Engine -> "engine"
  | Emulation { strategy = Emulation.Decay; _ } -> "emulation"
  | Emulation { strategy = Emulation.Csma; _ } -> "emulation-csma"
  | Reference -> "reference"
  | Soa _ -> "soa"

type outcome = {
  slots_run : int;
  stopped_early : bool;
  counters : Trace.Counters.t;
  raw_rounds : int;
  failed_sessions : int;
}

type t = {
  run :
    'msg.
    ?stop:(slot:int -> bool) ->
    nodes:'msg Engine.node array ->
    max_slots:int ->
    unit ->
    outcome;
}

let of_engine (o : Engine.outcome) =
  {
    slots_run = o.Engine.slots_run;
    stopped_early = o.Engine.stopped_early;
    counters = o.Engine.counters;
    raw_rounds = 0;
    failed_sessions = 0;
  }

let of_emulation (o : Emulation.outcome) =
  {
    slots_run = o.Emulation.slots_run;
    stopped_early = o.Emulation.stopped_early;
    counters = o.Emulation.counters;
    raw_rounds = o.Emulation.raw_rounds;
    failed_sessions = o.Emulation.failed_sessions;
  }

let emulation_outcome o =
  {
    Emulation.slots_run = o.slots_run;
    stopped_early = o.stopped_early;
    counters = o.counters;
    raw_rounds = o.raw_rounds;
    failed_sessions = o.failed_sessions;
  }

let make ?pool ?machine_parallel:(parallel = false) ?jammer ?faults ?metrics
    ?trace ?(backend = Engine) ~availability ~rng () =
  match backend with
  | Engine ->
      {
        run =
          (fun ?stop ~nodes ~max_slots () ->
            of_engine
              (Engine.run ?jammer ?faults ?metrics ?trace ?stop ~availability
                 ~rng ~nodes ~max_slots ()));
      }
  | Reference ->
      {
        run =
          (fun ?stop ~nodes ~max_slots () ->
            of_engine
              (Reference.engine_run ?jammer ?faults ?metrics ?trace ?stop
                 ~availability ~rng ~nodes ~max_slots ()));
      }
  | Emulation { strategy; session_cap } ->
      {
        run =
          (fun ?stop ~nodes ~max_slots () ->
            of_emulation
              (Emulation.run ~strategy ?session_cap ?jammer ?faults ?metrics
                 ?trace ?stop ~availability ~rng ~nodes ~max_slots ()));
      }
  | Soa { shards; dense_channel_limit } ->
      {
        run =
          (fun ?stop ~nodes ~max_slots () ->
            if Array.length nodes <> Crn_channel.Dynamic.num_nodes availability
            then
              invalid_arg
                "Runner: node array disagrees with availability node count";
            let protocol = Soa_adapter.protocol ~parallel nodes in
            of_engine
              (Soa.run ?pool ~shards ?dense_channel_limit ?jammer ?faults
                 ?metrics ?trace ?stop ~availability ~rng ~protocol ~max_slots
                 ()));
      }
