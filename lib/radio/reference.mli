(** Executable specifications of {!Engine.run} and {!Emulation.run}.

    These are the original list-and-hashtable slot loops, retained verbatim
    except for one deliberate change: channels are resolved in the canonical
    ascending-global-channel-id order instead of [Hashtbl.iter] bucket order
    (the order-dependence bug this layer exists to pin down). The optimized
    engines must be observationally identical to these on every input —
    same outcome structs and counters, same per-node feedback sequences,
    byte-equal JSONL traces — which [test/test_determinism.ml] verifies
    differentially over randomized topologies, jammers, faults and dynamic
    availabilities.

    Keep these slow and obvious: they allocate per slot and per channel on
    purpose, and double as the baseline the [MICRO] benchmark measures the
    rewritten engines against. Not intended for production use. *)

val engine_run :
  ?jammer:Jammer.t ->
  ?faults:Faults.t ->
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  ?stop:(slot:int -> bool) ->
  ?on_slot_end:(slot:int -> unit) ->
  availability:Crn_channel.Dynamic.t ->
  rng:Crn_prng.Rng.t ->
  nodes:'msg Engine.node array ->
  max_slots:int ->
  unit ->
  Engine.outcome
(** Specification twin of {!Engine.run}; identical contract. *)

val emulation_run :
  ?strategy:Emulation.strategy ->
  ?session_cap:int ->
  ?jammer:Jammer.t ->
  ?faults:Faults.t ->
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  ?stop:(slot:int -> bool) ->
  availability:Crn_channel.Dynamic.t ->
  rng:Crn_prng.Rng.t ->
  nodes:'msg Engine.node array ->
  max_slots:int ->
  unit ->
  Emulation.outcome
(** Specification twin of {!Emulation.run}; identical contract. *)
