(* Executable specifications of the slot engines: the original list-and-
   hashtable implementations, kept verbatim except that channels are
   resolved in the canonical ascending-global-id order (the pre-rewrite
   code iterated [Hashtbl.iter], i.e. hash-bucket order — the bug this PR
   fixes). The optimized {!Engine.run} / {!Emulation.run} must be
   observationally identical to these: same outcomes, same counters, same
   feedback sequences, byte-equal traces. The differential tests in
   [test/test_determinism.ml] enforce that on randomized topologies, and
   the [MICRO] bench uses these as the allocation/wall-clock baseline. *)

module Rng = Crn_prng.Rng
module Dynamic = Crn_channel.Dynamic
module Assignment = Crn_channel.Assignment

type 'msg channel_state = {
  mutable broadcasters : (int * 'msg) list;  (* audible: (node, msg) *)
  mutable listeners : int list;  (* audible listeners *)
}

(* The canonical resolution order over a populated hashtable: materialize
   and sort. Allocates freely — this is the spec, not the hot path. *)
let sorted_channels channels =
  let pairs = Hashtbl.fold (fun ch st acc -> (ch, st) :: acc) channels [] in
  List.sort (fun (a, _) (b, _) -> compare a b) pairs

let engine_run ?(jammer = Jammer.none) ?(faults = Faults.none) ?metrics ?trace
    ?stop ?on_slot_end ~availability ~rng ~nodes ~max_slots () =
  let n = Array.length nodes in
  if n = 0 then invalid_arg "Reference.engine_run: no nodes";
  if Dynamic.num_nodes availability <> n then
    invalid_arg "Reference.engine_run: node count disagrees with availability";
  Array.iteri
    (fun i node ->
      if node.Engine.id <> i then
        invalid_arg "Reference.engine_run: node id mismatch")
    nodes;
  if max_slots < 0 then invalid_arg "Reference.engine_run: negative max_slots";
  (match metrics with
  | Some m ->
      if Array.length m.Metrics.transmissions <> n then
        invalid_arg "Reference.engine_run: metrics sized for a different node count"
  | None -> ());
  let bump counters i =
    match metrics with
    | Some m -> (counters m).(i) <- (counters m).(i) + 1
    | None -> ()
  in
  let traced = trace <> None in
  let emit ev = match trace with Some tr -> Trace.record tr ev | None -> () in
  let counters = Trace.Counters.create () in
  let channels : (int, 'msg channel_state) Hashtbl.t = Hashtbl.create (4 * n) in
  let decisions = Array.make n (Action.listen ~label:0) in
  let tuned = Array.make n (-1) in
  let slot = ref 0 in
  let stopped = ref false in
  while (not !stopped) && !slot < max_slots do
    let s = !slot in
    let assignment = Dynamic.at availability s in
    let c = Assignment.channels_per_node assignment in
    Hashtbl.reset channels;
    for i = 0 to n - 1 do
      if Faults.down faults ~slot:s ~node:i then begin
        tuned.(i) <- -2;
        if traced then emit (Trace.Down { slot = s; node = i })
      end
      else begin
      let decision = nodes.(i).Engine.decide ~slot:s in
      if decision.Action.label < 0 || decision.Action.label >= c then
        invalid_arg
          (Printf.sprintf "Reference.engine_run: node %d chose label %d outside [0,%d)"
             i decision.Action.label c);
      decisions.(i) <- decision;
      let channel = Assignment.global_of_local assignment ~node:i ~label:decision.Action.label in
      bump (fun m -> m.Metrics.awake_slots) i;
      if Jammer.jams jammer ~slot:s ~node:i ~channel then begin
        tuned.(i) <- -1;
        counters.Trace.Counters.jammed_actions <-
          counters.Trace.Counters.jammed_actions + 1;
        if traced then emit (Trace.Jam { slot = s; node = i; channel });
        bump (fun m -> m.Metrics.jammed) i
      end
      else begin
        tuned.(i) <- channel;
        if traced then
          emit
            (Trace.Decide
               {
                 slot = s;
                 node = i;
                 channel;
                 label = decision.Action.label;
                 tx = Action.is_broadcast decision;
               });
        let state =
          match Hashtbl.find_opt channels channel with
          | Some st -> st
          | None ->
              let st = { broadcasters = []; listeners = [] } in
              Hashtbl.replace channels channel st;
              st
        in
        match decision.Action.intent with
        | Action.Broadcast msg ->
            state.broadcasters <- (i, msg) :: state.broadcasters;
            counters.Trace.Counters.broadcasts <-
              counters.Trace.Counters.broadcasts + 1;
            bump (fun m -> m.Metrics.transmissions) i
        | Action.Listen -> state.listeners <- i :: state.listeners
      end
      end
    done;
    let resolved = sorted_channels channels in
    List.iter
      (fun (channel, state) ->
        match state.broadcasters with
        | [] -> ()
        | broadcasters ->
            let count = List.length broadcasters in
            let widx = if count = 1 then 0 else Rng.int rng count in
            let winner_id, winner_msg = List.nth broadcasters widx in
            counters.Trace.Counters.wins <- counters.Trace.Counters.wins + 1;
            if count > 1 then
              counters.Trace.Counters.contended <-
                counters.Trace.Counters.contended + 1;
            if traced then
              emit
                (Trace.Win { slot = s; channel; winner = winner_id; contenders = count });
            List.iter
              (fun (b, _msg) ->
                if b = winner_id then nodes.(b).Engine.feedback ~slot:s Action.Won
                else
                  nodes.(b).Engine.feedback ~slot:s
                    (Action.Lost { winner = winner_id; msg = winner_msg }))
              broadcasters;
            List.iter
              (fun l ->
                counters.Trace.Counters.deliveries <-
                  counters.Trace.Counters.deliveries + 1;
                if traced then
                  emit
                    (Trace.Deliver
                       { slot = s; channel; sender = winner_id; receiver = l });
                bump (fun m -> m.Metrics.receptions) l;
                nodes.(l).Engine.feedback ~slot:s
                  (Action.Heard { sender = winner_id; msg = winner_msg }))
              state.listeners)
      resolved;
    for i = 0 to n - 1 do
      if tuned.(i) = -2 then ()
      else if tuned.(i) = -1 then nodes.(i).Engine.feedback ~slot:s Action.Jammed
      else
        match decisions.(i).Action.intent with
        | Action.Broadcast _ -> ()
        | Action.Listen ->
            let state = Hashtbl.find channels tuned.(i) in
            if state.broadcasters = [] then begin
              if traced then
                emit (Trace.Silent { slot = s; node = i; channel = tuned.(i) });
              nodes.(i).Engine.feedback ~slot:s Action.Silence
            end
    done;
    counters.Trace.Counters.slots_run <- counters.Trace.Counters.slots_run + 1;
    if Jammer.observes jammer then begin
      let occupancy =
        List.fold_left
          (fun acc (channel, state) ->
            match state.broadcasters with
            | [] -> acc
            | bs -> (channel, List.length bs) :: acc)
          [] (List.rev resolved)
      in
      Jammer.observe jammer ~slot:s occupancy
    end;
    (match on_slot_end with Some f -> f ~slot:s | None -> ());
    (match stop with Some f -> if f ~slot:s then stopped := true | None -> ());
    incr slot
  done;
  {
    Engine.slots_run = !slot;
    stopped_early = !stopped;
    counters;
  }

let emulation_run ?(strategy = Emulation.Decay) ?session_cap
    ?(jammer = Jammer.none) ?(faults = Faults.none) ?metrics ?trace ?stop
    ~availability ~rng ~nodes ~max_slots () =
  let n = Array.length nodes in
  if n = 0 then invalid_arg "Reference.emulation_run: no nodes";
  if Dynamic.num_nodes availability <> n then
    invalid_arg "Reference.emulation_run: node count disagrees with availability";
  Array.iteri
    (fun i node ->
      if node.Engine.id <> i then
        invalid_arg "Reference.emulation_run: node id mismatch")
    nodes;
  (match metrics with
  | Some m ->
      if Array.length m.Metrics.transmissions <> n then
        invalid_arg "Reference.emulation_run: metrics sized for a different node count"
  | None -> ());
  let bump counters i =
    match metrics with
    | Some m -> (counters m).(i) <- (counters m).(i) + 1
    | None -> ()
  in
  let session_cap =
    match session_cap with Some v -> v | None -> Backoff.expected_rounds_bound n
  in
  let run_session ~contenders =
    match strategy with
    | Emulation.Decay -> Backoff.session ~rng ~contenders ~cap:session_cap
    | Emulation.Csma -> Csma.session ~rng ~contenders ~cap:session_cap ()
  in
  let traced = trace <> None in
  let emit ev = match trace with Some tr -> Trace.record tr ev | None -> () in
  let counters = Trace.Counters.create () in
  let channels : (int, 'msg channel_state) Hashtbl.t = Hashtbl.create (4 * n) in
  let decisions = Array.make n (Action.listen ~label:0) in
  let tuned = Array.make n (-1) in
  let slot = ref 0 in
  let raw_rounds = ref 0 in
  let failed_sessions = ref 0 in
  let stopped = ref false in
  while (not !stopped) && !slot < max_slots do
    let s = !slot in
    let assignment = Dynamic.at availability s in
    let c = Assignment.channels_per_node assignment in
    Hashtbl.reset channels;
    for i = 0 to n - 1 do
      if Faults.down faults ~slot:s ~node:i then begin
        tuned.(i) <- -2;
        if traced then emit (Trace.Down { slot = s; node = i })
      end
      else begin
      let decision = nodes.(i).Engine.decide ~slot:s in
      if decision.Action.label < 0 || decision.Action.label >= c then
        invalid_arg "Reference.emulation_run: label out of range";
      decisions.(i) <- decision;
      let channel = Assignment.global_of_local assignment ~node:i ~label:decision.Action.label in
      bump (fun m -> m.Metrics.awake_slots) i;
      if Jammer.jams jammer ~slot:s ~node:i ~channel then begin
        tuned.(i) <- -1;
        counters.Trace.Counters.jammed_actions <-
          counters.Trace.Counters.jammed_actions + 1;
        if traced then emit (Trace.Jam { slot = s; node = i; channel });
        bump (fun m -> m.Metrics.jammed) i
      end
      else begin
        tuned.(i) <- channel;
        if traced then
          emit
            (Trace.Decide
               {
                 slot = s;
                 node = i;
                 channel;
                 label = decision.Action.label;
                 tx = Action.is_broadcast decision;
               });
        let state =
          match Hashtbl.find_opt channels channel with
          | Some st -> st
          | None ->
              let st = { broadcasters = []; listeners = [] } in
              Hashtbl.replace channels channel st;
              st
        in
        match decision.Action.intent with
        | Action.Broadcast msg ->
            state.broadcasters <- (i, msg) :: state.broadcasters;
            counters.Trace.Counters.broadcasts <-
              counters.Trace.Counters.broadcasts + 1;
            bump (fun m -> m.Metrics.transmissions) i
        | Action.Listen -> state.listeners <- i :: state.listeners
      end
      end
    done;
    let resolved = sorted_channels channels in
    let slot_rounds = ref 1 in
    List.iter
      (fun (channel, state) ->
        match state.broadcasters with
        | [] ->
            List.iter
              (fun l ->
                if traced then emit (Trace.Silent { slot = s; node = l; channel });
                nodes.(l).Engine.feedback ~slot:s Action.Silence)
              state.listeners
        | broadcasters -> (
            let contenders = List.length broadcasters in
            if contenders > 1 then
              counters.Trace.Counters.contended <-
                counters.Trace.Counters.contended + 1;
            match run_session ~contenders with
            | Some { Backoff.winner; rounds } ->
                slot_rounds := max !slot_rounds rounds;
                let winner_id, winner_msg = List.nth broadcasters winner in
                counters.Trace.Counters.wins <- counters.Trace.Counters.wins + 1;
                if traced then begin
                  emit
                    (Trace.Session { slot = s; channel; contenders; rounds; ok = true });
                  emit
                    (Trace.Win { slot = s; channel; winner = winner_id; contenders })
                end;
                List.iter
                  (fun (b, _) ->
                    if b = winner_id then nodes.(b).Engine.feedback ~slot:s Action.Won
                    else
                      nodes.(b).Engine.feedback ~slot:s
                        (Action.Lost { winner = winner_id; msg = winner_msg }))
                  broadcasters;
                List.iter
                  (fun l ->
                    counters.Trace.Counters.deliveries <-
                      counters.Trace.Counters.deliveries + 1;
                    if traced then
                      emit
                        (Trace.Deliver
                           { slot = s; channel; sender = winner_id; receiver = l });
                    bump (fun m -> m.Metrics.receptions) l;
                    nodes.(l).Engine.feedback ~slot:s
                      (Action.Heard { sender = winner_id; msg = winner_msg }))
                  state.listeners
            | None ->
                incr failed_sessions;
                slot_rounds := max !slot_rounds session_cap;
                if traced then
                  emit
                    (Trace.Session
                       {
                         slot = s;
                         channel;
                         contenders;
                         rounds = session_cap;
                         ok = false;
                       });
                (* Broadcasters know the session failed; listeners cannot
                   tell a failed session from an idle channel. *)
                List.iter
                  (fun (b, _) -> nodes.(b).Engine.feedback ~slot:s Action.No_winner)
                  broadcasters;
                List.iter
                  (fun l ->
                    if traced then emit (Trace.Silent { slot = s; node = l; channel });
                    nodes.(l).Engine.feedback ~slot:s Action.Silence)
                  state.listeners))
      resolved;
    for i = 0 to n - 1 do
      if tuned.(i) = -1 then nodes.(i).Engine.feedback ~slot:s Action.Jammed
    done;
    raw_rounds := !raw_rounds + !slot_rounds;
    counters.Trace.Counters.slots_run <- counters.Trace.Counters.slots_run + 1;
    if Jammer.observes jammer then begin
      let occupancy =
        List.fold_left
          (fun acc (channel, state) ->
            match state.broadcasters with
            | [] -> acc
            | bs -> (channel, List.length bs) :: acc)
          [] (List.rev resolved)
      in
      Jammer.observe jammer ~slot:s occupancy
    end;
    (match stop with Some f -> if f ~slot:s then stopped := true | None -> ());
    incr slot
  done;
  {
    Emulation.slots_run = !slot;
    raw_rounds = !raw_rounds;
    failed_sessions = !failed_sessions;
    stopped_early = !stopped;
    counters;
  }
