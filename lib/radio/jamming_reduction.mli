(** The Theorem 18 reduction: local broadcast in a multi-channel network
    under an n-uniform jammer reduces to local broadcast in a *dynamic*
    cognitive radio network with local channel labels.

    Setting: [n] nodes all own the same [c] channels; an adversary jams at
    most [k' < c/2] channels per node per slot. A node that senses jamming
    treats the unjammed channels as its per-slot availability set: every
    node then has at least [c - k'] channels and every pair still overlaps
    on at least [c - 2k' > 0] channels — a legal dynamic CRN instance, so
    COGCAST completes with its usual guarantee.

    {!availability_of_jammer} builds that per-slot availability from a
    jammer whose budget is exact (it must jam exactly [budget] channels at
    each node each slot, as {!Jammer.random_per_node} and friends do, so
    that all nodes have equal set sizes as the model requires). *)

val availability_of_jammer :
  ?shuffle_labels:Crn_prng.Rng.t ->
  num_nodes:int ->
  num_channels:int ->
  jammer:Jammer.t ->
  unit ->
  Crn_channel.Dynamic.t
(** [availability_of_jammer ~num_nodes ~num_channels ~jammer ()] gives each
    node, in each slot, exactly the channels the jammer leaves open at it.
    Requires [jammer]'s budget [< num_channels]. With [?shuffle_labels] the
    per-slot local labels are randomized (the honest local-label model);
    otherwise labels follow increasing channel id. Raises [Invalid_argument]
    at query time if the jammer exceeds its budget. *)

val sensed_availability :
  ?shuffle_labels:Crn_prng.Rng.t ->
  num_nodes:int ->
  num_channels:int ->
  jammer:Jammer.t ->
  unit ->
  Crn_channel.Dynamic.t
(** Like {!availability_of_jammer}, but tolerant of jammers that spend
    {e less} than their declared budget in some slots (the reactive jammer
    jams nothing until its first observation): every node keeps exactly
    [num_channels - budget] channels by additionally withholding its
    highest-id open channels — conservative sensing, as a node cannot tell
    a quiet jammer from a noisy channel. Each node drops at most [budget]
    channels in total, so the pairwise overlap is still at least
    [num_channels - 2*budget]. This is the availability the
    {!Crn_proto.Jam_resist} transformer runs protocols on. Requires
    [2*budget < num_channels] (Theorem 18's [k' < c/2]); raises
    [Invalid_argument] at query time if the jammer exceeds its budget. *)

val overlap_guarantee : num_channels:int -> budget:int -> int
(** [c - 2k'], the pairwise overlap Theorem 18 guarantees. *)
