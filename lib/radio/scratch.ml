(* Dense per-slot channel occupancy, reused across slots so the engine hot
   loops allocate nothing in steady state.

   Channel chains are intrusive: a node appears on exactly one channel per
   slot, so a single [next] array of node indices threads every chain, and a
   channel is just a pair of head indices (broadcasters, listeners) plus a
   broadcaster count. Heads live in arrays indexed by *global* channel id;
   only the channels touched this slot (collected in [active]) are reset
   between slots, so per-slot cost is proportional to the occupancy, not to
   the spectrum size.

   Chains are built by prepending while nodes are scanned in ascending id
   order, so walking a chain yields descending node ids — the same order the
   original list-based engine produced, which keeps winner indexing and
   feedback order identical to the executable specification in
   {!Reference}. *)

type t = {
  mutable num_channels : int;  (* capacity of the per-channel arrays *)
  mutable bcast_head : int array;  (* channel -> first broadcaster node, or -1 *)
  mutable listen_head : int array;  (* channel -> first listener node, or -1 *)
  mutable bcast_count : int array;  (* channel -> audible broadcasters *)
  next : int array;  (* node -> next node on the same chain, or -1 *)
  active : int array;  (* channels touched this slot, discovery order *)
  mutable active_len : int;
}

let create ~num_nodes =
  {
    num_channels = 0;
    bcast_head = [||];
    listen_head = [||];
    bcast_count = [||];
    next = Array.make (max 1 num_nodes) (-1);
    active = Array.make (max 1 num_nodes) 0;
    active_len = 0;
  }

(* Reset for a new slot. Growing the spectrum reallocates (fresh arrays are
   already clean); otherwise only the previously touched channels are
   walked. Dynamic availabilities keep the spectrum size constant in
   practice, so steady state never reallocates. *)
let begin_slot t ~num_channels =
  if num_channels > t.num_channels then begin
    t.bcast_head <- Array.make num_channels (-1);
    t.listen_head <- Array.make num_channels (-1);
    t.bcast_count <- Array.make num_channels 0;
    t.num_channels <- num_channels
  end
  else
    for j = 0 to t.active_len - 1 do
      let ch = t.active.(j) in
      t.bcast_head.(ch) <- -1;
      t.listen_head.(ch) <- -1;
      t.bcast_count.(ch) <- 0
    done;
  t.active_len <- 0

let touch t channel =
  if t.bcast_head.(channel) < 0 && t.listen_head.(channel) < 0 then begin
    t.active.(t.active_len) <- channel;
    t.active_len <- t.active_len + 1
  end

let add_broadcaster t ~channel ~node =
  touch t channel;
  t.next.(node) <- t.bcast_head.(channel);
  t.bcast_head.(channel) <- node;
  t.bcast_count.(channel) <- t.bcast_count.(channel) + 1

let add_listener t ~channel ~node =
  touch t channel;
  t.next.(node) <- t.listen_head.(channel);
  t.listen_head.(channel) <- node

(* In-place heapsort of a[0 .. len-1], ascending: O(m log m), no
   allocation, and — unlike the hashtable iteration it replaced — a
   canonical order independent of stdlib hashing. Shared with {!Soa},
   whose active-channel worklist needs the same canonical ordering. *)
let sort_prefix a len =
  if len > 1 then begin
    let swap i j =
      let x = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- x
    in
    let rec sift i stop =
      let l = (2 * i) + 1 in
      if l < stop then begin
        let c = if l + 1 < stop && a.(l + 1) > a.(l) then l + 1 else l in
        if a.(c) > a.(i) then begin
          swap c i;
          sift c stop
        end
      end
    in
    for i = (len / 2) - 1 downto 0 do
      sift i len
    done;
    for last = len - 1 downto 1 do
      swap 0 last;
      sift 0 last
    done
  end

let sort_active t = sort_prefix t.active t.active_len

(* The [idx]-th broadcaster in chain order (descending node id, matching the
   reference's list order), for winner selection. *)
let nth_broadcaster t ~channel idx =
  let rec go node i = if i = 0 then node else go t.next.(node) (i - 1) in
  go t.bcast_head.(channel) idx
