(** n-uniform jamming adversaries (§7, Theorem 18).

    An [x]-uniform jammer partitions the nodes into [x] groups and makes an
    independent jamming decision for each group; an [n]-uniform jammer may
    jam a different channel set *at every node*. The adversary's per-slot,
    per-node budget is the number of channels it may jam, and Theorem 18
    requires budget [< c/2].

    Jamming decisions must be deterministic functions of [(slot, node)] so
    that runs replay; randomized jammers derive their choices from a seed
    hashed with the slot. *)

type t

val name : t -> string

val budget : t -> int
(** Maximum channels jammed per node per slot. *)

val jams : t -> slot:int -> node:int -> channel:int -> bool
(** Whether [channel] is jammed at [node] during [slot]. *)

val jammed_set : t -> slot:int -> node:int -> num_channels:int -> Crn_channel.Bitset.t
(** All channels jammed at [node] during [slot], as a bitset. *)

val none : t
(** Jams nothing (budget 0). *)

val of_fun : name:string -> budget:int -> (slot:int -> node:int -> channel:int -> bool) -> t

val random_per_node : seed:int64 -> budget:int -> num_channels:int -> t
(** The full-strength n-uniform adversary: an independent uniformly random
    [budget]-subset of channels per node per slot. *)

val random_global : seed:int64 -> budget:int -> num_channels:int -> t
(** A 1-uniform adversary: one random [budget]-subset shared by all nodes
    each slot. *)

val sweep : budget:int -> num_channels:int -> t
(** Deterministic sweep: at slot [s] jams channels
    [s*budget .. s*budget + budget - 1 (mod num_channels)] at every node —
    the classic scanning jammer. *)

val targeted_low : budget:int -> t
(** Always jams channels [0 .. budget-1] at every node — punishes protocols
    biased toward low channel ids. *)

val reactive : unit -> t
(** A budget-1 adaptive adversary: jams (at every node) the channel that
    carried the most audible broadcasters in the previous slot, ties broken
    toward the smallest channel id; jams nothing until it has observed a
    non-silent slot. Stateful — create one instance per run and do not share
    it across parallel trials. *)

val observes : t -> bool
(** Whether the jammer is reactive, i.e. wants per-slot occupancy reports.
    The engine skips the occupancy scan for oblivious jammers. *)

val observe : t -> slot:int -> (int * int) list -> unit
(** [observe t ~slot occupancy] feeds the jammer the audible broadcaster
    counts [(channel, count), ...] of [slot] (channels with at least one
    audible broadcaster only). Called by {!Engine.run} at the end of every
    slot when {!observes} holds; a no-op for oblivious jammers. *)
