(** Per-slot actions and feedback exchanged between protocol nodes and the
    radio engine, mirroring §2 of the paper.

    In each slot a node tunes to one of its channels — addressed by its
    *local label* — and either broadcasts or listens. After the slot the
    engine reports what happened on that channel: listeners hear the unique
    winner (or silence); broadcasters learn whether they won, and per the
    paper's collision model a losing broadcaster *receives the message that
    was sent*. *)

type 'msg intent =
  | Broadcast of 'msg
  | Listen

type 'msg decision = {
  label : int;  (** Local channel label in [0 .. c-1]. *)
  intent : 'msg intent;
}

type 'msg feedback =
  | Heard of { sender : int; msg : 'msg }
      (** Listener: the slot's winner on this channel. *)
  | Silence  (** Listener: nobody (audible) broadcast on this channel. *)
  | Won  (** Broadcaster: this node's message was the one delivered. *)
  | Lost of { winner : int; msg : 'msg }
      (** Broadcaster: another node won; its message is received. *)
  | Jammed
      (** The channel was jammed at this node (only with a jammer installed):
          nothing was sent or received. *)
  | No_winner
      (** Broadcaster: the contention session on this channel failed to
          isolate a winner within its round cap, so nothing was delivered
          this slot. Only produced by the raw-radio emulation backends —
          the abstract engine always arbitrates a winner. Listeners on the
          channel observe plain {!Silence} (a failed session is physically
          indistinguishable from an idle channel). *)

val listen : label:int -> 'msg decision
val broadcast : label:int -> 'msg -> 'msg decision

val is_broadcast : 'msg decision -> bool

val pp_feedback :
  (Format.formatter -> 'msg -> unit) -> Format.formatter -> 'msg feedback -> unit
