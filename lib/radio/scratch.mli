(** Internal: dense, allocation-free per-slot channel occupancy shared by
    {!Engine} and {!Emulation}.

    One value is created per run and reused across slots. Per slot: call
    {!begin_slot}, register every audible node with {!add_broadcaster} /
    {!add_listener} in ascending node-id order, then {!sort_active} and
    resolve the channels [active.(0 .. active_len-1)] — now in ascending
    global channel id, the canonical resolution order documented in
    {!Engine.run}. Broadcaster/listener chains are threaded through a single
    intrusive [next] array (a node is on at most one channel per slot) and
    walk in descending node id, matching the list order of the executable
    specification in {!Reference}.

    Not part of the simulator's public surface; exposed only so the engines
    and the micro-benchmarks in [bench/] can share it. *)

type t = {
  mutable num_channels : int;
  mutable bcast_head : int array;
  mutable listen_head : int array;
  mutable bcast_count : int array;
  next : int array;
  active : int array;
  mutable active_len : int;
}

val create : num_nodes:int -> t
(** Scratch for up to [num_nodes] nodes; channel arrays grow on demand. *)

val begin_slot : t -> num_channels:int -> unit
(** Reset for a new slot: clears only the channels touched last slot (or
    reallocates when the spectrum grew past capacity). *)

val add_broadcaster : t -> channel:int -> node:int -> unit
val add_listener : t -> channel:int -> node:int -> unit

val sort_active : t -> unit
(** In-place ascending sort of the touched-channel list — establishes the
    canonical resolution order. Allocation-free. *)

val sort_prefix : int array -> int -> unit
(** [sort_prefix a len] heapsorts [a.(0 .. len-1)] ascending, in place and
    allocation-free. Shared with {!Soa}, whose active-channel worklist needs
    the same canonical ordering {!sort_active} gives this module. *)

val nth_broadcaster : t -> channel:int -> int -> int
(** [nth_broadcaster t ~channel idx] walks the broadcaster chain [idx]
    steps; [idx] must be in [0, bcast_count.(channel)). *)
