module Dynamic = Crn_channel.Dynamic
module Assignment = Crn_channel.Assignment

type 'msg reception =
  | Message of { sender : int; msg : 'msg }
  | Noise
  | Quiet

type 'msg node = {
  id : int;
  decide : round:int -> 'msg Action.decision;
  hear : round:int -> 'msg reception -> unit;
}

type outcome = { rounds_run : int; stopped_early : bool }

let node ~id ~decide ~hear = { id; decide; hear }

type 'msg channel_state = {
  mutable transmitters : (int * 'msg) list;
  mutable listeners : int list;
}

let run ?(collision_detection = false) ?(jammer = Jammer.none)
    ?(faults = Faults.none) ?stop ~availability ~nodes ~max_rounds () =
  let n = Array.length nodes in
  if n = 0 then invalid_arg "Raw_radio.run: no nodes";
  if Dynamic.num_nodes availability <> n then
    invalid_arg "Raw_radio.run: node count disagrees with availability";
  Array.iteri
    (fun i node -> if node.id <> i then invalid_arg "Raw_radio.run: node id mismatch")
    nodes;
  (* Hoisted accessors, as in Engine.run: no per-call closure allocation. *)
  let faults_down = Faults.down faults in
  let jammer_jams = Jammer.jams jammer in
  let jammer_observes = Jammer.observes jammer in
  let channels : (int, 'msg channel_state) Hashtbl.t = Hashtbl.create (4 * n) in
  let decisions = Array.make n (Action.listen ~label:0) in
  let tuned = Array.make n 0 in
  let is_down = Array.make n false in
  let is_jammed = Array.make n false in
  let round = ref 0 in
  let stopped = ref false in
  while (not !stopped) && !round < max_rounds do
    let r = !round in
    let assignment = Dynamic.at availability r in
    let c = Assignment.channels_per_node assignment in
    Hashtbl.reset channels;
    for i = 0 to n - 1 do
      is_down.(i) <- faults_down ~slot:r ~node:i;
      if not is_down.(i) then begin
        let decision = nodes.(i).decide ~round:r in
        if decision.Action.label < 0 || decision.Action.label >= c then
          invalid_arg "Raw_radio.run: label out of range";
        decisions.(i) <- decision;
        let channel = Assignment.global_of_local assignment ~node:i ~label:decision.Action.label in
        tuned.(i) <- channel;
        is_jammed.(i) <- jammer_jams ~slot:r ~node:i ~channel;
        let state =
          match Hashtbl.find_opt channels channel with
          | Some st -> st
          | None ->
              let st = { transmitters = []; listeners = [] } in
              Hashtbl.replace channels channel st;
              st
        in
        match decision.Action.intent with
        | Action.Broadcast msg ->
            (* A frame transmitted into a jammed channel is destroyed. *)
            if not is_jammed.(i) then
              state.transmitters <- (i, msg) :: state.transmitters
        | Action.Listen -> state.listeners <- i :: state.listeners
      end
    done;
    for i = 0 to n - 1 do
      if not is_down.(i) then begin
        let state = Hashtbl.find channels tuned.(i) in
        let reception =
          match decisions.(i).Action.intent with
          | Action.Broadcast _ -> Quiet  (* cannot hear while transmitting *)
          | Action.Listen ->
              (* A jammed channel reads as noise at the jammed node,
                 collision detection or not: jamming energy is audible. *)
              if is_jammed.(i) then Noise
              else (
                match state.transmitters with
                | [] -> Quiet
                | [ (sender, msg) ] -> Message { sender; msg }
                | _ :: _ :: _ -> if collision_detection then Noise else Quiet)
        in
        nodes.(i).hear ~round:r reception
      end
    done;
    if jammer_observes then begin
      (* Reactive jammers see per-round occupancy: surviving (audible)
         transmitter counts per channel, ascending channel order, matching
         the Engine's convention. *)
      let occupancy =
        Hashtbl.fold
          (fun channel state acc ->
            match state.transmitters with
            | [] -> acc
            | txs -> (channel, List.length txs) :: acc)
          channels []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      Jammer.observe jammer ~slot:r occupancy
    end;
    (match stop with Some f -> if f ~round:r then stopped := true | None -> ());
    incr round
  done;
  { rounds_run = !round; stopped_early = !stopped }
