module Rng = Crn_prng.Rng

type result = Backoff.result = { winner : int; rounds : int }

let default_attempt_limit = 16
let default_cw_cap = 1024

(* One CSMA/CA contention session among [contenders] nodes on a single
   collision channel with collision detection (carrier sensing = hearing).

   Per-node automaton:
     - each node draws a backoff counter from the contention window
       [retry_delay ~attempt ~cap:cw_cap] and counts it down on idle
       (Quiet) rounds, freezing while the carrier is busy (Noise or a
       message);
     - at counter zero it transmits a [Data] frame and waits one round for
       an explicit [Ack];
     - no ack (the frame collided) doubles the window via [attempt] and
       redraws, up to [attempt_limit] attempts, after which the node drops
       out (it keeps listening and can still ack);
     - when a [Data i] frame gets through alone, every other node hears it
       and stops contending; a designated acker (the lowest index that is
       not the winner) answers with [Ack i] in the next round, and the
       winner's reception of its ack completes the session.

   The same automaton backs [session] (a direct single-channel simulation)
   and [session_on_raw_radio] ({!Raw_radio.run} with collision detection).
   Both consume the shared [rng] in decide-then-hear, ascending-node order,
   so for any seed they agree on the winner and the rounds count. *)

type msg = Data of int | Ack of int

type phase =
  | Contending  (* counting down the backoff window *)
  | Awaiting_ack of int  (* transmitted Data in the recorded round *)
  | Observer  (* heard a delivered Data frame; contention over *)
  | Dropped  (* out of attempts; listens (and acks) only *)

type automaton = {
  decide : int -> round:int -> msg Action.decision;
  hear : int -> round:int -> msg Raw_radio.reception -> unit;
  confirmed : int option ref;  (* winner, once its ack arrived *)
}

let make_automaton ~rng ~contenders ~attempt_limit ~cw_cap =
  let phase = Array.make contenders Contending in
  let attempt = Array.make contenders 0 in
  let bcnt = Array.make contenders 0 in
  let initialized = Array.make contenders false in
  (* Sender of the Data frame that got through (all listeners heard it);
     the winner itself only learns via the ack. *)
  let delivered = ref None in
  let confirmed = ref None in
  let draw i =
    bcnt.(i) <- Rng.int rng (Backoff.retry_delay ~attempt:attempt.(i) ~cap:cw_cap)
  in
  let acker w = if w = 0 then 1 else 0 in
  let decide i ~round =
    if not initialized.(i) then begin
      initialized.(i) <- true;
      draw i
    end;
    match (!delivered, phase.(i)) with
    | Some w, _ when !confirmed = None ->
        (* Ack round: the designated acker answers; everyone else listens. *)
        if i = acker w && i <> w then Action.broadcast ~label:0 (Ack w)
        else Action.listen ~label:0
    | _, Contending when bcnt.(i) = 0 ->
        phase.(i) <- Awaiting_ack round;
        Action.broadcast ~label:0 (Data i)
    | _, (Contending | Awaiting_ack _ | Observer | Dropped) ->
        Action.listen ~label:0
  in
  let hear i ~round reception =
    match phase.(i) with
    | Awaiting_ack tx_round when tx_round = round ->
        (* Just transmitted: a transmitter hears only Quiet; the verdict
           comes next round. *)
        ()
    | Awaiting_ack _ -> (
        match reception with
        | Raw_radio.Message { msg = Ack w; _ } when w = i ->
            confirmed := Some i
        | Raw_radio.Message _ | Raw_radio.Noise | Raw_radio.Quiet ->
            (* Ack timeout: the frame collided. Double the window and
               redraw, or drop out after the attempt limit. *)
            attempt.(i) <- attempt.(i) + 1;
            if attempt.(i) > attempt_limit then phase.(i) <- Dropped
            else begin
              phase.(i) <- Contending;
              draw i
            end)
    | Contending | Dropped -> (
        match reception with
        | Raw_radio.Message { msg = Data w; _ } ->
            delivered := Some w;
            phase.(i) <- Observer
        | Raw_radio.Message { msg = Ack _; _ } | Raw_radio.Noise ->
            (* Carrier busy: freeze the countdown. *)
            ()
        | Raw_radio.Quiet ->
            if phase.(i) = Contending && bcnt.(i) > 0 then
              bcnt.(i) <- bcnt.(i) - 1)
    | Observer -> ()
  in
  { decide; hear; confirmed }

let check_args name ~contenders ~attempt_limit ~cw_cap ~cap =
  if contenders < 1 then invalid_arg (name ^ ": need a contender");
  if attempt_limit < 1 then invalid_arg (name ^ ": attempt_limit must be >= 1");
  if cw_cap < 1 then invalid_arg (name ^ ": cw_cap must be >= 1");
  if cap < 1 then invalid_arg (name ^ ": cap must be >= 1")

(* Direct simulation: the raw engine's round structure (decide all nodes
   ascending, resolve the single channel, hear all nodes ascending) without
   the engine. *)
let session ?(attempt_limit = default_attempt_limit) ?(cw_cap = default_cw_cap)
    ~rng ~contenders ~cap () =
  check_args "Csma.session" ~contenders ~attempt_limit ~cw_cap ~cap;
  if contenders = 1 then Some { winner = 0; rounds = 1 }
  else begin
    let a = make_automaton ~rng ~contenders ~attempt_limit ~cw_cap in
    let decisions = Array.make contenders (Action.listen ~label:0) in
    let rec loop round =
      if round >= cap then None
      else begin
        for i = 0 to contenders - 1 do
          decisions.(i) <- a.decide i ~round
        done;
        let transmitters = ref [] in
        for i = contenders - 1 downto 0 do
          match decisions.(i).Action.intent with
          | Action.Broadcast msg -> transmitters := (i, msg) :: !transmitters
          | Action.Listen -> ()
        done;
        for i = 0 to contenders - 1 do
          let reception =
            match decisions.(i).Action.intent with
            | Action.Broadcast _ -> Raw_radio.Quiet
            | Action.Listen -> (
                match !transmitters with
                | [] -> Raw_radio.Quiet
                | [ (sender, msg) ] -> Raw_radio.Message { sender; msg }
                | _ :: _ :: _ -> Raw_radio.Noise)
          in
          a.hear i ~round reception
        done;
        match !(a.confirmed) with
        | Some winner -> Some { winner; rounds = round + 1 }
        | None -> loop (round + 1)
      end
    in
    loop 0
  end

let session_on_raw_radio ?(attempt_limit = default_attempt_limit)
    ?(cw_cap = default_cw_cap) ~rng ~contenders ~cap () =
  check_args "Csma.session_on_raw_radio" ~contenders ~attempt_limit ~cw_cap ~cap;
  if contenders = 1 then Some { winner = 0; rounds = 1 }
  else begin
    let a = make_automaton ~rng ~contenders ~attempt_limit ~cw_cap in
    let assignment =
      Crn_channel.Assignment.create ~num_channels:1
        ~local_to_global:(Array.make contenders [| 0 |])
    in
    let availability = Crn_channel.Dynamic.static assignment in
    let nodes =
      Array.init contenders (fun i ->
          Raw_radio.node ~id:i ~decide:(a.decide i) ~hear:(a.hear i))
    in
    let stop ~round:_ = !(a.confirmed) <> None in
    let outcome =
      Raw_radio.run ~collision_detection:true ~stop ~availability ~nodes
        ~max_rounds:cap ()
    in
    match !(a.confirmed) with
    | Some winner -> Some { winner; rounds = outcome.Raw_radio.rounds_run }
    | None -> None
  end
