module Rng = Crn_prng.Rng
module Splitmix = Crn_prng.Splitmix

type t = {
  name : string;
  budget : int;
  jams : slot:int -> node:int -> channel:int -> bool;
  (* Reactive jammers learn from the channel occupancy the engine reports at
     the end of every slot; oblivious jammers leave this [None] and the
     engine skips the occupancy scan entirely. *)
  observe : (slot:int -> (int * int) list -> unit) option;
}

let name t = t.name
let budget t = t.budget
let jams t = t.jams
let observes t = Option.is_some t.observe

let observe t ~slot occupancy =
  match t.observe with Some f -> f ~slot occupancy | None -> ()

let jammed_set t ~slot ~node ~num_channels =
  let set = Crn_channel.Bitset.create num_channels in
  for channel = 0 to num_channels - 1 do
    if t.jams ~slot ~node ~channel then Crn_channel.Bitset.set set channel
  done;
  set

let none =
  {
    name = "none";
    budget = 0;
    jams = (fun ~slot:_ ~node:_ ~channel:_ -> false);
    observe = None;
  }

let of_fun ~name ~budget jams = { name; budget; jams; observe = None }

(* Jams the channel that carried the most audible broadcasters in the
   previous slot (ties to the smallest channel id), at every node. Stateful:
   one value per run — sharing an instance across parallel trials would leak
   occupancy between unrelated runs. *)
let reactive () =
  let target = ref (-1) in
  {
    name = "reactive";
    budget = 1;
    jams = (fun ~slot:_ ~node:_ ~channel -> channel = !target);
    observe =
      Some
        (fun ~slot:_ occupancy ->
          let best = ref (-1) and best_count = ref 0 in
          List.iter
            (fun (channel, count) ->
              if
                count > !best_count
                || (count = !best_count && !best >= 0 && channel < !best)
              then begin
                best := channel;
                best_count := count
              end)
            occupancy;
          target := !best);
  }

(* Deterministic per-(slot, node) jam set: hash the seed with slot and node,
   memoize the resulting subset. *)
let random_subset_jammer ~name ~seed ~budget ~num_channels ~per_node =
  if budget < 0 || budget > num_channels then
    invalid_arg "Jammer: budget out of range";
  let cache : (int * int, Crn_channel.Bitset.t) Hashtbl.t = Hashtbl.create 256 in
  (* Mutex-protected so one jammer can be shared by parallel trials; the
     jam set is a pure function of (slot, node), so contention only costs
     time, never determinism. *)
  let lock = Mutex.create () in
  let set_for ~slot ~node =
    let node_key = if per_node then node else 0 in
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        match Hashtbl.find_opt cache (slot, node_key) with
        | Some s -> s
        | None ->
            let mixed =
              Splitmix.mix64
                (Int64.logxor seed
                   (Int64.of_int ((slot * 0x1000003) lxor (node_key * 0x5bd1e995))))
            in
            let rng = Rng.of_int64 mixed in
            let members = Rng.sample_without_replacement rng budget num_channels in
            let s = Crn_channel.Bitset.of_array num_channels members in
            Hashtbl.replace cache (slot, node_key) s;
            s)
  in
  {
    name;
    budget;
    jams =
      (fun ~slot ~node ~channel ->
        channel < num_channels && Crn_channel.Bitset.mem (set_for ~slot ~node) channel);
    observe = None;
  }

let random_per_node ~seed ~budget ~num_channels =
  random_subset_jammer ~name:"random-per-node" ~seed ~budget ~num_channels ~per_node:true

let random_global ~seed ~budget ~num_channels =
  random_subset_jammer ~name:"random-global" ~seed ~budget ~num_channels ~per_node:false

let sweep ~budget ~num_channels =
  if budget < 0 || budget > num_channels then invalid_arg "Jammer.sweep: budget out of range";
  {
    name = "sweep";
    budget;
    jams =
      (fun ~slot ~node:_ ~channel ->
        let base = slot * budget mod num_channels in
        let offset = (channel - base + num_channels) mod num_channels in
        offset < budget);
    observe = None;
  }

let targeted_low ~budget =
  {
    name = "targeted-low";
    budget;
    jams = (fun ~slot:_ ~node:_ ~channel -> channel < budget);
    observe = None;
  }
