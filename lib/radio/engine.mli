(** The slot-synchronous radio engine implementing the paper's §2 model.

    Per slot, every node submits a {!Action.decision} (a local channel label
    plus broadcast/listen). The engine translates labels to global channels
    through the slot's {!Crn_channel.Dynamic} assignment, resolves contention
    — on each channel with at least one audible broadcaster, one broadcaster
    chosen uniformly at random wins and is delivered to every listener on
    that channel — and feeds back the outcome to each node ({!Action.Won},
    {!Action.Lost}, {!Action.Heard}, {!Action.Silence}, {!Action.Jammed}).

    With a jammer installed, an action on a channel jammed *at that node*
    is absorbed: the node receives {!Action.Jammed}, a jammed broadcaster is
    not eligible to win, and a jammed listener hears nothing. This is the
    receiver-side interference semantics used by the Theorem 18 reduction
    experiments. Reactive jammers ({!Jammer.observes}) additionally receive
    the slot's audible per-channel broadcaster counts via {!Jammer.observe}
    at the end of every slot.

    With a fault schedule installed, a node that is down in a slot is
    absent from it entirely: no decision is requested, nothing is sent or
    heard, and no feedback is delivered — the semantics of a transient
    outage in §1's robustness discussion.

    The engine is polymorphic in the message type, so different protocols
    bring their own message variants without an untyped union.

    {b Canonical resolution order.} Within a slot, channels are resolved in
    ascending global channel id. This fixes the order in which the shared
    [rng] is consumed (one draw per channel with two or more audible
    broadcasters, none otherwise), so winners — and therefore traces,
    counters and every downstream result — are a deterministic function of
    the seed, never of hashtable bucket layout. Within one channel, winner
    indexing and feedback delivery walk broadcasters and listeners in
    descending node id (the historical list order). Reactive jammers
    receive the slot's occupancy in ascending channel order. The slot loop
    is allocation-free in steady state; {!Reference.engine_run} is the
    list-based executable specification it is differentially tested
    against. *)

type 'msg node = {
  id : int;  (** Must equal the node's index in the [nodes] array. *)
  decide : slot:int -> 'msg Action.decision;
  feedback : slot:int -> 'msg Action.feedback -> unit;
}

type outcome = {
  slots_run : int;
      (** Number of slots executed (equals [max_slots] unless [stop] fired). *)
  stopped_early : bool;
  counters : Trace.Counters.t;
}

val run :
  ?jammer:Jammer.t ->
  ?faults:Faults.t ->
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  ?stop:(slot:int -> bool) ->
  ?on_slot_end:(slot:int -> unit) ->
  availability:Crn_channel.Dynamic.t ->
  rng:Crn_prng.Rng.t ->
  nodes:'msg node array ->
  max_slots:int ->
  unit ->
  outcome
(** [run ~availability ~rng ~nodes ~max_slots ()] executes up to [max_slots]
    slots. [stop ~slot] is evaluated after each slot (with the 0-based index
    of the slot just completed) and ends the run when it returns [true].
    With [?trace] supplied, every slot appends {!Trace.Decide}, {!Trace.Win},
    {!Trace.Deliver}, {!Trace.Silent}, {!Trace.Jam} and {!Trace.Down} events
    to it; without it no event is allocated.
    Raises [Invalid_argument] if node ids are inconsistent, the node count
    disagrees with [availability], or a node submits an out-of-range label. *)

val node :
  id:int ->
  decide:(slot:int -> 'msg Action.decision) ->
  feedback:(slot:int -> 'msg Action.feedback -> unit) ->
  'msg node
