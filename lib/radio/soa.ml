(* Struct-of-arrays slot engine for large n.

   {!Engine} models a node as a record of closures and resolves a slot by
   walking intrusive per-channel chains; that is the right shape for a few
   thousand nodes, but at n = 10^5..10^6 the pointer graph stops fitting in
   cache and a single core stops being enough. This engine keeps the same
   slot semantics — PR 4's canonical resolution order, byte-identical
   traces — on a flat representation:

   - Node state is five dense arrays indexed by node id (one intent byte,
     label, message, tuned global channel) so a slot's working set streams
     through cache instead of chasing pointers.
   - The per-node phases (fault marking, protocol decide, label
     translation and jamming, winner selection, listener accounting,
     protocol feedback) shard across contiguous node-id ranges on the
     {!Crn_exec.Pool} domains. Channel-indexed accumulators are private
     per shard and merged between phases, so no two domains ever write the
     same word.
   - Channel resolution walks an O(active) worklist: only channels that
     gained a broadcaster this slot are visited, and the worklist is
     produced in ascending global channel id (the canonical order) either
     directly by the dense merge scan or by {!Scratch.sort_prefix}.

   Determinism is the load-bearing constraint. The ISSUE sketched
   per-shard pre-split RNG streams, but that would make the winner
   sequence a function of the shard count and break byte-equality across
   [--shards]. Instead the *only* consumer of the shared [rng] — one draw
   per contended channel — runs sequentially between the parallel phases,
   in ascending channel order, exactly as {!Engine.run} consumes it. That
   is cheap (O(active) draws per slot, everything heavy stays parallel)
   and gives the stronger guarantee: the same seed produces the same
   winner sequence as the PR 4 engine *and* at any shard count.

   A winner draw picks the [widx]-th broadcaster in descending node id
   (the chain order of the reference engine). On a flat array we select it
   without building chains: the [widx]-th element in descending order is
   the [(count - widx)]-th encountered when scanning node ids ascending,
   so each channel carries a countdown [need = count - widx] and the
   selection scan decrements it per broadcaster until it hits zero.

   Two occupancy-counting strategies, chosen per slot by spectrum size:

   - dense (C <= dense_channel_limit): each shard counts broadcasters into
     a private C-sized row during the decide scan; a sequential merge over
     channels sums rows, building the (already ascending) active list. The
     winner-selection scan also parallelizes: a prefix walk over the
     per-shard subcounts assigns each active channel the shard whose range
     contains the winner, and localizes the countdown to that shard.
   - sparse (C > dense_channel_limit, e.g. shared_core spectra where
     C grows with n): per-shard C-sized rows would dominate, so occupancy
     and selection fall back to sequential O(n) scans over the node
     arrays with a sort of the active list. This is §6's c >> n regime,
     where the sequential-scan crossover lives.

   Both strategies count the same totals and draw in the same order, so
   the choice is observationally invisible.

   Tracing takes a third path: a fully sequential twin of {!Engine.run}'s
   loop built on {!Scratch} chains, emitting events in exactly the PR 4
   order (per-node Decide/Jam/Down ascending; per-channel Win ascending
   with broadcaster feedback then Deliver+listener feedback in descending
   node id; Silent/Jammed in a final ascending node scan) and calling the
   protocol with singleton ranges. Traced runs are therefore byte-equal to
   {!Engine.run} traces by construction, and the differential tests in
   [test/test_soa.ml] hold all three paths to that standard. *)

module Rng = Crn_prng.Rng
module Dynamic = Crn_channel.Dynamic
module Assignment = Crn_channel.Assignment
module Pool = Crn_exec.Pool

let idle = '\000'
let listen = '\001'
let broadcast = '\002'
let jammed_listen = '\003'
let jammed_broadcast = '\004'
let down = '\005'

type t = {
  n : int;
  intent : Bytes.t;  (* node -> intent code, one of the six above *)
  label : int array;  (* node -> local channel label chosen this slot *)
  msg : int array;  (* node -> message payload when broadcasting *)
  tuned : int array;  (* node -> global channel id (valid when audible) *)
  mutable num_channels : int;  (* capacity of the channel-indexed arrays *)
  mutable count : int array;  (* channel -> audible broadcasters this slot *)
  mutable winner : int array;  (* channel -> winning node (count > 0 only) *)
  mutable winner_msg : int array;  (* channel -> winner's message *)
  mutable need : int array;  (* channel -> selection countdown (internal) *)
  mutable owner : int array;  (* channel -> selecting shard (dense mode) *)
  active : int array;  (* channels with >= 1 broadcaster, ascending *)
  mutable active_len : int;
}

type protocol = {
  parallel : bool;
  decide : t -> slot:int -> lo:int -> hi:int -> unit;
  feedback : t -> slot:int -> lo:int -> hi:int -> unit;
}

type outcome = Engine.outcome = {
  slots_run : int;
  stopped_early : bool;
  counters : Trace.Counters.t;
}

let create ~num_nodes =
  if num_nodes <= 0 then invalid_arg "Soa.create: num_nodes must be positive";
  {
    n = num_nodes;
    intent = Bytes.make num_nodes idle;
    label = Array.make num_nodes 0;
    msg = Array.make num_nodes 0;
    tuned = Array.make num_nodes (-1);
    num_channels = 0;
    count = [||];
    winner = [||];
    winner_msg = [||];
    need = [||];
    owner = [||];
    active = Array.make num_nodes 0;
    active_len = 0;
  }

let num_nodes t = t.n
let is_down t node = Bytes.unsafe_get t.intent node = down

let set_listen t node ~label =
  Bytes.unsafe_set t.intent node listen;
  t.label.(node) <- label

let set_broadcast t node ~label ~msg =
  Bytes.unsafe_set t.intent node broadcast;
  t.label.(node) <- label;
  t.msg.(node) <- msg

let was_jammed t node =
  let code = Bytes.unsafe_get t.intent node in
  code = jammed_listen || code = jammed_broadcast

let heard t node =
  Bytes.unsafe_get t.intent node = listen && t.count.(t.tuned.(node)) > 0

let silent t node =
  Bytes.unsafe_get t.intent node = listen && t.count.(t.tuned.(node)) = 0

let sender t node = t.winner.(t.tuned.(node))
let message t node = t.winner_msg.(t.tuned.(node))

let won t node =
  Bytes.unsafe_get t.intent node = broadcast && t.winner.(t.tuned.(node)) = node

let lost t node =
  Bytes.unsafe_get t.intent node = broadcast && t.winner.(t.tuned.(node)) <> node

(* Shard [s] of [shards] owns nodes [lo, hi): balanced contiguous ranges,
   empty when shards > n. *)
let shard_lo ~n ~shards s = s * n / shards
let shard_hi ~n ~shards s = (s + 1) * n / shards

let ensure_channels t cn =
  if cn > t.num_channels then begin
    t.count <- Array.make cn 0;
    t.winner <- Array.make cn (-1);
    t.winner_msg <- Array.make cn 0;
    t.need <- Array.make cn 0;
    t.owner <- Array.make cn 0;
    t.num_channels <- cn
  end

let bad_label node label c =
  invalid_arg
    (Printf.sprintf "Soa.run: node %d chose label %d outside [0,%d)" node label c)

let run ?pool ?(shards = 1) ?(jammer = Jammer.none) ?(faults = Faults.none)
    ?metrics ?trace ?stop ?on_slot_end ?(dense_channel_limit = 4096)
    ~availability ~rng ~protocol ~max_slots () =
  let n = Dynamic.num_nodes availability in
  if n = 0 then invalid_arg "Soa.run: no nodes";
  if max_slots < 0 then invalid_arg "Soa.run: negative max_slots";
  if shards < 1 then invalid_arg "Soa.run: shards must be >= 1";
  (match metrics with
  | Some m ->
      if Array.length m.Metrics.transmissions <> n then
        invalid_arg "Soa.run: metrics sized for a different node count"
  | None -> ());
  let t = create ~num_nodes:n in
  let bump counters i =
    match metrics with
    | Some m -> (counters m).(i) <- (counters m).(i) + 1
    | None -> ()
  in
  (* Hoisted accessors, as in {!Engine.run}: binding the closures once
     keeps the hot loops allocation-free. *)
  let faults_down = Faults.down faults in
  let jammer_jams = Jammer.jams jammer in
  let counters = Trace.Counters.create () in
  let slot = ref 0 in
  let stopped = ref false in
  let end_slot s =
    counters.Trace.Counters.slots_run <- counters.Trace.Counters.slots_run + 1;
    if Jammer.observes jammer then begin
      let occupancy = ref [] in
      for j = t.active_len - 1 downto 0 do
        let channel = t.active.(j) in
        occupancy := (channel, t.count.(channel)) :: !occupancy
      done;
      Jammer.observe jammer ~slot:s !occupancy
    end;
    (match on_slot_end with Some f -> f ~slot:s | None -> ());
    (match stop with Some f -> if f ~slot:s then stopped := true | None -> ());
    incr slot
  in
  (* ---- The fast path: no tracing, node ranges sharded over [exec]. ---- *)
  let fast exec =
    let sub = ref [||] in  (* shards x num_channels per-shard counts (dense) *)
    let bcast_partial = Array.make shards 0 in
    let jam_partial = Array.make shards 0 in
    let deliver_partial = Array.make shards 0 in
    let run_shards body =
      match exec with
      | Some p when shards > 1 -> Pool.parallel_for ~chunk:1 p ~n:shards body
      | _ ->
          for s = 0 to shards - 1 do
            body s
          done
    in
    while (not !stopped) && !slot < max_slots do
      let s = !slot in
      let assignment = Dynamic.at availability s in
      let c = Assignment.channels_per_node assignment in
      let cn = Assignment.num_channels assignment in
      ensure_channels t cn;
      let dense = cn <= dense_channel_limit in
      let stride = t.num_channels in
      if dense && Array.length !sub < shards * stride then
        sub := Array.make (shards * stride) 0;
      let subs = !sub in
      (* Reset only the channels touched last slot (O(active)). *)
      for j = 0 to t.active_len - 1 do
        t.count.(t.active.(j)) <- 0
      done;
      t.active_len <- 0;
      (* Phase 1: fault marking, protocol decide, label translation,
         jamming. A [parallel] protocol fuses all three into one pass per
         shard, each confined to its node range and its private [subs]
         row; a sequential protocol (one whose callbacks do not honor the
         sharding contract) gets a single full-range [decide] call between
         two parallel passes — the shared rng, if the protocol draws from
         it, is then consumed in ascending node order exactly as
         {!Engine.run} consumes it. *)
      let mark sh =
        let lo = shard_lo ~n ~shards sh and hi = shard_hi ~n ~shards sh in
        if dense then Array.fill subs (sh * stride) cn 0;
        for i = lo to hi - 1 do
          Bytes.unsafe_set t.intent i
            (if faults_down ~slot:s ~node:i then down else idle)
        done
      in
      let translate sh =
        let lo = shard_lo ~n ~shards sh and hi = shard_hi ~n ~shards sh in
        let jams = ref 0 and bcasts = ref 0 in
        for i = lo to hi - 1 do
          let code = Bytes.unsafe_get t.intent i in
          if code = listen || code = broadcast then begin
            let label = t.label.(i) in
            if label < 0 || label >= c then bad_label i label c;
            let channel = Assignment.global_of_local assignment ~node:i ~label in
            t.tuned.(i) <- channel;
            bump (fun m -> m.Metrics.awake_slots) i;
            if jammer_jams ~slot:s ~node:i ~channel then begin
              Bytes.unsafe_set t.intent i
                (if code = broadcast then jammed_broadcast else jammed_listen);
              incr jams;
              bump (fun m -> m.Metrics.jammed) i
            end
            else if code = broadcast then begin
              incr bcasts;
              bump (fun m -> m.Metrics.transmissions) i;
              if dense then begin
                let k = (sh * stride) + channel in
                subs.(k) <- subs.(k) + 1
              end
            end
          end
        done;
        jam_partial.(sh) <- !jams;
        bcast_partial.(sh) <- !bcasts
      in
      if protocol.parallel then
        run_shards (fun sh ->
            mark sh;
            protocol.decide t ~slot:s ~lo:(shard_lo ~n ~shards sh)
              ~hi:(shard_hi ~n ~shards sh);
            translate sh)
      else begin
        run_shards mark;
        protocol.decide t ~slot:s ~lo:0 ~hi:n;
        run_shards translate
      end;
      (* Phase 2 (sequential): merge occupancy into [count] and build the
         active worklist in ascending channel order. *)
      if dense then
        for channel = 0 to cn - 1 do
          let total = ref 0 in
          for sh = 0 to shards - 1 do
            total := !total + subs.((sh * stride) + channel)
          done;
          if !total > 0 then begin
            t.count.(channel) <- !total;
            t.active.(t.active_len) <- channel;
            t.active_len <- t.active_len + 1
          end
        done
      else begin
        for i = 0 to n - 1 do
          if Bytes.unsafe_get t.intent i = broadcast then begin
            let channel = t.tuned.(i) in
            if t.count.(channel) = 0 then begin
              t.active.(t.active_len) <- channel;
              t.active_len <- t.active_len + 1
            end;
            t.count.(channel) <- t.count.(channel) + 1
          end
        done;
        Scratch.sort_prefix t.active t.active_len
      end;
      (* Phase 3 (sequential): one winner draw per active channel, in
         ascending channel order, off the shared stream — the only part of
         the slot that must stay sequential for determinism. The draw is
         stored as the descending-order countdown [need = count - widx]. *)
      for j = 0 to t.active_len - 1 do
        let channel = t.active.(j) in
        let m = t.count.(channel) in
        let widx = if m = 1 then 0 else Rng.int rng m in
        t.need.(channel) <- m - widx;
        counters.Trace.Counters.wins <- counters.Trace.Counters.wins + 1;
        if m > 1 then
          counters.Trace.Counters.contended <-
            counters.Trace.Counters.contended + 1
      done;
      (* Phase 4: materialize winners and account listener deliveries. In
         dense mode a prefix walk over the per-shard subcounts localizes
         each channel's countdown to the shard that contains its winner, so
         the node scan parallelizes; in sparse mode one sequential scan
         runs the countdowns globally. *)
      if dense then begin
        for j = 0 to t.active_len - 1 do
          let channel = t.active.(j) in
          let target = ref t.need.(channel) in
          let sh = ref 0 in
          while !target > subs.((!sh * stride) + channel) do
            target := !target - subs.((!sh * stride) + channel);
            incr sh
          done;
          t.owner.(channel) <- !sh;
          t.need.(channel) <- !target
        done;
        run_shards (fun sh ->
            let lo = shard_lo ~n ~shards sh and hi = shard_hi ~n ~shards sh in
            let deliveries = ref 0 in
            for i = lo to hi - 1 do
              let code = Bytes.unsafe_get t.intent i in
              if code = broadcast then begin
                let channel = t.tuned.(i) in
                if t.owner.(channel) = sh then begin
                  let r = t.need.(channel) - 1 in
                  t.need.(channel) <- r;
                  if r = 0 then begin
                    t.winner.(channel) <- i;
                    t.winner_msg.(channel) <- t.msg.(i)
                  end
                end
              end
              else if code = listen then begin
                let channel = t.tuned.(i) in
                if t.count.(channel) > 0 then begin
                  incr deliveries;
                  bump (fun m -> m.Metrics.receptions) i
                end
              end
            done;
            deliver_partial.(sh) <- !deliveries)
      end
      else begin
        let deliveries = ref 0 in
        for i = 0 to n - 1 do
          let code = Bytes.unsafe_get t.intent i in
          if code = broadcast then begin
            let channel = t.tuned.(i) in
            let r = t.need.(channel) - 1 in
            t.need.(channel) <- r;
            if r = 0 then begin
              t.winner.(channel) <- i;
              t.winner_msg.(channel) <- t.msg.(i)
            end
          end
          else if code = listen then begin
            let channel = t.tuned.(i) in
            if t.count.(channel) > 0 then begin
              incr deliveries;
              bump (fun m -> m.Metrics.receptions) i
            end
          end
        done;
        Array.fill deliver_partial 0 shards 0;
        deliver_partial.(0) <- !deliveries
      end;
      (* Phase 5: protocol feedback — parallel over the node ranges, or
         one sequential full-range call for a sequential protocol (same
         ascending node order as {!Engine.run}'s final feedback scans; the
         machine layer requires order-commutative feedback either way). *)
      if protocol.parallel then
        run_shards (fun sh ->
            protocol.feedback t ~slot:s ~lo:(shard_lo ~n ~shards sh)
              ~hi:(shard_hi ~n ~shards sh))
      else protocol.feedback t ~slot:s ~lo:0 ~hi:n;
      let bcasts = ref 0 and jams = ref 0 and deliveries = ref 0 in
      for sh = 0 to shards - 1 do
        bcasts := !bcasts + bcast_partial.(sh);
        jams := !jams + jam_partial.(sh);
        deliveries := !deliveries + deliver_partial.(sh)
      done;
      counters.Trace.Counters.broadcasts <-
        counters.Trace.Counters.broadcasts + !bcasts;
      counters.Trace.Counters.jammed_actions <-
        counters.Trace.Counters.jammed_actions + !jams;
      counters.Trace.Counters.deliveries <-
        counters.Trace.Counters.deliveries + !deliveries;
      end_slot s
    done
  in
  (* ---- The traced path: a sequential twin of {!Engine.run} emitting
     events in exactly its order, so traces are byte-equal by
     construction. Protocol callbacks use singleton ranges. ---- *)
  let traced tr =
    let emit ev = Trace.record tr ev in
    let scratch = Scratch.create ~num_nodes:n in
    while (not !stopped) && !slot < max_slots do
      let s = !slot in
      let assignment = Dynamic.at availability s in
      let c = Assignment.channels_per_node assignment in
      let cn = Assignment.num_channels assignment in
      ensure_channels t cn;
      Scratch.begin_slot scratch ~num_channels:cn;
      for j = 0 to t.active_len - 1 do
        t.count.(t.active.(j)) <- 0
      done;
      t.active_len <- 0;
      for i = 0 to n - 1 do
        if faults_down ~slot:s ~node:i then begin
          Bytes.unsafe_set t.intent i down;
          emit (Trace.Down { slot = s; node = i })
        end
        else begin
          Bytes.unsafe_set t.intent i idle;
          protocol.decide t ~slot:s ~lo:i ~hi:(i + 1);
          let code = Bytes.unsafe_get t.intent i in
          if code = listen || code = broadcast then begin
            let label = t.label.(i) in
            if label < 0 || label >= c then bad_label i label c;
            let channel = Assignment.global_of_local assignment ~node:i ~label in
            t.tuned.(i) <- channel;
            bump (fun m -> m.Metrics.awake_slots) i;
            if jammer_jams ~slot:s ~node:i ~channel then begin
              Bytes.unsafe_set t.intent i
                (if code = broadcast then jammed_broadcast else jammed_listen);
              counters.Trace.Counters.jammed_actions <-
                counters.Trace.Counters.jammed_actions + 1;
              emit (Trace.Jam { slot = s; node = i; channel });
              bump (fun m -> m.Metrics.jammed) i
            end
            else begin
              emit
                (Trace.Decide
                   { slot = s; node = i; channel; label; tx = code = broadcast });
              if code = broadcast then begin
                Scratch.add_broadcaster scratch ~channel ~node:i;
                if t.count.(channel) = 0 then begin
                  t.active.(t.active_len) <- channel;
                  t.active_len <- t.active_len + 1
                end;
                t.count.(channel) <- t.count.(channel) + 1;
                counters.Trace.Counters.broadcasts <-
                  counters.Trace.Counters.broadcasts + 1;
                bump (fun m -> m.Metrics.transmissions) i
              end
              else Scratch.add_listener scratch ~channel ~node:i
            end
          end
        end
      done;
      Scratch.sort_active scratch;
      for j = 0 to scratch.Scratch.active_len - 1 do
        let channel = scratch.Scratch.active.(j) in
        let m = scratch.Scratch.bcast_count.(channel) in
        if m > 0 then begin
          let widx = if m = 1 then 0 else Rng.int rng m in
          let winner_id = Scratch.nth_broadcaster scratch ~channel widx in
          t.winner.(channel) <- winner_id;
          t.winner_msg.(channel) <- t.msg.(winner_id);
          counters.Trace.Counters.wins <- counters.Trace.Counters.wins + 1;
          if m > 1 then
            counters.Trace.Counters.contended <-
              counters.Trace.Counters.contended + 1;
          emit (Trace.Win { slot = s; channel; winner = winner_id; contenders = m });
          let b = ref scratch.Scratch.bcast_head.(channel) in
          while !b >= 0 do
            let node = !b in
            b := scratch.Scratch.next.(node);
            protocol.feedback t ~slot:s ~lo:node ~hi:(node + 1)
          done;
          let l = ref scratch.Scratch.listen_head.(channel) in
          while !l >= 0 do
            let node = !l in
            l := scratch.Scratch.next.(node);
            counters.Trace.Counters.deliveries <-
              counters.Trace.Counters.deliveries + 1;
            emit
              (Trace.Deliver { slot = s; channel; sender = winner_id; receiver = node });
            bump (fun m -> m.Metrics.receptions) node;
            protocol.feedback t ~slot:s ~lo:node ~hi:(node + 1)
          done
        end
      done;
      for i = 0 to n - 1 do
        let code = Bytes.unsafe_get t.intent i in
        if code = jammed_listen || code = jammed_broadcast then
          protocol.feedback t ~slot:s ~lo:i ~hi:(i + 1)
        else if code = listen && t.count.(t.tuned.(i)) = 0 then begin
          emit (Trace.Silent { slot = s; node = i; channel = t.tuned.(i) });
          protocol.feedback t ~slot:s ~lo:i ~hi:(i + 1)
        end
      done;
      (* [t.active] is in discovery order here (the canonical order came
         from the scratch chains); the observe report must be ascending. *)
      if Jammer.observes jammer then Scratch.sort_prefix t.active t.active_len;
      end_slot s
    done
  in
  (match trace with
  | Some tr -> traced tr
  | None -> (
      if shards = 1 then fast None
      else
        match pool with
        | Some p -> fast (Some p)
        | None -> Pool.with_pool ~jobs:shards (fun p -> fast (Some p))));
  { slots_run = !slot; stopped_early = !stopped; counters }
