module Rng = Crn_prng.Rng
module Dynamic = Crn_channel.Dynamic
module Assignment = Crn_channel.Assignment

type 'msg node = {
  id : int;
  decide : slot:int -> 'msg Action.decision;
  feedback : slot:int -> 'msg Action.feedback -> unit;
}

type outcome = { slots_run : int; stopped_early : bool; counters : Trace.Counters.t }

let node ~id ~decide ~feedback = { id; decide; feedback }

(* Per-channel occupancy for one slot. Channels are sparse relative to the
   spectrum size, so a hashtable keyed by global channel id is used. *)
type 'msg channel_state = {
  mutable broadcasters : (int * 'msg) list;  (* audible: (node, msg) *)
  mutable listeners : int list;  (* audible listeners *)
}

let run ?(jammer = Jammer.none) ?(faults = Faults.none) ?metrics ?trace ?stop
    ?on_slot_end ~availability ~rng ~nodes ~max_slots () =
  let n = Array.length nodes in
  if n = 0 then invalid_arg "Engine.run: no nodes";
  if Dynamic.num_nodes availability <> n then
    invalid_arg "Engine.run: node count disagrees with availability";
  Array.iteri
    (fun i node -> if node.id <> i then invalid_arg "Engine.run: node id mismatch")
    nodes;
  if max_slots < 0 then invalid_arg "Engine.run: negative max_slots";
  (match metrics with
  | Some m ->
      if Array.length m.Metrics.transmissions <> n then
        invalid_arg "Engine.run: metrics sized for a different node count"
  | None -> ());
  let bump counters i =
    match metrics with
    | Some m -> (counters m).(i) <- (counters m).(i) + 1
    | None -> ()
  in
  (* Tracing is zero-cost when disabled: every recording site is guarded by
     this match, so the event is never even allocated. *)
  let traced = trace <> None in
  let emit ev = match trace with Some tr -> Trace.record tr ev | None -> () in
  let counters = Trace.Counters.create () in
  let channels : (int, 'msg channel_state) Hashtbl.t = Hashtbl.create (4 * n) in
  (* Scratch: the decision each node made this slot, and its global channel
     (or -1 when the action was jammed). *)
  let decisions = Array.make n (Action.listen ~label:0) in
  let tuned = Array.make n (-1) in
  let slot = ref 0 in
  let stopped = ref false in
  while (not !stopped) && !slot < max_slots do
    let s = !slot in
    let assignment = Dynamic.at availability s in
    let c = Assignment.channels_per_node assignment in
    Hashtbl.reset channels;
    (* Collect decisions and build per-channel occupancy. A node that is
       down this slot is simply absent: it is not asked for a decision and
       receives no feedback. *)
    for i = 0 to n - 1 do
      if Faults.down faults ~slot:s ~node:i then begin
        tuned.(i) <- -2;
        if traced then emit (Trace.Down { slot = s; node = i })
      end
      else begin
      let decision = nodes.(i).decide ~slot:s in
      if decision.Action.label < 0 || decision.Action.label >= c then
        invalid_arg
          (Printf.sprintf "Engine.run: node %d chose label %d outside [0,%d)" i
             decision.Action.label c);
      decisions.(i) <- decision;
      let channel = Assignment.global_of_local assignment ~node:i ~label:decision.Action.label in
      bump (fun m -> m.Metrics.awake_slots) i;
      if Jammer.jams jammer ~slot:s ~node:i ~channel then begin
        tuned.(i) <- -1;
        counters.Trace.Counters.jammed_actions <-
          counters.Trace.Counters.jammed_actions + 1;
        if traced then emit (Trace.Jam { slot = s; node = i; channel });
        bump (fun m -> m.Metrics.jammed) i
      end
      else begin
        tuned.(i) <- channel;
        if traced then
          emit
            (Trace.Decide
               {
                 slot = s;
                 node = i;
                 channel;
                 label = decision.Action.label;
                 tx = Action.is_broadcast decision;
               });
        let state =
          match Hashtbl.find_opt channels channel with
          | Some st -> st
          | None ->
              let st = { broadcasters = []; listeners = [] } in
              Hashtbl.replace channels channel st;
              st
        in
        match decision.Action.intent with
        | Action.Broadcast msg ->
            state.broadcasters <- (i, msg) :: state.broadcasters;
            counters.Trace.Counters.broadcasts <-
              counters.Trace.Counters.broadcasts + 1;
            bump (fun m -> m.Metrics.transmissions) i
        | Action.Listen -> state.listeners <- i :: state.listeners
      end
      end
    done;
    (* Resolve each channel: one uniformly random winner among audible
       broadcasters; deliver to audible listeners; inform losers. *)
    Hashtbl.iter
      (fun channel state ->
        match state.broadcasters with
        | [] -> ()
        | broadcasters ->
            let count = List.length broadcasters in
            let widx = if count = 1 then 0 else Rng.int rng count in
            let winner_id, winner_msg = List.nth broadcasters widx in
            counters.Trace.Counters.wins <- counters.Trace.Counters.wins + 1;
            if count > 1 then
              counters.Trace.Counters.contended <-
                counters.Trace.Counters.contended + 1;
            if traced then
              emit
                (Trace.Win { slot = s; channel; winner = winner_id; contenders = count });
            List.iter
              (fun (b, _msg) ->
                if b = winner_id then nodes.(b).feedback ~slot:s Action.Won
                else
                  nodes.(b).feedback ~slot:s
                    (Action.Lost { winner = winner_id; msg = winner_msg }))
              broadcasters;
            List.iter
              (fun l ->
                counters.Trace.Counters.deliveries <-
                  counters.Trace.Counters.deliveries + 1;
                if traced then
                  emit
                    (Trace.Deliver
                       { slot = s; channel; sender = winner_id; receiver = l });
                bump (fun m -> m.Metrics.receptions) l;
                nodes.(l).feedback ~slot:s
                  (Action.Heard { sender = winner_id; msg = winner_msg }))
              state.listeners)
      channels;
    (* Feedback for nodes that heard nothing or were jammed; down nodes
       (tuned = -2) get nothing. *)
    for i = 0 to n - 1 do
      if tuned.(i) = -2 then ()
      else if tuned.(i) = -1 then nodes.(i).feedback ~slot:s Action.Jammed
      else
        match decisions.(i).Action.intent with
        | Action.Broadcast _ -> ()  (* already got Won/Lost above *)
        | Action.Listen ->
            let state = Hashtbl.find channels tuned.(i) in
            if state.broadcasters = [] then begin
              if traced then
                emit (Trace.Silent { slot = s; node = i; channel = tuned.(i) });
              nodes.(i).feedback ~slot:s Action.Silence
            end
    done;
    counters.Trace.Counters.slots_run <- counters.Trace.Counters.slots_run + 1;
    (* Reactive jammers learn from this slot's audible occupancy; the scan is
       skipped entirely for oblivious jammers. *)
    if Jammer.observes jammer then begin
      let occupancy =
        Hashtbl.fold
          (fun channel state acc ->
            match state.broadcasters with
            | [] -> acc
            | bs -> (channel, List.length bs) :: acc)
          channels []
      in
      Jammer.observe jammer ~slot:s occupancy
    end;
    (match on_slot_end with Some f -> f ~slot:s | None -> ());
    (match stop with Some f -> if f ~slot:s then stopped := true | None -> ());
    incr slot
  done;
  { slots_run = !slot; stopped_early = !stopped; counters }
