module Rng = Crn_prng.Rng
module Dynamic = Crn_channel.Dynamic
module Assignment = Crn_channel.Assignment

type 'msg node = {
  id : int;
  decide : slot:int -> 'msg Action.decision;
  feedback : slot:int -> 'msg Action.feedback -> unit;
}

type outcome = { slots_run : int; stopped_early : bool; counters : Trace.Counters.t }

let node ~id ~decide ~feedback = { id; decide; feedback }

(* The slot loop is allocation-free in steady state: per-channel occupancy
   lives in the dense {!Scratch} arrays reused across slots, winner messages
   are read back out of the [decisions] array, and every trace/metrics/
   occupancy site is guarded so nothing is allocated when the corresponding
   feature is off. Channels are resolved in ascending global channel id —
   the canonical order — so the shared [rng] is consumed identically on
   every run of the same seed, independent of hashing or insertion order.
   {!Reference.engine_run} is the list-based executable specification this
   implementation is differentially tested against. *)
let run ?(jammer = Jammer.none) ?(faults = Faults.none) ?metrics ?trace ?stop
    ?on_slot_end ~availability ~rng ~nodes ~max_slots () =
  let n = Array.length nodes in
  if n = 0 then invalid_arg "Engine.run: no nodes";
  if Dynamic.num_nodes availability <> n then
    invalid_arg "Engine.run: node count disagrees with availability";
  Array.iteri
    (fun i node -> if node.id <> i then invalid_arg "Engine.run: node id mismatch")
    nodes;
  if max_slots < 0 then invalid_arg "Engine.run: negative max_slots";
  (match metrics with
  | Some m ->
      if Array.length m.Metrics.transmissions <> n then
        invalid_arg "Engine.run: metrics sized for a different node count"
  | None -> ());
  let bump counters i =
    match metrics with
    | Some m -> (counters m).(i) <- (counters m).(i) + 1
    | None -> ()
  in
  (* Tracing is zero-cost when disabled: every recording site is guarded by
     this match, so the event is never even allocated. *)
  let traced = trace <> None in
  let emit ev = match trace with Some tr -> Trace.record tr ev | None -> () in
  (* Hoist the fault/jammer predicates out of the accessor records: calling
     [Faults.down faults ~slot ~node] in the loop over-applies the arity-1
     accessor, which builds a fresh partial-application closure on every
     call. Binding the closure once keeps the hot loop allocation-free. *)
  let faults_down = Faults.down faults in
  let jammer_jams = Jammer.jams jammer in
  let counters = Trace.Counters.create () in
  let scratch = Scratch.create ~num_nodes:n in
  (* Scratch: the decision each node made this slot, and its global channel
     (or -1 when the action was jammed, -2 when the node was down). *)
  let decisions = Array.make n (Action.listen ~label:0) in
  let tuned = Array.make n (-1) in
  let slot = ref 0 in
  let stopped = ref false in
  while (not !stopped) && !slot < max_slots do
    let s = !slot in
    let assignment = Dynamic.at availability s in
    let c = Assignment.channels_per_node assignment in
    Scratch.begin_slot scratch ~num_channels:(Assignment.num_channels assignment);
    (* Collect decisions and build per-channel occupancy. A node that is
       down this slot is simply absent: it is not asked for a decision and
       receives no feedback. *)
    for i = 0 to n - 1 do
      if faults_down ~slot:s ~node:i then begin
        tuned.(i) <- -2;
        if traced then emit (Trace.Down { slot = s; node = i })
      end
      else begin
      let decision = nodes.(i).decide ~slot:s in
      if decision.Action.label < 0 || decision.Action.label >= c then
        invalid_arg
          (Printf.sprintf "Engine.run: node %d chose label %d outside [0,%d)" i
             decision.Action.label c);
      decisions.(i) <- decision;
      let channel = Assignment.global_of_local assignment ~node:i ~label:decision.Action.label in
      bump (fun m -> m.Metrics.awake_slots) i;
      if jammer_jams ~slot:s ~node:i ~channel then begin
        tuned.(i) <- -1;
        counters.Trace.Counters.jammed_actions <-
          counters.Trace.Counters.jammed_actions + 1;
        if traced then emit (Trace.Jam { slot = s; node = i; channel });
        bump (fun m -> m.Metrics.jammed) i
      end
      else begin
        tuned.(i) <- channel;
        if traced then
          emit
            (Trace.Decide
               {
                 slot = s;
                 node = i;
                 channel;
                 label = decision.Action.label;
                 tx = Action.is_broadcast decision;
               });
        match decision.Action.intent with
        | Action.Broadcast _ ->
            Scratch.add_broadcaster scratch ~channel ~node:i;
            counters.Trace.Counters.broadcasts <-
              counters.Trace.Counters.broadcasts + 1;
            bump (fun m -> m.Metrics.transmissions) i
        | Action.Listen -> Scratch.add_listener scratch ~channel ~node:i
      end
      end
    done;
    (* Resolve each active channel in ascending global channel id (the
       canonical order): one uniformly random winner among audible
       broadcasters; deliver to audible listeners; inform losers. *)
    Scratch.sort_active scratch;
    for j = 0 to scratch.Scratch.active_len - 1 do
      let channel = scratch.Scratch.active.(j) in
      let count = scratch.Scratch.bcast_count.(channel) in
      if count > 0 then begin
        let widx = if count = 1 then 0 else Rng.int rng count in
        let winner_id = Scratch.nth_broadcaster scratch ~channel widx in
        let winner_msg =
          match decisions.(winner_id).Action.intent with
          | Action.Broadcast msg -> msg
          | Action.Listen -> assert false
        in
        counters.Trace.Counters.wins <- counters.Trace.Counters.wins + 1;
        if count > 1 then
          counters.Trace.Counters.contended <-
            counters.Trace.Counters.contended + 1;
        if traced then
          emit
            (Trace.Win { slot = s; channel; winner = winner_id; contenders = count });
        let b = ref scratch.Scratch.bcast_head.(channel) in
        while !b >= 0 do
          let node = !b in
          b := scratch.Scratch.next.(node);
          if node = winner_id then nodes.(node).feedback ~slot:s Action.Won
          else
            nodes.(node).feedback ~slot:s
              (Action.Lost { winner = winner_id; msg = winner_msg })
        done;
        let l = ref scratch.Scratch.listen_head.(channel) in
        while !l >= 0 do
          let node = !l in
          l := scratch.Scratch.next.(node);
          counters.Trace.Counters.deliveries <-
            counters.Trace.Counters.deliveries + 1;
          if traced then
            emit
              (Trace.Deliver { slot = s; channel; sender = winner_id; receiver = node });
          bump (fun m -> m.Metrics.receptions) node;
          nodes.(node).feedback ~slot:s
            (Action.Heard { sender = winner_id; msg = winner_msg })
        done
      end
    done;
    (* Feedback for nodes that heard nothing or were jammed; down nodes
       (tuned = -2) get nothing. *)
    for i = 0 to n - 1 do
      if tuned.(i) = -2 then ()
      else if tuned.(i) = -1 then nodes.(i).feedback ~slot:s Action.Jammed
      else
        match decisions.(i).Action.intent with
        | Action.Broadcast _ -> ()  (* already got Won/Lost above *)
        | Action.Listen ->
            if scratch.Scratch.bcast_count.(tuned.(i)) = 0 then begin
              if traced then
                emit (Trace.Silent { slot = s; node = i; channel = tuned.(i) });
              nodes.(i).feedback ~slot:s Action.Silence
            end
    done;
    counters.Trace.Counters.slots_run <- counters.Trace.Counters.slots_run + 1;
    (* Reactive jammers learn from this slot's audible occupancy; the scan is
       skipped entirely (and nothing allocated) for oblivious jammers. The
       list is in ascending channel order, like the resolution itself. *)
    if Jammer.observes jammer then begin
      let occupancy = ref [] in
      for j = scratch.Scratch.active_len - 1 downto 0 do
        let channel = scratch.Scratch.active.(j) in
        let count = scratch.Scratch.bcast_count.(channel) in
        if count > 0 then occupancy := (channel, count) :: !occupancy
      done;
      Jammer.observe jammer ~slot:s !occupancy
    end;
    (match on_slot_end with Some f -> f ~slot:s | None -> ());
    (match stop with Some f -> if f ~slot:s then stopped := true | None -> ());
    incr slot
  done;
  { slots_run = !slot; stopped_early = !stopped; counters }
