module Rng = Crn_prng.Rng
module Assignment = Crn_channel.Assignment
module Dynamic = Crn_channel.Dynamic

let overlap_guarantee ~num_channels ~budget = num_channels - (2 * budget)

let availability_of_jammer ?shuffle_labels ~num_nodes ~num_channels ~jammer () =
  let budget = Jammer.budget jammer in
  if budget >= num_channels then
    invalid_arg "Jamming_reduction: jammer budget must be below num_channels";
  let channels_per_node = num_channels - budget in
  let label_rng = Option.map Rng.copy shuffle_labels in
  let view slot =
    let rows =
      Array.init num_nodes (fun node ->
          let open_channels = ref [] in
          for channel = num_channels - 1 downto 0 do
            if not (Jammer.jams jammer ~slot ~node ~channel) then
              open_channels := channel :: !open_channels
          done;
          let row = Array.of_list !open_channels in
          if Array.length row <> channels_per_node then
            invalid_arg
              (Printf.sprintf
                 "Jamming_reduction: jammer left %d channels open at node %d \
                  (expected exactly %d)"
                 (Array.length row) node channels_per_node);
          (match label_rng with Some rng -> Rng.shuffle rng row | None -> ());
          row)
    in
    Assignment.create ~num_channels ~local_to_global:rows
  in
  Dynamic.of_fun ~num_nodes ~channels_per_node view

let sensed_availability ?shuffle_labels ~num_nodes ~num_channels ~jammer () =
  let budget = Jammer.budget jammer in
  if 2 * budget >= num_channels then
    invalid_arg "Jamming_reduction: jammer budget must be below num_channels/2";
  let channels_per_node = num_channels - budget in
  let label_rng = Option.map Rng.copy shuffle_labels in
  let view slot =
    let rows =
      Array.init num_nodes (fun node ->
          (* Collect open channels low-to-high, then withhold the
             highest-id ones until exactly [num_channels - budget] remain:
             a node that senses fewer than [budget] jammed channels
             conservatively treats the excess as jammed too, so all rows
             stay the same length (the model's equal-set-size requirement)
             and pairwise overlap is still >= C - 2*budget — each node
             withholds at most [budget] channels in total. *)
          let open_channels = ref [] in
          for channel = num_channels - 1 downto 0 do
            if not (Jammer.jams jammer ~slot ~node ~channel) then
              open_channels := channel :: !open_channels
          done;
          let all_open = Array.of_list !open_channels in
          if Array.length all_open < channels_per_node then
            invalid_arg
              (Printf.sprintf
                 "Jamming_reduction: jammer exceeded its budget at node %d \
                  (left %d channels open, expected at least %d)"
                 node (Array.length all_open) channels_per_node);
          let row = Array.sub all_open 0 channels_per_node in
          (match label_rng with Some rng -> Rng.shuffle rng row | None -> ());
          row)
    in
    Assignment.create ~num_channels ~local_to_global:rows
  in
  Dynamic.of_fun ~num_nodes ~channels_per_node view
