(** Machine → struct-of-arrays bridge: run any ['msg Engine.node] array on
    {!Soa.run}.

    [protocol nodes] adapts the per-node decide/feedback closures of
    [nodes] into the range-callback shape {!Soa.protocol} expects:
    [decide] polls each non-down node in its range and writes the decision
    into the SoA intent arrays; [feedback] classifies each node's slot
    outcome through the {!Soa} accessors and replays it as the
    {!Action.feedback} the node would have received from {!Engine.run}.
    Message payloads of any type are supported — the adapter keeps the
    slot's decisions and hands each listener the winner's own typed
    message, exactly as {!Engine.run} recovers it, so the int-payload
    restriction of the SoA arrays never surfaces.

    [parallel] (default [false]) is forwarded to {!Soa.protocol.parallel}
    and must be [true] only when the node closures honor the sharding
    contract (per-node RNG streams, range-confined writes, [Atomic]
    commutative aggregates — see {!Soa.protocol}). With the default, the
    SoA engine calls the adapter sequentially over the full node range,
    which is correct for every machine whose feedback is
    order-commutative.

    Feedback-order caveat, inherited from the SoA fast path: feedback
    arrives in ascending node id, not {!Engine.run}'s per-channel order,
    so a machine's feedback must be order-commutative across nodes for
    untraced results to match the classic engine (traced runs use the
    sequential twin, which replays the exact engine order). Every registry
    machine satisfies this; the differential suite in [test/test_soa.ml]
    enforces it entry by entry. *)

val protocol : ?parallel:bool -> 'msg Engine.node array -> Soa.protocol
