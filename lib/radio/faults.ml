module Splitmix = Crn_prng.Splitmix

type t = { name : string; down : slot:int -> node:int -> bool }

let name t = t.name
let to_string t = t.name
let down t = t.down

let none = { name = "none"; down = (fun ~slot:_ ~node:_ -> false) }

let of_fun ~name down = { name; down }

let crash ~node ~from_slot =
  {
    name = Printf.sprintf "crash(node=%d,slot=%d)" node from_slot;
    down = (fun ~slot ~node:v -> v = node && slot >= from_slot);
  }

let crash_restart ~node ~from_slot ~down_for =
  if down_for < 1 then invalid_arg "Faults.crash_restart: down_for must be >= 1";
  {
    name = Printf.sprintf "crash-restart(node=%d,at=%d,for=%d)" node from_slot down_for;
    down =
      (fun ~slot ~node:v ->
        v = node && slot >= from_slot && slot < from_slot + down_for);
  }

let random_naps ~seed ~rate =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Faults.random_naps: rate out of [0,1]";
  {
    name = Printf.sprintf "random-naps(%.2f)" rate;
    down =
      (fun ~slot ~node ->
        let h =
          Splitmix.mix64
            (Int64.logxor seed
               (Int64.of_int ((slot * 0x9E3779B1) lxor (node * 0x85EBCA77))))
        in
        (* Map the top 53 bits to [0, 1). *)
        let u =
          Int64.to_float (Int64.shift_right_logical h 11) *. 0x1.0p-53
        in
        u < rate);
  }

(* Per-node two-state Markov chain over slots: up -> down with probability
   1/mean_up, down -> up with probability 1/mean_down, coins hashed from
   (seed, node, slot). The chain is sequential, so states are memoized per
   node up to the highest slot queried; the memo is guarded by a mutex
   because parallel trial runners may share a schedule across domains. *)
let bernoulli_churn ~seed ~mean_up ~mean_down =
  if mean_up < 1.0 || mean_down < 1.0 then
    invalid_arg "Faults.bernoulli_churn: mean up/down times must be >= 1 slot";
  let p_fail = 1.0 /. mean_up and p_heal = 1.0 /. mean_down in
  let coin ~node ~slot =
    let h =
      Splitmix.mix64
        (Int64.logxor seed
           (Int64.of_int
              (((slot * 0x9E3779B1) lxor (node * 0x85EBCA77)) + 0x165667B1)))
    in
    Int64.to_float (Int64.shift_right_logical h 11) *. 0x1.0p-53
  in
  let lock = Mutex.create () in
  (* node -> (buf, filled): buf.[i] = '\001' iff down in slot i, for i < filled. *)
  let memo : (int, Bytes.t ref * int ref) Hashtbl.t = Hashtbl.create 16 in
  let down ~slot ~node =
    if slot < 0 then false
    else begin
      Mutex.lock lock;
      let buf, filled =
        match Hashtbl.find_opt memo node with
        | Some entry -> entry
        | None ->
            let entry = (ref (Bytes.make 64 '\000'), ref 1) in
            (* Every node starts the run up. *)
            Hashtbl.add memo node entry;
            entry
      in
      if slot >= Bytes.length !buf then begin
        let grown = Bytes.make (max (slot + 1) (2 * Bytes.length !buf)) '\000' in
        Bytes.blit !buf 0 grown 0 !filled;
        buf := grown
      end;
      while !filled <= slot do
        let i = !filled in
        let was_down = Bytes.get !buf (i - 1) = '\001' in
        let u = coin ~node ~slot:i in
        let is_down = if was_down then u >= p_heal else u < p_fail in
        Bytes.set !buf i (if is_down then '\001' else '\000');
        incr filled
      done;
      let r = Bytes.get !buf slot = '\001' in
      Mutex.unlock lock;
      r
    end
  in
  { name = Printf.sprintf "churn(up=%g,down=%g)" mean_up mean_down; down }

let periodic_nap ~period ~nap ~offset_stride =
  if period < 1 || nap < 0 || nap > period then
    invalid_arg "Faults.periodic_nap: need 0 <= nap <= period, period >= 1";
  {
    name = Printf.sprintf "periodic-nap(%d/%d)" nap period;
    down = (fun ~slot ~node -> (slot + (node * offset_stride)) mod period < nap);
  }

let spare t ~node =
  {
    name = t.name ^ Printf.sprintf "\\{%d}" node;
    down = (fun ~slot ~node:v -> v <> node && t.down ~slot ~node:v);
  }

let union a b =
  {
    name = a.name ^ "+" ^ b.name;
    down = (fun ~slot ~node -> a.down ~slot ~node || b.down ~slot ~node);
  }

let staggered_activation ~activation =
  {
    name = "staggered-activation";
    down =
      (fun ~slot ~node ->
        node >= 0 && node < Array.length activation && slot < activation.(node));
  }
