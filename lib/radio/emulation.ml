module Rng = Crn_prng.Rng
module Dynamic = Crn_channel.Dynamic
module Assignment = Crn_channel.Assignment

type outcome = {
  slots_run : int;
  raw_rounds : int;
  failed_sessions : int;
  stopped_early : bool;
  counters : Trace.Counters.t;
}

(* Same hot-path structure as {!Engine.run}: dense {!Scratch} occupancy
   reused across slots, channels resolved — and therefore {!Backoff.session}
   RNG consumed — in ascending global channel id. The previous
   implementation ran sessions inside [Hashtbl.iter], so session round
   counts and winners depended on stdlib hash order; the canonical order
   makes them a function of the seed alone. {!Reference.emulation_run} is
   the executable specification. *)
let run ?session_cap ?trace ?stop ~availability ~rng ~nodes ~max_slots () =
  let n = Array.length nodes in
  if n = 0 then invalid_arg "Emulation.run: no nodes";
  if Dynamic.num_nodes availability <> n then
    invalid_arg "Emulation.run: node count disagrees with availability";
  Array.iteri
    (fun i node ->
      if node.Engine.id <> i then invalid_arg "Emulation.run: node id mismatch")
    nodes;
  let session_cap =
    match session_cap with Some v -> v | None -> Backoff.expected_rounds_bound n
  in
  let traced = trace <> None in
  let emit ev = match trace with Some tr -> Trace.record tr ev | None -> () in
  let counters = Trace.Counters.create () in
  let scratch = Scratch.create ~num_nodes:n in
  let decisions = Array.make n (Action.listen ~label:0) in
  let slot = ref 0 in
  let raw_rounds = ref 0 in
  let failed_sessions = ref 0 in
  let stopped = ref false in
  while (not !stopped) && !slot < max_slots do
    let s = !slot in
    let assignment = Dynamic.at availability s in
    let c = Assignment.channels_per_node assignment in
    Scratch.begin_slot scratch ~num_channels:(Assignment.num_channels assignment);
    for i = 0 to n - 1 do
      let decision = nodes.(i).Engine.decide ~slot:s in
      if decision.Action.label < 0 || decision.Action.label >= c then
        invalid_arg "Emulation.run: label out of range";
      decisions.(i) <- decision;
      let channel = Assignment.global_of_local assignment ~node:i ~label:decision.Action.label in
      if traced then
        emit
          (Trace.Decide
             {
               slot = s;
               node = i;
               channel;
               label = decision.Action.label;
               tx = Action.is_broadcast decision;
             });
      match decision.Action.intent with
      | Action.Broadcast _ ->
          Scratch.add_broadcaster scratch ~channel ~node:i;
          counters.Trace.Counters.broadcasts <-
            counters.Trace.Counters.broadcasts + 1
      | Action.Listen -> Scratch.add_listener scratch ~channel ~node:i
    done;
    (* Resolve every active channel — in ascending global channel id, the
       canonical order — with a decay contention session; the abstract slot
       costs the longest session (sessions are concurrent across channels).
       Idle channels cost one raw round of listening. *)
    let slot_rounds = ref 1 in
    Scratch.sort_active scratch;
    for j = 0 to scratch.Scratch.active_len - 1 do
      let channel = scratch.Scratch.active.(j) in
      let contenders = scratch.Scratch.bcast_count.(channel) in
      if contenders = 0 then begin
        let l = ref scratch.Scratch.listen_head.(channel) in
        while !l >= 0 do
          let node = !l in
          l := scratch.Scratch.next.(node);
          if traced then emit (Trace.Silent { slot = s; node; channel });
          nodes.(node).Engine.feedback ~slot:s Action.Silence
        done
      end
      else begin
        if contenders > 1 then
          counters.Trace.Counters.contended <-
            counters.Trace.Counters.contended + 1;
        match Backoff.session ~rng ~contenders ~cap:session_cap with
        | Some { Backoff.winner; rounds } ->
            slot_rounds := max !slot_rounds rounds;
            let winner_id = Scratch.nth_broadcaster scratch ~channel winner in
            let winner_msg =
              match decisions.(winner_id).Action.intent with
              | Action.Broadcast msg -> msg
              | Action.Listen -> assert false
            in
            counters.Trace.Counters.wins <- counters.Trace.Counters.wins + 1;
            if traced then begin
              emit
                (Trace.Session { slot = s; channel; contenders; rounds; ok = true });
              emit
                (Trace.Win { slot = s; channel; winner = winner_id; contenders })
            end;
            let b = ref scratch.Scratch.bcast_head.(channel) in
            while !b >= 0 do
              let node = !b in
              b := scratch.Scratch.next.(node);
              if node = winner_id then nodes.(node).Engine.feedback ~slot:s Action.Won
              else
                nodes.(node).Engine.feedback ~slot:s
                  (Action.Lost { winner = winner_id; msg = winner_msg })
            done;
            let l = ref scratch.Scratch.listen_head.(channel) in
            while !l >= 0 do
              let node = !l in
              l := scratch.Scratch.next.(node);
              counters.Trace.Counters.deliveries <-
                counters.Trace.Counters.deliveries + 1;
              if traced then
                emit
                  (Trace.Deliver
                     { slot = s; channel; sender = winner_id; receiver = node });
              nodes.(node).Engine.feedback ~slot:s
                (Action.Heard { sender = winner_id; msg = winner_msg })
            done
        | None ->
            incr failed_sessions;
            slot_rounds := max !slot_rounds session_cap;
            if traced then
              emit
                (Trace.Session
                   {
                     slot = s;
                     channel;
                     contenders;
                     rounds = session_cap;
                     ok = false;
                   });
            let b = ref scratch.Scratch.bcast_head.(channel) in
            while !b >= 0 do
              let node = !b in
              b := scratch.Scratch.next.(node);
              nodes.(node).Engine.feedback ~slot:s Action.Silence
            done;
            let l = ref scratch.Scratch.listen_head.(channel) in
            while !l >= 0 do
              let node = !l in
              l := scratch.Scratch.next.(node);
              if traced then emit (Trace.Silent { slot = s; node; channel });
              nodes.(node).Engine.feedback ~slot:s Action.Silence
            done
      end
    done;
    raw_rounds := !raw_rounds + !slot_rounds;
    counters.Trace.Counters.slots_run <- counters.Trace.Counters.slots_run + 1;
    (match stop with Some f -> if f ~slot:s then stopped := true | None -> ());
    incr slot
  done;
  {
    slots_run = !slot;
    raw_rounds = !raw_rounds;
    failed_sessions = !failed_sessions;
    stopped_early = !stopped;
    counters;
  }
