module Rng = Crn_prng.Rng
module Dynamic = Crn_channel.Dynamic
module Assignment = Crn_channel.Assignment

type outcome = {
  slots_run : int;
  raw_rounds : int;
  failed_sessions : int;
  stopped_early : bool;
}

type 'msg channel_state = {
  mutable broadcasters : (int * 'msg) list;
  mutable listeners : int list;
}

let run ?session_cap ?trace ?stop ~availability ~rng ~nodes ~max_slots () =
  let n = Array.length nodes in
  if n = 0 then invalid_arg "Emulation.run: no nodes";
  if Dynamic.num_nodes availability <> n then
    invalid_arg "Emulation.run: node count disagrees with availability";
  Array.iteri
    (fun i node ->
      if node.Engine.id <> i then invalid_arg "Emulation.run: node id mismatch")
    nodes;
  let session_cap =
    match session_cap with Some v -> v | None -> Backoff.expected_rounds_bound n
  in
  let traced = trace <> None in
  let emit ev = match trace with Some tr -> Trace.record tr ev | None -> () in
  let channels : (int, 'msg channel_state) Hashtbl.t = Hashtbl.create (4 * n) in
  let decisions = Array.make n (Action.listen ~label:0) in
  let tuned = Array.make n 0 in
  let slot = ref 0 in
  let raw_rounds = ref 0 in
  let failed_sessions = ref 0 in
  let stopped = ref false in
  while (not !stopped) && !slot < max_slots do
    let s = !slot in
    let assignment = Dynamic.at availability s in
    let c = Assignment.channels_per_node assignment in
    Hashtbl.reset channels;
    for i = 0 to n - 1 do
      let decision = nodes.(i).Engine.decide ~slot:s in
      if decision.Action.label < 0 || decision.Action.label >= c then
        invalid_arg "Emulation.run: label out of range";
      decisions.(i) <- decision;
      let channel = Assignment.global_of_local assignment ~node:i ~label:decision.Action.label in
      tuned.(i) <- channel;
      if traced then
        emit
          (Trace.Decide
             {
               slot = s;
               node = i;
               channel;
               label = decision.Action.label;
               tx = Action.is_broadcast decision;
             });
      let state =
        match Hashtbl.find_opt channels channel with
        | Some st -> st
        | None ->
            let st = { broadcasters = []; listeners = [] } in
            Hashtbl.replace channels channel st;
            st
      in
      match decision.Action.intent with
      | Action.Broadcast msg -> state.broadcasters <- (i, msg) :: state.broadcasters
      | Action.Listen -> state.listeners <- i :: state.listeners
    done;
    (* Resolve every active channel with a decay contention session; the
       abstract slot costs the longest session (sessions are concurrent
       across channels). Idle channels cost one raw round of listening. *)
    let slot_rounds = ref 1 in
    Hashtbl.iter
      (fun channel state ->
        match state.broadcasters with
        | [] ->
            List.iter
              (fun l ->
                if traced then emit (Trace.Silent { slot = s; node = l; channel });
                nodes.(l).Engine.feedback ~slot:s Action.Silence)
              state.listeners
        | broadcasters -> (
            let contenders = List.length broadcasters in
            match Backoff.session ~rng ~contenders ~cap:session_cap with
            | Some { Backoff.winner; rounds } ->
                slot_rounds := max !slot_rounds rounds;
                let winner_id, winner_msg = List.nth broadcasters winner in
                if traced then begin
                  emit
                    (Trace.Session { slot = s; channel; contenders; rounds; ok = true });
                  emit
                    (Trace.Win { slot = s; channel; winner = winner_id; contenders })
                end;
                List.iter
                  (fun (b, _) ->
                    if b = winner_id then nodes.(b).Engine.feedback ~slot:s Action.Won
                    else
                      nodes.(b).Engine.feedback ~slot:s
                        (Action.Lost { winner = winner_id; msg = winner_msg }))
                  broadcasters;
                List.iter
                  (fun l ->
                    if traced then
                      emit
                        (Trace.Deliver
                           { slot = s; channel; sender = winner_id; receiver = l });
                    nodes.(l).Engine.feedback ~slot:s
                      (Action.Heard { sender = winner_id; msg = winner_msg }))
                  state.listeners
            | None ->
                incr failed_sessions;
                slot_rounds := max !slot_rounds session_cap;
                if traced then
                  emit
                    (Trace.Session
                       {
                         slot = s;
                         channel;
                         contenders;
                         rounds = session_cap;
                         ok = false;
                       });
                List.iter
                  (fun (b, _) -> nodes.(b).Engine.feedback ~slot:s Action.Silence)
                  broadcasters;
                List.iter
                  (fun l ->
                    if traced then emit (Trace.Silent { slot = s; node = l; channel });
                    nodes.(l).Engine.feedback ~slot:s Action.Silence)
                  state.listeners))
      channels;
    raw_rounds := !raw_rounds + !slot_rounds;
    (match stop with Some f -> if f ~slot:s then stopped := true | None -> ());
    incr slot
  done;
  {
    slots_run = !slot;
    raw_rounds = !raw_rounds;
    failed_sessions = !failed_sessions;
    stopped_early = !stopped;
  }
