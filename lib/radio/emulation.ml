module Rng = Crn_prng.Rng
module Dynamic = Crn_channel.Dynamic
module Assignment = Crn_channel.Assignment

type strategy = Decay | Csma

type outcome = {
  slots_run : int;
  raw_rounds : int;
  failed_sessions : int;
  stopped_early : bool;
  counters : Trace.Counters.t;
}

(* Same hot-path structure as {!Engine.run}: dense {!Scratch} occupancy
   reused across slots, channels resolved — and therefore the contention
   session RNG consumed — in ascending global channel id. The previous
   implementation ran sessions inside [Hashtbl.iter], so session round
   counts and winners depended on stdlib hash order; the canonical order
   makes them a function of the seed alone. Faults and jamming are applied
   at the abstract-slot level exactly as in {!Engine.run}: a down node is
   absent for the slot, a jammed node's action is absorbed before the
   channel's contention session even starts (the jammer owns the channel at
   that node for the whole slot). {!Reference.emulation_run} is the
   executable specification. *)
let run ?(strategy = Decay) ?session_cap ?(jammer = Jammer.none)
    ?(faults = Faults.none) ?metrics ?trace ?stop ~availability ~rng ~nodes
    ~max_slots () =
  let n = Array.length nodes in
  if n = 0 then invalid_arg "Emulation.run: no nodes";
  if Dynamic.num_nodes availability <> n then
    invalid_arg "Emulation.run: node count disagrees with availability";
  Array.iteri
    (fun i node ->
      if node.Engine.id <> i then invalid_arg "Emulation.run: node id mismatch")
    nodes;
  (match metrics with
  | Some m ->
      if Array.length m.Metrics.transmissions <> n then
        invalid_arg "Emulation.run: metrics sized for a different node count"
  | None -> ());
  let bump counters i =
    match metrics with
    | Some m -> (counters m).(i) <- (counters m).(i) + 1
    | None -> ()
  in
  let session_cap =
    match session_cap with Some v -> v | None -> Backoff.expected_rounds_bound n
  in
  let run_session ~contenders =
    match strategy with
    | Decay -> Backoff.session ~rng ~contenders ~cap:session_cap
    | Csma -> Csma.session ~rng ~contenders ~cap:session_cap ()
  in
  let traced = trace <> None in
  let emit ev = match trace with Some tr -> Trace.record tr ev | None -> () in
  let faults_down = Faults.down faults in
  let jammer_jams = Jammer.jams jammer in
  let counters = Trace.Counters.create () in
  let scratch = Scratch.create ~num_nodes:n in
  let decisions = Array.make n (Action.listen ~label:0) in
  (* Global channel per node, or -1 when the action was jammed, -2 when the
     node was down — the {!Engine.run} convention. *)
  let tuned = Array.make n (-1) in
  let slot = ref 0 in
  let raw_rounds = ref 0 in
  let failed_sessions = ref 0 in
  let stopped = ref false in
  while (not !stopped) && !slot < max_slots do
    let s = !slot in
    let assignment = Dynamic.at availability s in
    let c = Assignment.channels_per_node assignment in
    Scratch.begin_slot scratch ~num_channels:(Assignment.num_channels assignment);
    for i = 0 to n - 1 do
      if faults_down ~slot:s ~node:i then begin
        tuned.(i) <- -2;
        if traced then emit (Trace.Down { slot = s; node = i })
      end
      else begin
        let decision = nodes.(i).Engine.decide ~slot:s in
        if decision.Action.label < 0 || decision.Action.label >= c then
          invalid_arg "Emulation.run: label out of range";
        decisions.(i) <- decision;
        let channel =
          Assignment.global_of_local assignment ~node:i ~label:decision.Action.label
        in
        bump (fun m -> m.Metrics.awake_slots) i;
        if jammer_jams ~slot:s ~node:i ~channel then begin
          tuned.(i) <- -1;
          counters.Trace.Counters.jammed_actions <-
            counters.Trace.Counters.jammed_actions + 1;
          if traced then emit (Trace.Jam { slot = s; node = i; channel });
          bump (fun m -> m.Metrics.jammed) i
        end
        else begin
          tuned.(i) <- channel;
          if traced then
            emit
              (Trace.Decide
                 {
                   slot = s;
                   node = i;
                   channel;
                   label = decision.Action.label;
                   tx = Action.is_broadcast decision;
                 });
          match decision.Action.intent with
          | Action.Broadcast _ ->
              Scratch.add_broadcaster scratch ~channel ~node:i;
              counters.Trace.Counters.broadcasts <-
                counters.Trace.Counters.broadcasts + 1;
              bump (fun m -> m.Metrics.transmissions) i
          | Action.Listen -> Scratch.add_listener scratch ~channel ~node:i
        end
      end
    done;
    (* Resolve every active channel — in ascending global channel id, the
       canonical order — with a contention session ([strategy] picks decay
       or CSMA/CA); the abstract slot costs the longest session (sessions
       are concurrent across channels). Idle channels cost one raw round of
       listening. *)
    let slot_rounds = ref 1 in
    Scratch.sort_active scratch;
    for j = 0 to scratch.Scratch.active_len - 1 do
      let channel = scratch.Scratch.active.(j) in
      let contenders = scratch.Scratch.bcast_count.(channel) in
      if contenders = 0 then begin
        let l = ref scratch.Scratch.listen_head.(channel) in
        while !l >= 0 do
          let node = !l in
          l := scratch.Scratch.next.(node);
          if traced then emit (Trace.Silent { slot = s; node; channel });
          nodes.(node).Engine.feedback ~slot:s Action.Silence
        done
      end
      else begin
        if contenders > 1 then
          counters.Trace.Counters.contended <-
            counters.Trace.Counters.contended + 1;
        match run_session ~contenders with
        | Some { Backoff.winner; rounds } ->
            slot_rounds := max !slot_rounds rounds;
            let winner_id = Scratch.nth_broadcaster scratch ~channel winner in
            let winner_msg =
              match decisions.(winner_id).Action.intent with
              | Action.Broadcast msg -> msg
              | Action.Listen -> assert false
            in
            counters.Trace.Counters.wins <- counters.Trace.Counters.wins + 1;
            if traced then begin
              emit
                (Trace.Session { slot = s; channel; contenders; rounds; ok = true });
              emit
                (Trace.Win { slot = s; channel; winner = winner_id; contenders })
            end;
            let b = ref scratch.Scratch.bcast_head.(channel) in
            while !b >= 0 do
              let node = !b in
              b := scratch.Scratch.next.(node);
              if node = winner_id then nodes.(node).Engine.feedback ~slot:s Action.Won
              else
                nodes.(node).Engine.feedback ~slot:s
                  (Action.Lost { winner = winner_id; msg = winner_msg })
            done;
            let l = ref scratch.Scratch.listen_head.(channel) in
            while !l >= 0 do
              let node = !l in
              l := scratch.Scratch.next.(node);
              counters.Trace.Counters.deliveries <-
                counters.Trace.Counters.deliveries + 1;
              if traced then
                emit
                  (Trace.Deliver
                     { slot = s; channel; sender = winner_id; receiver = node });
              bump (fun m -> m.Metrics.receptions) node;
              nodes.(node).Engine.feedback ~slot:s
                (Action.Heard { sender = winner_id; msg = winner_msg })
            done
        | None ->
            incr failed_sessions;
            slot_rounds := max !slot_rounds session_cap;
            if traced then
              emit
                (Trace.Session
                   {
                     slot = s;
                     channel;
                     contenders;
                     rounds = session_cap;
                     ok = false;
                   });
            (* A broadcaster knows its own session failed — it spent the
               whole window without a clean transmission — so it gets the
               dedicated {!Action.No_winner} verdict. Listeners cannot
               distinguish a failed session from an idle channel: plain
               silence. *)
            let b = ref scratch.Scratch.bcast_head.(channel) in
            while !b >= 0 do
              let node = !b in
              b := scratch.Scratch.next.(node);
              nodes.(node).Engine.feedback ~slot:s Action.No_winner
            done;
            let l = ref scratch.Scratch.listen_head.(channel) in
            while !l >= 0 do
              let node = !l in
              l := scratch.Scratch.next.(node);
              if traced then emit (Trace.Silent { slot = s; node; channel });
              nodes.(node).Engine.feedback ~slot:s Action.Silence
            done
      end
    done;
    (* Jammed nodes sat out the whole slot; down nodes (-2) get nothing. *)
    for i = 0 to n - 1 do
      if tuned.(i) = -1 then nodes.(i).Engine.feedback ~slot:s Action.Jammed
    done;
    raw_rounds := !raw_rounds + !slot_rounds;
    counters.Trace.Counters.slots_run <- counters.Trace.Counters.slots_run + 1;
    (* Reactive jammers learn from this slot's audible occupancy, exactly as
       in {!Engine.run}; ascending channel order. *)
    if Jammer.observes jammer then begin
      let occupancy = ref [] in
      for j = scratch.Scratch.active_len - 1 downto 0 do
        let channel = scratch.Scratch.active.(j) in
        let count = scratch.Scratch.bcast_count.(channel) in
        if count > 0 then occupancy := (channel, count) :: !occupancy
      done;
      Jammer.observe jammer ~slot:s !occupancy
    end;
    (match stop with Some f -> if f ~slot:s then stopped := true | None -> ());
    incr slot
  done;
  {
    slots_run = !slot;
    raw_rounds = !raw_rounds;
    failed_sessions = !failed_sessions;
    stopped_early = !stopped;
    counters;
  }
