module Rng = Crn_prng.Rng

type result = { winner : int; rounds : int }

let ceil_log2 n =
  if n <= 1 then 0
  else begin
    let rec loop acc v = if v >= n then acc else loop (acc + 1) (2 * v) in
    loop 0 1
  end

let epoch_length contenders = ceil_log2 (max 2 contenders) + 1

let expected_rounds_bound n =
  (* epoch_length already clamps its argument to >= 2. *)
  let e = epoch_length n in
  4 * e * e

let retry_delay ~attempt ~cap =
  if attempt < 0 then invalid_arg "Backoff.retry_delay: attempt must be >= 0";
  if cap < 1 then invalid_arg "Backoff.retry_delay: cap must be >= 1";
  (* 2^attempt, saturating at cap without overflowing for large attempts. *)
  if attempt >= 62 then cap else min cap (1 lsl attempt)

(* Direct simulation of the decay session: in sub-round r each live
   contender transmits with probability 2^{-(r mod epoch)}; the first
   sub-round with exactly one transmitter ends the session. *)
let session ~rng ~contenders ~cap =
  if contenders < 1 then invalid_arg "Backoff.session: need a contender";
  if contenders = 1 then Some { winner = 0; rounds = 1 }
  else begin
    let epoch = epoch_length contenders in
    let rec loop round =
      if round >= cap then None
      else begin
        let p = Float.pow 0.5 (float_of_int (round mod epoch)) in
        let transmitters = ref [] in
        for i = 0 to contenders - 1 do
          if Rng.bernoulli rng p then transmitters := i :: !transmitters
        done;
        match !transmitters with
        | [ winner ] -> Some { winner; rounds = round + 1 }
        | _ -> loop (round + 1)
      end
    in
    loop 0
  end

(* The same protocol run as real nodes through the raw collision engine:
   everyone shares a single channel; live contenders flip the decay coin and
   transmit their index; a node hearing a message aborts; the winner is the
   node that transmitted in a round where everyone else heard its message.

   Coin draws come from the shared [rng] in the raw engine's decide order
   (round-major, node-minor) — exactly the order [session]'s direct loop
   consumes them — so for any seed the two implementations isolate the same
   winner in the same round. test/test_radio.ml pins this differentially. *)
let session_on_raw_radio ~rng ~contenders ~cap =
  if contenders < 1 then invalid_arg "Backoff.session_on_raw_radio: need a contender";
  if contenders = 1 then Some { winner = 0; rounds = 1 }
  else begin
    let epoch = epoch_length contenders in
    let assignment =
      Crn_channel.Assignment.create ~num_channels:1
        ~local_to_global:(Array.make contenders [| 0 |])
    in
    let availability = Crn_channel.Dynamic.static assignment in
    let aborted = Array.make contenders false in
    let transmitted_in = Array.make contenders (-1) in
    let heard_from = ref None in
    let decide i ~round =
      let p = Float.pow 0.5 (float_of_int (round mod epoch)) in
      let coin = Rng.bernoulli rng p in
      if aborted.(i) then Action.listen ~label:0
      else if coin then begin
        transmitted_in.(i) <- round;
        Action.broadcast ~label:0 i
      end
      else Action.listen ~label:0
    in
    let hear i ~round:_ = function
      | Raw_radio.Message { msg = sender_index; _ } ->
          aborted.(i) <- true;
          heard_from := Some sender_index
      | Raw_radio.Noise | Raw_radio.Quiet -> ()
    in
    let nodes =
      Array.init contenders (fun i ->
          Raw_radio.node ~id:i ~decide:(decide i) ~hear:(hear i))
    in
    let stop ~round:_ = !heard_from <> None in
    let outcome = Raw_radio.run ~stop ~availability ~nodes ~max_rounds:cap () in
    match !heard_from with
    | Some winner -> Some { winner; rounds = outcome.Raw_radio.rounds_run }
    | None -> None
  end
