(** CSMA/CA contention: a carrier-sense + ACK/retry realization of the
    one-winner abstraction on the raw collision radio, as an alternative to
    the decay {!Backoff} session of §2 footnote 4.

    The automaton is the classic CSMA/CA loop: draw a backoff counter from
    the current contention window ({!Backoff.retry_delay}, so the window
    doubles per failed attempt up to [cw_cap]), count it down while the
    carrier is idle and freeze while it is busy, transmit at zero, then wait
    one round for an explicit ACK. A missed ACK means the frame collided:
    the window doubles and the node redraws, dropping out of contention
    after [attempt_limit] failed attempts (it keeps listening, and still
    answers ACKs). When a data frame gets through alone, the lowest-index
    non-winner acknowledges it in the next round and the session completes.

    Unlike decay backoff there is no population estimate in the schedule —
    the window adapts per node from observed collisions — so CSMA/CA needs
    no ⌈lg n⌉ epoch, at the price of weaker high-probability bounds: under
    heavy contention sessions can exhaust tight round caps. E25 measures
    both curves; the [4·(⌈lg n⌉+1)²] budget is only claimed for decay. *)

type result = Backoff.result = { winner : int; rounds : int }

val default_attempt_limit : int
(** Attempts before a node drops out of contention (16). *)

val default_cw_cap : int
(** Largest contention window (1024 rounds). *)

val session :
  ?attempt_limit:int ->
  ?cw_cap:int ->
  rng:Crn_prng.Rng.t ->
  contenders:int ->
  cap:int ->
  unit ->
  result option
(** [session ~rng ~contenders ~cap] runs one CSMA/CA session among
    [contenders >= 1] nodes as a direct single-channel simulation. Returns
    [None] when no data frame was delivered and acknowledged within [cap]
    rounds (all contenders dropped, or the window grew past the cap). A
    single contender wins immediately in 1 round, matching the
    {!Backoff.session} convention. [rounds] includes the ACK round. *)

val session_on_raw_radio :
  ?attempt_limit:int ->
  ?cw_cap:int ->
  rng:Crn_prng.Rng.t ->
  contenders:int ->
  cap:int ->
  unit ->
  result option
(** The same automaton executed end-to-end through {!Raw_radio.run} with
    [~collision_detection:true]. Consumes [rng] in exactly {!session}'s
    order, so for any seed both implementations agree on the winner and the
    rounds count (checked differentially by the test suite). *)
