module Json = Crn_stats.Json

(* ------------------------------------------------------------------ *)
(* Aggregate counters (always on).                                     *)
(* ------------------------------------------------------------------ *)

module Counters = struct
  type t = {
    mutable slots_run : int;
    mutable broadcasts : int;
    mutable wins : int;
    mutable contended : int;
    mutable deliveries : int;
    mutable jammed_actions : int;
  }

  let create () =
    {
      slots_run = 0;
      broadcasts = 0;
      wins = 0;
      contended = 0;
      deliveries = 0;
      jammed_actions = 0;
    }

  let reset t =
    t.slots_run <- 0;
    t.broadcasts <- 0;
    t.wins <- 0;
    t.contended <- 0;
    t.deliveries <- 0;
    t.jammed_actions <- 0

  let contention_rate t =
    if t.wins = 0 then 0.0 else float_of_int t.contended /. float_of_int t.wins

  let pp fmt t =
    Format.fprintf fmt
      "slots=%d broadcasts=%d wins=%d contended=%d deliveries=%d jammed=%d"
      t.slots_run t.broadcasts t.wins t.contended t.deliveries t.jammed_actions
end

(* ------------------------------------------------------------------ *)
(* Events and the trace buffer.                                        *)
(* ------------------------------------------------------------------ *)

type event =
  | Meta of { n : int; channels : int; c : int; source : int }
  | Phase of { name : string }
  | Decide of { slot : int; node : int; channel : int; label : int; tx : bool }
  | Win of { slot : int; channel : int; winner : int; contenders : int }
  | Deliver of { slot : int; channel : int; sender : int; receiver : int }
  | Silent of { slot : int; node : int; channel : int }
  | Jam of { slot : int; node : int; channel : int }
  | Down of { slot : int; node : int }
  | Session of {
      slot : int;
      channel : int;
      contenders : int;
      rounds : int;
      ok : bool;
    }
  | Informed of { slot : int; node : int; parent : int; label : int }
  | Mediator of { node : int }
  | Sent_value of { slot : int; node : int; r : int }
  | Value_delivered of { slot : int; sender : int; receiver : int; r : int }
  | Retired of { slot : int; node : int }
  | Injected of { slot : int; rumor : int; node : int }
  | Rumor_delivered of { slot : int; rumor : int; node : int; parent : int }
  | Rumor_done of { slot : int; rumor : int }
  | Adversary of { name : string; budget : int }
  | Reassigned of { slot : int; nodes_changed : int }

type t = { mutable buf : event array; mutable len : int }

let dummy = Phase { name = "" }

let create ?(capacity = 256) () = { buf = Array.make (max 1 capacity) dummy; len = 0 }

let record t ev =
  if t.len = Array.length t.buf then begin
    let grown = Array.make (2 * t.len) dummy in
    Array.blit t.buf 0 grown 0 t.len;
    t.buf <- grown
  end;
  t.buf.(t.len) <- ev;
  t.len <- t.len + 1

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: index out of bounds";
  t.buf.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.buf.(i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun ev -> acc := f !acc ev) t;
  !acc

let to_list t = List.init t.len (fun i -> t.buf.(i))

let of_list events =
  let t = create ~capacity:(max 1 (List.length events)) () in
  List.iter (fun ev -> record t ev) events;
  t

let clear t = t.len <- 0

(* ------------------------------------------------------------------ *)
(* JSONL serialization.                                                *)
(* ------------------------------------------------------------------ *)

let json_of_event ev =
  let obj tag fields = Json.Obj (("ev", Json.String tag) :: fields) in
  let i v = Json.Int v in
  match ev with
  | Meta { n; channels; c; source } ->
      obj "meta" [ ("n", i n); ("C", i channels); ("c", i c); ("source", i source) ]
  | Phase { name } -> obj "phase" [ ("name", Json.String name) ]
  | Decide { slot; node; channel; label; tx } ->
      obj "decide"
        [
          ("slot", i slot);
          ("node", i node);
          ("ch", i channel);
          ("label", i label);
          ("tx", Json.Bool tx);
        ]
  | Win { slot; channel; winner; contenders } ->
      obj "win"
        [
          ("slot", i slot);
          ("ch", i channel);
          ("winner", i winner);
          ("contenders", i contenders);
        ]
  | Deliver { slot; channel; sender; receiver } ->
      obj "deliver"
        [
          ("slot", i slot);
          ("ch", i channel);
          ("sender", i sender);
          ("receiver", i receiver);
        ]
  | Silent { slot; node; channel } ->
      obj "silent" [ ("slot", i slot); ("node", i node); ("ch", i channel) ]
  | Jam { slot; node; channel } ->
      obj "jam" [ ("slot", i slot); ("node", i node); ("ch", i channel) ]
  | Down { slot; node } -> obj "down" [ ("slot", i slot); ("node", i node) ]
  | Session { slot; channel; contenders; rounds; ok } ->
      obj "session"
        [
          ("slot", i slot);
          ("ch", i channel);
          ("contenders", i contenders);
          ("rounds", i rounds);
          ("ok", Json.Bool ok);
        ]
  | Informed { slot; node; parent; label } ->
      obj "informed"
        [ ("slot", i slot); ("node", i node); ("parent", i parent); ("label", i label) ]
  | Mediator { node } -> obj "mediator" [ ("node", i node) ]
  | Sent_value { slot; node; r } ->
      obj "sent_value" [ ("slot", i slot); ("node", i node); ("r", i r) ]
  | Value_delivered { slot; sender; receiver; r } ->
      obj "value_delivered"
        [ ("slot", i slot); ("sender", i sender); ("receiver", i receiver); ("r", i r) ]
  | Retired { slot; node } -> obj "retired" [ ("slot", i slot); ("node", i node) ]
  | Injected { slot; rumor; node } ->
      obj "injected" [ ("slot", i slot); ("rumor", i rumor); ("node", i node) ]
  | Rumor_delivered { slot; rumor; node; parent } ->
      obj "rumor_delivered"
        [ ("slot", i slot); ("rumor", i rumor); ("node", i node); ("parent", i parent) ]
  | Rumor_done { slot; rumor } ->
      obj "rumor_done" [ ("slot", i slot); ("rumor", i rumor) ]
  | Adversary { name; budget } ->
      obj "adversary" [ ("name", Json.String name); ("budget", i budget) ]
  | Reassigned { slot; nodes_changed } ->
      obj "reassigned" [ ("slot", i slot); ("nodes_changed", i nodes_changed) ]

let event_of_json j =
  let ( let* ) = Option.bind in
  let int_m key = match Json.member key j with Some (Json.Int v) -> Some v | _ -> None in
  let bool_m key =
    match Json.member key j with Some (Json.Bool v) -> Some v | _ -> None
  in
  let str_m key =
    match Json.member key j with Some (Json.String v) -> Some v | _ -> None
  in
  let* tag = str_m "ev" in
  match tag with
  | "meta" ->
      let* n = int_m "n" in
      let* channels = int_m "C" in
      let* c = int_m "c" in
      let* source = int_m "source" in
      Some (Meta { n; channels; c; source })
  | "phase" ->
      let* name = str_m "name" in
      Some (Phase { name })
  | "decide" ->
      let* slot = int_m "slot" in
      let* node = int_m "node" in
      let* channel = int_m "ch" in
      let* label = int_m "label" in
      let* tx = bool_m "tx" in
      Some (Decide { slot; node; channel; label; tx })
  | "win" ->
      let* slot = int_m "slot" in
      let* channel = int_m "ch" in
      let* winner = int_m "winner" in
      let* contenders = int_m "contenders" in
      Some (Win { slot; channel; winner; contenders })
  | "deliver" ->
      let* slot = int_m "slot" in
      let* channel = int_m "ch" in
      let* sender = int_m "sender" in
      let* receiver = int_m "receiver" in
      Some (Deliver { slot; channel; sender; receiver })
  | "silent" ->
      let* slot = int_m "slot" in
      let* node = int_m "node" in
      let* channel = int_m "ch" in
      Some (Silent { slot; node; channel })
  | "jam" ->
      let* slot = int_m "slot" in
      let* node = int_m "node" in
      let* channel = int_m "ch" in
      Some (Jam { slot; node; channel })
  | "down" ->
      let* slot = int_m "slot" in
      let* node = int_m "node" in
      Some (Down { slot; node })
  | "session" ->
      let* slot = int_m "slot" in
      let* channel = int_m "ch" in
      let* contenders = int_m "contenders" in
      let* rounds = int_m "rounds" in
      let* ok = bool_m "ok" in
      Some (Session { slot; channel; contenders; rounds; ok })
  | "informed" ->
      let* slot = int_m "slot" in
      let* node = int_m "node" in
      let* parent = int_m "parent" in
      let* label = int_m "label" in
      Some (Informed { slot; node; parent; label })
  | "mediator" ->
      let* node = int_m "node" in
      Some (Mediator { node })
  | "sent_value" ->
      let* slot = int_m "slot" in
      let* node = int_m "node" in
      let* r = int_m "r" in
      Some (Sent_value { slot; node; r })
  | "value_delivered" ->
      let* slot = int_m "slot" in
      let* sender = int_m "sender" in
      let* receiver = int_m "receiver" in
      let* r = int_m "r" in
      Some (Value_delivered { slot; sender; receiver; r })
  | "retired" ->
      let* slot = int_m "slot" in
      let* node = int_m "node" in
      Some (Retired { slot; node })
  | "injected" ->
      let* slot = int_m "slot" in
      let* rumor = int_m "rumor" in
      let* node = int_m "node" in
      Some (Injected { slot; rumor; node })
  | "rumor_delivered" ->
      let* slot = int_m "slot" in
      let* rumor = int_m "rumor" in
      let* node = int_m "node" in
      let* parent = int_m "parent" in
      Some (Rumor_delivered { slot; rumor; node; parent })
  | "rumor_done" ->
      let* slot = int_m "slot" in
      let* rumor = int_m "rumor" in
      Some (Rumor_done { slot; rumor })
  | "adversary" ->
      let* name = str_m "name" in
      let* budget = int_m "budget" in
      Some (Adversary { name; budget })
  | "reassigned" ->
      let* slot = int_m "slot" in
      let* nodes_changed = int_m "nodes_changed" in
      Some (Reassigned { slot; nodes_changed })
  | _ -> None

let to_jsonl t =
  let buf = Buffer.create (64 * t.len) in
  iter
    (fun ev ->
      Buffer.add_string buf (Json.to_string ~compact:true (json_of_event ev));
      Buffer.add_char buf '\n')
    t;
  Buffer.contents buf

let write_jsonl ~path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_jsonl t))

let of_jsonl s =
  let lines = String.split_on_char '\n' s in
  let t = create () in
  let rec go lineno = function
    | [] -> Ok t
    | line :: rest ->
        if String.trim line = "" then go (lineno + 1) rest
        else begin
          match Json.of_string line with
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
          | Ok j -> (
              match event_of_json j with
              | None -> Error (Printf.sprintf "line %d: not a trace event" lineno)
              | Some ev ->
                  record t ev;
                  go (lineno + 1) rest)
        end
  in
  go 1 lines

(* ------------------------------------------------------------------ *)
(* Invariant checking.                                                 *)
(* ------------------------------------------------------------------ *)

module Check = struct
  type violation = { invariant : string; detail : string }

  let pp_violation fmt v = Format.fprintf fmt "[%s] %s" v.invariant v.detail

  let v invariant fmt = Printf.ksprintf (fun detail -> { invariant; detail }) fmt

  (* Split the event stream into phase segments: slot numbering restarts at
     each [Phase] marker, so per-(slot, channel) grouping is only meaningful
     within a segment. Returns segments in stream order. *)
  let segments t =
    let segs = ref [] and cur = ref [] in
    iter
      (fun ev ->
        match ev with
        | Phase _ ->
            if !cur <> [] then segs := List.rev !cur :: !segs;
            cur := []
        | ev -> cur := ev :: !cur)
      t;
    if !cur <> [] then segs := List.rev !cur :: !segs;
    List.rev !segs

  let one_winner t =
    let violations = ref [] in
    let report vl = violations := vl :: !violations in
    List.iter
      (fun seg ->
        let bcasters : (int * int, int list) Hashtbl.t = Hashtbl.create 64 in
        let listeners : (int * int, int list) Hashtbl.t = Hashtbl.create 64 in
        let wins : (int * int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
        let failed : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
        let delivers = ref [] in
        let push tbl key x =
          Hashtbl.replace tbl key (x :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
        in
        List.iter
          (fun ev ->
            match ev with
            | Decide { slot; node; channel; tx; _ } ->
                if tx then push bcasters (slot, channel) node
                else push listeners (slot, channel) node
            | Win { slot; channel; winner; contenders } ->
                push wins (slot, channel) (winner, contenders)
            | Session { slot; channel; ok = false; _ } ->
                Hashtbl.replace failed (slot, channel) ()
            | Deliver { slot; channel; sender; receiver } ->
                delivers := (slot, channel, sender, receiver) :: !delivers
            | _ -> ())
          seg;
        Hashtbl.iter
          (fun (slot, channel) ws ->
            let bs = Option.value ~default:[] (Hashtbl.find_opt bcasters (slot, channel)) in
            (if List.length ws > 1 then
               report
                 (v "one-winner" "slot %d channel %d has %d winners" slot channel
                    (List.length ws)));
            List.iter
              (fun (winner, contenders) ->
                if not (List.mem winner bs) then
                  report
                    (v "one-winner"
                       "slot %d channel %d: winner %d was not an audible broadcaster"
                       slot channel winner);
                if contenders <> List.length bs then
                  report
                    (v "one-winner"
                       "slot %d channel %d: win records %d contenders, trace shows %d"
                       slot channel contenders (List.length bs)))
              ws)
          wins;
        Hashtbl.iter
          (fun (slot, channel) _bs ->
            if
              (not (Hashtbl.mem wins (slot, channel)))
              && not (Hashtbl.mem failed (slot, channel))
            then
              report
                (v "one-winner"
                   "slot %d channel %d has broadcasters but no winner and no failed \
                    session"
                   slot channel))
          bcasters;
        List.iter
          (fun (slot, channel, sender, receiver) ->
            (match Hashtbl.find_opt wins (slot, channel) with
            | Some [ (winner, _) ] when winner = sender -> ()
            | Some _ ->
                report
                  (v "one-winner"
                     "slot %d channel %d: delivery from %d does not match the winner"
                     slot channel sender)
            | None ->
                report
                  (v "one-winner" "slot %d channel %d: delivery from %d without a win"
                     slot channel sender));
            let ls =
              Option.value ~default:[] (Hashtbl.find_opt listeners (slot, channel))
            in
            if not (List.mem receiver ls) then
              report
                (v "one-winner"
                   "slot %d channel %d: receiver %d was not listening there" slot
                   channel receiver))
          !delivers)
      (segments t);
    List.rev !violations

  let informed_tree t =
    let violations = ref [] in
    let report vl = violations := vl :: !violations in
    let meta =
      fold
        (fun acc ev ->
          match ev with Meta { n; source; _ } -> Some (n, source) | _ -> acc)
        None t
    in
    let informs =
      List.filter_map
        (function Informed { slot; node; parent; label = _ } -> Some (slot, node, parent) | _ -> None)
        (to_list t)
    in
    (match (informs, meta) with
    | [], _ -> ()
    | _ :: _, None ->
        report (v "informed-tree" "trace has Informed events but no Meta header")
    | _ :: _, Some (n, source) ->
        let informed_at = Array.make (max n 1) (-1) in
        List.iter
          (fun (slot, node, parent) ->
            if node < 0 || node >= n then
              report (v "informed-tree" "informed node %d out of range [0,%d)" node n)
            else if parent < 0 || parent >= n then
              report (v "informed-tree" "parent %d of node %d out of range" parent node)
            else begin
              if node = source then
                report (v "informed-tree" "source %d was informed at slot %d" node slot);
              if parent = node then
                report (v "informed-tree" "node %d is its own parent" node);
              if informed_at.(node) >= 0 then
                report
                  (v "informed-tree" "node %d informed twice (slots %d and %d)" node
                     informed_at.(node) slot)
              else begin
                (* Informer precedes informee: the parent must already have
                   the message, i.e. be the source or have been informed in
                   a strictly earlier slot (an informed node only starts
                   broadcasting in the slot after it was informed). *)
                (if parent <> source then
                   match informed_at.(parent) with
                   | -1 ->
                       report
                         (v "informed-tree"
                            "node %d informed at slot %d by %d, which was never \
                             informed before it"
                            node slot parent)
                   | ps when ps >= slot ->
                       report
                         (v "informed-tree"
                            "node %d informed at slot %d by %d, informed only at slot \
                             %d"
                            node slot parent ps)
                   | _ -> ());
                informed_at.(node) <- slot
              end
            end)
          informs;
        (* Acyclicity and parent-edge validity by walking every chain to the
           root. Redundant when the slot checks above pass, but catches
           consistently corrupted traces. *)
        let parent_of = Array.make (max n 1) (-1) in
        List.iter
          (fun (_, node, parent) ->
            if node >= 0 && node < n && parent_of.(node) = -1 then
              parent_of.(node) <- parent)
          informs;
        Array.iteri
          (fun node p ->
            if p >= 0 then begin
              let steps = ref 0 and cur = ref node and broken = ref false in
              while (not !broken) && !cur <> source && !steps <= n do
                incr steps;
                let p = if !cur >= 0 && !cur < n then parent_of.(!cur) else -1 in
                if p < 0 then begin
                  report
                    (v "informed-tree" "node %d: chain breaks at %d before the source"
                       node !cur);
                  broken := true
                end
                else cur := p
              done;
              if (not !broken) && !steps > n then
                report (v "informed-tree" "node %d: parent chain has a cycle" node)
            end)
          parent_of);
    List.rev !violations

  let phase4_drain t =
    let violations = ref [] in
    let report vl = violations := vl :: !violations in
    (* Isolate the events between Phase "cogcomp-phase4" and the next phase
       marker; note whether the run declared completion. *)
    let in_p4 = ref false in
    let complete = ref false in
    let has_down = ref false in
    let sent : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
    let sent_hist : (int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
    let delivered = ref [] in
    let retired : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let informed = ref [] in
    iter
      (fun ev ->
        match ev with
        | Phase { name } ->
            in_p4 := name = "cogcomp-phase4";
            if name = "cogcomp-done" then complete := true
        | Down _ -> has_down := true
        | Informed { node; _ } -> informed := node :: !informed
        | Sent_value { slot; node; r } when !in_p4 ->
            Hashtbl.replace sent (slot, node) r;
            Hashtbl.replace sent_hist node
              ((slot, r) :: Option.value ~default:[] (Hashtbl.find_opt sent_hist node))
        | Value_delivered { slot; sender; receiver; r } when !in_p4 ->
            delivered := (slot, sender, receiver, r) :: !delivered
        | Retired { slot; node } when !in_p4 -> (
            match Hashtbl.find_opt retired node with
            | Some prev ->
                report
                  (v "phase4-drain" "node %d retired twice (slots %d and %d)" node prev
                     slot)
            | None -> Hashtbl.replace retired node slot)
        | _ -> ())
      t;
    let delivered = List.rev !delivered in
    (* Every delivery matches a send by the sender with the same cluster
       slot r. The echo confirming a delivery goes out in the slot after
       the Values broadcast (steps are announce/values/echo triples), so in
       a fault-free run the send is at exactly [slot - 1]. In a faulty run
       (any [Down] event present) the echo may be deferred — the receiver
       can miss its echo slot, or re-ack a retried send it already folded —
       so the strict same-step requirement is relaxed to "some strictly
       earlier send of the same cluster". *)
    List.iter
      (fun (slot, sender, _receiver, r) ->
        if !has_down then begin
          let sends =
            Option.value ~default:[] (Hashtbl.find_opt sent_hist sender)
          in
          if not (List.exists (fun (s', r') -> s' < slot && r' = r) sends) then
            report
              (v "phase4-drain"
                 "slot %d: delivery from %d (cluster %d) without any earlier \
                  matching send"
                 slot sender r)
        end
        else
          match Hashtbl.find_opt sent (slot - 1, sender) with
          | Some r' when r' = r -> ()
          | Some r' ->
              report
                (v "phase4-drain"
                   "slot %d: delivery credits sender %d with cluster %d but it sent \
                    cluster %d"
                   slot sender r r')
          | None ->
              report
                (v "phase4-drain" "slot %d: delivery from %d without a matching send"
                   slot sender))
      delivered;
    (* Conservation: each node's value moves up at most once; exactly once
       for every informed node when the run completed. *)
    let delivered_count : (int, int) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (_, sender, _, _) ->
        Hashtbl.replace delivered_count sender
          (1 + Option.value ~default:0 (Hashtbl.find_opt delivered_count sender)))
      delivered;
    Hashtbl.iter
      (fun sender count ->
        if count > 1 then
          report (v "phase4-drain" "node %d's value was delivered %d times" sender count))
      delivered_count;
    (if !complete then
       List.iter
         (fun node ->
           if Option.value ~default:0 (Hashtbl.find_opt delivered_count node) = 0 then
             report
               (v "phase4-drain"
                  "run declared complete but informed node %d's value was never \
                   delivered"
                  node))
         !informed);
    (* Monotone drain: per receiver, delivered cluster slots never increase
       (clusters are consumed in descending r). *)
    let last_r : (int, int) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (slot, _, receiver, r) ->
        (match Hashtbl.find_opt last_r receiver with
        | Some prev when r > prev ->
            report
              (v "phase4-drain"
                 "receiver %d collected cluster %d after cluster %d (slot %d): drain \
                  not monotone"
                 receiver r prev slot)
        | _ -> ());
        Hashtbl.replace last_r receiver r)
      delivered;
    List.rev !violations

  (* No value is ever double-counted, retries or not: at most one
     [Value_delivered] per sender across the whole phase-4 segment, and
     every delivery is backed by some strictly earlier send of the same
     cluster. This is the invariant the robust drain's receiver-side dedup
     (fold once, re-ack silently) exists to maintain; unlike [phase4_drain]
     it makes no same-step assumption, so it applies equally to fault-free
     and faulty traces. *)
  let exactly_once_drain t =
    let violations = ref [] in
    let report vl = violations := vl :: !violations in
    let in_p4 = ref false in
    let sent_hist : (int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
    let delivered = ref [] in
    iter
      (fun ev ->
        match ev with
        | Phase { name } -> in_p4 := name = "cogcomp-phase4"
        | Sent_value { slot; node; r } when !in_p4 ->
            Hashtbl.replace sent_hist node
              ((slot, r) :: Option.value ~default:[] (Hashtbl.find_opt sent_hist node))
        | Value_delivered { slot; sender; receiver = _; r } when !in_p4 ->
            delivered := (slot, sender, r) :: !delivered
        | _ -> ())
      t;
    let delivered = List.rev !delivered in
    let counts : (int, int) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (slot, sender, r) ->
        let c = 1 + Option.value ~default:0 (Hashtbl.find_opt counts sender) in
        Hashtbl.replace counts sender c;
        if c > 1 then
          report
            (v "exactly-once-drain"
               "node %d's value was counted %d times (latest at slot %d)" sender c slot);
        let sends = Option.value ~default:[] (Hashtbl.find_opt sent_hist sender) in
        if not (List.exists (fun (s', r') -> s' < slot && r' = r) sends) then
          report
            (v "exactly-once-drain"
               "slot %d: delivery from %d (cluster %d) without an earlier matching send"
               slot sender r))
      delivered;
    List.rev !violations

  (* Multi-rumor causality, over [Injected] / [Rumor_delivered] /
     [Rumor_done] events from the workload protocols. A rumor is injected
     at most once; every delivery names a rumor that was injected, a node
     other than its origin that learns it at most once, and a parent that
     already carried the rumor — the origin no earlier than the injection
     slot, any other node strictly after its own delivery (a node can only
     relay a rumor from the slot after it learned it). [Rumor_done] fires
     at most once per rumor and only once every node knows it: with a
     [Meta] header present, exactly [n - 1] distinct non-origin nodes must
     have deliveries no later than the done slot. *)
  let rumor_causality t =
    let violations = ref [] in
    let report vl = violations := vl :: !violations in
    let meta_n =
      fold (fun acc ev -> match ev with Meta { n; _ } -> Some n | _ -> acc) None t
    in
    let injected : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
    let delivered_at : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
    let delivered_nodes : (int, int list) Hashtbl.t = Hashtbl.create 64 in
    let done_at : (int, int) Hashtbl.t = Hashtbl.create 64 in
    iter
      (fun ev ->
        match ev with
        | Injected { slot; rumor; node } -> (
            match Hashtbl.find_opt injected rumor with
            | Some (prev_slot, _) ->
                report
                  (v "rumor-causality" "rumor %d injected twice (slots %d and %d)"
                     rumor prev_slot slot)
            | None -> Hashtbl.replace injected rumor (slot, node))
        | Rumor_delivered { slot; rumor; node; parent } -> (
            match Hashtbl.find_opt injected rumor with
            | None ->
                report
                  (v "rumor-causality"
                     "rumor %d delivered to node %d at slot %d before any injection"
                     rumor node slot)
            | Some (inj_slot, origin) ->
                if node = origin then
                  report
                    (v "rumor-causality"
                       "rumor %d delivered to its own origin %d at slot %d" rumor node
                       slot);
                if parent = node then
                  report
                    (v "rumor-causality" "rumor %d: node %d is its own parent at slot %d"
                       rumor node slot);
                (match Hashtbl.find_opt delivered_at (rumor, node) with
                | Some prev ->
                    report
                      (v "rumor-causality"
                         "rumor %d delivered to node %d twice (slots %d and %d)" rumor
                         node prev slot)
                | None ->
                    Hashtbl.replace delivered_at (rumor, node) slot;
                    Hashtbl.replace delivered_nodes rumor
                      (node
                      :: Option.value ~default:[]
                           (Hashtbl.find_opt delivered_nodes rumor)));
                if parent = origin then begin
                  if slot < inj_slot then
                    report
                      (v "rumor-causality"
                         "rumor %d delivered to node %d at slot %d, before its \
                          injection at slot %d"
                         rumor node slot inj_slot)
                end
                else
                  match Hashtbl.find_opt delivered_at (rumor, parent) with
                  | None ->
                      report
                        (v "rumor-causality"
                           "rumor %d delivered to node %d at slot %d by %d, which \
                            never learned it before"
                           rumor node slot parent)
                  | Some ps when ps >= slot ->
                      report
                        (v "rumor-causality"
                           "rumor %d delivered to node %d at slot %d by %d, which \
                            learned it only at slot %d"
                           rumor node slot parent ps)
                  | Some _ -> ())
        | Rumor_done { slot; rumor } -> (
            (match Hashtbl.find_opt done_at rumor with
            | Some prev ->
                report
                  (v "rumor-causality" "rumor %d done twice (slots %d and %d)" rumor
                     prev slot)
            | None -> Hashtbl.replace done_at rumor slot);
            match Hashtbl.find_opt injected rumor with
            | None ->
                report
                  (v "rumor-causality" "rumor %d done at slot %d but never injected"
                     rumor slot)
            | Some _ -> ())
        | _ -> ())
      t;
    (match meta_n with
    | None ->
        if Hashtbl.length done_at > 0 then
          report (v "rumor-causality" "trace has Rumor_done events but no Meta header")
    | Some n ->
        Hashtbl.iter
          (fun rumor slot ->
            if Hashtbl.mem injected rumor then begin
              let timely =
                List.filter
                  (fun node ->
                    match Hashtbl.find_opt delivered_at (rumor, node) with
                    | Some s -> s <= slot
                    | None -> false)
                  (Option.value ~default:[] (Hashtbl.find_opt delivered_nodes rumor))
              in
              if List.length timely <> n - 1 then
                report
                  (v "rumor-causality"
                     "rumor %d done at slot %d with %d of %d non-origin nodes \
                      delivered"
                     rumor slot (List.length timely) (n - 1))
            end)
          done_at);
    List.rev !violations

  let all t =
    one_winner t @ informed_tree t @ phase4_drain t @ exactly_once_drain t
    @ rumor_causality t
end
