(** Simulation metrics: per-node activity counters plus a named registry of
    counters and histograms — the simulator's energy/telemetry surface.

    The per-node counters ({!t}) are the original interface: radios spend
    energy per slot awake and (more) per transmission, and these arrays let
    experiments compare protocols on that axis. Attach a value to
    {!Engine.run} via [?metrics]; the engine increments it and never reads
    it.

    {!Registry} is the aggregated, exportable layer behind [--metrics]:
    named monotone counters and histograms that serialize to JSON through
    {!Crn_stats.Json}, either filled directly or derived wholesale from a
    recorded {!Trace.t} ({!Registry.observe_trace}). *)

type t = {
  transmissions : int array;  (** Broadcast attempts per node (incl. lost). *)
  receptions : int array;  (** Messages heard per node (listener side). *)
  awake_slots : int array;  (** Slots in which the node participated. *)
  jammed : int array;  (** Actions absorbed by a jammer, per node. *)
}

val create : int -> t
(** [create n] makes zeroed counters for [n] nodes. *)

val reset : t -> unit

val total_transmissions : t -> int

val total_awake : t -> int

val pp : Format.formatter -> t -> unit
(** Aggregate one-line rendering. *)

(** {1 The metrics registry} *)

module Registry : sig
  type counter
  (** A named monotone integer counter. *)

  type histogram
  (** A named sample collection summarized on export (count, mean,
      percentiles). *)

  type registry

  val create : unit -> registry

  val counter : registry -> string -> counter
  (** Find or register the counter named [name]. Registration order is
      preserved in the JSON export. *)

  val incr : ?by:int -> counter -> unit

  val value : counter -> int

  val histogram : registry -> string -> histogram
  (** Find or register the histogram named [name]. *)

  val observe : histogram -> float -> unit

  val observe_int : histogram -> int -> unit

  val samples : histogram -> int
  (** Number of observations recorded so far. *)

  val observe_trace : registry -> Trace.t -> unit
  (** Derive the standard metrics from a recorded trace: counters for
      slots, broadcasts, listens, wins, contended wins, deliveries,
      silences, jams, downs, informs, emulation sessions/failures and raw
      rounds; histograms for contenders per win ([win_contenders]), the
      slots-to-informed distribution ([slots_to_informed]), raw rounds per
      contention session ([session_rounds]), and contended wins per busy
      channel ([contended_wins_per_channel]). Cumulative across calls. *)

  val to_json : registry -> Crn_stats.Json.t
  (** [{"counters": {name: value, …}, "histograms": {name: summary, …}}]
      with summaries as in {!Crn_stats.Json.of_summary}; empty histograms
      export as [null]. *)
end
