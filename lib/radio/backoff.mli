(** Decay backoff: realizing the one-winner contention abstraction on the
    raw collision radio (§2 footnote 4).

    The paper's model assumes that when multiple nodes broadcast on a
    channel, exactly one succeeds, everybody learns the outcome, and losers
    receive the winner's message. Footnote 4 notes this is implementable by
    "broadcasting with exponentially decreasing probabilities": within a
    contention session each contender transmits with probability [2^{-j}]
    in sub-round [j] of a repeating epoch of length [⌈lg n⌉ + 1]; the first
    sub-round in which exactly one node transmits delivers its message, all
    other contenders hear it and abort, and the transmitter infers success
    from being the only non-aborter. The expected session length is
    [O(log² n)] sub-rounds, which experiment E13 measures.

    Sessions here run a single contention group on one channel of the
    {!Raw_radio} engine, which is exactly the situation the abstraction
    collapses into one slot. *)

type result = {
  winner : int;  (** Index (into the contender array) of the winner. *)
  rounds : int;  (** Raw radio rounds consumed by the session. *)
}

val session :
  rng:Crn_prng.Rng.t -> contenders:int -> cap:int -> result option
(** [session ~rng ~contenders ~cap] simulates one decay session among
    [contenders >= 1] nodes (population bound used for the epoch length is
    [contenders] itself). Returns [None] if no sub-round isolated a unique
    transmitter within [cap] rounds — by the analysis this happens with
    probability [n^{-Θ(1)}] once [cap = Ω(log² n)]. *)

val session_on_raw_radio :
  rng:Crn_prng.Rng.t -> contenders:int -> cap:int -> result option
(** Same protocol, but executed end-to-end through {!Raw_radio.run} with one
    node per contender — the integration proof that the protocol and the raw
    engine agree. Coin draws are consumed from [rng] in the same
    round-major, node-minor order as {!session}, so for any seed both
    implementations agree on the winner and on the rounds count (a property
    the test suite checks differentially). Slower; used by tests and E13
    spot checks. *)

val expected_rounds_bound : int -> int
(** [expected_rounds_bound n] is the [O(log² n)] budget (with explicit
    constant 4·(⌈lg n⌉+1)²) within which a session succeeds w.h.p.; used to
    size [cap] in benchmarks. *)

val retry_delay : attempt:int -> cap:int -> int
(** [retry_delay ~attempt ~cap] is the exponential-backoff gap
    [min cap 2^attempt] (saturating, overflow-safe) — the number of steps a
    retrying sender waits after its [attempt]-th failed transmission.
    {!Cogcomp_robust} uses it to pace phase-4 re-sends so a crashed receiver
    does not keep its whole cluster busy every step. *)
