type t = {
  transmissions : int array;
  receptions : int array;
  awake_slots : int array;
  jammed : int array;
}

let create n =
  {
    transmissions = Array.make n 0;
    receptions = Array.make n 0;
    awake_slots = Array.make n 0;
    jammed = Array.make n 0;
  }

let reset t =
  Array.fill t.transmissions 0 (Array.length t.transmissions) 0;
  Array.fill t.receptions 0 (Array.length t.receptions) 0;
  Array.fill t.awake_slots 0 (Array.length t.awake_slots) 0;
  Array.fill t.jammed 0 (Array.length t.jammed) 0

let total_transmissions t = Array.fold_left ( + ) 0 t.transmissions

let total_awake t = Array.fold_left ( + ) 0 t.awake_slots

let pp fmt t =
  Format.fprintf fmt "tx=%d rx=%d awake=%d jammed=%d" (total_transmissions t)
    (Array.fold_left ( + ) 0 t.receptions)
    (total_awake t)
    (Array.fold_left ( + ) 0 t.jammed)

module Registry = struct
  module Json = Crn_stats.Json
  module Summary = Crn_stats.Summary

  type counter = { c_name : string; mutable c_value : int }

  (* Histograms keep raw samples (growable) and summarize on export; the
     sample counts here are small (one per win / inform / session). *)
  type histogram = {
    h_name : string;
    mutable h_buf : float array;
    mutable h_len : int;
  }

  type registry = {
    mutable counters : counter list;  (* reversed registration order *)
    mutable histograms : histogram list;  (* reversed registration order *)
  }

  let create () = { counters = []; histograms = [] }

  let counter reg name =
    match List.find_opt (fun c -> c.c_name = name) reg.counters with
    | Some c -> c
    | None ->
        let c = { c_name = name; c_value = 0 } in
        reg.counters <- c :: reg.counters;
        c

  let incr ?(by = 1) c = c.c_value <- c.c_value + by

  let value c = c.c_value

  let histogram reg name =
    match List.find_opt (fun h -> h.h_name = name) reg.histograms with
    | Some h -> h
    | None ->
        let h = { h_name = name; h_buf = Array.make 64 0.0; h_len = 0 } in
        reg.histograms <- h :: reg.histograms;
        h

  let observe h x =
    if h.h_len = Array.length h.h_buf then begin
      let grown = Array.make (2 * h.h_len) 0.0 in
      Array.blit h.h_buf 0 grown 0 h.h_len;
      h.h_buf <- grown
    end;
    h.h_buf.(h.h_len) <- x;
    h.h_len <- h.h_len + 1

  let observe_int h x = observe h (float_of_int x)

  let samples h = h.h_len

  let observe_trace reg tr =
    let slots = counter reg "slots" in
    let broadcasts = counter reg "broadcasts" in
    let listens = counter reg "listens" in
    let wins = counter reg "wins" in
    let contended = counter reg "contended_wins" in
    let deliveries = counter reg "deliveries" in
    let silences = counter reg "silences" in
    let jams = counter reg "jammed_actions" in
    let downs = counter reg "down_slots" in
    let informs = counter reg "informs" in
    let sessions = counter reg "emulation_sessions" in
    let failed = counter reg "emulation_failed_sessions" in
    let raw_rounds = counter reg "emulation_raw_rounds" in
    let win_contenders = histogram reg "win_contenders" in
    let slots_to_informed = histogram reg "slots_to_informed" in
    let session_rounds = histogram reg "session_rounds" in
    let per_channel = histogram reg "contended_wins_per_channel" in
    (* Slot numbering restarts at every Phase marker, so the run's slot
       count is the sum of per-segment maxima. *)
    let max_slot = ref (-1) in
    let flush_segment () =
      if !max_slot >= 0 then incr ~by:(!max_slot + 1) slots;
      max_slot := -1
    in
    let contended_by_channel : (int, int) Hashtbl.t = Hashtbl.create 64 in
    Trace.iter
      (fun ev ->
        match ev with
        | Trace.Phase _ -> flush_segment ()
        | Trace.Meta _ -> ()
        | Trace.Decide { slot; tx; _ } ->
            max_slot := max !max_slot slot;
            incr (if tx then broadcasts else listens)
        | Trace.Win { channel; contenders; _ } ->
            incr wins;
            observe_int win_contenders contenders;
            if contenders > 1 then begin
              incr contended;
              Hashtbl.replace contended_by_channel channel
                (1 + Option.value ~default:0 (Hashtbl.find_opt contended_by_channel channel))
            end
        | Trace.Deliver _ -> incr deliveries
        | Trace.Silent _ -> incr silences
        | Trace.Jam _ -> incr jams
        | Trace.Down _ -> incr downs
        | Trace.Session { rounds; ok; _ } ->
            incr sessions;
            if not ok then incr failed;
            incr ~by:rounds raw_rounds;
            observe_int session_rounds rounds
        | Trace.Informed { slot; _ } ->
            incr informs;
            observe_int slots_to_informed slot
        | Trace.Mediator _ | Trace.Sent_value _ | Trace.Value_delivered _
        | Trace.Retired _ | Trace.Injected _ | Trace.Rumor_delivered _
        | Trace.Rumor_done _ | Trace.Adversary _ | Trace.Reassigned _ ->
            ())
      tr;
    flush_segment ();
    Hashtbl.iter (fun _channel count -> observe_int per_channel count) contended_by_channel

  let summary_json h =
    if h.h_len = 0 then Json.Null
    else Json.of_summary (Summary.of_floats (Array.sub h.h_buf 0 h.h_len))

  let to_json reg =
    Json.Obj
      [
        ( "counters",
          Json.Obj
            (List.rev_map (fun c -> (c.c_name, Json.Int c.c_value)) reg.counters) );
        ( "histograms",
          Json.Obj
            (List.rev_map (fun h -> (h.h_name, summary_json h)) reg.histograms) );
      ]
end
