(* Generic bridge from the closure-per-node {!Engine.node} shape to a
   {!Soa.protocol}, so every machine-based protocol can run on the
   struct-of-arrays engine without a hand-written duplicate.

   The SoA engine stores messages as ints, but protocols are polymorphic
   in their message type. The adapter never asks the engine to carry the
   payload: like {!Engine.run} it keeps the slot's decisions in an array,
   stores the broadcaster's node id as the SoA payload slot, and
   reconstructs the typed message from the winner's own decision when
   classifying feedback. Decisions are written in the decide phase and
   read in the feedback phase, which the engine separates with a
   {!Crn_exec.Pool.parallel_for} barrier, so cross-shard reads of a
   winner's decision are race-free. *)

let protocol (type msg) ?(parallel = false) (nodes : msg Engine.node array) :
    Soa.protocol =
  let n = Array.length nodes in
  let decisions : msg Action.decision array =
    Array.make n (Action.listen ~label:0)
  in
  let decide t ~slot ~lo ~hi =
    for v = lo to hi - 1 do
      if not (Soa.is_down t v) then begin
        let d = nodes.(v).Engine.decide ~slot in
        decisions.(v) <- d;
        match d.Action.intent with
        | Action.Broadcast _ -> Soa.set_broadcast t v ~label:d.Action.label ~msg:v
        | Action.Listen -> Soa.set_listen t v ~label:d.Action.label
      end
    done
  in
  let winner_msg w =
    match decisions.(w).Action.intent with
    | Action.Broadcast m -> m
    | Action.Listen ->
        (* The engine only declares broadcasters winners. *)
        assert false
  in
  let feedback t ~slot ~lo ~hi =
    for v = lo to hi - 1 do
      if not (Soa.is_down t v) then
        if Soa.was_jammed t v then nodes.(v).Engine.feedback ~slot Action.Jammed
        else if Soa.won t v then nodes.(v).Engine.feedback ~slot Action.Won
        else if Soa.lost t v then begin
          let w = Soa.sender t v in
          nodes.(v).Engine.feedback ~slot
            (Action.Lost { winner = w; msg = winner_msg w })
        end
        else if Soa.heard t v then begin
          let w = Soa.sender t v in
          nodes.(v).Engine.feedback ~slot
            (Action.Heard { sender = w; msg = winner_msg w })
        end
        else if Soa.silent t v then
          nodes.(v).Engine.feedback ~slot Action.Silence
    done
  in
  { Soa.parallel; decide; feedback }
