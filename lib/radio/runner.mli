(** One shared slot-loop runner for every protocol layer — the single place
    where a protocol phase picks its execution backend.

    Before this module existed, COGCAST, COGCOMP and robust COGCOMP each
    carried a private "engine or emulation" shim ([slot_runner] records with
    an [engine_runner]/[emulation_runner] pair per module). This is that
    shim, once: a {!t} closes over the availability, generator, adversary
    and observability of a run, and its polymorphic {!field-run} executes
    any ['msg Engine.node] array on the selected {!backend}:

    {ul
    {- {!Engine} — the optimized abstract one-winner engine
       ({!Engine.run}), the default;}
    {- {!Emulation} — the footnote-4 raw collision radio
       ({!Emulation.run}), reporting raw-round cost;}
    {- {!Reference} — the list-based executable specification
       ({!Reference.engine_run}), for differential tests.}}

    The runner adds no semantics of its own: each backend receives exactly
    the arguments the caller supplied, so a protocol run through a {!t} is
    byte-identical (outcomes, counters, RNG consumption, traces) to one
    calling the backend directly. *)

type backend =
  | Engine  (** {!Engine.run}; supports jamming, faults and metrics. *)
  | Emulation of { strategy : Emulation.strategy; session_cap : int option }
      (** {!Emulation.run}; [strategy] picks the footnote-4 contention
          realization (decay backoff or CSMA/CA). Jamming, faults and
          metrics compose at the abstract-slot level, as on {!Engine}. *)
  | Reference
      (** {!Reference.engine_run}, the slow specification twin of
          {!Engine}; same feature set. *)
  | Soa of { shards : int; dense_channel_limit : int option }
      (** {!Soa.run} behind the generic {!Soa_adapter}: the node array is
          bridged to range callbacks and one trial shards across [shards]
          domains. Results and traces are byte-identical to {!Engine} at
          any shard count by the SoA determinism contract;
          [dense_channel_limit] ([None] = the {!Soa.run} default) selects
          the occupancy-counting strategy crossover for the [c >> n]
          regime. Traced runs use the SoA sequential twin. *)

val backend_name : backend -> string
(** The CLI vocabulary for a backend — ["engine"], ["emulation"],
    ["emulation-csma"], ["reference"] or ["soa"] — for error messages and
    reports. *)

type outcome = {
  slots_run : int;
  stopped_early : bool;
  counters : Trace.Counters.t;
  raw_rounds : int;
      (** Raw radio rounds consumed; [0] on the abstract backends. *)
  failed_sessions : int;
      (** Emulation contention sessions that hit the cap; [0] on the
          abstract backends. *)
}

type t = {
  run :
    'msg.
    ?stop:(slot:int -> bool) ->
    nodes:'msg Engine.node array ->
    max_slots:int ->
    unit ->
    outcome;
}
(** The polymorphic slot loop: one runner serves every message type a
    multi-phase protocol uses, which is why this is a record field rather
    than a plain function. *)

val make :
  ?pool:Crn_exec.Pool.t ->
  ?machine_parallel:bool ->
  ?jammer:Jammer.t ->
  ?faults:Faults.t ->
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  ?backend:backend ->
  availability:Crn_channel.Dynamic.t ->
  rng:Crn_prng.Rng.t ->
  unit ->
  t
(** [make ~availability ~rng ()] is a runner on the default {!Engine}
    backend. Every backend accepts the full adversary/observability set —
    on {!Emulation} the jammer and fault schedule address abstract slots,
    exactly as on {!Engine} (see {!Emulation.run}).

    [pool] and [machine_parallel] apply only to the {!Soa} backend (both
    ignored elsewhere): [pool] reuses an existing domain pool for the
    shards instead of spinning one up per run, and [machine_parallel]
    (default [false]) asserts that the node closures honor the SoA
    sharding contract — per-node RNG streams, range-confined writes,
    [Atomic] commutative aggregates — letting decide/feedback run
    sharded. Leave it [false] for machines with shared mutable state or a
    shared decide-time RNG; the SoA engine then calls them sequentially
    and still shards the channel phases (see {!Soa.protocol}). *)

val emulation_outcome : outcome -> Emulation.outcome
(** Repackage a runner outcome as the {!Emulation.outcome} the footnote-4
    APIs return; meaningful for runs on the {!Emulation} backend. *)
