(** Transient node failures.

    §1 argues that COGCAST's obliviousness — every node does the same thing
    in every slot — makes it robust to "changes to the network conditions,
    temporary faults, and so on". This module supplies fault schedules the
    engine applies: a node that is *down* in a slot neither transmits nor
    receives (it simply misses the slot); its protocol state is untouched.

    Fault schedules must be deterministic functions of [(slot, node)] so
    runs replay; randomized schedules derive decisions from a seed. *)

type t

val name : t -> string

val to_string : t -> string
(** Human-readable rendering of the schedule, used for provenance in trace
    headers and campaign JSON. Compositions keep both operands:
    [to_string (union a b)] contains [to_string a] and [to_string b]. *)

val down : t -> slot:int -> node:int -> bool
(** Whether [node] misses [slot]. *)

val none : t

val of_fun : name:string -> (slot:int -> node:int -> bool) -> t

val crash : node:int -> from_slot:int -> t
(** [node] permanently fails at [from_slot]. *)

val crash_restart : node:int -> from_slot:int -> down_for:int -> t
(** [node] crashes at [from_slot] and comes back [down_for] slots later.
    The schedule only controls absence; "restart with protocol state reset"
    is the rejoining protocol's business — [Crn_core.Cogcomp_robust] detects the
    slot gap on wake-up and clears its transient per-step state. *)

val bernoulli_churn : seed:int64 -> mean_up:float -> mean_down:float -> t
(** Seeded per-node up/down Markov chain: an up node goes down with
    probability [1/mean_up] per slot, a down node recovers with probability
    [1/mean_down] per slot, so the stationary fraction of down slots is
    [mean_down /. (mean_up +. mean_down)]. All nodes start up. Coins are
    hashed from [(seed, node, slot)], so schedules replay; the sequential
    chain state is memoized internally (thread-safe). *)

val random_naps : seed:int64 -> rate:float -> t
(** Every node independently misses each slot with probability [rate]
    (decided per (slot, node) from the seed) — memoryless transient
    faults. *)

val periodic_nap : period:int -> nap:int -> offset_stride:int -> t
(** Node [v] sleeps during slots [s] with
    [(s + v*offset_stride) mod period < nap] — staggered duty cycling. *)

val spare : t -> node:int -> t
(** [spare t ~node] is [t] with [node] never failing — used to keep the
    source alive, without which broadcast trivially cannot start. *)

val union : t -> t -> t
(** Down if either schedule says down. *)

val staggered_activation : activation:int array -> t
(** [staggered_activation ~activation] keeps node [v] down until slot
    [activation.(v)] — relaxing the paper's all-activated-simultaneously
    assumption (§2). Once awake a node never fails. *)
