(** Struct-of-arrays slot engine: {!Engine} semantics at million-node
    scale, with intra-trial sharding across OCaml domains.

    Same slot model as {!Engine.run} — synchronous slots, one uniformly
    random winner per contended channel (§2 of the paper), PR 4's
    canonical resolution order — but node state lives in dense arrays
    indexed by node id instead of per-node closure records, the per-node
    phases of a slot shard across a {!Crn_exec.Pool}, and channel
    resolution walks an O(active) worklist instead of the spectrum.

    {2 Determinism contract}

    Runs are byte-identical to {!Engine.run} (same seed, same protocol
    behaviour) and invariant under the shard count, because:

    - The shared [rng] is consumed {e only} by winner draws — one draw per
      contended channel, in ascending global channel id — executed
      sequentially between the parallel phases (plus, for a
      [parallel = false] protocol, its own sequential decide-time draws in
      ascending node order, as under {!Engine.run}). No per-shard RNG
      streams exist, so the draw sequence cannot depend on [shards].
    - Every parallel phase writes only shard-private state: contiguous
      node-id ranges of the node arrays, and private per-shard rows of the
      channel-count matrix. Merges into shared channel state happen
      sequentially between phases (a {!Crn_exec.Pool.parallel_for} return
      is the barrier).
    - Protocol decisions either draw randomness from per-node streams
      (as [Crn_core.Cogcast] has since PR 1), making decide order
      immaterial, or declare [parallel = false] and run their callbacks
      sequentially over the full node range (see {!protocol}).

    {2 Slot pipeline and array ownership}

    Per slot, with [S] shards over [n] nodes (shard [s] owns node range
    [[s*n/S, (s+1)*n/S)]):

    + {e parallel} — fault marking, [protocol.decide], label→channel
      translation, jamming; shard [s] writes [intent]/[label]/[msg]/
      [tuned] only at indices in its range, plus its private row of the
      broadcaster-count matrix (dense mode).
    + {e sequential} — merge occupancy into [count], build [active]
      (ascending channel ids).
    + {e sequential} — winner draw per active channel from the shared
      [rng], stored as a selection countdown.
    + {e parallel (dense) / sequential (sparse)} — winner materialization
      and listener delivery accounting; in dense mode each active channel
      is pre-assigned to the unique shard whose range contains its winner,
      so shards never contend on [winner]/[need].
    + {e parallel} — [protocol.feedback] over the node ranges.
    + {e sequential} — counter merges, jammer observation, stop check.

    Spectra up to [dense_channel_limit] channels use per-shard dense count
    rows (parallel counting and selection); larger spectra — the [c >> n]
    regime of §6, where [shared_core] makes [C] grow with [n] — fall back
    to sequential O(n) occupancy scans. Both count identical totals and
    draw in identical order, so the strategy choice never changes results.

    Passing [?trace] switches to a sequential twin of {!Engine.run}'s loop
    (built on {!Scratch} chains) that emits events in exactly the PR 4
    order and calls the protocol with singleton ranges; traced runs are
    byte-equal to {!Engine.run} traces by construction. *)

(** {1 Node state} *)

type t = {
  n : int;  (** Node count; all node arrays have this length. *)
  intent : Bytes.t;
      (** Per-node intent code for the current slot: {!idle}, {!listen},
          {!broadcast}, {!jammed_listen}, {!jammed_broadcast} or {!down}.
          Before [decide] runs, the engine stamps each node {!idle} or
          {!down}; [decide] upgrades its own nodes to {!listen} /
          {!broadcast}; the jamming scan downgrades absorbed actions. *)
  label : int array;  (** Per-node local channel label chosen this slot. *)
  msg : int array;  (** Per-node broadcast payload (broadcasters only). *)
  tuned : int array;
      (** Per-node global channel id, valid for audible (and jammed)
          nodes once phase 1 completes. *)
  mutable num_channels : int;
      (** Capacity of the channel-indexed arrays below. *)
  mutable count : int array;
      (** Per-channel audible broadcaster count for the current slot.
          Valid from the occupancy merge onwards; only previously-active
          channels are reset between slots. *)
  mutable winner : int array;
      (** Per-channel winning node id — meaningful only on channels with
          [count > 0] this slot. *)
  mutable winner_msg : int array;  (** The winner's payload, same caveat. *)
  mutable need : int array;  (** Internal: winner-selection countdown. *)
  mutable owner : int array;  (** Internal: selecting shard (dense mode). *)
  active : int array;
      (** Channels with at least one audible broadcaster this slot,
          [active.(0 .. active_len - 1)], in ascending channel id on the
          fast path. *)
  mutable active_len : int;
}

(** {2 Intent codes} *)

val idle : char
(** No action this slot — the node is skipped like a down node. (The
    machine protocols always act; this exists so [decide] ranges may skip
    nodes without sentinel labels.) *)

val listen : char

val broadcast : char

val jammed_listen : char
(** Was listening; the action was absorbed by the jammer. *)

val jammed_broadcast : char
(** Was broadcasting; the action was absorbed by the jammer. *)

val down : char
(** Faulted out this slot ({!Faults}); [decide] must not touch the node —
    in particular it must not consume the node's RNG stream, mirroring
    {!Engine.run} where down nodes are never asked to decide. *)

(** {1 Protocols}

    A protocol is a pair of range callbacks replacing {!Engine.node}'s
    per-node closures. [decide t ~slot ~lo ~hi] must set an intent (via
    {!set_listen} / {!set_broadcast}) for every node in [[lo, hi)] that is
    not {!down}. [feedback] reads the slot's outcome through the accessors
    below (or the arrays directly) for every node in [[lo, hi)] and
    updates protocol state.

    [parallel] declares whether the callbacks honor the {e sharding
    contract}: a callback invoked with range [[lo, hi)] may touch
    node-indexed state only inside that range — ranges partition [0, n)
    across domains, and out-of-range writes are data races — randomness is
    drawn only from per-node streams, and shared aggregates are [Atomic]
    and commutative (e.g. a fetch-and-add informed counter), so their
    final value is shard-count independent. The engine then calls a
    [parallel] callback with ranges of any granularity: whole shards on
    the fast path, singletons on the traced path.

    A protocol with [parallel = false] — one that draws from a stream
    shared across nodes in [decide], or mutates plain shared counters —
    instead receives exactly one [decide] and one [feedback] call per
    slot, covering [[0, n)], executed sequentially between the engine's
    parallel phases (translation, occupancy, winner materialization still
    shard). Decide-time draws from the shared [rng] then interleave with
    the winner draws exactly as under {!Engine.run}, so results stay
    byte-identical to the classic engine at any shard count. Feedback
    must still be order-commutative across nodes (the fast path delivers
    it in ascending node order, {!Engine.run} per channel), which every
    machine in the registry is. *)

type protocol = {
  parallel : bool;
  decide : t -> slot:int -> lo:int -> hi:int -> unit;
  feedback : t -> slot:int -> lo:int -> hi:int -> unit;
}

(** {2 Decide-phase writers} *)

val set_listen : t -> int -> label:int -> unit
(** [set_listen t v ~label] : node [v] listens on its local [label]. *)

val set_broadcast : t -> int -> label:int -> msg:int -> unit
(** [set_broadcast t v ~label ~msg] : node [v] broadcasts payload [msg]
    on its local [label]. *)

(** {2 Feedback-phase readers}

    All valid once winner materialization has completed — i.e. inside
    [feedback] callbacks. *)

val is_down : t -> int -> bool

val was_jammed : t -> int -> bool

val heard : t -> int -> bool
(** The node listened and some broadcaster won its channel; {!sender} and
    {!message} are then valid. *)

val silent : t -> int -> bool
(** The node listened and no one was audible on its channel. *)

val sender : t -> int -> int
(** Winner of the channel the node is tuned to. *)

val message : t -> int -> int
(** That winner's payload. *)

val won : t -> int -> bool
(** The node broadcast and won its channel. *)

val lost : t -> int -> bool
(** The node broadcast and lost; {!sender} / {!message} describe the
    winner it lost to. *)

val num_nodes : t -> int

(** {1 Running} *)

type outcome = Engine.outcome = {
  slots_run : int;
  stopped_early : bool;
  counters : Trace.Counters.t;
}

val run :
  ?pool:Crn_exec.Pool.t ->
  ?shards:int ->
  ?jammer:Jammer.t ->
  ?faults:Faults.t ->
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  ?stop:(slot:int -> bool) ->
  ?on_slot_end:(slot:int -> unit) ->
  ?dense_channel_limit:int ->
  availability:Crn_channel.Dynamic.t ->
  rng:Crn_prng.Rng.t ->
  protocol:protocol ->
  max_slots:int ->
  unit ->
  outcome
(** Run up to [max_slots] slots (or until [stop ~slot] holds, checked
    after each slot, as {!Engine.run} does).

    [shards] (default 1) splits each slot's per-node phases into that many
    contiguous node ranges. With [shards > 1] the ranges run on [pool]
    (two {!Crn_exec.Pool.parallel_for} barriers per slot); when no pool is
    supplied a throwaway pool of [shards] domains wraps the run. A pool
    smaller than [shards] — including the sequential [jobs = 1] pool that
    {!Crn_exec.Trials} hands out when trial-level parallelism already saturates the
    machine — just runs shards consecutively; results are identical at any
    combination, per the determinism contract above.

    [dense_channel_limit] (default 4096) caps the spectrum size for the
    dense counting strategy; tests pass [0] to force the sparse path.

    [trace] selects the sequential traced twin; the trace is byte-equal to
    {!Engine.run}'s for a protocol behaving identically, and [shards] is
    then ignored (results still match, by the same contract).

    Raises [Invalid_argument] on an empty availability, negative
    [max_slots], [shards < 1], wrongly-sized [metrics], or a [decide]
    that picks a label outside [[0, c)]. *)
