(** Emulation of the §2 one-winner slot model on the raw collision radio —
    the end-to-end composition of footnote 4.

    {!Engine.run} *assumes* the contention abstraction; this module
    *implements* it: each abstract slot expands into one contention session
    per active channel (sessions on distinct channels run concurrently, so
    an abstract slot costs the maximum session length over its channels).
    The {!strategy} picks the realization:

    {ul
    {- {!Decay} ({!Backoff.session}) — the footnote's decay protocol:
       contenders transmit with exponentially decreasing probability; the
       first sub-round with a unique transmitter delivers its message, in
       [O(log² n)] raw rounds w.h.p.;}
    {- {!Csma} ({!Csma.session}) — classic CSMA/CA: carrier-sensed backoff
       windows doubling per collision, delivery confirmed by an explicit
       ACK round. Needs no population estimate, but offers no
       polylogarithmic high-probability bound.}}

    In either case every other node on the channel — listeners and losing
    contenders alike — ends the session having heard the delivered message,
    which matches the model's "failed broadcasters receive the message that
    was sent"; the winner learns of its success from the session itself.

    Protocols written against {!Engine}'s node interface run unchanged; the
    outcome additionally reports the raw rounds consumed, so experiments can
    measure the emulation overhead (E22, E25). A session that fails to
    isolate a winner within the per-slot cap delivers nothing on that
    channel for that slot: its broadcasters receive {!Action.No_winner} (a
    contender knows it burned the whole window without a clean
    transmission), while its listeners receive {!Action.Silence} — a failed
    session is physically indistinguishable from an idle channel on the
    listening side.

    Faults and jamming compose at the abstract-slot level with the same
    semantics as {!Engine.run}: a down node is absent for the slot; a
    jammed node's action is absorbed before its channel's contention
    session starts and it receives {!Action.Jammed} (so
    [counters.jammed_actions] is live on this backend too). For adversaries
    *inside* a single session, drive {!Raw_radio.run} directly — its
    [?jammer]/[?faults] address raw rounds. *)

type strategy =
  | Decay  (** {!Backoff.session}: decay backoff, [O(log² n)] w.h.p. *)
  | Csma  (** {!Csma.session}: CSMA/CA with ACK confirmation. *)

type outcome = {
  slots_run : int;  (** Abstract slots executed. *)
  raw_rounds : int;
      (** Raw radio rounds consumed (sum over slots of the per-slot
          maximum session length, each at least 1). *)
  failed_sessions : int;
      (** Sessions that hit the cap without isolating a winner; those
          channels deliver nothing in that slot (broadcasters receive
          {!Action.No_winner}, listeners {!Action.Silence}). *)
  stopped_early : bool;
  counters : Trace.Counters.t;
      (** The same always-on channel accounting {!Engine.run} maintains:
          [wins] counts successful sessions, [contended] channels with two
          or more broadcasters (succeeded or not), [jammed_actions] the
          slot-level actions absorbed by the jammer. *)
}

val run :
  ?strategy:strategy ->
  ?session_cap:int ->
  ?jammer:Jammer.t ->
  ?faults:Faults.t ->
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  ?stop:(slot:int -> bool) ->
  availability:Crn_channel.Dynamic.t ->
  rng:Crn_prng.Rng.t ->
  nodes:'msg Engine.node array ->
  max_slots:int ->
  unit ->
  outcome
(** Same contract as {!Engine.run}. [strategy] selects the contention
    realization (default {!Decay}). [session_cap] bounds each contention
    session in raw rounds (default [4·(⌈lg n⌉+1)²], the
    {!Backoff.expected_rounds_bound} — sized for decay; CSMA/CA under heavy
    contention may exhaust it, which shows up as [failed_sessions]); idle
    channels and single-listener channels cost one raw round. With [?trace]
    supplied, each slot appends {!Trace.Decide}, {!Trace.Session} (one per
    active channel, [ok=false] when the session hit the cap), {!Trace.Win},
    {!Trace.Deliver}, {!Trace.Silent} and — under adversaries —
    {!Trace.Down}/{!Trace.Jam} events; without it no event is allocated.

    Channels are resolved — and the shared [rng] consumed by the contention
    sessions — in ascending global channel id, the same canonical order as
    {!Engine.run}, so session lengths and winners are a function of the
    seed alone. The slot loop is allocation-free in steady state;
    {!Reference.emulation_run} is its executable specification. *)
