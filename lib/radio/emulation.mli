(** Emulation of the §2 one-winner slot model on the raw collision radio —
    the end-to-end composition of footnote 4.

    {!Engine.run} *assumes* the contention abstraction; this module
    *implements* it: each abstract slot expands into one decay-backoff
    contention session per active channel (sessions on distinct channels
    run concurrently, so an abstract slot costs the maximum session length
    over its channels, [O(log² n)] raw rounds w.h.p.). Within a session:

    {ul
    {- contenders transmit with exponentially decreasing probability; the
       first sub-round with a unique transmitter delivers its message;}
    {- every other node on the channel — listeners and backed-off
       contenders alike — hears that message, which matches the model's
       "failed broadcasters receive the message that was sent";}
    {- the winner infers success from being the only non-aborter.}}

    Protocols written against {!Engine}'s node interface run unchanged; the
    outcome additionally reports the raw rounds consumed, so experiments can
    measure the emulation overhead (E22). A session that fails to isolate a
    transmitter within the per-slot cap (probability [n^{-Θ(1)}]) delivers
    nothing on that channel for that slot: everyone there — broadcasters
    included — receives {!Action.Silence}, the observable a real radio
    would produce after a wasted contention window. *)

type outcome = {
  slots_run : int;  (** Abstract slots executed. *)
  raw_rounds : int;
      (** Raw radio rounds consumed (sum over slots of the per-slot
          maximum session length, each at least 1). *)
  failed_sessions : int;
      (** Sessions that hit the cap without isolating a winner; those
          channels deliver nothing in that slot (all participants receive
          {!Action.Silence}). *)
  stopped_early : bool;
  counters : Trace.Counters.t;
      (** The same always-on channel accounting {!Engine.run} maintains:
          [wins] counts successful sessions, [contended] channels with two
          or more broadcasters (succeeded or not), [jammed_actions] is
          always 0 (no jamming at this layer). *)
}

val run :
  ?session_cap:int ->
  ?trace:Trace.t ->
  ?stop:(slot:int -> bool) ->
  availability:Crn_channel.Dynamic.t ->
  rng:Crn_prng.Rng.t ->
  nodes:'msg Engine.node array ->
  max_slots:int ->
  unit ->
  outcome
(** Same contract as {!Engine.run} minus jamming/faults/metrics (compose at
    the abstract layer if needed). [session_cap] bounds each contention
    session in raw rounds (default [4·(⌈lg n⌉+1)²], the
    {!Backoff.expected_rounds_bound}); idle channels and single-listener
    channels cost one raw round. With [?trace] supplied, each slot appends
    {!Trace.Decide}, {!Trace.Session} (one per active channel, [ok=false]
    when the session hit the cap), {!Trace.Win}, {!Trace.Deliver} and
    {!Trace.Silent} events; without it no event is allocated.

    Channels are resolved — and the shared [rng] consumed by
    {!Backoff.session} — in ascending global channel id, the same canonical
    order as {!Engine.run}, so session lengths and winners are a function of
    the seed alone. The slot loop is allocation-free in steady state;
    {!Reference.emulation_run} is its executable specification. *)
